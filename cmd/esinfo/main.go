// Command esinfo prints the capabilities of the simulated OpenGL ES 2.0
// device, including the shader precision formats the paper queries with
// glGetShaderPrecisionFormat (§IV-E) to establish that the GPU float
// format matches IEEE 754 bit counts.
package main

import (
	"fmt"

	"glescompute/internal/gles"
	"glescompute/internal/shader"
	"glescompute/internal/vc4"
)

func main() {
	ctx := gles.NewContext(gles.Config{Width: 64, Height: 64, SFU: shader.DefaultSFU})
	fmt.Println("GL_VENDOR:                  ", ctx.GetString(gles.VENDOR))
	fmt.Println("GL_RENDERER:                ", ctx.GetString(gles.RENDERER))
	fmt.Println("GL_VERSION:                 ", ctx.GetString(gles.VERSION))
	fmt.Println("GL_SHADING_LANGUAGE_VERSION:", ctx.GetString(gles.SHADING_LANGUAGE_VERSION))
	ext := ctx.GetString(gles.EXTENSIONS)
	if ext == "" {
		ext = "(none — no float texture/framebuffer extensions, as the paper assumes)"
	}
	fmt.Println("GL_EXTENSIONS:              ", ext)
	fmt.Println()

	caps := ctx.Caps()
	fmt.Println("Implementation limits:")
	fmt.Printf("  MAX_TEXTURE_SIZE                 %d\n", caps.MaxTextureSize)
	fmt.Printf("  MAX_VERTEX_ATTRIBS               %d\n", caps.MaxVertexAttribs)
	fmt.Printf("  MAX_VARYING_VECTORS              %d\n", caps.MaxVaryingVectors)
	fmt.Printf("  MAX_VERTEX_UNIFORM_VECTORS       %d\n", caps.MaxVertexUniformVectors)
	fmt.Printf("  MAX_FRAGMENT_UNIFORM_VECTORS     %d\n", caps.MaxFragmentUniformVectors)
	fmt.Printf("  MAX_TEXTURE_IMAGE_UNITS          %d\n", caps.MaxTextureImageUnits)
	fmt.Printf("  MAX_VERTEX_TEXTURE_IMAGE_UNITS   %d (no vertex texture fetch on the VideoCore IV)\n", caps.MaxVertexTextureImageUnits)
	fmt.Println()

	fmt.Println("Shader precision formats (glGetShaderPrecisionFormat, paper §IV-E):")
	for _, p := range []struct {
		name string
		enum uint32
	}{
		{"LOW_FLOAT", gles.LOW_FLOAT},
		{"MEDIUM_FLOAT", gles.MEDIUM_FLOAT},
		{"HIGH_FLOAT", gles.HIGH_FLOAT},
		{"LOW_INT", gles.LOW_INT},
		{"MEDIUM_INT", gles.MEDIUM_INT},
		{"HIGH_INT", gles.HIGH_INT},
	} {
		pf := ctx.GetShaderPrecisionFormat(gles.FRAGMENT_SHADER, p.enum)
		fmt.Printf("  fragment %-13s range [-2^%d, 2^%d], precision 2^-%d\n",
			p.name, pf.RangeMin, pf.RangeMax, pf.Precision)
	}
	fmt.Println()

	m := vc4.DefaultModel()
	fmt.Println("Timing model (VideoCore IV class):")
	fmt.Printf("  QPUs: %d, lanes/QPU: %d, clock: %.0f MHz, peak: %.0f GFLOPS (paper §I: 24 GFlops)\n",
		m.QPUs, m.LanesPerQPU, m.ClockHz/1e6, m.PeakGFLOPS())
}
