// Command glslc compiles GLSL ES 1.00 shaders with the library's
// front-end, reporting diagnostics the way a driver's info log would.
//
// Usage:
//
//	glslc [-stage vertex|fragment] [-strict] [-E] [-tokens] [-dump] file.glsl
//
// The stage defaults from the file extension (.vert / .vs → vertex,
// .frag / .fs → fragment, else fragment).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"glescompute/internal/glsl"
)

func main() {
	stage := flag.String("stage", "", "shader stage: vertex or fragment (default from extension)")
	strict := flag.Bool("strict", false, "enforce GLSL ES Appendix A restrictions as errors")
	preprocessOnly := flag.Bool("E", false, "print the preprocessed source and exit")
	tokens := flag.Bool("tokens", false, "print the token stream and exit")
	dump := flag.Bool("dump", false, "print a summary of the checked program")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: glslc [flags] file.glsl")
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "glslc: %v\n", err)
		os.Exit(1)
	}
	src := string(data)

	st := glsl.StageFragment
	switch *stage {
	case "vertex":
		st = glsl.StageVertex
	case "fragment", "":
		if *stage == "" {
			if strings.HasSuffix(path, ".vert") || strings.HasSuffix(path, ".vs") {
				st = glsl.StageVertex
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "glslc: unknown stage %q\n", *stage)
		os.Exit(2)
	}

	if *preprocessOnly {
		res, errs := glsl.Preprocess(src)
		if errs.Err() != nil {
			fmt.Fprintln(os.Stderr, errs.Error())
			os.Exit(1)
		}
		fmt.Print(res.Source)
		return
	}

	if *tokens {
		toks, errs := glsl.LexAll(src)
		for _, tok := range toks {
			fmt.Printf("%s\t%s\n", tok.Pos, tok)
		}
		if errs.Err() != nil {
			fmt.Fprintln(os.Stderr, errs.Error())
			os.Exit(1)
		}
		return
	}

	prog, errs := glsl.CompileSource(src, st, glsl.CheckOptions{StrictAppendixA: *strict})
	if errs.Err() != nil {
		fmt.Fprintf(os.Stderr, "%s: compilation failed (%s stage):\n%s\n", path, st, errs.Error())
		os.Exit(1)
	}
	for _, w := range prog.Warnings {
		fmt.Fprintf(os.Stderr, "warning: %s\n", w)
	}
	fmt.Printf("%s: OK (%s shader)\n", path, st)
	if *dump {
		fmt.Printf("  uniforms:   %d\n", len(prog.Uniforms))
		for _, u := range prog.Uniforms {
			fmt.Printf("    %-20s %s\n", u.Name, u.DeclType)
		}
		fmt.Printf("  attributes: %d\n", len(prog.Attributes))
		for _, a := range prog.Attributes {
			fmt.Printf("    %-20s %s\n", a.Name, a.DeclType)
		}
		fmt.Printf("  varyings:   %d\n", len(prog.Varyings))
		for _, v := range prog.Varyings {
			fmt.Printf("    %-20s %s\n", v.Name, v.DeclType)
		}
		fmt.Printf("  functions:  %d\n", len(prog.Functions))
	}
}
