// Command benchgate compares two paperbench -json reports and fails when
// the current one regresses against the committed baseline — the CI gate
// of the repo's benchmark trajectory (BENCH_*.json).
//
// Modeled metrics are the primary gate: vc4/armtime model outputs are
// deterministic functions of the executed instruction streams, identical
// on every host, so they need no noise margin beyond the intended
// regression budget. A small enumerated set of wall-clock throughput
// metrics (currently the tiled-rasterizer wall_frags_per_s figures,
// which are fastest-of-reps on a warm device) is additionally gated with
// its own, wider -wall-margin budget; all other wall-clock figures in
// the reports remain informational.
//
// Gated metrics (higher is better) are numeric leaves whose key is in
// gatedKeys below (model_speedup_x, batch_model_speedup_x,
// compile_cache_speedup_x, ...). Every gated metric present in the
// baseline must exist in the current report at ≥ (1 - max-regress) of
// the baseline value; booleans named *validated must be true in the
// current report. The serve-model latency quantiles
// (s1_p50/p95/p99_modeled_us) and the serve-load reference tail
// (s3_p99_modeled_us) are gated the other way — lower is better — with
// the same budget mirrored. A top-level "schema" number is tolerated and
// reported, never gated. A result carrying `"wall_gate_skipped": true`
// (a single-CPU run, where parallel wall throughput cannot exist) has
// its wall-gated siblings skipped with a note instead of failed.
//
// Before the verdict, a delta table lists every gated metric side by
// side (baseline → current, % change), so a green gate still shows
// where the trajectory moved.
//
// Usage:
//
//	benchgate -baseline BENCH_BASELINE.json -current BENCH_PR5.json
//	          [-max-regress 0.10] [-wall-margin 0.25] [-update]
//
// Improvements are reported (and counted) alongside regressions. With
// -update, the baseline file is rewritten from the capture after the
// comparison: differences in either direction are printed and accepted,
// which is how a PR lands an intentional baseline refresh honestly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// gatedKeys are the higher-is-better modeled metrics.
var gatedKeys = map[string]bool{
	"model_speedup_x":           true,
	"exec_only_speedup_x":       true,
	"speedup_x":                 true,
	"model_jobs_per_sec":        true,
	"model_inf_per_sec":         true,
	"batch_model_speedup_x":     true,
	"occupancy_jobs_per_launch": true,
	"fusion_speedup_x":          true,
	"n1_vec4_speedup_x":         true,
	"compile_cache_speedup_x":   true,
}

// wallGatedKeys are wall-clock throughput metrics (higher is better)
// gated with the separate, wider -wall-margin budget. Wall metrics are
// opt-in by enumeration — the opposite of the *_validated suffix rule —
// because a wall figure is only gateable when its experiment measures it
// as the fastest of several runs on a warm device; the single-shot wall
// figures (wall_ms, wall_inf_per_sec, wall_jobs_per_sec, wall_speedup_x)
// stay informational.
var wallGatedKeys = map[string]bool{
	"wall_frags_per_s":     true,
	"wall_frags_per_s_seq": true,
}

// lowerGatedKeys are the lower-is-better modeled metrics: the serve-model
// latency quantiles, which regress by going UP. The same -max-regress
// budget applies, mirrored.
var lowerGatedKeys = map[string]bool{
	"s1_p50_modeled_us": true,
	"s1_p95_modeled_us": true,
	"s1_p99_modeled_us": true,
	"s3_p99_modeled_us": true,
}

// isValidatedKey matches boolean leaves that must hold in the current
// report: `validated` itself plus any `*_validated` differential check
// (int_validated, fusion_validated, chaos_validated, ...). Matching by
// suffix means a new experiment's validation flag is gated the moment it
// appears in a capture — forgetting to enumerate it here can't silently
// exempt it.
func isValidatedKey(key string) bool {
	return key == "validated" || strings.HasSuffix(key, "_validated")
}

// walk flattens a JSON tree into path→value for float and bool leaves.
func walk(prefix string, v interface{}, nums map[string]float64, bools map[string]bool) {
	switch t := v.(type) {
	case map[string]interface{}:
		for k, c := range t {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			walk(p, c, nums, bools)
		}
	case []interface{}:
		for i, c := range t {
			walk(prefix+"."+strconv.Itoa(i), c, nums, bools)
		}
	case float64:
		nums[prefix] = t
	case bool:
		bools[prefix] = t
	}
}

// leafKey returns the last path segment.
func leafKey(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '.' {
			return path[i+1:]
		}
	}
	return path
}

// siblingPath replaces path's leaf with key — the same JSON object's
// other field.
func siblingPath(path, key string) string {
	if i := strings.LastIndexByte(path, '.'); i >= 0 {
		return path[:i+1] + key
	}
	return key
}

// gateClass names the budget a key falls under, or "" when ungated.
func gateClass(key string) string {
	switch {
	case gatedKeys[key]:
		return "model"
	case wallGatedKeys[key]:
		return "wall"
	case lowerGatedKeys[key]:
		return "lower"
	}
	return ""
}

// deltaTable renders every gated metric side by side — baseline →
// current with the percentage change — including metrics only one
// report carries. Printed before the verdict, it is the per-metric
// trajectory a bare pass/fail hides.
func deltaTable(base, cur map[string]interface{}) []string {
	bNums, cNums := map[string]float64{}, map[string]float64{}
	walk("", base, bNums, map[string]bool{})
	walk("", cur, cNums, map[string]bool{})
	seen := map[string]bool{}
	for p := range bNums {
		seen[p] = true
	}
	for p := range cNums {
		seen[p] = true
	}
	paths := make([]string, 0, len(seen))
	for p := range seen {
		if gateClass(leafKey(p)) != "" {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil
	}
	rows := [][4]string{{"metric", "baseline", "current", "change"}}
	for _, p := range paths {
		bv, bok := bNums[p]
		cv, cok := cNums[p]
		row := [4]string{p + " [" + gateClass(leafKey(p)) + "]", "-", "-", ""}
		if bok {
			row[1] = fmt.Sprintf("%.4g", bv)
		}
		if cok {
			row[2] = fmt.Sprintf("%.4g", cv)
		}
		switch {
		case bok && cok && bv != 0:
			row[3] = fmt.Sprintf("%+.1f%%", 100*(cv/bv-1))
		case cok && !bok:
			row[3] = "new"
		case bok && !cok:
			row[3] = "missing"
		}
		rows = append(rows, row)
	}
	var w [4]int
	for _, r := range rows {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%-*s  %*s  %*s  %*s", w[0], r[0], w[1], r[1], w[2], r[2], w[3], r[3]))
	}
	return out
}

// compare returns failure messages (empty = gate passes) and
// informational lines.
func compare(base, cur map[string]interface{}, maxRegress, wallMargin float64) (failures, info []string) {
	bNums, bBools := map[string]float64{}, map[string]bool{}
	cNums, cBools := map[string]float64{}, map[string]bool{}
	walk("", base, bNums, bBools)
	walk("", cur, cNums, cBools)

	// The report schema version is tolerated in either report and surfaced
	// informationally; a mismatch is worth a line, not a failure.
	bs, bok := bNums["schema"]
	cs, cok := cNums["schema"]
	if bok || cok {
		if bok && cok && bs != cs {
			info = append(info, fmt.Sprintf("schema: baseline %g, current %g (layouts differ — gated keys still compared by name)", bs, cs))
		} else if cok && !bok {
			info = append(info, fmt.Sprintf("schema: current report declares schema %g (baseline predates schema versioning)", cs))
		}
	}

	paths := make([]string, 0, len(bNums))
	for p := range bNums {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		lower := lowerGatedKeys[leafKey(p)]
		wall := wallGatedKeys[leafKey(p)]
		if !gatedKeys[leafKey(p)] && !lower && !wall {
			continue
		}
		bv := bNums[p]
		// A result can declare its wall figures ungateable for this run
		// (raster sets wall_gate_skipped on single-CPU hosts, where the
		// parallel points cannot beat sequential): its wall-gated keys are
		// skipped with a note — even when absent — instead of failed.
		if wall && cBools[siblingPath(p, "wall_gate_skipped")] {
			info = append(info, fmt.Sprintf("%s: wall gate skipped — current report flags wall_gate_skipped (single-CPU run)", p))
			continue
		}
		cv, ok := cNums[p]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline (%.4g), missing from current report", p, bv))
			continue
		}
		if wall {
			floor := bv * (1 - wallMargin)
			switch {
			case cv < floor:
				failures = append(failures, fmt.Sprintf("%s: %.4g -> %.4g (%.1f%% regression, wall-clock budget %.0f%%)",
					p, bv, cv, 100*(1-cv/bv), 100*wallMargin))
			case cv > bv*1.001:
				info = append(info, fmt.Sprintf("%s: %.4g -> %.4g (improved %.1f%% — wall clock)", p, bv, cv, 100*(cv/bv-1)))
			}
			continue
		}
		if lower {
			ceil := bv * (1 + maxRegress)
			switch {
			case cv > ceil:
				failures = append(failures, fmt.Sprintf("%s: %.4g -> %.4g (%.1f%% regression — lower is better, budget %.0f%%)",
					p, bv, cv, 100*(cv/bv-1), 100*maxRegress))
			case cv < bv*0.999:
				info = append(info, fmt.Sprintf("%s: %.4g -> %.4g (improved %.1f%% — lower is better)", p, bv, cv, 100*(1-cv/bv)))
			}
			continue
		}
		floor := bv * (1 - maxRegress)
		switch {
		case cv < floor:
			failures = append(failures, fmt.Sprintf("%s: %.4g -> %.4g (%.1f%% regression, budget %.0f%%)",
				p, bv, cv, 100*(1-cv/bv), 100*maxRegress))
		case cv > bv*1.001:
			info = append(info, fmt.Sprintf("%s: %.4g -> %.4g (improved %.1f%%)", p, bv, cv, 100*(cv/bv-1)))
		}
	}

	vpaths := make([]string, 0, len(cBools))
	for p := range cBools {
		vpaths = append(vpaths, p)
	}
	sort.Strings(vpaths)
	for _, p := range vpaths {
		if isValidatedKey(leafKey(p)) && !cBools[p] {
			failures = append(failures, fmt.Sprintf("%s: false — a differential validation check failed; this is a correctness regression, not a performance one (no -max-regress budget applies)", p))
		}
	}
	// A baseline validation flag vanishing from the current report means a
	// differential check silently stopped running.
	for p, v := range bBools {
		if isValidatedKey(leafKey(p)) && v {
			if _, ok := cBools[p]; !ok {
				failures = append(failures, fmt.Sprintf("%s: validated in baseline, missing from current report", p))
			}
		}
	}
	sort.Strings(failures)
	return failures, info
}

// updateBaseline rewrites the baseline file with the capture's exact
// bytes (the capture is already valid JSON by the time this runs).
func updateBaseline(baselinePath, currentPath string) error {
	raw, err := os.ReadFile(currentPath)
	if err != nil {
		return err
	}
	return os.WriteFile(baselinePath, raw, 0o644)
}

func readReport(path string) (map[string]interface{}, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out map[string]interface{}
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_BASELINE.json", "committed baseline paperbench -json report")
	current := flag.String("current", "", "freshly captured paperbench -json report")
	maxRegress := flag.Float64("max-regress", 0.10, "allowed fractional regression per gated modeled metric")
	wallMargin := flag.Float64("wall-margin", 0.25, "allowed fractional regression per gated wall-clock metric (noise margin)")
	update := flag.Bool("update", false, "rewrite the baseline file from the capture after reporting (differences are reported, then accepted)")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	base, err := readReport(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	cur, err := readReport(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if rows := deltaTable(base, cur); len(rows) > 0 {
		fmt.Println("gated metrics, baseline -> current:")
		for _, r := range rows {
			fmt.Println("  " + r)
		}
		fmt.Println()
	}
	failures, info := compare(base, cur, *maxRegress, *wallMargin)
	for _, line := range info {
		fmt.Println("  " + line)
	}
	if len(info) > 0 {
		fmt.Printf("benchgate: %d metric(s) improved vs %s\n", len(info), *baseline)
	}
	if *update {
		// Refreshing the baseline is explicitly allowed to move metrics in
		// both directions — the point of -update is landing a new baseline
		// honestly, with every accepted change in the log.
		for _, f := range failures {
			fmt.Println("  accepted: " + f)
		}
		if err := updateBaseline(*baseline, *current); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: baseline %s rewritten from %s (%d improvement(s), %d accepted regression(s))\n",
			*baseline, *current, len(info), len(failures))
		return
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s) against %s:\n", len(failures), *baseline)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: all gated metrics within %.0f%% of %s\n", 100**maxRegress, *baseline)
}
