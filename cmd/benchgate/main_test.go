package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func report(t *testing.T, src string) map[string]interface{} {
	t.Helper()
	var out map[string]interface{}
	if err := json.Unmarshal([]byte(src), &out); err != nil {
		t.Fatal(err)
	}
	return out
}

const baseJSON = `{
	"sum-int": {"model_speedup_x": 7.0, "gpu_us": 100, "validated": true},
	"nn": {
		"model_speedup_x": 3.8,
		"batch_model_speedup_x": 1.5,
		"int_validated": true,
		"points": [
			{"model_inf_per_sec": 180.0, "wall_inf_per_sec": 3.0, "validated": true},
			{"model_inf_per_sec": 550.0, "wall_inf_per_sec": 3.1, "validated": true}
		]
	}
}`

func TestGatePassesWithinBudget(t *testing.T) {
	cur := report(t, strings.ReplaceAll(baseJSON, "180.0", "170.0")) // -5.6%: inside 10%
	failures, _ := compare(report(t, baseJSON), cur, 0.10, 0.25)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
}

func TestGateCatchesRegression(t *testing.T) {
	cur := report(t, strings.ReplaceAll(baseJSON, "550.0", "400.0")) // -27%
	failures, _ := compare(report(t, baseJSON), cur, 0.10, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "nn.points.1.model_inf_per_sec") {
		t.Fatalf("failures = %v, want one on nn.points.1.model_inf_per_sec", failures)
	}
}

func TestGateIgnoresWallClockAndUngatedKeys(t *testing.T) {
	cur := report(t, strings.ReplaceAll(strings.ReplaceAll(baseJSON, "\"wall_inf_per_sec\": 3.0", "\"wall_inf_per_sec\": 0.1"),
		"\"gpu_us\": 100", "\"gpu_us\": 9000"))
	failures, _ := compare(report(t, baseJSON), cur, 0.10, 0.25)
	if len(failures) != 0 {
		t.Fatalf("wall-clock/ungated change tripped the gate: %v", failures)
	}
}

func TestGateCatchesMissingMetricAndFailedValidation(t *testing.T) {
	cur := report(t, `{
		"sum-int": {"model_speedup_x": 7.0, "validated": true},
		"nn": {"model_speedup_x": 3.8, "batch_model_speedup_x": 1.5, "int_validated": false, "points": []}
	}`)
	failures, _ := compare(report(t, baseJSON), cur, 0.10, 0.25)
	joined := strings.Join(failures, "\n")
	for _, want := range []string{
		"nn.int_validated: false",
		"nn.points.0.model_inf_per_sec: present in baseline",
		"nn.points.0.validated: validated in baseline, missing",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("failures missing %q:\n%s", want, joined)
		}
	}
}

func TestGateReportsImprovements(t *testing.T) {
	cur := report(t, strings.ReplaceAll(baseJSON, "\"model_speedup_x\": 7.0", "\"model_speedup_x\": 9.0"))
	failures, info := compare(report(t, baseJSON), cur, 0.10, 0.25)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if len(info) != 1 || !strings.Contains(info[0], "sum-int.model_speedup_x") {
		t.Fatalf("info = %v, want one improvement line", info)
	}
}

func TestGateFusionKeys(t *testing.T) {
	const fusionBase = `{"nn": {"fusion_speedup_x": 1.3, "fusion_validated": true}}`
	cur := report(t, `{"nn": {"fusion_speedup_x": 1.0, "fusion_validated": false}}`)
	failures, _ := compare(report(t, fusionBase), cur, 0.10, 0.25)
	joined := strings.Join(failures, "\n")
	for _, want := range []string{"nn.fusion_speedup_x: 1.3 -> 1", "nn.fusion_validated: false"} {
		if !strings.Contains(joined, want) {
			t.Errorf("failures missing %q:\n%s", want, joined)
		}
	}
}

func TestGateChaosValidationBySuffix(t *testing.T) {
	// chaos_validated was never enumerated anywhere — the *_validated
	// suffix rule must gate it (and any future experiment's flag) both
	// when it flips false and when it vanishes from the capture.
	const chaosBase = `{"chaos": {"chaos_validated": true, "zero_lost": true}}`
	cur := report(t, `{"chaos": {"chaos_validated": false, "zero_lost": false}}`)
	failures, _ := compare(report(t, chaosBase), cur, 0.10, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "chaos.chaos_validated: false") {
		t.Fatalf("failures = %v, want one on chaos.chaos_validated", failures)
	}

	gone := report(t, `{"chaos": {"zero_lost": true}}`)
	failures, _ = compare(report(t, chaosBase), gone, 0.10, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "chaos.chaos_validated: validated in baseline, missing") {
		t.Fatalf("failures = %v, want one on missing chaos.chaos_validated", failures)
	}
}

func TestUpdateBaselineRewritesFile(t *testing.T) {
	dir := t.TempDir()
	basePath := dir + "/base.json"
	curPath := dir + "/cur.json"
	if err := os.WriteFile(basePath, []byte(`{"old": true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	want := `{"nn": {"fusion_speedup_x": 1.3}}`
	if err := os.WriteFile(curPath, []byte(want), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := updateBaseline(basePath, curPath); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatalf("baseline after update = %s, want %s", got, want)
	}
}

func TestGateWallMetricsWithMargin(t *testing.T) {
	const wallBase = `{"raster": {
		"wall_frags_per_s": 1000.0, "wall_frags_per_s_seq": 400.0,
		"speedup_vs_seq_x": 2.5, "raster_validated": true,
		"points": [{"elapsed_ms": 50.0, "frags_per_s": 400.0}]
	}}`
	// -20% is inside the 25% wall margin but outside the 10% modeled
	// budget: the wall-gated key must pass, proving it takes the wall
	// margin and not -max-regress.
	cur := report(t, strings.ReplaceAll(wallBase, "\"wall_frags_per_s\": 1000.0", "\"wall_frags_per_s\": 800.0"))
	failures, _ := compare(report(t, wallBase), cur, 0.10, 0.25)
	if len(failures) != 0 {
		t.Fatalf("-20%% wall change tripped the 25%% wall margin: %v", failures)
	}
	// -40% is a real wall regression.
	cur = report(t, strings.ReplaceAll(wallBase, "\"wall_frags_per_s\": 1000.0", "\"wall_frags_per_s\": 600.0"))
	failures, _ = compare(report(t, wallBase), cur, 0.10, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "raster.wall_frags_per_s") {
		t.Fatalf("failures = %v, want one on raster.wall_frags_per_s", failures)
	}
	// The un-enumerated wall ratio and per-point figures stay ungated
	// however far they move.
	cur = report(t, strings.ReplaceAll(strings.ReplaceAll(wallBase,
		"\"speedup_vs_seq_x\": 2.5", "\"speedup_vs_seq_x\": 0.1"),
		"\"frags_per_s\": 400.0", "\"frags_per_s\": 1.0"))
	failures, _ = compare(report(t, wallBase), cur, 0.10, 0.25)
	if len(failures) != 0 {
		t.Fatalf("ungated wall keys tripped the gate: %v", failures)
	}
	// A wall-gated key vanishing from the capture still fails.
	cur = report(t, `{"raster": {"wall_frags_per_s": 1000.0, "raster_validated": true}}`)
	failures, _ = compare(report(t, wallBase), cur, 0.10, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "wall_frags_per_s_seq: present in baseline") {
		t.Fatalf("failures = %v, want one missing wall metric", failures)
	}
	// raster_validated flipping false is a correctness failure.
	cur = report(t, strings.ReplaceAll(wallBase, "\"raster_validated\": true", "\"raster_validated\": false"))
	failures, _ = compare(report(t, wallBase), cur, 0.10, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "raster.raster_validated: false") {
		t.Fatalf("failures = %v, want one on raster.raster_validated", failures)
	}
}

const latencyJSON = `{
	"schema": 1,
	"serve-model": {"s1_p50_modeled_us": 100.0, "s1_p95_modeled_us": 200.0, "s1_p99_modeled_us": 900.0, "s1_mean_modeled_us": 150.0, "validated": true}
}`

func TestGateLowerIsBetterKeys(t *testing.T) {
	// p99 rising 50% must fail; the ungated mean rising must not.
	cur := report(t, strings.ReplaceAll(strings.ReplaceAll(latencyJSON,
		"\"s1_p99_modeled_us\": 900.0", "\"s1_p99_modeled_us\": 1350.0"),
		"\"s1_mean_modeled_us\": 150.0", "\"s1_mean_modeled_us\": 400.0"))
	failures, _ := compare(report(t, latencyJSON), cur, 0.10, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "serve-model.s1_p99_modeled_us") {
		t.Fatalf("failures = %v, want one on serve-model.s1_p99_modeled_us", failures)
	}
	// A drop is an improvement, not a failure.
	cur = report(t, strings.ReplaceAll(latencyJSON, "\"s1_p99_modeled_us\": 900.0", "\"s1_p99_modeled_us\": 500.0"))
	failures, info := compare(report(t, latencyJSON), cur, 0.10, 0.25)
	if len(failures) != 0 {
		t.Fatalf("latency improvement tripped the gate: %v", failures)
	}
	found := false
	for _, line := range info {
		if strings.Contains(line, "s1_p99_modeled_us") && strings.Contains(line, "improved") {
			found = true
		}
	}
	if !found {
		t.Fatalf("latency improvement not reported: %v", info)
	}
	// Vanishing from the current report still fails.
	cur = report(t, `{"schema": 1, "serve-model": {"s1_p50_modeled_us": 100.0, "s1_p95_modeled_us": 200.0, "validated": true}}`)
	failures, _ = compare(report(t, latencyJSON), cur, 0.10, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing from current report") {
		t.Fatalf("failures = %v, want one missing-metric failure", failures)
	}
}

func TestGateToleratesAndReportsSchema(t *testing.T) {
	// Baseline without schema vs current with it: informational only.
	failures, info := compare(report(t, baseJSON),
		report(t, `{"schema": 2, "sum-int": {"model_speedup_x": 7.0, "gpu_us": 100, "validated": true},
			"nn": {"model_speedup_x": 3.8, "batch_model_speedup_x": 1.5, "int_validated": true, "points": [
				{"model_inf_per_sec": 180.0, "wall_inf_per_sec": 3.0, "validated": true},
				{"model_inf_per_sec": 550.0, "wall_inf_per_sec": 3.1, "validated": true}]}}`), 0.10, 0.25)
	if len(failures) != 0 {
		t.Fatalf("schema introduction tripped the gate: %v", failures)
	}
	found := false
	for _, line := range info {
		if strings.Contains(line, "schema") {
			found = true
		}
	}
	if !found {
		t.Fatalf("schema not reported: %v", info)
	}
}
