// Command paperbench regenerates the evaluation of Trompouki & Kosmidis,
// DATE 2016, printing paper-reported values next to the values this
// reproduction measures/models. See DESIGN.md §4 for the experiment index
// and EXPERIMENTS.md for recorded results and discussion.
//
// Usage:
//
//	paperbench [-exp all|list|<comma-separated experiment names>]
//	           [-sum-n N] [-sum-exec N] [-sgemm-n N] [-pipeline-n N]
//	           [-serve-jobs N] [-serve-n N] [-nn-requests N] [-nn-batch N]
//	           [-lanes 1|4] [-chaos-jobs N] [-chaos-seed S] [-chaos-devices N]
//	           [-raster-n N] [-raster-reps N] [-workers N]
//	           [-sl-jobs N] [-sl-seed S]
//	           [-trace FILE] [-metrics] [-json]
//
// `-exp list` prints the experiment index; an unknown experiment name
// exits non-zero instead of silently running nothing.
//
// With -trace FILE, the experiment queues record per-job spans and the
// run's Chrome trace-event JSON is written to FILE (load it in Perfetto
// or chrome://tracing). With -metrics, the queues register their
// counters/gauges/histograms and a Prometheus-text dump is printed after
// the run (to stderr under -json, keeping stdout machine-readable).
// Both attach to the serve capture pass, the nn sweep and the chaos run.
//
// -workers N sets the process-default rasterizer worker count by
// exporting GLESCOMPUTE_RASTER_WORKERS — the env fallback of the
// ExecConfig chain — so every experiment device inherits it. The raster
// experiment's per-point ExecConfig.RasterWorkers still wins over it,
// as explicit configuration always beats the environment.
//
// The chaos experiment's fault schedule seed may also be set through the
// GLESCOMPUTE_FAULT_SEED environment variable (the -chaos-seed flag wins
// when both are given), so CI can sweep seeds without editing workflows.
// The serve-load experiment's arrival seed mirrors the pattern through
// GLESCOMPUTE_LOAD_SEED (the -sl-seed flag wins).
//
// With -json, results are emitted as a single machine-readable JSON
// object on stdout (for capturing benchmark trajectories as BENCH_*.json)
// instead of the human-readable tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"glescompute/internal/codec"
	"glescompute/internal/core"
	"glescompute/internal/obs"
	"glescompute/internal/paper"
)

// speedupJSON is the machine-readable form of one speedup experiment.
type speedupJSON struct {
	ID           string  `json:"id"`
	Kernel       string  `json:"kernel"`
	Elem         string  `json:"elem"`
	TargetN      int     `json:"target_n"`
	ExecN        int     `json:"exec_n"`
	PaperSpeedup float64 `json:"paper_speedup_x"`
	ModelSpeedup float64 `json:"model_speedup_x"`
	ExecSpeedup  float64 `json:"exec_only_speedup_x"`
	GPUMicros    int64   `json:"gpu_us"`
	CPUMicros    int64   `json:"cpu_us"`
	Validated    bool    `json:"validated"`
}

func toSpeedupJSON(s paper.Speedup) speedupJSON {
	return speedupJSON{
		ID: s.ID, Kernel: s.Kernel, Elem: s.Elem.String(),
		TargetN: s.TargetN, ExecN: s.ExecN,
		PaperSpeedup: s.PaperSpeedup,
		ModelSpeedup: s.ModelSpeedup(),
		ExecSpeedup:  s.ExecOnlySpeedup(),
		GPUMicros:    s.GPU.Total().Microseconds(),
		CPUMicros:    s.CPUTime.Microseconds(),
		Validated:    s.Validated,
	}
}

// pipelineJSON is the machine-readable form of the pipeline experiment.
type pipelineJSON struct {
	N                  int     `json:"n"`
	Passes             int     `json:"passes"`
	ResidentMicros     int64   `json:"resident_us"`
	RoundTripMicros    int64   `json:"round_trip_us"`
	ResidentHostBytes  uint64  `json:"resident_host_bytes"`
	RoundTripHostBytes uint64  `json:"round_trip_host_bytes"`
	SpeedupX           float64 `json:"speedup_x"`
	Validated          bool    `json:"validated"`
}

func main() {
	exp := flag.String("exp", "all", "experiment(s) to run: all or a comma-separated list")
	sumN := flag.Int("sum-n", 1<<20, "sum: full problem size (elements)")
	sumExec := flag.Int("sum-exec", 1<<14, "sum: executed size (extrapolated to -sum-n)")
	sgemmN := flag.Int("sgemm-n", 1024, "sgemm: full matrix dimension")
	pipelineN := flag.Int("pipeline-n", 1<<14, "pipeline: reduction chain size (elements)")
	serveJobs := flag.Int("serve-jobs", 10000, "serve: number of small requests in the stream")
	serveN := flag.Int("serve-n", 8, "serve: elements per small sum request")
	nnRequests := flag.Int("nn-requests", 24, "nn: inference requests in the serve sweep")
	nnBatch := flag.Int("nn-batch", 8, "nn: images coalesced per batched launch")
	nnLanes := flag.Int("lanes", 4, "nn: int8 texel lane width, 1 (scalar) or 4 (vec4 packing; GLESCOMPUTE_NO_VEC4 also forces 1)")
	chaosJobs := flag.Int("chaos-jobs", 10000, "chaos: requests in the faulted stream")
	chaosSeed := flag.Int64("chaos-seed", 20160316, "chaos: fault schedule seed (env GLESCOMPUTE_FAULT_SEED also sets it; the flag wins)")
	chaosDevices := flag.Int("chaos-devices", 4, "chaos: device pool width")
	rasterN := flag.Int("raster-n", 1<<18, "raster: fragments per draw in the worker sweep")
	rasterReps := flag.Int("raster-reps", 3, "raster: timed runs per worker count (fastest kept)")
	slJobs := flag.Int("sl-jobs", 20000, "serve-load: simulated requests per (load, pool) sweep point")
	slSeed := flag.Int64("sl-seed", 20160316, "serve-load: Poisson arrival seed (env GLESCOMPUTE_LOAD_SEED also sets it; the flag wins)")
	workers := flag.Int("workers", 0, "default rasterizer worker count for every experiment's devices (sets "+core.EnvRasterWorkers+"; 0 keeps env/GOMAXPROCS; explicit ExecConfig.RasterWorkers still wins)")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON of the experiment queues to this file")
	metricsOut := flag.Bool("metrics", false, "print a Prometheus-text metrics dump after the run (stderr under -json)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	flag.Parse()

	if *workers > 0 {
		// The env route (rather than plumbing a parameter into every
		// experiment constructor) deliberately exercises the documented
		// ExecConfig fallback chain: explicit field > env var > GOMAXPROCS.
		os.Setenv(core.EnvRasterWorkers, strconv.Itoa(*workers))
	}

	// Seed env fallbacks (the flag wins when explicitly given).
	for _, s := range []struct {
		env, flagName string
		dst           *int64
	}{
		{"GLESCOMPUTE_FAULT_SEED", "chaos-seed", chaosSeed},
		{"GLESCOMPUTE_LOAD_SEED", "sl-seed", slSeed},
	} {
		env := os.Getenv(s.env)
		if env == "" {
			continue
		}
		flagSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == s.flagName {
				flagSet = true
			}
		})
		if flagSet {
			continue
		}
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s=%q: %v\n", s.env, env, err)
			os.Exit(2)
		}
		*s.dst = seed
	}

	// schema versions the -json report layout so downstream consumers
	// (benchgate, trajectory tooling) can detect incompatible changes.
	report := map[string]interface{}{"schema": 1}

	// Shared observability backends: one tracer and one registry span
	// every experiment queue the run opens, so the exported trace holds
	// every workload on its own device tracks. The tracer is branded with
	// the fault seed — the one knob that changes the chaos run's shape —
	// so a trace names the schedule that produced it.
	var ob *paper.Obs
	if *traceFile != "" || *metricsOut {
		ob = &paper.Obs{}
		if *traceFile != "" {
			ob.Tracer = obs.NewTracer(*chaosSeed)
		}
		if *metricsOut {
			ob.Metrics = obs.NewRegistry()
		}
	}

	// The experiment index, in run order. `-exp list` prints it; an
	// unknown -exp name is an error, not a silent no-op.
	index := []struct{ name, desc string }{
		{"sum-int", "T1.1 vector sum speedup, int32 (paper §V)"},
		{"sum-float", "T1.2 vector sum speedup, float32 (paper §V)"},
		{"sgemm-int", "T1.3 dense matrix multiply speedup, int32 (paper §V)"},
		{"sgemm-float", "T1.4 dense matrix multiply speedup, float32 (paper §V)"},
		{"precision", "P1 float codec accuracy (paper: ~15 mantissa bits)"},
		{"int24", "P2 integer precision window (paper §IV-C: 24-bit)"},
		{"fig1", "F1 addressing trace (paper Fig. 1)"},
		{"fig2", "F2 codec shader dump (paper Fig. 2)"},
		{"sfu-sweep", "A2 SFU precision sweep behind the 15-bit figure"},
		{"halffloat", "A4 fp16 extension vs the paper's codec"},
		{"pipeline", "P3 device-resident pipeline vs host round-trip chaining"},
		{"serve", "S1 concurrent compute service (queue, batching, devices)"},
		{"serve-model", "S2 deterministic modeled per-request latency quantiles of the S1 stream"},
		{"serve-load", "S3 open-loop Poisson load sweep: offered load × pool vs modeled tail latency under SLO admission control"},
		{"nn", "N1 neural-network inference + kernel-fusion on/off"},
		{"chaos", "R1 fault-tolerant serving under a seeded fault schedule"},
		{"codec-overhead", "A1 pack/unpack share of kernel cycles"},
		{"raster", "W1 tiled-rasterizer wall-clock throughput across worker counts"},
	}

	selected := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		if name = strings.TrimSpace(name); name != "" {
			selected[name] = true
		}
	}
	if selected["list"] {
		fmt.Println("experiments (-exp name[,name...] | all):")
		for _, e := range index {
			fmt.Printf("  %-14s %s\n", e.name, e.desc)
		}
		fmt.Printf("  %-14s run every experiment\n", "all")
		return
	}
	valid := map[string]bool{"all": true}
	for _, e := range index {
		valid[e.name] = true
	}
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "paperbench: -exp selects no experiment (use -exp list)")
		os.Exit(2)
	}
	for name := range selected {
		if !valid[name] {
			fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q (use -exp list)\n", name)
			os.Exit(2)
		}
	}
	run := func(name string, fn func() error) {
		if !selected["all"] && !selected[name] {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	header := false
	speedupHeader := func() {
		if header {
			return
		}
		header = true
		fmt.Println("Speedups over the CPU (paper §V; modeled wall time incl. transfers and compilation):")
		fmt.Printf("  %-5s %-16s %9s | %7s | %9s %9s | %10s %10s %s\n",
			"ID", "benchmark", "size", "paper", "model", "exec-only", "GPU", "CPU", "valid")
	}
	printSpeedup := func(name string, s paper.Speedup) {
		if *jsonOut {
			report[name] = toSpeedupJSON(s)
			return
		}
		speedupHeader()
		fmt.Printf("  %-5s %-16s %9d | %6.1fx | %8.2fx %8.2fx | %10v %10v %v\n",
			s.ID, fmt.Sprintf("%s (%s)", s.Kernel, s.Elem), s.TargetN,
			s.PaperSpeedup, s.ModelSpeedup(), s.ExecOnlySpeedup(),
			s.GPU.Total().Round(100000), s.CPUTime.Round(100000), s.Validated)
	}

	run("sum-int", func() error {
		s, err := paper.RunSum(codec.Int32, *sumN, *sumExec)
		if err != nil {
			return err
		}
		printSpeedup("sum-int", s)
		return nil
	})
	run("sum-float", func() error {
		s, err := paper.RunSum(codec.Float32, *sumN, *sumExec)
		if err != nil {
			return err
		}
		printSpeedup("sum-float", s)
		return nil
	})
	run("sgemm-int", func() error {
		s, err := paper.RunSgemm(codec.Int32, *sgemmN, 16, 32)
		if err != nil {
			return err
		}
		printSpeedup("sgemm-int", s)
		return nil
	})
	run("sgemm-float", func() error {
		s, err := paper.RunSgemm(codec.Float32, *sgemmN, 16, 32)
		if err != nil {
			return err
		}
		printSpeedup("sgemm-float", s)
		return nil
	})

	run("precision", func() error {
		res, err := paper.RunPrecision(500)
		if err != nil {
			return err
		}
		if *jsonOut {
			report["precision"] = res
			return nil
		}
		fmt.Println()
		fmt.Println("P1 — float accuracy (paper §V: within the 15 most significant mantissa bits):")
		fmt.Printf("  GPU round trip over %d samples: worst %d bits, mean %.1f bits (paper: 15)\n",
			res.Samples, res.MinBitsGPU, res.MeanBitsGPU)
		fmt.Printf("  same transformation on the CPU: exact = %v (paper: precise)\n", res.CPUExact)
		return nil
	})

	run("int24", func() error {
		res, err := paper.RunInt24()
		if err != nil {
			return err
		}
		if *jsonOut {
			report["int24"] = res
			return nil
		}
		fmt.Println()
		fmt.Println("P2 — integer precision (paper §IV-C: equivalent to a 24-bit integer):")
		fmt.Printf("  values ≤ 2^24 round-trip exactly: %v\n", res.ExactThrough24)
		fmt.Printf("  2^24+1 loses precision:           %v\n", res.InexactPast24)
		return nil
	})

	run("fig1", func() error {
		out, err := paper.Fig1Trace()
		if err != nil {
			return err
		}
		if *jsonOut {
			report["fig1"] = out
			return nil
		}
		fmt.Println()
		fmt.Print(out)
		return nil
	})

	run("fig2", func() error {
		out := paper.Fig2Dump(nil)
		if *jsonOut {
			report["fig2"] = out
			return nil
		}
		fmt.Println()
		fmt.Print(out)
		return nil
	})

	run("sfu-sweep", func() error {
		points, err := paper.RunSFUSweep(200)
		if err != nil {
			return err
		}
		if *jsonOut {
			report["sfu-sweep"] = points
			return nil
		}
		fmt.Println()
		fmt.Println("A2 — SFU precision sweep (where the paper's 15 bits comes from):")
		fmt.Println("  SFU mantissa bits | achieved codec accuracy (worst case)")
		for _, p := range points {
			label := fmt.Sprintf("%d", p.SFUMantissaBits)
			if p.SFUMantissaBits == 0 {
				label = "exact"
			}
			fmt.Printf("  %17s | %d bits\n", label, p.MinBits)
		}
		return nil
	})

	run("halffloat", func() error {
		res, err := paper.RunHalfFloatComparison(1000)
		if err != nil {
			return err
		}
		if *jsonOut {
			report["halffloat"] = res
			return nil
		}
		fmt.Println()
		fmt.Println("A4 — half-float extension vs the paper's codec (paper §II: fp16 is 'neither enough nor portable'):")
		fmt.Printf("  corpus: %d fp32 values spanning 1e-6..1e6\n", res.Samples)
		fmt.Printf("  fp16 extension:  %4d/%d values lost to range (overflow/underflow), worst %d bits, mean %.1f bits\n",
			res.FP16RangeLoss, res.Samples, res.MinBitsFP16, res.MeanBitsFP16)
		fmt.Printf("  paper's codec:   %4d/%d values lost,                              worst %d bits, mean %.1f bits\n",
			res.CodecRangeLoss, res.Samples, res.MinBitsCodec, res.MeanBitsCodec)
		return nil
	})

	run("pipeline", func() error {
		res, err := paper.RunPipelineChain(*pipelineN)
		if err != nil {
			return err
		}
		if *jsonOut {
			report["pipeline"] = pipelineJSON{
				N: res.N, Passes: res.Passes,
				ResidentMicros:     res.Resident.Total().Microseconds(),
				RoundTripMicros:    res.RoundTrip.Total().Microseconds(),
				ResidentHostBytes:  res.ResidentHostBytes,
				RoundTripHostBytes: res.RoundTripHostBytes,
				SpeedupX:           res.SpeedupX(),
				Validated:          res.Validated,
			}
			return nil
		}
		fmt.Println()
		fmt.Printf("P3 — device-resident pipeline vs host round-trip chaining (sum reduction, n=%d, %d passes):\n",
			res.N, res.Passes)
		fmt.Printf("  device-resident: %8d host bytes, model %10v (exec %v)\n",
			res.ResidentHostBytes, res.Resident.Total().Round(10000), res.Resident.Execute.Round(10000))
		fmt.Printf("  host round-trip: %8d host bytes, model %10v (exec %v)\n",
			res.RoundTripHostBytes, res.RoundTrip.Total().Round(10000), res.RoundTrip.Execute.Round(10000))
		fmt.Printf("  chain speedup: %.1fx; results bit-identical: %v\n", res.SpeedupX(), res.Validated)
		return nil
	})

	run("serve", func() error {
		res, err := paper.RunServe(*serveJobs, *serveN, nil, ob)
		if err != nil {
			return err
		}
		if *jsonOut {
			report["serve"] = res
		} else {
			fmt.Println()
			fmt.Printf("S1 — concurrent compute service (%d requests: 15/16 sum n=%d, 1/16 sgemm %d×%d):\n",
				res.Jobs, res.N, res.SgemmN, res.SgemmN)
			fmt.Printf("  %-7s %-8s | %12s %12s | %10s %10s | %8s %9s\n",
				"devices", "batching", "model jobs/s", "wall jobs/s", "model", "wall", "launches", "occupancy")
			for _, pt := range res.Points {
				fmt.Printf("  %-7d %-8v | %12.0f %12.0f | %9.0fms %9.0fms | %8d %8.1fx\n",
					pt.Devices, pt.Batching, pt.ModelJobsPerSec, pt.WallJobsPerSec,
					pt.ModelMS, pt.WallMS, pt.Launches, pt.Occupancy)
			}
			fmt.Printf("  batched pool vs naive single device: %.1fx modeled, %.1fx wall clock\n",
				res.ModelSpeedupX, res.WallSpeedupX)
			fmt.Printf("  all outputs bit-identical to synchronous Kernel.Run: %v\n", res.Validated)
		}
		if !res.Validated {
			return fmt.Errorf("serve outputs not bit-identical to synchronous execution")
		}
		// The speedup bars are asserted only at full scale; quick smoke
		// runs (small -serve-jobs) are wall-clock noise-dominated. The
		// modeled vc4 bar (the repo's primary metric) is unconditional;
		// the wall-clock bar scales with the host: the pool's parallel
		// component needs ≥2 CPUs to exist at all (EXPERIMENTS.md S1), so
		// a single-CPU host is held to the batching-only wall win.
		if *serveJobs >= 2000 {
			if res.ModelSpeedupX < 2 {
				return fmt.Errorf("batched multi-device modeled speedup %.2fx, want >= 2x", res.ModelSpeedupX)
			}
			// The pool's wall parallelism needs BOTH physical CPUs and
			// runtime permission to use them, so the gate keys off
			// min(NumCPU, GOMAXPROCS): either at 1 means the device pool
			// cannot overlap on the wall clock and only the batching win
			// remains measurable.
			procs := runtime.NumCPU()
			if g := runtime.GOMAXPROCS(0); g < procs {
				procs = g
			}
			wallBar := 2.0
			if procs < 2 {
				wallBar = 1.15
				if !*jsonOut {
					fmt.Printf("  note: single-CPU execution (min(NumCPU, GOMAXPROCS) = %d) — device-pool wall parallelism unavailable, asserting batching-only wall win (>= %.2fx)\n", procs, wallBar)
				}
			}
			if res.WallSpeedupX < wallBar {
				return fmt.Errorf("batched multi-device wall speedup %.2fx, want >= %.2fx (effective CPUs: %d)",
					res.WallSpeedupX, wallBar, procs)
			}
		}
		return nil
	})

	run("serve-model", func() error {
		res, err := paper.RunServeModel(*serveJobs, *serveN)
		if err != nil {
			return err
		}
		if *jsonOut {
			report["serve-model"] = res
			return nil
		}
		fmt.Println()
		fmt.Printf("S2 — modeled per-request latency of the S1 stream (%d requests, %d distinct payloads, solo launches):\n",
			res.Jobs, res.DistinctPayloads)
		fmt.Printf("  p50 %.0fµs   p95 %.0fµs   p99 %.0fµs   mean %.0fµs (exact order statistics, deterministic under the vc4 model)\n",
			res.P50ModeledUS, res.P95ModeledUS, res.P99ModeledUS, res.MeanModeledUS)
		return nil
	})

	run("serve-load", func() error {
		res, err := paper.RunServeLoad(*slJobs, *serveN, *slSeed, ob)
		if err != nil {
			return err
		}
		if *jsonOut {
			report["serve-load"] = res
			return nil
		}
		fmt.Println()
		fmt.Printf("S3 — open-loop load sweep (%d simulated requests/point, seed %d, mean service %.0fµs, SLO %.0fµs):\n",
			res.Jobs, res.Seed, res.MeanServiceUS, res.SLOTargetUS)
		fmt.Printf("  %-5s %-4s | %9s %9s %9s | %11s | %6s %20s | %5s\n",
			"load", "pool", "p50", "p95", "p99", "p99 interac", "shed", "(batch/norm/interac)", "util")
		for _, pt := range res.Points {
			fmt.Printf("  %-5.2f %-4d | %7.0fµs %7.0fµs %7.0fµs | %9.0fµs | %6d %8d/%d/%d %7s | %4.0f%%\n",
				pt.Load, pt.Pool, pt.P50US, pt.P95US, pt.P99US, pt.P99InteractiveUS,
				pt.Shed, pt.ShedBatch, pt.ShedNormal, pt.ShedInteractive, "",
				pt.UtilizationPct)
		}
		fmt.Printf("  reference point (load %.2f, pool %d): p99 %.0fµs modeled\n", res.RefLoad, res.RefPool, res.RefP99)
		fmt.Printf("  live overload pass (%d requests, real queue): %d admitted, %d shed; admitted bit-identical: %v\n",
			res.LiveRequests, res.LiveAdmitted, res.LiveShed, res.Validated)
		return nil
	})

	run("nn", func() error {
		res, err := paper.RunNN(*nnRequests, *nnBatch, nil, *nnLanes, ob)
		if err != nil {
			return err
		}
		if *jsonOut {
			report["nn"] = res
			return nil
		}
		fmt.Println()
		fmt.Printf("N1 — neural-network inference (LeNet-scale CNN, %s input, float32, batch 1):\n", res.InShape)
		fmt.Printf("  %-9s %-8s %-9s | %11s %11s %8s | %9s\n",
			"layer", "kind", "out", "GPU model", "CPU model", "speedup", "max err")
		for _, l := range res.Layers {
			fmt.Printf("  %-9s %-8s %-9s | %9.0fµs %9.0fµs %7.2fx | %9.2g\n",
				l.Name, l.Kind, l.OutShape, l.GPUUS, l.CPUUS, l.SpeedupX, l.MaxErr)
		}
		fmt.Printf("  %-28s | %9.0fµs %9.0fµs %7.2fx | (end-to-end, warm)\n",
			"whole network", res.NetGPUUS, res.NetCPUUS, res.ModelSpeedupX)
		fmt.Printf("  float layers within codec tolerance: %v; int32 configuration (%d layers) bit-identical: %v\n",
			res.FloatValidated, res.IntLayers, res.IntValidated)
		fmt.Printf("  serve sweep: %d requests through the Queue, solo vs batched (B=%d):\n", res.Requests, res.Batch)
		fmt.Printf("  %-7s %-5s | %12s %12s | %9s %9s | %8s %10s\n",
			"devices", "batch", "model inf/s", "wall inf/s", "model", "wall", "launches", "compile%")
		for _, pt := range res.Points {
			fmt.Printf("  %-7d %-5d | %12.1f %12.1f | %7.0fms %7.0fms | %8d %9.1f%%\n",
				pt.Devices, pt.Batch, pt.ModelInfPerSec, pt.WallInfPerSec,
				pt.ModelMS, pt.WallMS, pt.Launches, pt.CompileShareP)
		}
		allIdentical := true
		for _, pt := range res.Points {
			allIdentical = allIdentical && pt.Validated
		}
		fmt.Printf("  sweep outputs bit-identical to solo: %v\n", allIdentical)
		fmt.Printf("  continuous batching (int8 serving, %d requests, bucket %d): solo %.0fµs vs coalesced %.0fµs in %d launches — %.2fx; bit-identical: %v\n",
			16, 8, res.CBSoloUS, res.CBBatchedUS, res.CBLaunches, res.BatchModelSpeedupX, res.ContinuousBatchValidated)
		fmt.Printf("  compile cache (4-device pool, float LeNet): cold %.0fµs vs warm-from-disk %.0fµs — %.0fx (%d hits)\n",
			res.ColdCompileUS, res.WarmCompileUS, res.CompileCacheSpeedupX, res.CompileCacheHits)
		fmt.Printf("  kernel fusion (planner %v): %d passes vs %d unfused — net %.0fµs vs %.0fµs, %.2fx; int32 fused bit-identical: %v\n",
			res.FusionEnabled, res.FusedPasses, res.UnfusedPasses,
			res.NetGPUUS, res.UnfusedNetGPUUS, res.FusionSpeedupX, res.FusionValidated)
		fmt.Printf("  fused passes: %s\n", strings.Join(res.FusedStages, ", "))
		if res.Int8Lanes == 4 {
			fmt.Printf("  int8 vec4 packing (%d layers, batch %d, warm): scalar %.0fµs vs vec4 %.0fµs, %.2fx; both lowerings bit-identical to refcpu: %v\n",
				res.Int8Layers, 4, res.Int8ScalarUS, res.Int8Vec4US, res.Vec4SpeedupX, res.Vec4Validated)
		} else {
			fmt.Printf("  int8 scalar path (lanes=1, vec4 packing off): %d layers bit-identical to refcpu, net %.0fµs\n",
				res.Int8Layers, res.Int8ScalarUS)
		}
		return nil
	})

	run("chaos", func() error {
		res, err := paper.RunChaos(*chaosJobs, *serveN, *chaosSeed, *chaosDevices, ob)
		if err != nil {
			return err
		}
		if *jsonOut {
			report["chaos"] = res
		} else {
			fmt.Println()
			fmt.Printf("R1 — fault-tolerant serving (%d requests over %d devices, fault seed %d):\n",
				res.Jobs, res.Devices, res.Seed)
			fmt.Printf("  injected: %d context losses, %d corrupted readbacks, %d transient OOMs, %d stalls\n",
				res.Injected.ContextLost, res.Injected.CorruptReadbacks, res.Injected.OutOfMemory, res.Injected.Stalls)
			fmt.Printf("  handled:  %d retries, %d device faults, %d device replacements, worst request took %d attempts\n",
				res.Retries, res.Faults, res.Reopens, res.MaxAttempts)
			fmt.Printf("  zero lost jobs: %v (failed: %d); bit-identical to fault-free reference: %v\n",
				res.ZeroLost, res.FailedJobs, res.BitIdentical)
			fmt.Printf("  recovered to full capacity: %v (%d/%d devices healthy); wall %.0fms\n",
				res.Recovered, res.Healthy, res.Devices, res.WallMS)
		}
		if !res.ChaosValidated {
			return fmt.Errorf("chaos validation failed: zero_lost=%v bit_identical=%v recovered=%v faults_injected=%v",
				res.ZeroLost, res.BitIdentical, res.Recovered, res.FaultsInjected)
		}
		return nil
	})

	run("codec-overhead", func() error {
		res, err := paper.RunCodecOverhead(1 << 12)
		if err != nil {
			return err
		}
		if *jsonOut {
			report["codec-overhead"] = res
			return nil
		}
		fmt.Println()
		fmt.Println("A1 — codec overhead on the integer sum kernel:")
		fmt.Printf("  encode-only kernel: %6.1f modeled cycles/element\n", res.EncodeOnlyCycles)
		fmt.Printf("  full sum kernel:    %6.1f modeled cycles/element\n", res.FullSumCycles)
		fmt.Printf("  pack/unpack share:  %6.0f%% (paper: 'the extra burden of packing and unpacking')\n",
			res.OverheadFraction*100)
		return nil
	})

	run("raster", func() error {
		res, err := paper.RunRaster(*rasterN, *rasterReps)
		if err != nil {
			return err
		}
		if *jsonOut {
			report["raster"] = res
		} else {
			fmt.Println()
			fmt.Printf("W1 — tiled-rasterizer wall-clock throughput (%d fragments/draw, fastest of %d runs, %d effective CPUs):\n",
				res.Fragments, *rasterReps, res.EffectiveCPUs)
			fmt.Printf("  %-7s | %10s | %14s | %8s | %s\n", "workers", "wall", "wall frags/s", "speedup", "bit-identical")
			for _, pt := range res.Points {
				fmt.Printf("  %-7d | %8.1fms | %14.0f | %7.2fx | %v\n",
					pt.Workers, pt.WallMS, pt.FragsPerSec, pt.SpeedupX, pt.BitIdentical)
			}
		}
		// The wall-clock speedup bar follows the S1 pattern: parallel
		// rasterization can only beat sequential when the host actually
		// grants multiple CPUs, and quick smoke runs (small -raster-n) are
		// noise-dominated, so the bar applies only at full scale.
		if *rasterN >= 1<<16 {
			bar := 0.0
			switch {
			case res.EffectiveCPUs >= 4:
				bar = 2.0
			case res.EffectiveCPUs >= 2:
				bar = 1.15
			}
			if bar > 0 && res.SpeedupX < bar {
				return fmt.Errorf("tiled rasterizer wall speedup %.2fx at 4 workers, want >= %.2fx (effective CPUs: %d)",
					res.SpeedupX, bar, res.EffectiveCPUs)
			}
			if !*jsonOut && bar == 0 {
				fmt.Printf("  note: single-CPU execution — wall speedup not asserted\n")
			}
		}
		return nil
	})

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: encoding JSON: %v\n", err)
			os.Exit(1)
		}
	}

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		if err := ob.Tracer.WriteChromeTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "paperbench: wrote %d trace events to %s (load in Perfetto or chrome://tracing)\n",
			ob.Tracer.Len(), *traceFile)
	}
	if *metricsOut {
		// Under -json, stdout carries the machine-readable report; the
		// human-readable metrics dump moves to stderr.
		out := os.Stdout
		if *jsonOut {
			out = os.Stderr
		}
		fmt.Fprintln(out)
		fmt.Fprintln(out, "# metrics (Prometheus text exposition; obs.Handler serves the same over HTTP)")
		ob.Metrics.WritePrometheus(out)
	}
}
