// Command quickstart is the smallest complete glescompute program: the
// paper's `sum` benchmark (element-wise addition of two float arrays) on
// the simulated OpenGL ES 2.0 device.
package main

import (
	"fmt"
	"log"

	"glescompute"
)

func main() {
	dev, err := glescompute.Open(glescompute.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close()

	const n = 1 << 12
	xs := make([]float32, n)
	ys := make([]float32, n)
	for i := range xs {
		xs[i] = float32(i)
		ys[i] = float32(i) * 0.5
	}

	a, err := dev.NewBuffer(glescompute.Float32, n)
	if err != nil {
		log.Fatal(err)
	}
	b, err := dev.NewBuffer(glescompute.Float32, n)
	if err != nil {
		log.Fatal(err)
	}
	out, err := dev.NewBuffer(glescompute.Float32, n)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.WriteFloat32(xs); err != nil {
		log.Fatal(err)
	}
	if err := b.WriteFloat32(ys); err != nil {
		log.Fatal(err)
	}

	// The kernel body is GLSL ES 1.00; gc_a / gc_b are generated accessors
	// that decode float values out of RGBA8 texels (paper §IV).
	k, err := dev.BuildKernel(glescompute.KernelSpec{
		Name: "sum",
		Inputs: []glescompute.Param{
			{Name: "a", Type: glescompute.Float32},
			{Name: "b", Type: glescompute.Float32},
		},
		Source: `float gc_kernel(float idx) { return gc_a(idx) + gc_b(idx); }`,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := k.Run1(out, []*glescompute.Buffer{a, b}, nil); err != nil {
		log.Fatal(err)
	}

	got, err := out.ReadFloat32()
	if err != nil {
		log.Fatal(err)
	}
	bad := 0
	for i := range got {
		want := xs[i] + ys[i]
		if glescompute.MantissaBitsAgreement(want, got[i]) < 13 {
			bad++
		}
	}
	tl := dev.Timeline()
	fmt.Printf("sum of %d floats on the GPU: %d mismatches\n", n, bad)
	fmt.Printf("first elements: %.1f %.1f %.1f ...\n", got[0], got[1], got[2])
	fmt.Printf("modeled device time: compile %v, upload %v, execute %v, readback %v\n",
		tl.Compile, tl.Upload, tl.Execute, tl.Readback)
	if bad > 0 {
		log.Fatal("validation failed")
	}
	fmt.Println("OK")
}
