// Command serve demonstrates the compute service: a pool of simulated
// ES 2.0 devices behind an asynchronous queue, fed a stream of small
// requests from concurrent clients. Submissions return immediately;
// same-kernel requests are coalesced into shared fragment passes; the
// final report shows per-device sharding, batching occupancy, modeled
// service throughput and the latency quantiles the queue's histograms
// collected. The run's spans are written as serve_trace.json — load it
// in Perfetto or chrome://tracing to see each job travel queue → device.
//
// The queue is opened with the serving-at-scale levers on: a shared
// compile cache (the pool compiles the kernel once, every other device
// restores the program binary), a batching window (coalescible requests
// arriving within it share a launch), and SLO-aware admission control —
// after the main burst, a deliberate overload flood shows batch-class
// requests being shed with ErrShed while the service stays inside its
// delay budget.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	"glescompute"
	"glescompute/obs"
)

func main() {
	tracer := obs.NewTracer(0)
	metrics := obs.NewRegistry()
	// One compile cache for the whole pool: the second device restores the
	// kernel as a program binary instead of recompiling. Point it at a
	// directory (or set GLESCOMPUTE_COMPILE_CACHE) and it also survives
	// process restarts.
	ccache, err := glescompute.NewCompileCache("")
	if err != nil {
		log.Fatal(err)
	}
	q, err := glescompute.OpenQueue(glescompute.QueueConfig{
		Devices:     2,
		MaxBatch:    16,
		BatchWindow: 200 * time.Microsecond, // hold coalescible jobs briefly to fill batches
		// Shed work when the estimated modeled queue delay tops 50ms
		// (25ms for batch-class jobs, 100ms for interactive ones). The
		// client burst below stays well inside the budget; the overload
		// flood afterwards does not.
		Admission: glescompute.AdmissionPolicy{TargetDelay: 50 * time.Millisecond},
		Device:    glescompute.Config{CompileCache: ccache},
		Tracer:    tracer,
		Metrics:   metrics,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer q.Close()

	// The service's one hot kernel: element-wise a+b over int32 arrays.
	// Content-identical specs compile once per pooled device.
	sum := glescompute.KernelSpec{
		Name:    "sum",
		Inputs:  []glescompute.Param{{Name: "a", Type: glescompute.Int32}, {Name: "b", Type: glescompute.Int32}},
		Outputs: []glescompute.OutputSpec{{Name: "out", Type: glescompute.Int32}},
		Source:  `float gc_kernel(float idx) { return gc_a(idx) + gc_b(idx); }`,
	}

	// Four concurrent clients, each firing 64 small requests and
	// validating its own responses.
	const clients = 4
	const perClient = 64
	const n = 64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			type req struct {
				a, b []int32
				job  *glescompute.Job
			}
			reqs := make([]req, perClient)
			// Fire the whole burst first — Submit returns as soon as the
			// job is queued, so the client never blocks on the GPU …
			for r := range reqs {
				a := make([]int32, n)
				b := make([]int32, n)
				for i := range a {
					a[i] = int32(rng.Intn(1 << 20))
					b[i] = int32(rng.Intn(1 << 20))
				}
				job, err := q.Submit(nil, glescompute.JobSpec{
					Kernel:    sum,
					Inputs:    []interface{}{a, b},
					Batchable: true, // element-wise: may share a launch
				})
				if err != nil {
					log.Fatal(err)
				}
				reqs[r] = req{a: a, b: b, job: job}
			}
			// … then collect the responses. Each Wait delivers that job's
			// slice of whatever coalesced launch carried it, plus the
			// launch's modeled timeline.
			for r, rq := range reqs {
				res, err := rq.job.Wait(nil)
				if err != nil {
					log.Fatal(err)
				}
				got, err := res.Int32()
				if err != nil {
					log.Fatal(err)
				}
				for i := range rq.a {
					if got[i] != rq.a[i]+rq.b[i] {
						log.Fatalf("client %d: wrong sum at %d: %d != %d", c, i, got[i], rq.a[i]+rq.b[i])
					}
				}
				if r == perClient-1 {
					fmt.Printf("client %d: last job ran on device %d in a batch of %d, modeled launch %v\n",
						c, res.Stats.Device, res.Stats.BatchSize, res.Stats.Time.Total().Round(time.Microsecond))
				}
			}
		}(c)
	}
	wg.Wait()
	fmt.Printf("\n%d jobs from %d clients in %v (all results verified)\n",
		clients*perClient, clients, time.Since(start).Round(time.Millisecond))

	// ---- Overload: admission control sheds batch-class traffic ----
	// A few expensive requests teach the admission estimator what this
	// workload costs (it tracks an EWMA of modeled per-job launch time);
	// the flood that follows then piles up a backlog whose estimated
	// delay blows the batch-class budget, and Submit starts rejecting
	// with ErrShed immediately instead of letting requests rot in queue.
	const bigN = 1 << 15
	bigA, bigB := make([]int32, bigN), make([]int32, bigN)
	for i := range bigA {
		bigA[i], bigB[i] = int32(i), int32(2*i)
	}
	bigSpec := glescompute.JobSpec{
		Kernel:   sum,
		Inputs:   []interface{}{bigA, bigB},
		Priority: glescompute.PriorityBatch, // best effort: first to shed
	}
	for i := 0; i < 4; i++ {
		job, err := q.Submit(nil, bigSpec)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := job.Wait(nil); err != nil {
			log.Fatal(err)
		}
	}
	var flood []*glescompute.Job
	shed := 0
	for i := 0; i < 64; i++ {
		job, err := q.Submit(nil, bigSpec)
		switch {
		case err == nil:
			flood = append(flood, job)
		case errors.Is(err, glescompute.ErrShed):
			shed++ // over capacity: drop, degrade, or redirect — don't requeue
		default:
			log.Fatal(err)
		}
	}
	for _, job := range flood {
		if _, err := job.Wait(nil); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("overload flood: %d admitted, %d shed by admission control (batch class)\n\n",
		len(flood), shed)

	st := q.Stats()
	fmt.Print(st.Report())

	// Latency quantiles from the queue's always-on histograms: end-to-end
	// (submit → result) and time spent waiting for a device slot.
	fmt.Printf("\n%-12s %10s %10s %10s\n", "latency", "p50", "p95", "p99")
	fmt.Printf("%-12s %10v %10v %10v\n", "end-to-end",
		st.LatencyP50.Round(time.Microsecond),
		st.LatencyP95.Round(time.Microsecond),
		st.LatencyP99.Round(time.Microsecond))
	fmt.Printf("%-12s %10v %10v %10v\n", "queue-wait",
		st.QueueWaitP50.Round(time.Microsecond),
		st.QueueWaitP95.Round(time.Microsecond),
		st.QueueWaitP99.Round(time.Microsecond))
	fmt.Printf("max pending seen: %d\n", st.MaxPendingSeen)

	f, err := os.Create("serve_trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %d trace events to serve_trace.json — open it at https://ui.perfetto.dev\n", tracer.Len())
}
