// Command nn-infer runs a LeNet-scale MNIST-style CNN — conv, pool, dense
// and softmax layers, every one an ES 2.0 fragment kernel — as a single
// device-resident pipeline, validates each layer against the CPU
// reference, then serves a stream of inference requests through the
// multi-device queue, solo and batch-coalesced.
//
// The weights are seeded pseudo-random (the repo validates inference
// mechanics and performance, not trained accuracy), so the "predictions"
// are arbitrary but deterministic — and must match the CPU's bit for bit
// on the classification decision.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"glescompute"
	demo "glescompute/internal/nn"
	"glescompute/internal/refcpu"
	"glescompute/nn"
)

func main() {
	const seed = 20160316
	model := demo.DemoLeNetFloat32(seed)
	if err := model.Err(); err != nil {
		log.Fatal(err)
	}

	dev, err := glescompute.Open(glescompute.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close()

	// Single inference with every layer tapped, checked against refcpu.
	image := demo.DemoInputFloat32(7, 1)
	refs, _, err := model.Reference(image, 1)
	if err != nil {
		log.Fatal(err)
	}
	net, err := model.Build(dev, 1, true)
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()
	res, err := net.Run(image)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("LeNet-scale CNN on a %s image, %d layers, %d fragment passes, %d host bytes between layers\n",
		model.In(), len(model.Layers()), res.Stats.Passes,
		res.Stats.HostUploadBytes+res.Stats.HostReadbackBytes)
	fmt.Printf("  %-9s %-8s %-9s %12s %10s\n", "layer", "kind", "out", "model time", "max err")
	for i, l := range model.Layers() {
		var worst float64
		if l.Kind == nn.KindSoftmax {
			worst = demo.MaxAbsErr(res.Taps[i], refs[i])
			if worst > demo.SoftmaxAbsTol {
				log.Fatalf("layer %s: error %.3g over tolerance", l.Name, worst)
			}
		} else {
			worst = demo.MaxHybridErr(res.Taps[i], refs[i])
			if worst > demo.FloatTol {
				log.Fatalf("layer %s: error %.3g over tolerance", l.Name, worst)
			}
		}
		fmt.Printf("  %-9s %-8s %-9s %12v %10.2g\n",
			l.Name, l.Kind, l.Out, res.LayerTimes[i].Total().Round(time.Microsecond), worst)
	}

	probs := res.Output.([]float32)
	gpuClass := argmax(probs)
	cpuClass := refcpu.ArgmaxFloat32(refs[len(refs)-1].([]float32), 1, demo.DemoClasses)[0]
	fmt.Printf("prediction: class %d (p=%.3f); CPU reference agrees: %v\n",
		gpuClass, probs[gpuClass], gpuClass == cpuClass)
	if gpuClass != cpuClass {
		log.Fatal("GPU and CPU classifications disagree")
	}

	// Serve a burst of requests through the device pool, solo vs batched.
	const requests, batch = 8, 4
	images := demo.DemoInputFloat32(23, requests)
	per := model.In().N()
	for _, b := range []int{1, batch} {
		q, err := glescompute.OpenQueue(glescompute.QueueConfig{Devices: 2})
		if err != nil {
			log.Fatal(err)
		}
		svc, err := nn.NewService(model, q)
		if err != nil {
			log.Fatal(err)
		}
		var jobs []*glescompute.Job
		for off := 0; off < requests; off += b {
			j, err := svc.InferBatch(nil, images[off*per:(off+b)*per], b)
			if err != nil {
				log.Fatal(err)
			}
			jobs = append(jobs, j)
		}
		classes := make([]int, 0, requests)
		for _, j := range jobs {
			r, err := j.Wait(nil)
			if err != nil {
				log.Fatal(err)
			}
			out := r.Output.([]float32)
			for i := 0; i+demo.DemoClasses <= len(out); i += demo.DemoClasses {
				classes = append(classes, argmax(out[i:i+demo.DemoClasses]))
			}
		}
		st := q.Stats()
		fmt.Printf("served %d inferences (batch %d, 2 devices): %d launches, modeled makespan %v, classes %v\n",
			requests, b, st.Launches, st.ModeledMakespan().Round(time.Microsecond), classes)
		q.Close()
		svc.Close()
	}
	fmt.Println("OK")
}

func argmax(xs []float32) int {
	best, bv := 0, float32(math.Inf(-1))
	for i, v := range xs {
		if v > bv {
			best, bv = i, v
		}
	}
	return best
}
