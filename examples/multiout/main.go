// Command multiout demonstrates the paper's challenge #8: a GPGPU kernel
// with more than one output. OpenGL ES 2.0 fragment shaders write a single
// color (gl_MaxDrawBuffers is 1), so the library splits the kernel into
// one shader pass per output, re-running the body each time — exactly the
// strategy the paper prescribes. The example computes per-element
// statistics (mean and range) of two input arrays in one logical kernel.
package main

import (
	"fmt"
	"log"

	"glescompute"
)

const kernelSrc = `
float gc_kernel_mean(float idx) {
	return (gc_a(idx) + gc_b(idx)) * 0.5;
}
float gc_kernel_range(float idx) {
	return abs(gc_a(idx) - gc_b(idx));
}
`

func main() {
	const n = 4096
	dev, err := glescompute.Open(glescompute.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close()

	xs := make([]float32, n)
	ys := make([]float32, n)
	for i := range xs {
		xs[i] = float32(i)
		ys[i] = float32(n - i)
	}
	a, err := dev.NewBuffer(glescompute.Float32, n)
	if err != nil {
		log.Fatal(err)
	}
	b, _ := dev.NewBuffer(glescompute.Float32, n)
	mean, _ := dev.NewBuffer(glescompute.Float32, n)
	rng, _ := dev.NewBuffer(glescompute.Float32, n)
	if err := a.WriteFloat32(xs); err != nil {
		log.Fatal(err)
	}
	if err := b.WriteFloat32(ys); err != nil {
		log.Fatal(err)
	}

	k, err := dev.BuildKernel(glescompute.KernelSpec{
		Name: "stats",
		Inputs: []glescompute.Param{
			{Name: "a", Type: glescompute.Float32},
			{Name: "b", Type: glescompute.Float32},
		},
		Outputs: []glescompute.OutputSpec{
			{Name: "mean", Type: glescompute.Float32},
			{Name: "range", Type: glescompute.Float32},
		},
		Source: kernelSrc,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := k.Run([]*glescompute.Buffer{mean, rng}, []*glescompute.Buffer{a, b}, nil)
	if err != nil {
		log.Fatal(err)
	}

	gm, err := mean.ReadFloat32()
	if err != nil {
		log.Fatal(err)
	}
	gr, err := rng.ReadFloat32()
	if err != nil {
		log.Fatal(err)
	}
	// Validate with a tolerance scaled to the *inputs*: the float codec is
	// accurate to ~2^-15 per decoded value, so differences of nearly-equal
	// inputs (range near the crossover at i=n/2) carry an absolute error
	// proportional to the inputs, not to the small result.
	bad := 0
	for i := range gm {
		wantMean := (xs[i] + ys[i]) / 2
		wantRange := xs[i] - ys[i]
		if wantRange < 0 {
			wantRange = -wantRange
		}
		tol := (abs32(xs[i]) + abs32(ys[i])) / (1 << 13)
		if absDiff(wantMean, gm[i]) > tol {
			bad++
		}
		if absDiff(wantRange, gr[i]) > tol {
			bad++
		}
	}
	fmt.Printf("multi-output kernel over %d elements: %d draw passes (one per output, challenge #8)\n",
		n, stats.Draw.DrawCalls)
	fmt.Printf("mismatches: %d\n", bad)
	if bad > 0 {
		log.Fatal("validation failed")
	}
	fmt.Println("OK")
}

func abs32(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}

func absDiff(a, b float32) float32 {
	return abs32(a - b)
}
