// Command mandelbrot renders the Mandelbrot set with a compute kernel
// that has no input buffers at all — the work is derived entirely from the
// output index, showing that kernels are not tied to texture inputs. The
// escape count is written through the uint8 codec and displayed as ASCII.
package main

import (
	"fmt"
	"log"

	"glescompute"
)

const mandelSrc = `
float gc_kernel(float idx) {
	float w = gc_out_dims.x;
	float row = floor((idx + 0.5) / w);
	float col = idx - row * w;
	// Map the grid to the complex rectangle [-2.2, 0.8] x [-1.2, 1.2].
	float cr = -2.2 + 3.0 * (col + 0.5) / w;
	float ci = -1.2 + 2.4 * (row + 0.5) / gc_out_dims.y;
	float zr = 0.0;
	float zi = 0.0;
	float it = 0.0;
	for (float i = 0.0; i < 96.0; i += 1.0) {
		float nzr = zr * zr - zi * zi + cr;
		zi = 2.0 * zr * zi + ci;
		zr = nzr;
		if (zr * zr + zi * zi > 4.0) { break; }
		it = i;
	}
	return floor(it * 255.0 / 95.0);
}
`

func main() {
	const w, h = 96, 48
	dev, err := glescompute.Open(glescompute.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close()

	out, err := dev.NewMatrixBuffer(glescompute.Uint8, w)
	if err != nil {
		log.Fatal(err)
	}
	_ = h // the buffer grid is w×w; we render the top h rows

	k, err := dev.BuildKernel(glescompute.KernelSpec{
		Name:    "mandelbrot",
		Outputs: []glescompute.OutputSpec{{Name: "out", Type: glescompute.Uint8}},
		Source:  mandelSrc,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := k.Run1(out, nil, nil); err != nil {
		log.Fatal(err)
	}
	img, err := out.ReadUint8()
	if err != nil {
		log.Fatal(err)
	}

	shades := []byte(" .:-=+*#%@")
	for y := 0; y < w; y += 2 { // halve vertical resolution for terminal aspect
		line := make([]byte, w)
		for x := 0; x < w; x++ {
			v := int(img[y*w+x])
			line[x] = shades[v*(len(shades)-1)/255]
		}
		fmt.Println(string(line))
	}
	tl := dev.Timeline()
	fmt.Printf("rendered %dx%d, 96 iterations max; modeled GPU execute time %v\n", w, w, tl.Execute)
}
