// Command reduction computes the sum of a large array with a multi-pass
// tree reduction: each pass halves the array by adding element pairs,
// ping-ponging between two buffers. This demonstrates kernel chaining
// through render-to-texture (the paper's challenge #7: with careful
// ordering, intermediate results never leave the GPU).
package main

import (
	"fmt"
	"log"
	"math"

	"glescompute"
)

const pairSumSrc = `
float gc_kernel(float idx) {
	return gc_x(2.0 * idx) + gc_x(2.0 * idx + 1.0);
}
`

func main() {
	const n = 1 << 14
	dev, err := glescompute.Open(glescompute.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close()

	data := make([]float32, n)
	var cpuSum float64
	for i := range data {
		data[i] = float32(i%97) * 0.25
		cpuSum += float64(data[i])
	}

	// Ping-pong buffers; each pass reads `cur` and writes `next` of half
	// the size.
	cur, err := dev.NewBuffer(glescompute.Float32, n)
	if err != nil {
		log.Fatal(err)
	}
	if err := cur.WriteFloat32(data); err != nil {
		log.Fatal(err)
	}

	k, err := dev.BuildKernel(glescompute.KernelSpec{
		Name:   "pairsum",
		Inputs: []glescompute.Param{{Name: "x", Type: glescompute.Float32}},
		Source: pairSumSrc,
	})
	if err != nil {
		log.Fatal(err)
	}

	passes := 0
	for size := n; size > 1; size /= 2 {
		next, err := dev.NewBuffer(glescompute.Float32, size/2)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := k.Run1(next, []*glescompute.Buffer{cur}, nil); err != nil {
			log.Fatal(err)
		}
		cur.Free()
		cur = next
		passes++
	}

	res, err := cur.ReadFloat32()
	if err != nil {
		log.Fatal(err)
	}
	got := float64(res[0])
	rel := math.Abs(got-cpuSum) / cpuSum
	fmt.Printf("tree reduction of %d floats in %d GPU passes\n", n, passes)
	fmt.Printf("GPU sum = %.1f, CPU sum = %.1f, relative error = %.3g\n", got, cpuSum, rel)
	// log2(n)=14 passes of ~2^-15-accurate adds: allow ~2^-9.
	if rel > 1.0/(1<<9) {
		log.Fatal("validation failed")
	}
	fmt.Println("OK")
}
