// Command reduction computes the sum of a large array with the built-in
// device-resident reduction: Pipeline.Reduce folds the array down
// log-style, each pass reading the previous pass's texture directly —
// intermediate results never leave the GPU and never touch the codec
// (the paper's challenge #7, without the hand-rolled buffer juggling
// this example used to carry).
package main

import (
	"fmt"
	"log"
	"math"

	"glescompute"
)

func main() {
	const n = 1 << 14
	dev, err := glescompute.Open(glescompute.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close()

	data := make([]float32, n)
	var cpuSum float64
	for i := range data {
		data[i] = float32(i%97) * 0.25
		cpuSum += float64(data[i])
	}

	in, err := dev.NewBuffer(glescompute.Float32, n)
	if err != nil {
		log.Fatal(err)
	}
	if err := in.WriteFloat32(data); err != nil {
		log.Fatal(err)
	}
	out, err := dev.NewBuffer(glescompute.Float32, 1)
	if err != nil {
		log.Fatal(err)
	}

	// The whole tree is one pipeline: ceil(log2 n) pairwise-sum passes
	// ping-ponging through pooled intermediate textures.
	p := dev.NewPipeline()
	defer p.Close()
	p.Output(p.Reduce(p.Input(glescompute.Float32, n), glescompute.ReduceAdd))
	if err := p.Err(); err != nil {
		log.Fatal(err)
	}

	stats, err := p.Run([]*glescompute.Buffer{out}, []*glescompute.Buffer{in}, nil)
	if err != nil {
		log.Fatal(err)
	}

	res, err := out.ReadFloat32()
	if err != nil {
		log.Fatal(err)
	}
	got := float64(res[0])
	rel := math.Abs(got-cpuSum) / cpuSum
	fmt.Printf("tree reduction of %d floats in %d GPU passes (%d textures pooled, %d recycled)\n",
		n, stats.Passes, stats.PoolAllocs, stats.PoolReuses)
	fmt.Printf("host traffic between passes: %d bytes up, %d bytes down (device-resident)\n",
		stats.HostUploadBytes, stats.HostReadbackBytes)
	fmt.Printf("GPU sum = %.1f, CPU sum = %.1f, relative error = %.3g\n", got, cpuSum, rel)
	// log2(n)=14 passes of ~2^-15-accurate adds: allow ~2^-9.
	if rel > 1.0/(1<<9) {
		log.Fatal("validation failed")
	}
	if stats.HostUploadBytes != 0 || stats.HostReadbackBytes != 0 {
		log.Fatal("expected a fully device-resident reduction")
	}
	fmt.Println("OK")
}
