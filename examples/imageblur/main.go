// Command imageblur applies a 3×3 box filter to a generated grayscale
// image on the GPU, using byte (uint8) buffers — the paper's §IV-A
// transformation — and 2D addressing over the image grid.
package main

import (
	"fmt"
	"log"
	"math"

	"glescompute"
)

const blurSrc = `
float gc_kernel(float idx) {
	float w = gc_img_dims.x;
	float h = gc_img_dims.y;
	float row = floor((idx + 0.5) / w);
	float col = idx - row * w;
	float acc = 0.0;
	for (float dy = -1.0; dy <= 1.0; dy += 1.0) {
		for (float dx = -1.0; dx <= 1.0; dx += 1.0) {
			float sx = clamp(col + dx, 0.0, w - 1.0);
			float sy = clamp(row + dy, 0.0, h - 1.0);
			acc += gc_img_at(sx, sy);
		}
	}
	return floor((acc + 4.0) / 9.0);
}
`

func main() {
	const w, h = 64, 64
	dev, err := glescompute.Open(glescompute.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close()

	// Generate a test pattern: a bright disc on a dark background.
	img := make([]uint8, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dx, dy := float64(x-w/2), float64(y-h/2)
			if math.Sqrt(dx*dx+dy*dy) < 16 {
				img[y*w+x] = 220
			} else {
				img[y*w+x] = 30
			}
		}
	}

	// The image buffer uses an exact w×h grid (one texel per pixel).
	in, err := dev.NewMatrixBuffer(glescompute.Uint8, w)
	if err != nil {
		log.Fatal(err)
	}
	out, err := dev.NewMatrixBuffer(glescompute.Uint8, w)
	if err != nil {
		log.Fatal(err)
	}
	if err := in.WriteUint8(img); err != nil {
		log.Fatal(err)
	}

	k, err := dev.BuildKernel(glescompute.KernelSpec{
		Name:    "blur3x3",
		Inputs:  []glescompute.Param{{Name: "img", Type: glescompute.Uint8}},
		Outputs: []glescompute.OutputSpec{{Name: "out", Type: glescompute.Uint8}},
		Source:  blurSrc,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := k.Run1(out, []*glescompute.Buffer{in}, nil); err != nil {
		log.Fatal(err)
	}
	got, err := out.ReadUint8()
	if err != nil {
		log.Fatal(err)
	}

	// CPU reference for validation.
	clampI := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	mismatches := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sum := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					sum += int(img[clampI(y+dy, 0, h-1)*w+clampI(x+dx, 0, w-1)])
				}
			}
			want := uint8((sum + 4) / 9)
			diff := int(got[y*w+x]) - int(want)
			if diff < -1 || diff > 1 { // fp32 accumulation may round ±1
				mismatches++
			}
		}
	}
	fmt.Printf("3x3 blur of a %dx%d byte image on the GPU: %d mismatches (±1 tolerance)\n", w, h, mismatches)

	// ASCII rendering of the blurred disc's middle row.
	fmt.Print("centre row: ")
	for x := 0; x < w; x += 2 {
		v := got[(h/2)*w+x]
		switch {
		case v > 180:
			fmt.Print("#")
		case v > 90:
			fmt.Print("+")
		default:
			fmt.Print(".")
		}
	}
	fmt.Println()
	if mismatches > 0 {
		log.Fatal("validation failed")
	}
	fmt.Println("OK")
}
