// Command sgemm runs the paper's second benchmark: matrix multiplication
// through the graphics pipeline. Matrices are laid out one element per
// texel so the kernel addresses them with (column, row) fetches; the inner
// product loop runs in the fragment shader with a uniform bound — exactly
// the pattern the GLSL ES Appendix A restrictions make awkward, which the
// VideoCore IV driver (and this simulator, in its default relaxed mode)
// accepts.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"glescompute"
)

const kernelSrc = `
float gc_kernel(float idx) {
	float row = floor((idx + 0.5) / u_n);
	float col = idx - row * u_n;
	float acc = 0.0;
	for (float k = 0.0; k < 2048.0; k += 1.0) {
		if (k >= u_n) { break; }
		acc += gc_a_at(k, row) * gc_b_at(col, k);
	}
	return acc;
}
`

func main() {
	n := flag.Int("n", 32, "matrix dimension")
	flag.Parse()

	dev, err := glescompute.Open(glescompute.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close()

	rng := rand.New(rand.NewSource(1))
	a := make([]float32, *n**n)
	b := make([]float32, *n**n)
	for i := range a {
		a[i] = rng.Float32()
		b[i] = rng.Float32()
	}

	ba, err := dev.NewMatrixBuffer(glescompute.Float32, *n)
	if err != nil {
		log.Fatal(err)
	}
	bb, _ := dev.NewMatrixBuffer(glescompute.Float32, *n)
	bo, _ := dev.NewMatrixBuffer(glescompute.Float32, *n)
	if err := ba.WriteFloat32(a); err != nil {
		log.Fatal(err)
	}
	if err := bb.WriteFloat32(b); err != nil {
		log.Fatal(err)
	}

	k, err := dev.BuildKernel(glescompute.KernelSpec{
		Name: "sgemm",
		Inputs: []glescompute.Param{
			{Name: "a", Type: glescompute.Float32},
			{Name: "b", Type: glescompute.Float32},
		},
		Uniforms: []string{"u_n"},
		Source:   kernelSrc,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := k.Run1(bo, []*glescompute.Buffer{ba, bb}, map[string]float32{"u_n": float32(*n)}); err != nil {
		log.Fatal(err)
	}
	got, err := bo.ReadFloat32()
	if err != nil {
		log.Fatal(err)
	}

	// CPU validation.
	var maxRel float64
	for i := 0; i < *n; i++ {
		for j := 0; j < *n; j++ {
			var acc float32
			for kk := 0; kk < *n; kk++ {
				acc += a[i**n+kk] * b[kk**n+j]
			}
			rel := math.Abs(float64(got[i**n+j]-acc)) / math.Max(math.Abs(float64(acc)), 1e-6)
			if rel > maxRel {
				maxRel = rel
			}
		}
	}
	tl := dev.Timeline()
	fmt.Printf("sgemm %dx%d on the GPU\n", *n, *n)
	fmt.Printf("max relative error vs CPU: %.3g (codec accuracy ~2^-15 per element)\n", maxRel)
	fmt.Printf("modeled device time: %v (execute %v)\n", tl.Total(), tl.Execute)
	if maxRel > 1.0/(1<<10) {
		log.Fatal("validation failed")
	}
	fmt.Println("OK")
}
