// Command nn implements the Rodinia-style nearest-neighbor benchmark the
// paper invokes when arguing its model covers real GPGPU workloads ("all
// benchmarks of Rodinia suite fit in these two cases", §III-8): compute
// the Euclidean distance from every record to a query point on the GPU,
// then select the k smallest on the CPU.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"glescompute"
)

const distSrc = `
float gc_kernel(float idx) {
	float dx = gc_lat(idx) - u_lat;
	float dy = gc_lng(idx) - u_lng;
	return sqrt(dx * dx + dy * dy);
}
`

func main() {
	const n = 8192
	const k = 5
	dev, err := glescompute.Open(glescompute.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close()

	rng := rand.New(rand.NewSource(7))
	lat := make([]float32, n)
	lng := make([]float32, n)
	for i := range lat {
		lat[i] = rng.Float32()*180 - 90
		lng[i] = rng.Float32()*360 - 180
	}
	queryLat, queryLng := float32(41.39), float32(2.17) // Barcelona (UPC)

	bLat, err := dev.NewBuffer(glescompute.Float32, n)
	if err != nil {
		log.Fatal(err)
	}
	bLng, _ := dev.NewBuffer(glescompute.Float32, n)
	bOut, _ := dev.NewBuffer(glescompute.Float32, n)
	if err := bLat.WriteFloat32(lat); err != nil {
		log.Fatal(err)
	}
	if err := bLng.WriteFloat32(lng); err != nil {
		log.Fatal(err)
	}

	kern, err := dev.BuildKernel(glescompute.KernelSpec{
		Name: "nn-distance",
		Inputs: []glescompute.Param{
			{Name: "lat", Type: glescompute.Float32},
			{Name: "lng", Type: glescompute.Float32},
		},
		Uniforms: []string{"u_lat", "u_lng"},
		Source:   distSrc,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := kern.Run1(bOut, []*glescompute.Buffer{bLat, bLng},
		map[string]float32{"u_lat": queryLat, "u_lng": queryLng}); err != nil {
		log.Fatal(err)
	}
	dists, err := bOut.ReadFloat32()
	if err != nil {
		log.Fatal(err)
	}

	// k-selection on the CPU (as Rodinia's nn does).
	type rec struct {
		idx  int
		dist float32
	}
	recs := make([]rec, n)
	for i, d := range dists {
		recs[i] = rec{i, d}
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].dist < recs[b].dist })

	// Validate the winners against CPU-computed distances.
	fmt.Printf("%d records; %d nearest to (%.2f, %.2f):\n", n, k, queryLat, queryLng)
	for i := 0; i < k; i++ {
		r := recs[i]
		dx := float64(lat[r.idx] - queryLat)
		dy := float64(lng[r.idx] - queryLng)
		want := math.Sqrt(dx*dx + dy*dy)
		rel := math.Abs(float64(r.dist)-want) / math.Max(want, 1e-9)
		fmt.Printf("  #%d record %5d at (%8.3f, %8.3f)  gpu %.4f  cpu %.4f  rel.err %.2g\n",
			i+1, r.idx, lat[r.idx], lng[r.idx], r.dist, want, rel)
		if rel > 1.0/(1<<11) {
			log.Fatal("validation failed")
		}
	}
	fmt.Println("OK")
}
