// Command nn implements the Rodinia-style nearest-neighbor benchmark the
// paper invokes when arguing its model covers real GPGPU workloads ("all
// benchmarks of Rodinia suite fit in these two cases", §III-8), as a
// two-phase device-resident pipeline: a distance kernel feeds an
// on-device min-reduction directly (no host round-trip between the map
// and the fold), while the full distance array is also exposed so the
// k-selection can run on the CPU as Rodinia's nn does.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"glescompute"
)

const distSrc = `
float gc_kernel(float idx) {
	float dx = gc_lat(idx) - u_lat;
	float dy = gc_lng(idx) - u_lng;
	return sqrt(dx * dx + dy * dy);
}
`

func main() {
	const n = 8192
	const k = 5
	dev, err := glescompute.Open(glescompute.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close()

	rng := rand.New(rand.NewSource(7))
	lat := make([]float32, n)
	lng := make([]float32, n)
	for i := range lat {
		lat[i] = rng.Float32()*180 - 90
		lng[i] = rng.Float32()*360 - 180
	}
	queryLat, queryLng := float32(41.39), float32(2.17) // Barcelona (UPC)

	bLat, err := dev.NewBuffer(glescompute.Float32, n)
	if err != nil {
		log.Fatal(err)
	}
	bLng, _ := dev.NewBuffer(glescompute.Float32, n)
	bDist, _ := dev.NewBuffer(glescompute.Float32, n)
	bMin, _ := dev.NewBuffer(glescompute.Float32, 1)
	if err := bLat.WriteFloat32(lat); err != nil {
		log.Fatal(err)
	}
	if err := bLng.WriteFloat32(lng); err != nil {
		log.Fatal(err)
	}

	kern, err := dev.BuildKernel(glescompute.KernelSpec{
		Name: "nn-distance",
		Inputs: []glescompute.Param{
			{Name: "lat", Type: glescompute.Float32},
			{Name: "lng", Type: glescompute.Float32},
		},
		Uniforms: []string{"u_lat", "u_lng"},
		Source:   distSrc,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One pipeline, two results: the distance map (read back for CPU
	// k-selection) and its on-device min (the nearest distance), where
	// the reduction samples the distance texture the map pass rendered.
	p := dev.NewPipeline()
	defer p.Close()
	pLat := p.Input(glescompute.Float32, n)
	pLng := p.Input(glescompute.Float32, n)
	dists := p.Stage(kern, nil, pLat, pLng)
	p.Output(dists)
	p.Output(p.Reduce(dists, glescompute.ReduceMin))
	if err := p.Err(); err != nil {
		log.Fatal(err)
	}

	stats, err := p.Run(
		[]*glescompute.Buffer{bDist, bMin},
		[]*glescompute.Buffer{bLat, bLng},
		map[string]float32{"u_lat": queryLat, "u_lng": queryLng})
	if err != nil {
		log.Fatal(err)
	}
	dists32, err := bDist.ReadFloat32()
	if err != nil {
		log.Fatal(err)
	}
	gpuMin, err := bMin.ReadFloat32()
	if err != nil {
		log.Fatal(err)
	}

	// k-selection on the CPU (as Rodinia's nn does).
	type rec struct {
		idx  int
		dist float32
	}
	recs := make([]rec, n)
	for i, d := range dists32 {
		recs[i] = rec{i, d}
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].dist < recs[b].dist })

	fmt.Printf("%d records; GPU pipeline ran %d passes, %d host bytes between stages\n",
		n, stats.Passes, stats.HostUploadBytes+stats.HostReadbackBytes)
	fmt.Printf("on-device min distance = %.4f (CPU-side best: %.4f)\n", gpuMin[0], recs[0].dist)
	if relErr(float64(gpuMin[0]), float64(recs[0].dist)) > 1.0/(1<<10) {
		log.Fatal("on-device min does not match CPU-side selection")
	}

	// Validate the winners against CPU-computed distances.
	fmt.Printf("%d nearest to (%.2f, %.2f):\n", k, queryLat, queryLng)
	for i := 0; i < k; i++ {
		r := recs[i]
		dx := float64(lat[r.idx] - queryLat)
		dy := float64(lng[r.idx] - queryLng)
		want := math.Sqrt(dx*dx + dy*dy)
		rel := math.Abs(float64(r.dist)-want) / math.Max(want, 1e-9)
		fmt.Printf("  #%d record %5d at (%8.3f, %8.3f)  gpu %.4f  cpu %.4f  rel.err %.2g\n",
			i+1, r.idx, lat[r.idx], lng[r.idx], r.dist, want, rel)
		if rel > 1.0/(1<<11) {
			log.Fatal("validation failed")
		}
	}
	fmt.Println("OK")
}

func relErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Max(math.Abs(want), 1e-12)
}
