package shader

// This file lowers a checked GLSL ES program to a linear bytecode stream
// over a flat float32 register file — the "shader compiler" of the
// simulated device. The companion register machine in vm.go executes the
// stream with zero per-invocation heap allocation, replacing the
// tree-walking interpreter in the hot fragment path (the interpreter in
// interp.go/eval.go remains the reference implementation).
//
// Correctness contract: for every program, the VM must produce outputs
// that are bit-identical to the interpreter AND accumulate an identical
// Stats struct, because the vc4 timing model (and therefore every modeled
// speedup this repo reports) is derived from those counters. Operation
// counts are folded at compile time into a table of Stats deltas flushed
// at basic-block boundaries, so the VM pays a single opStats instruction
// per straight-line region instead of per-operation bookkeeping.
//
// Register allocation is fully static: GLSL ES 1.00 forbids recursion (the
// checker enforces it), so every function's parameters, locals, scratch
// temporaries and return slot live at fixed offsets for the whole program.
// Aggregates (arrays, structs, matrices) occupy contiguous runs of
// registers in Type.FlatSize order, matching the flattened layout the GLES
// pipeline uses for varyings.

import (
	"fmt"

	"glescompute/internal/glsl"
)

type opcode int32

const (
	opNop       opcode = iota
	opStats            // Stats.AddStats(statTable[aux])
	opJmp              // pc = aux
	opJz               // if regs[a] == 0: pc = aux
	opJnz              // if regs[a] != 0: pc = aux
	opCall             // push pc+1; pc = funcEntry[aux]
	opRet              // pop pc, or finish when the call stack is empty
	opDiscard          // abort the invocation as discarded
	opLoopReset        // loopIters[aux] = 0
	opLoopGuard        // loopIters[aux]++ with runaway check; b = pos table index
	opLoadImm          // regs[dst] = imm
	opZero             // regs[dst:dst+n] = 0
	opMov              // regs[dst:dst+n] = regs[a:a+n] (memmove semantics)
	opSplat            // regs[dst+i] = regs[a] for i < n
	opSwizLoad         // regs[dst+i] = regs[a+swz[i]] (swz packed in aux)
	opSwizStore        // regs[dst+swz[i]] = regs[a+i]
	opLoadInd          // regs[dst:dst+n] = regs[addr:addr+n], addr = int(regs[a])
	opStoreInd         // regs[addr:addr+n] = regs[b:b+n], addr = int(regs[a])
	opLoadIndC         // regs[dst+i] = regs[int(regs[a])+swz[i]]
	opStoreIndC        // regs[int(regs[a])+swz[i]] = regs[b+i]
	opDynAddr          // regs[dst] = base + clamp(trunc(regs[a]), aux)*n; base = regs[b] or c
	opDynPick          // regs[dst] = base + swz[clamp(trunc(regs[a]), limit)] (packed aux)
	opAddrOff          // regs[dst] = regs[a] + n
	opAdd              // componentwise; aux bit0/bit1 broadcast scalar a/b
	opSub
	opMul
	opDivF
	opDivI // trunc-toward-zero, x/0 = 0 (GLSL int semantics)
	opNeg
	opNot      // regs[dst] = regs[a]==0 ? 1 : 0
	opBoolNorm // regs[dst] = regs[a]!=0 ? 1 : 0
	opXorXor
	opLt // scalar compares on component 0
	opLe
	opGt
	opGe
	opEqV // regs[dst] = 1 if regs[a:a+n] == regs[b:b+n]
	opNeV
	opConvInt  // trunc toward zero per component
	opConvBool // !=0 → 1 per component
	opMatDiag  // zero n×n then diagonal = regs[a]
	opMatMulMM // n = dim
	opMatMulMV
	opMatMulVM
	opBuiltin     // aux = builtin descriptor index
	opDiscardTake // regs[dst] = pending-discard flag; clear the flag
	opDiscardHalt // if regs[a] != 0: finish the invocation as discarded
)

// instr is one VM instruction. All operands are absolute register indices
// into the flat register file; n is a component count, aux carries
// opcode-specific payload (jump target, packed swizzle, table index).
type instr struct {
	op  opcode
	dst int32
	a   int32
	b   int32
	c   int32
	n   int32
	aux int32
	imm float32
}

// builtinDesc is the static call descriptor for one opBuiltin site.
type builtinDesc struct {
	id     glsl.BuiltinID
	dst    int32
	args   [3]int32
	scalar [3]bool // argument k broadcasts its scalar (GLSL genType rules)
	nargs  int32
	nc     int32 // result component count
	an     int32 // argument-0 component count (geometric builtins)
	dim    int32 // matrix dimension (matrixCompMult)
}

// funcInfo records the static frame of one function.
type funcInfo struct {
	fd       *glsl.FuncDecl
	entry    int32
	retBase  int32
	retSize  int32
	localOff []int32 // local slot -> register base
	tempBase int32
	tempMax  int32
}

// Compiled is an executable lowering of one shader program. It is immutable
// after Compile and safe to share between VMs (each draw worker gets its
// own VM over the same Compiled).
type Compiled struct {
	Prog *glsl.Program

	code      []instr
	initEntry int32
	mainEntry int32

	stats    []Stats    // opStats flush table
	poss     []glsl.Pos // positions for runtime (loop guard) errors
	builtins []builtinDesc

	nregs      int32
	globalBase int32
	globalEnd  int32
	globalOff  []int32 // by VarDecl.Slot
	builtinOff [glsl.NumBuiltinSlots]int32

	// mutatedRanges are the register ranges of globals written anywhere in
	// the program; the VM restores them from the snapshot between runs,
	// mirroring the interpreter's mutatedGlobals reset.
	mutatedRanges [][2]int32

	funcs    []*funcInfo
	nloops   int32
	maxDepth int32
}

// NumRegisters reports the size of the register file (diagnostics).
func (c *Compiled) NumRegisters() int { return int(c.nregs) }

// CodeLen reports the instruction count (diagnostics).
func (c *Compiled) CodeLen() int { return len(c.code) }

// compileError aborts compilation via panic/recover; Compile converts it
// into an error. Post-sema programs should never hit these — they guard
// against constructs the lowerer does not model.
type compileError struct{ err error }

type compiler struct {
	comp *Compiled
	prog *glsl.Program

	code    []instr
	pending Stats
	statIdx map[Stats]int32

	fn      *funcInfo
	tempTop int32
	funcIdx map[*glsl.FuncDecl]int32
	loops   []loopCtx
}

type loopCtx struct {
	breakL    *label
	continueL *label
}

type label struct {
	pc    int32
	fixes []int32
}

func (cc *compiler) fail(pos glsl.Pos, format string, args ...interface{}) {
	panic(compileError{fmt.Errorf("shader compile at %s: %s", pos, fmt.Sprintf(format, args...))})
}

// Compile lowers a checked program to bytecode. It returns an error for
// constructs the lowerer cannot model (callers fall back to the AST
// interpreter).
func Compile(prog *glsl.Program) (c *Compiled, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(compileError); ok {
				c, err = nil, ce.err
				return
			}
			panic(r)
		}
	}()
	if prog.Entry == nil || prog.Entry.Body == nil {
		return nil, fmt.Errorf("shader compile: program has no entry point")
	}
	c = &Compiled{Prog: prog}
	cc := &compiler{comp: c, prog: prog, statIdx: map[Stats]int32{}, funcIdx: map[*glsl.FuncDecl]int32{}}

	// Register layout: builtin slots first, then globals, then per-function
	// frames (return slot + locals), then per-function scratch areas.
	cc.layoutBuiltins()
	cc.layoutGlobals()

	reach := cc.reachableFunctions()
	for _, fd := range reach {
		fi := &funcInfo{fd: fd}
		cc.funcIdx[fd] = int32(len(c.funcs))
		c.funcs = append(c.funcs, fi)
		fi.retSize = flatSize(fd.Ret)
		fi.retBase = c.nregs
		c.nregs += fi.retSize
		fi.localOff = cc.layoutLocals(fd)
	}
	c.maxDepth = int32(len(c.funcs)) + 2

	// Compile every function body, then the global-init segment. Each gets
	// its own scratch area appended after compilation (the high-water mark
	// is only known afterwards).
	for _, fi := range c.funcs {
		cc.compileFunction(fi)
	}
	cc.compileInit()

	c.code = cc.code
	cc.buildMutatedRanges()
	// Collapse dispatch on the hot paths (direct builtin opcodes,
	// superinstructions); bit-identical by construction, see specialize.go.
	specialize(c)
	return c, nil
}

func (cc *compiler) layoutBuiltins() {
	c := cc.comp
	if cc.prog.Stage == glsl.StageVertex {
		c.builtinOff[glsl.BVSlotPosition] = c.nregs
		c.nregs += 4
		c.builtinOff[glsl.BVSlotPointSize] = c.nregs
		c.nregs++
	} else {
		c.builtinOff[glsl.BVSlotFragCoord] = c.nregs
		c.nregs += 4
		c.builtinOff[glsl.BVSlotFrontFacing] = c.nregs
		c.nregs++
		c.builtinOff[glsl.BVSlotPointCoord] = c.nregs
		c.nregs += 2
		c.builtinOff[glsl.BVSlotFragColor] = c.nregs
		c.nregs += 4
		c.builtinOff[glsl.BVSlotFragData] = c.nregs
		c.nregs += 4 * glsl.MaxDrawBuffers
	}
}

func (cc *compiler) layoutGlobals() {
	c := cc.comp
	c.globalBase = c.nregs
	c.globalOff = make([]int32, len(cc.prog.Globals))
	for i, g := range cc.prog.Globals {
		c.globalOff[i] = c.nregs
		c.nregs += flatSize(g.DeclType)
		if g.Slot != i {
			cc.fail(g.Pos, "global %q slot %d out of order", g.Name, g.Slot)
		}
	}
	c.globalEnd = c.nregs
}

// layoutLocals assigns a register base to every local slot of fd.
func (cc *compiler) layoutLocals(fd *glsl.FuncDecl) []int32 {
	decls := make([]*glsl.VarDecl, fd.LocalSize)
	for _, p := range fd.Params {
		decls[p.Slot] = p
	}
	var walk func(s glsl.Stmt)
	walk = func(s glsl.Stmt) {
		switch n := s.(type) {
		case *glsl.BlockStmt:
			for _, st := range n.Stmts {
				walk(st)
			}
		case *glsl.DeclStmt:
			for _, v := range n.Vars {
				decls[v.Slot] = v
			}
		case *glsl.IfStmt:
			walk(n.Then)
			if n.Else != nil {
				walk(n.Else)
			}
		case *glsl.ForStmt:
			if n.InitStmt != nil {
				walk(n.InitStmt)
			}
			walk(n.Body)
		case *glsl.WhileStmt:
			walk(n.Body)
		case *glsl.DoWhileStmt:
			walk(n.Body)
		}
	}
	if fd.Body != nil {
		walk(fd.Body)
	}
	off := make([]int32, fd.LocalSize)
	for i, d := range decls {
		off[i] = cc.comp.nregs
		size := int32(1)
		if d != nil {
			size = flatSize(d.DeclType)
		}
		cc.comp.nregs += size
	}
	return off
}

// reachableFunctions returns every function reachable from main or a
// global initializer, in deterministic discovery order (main first).
func (cc *compiler) reachableFunctions() []*glsl.FuncDecl {
	var order []*glsl.FuncDecl
	seen := map[*glsl.FuncDecl]bool{}
	var fromExpr func(e glsl.Expr)
	var fromStmt func(s glsl.Stmt)
	var visit func(fd *glsl.FuncDecl)
	visit = func(fd *glsl.FuncDecl) {
		if fd == nil || seen[fd] {
			return
		}
		seen[fd] = true
		order = append(order, fd)
		if fd.Body != nil {
			fromStmt(fd.Body)
		}
	}
	fromExpr = func(e glsl.Expr) {
		switch n := e.(type) {
		case *glsl.CallExpr:
			if n.Kind == glsl.CallUser {
				visit(n.Func)
			}
			for _, a := range n.Args {
				fromExpr(a)
			}
		case *glsl.BinaryExpr:
			fromExpr(n.X)
			fromExpr(n.Y)
		case *glsl.UnaryExpr:
			fromExpr(n.X)
		case *glsl.CondExpr:
			fromExpr(n.Cond)
			fromExpr(n.Then)
			fromExpr(n.Else)
		case *glsl.AssignExpr:
			fromExpr(n.LHS)
			fromExpr(n.RHS)
		case *glsl.SequenceExpr:
			fromExpr(n.X)
			fromExpr(n.Y)
		case *glsl.FieldExpr:
			fromExpr(n.X)
		case *glsl.IndexExpr:
			fromExpr(n.X)
			fromExpr(n.Index)
		}
	}
	fromStmt = func(s glsl.Stmt) {
		switch n := s.(type) {
		case *glsl.BlockStmt:
			for _, st := range n.Stmts {
				fromStmt(st)
			}
		case *glsl.DeclStmt:
			for _, v := range n.Vars {
				if v.Init != nil {
					fromExpr(v.Init)
				}
			}
		case *glsl.ExprStmt:
			fromExpr(n.X)
		case *glsl.IfStmt:
			fromExpr(n.Cond)
			fromStmt(n.Then)
			if n.Else != nil {
				fromStmt(n.Else)
			}
		case *glsl.ForStmt:
			if n.InitStmt != nil {
				fromStmt(n.InitStmt)
			}
			if n.Cond != nil {
				fromExpr(n.Cond)
			}
			if n.Post != nil {
				fromExpr(n.Post)
			}
			fromStmt(n.Body)
		case *glsl.WhileStmt:
			fromExpr(n.Cond)
			fromStmt(n.Body)
		case *glsl.DoWhileStmt:
			fromStmt(n.Body)
			fromExpr(n.Cond)
		case *glsl.ReturnStmt:
			if n.X != nil {
				fromExpr(n.X)
			}
		}
	}
	visit(cc.prog.Entry)
	for _, g := range cc.prog.Globals {
		if g.Init != nil && g.ConstVal == nil {
			fromExpr(g.Init)
		}
	}
	return order
}

// ---- Emission helpers ----

func (cc *compiler) emit(in instr) int32 {
	cc.code = append(cc.code, in)
	return int32(len(cc.code) - 1)
}

func (cc *compiler) flushStats() {
	if cc.pending == (Stats{}) {
		return
	}
	idx, ok := cc.statIdx[cc.pending]
	if !ok {
		idx = int32(len(cc.comp.stats))
		cc.comp.stats = append(cc.comp.stats, cc.pending)
		cc.statIdx[cc.pending] = idx
	}
	cc.emit(instr{op: opStats, aux: idx})
	cc.pending = Stats{}
}

func (cc *compiler) newLabel() *label { return &label{pc: -1} }

func (cc *compiler) bind(l *label) {
	cc.flushStats()
	l.pc = int32(len(cc.code))
	for _, at := range l.fixes {
		cc.code[at].aux = l.pc
	}
	l.fixes = nil
}

func (cc *compiler) jump(op opcode, cond int32, l *label) {
	cc.flushStats()
	at := cc.emit(instr{op: op, a: cond, aux: l.pc})
	if l.pc < 0 {
		l.fixes = append(l.fixes, at)
	}
}

func (cc *compiler) posIndex(p glsl.Pos) int32 {
	cc.comp.poss = append(cc.comp.poss, p)
	return int32(len(cc.comp.poss) - 1)
}

// temp allocates n scratch registers in the current frame.
func (cc *compiler) temp(n int32) int32 {
	r := cc.fn.tempBase + cc.tempTop
	cc.tempTop += n
	if cc.tempTop > cc.fn.tempMax {
		cc.fn.tempMax = cc.tempTop
	}
	return r
}

func flatSize(t *glsl.Type) int32 {
	if t == nil || t.Kind == glsl.KVoid {
		return 0
	}
	return int32(t.FlatSize())
}

func compCount(t *glsl.Type) int32 { return int32(t.ComponentCount()) }

// fieldOffset is the flat offset of field idx inside struct type t.
func fieldOffset(t *glsl.Type, idx int) int32 {
	var off int32
	for i := 0; i < idx; i++ {
		off += flatSize(t.Struct.Fields[i].Type)
	}
	return off
}

func packSwz(swz []int) int32 {
	var p int32
	for i, s := range swz {
		p |= int32(s) << (4 * i)
	}
	return p
}

// ---- Function compilation ----

func (cc *compiler) compileFunction(fi *funcInfo) {
	cc.fn = fi
	cc.tempTop = 0
	fi.tempBase = cc.comp.nregs
	fi.entry = int32(len(cc.code))
	if fi.retSize > 0 {
		// Falling off the end of a value-returning function yields the
		// zero value, like the interpreter's hasRet handling.
		cc.emit(instr{op: opZero, dst: fi.retBase, n: fi.retSize})
	}
	cc.compileStmt(fi.fd.Body)
	cc.flushStats()
	cc.emit(instr{op: opRet})
	cc.comp.nregs = fi.tempBase + fi.tempMax
	if fi.fd == cc.prog.Entry {
		cc.comp.mainEntry = fi.entry
	}
}

// compileInit emits the global-initializer segment (the code InitGlobals
// runs once per executor, with the same Stats accounting as the
// interpreter's InitGlobals).
func (cc *compiler) compileInit() {
	fi := &funcInfo{fd: cc.prog.Entry} // pseudo-frame for scratch space
	cc.fn = fi
	cc.tempTop = 0
	fi.tempBase = cc.comp.nregs
	cc.comp.initEntry = int32(len(cc.code))
	for i, g := range cc.prog.Globals {
		if g.Init == nil {
			continue
		}
		base := cc.comp.globalOff[i]
		size := flatSize(g.DeclType)
		if g.ConstVal != nil {
			// FromConst: folded components, zero-padded — no stats.
			for k := int32(0); k < size; k++ {
				var v float32
				if int(k) < len(g.ConstVal.F) {
					v = g.ConstVal.F[k]
				}
				cc.emit(instr{op: opLoadImm, dst: base + k, imm: v})
			}
			continue
		}
		r, _ := cc.compileExpr(g.Init)
		cc.emit(instr{op: opMov, dst: base, a: r, n: size})
	}
	cc.flushStats()
	cc.emit(instr{op: opRet})
	cc.comp.nregs = fi.tempBase + fi.tempMax
}

func (cc *compiler) buildMutatedRanges() {
	for _, slot := range MutatedGlobalSlots(cc.prog) {
		off := cc.comp.globalOff[slot]
		size := flatSize(cc.prog.Globals[slot].DeclType)
		if size > 0 {
			cc.comp.mutatedRanges = append(cc.comp.mutatedRanges, [2]int32{off, size})
		}
	}
}

// varReg returns the register base of a resolved variable reference.
func (cc *compiler) varReg(n *glsl.Ident) int32 {
	if n.BRef != nil {
		return cc.comp.builtinOff[n.BRef.Slot]
	}
	if n.Ref == nil {
		cc.fail(n.Pos, "unresolved identifier %q", n.Name)
	}
	if n.Ref.Storage == glsl.StorageGlobal {
		return cc.comp.globalOff[n.Ref.Slot]
	}
	if cc.fn.localOff == nil {
		cc.fail(n.Pos, "local %q used outside a function frame", n.Name)
	}
	return cc.fn.localOff[n.Ref.Slot]
}

// ---- Statements ----

func (cc *compiler) compileStmt(s glsl.Stmt) {
	mark := cc.tempTop
	defer func() { cc.tempTop = mark }()
	switch n := s.(type) {
	case *glsl.BlockStmt:
		for _, st := range n.Stmts {
			cc.compileStmt(st)
		}
	case *glsl.DeclStmt:
		for _, v := range n.Vars {
			dst := cc.fn.localOff[v.Slot]
			size := flatSize(v.DeclType)
			if v.Init == nil {
				cc.emit(instr{op: opZero, dst: dst, n: size})
				continue
			}
			sub := cc.tempTop
			r, _ := cc.compileExpr(v.Init)
			cc.pending.Mov += uint64(v.DeclType.ComponentCount())
			cc.emit(instr{op: opMov, dst: dst, a: r, n: size})
			cc.tempTop = sub
		}
	case *glsl.ExprStmt:
		cc.compileExpr(n.X)
	case *glsl.EmptyStmt:
	case *glsl.IfStmt:
		cond, _ := cc.compileExpr(n.Cond)
		cc.pending.Branch++
		elseL := cc.newLabel()
		endL := cc.newLabel()
		cc.jump(opJz, cond, elseL)
		cc.compileStmt(n.Then)
		if n.Else != nil {
			cc.jump(opJmp, 0, endL)
			cc.bind(elseL)
			cc.compileStmt(n.Else)
			cc.bind(endL)
		} else {
			cc.bind(elseL)
		}
	case *glsl.ForStmt:
		if n.InitStmt != nil {
			cc.compileStmt(n.InitStmt)
		}
		loopID := cc.comp.nloops
		cc.comp.nloops++
		head, post, exit := cc.newLabel(), cc.newLabel(), cc.newLabel()
		cc.emit(instr{op: opLoopReset, aux: loopID})
		cc.bind(head)
		cc.emit(instr{op: opLoopGuard, aux: loopID, b: cc.posIndex(n.Pos)})
		if n.Cond != nil {
			cond, _ := cc.compileExpr(n.Cond)
			cc.pending.Branch++
			cc.jump(opJz, cond, exit)
		}
		cc.loops = append(cc.loops, loopCtx{breakL: exit, continueL: post})
		cc.compileStmt(n.Body)
		cc.loops = cc.loops[:len(cc.loops)-1]
		cc.bind(post)
		if n.Post != nil {
			cc.compileExpr(n.Post)
		}
		cc.jump(opJmp, 0, head)
		cc.bind(exit)
	case *glsl.WhileStmt:
		loopID := cc.comp.nloops
		cc.comp.nloops++
		head, exit := cc.newLabel(), cc.newLabel()
		cc.emit(instr{op: opLoopReset, aux: loopID})
		cc.bind(head)
		cc.emit(instr{op: opLoopGuard, aux: loopID, b: cc.posIndex(n.Pos)})
		cond, _ := cc.compileExpr(n.Cond)
		cc.pending.Branch++
		cc.jump(opJz, cond, exit)
		cc.loops = append(cc.loops, loopCtx{breakL: exit, continueL: head})
		cc.compileStmt(n.Body)
		cc.loops = cc.loops[:len(cc.loops)-1]
		cc.jump(opJmp, 0, head)
		cc.bind(exit)
	case *glsl.DoWhileStmt:
		loopID := cc.comp.nloops
		cc.comp.nloops++
		head, condL, exit := cc.newLabel(), cc.newLabel(), cc.newLabel()
		cc.emit(instr{op: opLoopReset, aux: loopID})
		cc.bind(head)
		cc.emit(instr{op: opLoopGuard, aux: loopID, b: cc.posIndex(n.Pos)})
		cc.loops = append(cc.loops, loopCtx{breakL: exit, continueL: condL})
		cc.compileStmt(n.Body)
		cc.loops = cc.loops[:len(cc.loops)-1]
		cc.bind(condL)
		cond, _ := cc.compileExpr(n.Cond)
		cc.pending.Branch++
		cc.jump(opJnz, cond, head)
		cc.bind(exit)
	case *glsl.ReturnStmt:
		if n.X != nil {
			r, _ := cc.compileExpr(n.X)
			cc.emit(instr{op: opMov, dst: cc.fn.retBase, a: r, n: cc.fn.retSize})
		}
		cc.flushStats()
		cc.emit(instr{op: opRet})
	case *glsl.BreakStmt:
		if len(cc.loops) == 0 {
			cc.fail(n.NodePos(), "break outside loop")
		}
		cc.jump(opJmp, 0, cc.loops[len(cc.loops)-1].breakL)
	case *glsl.ContinueStmt:
		if len(cc.loops) == 0 {
			cc.fail(n.NodePos(), "continue outside loop")
		}
		cc.jump(opJmp, 0, cc.loops[len(cc.loops)-1].continueL)
	case *glsl.DiscardStmt:
		cc.flushStats()
		cc.emit(instr{op: opDiscard})
	default:
		cc.fail(s.NodePos(), "unknown statement %T", s)
	}
}

// ---- Expressions ----

// hasSideEffects reports whether evaluating e can mutate program state
// (assignments, increments, or user function calls, which may write
// globals and out parameters). Used to decide when an operand read from
// variable storage must be materialized before a sibling runs.
func hasSideEffects(e glsl.Expr) bool {
	switch n := e.(type) {
	case *glsl.AssignExpr:
		return true
	case *glsl.UnaryExpr:
		if n.Op == glsl.TokInc || n.Op == glsl.TokDec {
			return true
		}
		return hasSideEffects(n.X)
	case *glsl.BinaryExpr:
		return hasSideEffects(n.X) || hasSideEffects(n.Y)
	case *glsl.CondExpr:
		return hasSideEffects(n.Cond) || hasSideEffects(n.Then) || hasSideEffects(n.Else)
	case *glsl.SequenceExpr:
		return hasSideEffects(n.X) || hasSideEffects(n.Y)
	case *glsl.CallExpr:
		if n.Kind == glsl.CallUser {
			return true
		}
		for _, a := range n.Args {
			if hasSideEffects(a) {
				return true
			}
		}
		return false
	case *glsl.FieldExpr:
		return hasSideEffects(n.X)
	case *glsl.IndexExpr:
		return hasSideEffects(n.X) || hasSideEffects(n.Index)
	default:
		return false
	}
}

// containsUserCall reports whether e contains any user function call.
func containsUserCall(e glsl.Expr) bool {
	switch n := e.(type) {
	case *glsl.AssignExpr:
		return containsUserCall(n.LHS) || containsUserCall(n.RHS)
	case *glsl.UnaryExpr:
		return containsUserCall(n.X)
	case *glsl.BinaryExpr:
		return containsUserCall(n.X) || containsUserCall(n.Y)
	case *glsl.CondExpr:
		return containsUserCall(n.Cond) || containsUserCall(n.Then) || containsUserCall(n.Else)
	case *glsl.SequenceExpr:
		return containsUserCall(n.X) || containsUserCall(n.Y)
	case *glsl.CallExpr:
		if n.Kind == glsl.CallUser {
			return true
		}
		for _, a := range n.Args {
			if containsUserCall(a) {
				return true
			}
		}
		return false
	case *glsl.FieldExpr:
		return containsUserCall(n.X)
	case *glsl.IndexExpr:
		return containsUserCall(n.X) || containsUserCall(n.Index)
	default:
		return false
	}
}

// materialize copies a direct-storage operand into a scratch temp so later
// side effects cannot change the already-evaluated value.
func (cc *compiler) materialize(reg int32, direct bool, size int32) int32 {
	if !direct {
		return reg
	}
	t := cc.temp(size)
	cc.emit(instr{op: opMov, dst: t, a: reg, n: size})
	return t
}

// compileExpr emits code computing e and returns the register base holding
// its flattened value. direct reports that the register is live variable
// storage (not a scratch temp), so callers must respect evaluation-order
// hazards before reusing it.
func (cc *compiler) compileExpr(e glsl.Expr) (reg int32, direct bool) {
	switch n := e.(type) {
	case *glsl.IntLit:
		t := cc.temp(1)
		cc.emit(instr{op: opLoadImm, dst: t, imm: float32(n.Val)})
		return t, false
	case *glsl.FloatLit:
		t := cc.temp(1)
		cc.emit(instr{op: opLoadImm, dst: t, imm: n.Val})
		return t, false
	case *glsl.BoolLit:
		t := cc.temp(1)
		var v float32
		if n.Val {
			v = 1
		}
		cc.emit(instr{op: opLoadImm, dst: t, imm: v})
		return t, false
	case *glsl.Ident:
		return cc.varReg(n), true
	case *glsl.BinaryExpr:
		return cc.compileBinary(n)
	case *glsl.UnaryExpr:
		return cc.compileUnary(n)
	case *glsl.CondExpr:
		cond, _ := cc.compileExpr(n.Cond)
		cc.pending.Select += uint64(n.Type().ComponentCount())
		size := flatSize(n.Type())
		out := cc.temp(size)
		elseL, endL := cc.newLabel(), cc.newLabel()
		cc.jump(opJz, cond, elseL)
		mark := cc.tempTop
		tr, _ := cc.compileExpr(n.Then)
		cc.emit(instr{op: opMov, dst: out, a: tr, n: size})
		cc.jump(opJmp, 0, endL)
		cc.bind(elseL)
		cc.tempTop = mark // branches are exclusive; share scratch space
		er, _ := cc.compileExpr(n.Else)
		cc.emit(instr{op: opMov, dst: out, a: er, n: size})
		cc.bind(endL)
		return out, false
	case *glsl.AssignExpr:
		return cc.compileAssign(n)
	case *glsl.SequenceExpr:
		cc.compileExpr(n.X)
		return cc.compileExpr(n.Y)
	case *glsl.CallExpr:
		return cc.compileCall(n)
	case *glsl.FieldExpr:
		return cc.compileField(n)
	case *glsl.IndexExpr:
		return cc.compileIndex(n)
	}
	cc.fail(e.NodePos(), "unknown expression %T", e)
	return 0, false
}

func (cc *compiler) compileField(n *glsl.FieldExpr) (int32, bool) {
	x, xdir := cc.compileExpr(n.X)
	if n.Swizzle != nil {
		out := cc.temp(int32(len(n.Swizzle)))
		cc.emit(instr{op: opSwizLoad, dst: out, a: x, n: int32(len(n.Swizzle)), aux: packSwz(n.Swizzle)})
		cc.pending.Mov += uint64(len(n.Swizzle))
		return out, false
	}
	xt := n.X.Type()
	if xt.Kind != glsl.KStruct || n.FieldIndex < 0 || n.FieldIndex >= len(xt.Struct.Fields) {
		cc.fail(n.Pos, "field index out of range")
	}
	return x + fieldOffset(xt, n.FieldIndex), xdir
}

func (cc *compiler) compileIndex(n *glsl.IndexExpr) (int32, bool) {
	x, xdir := cc.compileExpr(n.X)
	xt := n.X.Type()
	if xdir && hasSideEffects(n.Index) {
		// The interpreter evaluates x to a value before the index runs.
		x = cc.materialize(x, true, flatSize(xt))
		xdir = false
	}
	if lit, ok := n.Index.(*glsl.IntLit); ok {
		idx := clampIndex(int(lit.Val), indexLimit(xt))
		switch {
		case xt.Kind == glsl.KArray:
			return x + int32(idx)*flatSize(xt.Elem), xdir
		case xt.IsVector():
			out := cc.temp(1)
			cc.emit(instr{op: opMov, dst: out, a: x + int32(idx), n: 1})
			cc.pending.Mov++
			return out, false
		case xt.IsMatrix():
			dim := int32(xt.MatrixDim())
			out := cc.temp(dim)
			cc.emit(instr{op: opMov, dst: out, a: x + int32(idx)*dim, n: dim})
			cc.pending.Mov += uint64(dim)
			return out, false
		}
		cc.fail(n.Pos, "type %s is not indexable", xt)
	}
	idxReg, _ := cc.compileExpr(n.Index)
	switch {
	case xt.Kind == glsl.KArray:
		stride := flatSize(xt.Elem)
		addr := cc.emitDynAddr(idxReg, -1, x, stride, int32(xt.ArrayLen))
		out := cc.temp(stride)
		cc.emit(instr{op: opLoadInd, dst: out, a: addr, n: stride})
		return out, false
	case xt.IsVector():
		addr := cc.emitDynAddr(idxReg, -1, x, 1, int32(xt.VectorSize()))
		out := cc.temp(1)
		cc.emit(instr{op: opLoadInd, dst: out, a: addr, n: 1})
		cc.pending.Mov++
		return out, false
	case xt.IsMatrix():
		dim := int32(xt.MatrixDim())
		addr := cc.emitDynAddr(idxReg, -1, x, dim, dim)
		out := cc.temp(dim)
		cc.emit(instr{op: opLoadInd, dst: out, a: addr, n: dim})
		cc.pending.Mov += uint64(dim)
		return out, false
	}
	cc.fail(n.Pos, "type %s is not indexable", xt)
	return 0, false
}

func indexLimit(t *glsl.Type) int {
	switch {
	case t.Kind == glsl.KArray:
		return t.ArrayLen
	case t.IsVector():
		return t.VectorSize()
	case t.IsMatrix():
		return t.MatrixDim()
	}
	return 1
}

// emitDynAddr computes base + clamp(trunc(idx))*stride into a fresh temp.
// baseReg >= 0 uses a dynamic base address; otherwise baseConst is the
// static base.
func (cc *compiler) emitDynAddr(idxReg, baseReg, baseConst, stride, limit int32) int32 {
	addr := cc.temp(1)
	cc.emit(instr{op: opDynAddr, dst: addr, a: idxReg, b: baseReg, c: baseConst, n: stride, aux: limit})
	return addr
}

func (cc *compiler) compileUnary(n *glsl.UnaryExpr) (int32, bool) {
	if n.Op == glsl.TokInc || n.Op == glsl.TokDec {
		curR, curDir := cc.compileExpr(n.X)
		nc := compCount(n.X.Type())
		cur := cc.materialize(curR, curDir, nc)
		one := cc.temp(1)
		cc.emit(instr{op: opLoadImm, dst: one, imm: 1})
		op := glsl.TokPlus
		if n.Op == glsl.TokDec {
			op = glsl.TokMinus
		}
		oneT := glsl.TypeFloat
		if n.X.Type().ComponentType().Kind == glsl.KInt {
			oneT = glsl.TypeInt
		}
		next := cc.emitBinaryOp(op, cur, one, n.X.Type(), oneT, n.X.Type())
		lv := cc.compileLValue(n.X)
		cc.store(lv, next, false, n.X.Type())
		if n.Postfix {
			return cur, false
		}
		return next, false
	}
	x, xdir := cc.compileExpr(n.X)
	nc := compCount(n.X.Type())
	switch n.Op {
	case glsl.TokPlus:
		return x, xdir
	case glsl.TokMinus:
		out := cc.temp(nc)
		cc.emit(instr{op: opNeg, dst: out, a: x, n: nc})
		cc.pending.Add += uint64(nc)
		return out, false
	case glsl.TokBang:
		out := cc.temp(1)
		cc.emit(instr{op: opNot, dst: out, a: x})
		cc.pending.Logic++
		return out, false
	}
	cc.fail(n.Pos, "unsupported unary operator %s", n.Op)
	return 0, false
}

func (cc *compiler) compileBinary(n *glsl.BinaryExpr) (int32, bool) {
	switch n.Op {
	case glsl.TokAndAnd:
		x, _ := cc.compileExpr(n.X)
		cc.pending.Logic++
		out := cc.temp(1)
		falseL, endL := cc.newLabel(), cc.newLabel()
		cc.jump(opJz, x, falseL)
		y, _ := cc.compileExpr(n.Y)
		cc.emit(instr{op: opBoolNorm, dst: out, a: y})
		cc.jump(opJmp, 0, endL)
		cc.bind(falseL)
		cc.emit(instr{op: opLoadImm, dst: out, imm: 0})
		cc.bind(endL)
		return out, false
	case glsl.TokOrOr:
		x, _ := cc.compileExpr(n.X)
		cc.pending.Logic++
		out := cc.temp(1)
		trueL, endL := cc.newLabel(), cc.newLabel()
		cc.jump(opJnz, x, trueL)
		y, _ := cc.compileExpr(n.Y)
		cc.emit(instr{op: opBoolNorm, dst: out, a: y})
		cc.jump(opJmp, 0, endL)
		cc.bind(trueL)
		cc.emit(instr{op: opLoadImm, dst: out, imm: 1})
		cc.bind(endL)
		return out, false
	}
	x, xdir := cc.compileExpr(n.X)
	if xdir && hasSideEffects(n.Y) {
		x = cc.materialize(x, true, flatSize(n.X.Type()))
	}
	y, _ := cc.compileExpr(n.Y)
	return cc.emitBinaryOp(n.Op, x, y, n.X.Type(), n.Y.Type(), n.Type()), false
}

// emitBinaryOp mirrors the interpreter's applyBinary, including its Stats
// accounting.
func (cc *compiler) emitBinaryOp(op glsl.TokenKind, x, y int32, xt, yt, resT *glsl.Type) int32 {
	switch op {
	case glsl.TokXorXor:
		cc.pending.Logic++
		out := cc.temp(1)
		cc.emit(instr{op: opXorXor, dst: out, a: x, b: y})
		return out
	case glsl.TokLess, glsl.TokGreater, glsl.TokLessEq, glsl.TokGreaterEq:
		cc.pending.Cmp++
		out := cc.temp(1)
		var o opcode
		switch op {
		case glsl.TokLess:
			o = opLt
		case glsl.TokGreater:
			o = opGt
		case glsl.TokLessEq:
			o = opLe
		case glsl.TokGreaterEq:
			o = opGe
		}
		cc.emit(instr{op: o, dst: out, a: x, b: y})
		return out
	case glsl.TokEqEq, glsl.TokNotEq:
		cc.pending.Cmp += uint64(maxI(1, xt.ComponentCount()))
		out := cc.temp(1)
		o := opEqV
		if op == glsl.TokNotEq {
			o = opNeV
		}
		cc.emit(instr{op: o, dst: out, a: x, b: y, n: flatSize(xt)})
		return out
	}

	if op == glsl.TokStar && (xt.IsMatrix() || yt.IsMatrix()) &&
		!(xt.IsMatrix() && yt.IsScalar()) && !(xt.IsScalar() && yt.IsMatrix()) {
		out := cc.temp(flatSize(resT))
		switch {
		case xt.IsMatrix() && yt.IsMatrix():
			d := xt.MatrixDim()
			cc.emit(instr{op: opMatMulMM, dst: out, a: x, b: y, n: int32(d)})
			cc.pending.Mul += uint64(d * d * d)
			cc.pending.Add += uint64(d * d * (d - 1))
		case xt.IsMatrix() && yt.IsVector():
			d := xt.MatrixDim()
			cc.emit(instr{op: opMatMulMV, dst: out, a: x, b: y, n: int32(d)})
			cc.pending.Mul += uint64(d * d)
			cc.pending.Add += uint64(d * (d - 1))
		case xt.IsVector() && yt.IsMatrix():
			d := yt.MatrixDim()
			cc.emit(instr{op: opMatMulVM, dst: out, a: x, b: y, n: int32(d)})
			cc.pending.Mul += uint64(d * d)
			cc.pending.Add += uint64(d * (d - 1))
		}
		return out
	}

	isInt := resT.ComponentType().Kind == glsl.KInt
	nc := compCount(resT)
	var aux int32
	if xt.IsScalar() && nc > 1 {
		aux |= 1
	}
	if yt.IsScalar() && nc > 1 {
		aux |= 2
	}
	var o opcode
	switch op {
	case glsl.TokPlus:
		o = opAdd
		cc.pending.Add += uint64(nc)
	case glsl.TokMinus:
		o = opSub
		cc.pending.Add += uint64(nc)
	case glsl.TokStar:
		o = opMul
		cc.pending.Mul += uint64(nc)
	case glsl.TokSlash:
		if isInt {
			o = opDivI
		} else {
			o = opDivF
		}
		cc.pending.Div += uint64(nc)
	default:
		cc.fail(glsl.Pos{}, "unsupported binary operator %s", op)
	}
	out := cc.temp(nc)
	cc.emit(instr{op: o, dst: out, a: x, b: y, n: nc, aux: aux})
	return out
}

// ---- L-values ----

// lplace is a compiled storage location: a static register base or a
// runtime-computed address register, with an optional static component
// selection on top (the compile-time mirror of the interpreter's lref).
type lplace struct {
	base  int32
	addr  int32 // register holding the address; -1 when static
	comps []int
	size  int32 // flat size when comps == nil
}

func (cc *compiler) compileLValue(e glsl.Expr) lplace {
	switch n := e.(type) {
	case *glsl.Ident:
		return lplace{base: cc.varReg(n), addr: -1, size: flatSize(n.Type())}
	case *glsl.FieldExpr:
		base := cc.compileLValue(n.X)
		if n.Swizzle != nil {
			if base.comps == nil {
				base.comps = append([]int{}, n.Swizzle...)
			} else {
				out := make([]int, len(n.Swizzle))
				for i, s := range n.Swizzle {
					out[i] = base.comps[s]
				}
				base.comps = out
			}
			return base
		}
		if base.comps != nil {
			cc.fail(n.Pos, "field access through component selection")
		}
		xt := n.X.Type()
		off := fieldOffset(xt, n.FieldIndex)
		base.size = flatSize(n.Type())
		if base.addr < 0 {
			base.base += off
			return base
		}
		if off != 0 {
			na := cc.temp(1)
			cc.emit(instr{op: opAddrOff, dst: na, a: base.addr, n: off})
			base.addr = na
		}
		return base
	case *glsl.IndexExpr:
		base := cc.compileLValue(n.X)
		xt := n.X.Type()
		if lit, ok := n.Index.(*glsl.IntLit); ok {
			idx := clampIndex(int(lit.Val), indexLimit(xt))
			switch {
			case xt.Kind == glsl.KArray:
				if base.comps != nil {
					cc.fail(n.Pos, "array access through component selection")
				}
				off := int32(idx) * flatSize(xt.Elem)
				base.size = flatSize(xt.Elem)
				if base.addr < 0 {
					base.base += off
				} else if off != 0 {
					na := cc.temp(1)
					cc.emit(instr{op: opAddrOff, dst: na, a: base.addr, n: off})
					base.addr = na
				}
				return base
			case xt.IsVector():
				if base.comps != nil {
					base.comps = []int{base.comps[idx]}
					return base
				}
				base.comps = []int{idx}
				return base
			case xt.IsMatrix():
				dim := xt.MatrixDim()
				col := make([]int, dim)
				for i := range col {
					col[i] = idx*dim + i
				}
				base.comps = col
				return base
			}
			cc.fail(n.Pos, "type %s is not indexable", xt)
		}
		idxReg, _ := cc.compileExpr(n.Index)
		switch {
		case xt.Kind == glsl.KArray:
			if base.comps != nil {
				cc.fail(n.Pos, "array access through component selection")
			}
			stride := flatSize(xt.Elem)
			base.addr = cc.emitDynAddr(idxReg, base.addr, base.base, stride, int32(xt.ArrayLen))
			base.size = stride
			return base
		case xt.IsVector():
			limit := int32(xt.VectorSize())
			if base.comps != nil {
				// Dynamic component through a swizzle: pick from the
				// permutation table at runtime.
				addr := cc.temp(1)
				aux := limit
				aux |= packSwz(base.comps) << 8
				cc.emit(instr{op: opDynPick, dst: addr, a: idxReg, b: base.addr, c: base.base, aux: aux})
				return lplace{addr: addr, size: 1}
			}
			base.addr = cc.emitDynAddr(idxReg, base.addr, base.base, 1, limit)
			base.size = 1
			return base
		case xt.IsMatrix():
			dim := int32(xt.MatrixDim())
			base.addr = cc.emitDynAddr(idxReg, base.addr, base.base, dim, dim)
			base.size = dim
			return base
		}
		cc.fail(n.Pos, "type %s is not indexable", xt)
	}
	cc.fail(e.NodePos(), "expression is not an l-value")
	return lplace{}
}

// store writes src into the compiled place, mirroring Exec.store (raw
// component copy, no conversions, no Stats).
func (cc *compiler) store(lv lplace, src int32, srcDirect bool, t *glsl.Type) {
	if lv.comps == nil {
		if lv.addr < 0 {
			cc.emit(instr{op: opMov, dst: lv.base, a: src, n: lv.size})
		} else {
			cc.emit(instr{op: opStoreInd, a: lv.addr, b: src, n: lv.size})
		}
		return
	}
	// Component stores write one lane at a time; materialize a direct
	// source so overlapping selections (v.xy = v.yx) behave like the
	// interpreter's evaluate-then-store.
	src = cc.materialize(src, srcDirect, int32(len(lv.comps)))
	if lv.addr < 0 {
		cc.emit(instr{op: opSwizStore, dst: lv.base, a: src, n: int32(len(lv.comps)), aux: packSwz(lv.comps)})
	} else {
		cc.emit(instr{op: opStoreIndC, a: lv.addr, b: src, n: int32(len(lv.comps)), aux: packSwz(lv.comps)})
	}
}

func (cc *compiler) compileAssign(n *glsl.AssignExpr) (int32, bool) {
	rhs, rhsDir := cc.compileExpr(n.RHS)
	// The interpreter evaluates the RHS to a value before resolving the
	// destination; materialize it if resolving the LHS can mutate state.
	if rhsDir && hasSideEffects(n.LHS) {
		rhs = cc.materialize(rhs, true, flatSize(n.RHS.Type()))
		rhsDir = false
	}
	lv := cc.compileLValue(n.LHS)
	if n.Op != glsl.TokAssign {
		cur, curDir := cc.compileExpr(n.LHS)
		_ = curDir
		op := map[glsl.TokenKind]glsl.TokenKind{
			glsl.TokPlusAssign:  glsl.TokPlus,
			glsl.TokMinusAssign: glsl.TokMinus,
			glsl.TokStarAssign:  glsl.TokStar,
			glsl.TokSlashAssign: glsl.TokSlash,
		}[n.Op]
		rhs = cc.emitBinaryOp(op, cur, rhs, n.LHS.Type(), n.RHS.Type(), n.Type())
		rhsDir = false
	}
	// The interpreter materializes the RHS value before storing; do the
	// same so the assignment result survives the store.
	rhs = cc.materialize(rhs, rhsDir, flatSize(n.Type()))
	cc.pending.Mov += uint64(maxI(1, n.Type().ComponentCount()))
	cc.store(lv, rhs, false, n.Type())
	return rhs, false
}

// ---- Calls ----

func (cc *compiler) compileCall(n *glsl.CallExpr) (int32, bool) {
	switch n.Kind {
	case glsl.CallTypeConstructor:
		return cc.compileConstructor(n)
	case glsl.CallStructConstructor:
		t := n.CtorType
		out := cc.temp(flatSize(t))
		args := cc.compileArgs(n.Args)
		off := out
		for i, f := range t.Struct.Fields {
			size := flatSize(f.Type)
			cc.emit(instr{op: opMov, dst: off, a: args[i], n: size})
			off += size
		}
		return out, false
	case glsl.CallBuiltin:
		return cc.compileBuiltin(n)
	case glsl.CallUser:
		return cc.compileUserCall(n)
	}
	cc.fail(n.Pos, "unresolved call to %q", n.Callee)
	return 0, false
}

// compileArgs evaluates an argument list left to right, materializing
// direct operands whenever a later argument has side effects.
func (cc *compiler) compileArgs(args []glsl.Expr) []int32 {
	regs := make([]int32, len(args))
	for i, a := range args {
		r, dir := cc.compileExpr(a)
		if dir {
			for _, later := range args[i+1:] {
				if hasSideEffects(later) {
					r = cc.materialize(r, true, flatSize(a.Type()))
					break
				}
			}
		}
		regs[i] = r
	}
	return regs
}

func (cc *compiler) compileConstructor(n *glsl.CallExpr) (int32, bool) {
	t := n.CtorType
	args := cc.compileArgs(n.Args)
	switch {
	case t.IsScalar():
		out := cc.temp(1)
		cc.emitConvert(out, args[0], 1, t, n.Args[0].Type())
		cc.pending.Mov++
		return out, false
	case t.IsVector():
		size := int32(t.VectorSize())
		out := cc.temp(size)
		if len(args) == 1 && n.Args[0].Type().IsScalar() {
			conv := cc.temp(1)
			cc.emitConvert(conv, args[0], 1, t, n.Args[0].Type())
			cc.emit(instr{op: opSplat, dst: out, a: conv, n: size})
		} else {
			cc.emit(instr{op: opZero, dst: out, n: size})
			var k int32
			for i, a := range args {
				at := n.Args[i].Type()
				an := compCount(at)
				cnt := an
				if k+cnt > size {
					cnt = size - k
				}
				if cnt <= 0 {
					break
				}
				cc.emitConvert(out+k, a, cnt, t, at)
				k += cnt
			}
		}
		cc.pending.Mov += uint64(size)
		return out, false
	case t.IsMatrix():
		dim := int32(t.MatrixDim())
		out := cc.temp(dim * dim)
		if len(args) == 1 && n.Args[0].Type().IsScalar() {
			cc.emit(instr{op: opMatDiag, dst: out, a: args[0], n: dim})
		} else {
			cc.emit(instr{op: opZero, dst: out, n: dim * dim})
			var k int32
			for i, a := range args {
				an := compCount(n.Args[i].Type())
				cnt := an
				if k+cnt > dim*dim {
					cnt = dim*dim - k
				}
				if cnt <= 0 {
					break
				}
				// Matrix constructors copy raw components, no conversion.
				cc.emit(instr{op: opMov, dst: out + k, a: a, n: cnt})
				k += cnt
			}
		}
		cc.pending.Mov += uint64(dim * dim)
		return out, false
	}
	cc.fail(n.Pos, "cannot construct %s", t)
	return 0, false
}

// emitConvert copies n components from src to dst applying the
// constructor conversion rules of convertCompAt.
func (cc *compiler) emitConvert(dst, src, n int32, target, srcT *glsl.Type) {
	switch target.ComponentType().Kind {
	case glsl.KInt:
		if srcT.ComponentType().Kind == glsl.KFloat {
			cc.emit(instr{op: opConvInt, dst: dst, a: src, n: n})
			return
		}
	case glsl.KBool:
		cc.emit(instr{op: opConvBool, dst: dst, a: src, n: n})
		return
	}
	cc.emit(instr{op: opMov, dst: dst, a: src, n: n})
}

func (cc *compiler) compileUserCall(n *glsl.CallExpr) (int32, bool) {
	fd := n.Func
	if fd == nil || fd.Body == nil {
		cc.fail(n.Pos, "call to undefined function %q", n.Callee)
	}
	idx, ok := cc.funcIdx[fd]
	if !ok {
		cc.fail(n.Pos, "function %q was not discovered during layout", fd.Name)
	}
	fi := cc.comp.funcs[idx]
	cc.pending.Call++

	// When an argument expression can itself invoke user code, evaluate
	// every argument into scratch space before touching the callee's
	// parameter registers (an inner call may target the same function).
	indirect := false
	for _, a := range n.Args {
		if containsUserCall(a) {
			indirect = true
			break
		}
	}
	argTmp := make([]int32, len(n.Args))
	for i, a := range n.Args {
		p := fd.Params[i]
		psize := flatSize(p.DeclType)
		preg := fi.localOff[p.Slot]
		if p.Dir == glsl.DirOut {
			argTmp[i] = -1
			if !indirect {
				cc.emit(instr{op: opZero, dst: preg, n: psize})
			}
			continue
		}
		r, dir := cc.compileExpr(a)
		if dir {
			for _, later := range n.Args[i+1:] {
				if hasSideEffects(later) {
					r = cc.materialize(r, true, psize)
					dir = false
					break
				}
			}
		}
		if indirect {
			argTmp[i] = cc.materialize(r, dir, psize)
		} else {
			cc.emit(instr{op: opMov, dst: preg, a: r, n: psize})
		}
	}
	if indirect {
		for i, p := range fd.Params {
			psize := flatSize(p.DeclType)
			preg := fi.localOff[p.Slot]
			if p.Dir == glsl.DirOut {
				cc.emit(instr{op: opZero, dst: preg, n: psize})
			} else {
				cc.emit(instr{op: opMov, dst: preg, a: argTmp[i], n: psize})
			}
		}
	}
	cc.flushStats()
	cc.emit(instr{op: opCall, aux: idx})
	// A discard in the callee's own body unwinds exactly one level in the
	// interpreter: this call's out/inout writebacks (and their Stats) still
	// run, then the invocation aborts. Capture the flag, run the epilogue,
	// then halt if it was set (see Exec.evalUserCall's ctrlDiscard path).
	dflag := cc.temp(1)
	cc.emit(instr{op: opDiscardTake, dst: dflag})

	var ret int32
	if fi.retSize > 0 {
		ret = cc.temp(fi.retSize)
		cc.emit(instr{op: opMov, dst: ret, a: fi.retBase, n: fi.retSize})
	}
	// Copy out/inout parameters before any writeback l-value evaluation
	// can reuse callee registers, then store them in parameter order.
	type writeback struct {
		arg  glsl.Expr
		tmp  int32
		decl *glsl.VarDecl
	}
	var wbs []writeback
	for i, p := range fd.Params {
		if p.Dir == glsl.DirOut || p.Dir == glsl.DirInOut {
			size := flatSize(p.DeclType)
			tmp := cc.temp(size)
			cc.emit(instr{op: opMov, dst: tmp, a: fi.localOff[p.Slot], n: size})
			wbs = append(wbs, writeback{arg: n.Args[i], tmp: tmp, decl: p})
		}
	}
	for _, wb := range wbs {
		lv := cc.compileLValue(wb.arg)
		cc.store(lv, wb.tmp, false, wb.decl.DeclType)
		cc.pending.Mov += uint64(maxI(1, wb.decl.DeclType.ComponentCount()))
	}
	cc.flushStats()
	cc.emit(instr{op: opDiscardHalt, a: dflag})
	return ret, false
}

func (cc *compiler) compileBuiltin(n *glsl.CallExpr) (int32, bool) {
	sig := n.Builtin
	if sig == nil {
		cc.fail(n.Pos, "unresolved builtin %q", n.Callee)
	}
	if len(n.Args) > 3 {
		cc.fail(n.Pos, "builtin %q has more than 3 arguments", n.Callee)
	}
	args := cc.compileArgs(n.Args)
	d := builtinDesc{
		id:    sig.ID,
		nargs: int32(len(args)),
		nc:    compCount(n.Type()),
	}
	for i, r := range args {
		d.args[i] = r
		d.scalar[i] = n.Args[i].Type().IsScalar()
	}
	if len(n.Args) > 0 {
		d.an = compCount(n.Args[0].Type())
		d.dim = int32(n.Args[0].Type().MatrixDim())
	}
	out := cc.temp(maxI32(d.nc, 1))
	d.dst = out
	cc.addBuiltinStats(sig.ID, int(d.nc), int(d.an), int(d.dim))
	cc.comp.builtins = append(cc.comp.builtins, d)
	cc.emit(instr{op: opBuiltin, aux: int32(len(cc.comp.builtins) - 1)})
	return out, false
}

// addBuiltinStats reproduces the per-builtin Stats accounting of
// Exec.evalBuiltin at compile time (all counts are static in the argument
// shapes).
func (cc *compiler) addBuiltinStats(id glsl.BuiltinID, nc, an, dim int) {
	s := &cc.pending
	u := func(x int) uint64 { return uint64(x) }
	switch id {
	case glsl.BRadians, glsl.BDegrees:
		s.Mul += u(nc)
	case glsl.BSin, glsl.BCos, glsl.BAsin, glsl.BAcos, glsl.BAtan:
		s.SFU += u(nc)
	case glsl.BTan:
		s.SFU += u(2 * nc)
	case glsl.BAtan2:
		s.SFU += u(2 * nc)
	case glsl.BPow:
		s.SFU += u(2 * nc)
		s.Mul += u(nc)
	case glsl.BExp, glsl.BLog:
		s.SFU += u(nc)
		s.Mul += u(nc)
	case glsl.BExp2, glsl.BLog2:
		s.SFU += u(nc)
	case glsl.BSqrt:
		s.SFU += u(nc)
		s.Mul += u(nc)
	case glsl.BInverseSqrt:
		s.SFU += u(nc)
	case glsl.BAbs:
		s.Mov += u(nc)
	case glsl.BSign:
		s.Cmp += u(2 * nc)
	case glsl.BFloor, glsl.BCeil:
		s.Add += u(nc)
	case glsl.BFract:
		s.Add += u(2 * nc)
	case glsl.BMod:
		s.Div += u(nc)
		s.Mul += u(nc)
		s.Add += u(2 * nc)
	case glsl.BMin, glsl.BMax:
		s.Cmp += u(nc)
	case glsl.BClamp:
		s.Cmp += u(2 * nc)
	case glsl.BMix:
		s.Mul += u(2 * nc)
		s.Add += u(2 * nc)
	case glsl.BStep:
		s.Cmp += u(nc)
		s.Select += u(nc)
	case glsl.BSmoothstep:
		s.Add += u(3 * nc)
		s.Mul += u(3 * nc)
		s.Div += u(nc)
		s.Cmp += u(2 * nc)
	case glsl.BLength:
		s.Mul += u(an)
		s.Add += u(an - 1)
		s.SFU++
	case glsl.BDistance:
		s.Mul += u(an)
		s.Add += u(2*an - 1)
		s.SFU++
	case glsl.BDot:
		s.Mul += u(an)
		s.Add += u(an - 1)
	case glsl.BCross:
		s.Mul += 6
		s.Add += 3
	case glsl.BNormalize:
		s.Mul += u(2 * an)
		s.Add += u(an - 1)
		s.SFU++
	case glsl.BFaceforward:
		s.Mul += u(an)
		s.Add += u(an - 1)
		s.Cmp++
		s.Select += u(an)
	case glsl.BReflect:
		s.Mul += u(3 * an)
		s.Add += u(2*an - 1)
	case glsl.BRefract:
		s.Mul += u(4 * an)
		s.Add += u(2 * an)
		s.SFU++
	case glsl.BMatrixCompMult:
		s.Mul += u(dim * dim)
	case glsl.BLessThan, glsl.BLessThanEqual, glsl.BGreaterThan, glsl.BGreaterThanEqual,
		glsl.BEqual, glsl.BNotEqual:
		s.Cmp += u(an)
	case glsl.BAny, glsl.BAll, glsl.BNot:
		s.Logic += u(an)
	case glsl.BTexture2D, glsl.BTexture2DBias, glsl.BTexture2DLod,
		glsl.BTextureCube, glsl.BTextureCubeBias, glsl.BTextureCubeLod:
		s.Tex++
	case glsl.BTexture2DProj3, glsl.BTexture2DProj4,
		glsl.BTexture2DProjLod3, glsl.BTexture2DProjLod4:
		s.Tex++
		s.Div += 2
	default:
		cc.fail(glsl.Pos{}, "builtin id %d not implemented by the bytecode compiler", id)
	}
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
