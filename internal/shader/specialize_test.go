package shader

// specialize_test.go pins the specialization pass itself: the direct
// opcodes actually fire on codec-spine shapes (a silent fallback to the
// generic path would pass every differential while losing the dispatch
// win), jump retargeting over the compacted stream stays sound, and the
// rewritten programs remain bit-identical to the reference interpreter.

import (
	"testing"

	"glescompute/internal/glsl"
)

func compileFrag(t *testing.T, src string) *Compiled {
	t.Helper()
	c, err := Compile(compileSrc(t, src, glsl.StageFragment))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func opCount(c *Compiled, op opcode) int {
	n := 0
	for _, in := range c.code {
		if in.op == op {
			n++
		}
	}
	return n
}

// TestSpecializeBuiltinsFire compiles the codec-spine builtin set and
// asserts each one became its direct opcode rather than a generic
// opBuiltin dispatch.
func TestSpecializeBuiltinsFire(t *testing.T) {
	c := compileFrag(t, `
precision highp float;
uniform sampler2D u_t;
varying vec2 v_uv;
void main() {
	vec4 tx = texture2D(u_t, v_uv);
	vec4 b = floor(tx * 255.0 + vec4(0.5));
	float m = mod(b.r, 16.0);
	float lo = min(b.g, 128.0);
	float hi = max(b.b, 64.0);
	float cl = clamp(b.a, lo, hi);
	float st = step(0.5, fract(m * 0.125));
	float dp = dot(b.rgb, vec3(1.0, 256.0, 65536.0));
	gl_FragColor = vec4(m, cl, st, dp) / 65536.0;
}`)
	for _, tc := range []struct {
		name string
		op   opcode
	}{
		{"tex2d", opTex2D}, {"floor", opBFloor}, {"fract", opBFract},
		{"mod", opBMod}, {"min", opBMin}, {"max", opBMax},
		{"clamp", opBClamp}, {"step", opBStep}, {"dot", opBDot},
	} {
		if opCount(c, tc.op) == 0 {
			t.Errorf("%s: no %v emitted — builtin stayed on the generic dispatch", tc.name, tc.op)
		}
	}
}

// TestSpecializeFusionFires asserts the superinstructions form on the
// scale/bias arithmetic shape the codecs generate.
func TestSpecializeFusionFires(t *testing.T) {
	c := compileFrag(t, `
precision highp float;
varying vec2 v_uv;
void main() {
	float x = v_uv.x * 255.0;
	float y = v_uv.y * 0.5 + x;
	float z = x * y + x;
	vec2 s = v_uv * 2.0 + vec2(x, y);
	gl_FragColor = vec4(x, y + z, s);
}`)
	if opCount(c, opMulImm) == 0 {
		t.Error("no opMulImm: loadimm+mul pairs not fused")
	}
	if opCount(c, opMulAdd) == 0 {
		t.Error("no opMulAdd: mul+add chains not fused")
	}
}

// TestSpecializeJumpSoundness compiles control-flow-heavy shaders whose
// bodies are dense with fusible pairs, and checks every jump aux, call
// entry and the init/main entries land inside the compacted stream on an
// instruction boundary — then runs the full interpreter/VM differential
// so a mis-retargeted (but in-bounds) jump is caught by divergence.
func TestSpecializeJumpSoundness(t *testing.T) {
	src := `
precision highp float;
varying vec2 v_uv;
uniform float u_k;
float spin(float x) {
	float acc = 0.0;
	for (int i = 0; i < 12; i++) {
		acc = acc + fract(x * 0.37 + acc * 0.61);
		if (acc > 4.0) { break; }
		x = x * 1.1 + 0.01;
	}
	return acc;
}
void main() {
	float a = spin(v_uv.x * 3.0);
	float b = 0.0;
	for (int j = 0; j < 4; j++) {
		b += spin(v_uv.y * float(j) + a * 0.25);
	}
	gl_FragColor = vec4(a, b * 0.1, fract(a + b), 1.0);
}`
	c := compileFrag(t, src)
	if opCount(c, opMulAdd)+opCount(c, opMulImm)+opCount(c, opAddImm) == 0 {
		t.Fatal("loop body fused nothing — retargeting is untested")
	}
	n := int32(len(c.code))
	check := func(what string, target int32) {
		if target < 0 || target >= n {
			t.Errorf("%s: target %d outside code [0,%d)", what, target, n)
		}
	}
	for pc, in := range c.code {
		switch in.op {
		case opJmp, opJz, opJnz:
			check("jump at pc "+string(rune('0'+pc%10)), in.aux)
		}
	}
	check("initEntry", c.initEntry)
	check("mainEntry", c.mainEntry)
	for _, fi := range c.funcs {
		check("func entry", fi.entry)
	}
	runDifferential(t, compileSrc(t, src, glsl.StageFragment), 24)
}

// TestSpecializeCodecSpineDifferential runs the float-codec shape — the
// exact decode→ALU→encode spine the specialization targets — through the
// interpreter/VM differential, which compares outputs AND Stats per
// invocation.
func TestSpecializeCodecSpineDifferential(t *testing.T) {
	runDifferential(t, compileSrc(t, `
precision highp float;
uniform sampler2D u_d;
varying vec2 v_uv;
void main() {
	vec4 t = texture2D(u_d, v_uv);
	vec4 b = floor(t * 255.0 + vec4(0.5));
	float v = b.r + b.g * 256.0 + b.b * 65536.0;
	v = v * 0.0001 + 0.5;
	float f = fract(v);
	float q = clamp(mod(v, 256.0), 0.0, 255.0);
	float s = step(128.0, q) * min(f, 0.75) + max(f, 0.25);
	gl_FragColor = vec4(fract(v * 0.001), f, q / 255.0, s * 0.5);
}`, glsl.StageFragment), 24)
}
