package shader

// Executor abstracts the two shader execution engines — the AST
// interpreter (Exec, the reference implementation) and the bytecode
// register machine (VM, the default) — behind the operations the GLES
// pipeline needs. internal/gles programs draw loops against this
// interface; the differential tests run both engines and require
// bit-identical results and Stats.

import "glescompute/internal/glsl"

// Executor is one shader invocation context.
type Executor interface {
	// InitGlobals evaluates file-scope initializers. Call after uniforms
	// are set and before the first Run.
	InitGlobals() error
	// Run executes main() once; reports whether the fragment discarded.
	Run() (bool, error)
	// StatsRef exposes the accumulated operation counters.
	StatsRef() *Stats
	// SetGlobal stores a runtime value into a global variable.
	SetGlobal(d *glsl.VarDecl, val Value)
	// ReadGlobalFlat copies a global's flattened components out (varying
	// capture after the vertex stage).
	ReadGlobalFlat(d *glsl.VarDecl, out []float32)
	// SetGlobalFlat fills a global from flattened components (varying
	// input before a fragment invocation). Unlike SetGlobal it does not
	// touch the per-run reset snapshot.
	SetGlobalFlat(d *glsl.VarDecl, in []float32)

	// Vertex-stage outputs.
	Position() [4]float32
	PointSize() float32

	// Fragment-stage inputs and outputs.
	SetFragCoord(v [4]float32)
	SetFrontFacing(front bool)
	SetPointCoord(x, y float32)
	ResetFragOutputs()
	FragOutput() [4]float32
}

// ---- Exec (interpreter) implementation ----

// StatsRef returns the interpreter's counters.
func (ex *Exec) StatsRef() *Stats { return &ex.Stats }

// ReadGlobalFlat flattens the global's current value.
func (ex *Exec) ReadGlobalFlat(d *glsl.VarDecl, out []float32) {
	flattenValueInto(out, ex.Globals[d.Slot])
}

// SetGlobalFlat rebuilds the global from flattened components.
func (ex *Exec) SetGlobalFlat(d *glsl.VarDecl, in []float32) {
	v := Zero(d.DeclType)
	unflattenValueFrom(&v, in)
	ex.Globals[d.Slot] = v
}

// Position returns gl_Position.
func (ex *Exec) Position() [4]float32 {
	return ex.Builtins[glsl.BVSlotPosition].Vec4()
}

// PointSize returns gl_PointSize.
func (ex *Exec) PointSize() float32 {
	return ex.Builtins[glsl.BVSlotPointSize].F[0]
}

// SetFragCoord sets gl_FragCoord.
func (ex *Exec) SetFragCoord(v [4]float32) {
	ex.Builtins[glsl.BVSlotFragCoord] = Vec4Val(v[0], v[1], v[2], v[3])
}

// SetFrontFacing sets gl_FrontFacing.
func (ex *Exec) SetFrontFacing(front bool) {
	ex.Builtins[glsl.BVSlotFrontFacing] = BoolVal(front)
}

// SetPointCoord sets gl_PointCoord.
func (ex *Exec) SetPointCoord(x, y float32) {
	ex.Builtins[glsl.BVSlotPointCoord] = Vec2Val(x, y)
}

// ResetFragOutputs zeroes gl_FragColor and gl_FragData (GL leaves them
// undefined; zero is deterministic).
func (ex *Exec) ResetFragOutputs() {
	ex.Builtins[glsl.BVSlotFragColor] = Zero(glsl.TypeVec4)
	ex.Builtins[glsl.BVSlotFragData] = Zero(glsl.ArrayOf(glsl.TypeVec4, glsl.MaxDrawBuffers))
}

// FragOutput returns the fragment color: gl_FragColor, or gl_FragData[0]
// when the shader wrote it.
func (ex *Exec) FragOutput() [4]float32 {
	out := ex.Builtins[glsl.BVSlotFragColor]
	fd := ex.Builtins[glsl.BVSlotFragData]
	if len(fd.Agg) > 0 && anyComponentNonZero(fd.Agg[0]) {
		out = fd.Agg[0]
	}
	return out.Vec4()
}

func anyComponentNonZero(v Value) bool {
	for i := 0; i < 4; i++ {
		if v.F[i] != 0 {
			return true
		}
	}
	return false
}

// ---- VM (bytecode) implementation ----

// StatsRef returns the VM's counters.
func (vm *VM) StatsRef() *Stats { return &vm.Stats }

// ReadGlobalFlat copies a global's registers out.
func (vm *VM) ReadGlobalFlat(d *glsl.VarDecl, out []float32) {
	off := vm.c.globalOff[d.Slot]
	copy(out, vm.regs[off:off+flatSize(d.DeclType)])
}

// SetGlobalFlat copies flattened components into a global's registers.
func (vm *VM) SetGlobalFlat(d *glsl.VarDecl, in []float32) {
	off := vm.c.globalOff[d.Slot]
	copy(vm.regs[off:off+flatSize(d.DeclType)], in)
}

// Position returns gl_Position.
func (vm *VM) Position() [4]float32 {
	o := vm.c.builtinOff[glsl.BVSlotPosition]
	return [4]float32{vm.regs[o], vm.regs[o+1], vm.regs[o+2], vm.regs[o+3]}
}

// PointSize returns gl_PointSize.
func (vm *VM) PointSize() float32 {
	return vm.regs[vm.c.builtinOff[glsl.BVSlotPointSize]]
}

// SetFragCoord sets gl_FragCoord.
func (vm *VM) SetFragCoord(v [4]float32) {
	o := vm.c.builtinOff[glsl.BVSlotFragCoord]
	vm.regs[o], vm.regs[o+1], vm.regs[o+2], vm.regs[o+3] = v[0], v[1], v[2], v[3]
}

// SetFrontFacing sets gl_FrontFacing.
func (vm *VM) SetFrontFacing(front bool) {
	vm.regs[vm.c.builtinOff[glsl.BVSlotFrontFacing]] = b2f(front)
}

// SetPointCoord sets gl_PointCoord.
func (vm *VM) SetPointCoord(x, y float32) {
	o := vm.c.builtinOff[glsl.BVSlotPointCoord]
	vm.regs[o], vm.regs[o+1] = x, y
}

// ResetFragOutputs zeroes gl_FragColor and gl_FragData.
func (vm *VM) ResetFragOutputs() {
	o := vm.c.builtinOff[glsl.BVSlotFragColor]
	for i := int32(0); i < 4; i++ {
		vm.regs[o+i] = 0
	}
	o = vm.c.builtinOff[glsl.BVSlotFragData]
	for i := int32(0); i < 4*glsl.MaxDrawBuffers; i++ {
		vm.regs[o+i] = 0
	}
}

// FragOutput returns gl_FragColor, or gl_FragData[0] when written.
func (vm *VM) FragOutput() [4]float32 {
	fc := vm.c.builtinOff[glsl.BVSlotFragColor]
	fd := vm.c.builtinOff[glsl.BVSlotFragData]
	if vm.regs[fd] != 0 || vm.regs[fd+1] != 0 || vm.regs[fd+2] != 0 || vm.regs[fd+3] != 0 {
		fc = fd
	}
	return [4]float32{vm.regs[fc], vm.regs[fc+1], vm.regs[fc+2], vm.regs[fc+3]}
}

// ---- Flattening helpers ----

// flattenValueInto writes a value's scalar components in declaration
// order (aggregates first-to-last, matrices column-major, samplers as
// their unit index) and returns the component count.
func flattenValueInto(dst []float32, v Value) int {
	if len(v.Agg) > 0 {
		off := 0
		for _, el := range v.Agg {
			off += flattenValueInto(dst[off:], el)
		}
		return off
	}
	n := 0
	if v.T != nil {
		n = v.T.FlatSize()
	}
	if n > len(v.F) {
		n = len(v.F)
	}
	copy(dst[:n], v.F[:n])
	return n
}

// unflattenValueFrom fills a zero-shaped value from flattened components
// and returns the consumed count.
func unflattenValueFrom(v *Value, in []float32) int {
	if len(v.Agg) > 0 {
		off := 0
		for i := range v.Agg {
			off += unflattenValueFrom(&v.Agg[i], in[off:])
		}
		return off
	}
	n := 0
	if v.T != nil {
		n = v.T.FlatSize()
	}
	if n > len(v.F) {
		n = len(v.F)
	}
	copy(v.F[:n], in[:n])
	return n
}
