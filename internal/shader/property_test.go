package shader

import (
	"math"
	"testing"
	"testing/quick"

	"glescompute/internal/glsl"
)

// exprHarness compiles a fragment shader evaluating expr over uniforms
// a, b, c and returns a function computing it for given inputs.
func exprHarness(t *testing.T, expr string) func(a, b, c float32) float32 {
	t.Helper()
	src := "precision highp float;\nuniform float a;\nuniform float b;\nuniform float c;\n" +
		"void main() { gl_FragColor = vec4(" + expr + "); }"
	prog, errs := glsl.CompileSource(src, glsl.StageFragment, glsl.CheckOptions{})
	if errs.Err() != nil {
		t.Fatalf("compile %q failed:\n%v", expr, errs)
	}
	ex := NewExec(prog, nil, ExactSFU)
	ua := prog.LookupUniform("a")
	ub := prog.LookupUniform("b")
	uc := prog.LookupUniform("c")
	return func(a, b, c float32) float32 {
		ex.SetGlobal(ua, FloatVal(a))
		ex.SetGlobal(ub, FloatVal(b))
		ex.SetGlobal(uc, FloatVal(c))
		if err := ex.InitGlobals(); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Run(); err != nil {
			t.Fatal(err)
		}
		return ex.Builtins[glsl.BVSlotFragColor].F[0]
	}
}

// small maps quick-generated floats into a well-behaved range.
func small(x float32) float32 {
	if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
		return 1
	}
	return float32(math.Mod(float64(x), 1000))
}

func TestPropArithmeticMatchesGo(t *testing.T) {
	// GLSL fp32 arithmetic must agree bit-for-bit with Go float32
	// arithmetic (both are IEEE 754 single).
	eval := exprHarness(t, "(a + b) * c - a / (abs(c) + 1.0)")
	f := func(ra, rb, rc float32) bool {
		a, b, c := small(ra), small(rb), small(rc)
		want := (a+b)*c - a/(abs32t(c)+1)
		got := eval(a, b, c)
		return got == want || (math.IsNaN(float64(got)) && math.IsNaN(float64(want)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMinMaxClamp(t *testing.T) {
	eval := exprHarness(t, "clamp(a, min(b, c), max(b, c))")
	f := func(ra, rb, rc float32) bool {
		a, b, c := small(ra), small(rb), small(rc)
		lo, hi := b, c
		if hi < lo {
			lo, hi = hi, lo
		}
		want := a
		if want < lo {
			want = lo
		}
		if want > hi {
			want = hi
		}
		return eval(a, b, c) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropFloorFractIdentity(t *testing.T) {
	// floor(a) + fract(a) == a for finite fp32 (exact in IEEE).
	eval := exprHarness(t, "floor(a) + fract(a)")
	f := func(ra float32) bool {
		a := small(ra)
		return eval(a, 0, 0) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropModIdentity(t *testing.T) {
	// mod(a,b) = a - b*floor(a/b), b != 0: the exact GLSL definition.
	eval := exprHarness(t, "mod(a, b)")
	f := func(ra, rb float32) bool {
		a, b := small(ra), small(rb)
		if b == 0 {
			return true
		}
		want := a - b*float32(math.Floor(float64(a/b)))
		return eval(a, b, 0) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMixLerp(t *testing.T) {
	eval := exprHarness(t, "mix(a, b, c)")
	f := func(ra, rb, rt float32) bool {
		a, b := small(ra), small(rb)
		tt := float32(math.Abs(math.Mod(float64(rt), 1)))
		want := a*(1-tt) + b*tt
		return eval(a, b, tt) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropDotCommutative(t *testing.T) {
	src := `precision highp float;
uniform float a;
uniform float b;
uniform float c;
void main() {
	vec3 u = vec3(a, b, c);
	vec3 v = vec3(c, a, b);
	gl_FragColor = vec4(dot(u, v) - dot(v, u), 0.0, 0.0, 1.0);
}`
	prog, errs := glsl.CompileSource(src, glsl.StageFragment, glsl.CheckOptions{})
	if errs.Err() != nil {
		t.Fatal(errs)
	}
	ex := NewExec(prog, nil, ExactSFU)
	f := func(ra, rb, rc float32) bool {
		ex.SetGlobal(prog.LookupUniform("a"), FloatVal(small(ra)))
		ex.SetGlobal(prog.LookupUniform("b"), FloatVal(small(rb)))
		ex.SetGlobal(prog.LookupUniform("c"), FloatVal(small(rc)))
		if err := ex.InitGlobals(); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Run(); err != nil {
			t.Fatal(err)
		}
		return ex.Builtins[glsl.BVSlotFragColor].F[0] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMatrixVectorDistributive(t *testing.T) {
	// M*(u+v) == M*u + M*v in exact arithmetic is NOT guaranteed in fp,
	// but M*I == column reconstruction IS exact. Verify M*e_i extracts
	// column i bit-exactly.
	src := `precision highp float;
uniform float a;
uniform float b;
uniform float c;
void main() {
	mat3 m = mat3(a, b, c, b, c, a, c, a, b);
	vec3 col1 = m * vec3(0.0, 1.0, 0.0);
	gl_FragColor = vec4(col1 - m[1], 1.0);
}`
	prog, errs := glsl.CompileSource(src, glsl.StageFragment, glsl.CheckOptions{})
	if errs.Err() != nil {
		t.Fatal(errs)
	}
	ex := NewExec(prog, nil, ExactSFU)
	f := func(ra, rb, rc float32) bool {
		ex.SetGlobal(prog.LookupUniform("a"), FloatVal(small(ra)))
		ex.SetGlobal(prog.LookupUniform("b"), FloatVal(small(rb)))
		ex.SetGlobal(prog.LookupUniform("c"), FloatVal(small(rc)))
		if err := ex.InitGlobals(); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Run(); err != nil {
			t.Fatal(err)
		}
		out := ex.Builtins[glsl.BVSlotFragColor]
		return out.F[0] == 0 && out.F[1] == 0 && out.F[2] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropStepThreshold(t *testing.T) {
	eval := exprHarness(t, "step(a, b)")
	f := func(ra, rb float32) bool {
		a, b := small(ra), small(rb)
		want := float32(1)
		if b < a {
			want = 0
		}
		return eval(a, b, 0) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropIntTruncationDivision(t *testing.T) {
	// GLSL int division truncates toward zero, like C.
	src := `precision highp float;
uniform float a;
uniform float b;
uniform float c;
void main() {
	int x = int(a);
	int y = int(b);
	gl_FragColor = vec4(float(x / y), 0.0, 0.0, 1.0);
}`
	prog, errs := glsl.CompileSource(src, glsl.StageFragment, glsl.CheckOptions{})
	if errs.Err() != nil {
		t.Fatal(errs)
	}
	ex := NewExec(prog, nil, ExactSFU)
	f := func(ra, rb int16) bool {
		if rb == 0 {
			return true
		}
		ex.SetGlobal(prog.LookupUniform("a"), FloatVal(float32(ra)))
		ex.SetGlobal(prog.LookupUniform("b"), FloatVal(float32(rb)))
		if err := ex.InitGlobals(); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Run(); err != nil {
			t.Fatal(err)
		}
		want := float32(int32(ra) / int32(rb))
		return ex.Builtins[glsl.BVSlotFragColor].F[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func abs32t(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}
