package shader

import (
	"math"

	"glescompute/internal/glsl"
)

// quantizeMantissa rounds x so only the top `bits` mantissa bits are
// significant, modeling the approximate results of the VideoCore IV special
// function unit. Zero, infinities and NaN pass through unchanged.
func quantizeMantissa(x float32, bits int) float32 {
	if x == 0 || math.IsInf(float64(x), 0) || math.IsNaN(float64(x)) {
		return x
	}
	b := math.Float32bits(x)
	drop := uint(23 - bits)
	// Round to nearest at the kept precision.
	half := uint32(1) << (drop - 1)
	b += half
	b &^= (uint32(1) << drop) - 1
	return math.Float32frombits(b)
}

// sfuExp2 and sfuLog2 are the two operations the Broadcom compiler leaves at
// raw SFU precision (reciprocals get Newton-Raphson refinement, so division
// stays near-exact). They are the precision bottleneck of the paper's float
// codec — see EXPERIMENTS.md (P1, A2).
func (ex *Exec) sfuExp2(x float32) float32 {
	ex.Stats.SFU++
	return ex.SFU.Approx(x, float32(math.Exp2(float64(x))))
}

func (ex *Exec) sfuLog2(x float32) float32 {
	ex.Stats.SFU++
	return ex.SFU.Approx(x, float32(math.Log2(float64(x))))
}

// Helpers used by SFUConfig.Approx (kept here with the math imports).
func isInfOrNaN(x float32) bool {
	return math.IsInf(float64(x), 0) || math.IsNaN(float64(x))
}

func mathFloat32bits(x float32) uint32 { return math.Float32bits(x) }

func pow2(n int) float64 { return math.Pow(2, float64(n)) }

func (ex *Exec) evalBuiltin(n *glsl.CallExpr, f *frame) (Value, error) {
	sig := n.Builtin
	args := make([]Value, len(n.Args))
	for i, a := range n.Args {
		v, err := ex.evalExpr(a, f)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	out := Value{T: n.Type()}
	nc := n.Type().ComponentCount()

	// comp fetches component i of argument k with scalar broadcast.
	comp := func(k, i int) float32 {
		if args[k].T.IsScalar() {
			return args[k].F[0]
		}
		return args[k].F[i]
	}

	un := func(fn func(float64) float64, sfu bool) {
		for i := 0; i < nc; i++ {
			r := float32(fn(float64(args[0].F[i])))
			if sfu {
				ex.Stats.SFU++
				r = ex.SFU.Quantize(r)
			}
			out.F[i] = r
		}
	}

	switch sig.ID {
	case glsl.BRadians:
		un(func(x float64) float64 { return x * math.Pi / 180 }, false)
		ex.Stats.Mul += uint64(nc)
	case glsl.BDegrees:
		un(func(x float64) float64 { return x * 180 / math.Pi }, false)
		ex.Stats.Mul += uint64(nc)
	case glsl.BSin:
		un(math.Sin, true)
	case glsl.BCos:
		un(math.Cos, true)
	case glsl.BTan:
		un(math.Tan, true)
		ex.Stats.SFU += uint64(nc) // tan = sin * rcp(cos): extra SFU op
	case glsl.BAsin:
		un(math.Asin, true)
	case glsl.BAcos:
		un(math.Acos, true)
	case glsl.BAtan:
		un(math.Atan, true)
	case glsl.BAtan2:
		for i := 0; i < nc; i++ {
			out.F[i] = float32(math.Atan2(float64(comp(0, i)), float64(comp(1, i))))
			ex.Stats.SFU += 2
		}
	case glsl.BPow:
		// pow(x,y) = exp2(y*log2(x)): inherits SFU quantization twice, the
		// dominant error source in the float codec.
		for i := 0; i < nc; i++ {
			x, y := comp(0, i), comp(1, i)
			out.F[i] = ex.sfuExp2(y * ex.sfuLog2(x))
			ex.Stats.Mul++
		}
	case glsl.BExp:
		for i := 0; i < nc; i++ {
			out.F[i] = ex.sfuExp2(args[0].F[i] * float32(math.Log2E))
			ex.Stats.Mul++
		}
	case glsl.BLog:
		for i := 0; i < nc; i++ {
			out.F[i] = ex.sfuLog2(args[0].F[i]) * float32(math.Ln2)
			ex.Stats.Mul++
		}
	case glsl.BExp2:
		for i := 0; i < nc; i++ {
			out.F[i] = ex.sfuExp2(args[0].F[i])
		}
	case glsl.BLog2:
		for i := 0; i < nc; i++ {
			out.F[i] = ex.sfuLog2(args[0].F[i])
		}
	case glsl.BSqrt:
		// sqrt = x * rsqrt(x) with refinement: near-exact on HW.
		un(math.Sqrt, false)
		ex.Stats.SFU += uint64(nc)
		ex.Stats.Mul += uint64(nc)
	case glsl.BInverseSqrt:
		un(func(x float64) float64 { return 1 / math.Sqrt(x) }, false)
		ex.Stats.SFU += uint64(nc)
	case glsl.BAbs:
		un(math.Abs, false)
		ex.Stats.Mov += uint64(nc)
	case glsl.BSign:
		un(func(x float64) float64 {
			if x > 0 {
				return 1
			}
			if x < 0 {
				return -1
			}
			return 0
		}, false)
		ex.Stats.Cmp += uint64(2 * nc)
	case glsl.BFloor:
		un(math.Floor, false)
		ex.Stats.Add += uint64(nc)
	case glsl.BCeil:
		un(math.Ceil, false)
		ex.Stats.Add += uint64(nc)
	case glsl.BFract:
		un(func(x float64) float64 { return x - math.Floor(x) }, false)
		ex.Stats.Add += uint64(2 * nc)
	case glsl.BMod:
		for i := 0; i < nc; i++ {
			a, b := comp(0, i), comp(1, i)
			// GLSL: mod(x,y) = x - y*floor(x/y), computed in fp32.
			out.F[i] = a - b*float32(math.Floor(float64(a/b)))
			ex.Stats.Div++
			ex.Stats.Mul++
			ex.Stats.Add += 2
		}
	case glsl.BMin:
		for i := 0; i < nc; i++ {
			out.F[i] = minf(comp(0, i), comp(1, i))
			ex.Stats.Cmp++
		}
	case glsl.BMax:
		for i := 0; i < nc; i++ {
			out.F[i] = maxf(comp(0, i), comp(1, i))
			ex.Stats.Cmp++
		}
	case glsl.BClamp:
		for i := 0; i < nc; i++ {
			out.F[i] = minf(maxf(args[0].F[i], comp(1, i)), comp(2, i))
			ex.Stats.Cmp += 2
		}
	case glsl.BMix:
		for i := 0; i < nc; i++ {
			a, b, t := args[0].F[i], args[1].F[i], comp(2, i)
			out.F[i] = a*(1-t) + b*t
			ex.Stats.Mul += 2
			ex.Stats.Add += 2
		}
	case glsl.BStep:
		for i := 0; i < nc; i++ {
			if comp(1, i) < comp(0, i) {
				out.F[i] = 0
			} else {
				out.F[i] = 1
			}
			ex.Stats.Cmp++
			ex.Stats.Select++
		}
	case glsl.BSmoothstep:
		for i := 0; i < nc; i++ {
			e0, e1, x := comp(0, i), comp(1, i), args[len(args)-1].F[i]
			t := (x - e0) / (e1 - e0)
			if t < 0 {
				t = 0
			}
			if t > 1 {
				t = 1
			}
			out.F[i] = t * t * (3 - 2*t)
			ex.Stats.Add += 3
			ex.Stats.Mul += 3
			ex.Stats.Div++
			ex.Stats.Cmp += 2
		}
	case glsl.BLength:
		var s float64
		an := args[0].NumComps()
		for i := 0; i < an; i++ {
			s += float64(args[0].F[i]) * float64(args[0].F[i])
		}
		out.F[0] = float32(math.Sqrt(s))
		ex.Stats.Mul += uint64(an)
		ex.Stats.Add += uint64(an - 1)
		ex.Stats.SFU++
	case glsl.BDistance:
		var s float64
		an := args[0].NumComps()
		for i := 0; i < an; i++ {
			d := float64(args[0].F[i] - args[1].F[i])
			s += d * d
		}
		out.F[0] = float32(math.Sqrt(s))
		ex.Stats.Mul += uint64(an)
		ex.Stats.Add += uint64(2*an - 1)
		ex.Stats.SFU++
	case glsl.BDot:
		var s float32
		an := args[0].NumComps()
		for i := 0; i < an; i++ {
			s += args[0].F[i] * args[1].F[i]
		}
		out.F[0] = s
		ex.Stats.Mul += uint64(an)
		ex.Stats.Add += uint64(an - 1)
	case glsl.BCross:
		a, b := args[0], args[1]
		out.F[0] = a.F[1]*b.F[2] - a.F[2]*b.F[1]
		out.F[1] = a.F[2]*b.F[0] - a.F[0]*b.F[2]
		out.F[2] = a.F[0]*b.F[1] - a.F[1]*b.F[0]
		ex.Stats.Mul += 6
		ex.Stats.Add += 3
	case glsl.BNormalize:
		var s float64
		an := args[0].NumComps()
		for i := 0; i < an; i++ {
			s += float64(args[0].F[i]) * float64(args[0].F[i])
		}
		inv := float32(1 / math.Sqrt(s))
		for i := 0; i < an; i++ {
			out.F[i] = args[0].F[i] * inv
		}
		ex.Stats.Mul += uint64(2 * an)
		ex.Stats.Add += uint64(an - 1)
		ex.Stats.SFU++
	case glsl.BFaceforward:
		// faceforward(N, I, Nref) = dot(Nref,I) < 0 ? N : -N
		var d float32
		an := args[0].NumComps()
		for i := 0; i < an; i++ {
			d += args[2].F[i] * args[1].F[i]
		}
		for i := 0; i < an; i++ {
			if d < 0 {
				out.F[i] = args[0].F[i]
			} else {
				out.F[i] = -args[0].F[i]
			}
		}
		ex.Stats.Mul += uint64(an)
		ex.Stats.Add += uint64(an - 1)
		ex.Stats.Cmp++
		ex.Stats.Select += uint64(an)
	case glsl.BReflect:
		// reflect(I, N) = I - 2*dot(N,I)*N
		var d float32
		an := args[0].NumComps()
		for i := 0; i < an; i++ {
			d += args[1].F[i] * args[0].F[i]
		}
		for i := 0; i < an; i++ {
			out.F[i] = args[0].F[i] - 2*d*args[1].F[i]
		}
		ex.Stats.Mul += uint64(3 * an)
		ex.Stats.Add += uint64(2*an - 1)
	case glsl.BRefract:
		an := args[0].NumComps()
		eta := args[2].F[0]
		var d float64
		for i := 0; i < an; i++ {
			d += float64(args[1].F[i]) * float64(args[0].F[i])
		}
		k := 1 - float64(eta)*float64(eta)*(1-d*d)
		if k < 0 {
			// total internal reflection: zero vector
		} else {
			for i := 0; i < an; i++ {
				out.F[i] = eta*args[0].F[i] - float32(float64(eta)*d+math.Sqrt(k))*args[1].F[i]
			}
		}
		ex.Stats.Mul += uint64(4 * an)
		ex.Stats.Add += uint64(2 * an)
		ex.Stats.SFU++
	case glsl.BMatrixCompMult:
		dim := args[0].T.MatrixDim()
		for i := 0; i < dim*dim; i++ {
			out.F[i] = args[0].F[i] * args[1].F[i]
		}
		ex.Stats.Mul += uint64(dim * dim)
	case glsl.BLessThan, glsl.BLessThanEqual, glsl.BGreaterThan, glsl.BGreaterThanEqual,
		glsl.BEqual, glsl.BNotEqual:
		an := args[0].NumComps()
		for i := 0; i < an; i++ {
			a, b := args[0].F[i], args[1].F[i]
			var r bool
			switch sig.ID {
			case glsl.BLessThan:
				r = a < b
			case glsl.BLessThanEqual:
				r = a <= b
			case glsl.BGreaterThan:
				r = a > b
			case glsl.BGreaterThanEqual:
				r = a >= b
			case glsl.BEqual:
				r = a == b
			case glsl.BNotEqual:
				r = a != b
			}
			if r {
				out.F[i] = 1
			}
			ex.Stats.Cmp++
		}
	case glsl.BAny:
		an := args[0].NumComps()
		for i := 0; i < an; i++ {
			if args[0].F[i] != 0 {
				out.F[0] = 1
			}
		}
		ex.Stats.Logic += uint64(an)
	case glsl.BAll:
		out.F[0] = 1
		an := args[0].NumComps()
		for i := 0; i < an; i++ {
			if args[0].F[i] == 0 {
				out.F[0] = 0
			}
		}
		ex.Stats.Logic += uint64(an)
	case glsl.BNot:
		an := args[0].NumComps()
		for i := 0; i < an; i++ {
			if args[0].F[i] == 0 {
				out.F[i] = 1
			}
		}
		ex.Stats.Logic += uint64(an)
	case glsl.BTexture2D, glsl.BTexture2DBias, glsl.BTexture2DLod:
		unit := int(args[0].F[0])
		rgba := ex.Textures.Sample2D(unit, args[1].F[0], args[1].F[1])
		copy(out.F[:4], rgba[:])
		ex.Stats.Tex++
	case glsl.BTexture2DProj3:
		unit := int(args[0].F[0])
		q := args[1].F[2]
		rgba := ex.Textures.Sample2D(unit, args[1].F[0]/q, args[1].F[1]/q)
		copy(out.F[:4], rgba[:])
		ex.Stats.Tex++
		ex.Stats.Div += 2
	case glsl.BTexture2DProj4, glsl.BTexture2DProjLod4:
		unit := int(args[0].F[0])
		q := args[1].F[3]
		rgba := ex.Textures.Sample2D(unit, args[1].F[0]/q, args[1].F[1]/q)
		copy(out.F[:4], rgba[:])
		ex.Stats.Tex++
		ex.Stats.Div += 2
	case glsl.BTexture2DProjLod3:
		unit := int(args[0].F[0])
		q := args[1].F[2]
		rgba := ex.Textures.Sample2D(unit, args[1].F[0]/q, args[1].F[1]/q)
		copy(out.F[:4], rgba[:])
		ex.Stats.Tex++
		ex.Stats.Div += 2
	case glsl.BTextureCube, glsl.BTextureCubeBias, glsl.BTextureCubeLod:
		unit := int(args[0].F[0])
		rgba := ex.Textures.SampleCube(unit, args[1].F[0], args[1].F[1], args[1].F[2])
		copy(out.F[:4], rgba[:])
		ex.Stats.Tex++
	default:
		return Value{}, ex.rtError(n.Pos, "builtin %q not implemented", sig.Name)
	}
	return out, nil
}

func minf(a, b float32) float32 {
	if b < a {
		return b
	}
	return a
}

func maxf(a, b float32) float32 {
	if b > a {
		return b
	}
	return a
}
