package shader

import (
	"fmt"

	"glescompute/internal/glsl"
)

// TextureSampler provides texel fetches to the executor. The GLES context
// implements it; tests can provide fakes.
type TextureSampler interface {
	// Sample2D samples the 2D texture bound to the given unit at
	// normalized coordinates (s,t), returning RGBA in [0,1].
	Sample2D(unit int, s, t float32) [4]float32
	// SampleCube samples the cube texture bound to the given unit.
	SampleCube(unit int, s, t, r float32) [4]float32
}

// nullSampler returns opaque black, the GL behaviour for incomplete
// textures.
type nullSampler struct{}

func (nullSampler) Sample2D(int, float32, float32) [4]float32 {
	return [4]float32{0, 0, 0, 1}
}
func (nullSampler) SampleCube(int, float32, float32, float32) [4]float32 {
	return [4]float32{0, 0, 0, 1}
}

// SFUConfig models the precision of the QPU special function unit. The
// VideoCore IV SFU produces approximate exp2/log2 results; the Broadcom
// shader compiler refines reciprocals with Newton-Raphson steps but leaves
// exp2/log2 raw. MantissaBits limits the result mantissa (0 = exact IEEE).
type SFUConfig struct {
	// MantissaBits is the number of accurate mantissa bits for exp2/log2
	// results. 0 means exact (no quantization).
	MantissaBits int
}

// DefaultSFU models the VideoCore IV: ~16 accurate mantissa bits out of the
// SFU, which after the packing/unpacking chain yields the ~15-bit accuracy
// the paper reports.
var DefaultSFU = SFUConfig{MantissaBits: 16}

// ExactSFU disables SFU quantization, for "same transformation on the CPU"
// comparisons (paper §V: the CPU round trip is exact).
var ExactSFU = SFUConfig{MantissaBits: 0}

// Quantize rounds x to the configured mantissa precision.
func (c SFUConfig) Quantize(x float32) float32 {
	if c.MantissaBits <= 0 || c.MantissaBits >= 23 {
		return x
	}
	return quantizeMantissa(x, c.MantissaBits)
}

// Approx models one SFU evaluation: the exact result perturbed by a
// deterministic, input-dependent relative error of at most 2^-(bits+1),
// then quantized to the configured precision. Real SFU hardware is a
// piecewise approximation whose error depends on the argument — including
// at integer arguments, which is what makes exp2 in the paper's float
// codec lose mantissa bits even though the codec only evaluates it at
// whole-number exponents.
func (c SFUConfig) Approx(input, exact float32) float32 {
	if c.MantissaBits <= 0 || c.MantissaBits >= 23 {
		return exact
	}
	if exact == 0 || isInfOrNaN(exact) {
		return exact
	}
	// Deterministic pseudo-noise from the argument bits (Knuth hash).
	h := mathFloat32bits(input) * 2654435761
	frac := float64(h>>8) / float64(1<<24) // [0,1)
	eps := (frac - 0.5) * pow2(-c.MantissaBits)
	return quantizeMantissa(float32(float64(exact)*(1+eps)), c.MantissaBits)
}

// RuntimeError is a shader execution failure (these indicate bugs in the
// compiler/checker rather than user-visible GL errors).
type RuntimeError struct {
	Pos glsl.Pos
	Msg string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("shader runtime error at %s: %s", e.Pos, e.Msg)
}

// Exec executes one shader program. It is not safe for concurrent use; the
// rasterizer creates one Exec per worker.
type Exec struct {
	Prog     *glsl.Program
	Textures TextureSampler
	SFU      SFUConfig
	Stats    Stats

	// MaxLoopIter guards against non-terminating shaders (real ES 2.0
	// hardware hangs; we abort with an error instead). Zero means the
	// default of DefaultMaxLoopIter.
	MaxLoopIter int

	Globals  []Value
	Builtins [glsl.NumBuiltinSlots]Value

	// initialGlobals snapshots global values after InitGlobals so mutable
	// globals can be reset per invocation.
	initialGlobals []Value
	// mutatedGlobals lists slots written somewhere in the program.
	mutatedGlobals []int

	frames []frame
	depth  int
}

type frame struct {
	locals []Value
	ret    Value
	hasRet bool
}

type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
	ctrlDiscard
)

// NewExec builds an executor for prog.
func NewExec(prog *glsl.Program, tex TextureSampler, sfu SFUConfig) *Exec {
	if tex == nil {
		tex = nullSampler{}
	}
	ex := &Exec{Prog: prog, Textures: tex, SFU: sfu}
	ex.Globals = make([]Value, len(prog.Globals))
	for i, g := range prog.Globals {
		ex.Globals[i] = Zero(g.DeclType)
	}
	// Builtin registers.
	if prog.Stage == glsl.StageVertex {
		ex.Builtins[glsl.BVSlotPosition] = Zero(glsl.TypeVec4)
		ex.Builtins[glsl.BVSlotPointSize] = FloatVal(1)
	} else {
		ex.Builtins[glsl.BVSlotFragCoord] = Zero(glsl.TypeVec4)
		ex.Builtins[glsl.BVSlotFrontFacing] = BoolVal(true)
		ex.Builtins[glsl.BVSlotPointCoord] = Zero(glsl.TypeVec2)
		ex.Builtins[glsl.BVSlotFragColor] = Zero(glsl.TypeVec4)
		ex.Builtins[glsl.BVSlotFragData] = Zero(glsl.ArrayOf(glsl.TypeVec4, glsl.MaxDrawBuffers))
	}
	ex.findMutatedGlobals()
	return ex
}

// findMutatedGlobals scans the program for assignments to globals so that
// only those slots are reset between invocations.
func (ex *Exec) findMutatedGlobals() {
	ex.mutatedGlobals = MutatedGlobalSlots(ex.Prog)
}

// MutatedGlobalSlots scans a checked program for assignments to globals and
// returns their slots. Both the AST interpreter and the bytecode VM use it
// to decide which globals must be reset between invocations.
func MutatedGlobalSlots(prog *glsl.Program) []int {
	written := map[int]bool{}
	var scanExpr func(e glsl.Expr)
	var scanStmt func(s glsl.Stmt)
	markTarget := func(e glsl.Expr) {
		for {
			switch n := e.(type) {
			case *glsl.Ident:
				if n.Ref != nil && n.Ref.Storage == glsl.StorageGlobal {
					written[n.Ref.Slot] = true
				}
				return
			case *glsl.FieldExpr:
				e = n.X
			case *glsl.IndexExpr:
				e = n.X
			default:
				return
			}
		}
	}
	scanExpr = func(e glsl.Expr) {
		switch n := e.(type) {
		case *glsl.AssignExpr:
			markTarget(n.LHS)
			scanExpr(n.LHS)
			scanExpr(n.RHS)
		case *glsl.UnaryExpr:
			if n.Op == glsl.TokInc || n.Op == glsl.TokDec {
				markTarget(n.X)
			}
			scanExpr(n.X)
		case *glsl.BinaryExpr:
			scanExpr(n.X)
			scanExpr(n.Y)
		case *glsl.CondExpr:
			scanExpr(n.Cond)
			scanExpr(n.Then)
			scanExpr(n.Else)
		case *glsl.SequenceExpr:
			scanExpr(n.X)
			scanExpr(n.Y)
		case *glsl.CallExpr:
			// out/inout args of user calls can write globals.
			if n.Kind == glsl.CallUser && n.Func != nil {
				for i, p := range n.Func.Params {
					if p.Dir != glsl.DirIn && i < len(n.Args) {
						markTarget(n.Args[i])
					}
				}
			}
			for _, a := range n.Args {
				scanExpr(a)
			}
		case *glsl.FieldExpr:
			scanExpr(n.X)
		case *glsl.IndexExpr:
			scanExpr(n.X)
			scanExpr(n.Index)
		}
	}
	scanStmt = func(s glsl.Stmt) {
		switch n := s.(type) {
		case *glsl.BlockStmt:
			for _, st := range n.Stmts {
				scanStmt(st)
			}
		case *glsl.DeclStmt:
			for _, v := range n.Vars {
				if v.Init != nil {
					scanExpr(v.Init)
				}
			}
		case *glsl.ExprStmt:
			scanExpr(n.X)
		case *glsl.IfStmt:
			scanExpr(n.Cond)
			scanStmt(n.Then)
			if n.Else != nil {
				scanStmt(n.Else)
			}
		case *glsl.ForStmt:
			if n.InitStmt != nil {
				scanStmt(n.InitStmt)
			}
			if n.Cond != nil {
				scanExpr(n.Cond)
			}
			if n.Post != nil {
				scanExpr(n.Post)
			}
			scanStmt(n.Body)
		case *glsl.WhileStmt:
			scanExpr(n.Cond)
			scanStmt(n.Body)
		case *glsl.DoWhileStmt:
			scanStmt(n.Body)
			scanExpr(n.Cond)
		case *glsl.ReturnStmt:
			if n.X != nil {
				scanExpr(n.X)
			}
		}
	}
	for _, fd := range prog.Functions {
		if fd.Body != nil {
			scanStmt(fd.Body)
		}
	}
	var slots []int
	for slot := range written {
		slots = append(slots, slot)
	}
	return slots
}

// InitGlobals evaluates file-scope initializers (const and plain globals).
// Must be called after uniforms are set and before the first invocation.
func (ex *Exec) InitGlobals() error {
	for _, g := range ex.Prog.Globals {
		if g.Init == nil {
			continue
		}
		if g.ConstVal != nil {
			v := FromConst(g.ConstVal)
			v.T = g.DeclType
			ex.Globals[g.Slot] = v
			continue
		}
		v, err := ex.evalExpr(g.Init, nil)
		if err != nil {
			return err
		}
		ex.Globals[g.Slot] = v
	}
	ex.initialGlobals = make([]Value, len(ex.Globals))
	for i := range ex.Globals {
		ex.initialGlobals[i] = ex.Globals[i].Copy()
	}
	return nil
}

// SetGlobal stores v into the slot of the named global (uniform, attribute
// or varying). The caller is responsible for type agreement.
func (ex *Exec) SetGlobal(v *glsl.VarDecl, val Value) {
	ex.Globals[v.Slot] = val
	if ex.initialGlobals != nil {
		ex.initialGlobals[v.Slot] = val.Copy()
	}
}

// errDiscard signals a discard executed inside a helper function; Run
// translates it into a discarded invocation.
var errDiscard = &RuntimeError{Msg: "discard"}

// Run executes main() once. It returns true when the fragment was discarded.
func (ex *Exec) Run() (bool, error) {
	// Reset mutable globals to their post-init values.
	for _, slot := range ex.mutatedGlobals {
		if ex.initialGlobals != nil {
			ex.Globals[slot] = ex.initialGlobals[slot].Copy()
		}
	}
	ex.Stats.Invocations++
	f := ex.pushFrame(ex.Prog.Entry)
	defer ex.popFrame()
	c, err := ex.execStmt(ex.Prog.Entry.Body, f)
	if err == errDiscard {
		ex.depth = 1 // unwind nested frames; popFrame brings it to 0
		return true, nil
	}
	if err != nil {
		return false, err
	}
	return c == ctrlDiscard, nil
}

func (ex *Exec) pushFrame(fd *glsl.FuncDecl) *frame {
	if ex.depth >= len(ex.frames) {
		ex.frames = append(ex.frames, frame{})
	}
	f := &ex.frames[ex.depth]
	ex.depth++
	if cap(f.locals) < fd.LocalSize {
		f.locals = make([]Value, fd.LocalSize)
	} else {
		f.locals = f.locals[:fd.LocalSize]
		for i := range f.locals {
			f.locals[i] = Value{}
		}
	}
	f.hasRet = false
	return f
}

func (ex *Exec) popFrame() {
	ex.depth--
}

func (ex *Exec) rtError(pos glsl.Pos, format string, args ...interface{}) error {
	return &RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// ---- Statements ----

func (ex *Exec) execStmt(s glsl.Stmt, f *frame) (ctrl, error) {
	switch n := s.(type) {
	case *glsl.BlockStmt:
		for _, st := range n.Stmts {
			c, err := ex.execStmt(st, f)
			if err != nil || c != ctrlNone {
				return c, err
			}
		}
		return ctrlNone, nil
	case *glsl.DeclStmt:
		for _, v := range n.Vars {
			val := Zero(v.DeclType)
			if v.Init != nil {
				iv, err := ex.evalExpr(v.Init, f)
				if err != nil {
					return ctrlNone, err
				}
				if iv.Agg != nil {
					// Value semantics: never alias the initializer.
					iv = iv.Copy()
				}
				iv.T = v.DeclType
				val = iv
				ex.Stats.Mov += uint64(v.DeclType.ComponentCount())
			}
			f.locals[v.Slot] = val
		}
		return ctrlNone, nil
	case *glsl.ExprStmt:
		_, err := ex.evalExpr(n.X, f)
		return ctrlNone, err
	case *glsl.EmptyStmt:
		return ctrlNone, nil
	case *glsl.IfStmt:
		cond, err := ex.evalExpr(n.Cond, f)
		if err != nil {
			return ctrlNone, err
		}
		ex.Stats.Branch++
		if cond.Bool() {
			return ex.execStmt(n.Then, f)
		}
		if n.Else != nil {
			return ex.execStmt(n.Else, f)
		}
		return ctrlNone, nil
	case *glsl.ForStmt:
		if n.InitStmt != nil {
			if c, err := ex.execStmt(n.InitStmt, f); err != nil || c == ctrlReturn || c == ctrlDiscard {
				return c, err
			}
		}
		for iter := 0; ; iter++ {
			if iter > ex.loopLimit() {
				return ctrlNone, ex.rtError(n.Pos, "loop exceeded %d iterations (runaway shader)", ex.loopLimit())
			}
			if n.Cond != nil {
				cond, err := ex.evalExpr(n.Cond, f)
				if err != nil {
					return ctrlNone, err
				}
				ex.Stats.Branch++
				if !cond.Bool() {
					break
				}
			}
			c, err := ex.execStmt(n.Body, f)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn || c == ctrlDiscard {
				return c, nil
			}
			if n.Post != nil {
				if _, err := ex.evalExpr(n.Post, f); err != nil {
					return ctrlNone, err
				}
			}
		}
		return ctrlNone, nil
	case *glsl.WhileStmt:
		for iter := 0; ; iter++ {
			if iter > ex.loopLimit() {
				return ctrlNone, ex.rtError(n.Pos, "loop exceeded %d iterations (runaway shader)", ex.loopLimit())
			}
			cond, err := ex.evalExpr(n.Cond, f)
			if err != nil {
				return ctrlNone, err
			}
			ex.Stats.Branch++
			if !cond.Bool() {
				return ctrlNone, nil
			}
			c, err := ex.execStmt(n.Body, f)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if c == ctrlReturn || c == ctrlDiscard {
				return c, nil
			}
		}
	case *glsl.DoWhileStmt:
		for iter := 0; ; iter++ {
			if iter > ex.loopLimit() {
				return ctrlNone, ex.rtError(n.Pos, "loop exceeded %d iterations (runaway shader)", ex.loopLimit())
			}
			c, err := ex.execStmt(n.Body, f)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if c == ctrlReturn || c == ctrlDiscard {
				return c, nil
			}
			cond, err := ex.evalExpr(n.Cond, f)
			if err != nil {
				return ctrlNone, err
			}
			ex.Stats.Branch++
			if !cond.Bool() {
				return ctrlNone, nil
			}
		}
	case *glsl.ReturnStmt:
		if n.X != nil {
			v, err := ex.evalExpr(n.X, f)
			if err != nil {
				return ctrlNone, err
			}
			f.ret = v
			f.hasRet = true
		}
		return ctrlReturn, nil
	case *glsl.BreakStmt:
		return ctrlBreak, nil
	case *glsl.ContinueStmt:
		return ctrlContinue, nil
	case *glsl.DiscardStmt:
		return ctrlDiscard, nil
	}
	return ctrlNone, ex.rtError(s.NodePos(), "unknown statement %T", s)
}

// DefaultMaxLoopIter is the default runaway-loop watchdog limit.
const DefaultMaxLoopIter = 1 << 26

func (ex *Exec) loopLimit() int {
	if ex.MaxLoopIter > 0 {
		return ex.MaxLoopIter
	}
	return DefaultMaxLoopIter
}
