package shader

import (
	"math"
	"testing"

	"glescompute/internal/glsl"
)

// fakeSampler returns a texel derived from the coordinates so tests can
// verify what was sampled.
type fakeSampler struct {
	texels map[int][4]float32
}

func (s *fakeSampler) Sample2D(unit int, u, v float32) [4]float32 {
	if t, ok := s.texels[unit]; ok {
		return t
	}
	return [4]float32{u, v, float32(unit), 1}
}

func (s *fakeSampler) SampleCube(unit int, x, y, z float32) [4]float32 {
	return [4]float32{x, y, z, 1}
}

// runFragment compiles src as a fragment shader, applies setup, runs one
// invocation and returns gl_FragColor.
func runFragment(t *testing.T, src string, setup func(*Exec)) [4]float32 {
	t.Helper()
	prog, errs := glsl.CompileSource(src, glsl.StageFragment, glsl.CheckOptions{})
	if errs.Err() != nil {
		t.Fatalf("compile failed:\n%v", errs)
	}
	ex := NewExec(prog, &fakeSampler{}, ExactSFU)
	if setup != nil {
		setup(ex)
	}
	if err := ex.InitGlobals(); err != nil {
		t.Fatalf("InitGlobals: %v", err)
	}
	discarded, err := ex.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if discarded {
		t.Fatal("unexpected discard")
	}
	return ex.Builtins[glsl.BVSlotFragColor].Vec4()
}

func wrapMain(body string) string {
	return "precision mediump float;\nvoid main() {\n" + body + "\n}\n"
}

func approxEq(a, b float32, tol float64) bool {
	return math.Abs(float64(a)-float64(b)) <= tol
}

func checkColor(t *testing.T, got [4]float32, want [4]float32, tol float64) {
	t.Helper()
	for i := range want {
		if !approxEq(got[i], want[i], tol) {
			t.Errorf("component %d: got %g, want %g (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestExecArithmetic(t *testing.T) {
	got := runFragment(t, wrapMain(`
	float a = 2.0 + 3.0 * 4.0;
	float b = (10.0 - 4.0) / 3.0;
	float c = -a + 20.0;
	gl_FragColor = vec4(a, b, c, 1.0);`), nil)
	checkColor(t, got, [4]float32{14, 2, 6, 1}, 1e-6)
}

func TestExecIntArithmetic(t *testing.T) {
	got := runFragment(t, wrapMain(`
	int a = 7 / 2;
	int b = -7 / 2;  // trunc toward zero
	int c = 3 * 4 + 1;
	gl_FragColor = vec4(float(a), float(b), float(c), 1.0);`), nil)
	checkColor(t, got, [4]float32{3, -3, 13, 1}, 0)
}

func TestExecVectorOps(t *testing.T) {
	got := runFragment(t, wrapMain(`
	vec3 a = vec3(1.0, 2.0, 3.0);
	vec3 b = vec3(4.0, 5.0, 6.0);
	vec3 s = a + b * 2.0;
	float d = dot(a, b);
	gl_FragColor = vec4(s.x, s.y, s.z, d);`), nil)
	checkColor(t, got, [4]float32{9, 12, 15, 32}, 1e-6)
}

func TestExecSwizzleReadWrite(t *testing.T) {
	got := runFragment(t, wrapMain(`
	vec4 v = vec4(1.0, 2.0, 3.0, 4.0);
	vec2 sw = v.wy;
	v.xz = vec2(10.0, 30.0);
	gl_FragColor = vec4(sw, v.x, v.z);`), nil)
	checkColor(t, got, [4]float32{4, 2, 10, 30}, 0)
}

func TestExecMatrixVector(t *testing.T) {
	got := runFragment(t, wrapMain(`
	mat2 m = mat2(1.0, 2.0, 3.0, 4.0); // columns (1,2),(3,4)
	vec2 v = m * vec2(1.0, 1.0);       // (1+3, 2+4)
	vec2 w = vec2(1.0, 1.0) * m;       // row vec: (1+2, 3+4)
	gl_FragColor = vec4(v, w);`), nil)
	checkColor(t, got, [4]float32{4, 6, 3, 7}, 1e-6)
}

func TestExecMatrixMatrix(t *testing.T) {
	got := runFragment(t, wrapMain(`
	mat2 a = mat2(1.0, 2.0, 3.0, 4.0);
	mat2 b = mat2(5.0, 6.0, 7.0, 8.0);
	mat2 c = a * b;
	gl_FragColor = vec4(c[0][0], c[0][1], c[1][0], c[1][1]);`), nil)
	// a = [1 3; 2 4], b = [5 7; 6 8]; c = [23 31; 34 46] (column-major out)
	checkColor(t, got, [4]float32{23, 34, 31, 46}, 1e-6)
}

func TestExecForLoop(t *testing.T) {
	got := runFragment(t, wrapMain(`
	float acc = 0.0;
	for (int i = 0; i < 10; ++i) { acc += float(i); }
	gl_FragColor = vec4(acc);`), nil)
	checkColor(t, got, [4]float32{45, 45, 45, 45}, 0)
}

func TestExecNestedLoopsBreakContinue(t *testing.T) {
	got := runFragment(t, wrapMain(`
	float acc = 0.0;
	for (int i = 0; i < 5; ++i) {
		if (i == 3) break;
		for (int j = 0; j < 5; ++j) {
			if (j == 2) continue;
			acc += 1.0;
		}
	}
	gl_FragColor = vec4(acc);`), nil)
	// i in {0,1,2}: each inner contributes 4 -> 12
	checkColor(t, got, [4]float32{12, 12, 12, 12}, 0)
}

func TestExecWhileAndDoWhile(t *testing.T) {
	got := runFragment(t, wrapMain(`
	int i = 0;
	while (i < 5) { i++; }
	int j = 10;
	do { j--; } while (j > 7);
	gl_FragColor = vec4(float(i), float(j), 0.0, 1.0);`), nil)
	checkColor(t, got, [4]float32{5, 7, 0, 1}, 0)
}

func TestExecTernaryShortCircuit(t *testing.T) {
	got := runFragment(t, wrapMain(`
	float a = 1.0 < 2.0 ? 10.0 : 20.0;
	bool and1 = false && (1.0 / 0.0 > 0.0); // RHS not evaluated
	bool or1 = true || false;
	gl_FragColor = vec4(a, and1 ? 1.0 : 0.0, or1 ? 1.0 : 0.0, 1.0);`), nil)
	checkColor(t, got, [4]float32{10, 0, 1, 1}, 0)
}

func TestExecFunctionCalls(t *testing.T) {
	got := runFragment(t, `
precision mediump float;
float square(float x) { return x * x; }
vec2 swap(vec2 v) { return v.yx; }
void main() {
	vec2 s = swap(vec2(3.0, 4.0));
	gl_FragColor = vec4(square(5.0), s, 1.0);
}`, nil)
	checkColor(t, got, [4]float32{25, 4, 3, 1}, 0)
}

func TestExecOutInoutParams(t *testing.T) {
	got := runFragment(t, `
precision mediump float;
void produce(out float a, inout float b) { a = 7.0; b *= 2.0; }
void main() {
	float x; float y = 3.0;
	produce(x, y);
	gl_FragColor = vec4(x, y, 0.0, 1.0);
}`, nil)
	checkColor(t, got, [4]float32{7, 6, 0, 1}, 0)
}

func TestExecOverloadedUserFunctions(t *testing.T) {
	got := runFragment(t, `
precision mediump float;
float pick(float x) { return 1.0; }
float pick(vec2 x) { return 2.0; }
void main() { gl_FragColor = vec4(pick(0.0), pick(vec2(0.0)), 0.0, 1.0); }`, nil)
	checkColor(t, got, [4]float32{1, 2, 0, 1}, 0)
}

func TestExecStructsAndArrays(t *testing.T) {
	got := runFragment(t, `
precision mediump float;
struct Pair { float a; float b; };
void main() {
	Pair p = Pair(3.0, 4.0);
	p.b += 1.0;
	float arr[3];
	arr[0] = 10.0; arr[1] = 20.0; arr[2] = 30.0;
	float sum = 0.0;
	for (int i = 0; i < 3; ++i) { sum += arr[i]; }
	gl_FragColor = vec4(p.a, p.b, sum, 1.0);
}`, nil)
	checkColor(t, got, [4]float32{3, 5, 60, 1}, 0)
}

func TestExecDiscardInMainAndHelper(t *testing.T) {
	run := func(src string) bool {
		prog, errs := glsl.CompileSource(src, glsl.StageFragment, glsl.CheckOptions{})
		if errs.Err() != nil {
			t.Fatalf("compile failed:\n%v", errs)
		}
		ex := NewExec(prog, nil, ExactSFU)
		if err := ex.InitGlobals(); err != nil {
			t.Fatal(err)
		}
		discarded, err := ex.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return discarded
	}
	if !run("precision mediump float;\nvoid main(){ discard; }") {
		t.Error("discard in main not detected")
	}
	if !run(`
precision mediump float;
void helper() { discard; }
void main(){ helper(); gl_FragColor = vec4(1.0); }`) {
		t.Error("discard in helper not detected")
	}
	if run("precision mediump float;\nvoid main(){ if (false) discard; gl_FragColor = vec4(1.0); }") {
		t.Error("spurious discard")
	}
}

func TestExecTextureSampling(t *testing.T) {
	got := runFragment(t, `
precision mediump float;
uniform sampler2D tex;
void main() { gl_FragColor = texture2D(tex, vec2(0.25, 0.75)); }`,
		func(ex *Exec) {
			u := ex.Prog.LookupUniform("tex")
			ex.SetGlobal(u, SamplerVal(glsl.TypeSampler2D, 3))
		})
	checkColor(t, got, [4]float32{0.25, 0.75, 3, 1}, 1e-6)
}

func TestExecUniforms(t *testing.T) {
	got := runFragment(t, `
precision mediump float;
uniform float scale;
uniform vec2 offset;
void main() { gl_FragColor = vec4(offset * scale, scale, 1.0); }`,
		func(ex *Exec) {
			ex.SetGlobal(ex.Prog.LookupUniform("scale"), FloatVal(3))
			ex.SetGlobal(ex.Prog.LookupUniform("offset"), Vec2Val(1, 2))
		})
	checkColor(t, got, [4]float32{3, 6, 3, 1}, 0)
}

func TestExecMutableGlobalResetBetweenInvocations(t *testing.T) {
	prog, errs := glsl.CompileSource(`
precision mediump float;
float counter = 10.0;
void main() { counter += 1.0; gl_FragColor = vec4(counter); }`, glsl.StageFragment, glsl.CheckOptions{})
	if errs.Err() != nil {
		t.Fatalf("compile failed:\n%v", errs)
	}
	ex := NewExec(prog, nil, ExactSFU)
	if err := ex.InitGlobals(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ex.Run(); err != nil {
			t.Fatal(err)
		}
		got := ex.Builtins[glsl.BVSlotFragColor].F[0]
		if got != 11 {
			t.Fatalf("invocation %d: counter = %g, want 11 (no state leak)", i, got)
		}
	}
}

func TestExecBuiltinMathFunctions(t *testing.T) {
	got := runFragment(t, wrapMain(`
	float a = floor(2.7);
	float b = fract(2.75);
	float c = mod(7.0, 3.0);
	float d = clamp(5.0, 0.0, 2.0);
	gl_FragColor = vec4(a, b, c, d);`), nil)
	checkColor(t, got, [4]float32{2, 0.75, 1, 2}, 1e-6)

	got = runFragment(t, wrapMain(`
	float a = pow(2.0, 10.0);
	float b = sqrt(16.0);
	float c = exp2(3.0);
	float d = log2(8.0);
	gl_FragColor = vec4(a, b, c, d);`), nil)
	checkColor(t, got, [4]float32{1024, 4, 8, 3}, 1e-3)

	got = runFragment(t, wrapMain(`
	float a = sin(0.0);
	float b = cos(0.0);
	float c = abs(-3.5);
	float d = sign(-2.0);
	gl_FragColor = vec4(a, b, c, d);`), nil)
	checkColor(t, got, [4]float32{0, 1, 3.5, -1}, 1e-6)
}

func TestExecGeometricBuiltins(t *testing.T) {
	got := runFragment(t, wrapMain(`
	float l = length(vec3(3.0, 4.0, 0.0));
	float d = distance(vec2(0.0, 0.0), vec2(3.0, 4.0));
	vec3 n = normalize(vec3(10.0, 0.0, 0.0));
	vec3 c = cross(vec3(1.0, 0.0, 0.0), vec3(0.0, 1.0, 0.0));
	gl_FragColor = vec4(l, d, n.x, c.z);`), nil)
	checkColor(t, got, [4]float32{5, 5, 1, 1}, 1e-5)
}

func TestExecVectorRelationalBuiltins(t *testing.T) {
	got := runFragment(t, wrapMain(`
	bvec3 lt = lessThan(vec3(1.0, 5.0, 3.0), vec3(2.0, 4.0, 3.0));
	float anyr = any(lt) ? 1.0 : 0.0;
	float allr = all(lt) ? 1.0 : 0.0;
	bvec3 inv = not(lt);
	gl_FragColor = vec4(anyr, allr, inv.x ? 0.0 : 1.0, inv.y ? 1.0 : 0.0);`), nil)
	checkColor(t, got, [4]float32{1, 0, 1, 1}, 0)
}

func TestExecMixStepSmoothstep(t *testing.T) {
	got := runFragment(t, wrapMain(`
	float m = mix(0.0, 10.0, 0.25);
	float s = step(3.0, 5.0);
	float s2 = step(5.0, 3.0);
	float ss = smoothstep(0.0, 1.0, 0.5);
	gl_FragColor = vec4(m, s, s2, ss);`), nil)
	checkColor(t, got, [4]float32{2.5, 1, 0, 0.5}, 1e-6)
}

func TestExecGlobalConstInit(t *testing.T) {
	got := runFragment(t, `
precision mediump float;
const float PI = 3.14159265;
const vec2 HALF = vec2(0.5);
float plain = PI * 2.0;
void main() { gl_FragColor = vec4(PI, HALF, plain); }`, nil)
	checkColor(t, got, [4]float32{3.14159265, 0.5, 0.5, 6.2831853}, 1e-5)
}

func TestExecDynamicIndexClamped(t *testing.T) {
	got := runFragment(t, `
precision mediump float;
uniform int idx;
void main() {
	vec4 v = vec4(1.0, 2.0, 3.0, 4.0);
	gl_FragColor = vec4(v[idx]);
}`, func(ex *Exec) {
		ex.SetGlobal(ex.Prog.LookupUniform("idx"), IntVal(99)) // out of bounds
	})
	checkColor(t, got, [4]float32{4, 4, 4, 4}, 0) // clamped to last
}

func TestExecInt24BitPrecision(t *testing.T) {
	// Integers live in float32 registers: 2^24 is representable, 2^24+1 is
	// not. This is the paper's §IV-C precision statement.
	got := runFragment(t, wrapMain(`
	float big = 16777216.0;      // 2^24
	float bigger = big + 1.0;    // rounds back to 2^24 in fp32
	gl_FragColor = vec4(bigger - big, 0.0, 0.0, 1.0);`), nil)
	if got[0] != 0 {
		t.Errorf("2^24+1 should collapse to 2^24 in fp32, diff = %g", got[0])
	}
}

func TestExecStatsCounting(t *testing.T) {
	prog, errs := glsl.CompileSource(wrapMain(`
	float a = 1.0 + 2.0;
	float b = a * 3.0;
	float c = b / 4.0;
	gl_FragColor = vec4(a, b, c, 1.0);`), glsl.StageFragment, glsl.CheckOptions{})
	if errs.Err() != nil {
		t.Fatal(errs)
	}
	ex := NewExec(prog, nil, ExactSFU)
	if err := ex.InitGlobals(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	if ex.Stats.Add < 1 || ex.Stats.Mul < 1 || ex.Stats.Div < 1 {
		t.Errorf("stats not counted: %+v", ex.Stats)
	}
	if ex.Stats.Invocations != 1 {
		t.Errorf("invocations = %d, want 1", ex.Stats.Invocations)
	}
	before := ex.Stats.TotalOps()
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	if ex.Stats.TotalOps() <= before {
		t.Error("stats should accumulate across runs")
	}
}

func TestExecTextureStatsCount(t *testing.T) {
	prog, errs := glsl.CompileSource(`
precision mediump float;
uniform sampler2D s;
void main(){
	vec4 acc = vec4(0.0);
	for (int i = 0; i < 4; ++i) { acc += texture2D(s, vec2(0.5)); }
	gl_FragColor = acc;
}`, glsl.StageFragment, glsl.CheckOptions{})
	if errs.Err() != nil {
		t.Fatal(errs)
	}
	ex := NewExec(prog, &fakeSampler{}, ExactSFU)
	ex.SetGlobal(ex.Prog.LookupUniform("s"), SamplerVal(glsl.TypeSampler2D, 0))
	if err := ex.InitGlobals(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	if ex.Stats.Tex != 4 {
		t.Errorf("texture fetches = %d, want 4", ex.Stats.Tex)
	}
}

func TestExecRunawayLoopAborts(t *testing.T) {
	prog, errs := glsl.CompileSource("precision mediump float;\nvoid main(){ float x = 0.0; while (true) { x += 1.0; } }", glsl.StageFragment, glsl.CheckOptions{})
	if errs.Err() != nil {
		t.Fatal(errs)
	}
	ex := NewExec(prog, nil, ExactSFU)
	ex.MaxLoopIter = 10000
	if err := ex.InitGlobals(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(); err == nil {
		t.Fatal("runaway loop must abort with an error")
	}
}

func TestExecVertexStage(t *testing.T) {
	prog, errs := glsl.CompileSource(`
attribute vec2 a_position;
attribute vec2 a_texcoord;
varying vec2 v_texcoord;
void main() {
	v_texcoord = a_texcoord;
	gl_Position = vec4(a_position, 0.0, 1.0);
}`, glsl.StageVertex, glsl.CheckOptions{})
	if errs.Err() != nil {
		t.Fatal(errs)
	}
	ex := NewExec(prog, nil, ExactSFU)
	if err := ex.InitGlobals(); err != nil {
		t.Fatal(err)
	}
	ex.SetGlobal(prog.LookupAttribute("a_position"), Vec2Val(-1, 1))
	ex.SetGlobal(prog.LookupAttribute("a_texcoord"), Vec2Val(0.5, 0.25))
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	pos := ex.Builtins[glsl.BVSlotPosition].Vec4()
	if pos != [4]float32{-1, 1, 0, 1} {
		t.Errorf("gl_Position = %v", pos)
	}
	vt := ex.Globals[prog.LookupVarying("v_texcoord").Slot]
	if vt.F[0] != 0.5 || vt.F[1] != 0.25 {
		t.Errorf("varying = %v", vt.F[:2])
	}
}

func TestSFUQuantization(t *testing.T) {
	cfg := SFUConfig{MantissaBits: 16}
	x := float32(1.234567)
	q := cfg.Quantize(x)
	if q == x {
		// Quantization may round to the same value only if x already fits;
		// 1.234567 does not fit in 16 bits of mantissa.
		t.Errorf("expected quantization to change %v", x)
	}
	if math.Abs(float64(q-x))/float64(x) > math.Pow(2, -16) {
		t.Errorf("quantization error too large: %v -> %v", x, q)
	}
	// Exact config is the identity.
	if ExactSFU.Quantize(x) != x {
		t.Error("ExactSFU must not quantize")
	}
	// Special values pass through.
	if cfg.Quantize(0) != 0 {
		t.Error("zero must pass through")
	}
	inf := float32(math.Inf(1))
	if cfg.Quantize(inf) != inf {
		t.Error("inf must pass through")
	}
	// Powers of two are exact at any precision.
	if cfg.Quantize(8.0) != 8.0 {
		t.Error("8.0 must be exact")
	}
}

func TestSFUAffectsExp2Log2(t *testing.T) {
	src := wrapMain(`gl_FragColor = vec4(exp2(1.5), log2(3.0), 0.0, 1.0);`)
	prog, errs := glsl.CompileSource(src, glsl.StageFragment, glsl.CheckOptions{})
	if errs.Err() != nil {
		t.Fatal(errs)
	}
	run := func(sfu SFUConfig) [4]float32 {
		ex := NewExec(prog, nil, sfu)
		if err := ex.InitGlobals(); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Run(); err != nil {
			t.Fatal(err)
		}
		return ex.Builtins[glsl.BVSlotFragColor].Vec4()
	}
	exact := run(ExactSFU)
	rough := run(SFUConfig{MantissaBits: 8})
	if exact == rough {
		t.Error("8-bit SFU should differ from exact for exp2(1.5)/log2(3)")
	}
	// Error bounded by the configured precision.
	if math.Abs(float64(exact[0]-rough[0]))/float64(exact[0]) > math.Pow(2, -8) {
		t.Errorf("SFU error exceeds bound: %v vs %v", exact[0], rough[0])
	}
}

func TestValueZeroAndCopy(t *testing.T) {
	at := glsl.ArrayOf(glsl.TypeVec2, 3)
	v := Zero(at)
	if len(v.Agg) != 3 {
		t.Fatalf("array zero has %d elems", len(v.Agg))
	}
	c := v.Copy()
	c.Agg[1].F[0] = 42
	if v.Agg[1].F[0] == 42 {
		t.Error("Copy must deep-copy aggregates")
	}
}
