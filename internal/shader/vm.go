package shader

// The register machine executing bytecode produced by Compile. One VM is
// one shader invocation context (the draw loop creates one per worker, like
// it does for the interpreter); Run executes main() with zero heap
// allocation per invocation. All arithmetic reproduces the interpreter in
// eval.go/builtins_exec.go bit-for-bit — the differential tests in
// vm_test.go and internal/paper enforce it.

import (
	"math"
	"strconv"

	"glescompute/internal/glsl"
)

// VM executes a Compiled program. Not safe for concurrent use; create one
// VM per worker over a shared *Compiled.
type VM struct {
	Textures TextureSampler
	SFU      SFUConfig
	Stats    Stats

	// MaxLoopIter guards against runaway shaders, like Exec.MaxLoopIter.
	MaxLoopIter int

	c         *Compiled
	regs      []float32
	snap      []float32 // globals snapshot taken by InitGlobals
	callStack []int32
	loopIters []int

	// discarding marks a discard executed in a callee body: the caller's
	// out/inout writebacks still run before the invocation aborts,
	// mirroring the interpreter's one-level unwind (evalUserCall).
	discarding bool
}

// NewVM creates an executor over compiled code.
func NewVM(c *Compiled, tex TextureSampler, sfu SFUConfig) *VM {
	if tex == nil {
		tex = nullSampler{}
	}
	vm := &VM{
		Textures:  tex,
		SFU:       sfu,
		c:         c,
		regs:      make([]float32, c.nregs),
		callStack: make([]int32, c.maxDepth),
		loopIters: make([]int, c.nloops),
	}
	// Builtin register defaults, mirroring NewExec.
	if c.Prog.Stage == glsl.StageVertex {
		vm.regs[c.builtinOff[glsl.BVSlotPointSize]] = 1
	} else {
		vm.regs[c.builtinOff[glsl.BVSlotFrontFacing]] = 1
	}
	return vm
}

// Compiled returns the program this VM executes.
func (vm *VM) Compiled() *Compiled { return vm.c }

func (vm *VM) loopLimit() int {
	if vm.MaxLoopIter > 0 {
		return vm.MaxLoopIter
	}
	return DefaultMaxLoopIter
}

// InitGlobals runs the file-scope initializer segment and snapshots global
// state, mirroring Exec.InitGlobals (including its Stats accounting).
func (vm *VM) InitGlobals() error {
	discarded, err := vm.exec(vm.c.initEntry)
	if err != nil {
		return err
	}
	if discarded {
		// A discard reached from a global initializer is an init failure,
		// like the interpreter's errDiscard escaping InitGlobals.
		return &RuntimeError{Msg: "discard"}
	}
	if vm.snap == nil {
		vm.snap = make([]float32, vm.c.globalEnd-vm.c.globalBase)
	}
	copy(vm.snap, vm.regs[vm.c.globalBase:vm.c.globalEnd])
	return nil
}

// SetGlobal stores a runtime value into a global's registers (uniforms,
// attributes). Mirrors Exec.SetGlobal: the post-init snapshot is updated
// too, so per-run resets preserve the value.
func (vm *VM) SetGlobal(d *glsl.VarDecl, val Value) {
	off := vm.c.globalOff[d.Slot]
	n := flatSize(d.DeclType)
	flattenValueInto(vm.regs[off:off+n], val)
	if vm.snap != nil {
		copy(vm.snap[off-vm.c.globalBase:off-vm.c.globalBase+n], vm.regs[off:off+n])
	}
}

// Run executes main() once. It reports whether the fragment was discarded.
func (vm *VM) Run() (bool, error) {
	if vm.snap != nil {
		for _, r := range vm.c.mutatedRanges {
			off, n := r[0], r[1]
			copy(vm.regs[off:off+n], vm.snap[off-vm.c.globalBase:off-vm.c.globalBase+n])
		}
	}
	vm.Stats.Invocations++
	return vm.exec(vm.c.mainEntry)
}

func (vm *VM) exec(entry int32) (bool, error) {
	code := vm.c.code
	regs := vm.regs
	pc := entry
	sp := 0
	vm.discarding = false
	for {
		in := &code[pc]
		switch in.op {
		case opNop:
		case opStats:
			vm.Stats.AddStats(&vm.c.stats[in.aux])
		case opJmp:
			pc = in.aux
			continue
		case opJz:
			if regs[in.a] == 0 {
				pc = in.aux
				continue
			}
		case opJnz:
			if regs[in.a] != 0 {
				pc = in.aux
				continue
			}
		case opCall:
			vm.callStack[sp] = pc + 1
			sp++
			pc = vm.c.funcs[in.aux].entry
			continue
		case opRet:
			if sp == 0 {
				return false, nil
			}
			sp--
			pc = vm.callStack[sp]
			continue
		case opDiscard:
			// Discard in main finishes immediately; in a callee it unwinds
			// one level so the call site's writeback epilogue (and its
			// Stats) still runs, like the interpreter's ctrlDiscard path.
			if sp == 0 {
				return true, nil
			}
			vm.discarding = true
			sp--
			pc = vm.callStack[sp]
			continue
		case opDiscardTake:
			regs[in.dst] = b2f(vm.discarding)
			vm.discarding = false
		case opDiscardHalt:
			if regs[in.a] != 0 {
				return true, nil
			}
		case opLoopReset:
			vm.loopIters[in.aux] = 0
		case opLoopGuard:
			if vm.loopIters[in.aux] > vm.loopLimit() {
				return false, &RuntimeError{
					Pos: vm.c.poss[in.b],
					Msg: "loop exceeded " + strconv.Itoa(vm.loopLimit()) + " iterations (runaway shader)",
				}
			}
			vm.loopIters[in.aux]++
		case opLoadImm:
			regs[in.dst] = in.imm
		case opZero:
			for i := int32(0); i < in.n; i++ {
				regs[in.dst+i] = 0
			}
		case opMov:
			copy(regs[in.dst:in.dst+in.n], regs[in.a:in.a+in.n])
		case opSplat:
			v := regs[in.a]
			for i := int32(0); i < in.n; i++ {
				regs[in.dst+i] = v
			}
		case opSwizLoad:
			for i := int32(0); i < in.n; i++ {
				regs[in.dst+i] = regs[in.a+(in.aux>>(4*i))&0xf]
			}
		case opSwizStore:
			for i := int32(0); i < in.n; i++ {
				regs[in.dst+(in.aux>>(4*i))&0xf] = regs[in.a+i]
			}
		case opLoadInd:
			ad := int32(regs[in.a])
			copy(regs[in.dst:in.dst+in.n], regs[ad:ad+in.n])
		case opStoreInd:
			ad := int32(regs[in.a])
			copy(regs[ad:ad+in.n], regs[in.b:in.b+in.n])
		case opLoadIndC:
			ad := int32(regs[in.a])
			for i := int32(0); i < in.n; i++ {
				regs[in.dst+i] = regs[ad+(in.aux>>(4*i))&0xf]
			}
		case opStoreIndC:
			ad := int32(regs[in.a])
			for i := int32(0); i < in.n; i++ {
				regs[ad+(in.aux>>(4*i))&0xf] = regs[in.b+i]
			}
		case opAddrOff:
			regs[in.dst] = regs[in.a] + float32(in.n)
		case opDynAddr:
			base := in.c
			if in.b >= 0 {
				base = int32(regs[in.b])
			}
			idx := clampIndex(int(int32(regs[in.a])), int(in.aux))
			regs[in.dst] = float32(base + int32(idx)*in.n)
		case opDynPick:
			base := in.c
			if in.b >= 0 {
				base = int32(regs[in.b])
			}
			limit := int(in.aux & 0xff)
			idx := clampIndex(int(int32(regs[in.a])), limit)
			comp := (in.aux >> (8 + 4*int32(idx))) & 0xf
			regs[in.dst] = float32(base + comp)
		case opAdd:
			d, x, y := in.dst, in.a, in.b
			if in.aux == 0 {
				for i := int32(0); i < in.n; i++ {
					regs[d+i] = regs[x+i] + regs[y+i]
				}
			} else {
				for i := int32(0); i < in.n; i++ {
					regs[d+i] = bcast(regs, x, i, in.aux&1 != 0) + bcast(regs, y, i, in.aux&2 != 0)
				}
			}
		case opSub:
			d, x, y := in.dst, in.a, in.b
			if in.aux == 0 {
				for i := int32(0); i < in.n; i++ {
					regs[d+i] = regs[x+i] - regs[y+i]
				}
			} else {
				for i := int32(0); i < in.n; i++ {
					regs[d+i] = bcast(regs, x, i, in.aux&1 != 0) - bcast(regs, y, i, in.aux&2 != 0)
				}
			}
		case opMul:
			d, x, y := in.dst, in.a, in.b
			if in.aux == 0 {
				for i := int32(0); i < in.n; i++ {
					regs[d+i] = regs[x+i] * regs[y+i]
				}
			} else {
				for i := int32(0); i < in.n; i++ {
					regs[d+i] = bcast(regs, x, i, in.aux&1 != 0) * bcast(regs, y, i, in.aux&2 != 0)
				}
			}
		case opDivF:
			d, x, y := in.dst, in.a, in.b
			for i := int32(0); i < in.n; i++ {
				regs[d+i] = bcast(regs, x, i, in.aux&1 != 0) / bcast(regs, y, i, in.aux&2 != 0)
			}
		case opDivI:
			d, x, y := in.dst, in.a, in.b
			for i := int32(0); i < in.n; i++ {
				a := bcast(regs, x, i, in.aux&1 != 0)
				b := bcast(regs, y, i, in.aux&2 != 0)
				if b == 0 {
					regs[d+i] = 0 // undefined in GLSL; pick 0 deterministically
				} else {
					regs[d+i] = truncToward0(float64(a) / float64(b))
				}
			}
		case opNeg:
			for i := int32(0); i < in.n; i++ {
				regs[in.dst+i] = -regs[in.a+i]
			}
		case opNot:
			if regs[in.a] == 0 {
				regs[in.dst] = 1
			} else {
				regs[in.dst] = 0
			}
		case opBoolNorm:
			if regs[in.a] != 0 {
				regs[in.dst] = 1
			} else {
				regs[in.dst] = 0
			}
		case opXorXor:
			if (regs[in.a] != 0) != (regs[in.b] != 0) {
				regs[in.dst] = 1
			} else {
				regs[in.dst] = 0
			}
		case opLt:
			regs[in.dst] = b2f(regs[in.a] < regs[in.b])
		case opLe:
			regs[in.dst] = b2f(regs[in.a] <= regs[in.b])
		case opGt:
			regs[in.dst] = b2f(regs[in.a] > regs[in.b])
		case opGe:
			regs[in.dst] = b2f(regs[in.a] >= regs[in.b])
		case opEqV, opNeV:
			eq := true
			for i := int32(0); i < in.n; i++ {
				if regs[in.a+i] != regs[in.b+i] {
					eq = false
					break
				}
			}
			if in.op == opNeV {
				eq = !eq
			}
			regs[in.dst] = b2f(eq)
		case opConvInt:
			for i := int32(0); i < in.n; i++ {
				regs[in.dst+i] = truncToward0(float64(regs[in.a+i]))
			}
		case opConvBool:
			for i := int32(0); i < in.n; i++ {
				regs[in.dst+i] = b2f(regs[in.a+i] != 0)
			}
		case opMatDiag:
			n := in.n
			for i := int32(0); i < n*n; i++ {
				regs[in.dst+i] = 0
			}
			v := regs[in.a]
			for i := int32(0); i < n; i++ {
				regs[in.dst+i*n+i] = v
			}
		case opMatMulMM:
			n := in.n
			for col := int32(0); col < n; col++ {
				for row := int32(0); row < n; row++ {
					var s float32
					for k := int32(0); k < n; k++ {
						s += regs[in.a+k*n+row] * regs[in.b+col*n+k]
					}
					regs[in.dst+col*n+row] = s
				}
			}
		case opMatMulMV:
			n := in.n
			for row := int32(0); row < n; row++ {
				var s float32
				for k := int32(0); k < n; k++ {
					s += regs[in.a+k*n+row] * regs[in.b+k]
				}
				regs[in.dst+row] = s
			}
		case opMatMulVM:
			n := in.n
			for col := int32(0); col < n; col++ {
				var s float32
				for k := int32(0); k < n; k++ {
					s += regs[in.a+k] * regs[in.b+col*n+k]
				}
				regs[in.dst+col] = s
			}
		case opBuiltin:
			vm.execBuiltin(&vm.c.builtins[in.aux])

		// ---- Specialized dispatch (specialize.go). Each case reproduces
		// its generic execBuiltin/instruction-pair counterpart exactly;
		// the zero-dst prologue is skipped only because specialization
		// proved the destination cannot alias the arguments. ----
		case opTex2D:
			unit := int(regs[in.a])
			rgba := vm.Textures.Sample2D(unit, regs[in.b], regs[in.b+1])
			regs[in.dst+0], regs[in.dst+1], regs[in.dst+2], regs[in.dst+3] = rgba[0], rgba[1], rgba[2], rgba[3]
		case opBFloor:
			for i := int32(0); i < in.n; i++ {
				regs[in.dst+i] = float32(math.Floor(float64(regs[in.a+i])))
			}
		case opBFract:
			for i := int32(0); i < in.n; i++ {
				x := float64(regs[in.a+i])
				regs[in.dst+i] = float32(x - math.Floor(x))
			}
		case opBMod:
			for i := int32(0); i < in.n; i++ {
				a := bcast(regs, in.a, i, in.aux&1 != 0)
				b := bcast(regs, in.b, i, in.aux&2 != 0)
				regs[in.dst+i] = a - b*float32(math.Floor(float64(a/b)))
			}
		case opBMin:
			for i := int32(0); i < in.n; i++ {
				regs[in.dst+i] = minf(bcast(regs, in.a, i, in.aux&1 != 0), bcast(regs, in.b, i, in.aux&2 != 0))
			}
		case opBMax:
			for i := int32(0); i < in.n; i++ {
				regs[in.dst+i] = maxf(bcast(regs, in.a, i, in.aux&1 != 0), bcast(regs, in.b, i, in.aux&2 != 0))
			}
		case opBClamp:
			for i := int32(0); i < in.n; i++ {
				lo := bcast(regs, in.b, i, in.aux&1 != 0)
				hi := bcast(regs, in.c, i, in.aux&2 != 0)
				regs[in.dst+i] = minf(maxf(regs[in.a+i], lo), hi)
			}
		case opBStep:
			for i := int32(0); i < in.n; i++ {
				if bcast(regs, in.b, i, in.aux&2 != 0) < bcast(regs, in.a, i, in.aux&1 != 0) {
					regs[in.dst+i] = 0
				} else {
					regs[in.dst+i] = 1
				}
			}
		case opBDot:
			var s float32
			for i := int32(0); i < in.n; i++ {
				s += regs[in.a+i] * regs[in.b+i]
			}
			regs[in.dst] = s
		case opMulImm:
			regs[in.c] = in.imm
			d, x, y := in.dst, in.a, in.b
			for i := int32(0); i < in.n; i++ {
				regs[d+i] = bcast(regs, x, i, in.aux&1 != 0) * bcast(regs, y, i, in.aux&2 != 0)
			}
		case opAddImm:
			regs[in.c] = in.imm
			d, x, y := in.dst, in.a, in.b
			for i := int32(0); i < in.n; i++ {
				regs[d+i] = bcast(regs, x, i, in.aux&1 != 0) + bcast(regs, y, i, in.aux&2 != 0)
			}
		case opMulAdd:
			d, x, y, mdst := in.dst, in.a, in.b, in.c
			maux := in.aux & 3
			aaux := (in.aux >> 2) & 3
			addLeft := in.aux&(1<<4) != 0
			other := in.aux >> 5
			for i := int32(0); i < in.n; i++ {
				// Explicit float32 conversion: the stored product must be
				// rounded, never contracted with the add into an FMA.
				m := float32(bcast(regs, x, i, maux&1 != 0) * bcast(regs, y, i, maux&2 != 0))
				regs[mdst+i] = m
				if addLeft {
					regs[d+i] = bcast(regs, mdst, i, aaux&1 != 0) + bcast(regs, other, i, aaux&2 != 0)
				} else {
					regs[d+i] = bcast(regs, other, i, aaux&1 != 0) + bcast(regs, mdst, i, aaux&2 != 0)
				}
			}
		default:
			return false, &RuntimeError{Msg: "vm: unknown opcode " + strconv.Itoa(int(in.op))}
		}
		pc++
	}
}

func bcast(regs []float32, base, i int32, scalar bool) float32 {
	if scalar {
		return regs[base]
	}
	return regs[base+i]
}

func b2f(b bool) float32 {
	if b {
		return 1
	}
	return 0
}

// sfuExp2 and sfuLog2 mirror the Exec methods (SFU counts are folded into
// the compiled stats tables, so only the arithmetic lives here).
func (vm *VM) sfuExp2(x float32) float32 {
	return vm.SFU.Approx(x, float32(math.Exp2(float64(x))))
}

func (vm *VM) sfuLog2(x float32) float32 {
	return vm.SFU.Approx(x, float32(math.Log2(float64(x))))
}

// execBuiltin reproduces Exec.evalBuiltin's arithmetic over registers.
// Every case must stay bit-for-bit identical to builtins_exec.go.
func (vm *VM) execBuiltin(d *builtinDesc) {
	regs := vm.regs
	nc := d.nc
	out := d.dst
	// Zero the destination first, like the interpreter's fresh out Value
	// (some builtins write components conditionally, e.g. refract).
	for i := int32(0); i < maxI32(nc, 1); i++ {
		regs[out+i] = 0
	}
	arg := func(k, i int32) float32 { return regs[d.args[k]+i] }
	// comp fetches component i of argument k with scalar broadcast.
	comp := func(k, i int32) float32 {
		if d.scalar[k] {
			return regs[d.args[k]]
		}
		return regs[d.args[k]+i]
	}
	un := func(fn func(float64) float64, sfu bool) {
		for i := int32(0); i < nc; i++ {
			r := float32(fn(float64(arg(0, i))))
			if sfu {
				r = vm.SFU.Quantize(r)
			}
			regs[out+i] = r
		}
	}

	switch d.id {
	case glsl.BRadians:
		un(func(x float64) float64 { return x * math.Pi / 180 }, false)
	case glsl.BDegrees:
		un(func(x float64) float64 { return x * 180 / math.Pi }, false)
	case glsl.BSin:
		un(math.Sin, true)
	case glsl.BCos:
		un(math.Cos, true)
	case glsl.BTan:
		un(math.Tan, true)
	case glsl.BAsin:
		un(math.Asin, true)
	case glsl.BAcos:
		un(math.Acos, true)
	case glsl.BAtan:
		un(math.Atan, true)
	case glsl.BAtan2:
		for i := int32(0); i < nc; i++ {
			regs[out+i] = float32(math.Atan2(float64(comp(0, i)), float64(comp(1, i))))
		}
	case glsl.BPow:
		for i := int32(0); i < nc; i++ {
			x, y := comp(0, i), comp(1, i)
			regs[out+i] = vm.sfuExp2(y * vm.sfuLog2(x))
		}
	case glsl.BExp:
		for i := int32(0); i < nc; i++ {
			regs[out+i] = vm.sfuExp2(arg(0, i) * float32(math.Log2E))
		}
	case glsl.BLog:
		for i := int32(0); i < nc; i++ {
			regs[out+i] = vm.sfuLog2(arg(0, i)) * float32(math.Ln2)
		}
	case glsl.BExp2:
		for i := int32(0); i < nc; i++ {
			regs[out+i] = vm.sfuExp2(arg(0, i))
		}
	case glsl.BLog2:
		for i := int32(0); i < nc; i++ {
			regs[out+i] = vm.sfuLog2(arg(0, i))
		}
	case glsl.BSqrt:
		un(math.Sqrt, false)
	case glsl.BInverseSqrt:
		un(func(x float64) float64 { return 1 / math.Sqrt(x) }, false)
	case glsl.BAbs:
		un(math.Abs, false)
	case glsl.BSign:
		un(func(x float64) float64 {
			if x > 0 {
				return 1
			}
			if x < 0 {
				return -1
			}
			return 0
		}, false)
	case glsl.BFloor:
		un(math.Floor, false)
	case glsl.BCeil:
		un(math.Ceil, false)
	case glsl.BFract:
		un(func(x float64) float64 { return x - math.Floor(x) }, false)
	case glsl.BMod:
		for i := int32(0); i < nc; i++ {
			a, b := comp(0, i), comp(1, i)
			regs[out+i] = a - b*float32(math.Floor(float64(a/b)))
		}
	case glsl.BMin:
		for i := int32(0); i < nc; i++ {
			regs[out+i] = minf(comp(0, i), comp(1, i))
		}
	case glsl.BMax:
		for i := int32(0); i < nc; i++ {
			regs[out+i] = maxf(comp(0, i), comp(1, i))
		}
	case glsl.BClamp:
		for i := int32(0); i < nc; i++ {
			regs[out+i] = minf(maxf(arg(0, i), comp(1, i)), comp(2, i))
		}
	case glsl.BMix:
		for i := int32(0); i < nc; i++ {
			a, b, t := arg(0, i), arg(1, i), comp(2, i)
			regs[out+i] = a*(1-t) + b*t
		}
	case glsl.BStep:
		for i := int32(0); i < nc; i++ {
			if comp(1, i) < comp(0, i) {
				regs[out+i] = 0
			} else {
				regs[out+i] = 1
			}
		}
	case glsl.BSmoothstep:
		for i := int32(0); i < nc; i++ {
			e0, e1, x := comp(0, i), comp(1, i), arg(d.nargs-1, i)
			t := (x - e0) / (e1 - e0)
			if t < 0 {
				t = 0
			}
			if t > 1 {
				t = 1
			}
			regs[out+i] = t * t * (3 - 2*t)
		}
	case glsl.BLength:
		var s float64
		for i := int32(0); i < d.an; i++ {
			s += float64(arg(0, i)) * float64(arg(0, i))
		}
		regs[out] = float32(math.Sqrt(s))
	case glsl.BDistance:
		var s float64
		for i := int32(0); i < d.an; i++ {
			df := float64(arg(0, i) - arg(1, i))
			s += df * df
		}
		regs[out] = float32(math.Sqrt(s))
	case glsl.BDot:
		var s float32
		for i := int32(0); i < d.an; i++ {
			s += arg(0, i) * arg(1, i)
		}
		regs[out] = s
	case glsl.BCross:
		a0, a1, a2 := arg(0, 0), arg(0, 1), arg(0, 2)
		b0, b1, b2 := arg(1, 0), arg(1, 1), arg(1, 2)
		regs[out+0] = a1*b2 - a2*b1
		regs[out+1] = a2*b0 - a0*b2
		regs[out+2] = a0*b1 - a1*b0
	case glsl.BNormalize:
		var s float64
		for i := int32(0); i < d.an; i++ {
			s += float64(arg(0, i)) * float64(arg(0, i))
		}
		inv := float32(1 / math.Sqrt(s))
		for i := int32(0); i < d.an; i++ {
			regs[out+i] = arg(0, i) * inv
		}
	case glsl.BFaceforward:
		var dd float32
		for i := int32(0); i < d.an; i++ {
			dd += arg(2, i) * arg(1, i)
		}
		for i := int32(0); i < d.an; i++ {
			if dd < 0 {
				regs[out+i] = arg(0, i)
			} else {
				regs[out+i] = -arg(0, i)
			}
		}
	case glsl.BReflect:
		var dd float32
		for i := int32(0); i < d.an; i++ {
			dd += arg(1, i) * arg(0, i)
		}
		for i := int32(0); i < d.an; i++ {
			regs[out+i] = arg(0, i) - 2*dd*arg(1, i)
		}
	case glsl.BRefract:
		eta := regs[d.args[2]]
		var dd float64
		for i := int32(0); i < d.an; i++ {
			dd += float64(arg(1, i)) * float64(arg(0, i))
		}
		k := 1 - float64(eta)*float64(eta)*(1-dd*dd)
		if k >= 0 {
			for i := int32(0); i < d.an; i++ {
				regs[out+i] = eta*arg(0, i) - float32(float64(eta)*dd+math.Sqrt(k))*arg(1, i)
			}
		}
	case glsl.BMatrixCompMult:
		for i := int32(0); i < d.dim*d.dim; i++ {
			regs[out+i] = arg(0, i) * arg(1, i)
		}
	case glsl.BLessThan, glsl.BLessThanEqual, glsl.BGreaterThan, glsl.BGreaterThanEqual,
		glsl.BEqual, glsl.BNotEqual:
		for i := int32(0); i < d.an; i++ {
			a, b := arg(0, i), arg(1, i)
			var r bool
			switch d.id {
			case glsl.BLessThan:
				r = a < b
			case glsl.BLessThanEqual:
				r = a <= b
			case glsl.BGreaterThan:
				r = a > b
			case glsl.BGreaterThanEqual:
				r = a >= b
			case glsl.BEqual:
				r = a == b
			case glsl.BNotEqual:
				r = a != b
			}
			if r {
				regs[out+i] = 1
			}
		}
	case glsl.BAny:
		for i := int32(0); i < d.an; i++ {
			if arg(0, i) != 0 {
				regs[out] = 1
			}
		}
	case glsl.BAll:
		regs[out] = 1
		for i := int32(0); i < d.an; i++ {
			if arg(0, i) == 0 {
				regs[out] = 0
			}
		}
	case glsl.BNot:
		for i := int32(0); i < d.an; i++ {
			if arg(0, i) == 0 {
				regs[out+i] = 1
			}
		}
	case glsl.BTexture2D, glsl.BTexture2DBias, glsl.BTexture2DLod:
		unit := int(regs[d.args[0]])
		rgba := vm.Textures.Sample2D(unit, arg(1, 0), arg(1, 1))
		regs[out+0], regs[out+1], regs[out+2], regs[out+3] = rgba[0], rgba[1], rgba[2], rgba[3]
	case glsl.BTexture2DProj3, glsl.BTexture2DProjLod3:
		unit := int(regs[d.args[0]])
		q := arg(1, 2)
		rgba := vm.Textures.Sample2D(unit, arg(1, 0)/q, arg(1, 1)/q)
		regs[out+0], regs[out+1], regs[out+2], regs[out+3] = rgba[0], rgba[1], rgba[2], rgba[3]
	case glsl.BTexture2DProj4, glsl.BTexture2DProjLod4:
		unit := int(regs[d.args[0]])
		q := arg(1, 3)
		rgba := vm.Textures.Sample2D(unit, arg(1, 0)/q, arg(1, 1)/q)
		regs[out+0], regs[out+1], regs[out+2], regs[out+3] = rgba[0], rgba[1], rgba[2], rgba[3]
	case glsl.BTextureCube, glsl.BTextureCubeBias, glsl.BTextureCubeLod:
		unit := int(regs[d.args[0]])
		rgba := vm.Textures.SampleCube(unit, arg(1, 0), arg(1, 1), arg(1, 2))
		regs[out+0], regs[out+1], regs[out+2], regs[out+3] = rgba[0], rgba[1], rgba[2], rgba[3]
	}
}
