package shader

// Dispatch specialization for the bytecode VM. Compile emits fully generic
// instructions: every builtin call goes through one opBuiltin dispatch into
// execBuiltin's table-driven descriptor path, and every arithmetic operation
// is its own trip around the interpreter loop. For the fused mega-kernels
// the pipeline planner generates, that dispatch overhead dominates — the
// codec spine of such a kernel is a long straight line of texture2D /
// floor / fract / mod arithmetic, executed once per fragment.
//
// specialize rewrites the code stream after compilation:
//
//  1. Builtin specialization (in place, 1:1): the builtins on the codec
//     decode→ALU→encode spine (texture2D, floor, fract, mod, min, max,
//     clamp, step, dot) become direct opcodes executed inline by the VM
//     loop, skipping the descriptor load, the closure-based argument
//     fetch, and the 60-way builtin switch.
//
//  2. Superinstruction fusion (with code compaction): adjacent
//     opLoadImm+opMul/opAdd pairs become opMulImm/opAddImm, and
//     opMul+opAdd chains (a*b+c) become opMulAdd, halving dispatches on
//     the scale/bias arithmetic the codecs are made of. Fusion removes
//     instructions, so every jump target, function entry and the
//     init/main entries are retargeted over the compacted stream.
//
// Correctness contract (same as compile.go): the rewritten program must be
// bit-identical to the generic stream in both outputs and Stats.
//
//   - Stats are untouched: the opStats flush tables are compile-time
//     folded and no opStats instruction is ever fused or moved relative
//     to its basic block.
//   - Builtin destination registers never alias their argument registers
//     (the destination temp is allocated after every argument is
//     evaluated, and scratch temps grow monotonically within a
//     statement), so skipping execBuiltin's defensive zero-the-dst
//     prologue is exact for builtins that write every output component
//     unconditionally — which all specialized ones do. The specializer
//     still verifies non-aliasing per site and falls back to the generic
//     opcode if it ever fails to hold.
//   - Fused pairs preserve the memory image: opMulImm/opAddImm still
//     store the immediate to its register, and opMulAdd still stores the
//     product, because liveness of those temps is not tracked. The
//     product is rounded to float32 through an explicit conversion so
//     the Go compiler cannot contract the multiply-add into an FMA.
//   - A pair is only fused when its second instruction is not a jump
//     target (including opCall return addresses at pc+1), so control can
//     never enter the middle of a superinstruction.

import "glescompute/internal/glsl"

// Specialized opcodes, appended after the generic set (compile.go).
const (
	opTex2D  opcode = 100 + iota // dst..dst+3 = Sample2D(unit=regs[a], regs[b], regs[b+1])
	opBFloor                     // regs[dst+i] = floor(regs[a+i])
	opBFract                     // regs[dst+i] = fract(regs[a+i])
	opBMod                       // componentwise GLSL mod; aux bit0/bit1 broadcast a/b
	opBMin                       // componentwise min; aux broadcast bits
	opBMax                       // componentwise max; aux broadcast bits
	opBClamp                     // clamp(a, b, c); aux bit0/bit1 broadcast b/c
	opBStep                      // step(edge=a, x=b); aux broadcast bits
	opBDot                       // regs[dst] = dot(a, b) over n components
	opMulImm                     // regs[c] = imm; then opMul dst,a,b
	opAddImm                     // regs[c] = imm; then opAdd dst,a,b
	opMulAdd                     // regs[c+i] = a*b; regs[dst+i] = sum with packed operand (see exec)
)

// specialize rewrites c.code in place after Compile. It never changes
// observable behaviour; it only collapses dispatch.
func specialize(c *Compiled) {
	specializeBuiltins(c)
	fusePairs(c)
}

// ---- Pass 1: direct builtin opcodes (1:1, in place) ----

// rangesOverlap reports whether [a, a+an) and [b, b+bn) intersect.
func rangesOverlap(a, an, b, bn int32) bool {
	return a < b+bn && b < a+an
}

// builtinAliases reports whether the destination range of d overlaps any
// argument range — never true for code Compile emits (see file comment),
// but checked so specialization degrades instead of miscompiling.
func builtinAliases(d *builtinDesc, dn int32) bool {
	for k := int32(0); k < d.nargs; k++ {
		an := d.nc
		if d.scalar[k] {
			an = 1
		}
		if d.id == glsl.BDot {
			an = d.an
		}
		if rangesOverlap(d.dst, dn, d.args[k], an) {
			return true
		}
	}
	return false
}

func specializeBuiltins(c *Compiled) {
	for pc := range c.code {
		in := &c.code[pc]
		if in.op != opBuiltin {
			continue
		}
		d := &c.builtins[in.aux]
		var aux int32
		if d.scalar[1] {
			aux |= 1
		}
		if d.scalar[2] {
			aux |= 2
		}
		switch d.id {
		case glsl.BTexture2D, glsl.BTexture2DBias, glsl.BTexture2DLod:
			if builtinAliases(d, 4) {
				continue
			}
			*in = instr{op: opTex2D, dst: d.dst, a: d.args[0], b: d.args[1], aux: in.aux}
		case glsl.BFloor, glsl.BFract:
			if builtinAliases(d, d.nc) {
				continue
			}
			op := opBFloor
			if d.id == glsl.BFract {
				op = opBFract
			}
			*in = instr{op: op, dst: d.dst, a: d.args[0], n: d.nc}
		case glsl.BMod, glsl.BMin, glsl.BMax, glsl.BStep:
			if builtinAliases(d, d.nc) {
				continue
			}
			// These read both operands through comp(): scalar broadcast on
			// either side.
			var o opcode
			switch d.id {
			case glsl.BMod:
				o = opBMod
			case glsl.BMin:
				o = opBMin
			case glsl.BMax:
				o = opBMax
			case glsl.BStep:
				o = opBStep
			}
			a2 := int32(0)
			if d.scalar[0] {
				a2 |= 1
			}
			if d.scalar[1] {
				a2 |= 2
			}
			*in = instr{op: o, dst: d.dst, a: d.args[0], b: d.args[1], n: d.nc, aux: a2}
		case glsl.BClamp:
			if builtinAliases(d, d.nc) {
				continue
			}
			// clamp's first argument is the full-width genType (arg(), not
			// comp()); only the bounds broadcast.
			*in = instr{op: opBClamp, dst: d.dst, a: d.args[0], b: d.args[1], c: d.args[2], n: d.nc, aux: aux}
		case glsl.BDot:
			if builtinAliases(d, 1) {
				continue
			}
			*in = instr{op: opBDot, dst: d.dst, a: d.args[0], b: d.args[1], n: d.an}
		}
	}
}

// ---- Pass 2: superinstruction fusion with compaction ----

// jumpTargets returns the set of pcs control can land on from anywhere but
// straight-line fallthrough: jump targets, function entries, the init/main
// entries, and opCall return addresses.
func jumpTargets(c *Compiled) map[int32]bool {
	t := map[int32]bool{c.initEntry: true, c.mainEntry: true}
	for _, fi := range c.funcs {
		t[fi.entry] = true
	}
	for pc, in := range c.code {
		switch in.op {
		case opJmp, opJz, opJnz:
			t[in.aux] = true
		case opCall:
			t[int32(pc)+1] = true
		}
	}
	return t
}

// fuseAt returns the superinstruction replacing code[pc] and code[pc+1],
// or ok=false when the pair does not fuse.
func fuseAt(code []instr, pc int) (instr, bool) {
	in1, in2 := &code[pc], &code[pc+1]
	switch {
	case in1.op == opLoadImm && (in2.op == opMul || in2.op == opAdd):
		// The immediate's register keeps its store (liveness is unknown),
		// so the fused op is exactly "regs[c] = imm; <arith>".
		if in2.a != in1.dst && in2.b != in1.dst {
			return instr{}, false
		}
		out := *in2
		if in2.op == opMul {
			out.op = opMulImm
		} else {
			out.op = opAddImm
		}
		out.c = in1.dst
		out.imm = in1.imm
		return out, true
	case in1.op == opMul && in2.op == opAdd && in1.n == in2.n:
		// a*b+c / c+a*b. The add must consume the product non-broadcast
		// (or be width 1, where broadcast is a no-op), and its other
		// operand must not partially overlap the product range — the fused
		// loop interleaves the component writes and reads.
		n := in1.n
		var other int32
		var addLeft bool
		switch {
		case in2.a == in1.dst && (in2.aux&1 == 0 || n == 1):
			other, addLeft = in2.b, true
		case in2.b == in1.dst && (in2.aux&2 == 0 || n == 1):
			other, addLeft = in2.a, false
		default:
			return instr{}, false
		}
		otherN := n
		if addLeft && in2.aux&2 != 0 || !addLeft && in2.aux&1 != 0 {
			otherN = 1
		}
		if other != in1.dst && rangesOverlap(in1.dst, n, other, otherN) {
			return instr{}, false
		}
		// The sum's destination must not overlap the product or the mul
		// operands: the original stream completes the whole multiply before
		// the add starts, while the fused loop interleaves them. Compile's
		// monotonic temp allocation never produces such overlap, but verify.
		an, bn := n, n
		if in1.aux&1 != 0 {
			an = 1
		}
		if in1.aux&2 != 0 {
			bn = 1
		}
		if rangesOverlap(in2.dst, n, in1.dst, n) ||
			rangesOverlap(in2.dst, n, in1.a, an) ||
			rangesOverlap(in2.dst, n, in1.b, bn) {
			return instr{}, false
		}
		// Operand registers stay below 1<<26 in any real program; packing
		// them beside the flag bits keeps the instr struct unchanged.
		if other >= 1<<26 {
			return instr{}, false
		}
		aux := in1.aux&3 | (in2.aux&3)<<2 | other<<5
		if addLeft {
			aux |= 1 << 4
		}
		return instr{op: opMulAdd, dst: in2.dst, a: in1.a, b: in1.b, c: in1.dst, n: n, aux: aux}, true
	}
	return instr{}, false
}

func fusePairs(c *Compiled) {
	targets := jumpTargets(c)
	old := c.code
	newCode := make([]instr, 0, len(old))
	oldToNew := make([]int32, len(old)+1)
	for pc := 0; pc < len(old); pc++ {
		oldToNew[pc] = int32(len(newCode))
		if pc+1 < len(old) && !targets[int32(pc+1)] {
			if fused, ok := fuseAt(old, pc); ok {
				newCode = append(newCode, fused)
				pc++
				oldToNew[pc] = int32(len(newCode) - 1)
				continue
			}
		}
		newCode = append(newCode, old[pc])
	}
	oldToNew[len(old)] = int32(len(newCode))

	// Retarget control flow over the compacted stream.
	for i := range newCode {
		switch newCode[i].op {
		case opJmp, opJz, opJnz:
			newCode[i].aux = oldToNew[newCode[i].aux]
		}
	}
	c.initEntry = oldToNew[c.initEntry]
	c.mainEntry = oldToNew[c.mainEntry]
	for _, fi := range c.funcs {
		fi.entry = oldToNew[fi.entry]
	}
	c.code = newCode
}
