package shader

// Stats counts scalar operations executed by the interpreter. The VideoCore
// IV QPU is a per-lane scalar machine (a vec4 add is four ALU instructions),
// so all counters are per scalar component. internal/vc4 converts these
// counts into modeled cycles.
type Stats struct {
	Add    uint64 // additions/subtractions
	Mul    uint64 // multiplications
	Div    uint64 // divisions (SFU reciprocal + Newton refinement on HW)
	Cmp    uint64 // comparisons
	Logic  uint64 // boolean logic ops
	Mov    uint64 // register moves (assignments, constructors, swizzles)
	Select uint64 // conditional selects (?:, mix-like patterns)
	SFU    uint64 // special function unit ops (exp2, log2, rsqrt, trig, ...)
	Tex    uint64 // texture fetches (TMU requests)
	Branch uint64 // control-flow decisions
	Call   uint64 // user function calls

	Invocations uint64 // shader invocations executed
}

// AddStats accumulates o into s.
func (s *Stats) AddStats(o *Stats) {
	s.Add += o.Add
	s.Mul += o.Mul
	s.Div += o.Div
	s.Cmp += o.Cmp
	s.Logic += o.Logic
	s.Mov += o.Mov
	s.Select += o.Select
	s.SFU += o.SFU
	s.Tex += o.Tex
	s.Branch += o.Branch
	s.Call += o.Call
	s.Invocations += o.Invocations
}

// ALUOps returns the total plain-ALU operation count.
func (s *Stats) ALUOps() uint64 {
	return s.Add + s.Mul + s.Cmp + s.Logic + s.Mov + s.Select
}

// TotalOps returns every counted scalar operation.
func (s *Stats) TotalOps() uint64 {
	return s.ALUOps() + s.Div + s.SFU + s.Tex + s.Branch + s.Call
}

// Scale returns a copy of s with all counters multiplied by k. Used by the
// benchmark harness to extrapolate data-independent kernels to larger grids.
func (s *Stats) Scale(k float64) Stats {
	mul := func(v uint64) uint64 { return uint64(float64(v) * k) }
	return Stats{
		Add: mul(s.Add), Mul: mul(s.Mul), Div: mul(s.Div), Cmp: mul(s.Cmp),
		Logic: mul(s.Logic), Mov: mul(s.Mov), Select: mul(s.Select),
		SFU: mul(s.SFU), Tex: mul(s.Tex), Branch: mul(s.Branch),
		Call: mul(s.Call), Invocations: mul(s.Invocations),
	}
}
