package shader

import (
	"glescompute/internal/glsl"
)

// lref is a resolved l-value: a pointer to the storage Value, plus an
// optional component selection into its F array (for swizzles, vector
// components and matrix columns).
type lref struct {
	v     *Value
	comps []int // nil means "whole value"
}

func (ex *Exec) evalExpr(e glsl.Expr, f *frame) (Value, error) {
	switch n := e.(type) {
	case *glsl.IntLit:
		return IntVal(n.Val), nil
	case *glsl.FloatLit:
		return FloatVal(n.Val), nil
	case *glsl.BoolLit:
		return BoolVal(n.Val), nil
	case *glsl.Ident:
		return ex.evalIdent(n, f)
	case *glsl.BinaryExpr:
		return ex.evalBinary(n, f)
	case *glsl.UnaryExpr:
		return ex.evalUnary(n, f)
	case *glsl.CondExpr:
		cond, err := ex.evalExpr(n.Cond, f)
		if err != nil {
			return Value{}, err
		}
		ex.Stats.Select += uint64(n.Type().ComponentCount())
		if cond.Bool() {
			return ex.evalExpr(n.Then, f)
		}
		return ex.evalExpr(n.Else, f)
	case *glsl.AssignExpr:
		return ex.evalAssign(n, f)
	case *glsl.SequenceExpr:
		if _, err := ex.evalExpr(n.X, f); err != nil {
			return Value{}, err
		}
		return ex.evalExpr(n.Y, f)
	case *glsl.CallExpr:
		return ex.evalCall(n, f)
	case *glsl.FieldExpr:
		return ex.evalField(n, f)
	case *glsl.IndexExpr:
		return ex.evalIndex(n, f)
	}
	return Value{}, ex.rtError(e.NodePos(), "unknown expression %T", e)
}

func (ex *Exec) evalIdent(n *glsl.Ident, f *frame) (Value, error) {
	if n.BRef != nil {
		return ex.Builtins[n.BRef.Slot], nil
	}
	if n.Ref == nil {
		return Value{}, ex.rtError(n.Pos, "unresolved identifier %q", n.Name)
	}
	switch n.Ref.Storage {
	case glsl.StorageGlobal:
		return ex.Globals[n.Ref.Slot], nil
	default:
		if f == nil {
			return Value{}, ex.rtError(n.Pos, "local %q used outside a function frame", n.Name)
		}
		return f.locals[n.Ref.Slot], nil
	}
}

func (ex *Exec) lvalue(e glsl.Expr, f *frame) (lref, error) {
	switch n := e.(type) {
	case *glsl.Ident:
		if n.BRef != nil {
			return lref{v: &ex.Builtins[n.BRef.Slot]}, nil
		}
		if n.Ref == nil {
			return lref{}, ex.rtError(n.Pos, "unresolved identifier %q", n.Name)
		}
		if n.Ref.Storage == glsl.StorageGlobal {
			return lref{v: &ex.Globals[n.Ref.Slot]}, nil
		}
		return lref{v: &f.locals[n.Ref.Slot]}, nil
	case *glsl.FieldExpr:
		base, err := ex.lvalue(n.X, f)
		if err != nil {
			return lref{}, err
		}
		if n.Swizzle != nil {
			return composeComps(base, n.Swizzle), nil
		}
		if base.comps != nil {
			return lref{}, ex.rtError(n.Pos, "field access through component selection")
		}
		if n.FieldIndex < 0 || n.FieldIndex >= len(base.v.Agg) {
			return lref{}, ex.rtError(n.Pos, "field index out of range")
		}
		return lref{v: &base.v.Agg[n.FieldIndex]}, nil
	case *glsl.IndexExpr:
		base, err := ex.lvalue(n.X, f)
		if err != nil {
			return lref{}, err
		}
		iv, err := ex.evalExpr(n.Index, f)
		if err != nil {
			return lref{}, err
		}
		idx := int(iv.Int())
		xt := n.X.Type()
		switch {
		case xt.Kind == glsl.KArray:
			if base.comps != nil {
				return lref{}, ex.rtError(n.Pos, "array access through component selection")
			}
			idx = clampIndex(idx, xt.ArrayLen)
			return lref{v: &base.v.Agg[idx]}, nil
		case xt.IsVector():
			idx = clampIndex(idx, xt.VectorSize())
			return composeComps(base, []int{idx}), nil
		case xt.IsMatrix():
			dim := xt.MatrixDim()
			idx = clampIndex(idx, dim)
			col := make([]int, dim)
			for i := range col {
				col[i] = idx*dim + i
			}
			return composeComps(base, col), nil
		}
		return lref{}, ex.rtError(n.Pos, "type %s is not indexable", xt)
	default:
		return lref{}, ex.rtError(e.NodePos(), "expression is not an l-value")
	}
}

// composeComps applies a component selection on top of an existing lref.
func composeComps(base lref, sel []int) lref {
	if base.comps == nil {
		return lref{v: base.v, comps: sel}
	}
	out := make([]int, len(sel))
	for i, s := range sel {
		out[i] = base.comps[s]
	}
	return lref{v: base.v, comps: out}
}

// clampIndex clamps dynamic indices into range, the robust behaviour GL
// implementations use for out-of-bounds access.
func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

func (ex *Exec) store(dst lref, val Value, t *glsl.Type) {
	if dst.comps == nil {
		if val.Agg != nil {
			// Aggregates have value semantics in GLSL: deep-copy so the
			// destination does not alias the source's backing storage.
			val = val.Copy()
		}
		val.T = dst.v.T
		if val.T == nil {
			val.T = t
		}
		*dst.v = val
		return
	}
	for i, c := range dst.comps {
		dst.v.F[c] = val.F[i]
	}
}

func (ex *Exec) evalAssign(n *glsl.AssignExpr, f *frame) (Value, error) {
	rhs, err := ex.evalExpr(n.RHS, f)
	if err != nil {
		return Value{}, err
	}
	dst, err := ex.lvalue(n.LHS, f)
	if err != nil {
		return Value{}, err
	}
	if n.Op != glsl.TokAssign {
		cur, err := ex.evalExpr(n.LHS, f)
		if err != nil {
			return Value{}, err
		}
		op := map[glsl.TokenKind]glsl.TokenKind{
			glsl.TokPlusAssign:  glsl.TokPlus,
			glsl.TokMinusAssign: glsl.TokMinus,
			glsl.TokStarAssign:  glsl.TokStar,
			glsl.TokSlashAssign: glsl.TokSlash,
		}[n.Op]
		rhs = ex.applyBinary(op, cur, rhs, n.LHS.Type(), n.RHS.Type(), n.Type())
	}
	ex.Stats.Mov += uint64(maxI(1, n.Type().ComponentCount()))
	ex.store(dst, rhs, n.Type())
	rhs.T = n.Type()
	return rhs, nil
}

func (ex *Exec) evalField(n *glsl.FieldExpr, f *frame) (Value, error) {
	x, err := ex.evalExpr(n.X, f)
	if err != nil {
		return Value{}, err
	}
	if n.Swizzle != nil {
		out := Value{T: n.Type()}
		for i, s := range n.Swizzle {
			out.F[i] = x.F[s]
		}
		ex.Stats.Mov += uint64(len(n.Swizzle))
		return out, nil
	}
	if n.FieldIndex < 0 || n.FieldIndex >= len(x.Agg) {
		return Value{}, ex.rtError(n.Pos, "field index out of range")
	}
	return x.Agg[n.FieldIndex], nil
}

func (ex *Exec) evalIndex(n *glsl.IndexExpr, f *frame) (Value, error) {
	x, err := ex.evalExpr(n.X, f)
	if err != nil {
		return Value{}, err
	}
	iv, err := ex.evalExpr(n.Index, f)
	if err != nil {
		return Value{}, err
	}
	idx := int(iv.Int())
	xt := n.X.Type()
	switch {
	case xt.Kind == glsl.KArray:
		idx = clampIndex(idx, xt.ArrayLen)
		return x.Agg[idx], nil
	case xt.IsVector():
		idx = clampIndex(idx, xt.VectorSize())
		ex.Stats.Mov++
		return FloatValTyped(n.Type(), x.F[idx]), nil
	case xt.IsMatrix():
		dim := xt.MatrixDim()
		idx = clampIndex(idx, dim)
		out := Value{T: n.Type()}
		copy(out.F[:dim], x.F[idx*dim:idx*dim+dim])
		ex.Stats.Mov += uint64(dim)
		return out, nil
	}
	return Value{}, ex.rtError(n.Pos, "type %s is not indexable", xt)
}

// FloatValTyped builds a scalar value with an explicit type (float or int
// component reads share this path).
func FloatValTyped(t *glsl.Type, f float32) Value {
	v := Value{T: t}
	v.F[0] = f
	return v
}

func (ex *Exec) evalUnary(n *glsl.UnaryExpr, f *frame) (Value, error) {
	if n.Op == glsl.TokInc || n.Op == glsl.TokDec {
		cur, err := ex.evalExpr(n.X, f)
		if err != nil {
			return Value{}, err
		}
		one := FloatVal(1)
		if n.X.Type().ComponentType().Kind == glsl.KInt {
			one = IntVal(1)
		}
		op := glsl.TokPlus
		if n.Op == glsl.TokDec {
			op = glsl.TokMinus
		}
		next := ex.applyBinary(op, cur, one, n.X.Type(), one.T, n.X.Type())
		dst, err := ex.lvalue(n.X, f)
		if err != nil {
			return Value{}, err
		}
		ex.store(dst, next, n.X.Type())
		if n.Postfix {
			return cur, nil
		}
		return next, nil
	}
	x, err := ex.evalExpr(n.X, f)
	if err != nil {
		return Value{}, err
	}
	out := Value{T: n.Type()}
	nc := x.NumComps()
	switch n.Op {
	case glsl.TokPlus:
		out = x
		out.T = n.Type()
	case glsl.TokMinus:
		for i := 0; i < nc; i++ {
			out.F[i] = -x.F[i]
		}
		ex.Stats.Add += uint64(nc)
	case glsl.TokBang:
		if x.F[0] == 0 {
			out.F[0] = 1
		}
		ex.Stats.Logic++
	default:
		return Value{}, ex.rtError(n.Pos, "unsupported unary operator %s", n.Op)
	}
	return out, nil
}

func (ex *Exec) evalBinary(n *glsl.BinaryExpr, f *frame) (Value, error) {
	// Short-circuit logical operators.
	switch n.Op {
	case glsl.TokAndAnd:
		x, err := ex.evalExpr(n.X, f)
		if err != nil {
			return Value{}, err
		}
		ex.Stats.Logic++
		if !x.Bool() {
			return BoolVal(false), nil
		}
		y, err := ex.evalExpr(n.Y, f)
		if err != nil {
			return Value{}, err
		}
		return BoolVal(y.Bool()), nil
	case glsl.TokOrOr:
		x, err := ex.evalExpr(n.X, f)
		if err != nil {
			return Value{}, err
		}
		ex.Stats.Logic++
		if x.Bool() {
			return BoolVal(true), nil
		}
		y, err := ex.evalExpr(n.Y, f)
		if err != nil {
			return Value{}, err
		}
		return BoolVal(y.Bool()), nil
	}
	x, err := ex.evalExpr(n.X, f)
	if err != nil {
		return Value{}, err
	}
	y, err := ex.evalExpr(n.Y, f)
	if err != nil {
		return Value{}, err
	}
	return ex.applyBinary(n.Op, x, y, n.X.Type(), n.Y.Type(), n.Type()), nil
}

// applyBinary performs a type-checked binary operation; types come from the
// checker so no validation is needed here.
func (ex *Exec) applyBinary(op glsl.TokenKind, x, y Value, xt, yt, resT *glsl.Type) Value {
	switch op {
	case glsl.TokXorXor:
		ex.Stats.Logic++
		return BoolVal(x.Bool() != y.Bool())
	case glsl.TokLess, glsl.TokGreater, glsl.TokLessEq, glsl.TokGreaterEq:
		ex.Stats.Cmp++
		a, b := x.F[0], y.F[0]
		var r bool
		switch op {
		case glsl.TokLess:
			r = a < b
		case glsl.TokGreater:
			r = a > b
		case glsl.TokLessEq:
			r = a <= b
		case glsl.TokGreaterEq:
			r = a >= b
		}
		return BoolVal(r)
	case glsl.TokEqEq, glsl.TokNotEq:
		eq := valuesEqual(x, y)
		ex.Stats.Cmp += uint64(maxI(1, xt.ComponentCount()))
		if op == glsl.TokNotEq {
			eq = !eq
		}
		return BoolVal(eq)
	}

	// Arithmetic. Matrix algebra first.
	if op == glsl.TokStar && (xt.IsMatrix() || yt.IsMatrix()) &&
		!(xt.IsMatrix() && yt.IsScalar()) && !(xt.IsScalar() && yt.IsMatrix()) {
		return ex.matMul(x, y, xt, yt, resT)
	}

	isInt := resT.ComponentType().Kind == glsl.KInt
	nc := resT.ComponentCount()
	out := Value{T: resT}
	xs := xt.IsScalar() && nc > 1
	ys := yt.IsScalar() && nc > 1
	for i := 0; i < nc; i++ {
		a := x.F[i]
		if xs {
			a = x.F[0]
		}
		b := y.F[i]
		if ys {
			b = y.F[0]
		}
		switch op {
		case glsl.TokPlus:
			out.F[i] = a + b
		case glsl.TokMinus:
			out.F[i] = a - b
		case glsl.TokStar:
			out.F[i] = a * b
		case glsl.TokSlash:
			if isInt {
				if b == 0 {
					out.F[i] = 0 // undefined in GLSL; pick 0 deterministically
				} else {
					out.F[i] = truncToward0(float64(a) / float64(b))
				}
			} else {
				out.F[i] = a / b
			}
		}
	}
	if isInt && op != glsl.TokSlash {
		// Integers ride in float32 registers; results stay integral as long
		// as they fit in 24 bits of mantissa — exactly the paper's §IV-C
		// observation. No truncation is applied so the hardware behaviour
		// (silent precision loss past 2^24) is preserved.
		_ = isInt
	}
	switch op {
	case glsl.TokPlus, glsl.TokMinus:
		ex.Stats.Add += uint64(nc)
	case glsl.TokStar:
		ex.Stats.Mul += uint64(nc)
	case glsl.TokSlash:
		ex.Stats.Div += uint64(nc)
	}
	return out
}

func valuesEqual(x, y Value) bool {
	n := maxI(x.NumComps(), y.NumComps())
	for i := 0; i < n; i++ {
		if x.F[i] != y.F[i] {
			return false
		}
	}
	if len(x.Agg) != len(y.Agg) {
		return false
	}
	for i := range x.Agg {
		if !valuesEqual(x.Agg[i], y.Agg[i]) {
			return false
		}
	}
	return true
}

func (ex *Exec) matMul(x, y Value, xt, yt, resT *glsl.Type) Value {
	out := Value{T: resT}
	switch {
	case xt.IsMatrix() && yt.IsMatrix():
		n := xt.MatrixDim()
		for col := 0; col < n; col++ {
			for row := 0; row < n; row++ {
				var s float32
				for k := 0; k < n; k++ {
					s += x.F[k*n+row] * y.F[col*n+k]
				}
				out.F[col*n+row] = s
			}
		}
		ex.Stats.Mul += uint64(n * n * n)
		ex.Stats.Add += uint64(n * n * (n - 1))
	case xt.IsMatrix() && yt.IsVector():
		n := xt.MatrixDim()
		for row := 0; row < n; row++ {
			var s float32
			for k := 0; k < n; k++ {
				s += x.F[k*n+row] * y.F[k]
			}
			out.F[row] = s
		}
		ex.Stats.Mul += uint64(n * n)
		ex.Stats.Add += uint64(n * (n - 1))
	case xt.IsVector() && yt.IsMatrix():
		n := yt.MatrixDim()
		for col := 0; col < n; col++ {
			var s float32
			for k := 0; k < n; k++ {
				s += x.F[k] * y.F[col*n+k]
			}
			out.F[col] = s
		}
		ex.Stats.Mul += uint64(n * n)
		ex.Stats.Add += uint64(n * (n - 1))
	}
	return out
}

// ---- Calls ----

func (ex *Exec) evalCall(n *glsl.CallExpr, f *frame) (Value, error) {
	switch n.Kind {
	case glsl.CallTypeConstructor:
		return ex.evalConstructor(n, f)
	case glsl.CallStructConstructor:
		args := make([]Value, len(n.Args))
		for i, a := range n.Args {
			v, err := ex.evalExpr(a, f)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		out := Value{T: n.CtorType, Agg: args}
		return out, nil
	case glsl.CallBuiltin:
		return ex.evalBuiltin(n, f)
	case glsl.CallUser:
		return ex.evalUserCall(n, f)
	}
	return Value{}, ex.rtError(n.Pos, "unresolved call to %q", n.Callee)
}

func (ex *Exec) evalConstructor(n *glsl.CallExpr, f *frame) (Value, error) {
	t := n.CtorType
	args := make([]Value, len(n.Args))
	for i, a := range n.Args {
		v, err := ex.evalExpr(a, f)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	out := Value{T: t}
	switch {
	case t.IsScalar():
		v := args[0].F[0]
		switch t.Kind {
		case glsl.KInt:
			if args[0].T.ComponentType().Kind != glsl.KInt {
				v = truncToward0(float64(v))
			}
		case glsl.KBool:
			if v != 0 {
				v = 1
			} else {
				v = 0
			}
		}
		out.F[0] = v
		ex.Stats.Mov++
	case t.IsVector():
		size := t.VectorSize()
		if len(args) == 1 && args[0].T.IsScalar() {
			v := convertComp(t, args[0])
			for i := 0; i < size; i++ {
				out.F[i] = v
			}
		} else {
			k := 0
			for _, a := range args {
				an := a.NumComps()
				for j := 0; j < an && k < size; j++ {
					out.F[k] = convertCompAt(t, a, j)
					k++
				}
			}
		}
		ex.Stats.Mov += uint64(size)
	case t.IsMatrix():
		dim := t.MatrixDim()
		if len(args) == 1 && args[0].T.IsScalar() {
			for i := 0; i < dim; i++ {
				out.F[i*dim+i] = args[0].F[0]
			}
		} else {
			k := 0
			for _, a := range args {
				an := a.NumComps()
				for j := 0; j < an && k < dim*dim; j++ {
					out.F[k] = a.F[j]
					k++
				}
			}
		}
		ex.Stats.Mov += uint64(dim * dim)
	default:
		return Value{}, ex.rtError(n.Pos, "cannot construct %s", t)
	}
	return out, nil
}

// convertComp converts args[0].F[0] to t's component type semantics.
func convertComp(t *glsl.Type, a Value) float32 {
	return convertCompAt(t, a, 0)
}

func convertCompAt(t *glsl.Type, a Value, i int) float32 {
	v := a.F[i]
	switch t.ComponentType().Kind {
	case glsl.KInt:
		if a.T.ComponentType().Kind == glsl.KFloat {
			return truncToward0(float64(v))
		}
		return v
	case glsl.KBool:
		if v != 0 {
			return 1
		}
		return 0
	default:
		return v
	}
}

func (ex *Exec) evalUserCall(n *glsl.CallExpr, f *frame) (Value, error) {
	fd := n.Func
	if fd.Body == nil {
		return Value{}, ex.rtError(n.Pos, "call to undefined function %q", n.Callee)
	}
	if ex.depth > 64 {
		return Value{}, ex.rtError(n.Pos, "call stack too deep")
	}
	ex.Stats.Call++
	args := make([]Value, len(n.Args))
	for i, a := range n.Args {
		if fd.Params[i].Dir == glsl.DirOut {
			args[i] = Zero(fd.Params[i].DeclType)
			continue
		}
		v, err := ex.evalExpr(a, f)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	callee := ex.pushFrame(fd)
	for i, p := range fd.Params {
		v := args[i]
		if v.Agg != nil {
			// Parameters are copies; in-params must not write through to
			// the caller's aggregate storage.
			v = v.Copy()
		}
		v.T = p.DeclType
		callee.locals[p.Slot] = v
	}
	c, err := ex.execStmt(fd.Body, callee)
	if err != nil {
		ex.popFrame()
		return Value{}, err
	}
	ret := callee.ret
	hasRet := callee.hasRet
	// Copy out/inout parameters back before the frame is recycled.
	type writeback struct {
		arg glsl.Expr
		val Value
		t   *glsl.Type
	}
	var wbs []writeback
	for i, p := range fd.Params {
		if p.Dir == glsl.DirOut || p.Dir == glsl.DirInOut {
			wbs = append(wbs, writeback{arg: n.Args[i], val: callee.locals[p.Slot], t: p.DeclType})
		}
	}
	ex.popFrame()
	for _, wb := range wbs {
		dst, err := ex.lvalue(wb.arg, f)
		if err != nil {
			return Value{}, err
		}
		ex.store(dst, wb.val, wb.t)
		ex.Stats.Mov += uint64(maxI(1, wb.t.ComponentCount()))
	}
	if c == ctrlDiscard {
		// discard inside a helper aborts the whole invocation; signal it
		// through the error channel and catch it in Run.
		return Value{}, errDiscard
	}
	if fd.Ret.Kind == glsl.KVoid {
		return Value{T: glsl.TypeVoid}, nil
	}
	if !hasRet {
		return Zero(fd.Ret), nil
	}
	ret.T = fd.Ret
	return ret, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
