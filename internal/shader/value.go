// Package shader executes checked GLSL ES 1.00 programs. It is the
// "QPU" of the simulated device: all arithmetic is IEEE float32 (integers
// ride in float registers, exactly as on the VideoCore IV the paper
// targets), special-function-unit operations (exp2/log2) can be configured
// with reduced precision to model the hardware, and every scalar operation
// is counted so the timing model in internal/vc4 can convert a run into
// modeled cycles.
package shader

import (
	"math"

	"glescompute/internal/glsl"
)

// Value is a runtime GLSL value. Scalars, vectors and matrices live in the
// fixed F array (matrices column-major); arrays and structs use Agg.
// Sampler values store their texture unit number in F[0].
type Value struct {
	T   *glsl.Type
	F   [16]float32
	Agg []Value
}

// Zero returns the zero value of type t.
func Zero(t *glsl.Type) Value {
	v := Value{T: t}
	switch t.Kind {
	case glsl.KArray:
		v.Agg = make([]Value, t.ArrayLen)
		for i := range v.Agg {
			v.Agg[i] = Zero(t.Elem)
		}
	case glsl.KStruct:
		v.Agg = make([]Value, len(t.Struct.Fields))
		for i, f := range t.Struct.Fields {
			v.Agg[i] = Zero(f.Type)
		}
	}
	return v
}

// Copy returns a deep copy of v (aggregates are cloned).
func (v Value) Copy() Value {
	out := v
	if v.Agg != nil {
		out.Agg = make([]Value, len(v.Agg))
		for i := range v.Agg {
			out.Agg[i] = v.Agg[i].Copy()
		}
	}
	return out
}

// Float returns component 0 as float32.
func (v Value) Float() float32 { return v.F[0] }

// Int returns component 0 truncated toward zero.
func (v Value) Int() int32 { return int32(v.F[0]) }

// Bool returns component 0 as a boolean.
func (v Value) Bool() bool { return v.F[0] != 0 }

// NumComps returns the number of scalar components in F.
func (v Value) NumComps() int {
	if v.T == nil {
		return 0
	}
	return v.T.ComponentCount()
}

// Vec4 returns the first four components, for framebuffer output.
func (v Value) Vec4() [4]float32 {
	return [4]float32{v.F[0], v.F[1], v.F[2], v.F[3]}
}

// FloatVal builds a float scalar value.
func FloatVal(f float32) Value {
	v := Value{T: glsl.TypeFloat}
	v.F[0] = f
	return v
}

// IntVal builds an int scalar value.
func IntVal(i int32) Value {
	v := Value{T: glsl.TypeInt}
	v.F[0] = float32(i)
	return v
}

// BoolVal builds a bool scalar value.
func BoolVal(b bool) Value {
	v := Value{T: glsl.TypeBool}
	if b {
		v.F[0] = 1
	}
	return v
}

// Vec2Val, Vec3Val and Vec4Val build float vector values.
func Vec2Val(x, y float32) Value {
	v := Value{T: glsl.TypeVec2}
	v.F[0], v.F[1] = x, y
	return v
}

// Vec3Val builds a vec3 value.
func Vec3Val(x, y, z float32) Value {
	v := Value{T: glsl.TypeVec3}
	v.F[0], v.F[1], v.F[2] = x, y, z
	return v
}

// Vec4Val builds a vec4 value.
func Vec4Val(x, y, z, w float32) Value {
	v := Value{T: glsl.TypeVec4}
	v.F[0], v.F[1], v.F[2], v.F[3] = x, y, z, w
	return v
}

// SamplerVal builds a sampler value bound to a texture unit.
func SamplerVal(t *glsl.Type, unit int) Value {
	v := Value{T: t}
	v.F[0] = float32(unit)
	return v
}

// FromConst converts a folded compile-time constant into a runtime value.
func FromConst(cv *glsl.ConstValue) Value {
	v := Value{T: cv.T}
	copy(v.F[:], cv.F)
	return v
}

// truncToward0 truncates like C integer division (GLSL int semantics).
func truncToward0(x float64) float32 {
	return float32(math.Trunc(x))
}
