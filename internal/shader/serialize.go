package shader

// Program-binary serialization for Compiled: the payload behind the gles
// OES_get_program_binary-style entry points and core's persistent compile
// cache. The blob carries everything the VM and the link tables need at
// runtime — the specialized bytecode stream, the Stats flush table, builtin
// call descriptors, the register layout, and interface-variable stubs
// (name/slot/type for every uniform, attribute and varying) — and nothing
// else: the full AST is dropped, so an unmarshaled Compiled supports VM
// execution and program linking but not the tree-walking interpreter.
//
// The format is versioned and defensive: UnmarshalCompiled never panics on
// truncated or corrupt input, it returns an error (callers fall back to a
// source compile). Compatibility across format revisions is intentionally
// not attempted — a version mismatch is an error, mirroring how GL program
// binaries are invalidated by driver updates.

import (
	"encoding/binary"
	"fmt"
	"math"

	"glescompute/internal/glsl"
)

// BinaryFormatVersion identifies the Compiled wire format. Bump it whenever
// the instruction set, the Stats layout, or any serialized structure
// changes shape; stale blobs then unmarshal to ErrBinaryVersion.
const BinaryFormatVersion = 1

var binaryMagic = [4]byte{'G', 'C', 'P', 'B'}

// ErrBinaryVersion reports a well-formed blob written by an incompatible
// format revision.
var ErrBinaryVersion = fmt.Errorf("shader: program binary format version mismatch (want %d)", BinaryFormatVersion)

// ---- writer ----

type binWriter struct{ buf []byte }

func (w *binWriter) u8(v uint8)    { w.buf = append(w.buf, v) }
func (w *binWriter) u32(v uint32)  { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *binWriter) u64(v uint64)  { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *binWriter) i32(v int32)   { w.u32(uint32(v)) }
func (w *binWriter) f32(v float32) { w.u32(math.Float32bits(v)) }
func (w *binWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *binWriter) stats(s *Stats) {
	w.u64(s.Add)
	w.u64(s.Mul)
	w.u64(s.Div)
	w.u64(s.Cmp)
	w.u64(s.Logic)
	w.u64(s.Mov)
	w.u64(s.Select)
	w.u64(s.SFU)
	w.u64(s.Tex)
	w.u64(s.Branch)
	w.u64(s.Call)
	w.u64(s.Invocations)
}

func (w *binWriter) typ(t *glsl.Type) {
	w.u8(uint8(t.Kind))
	switch t.Kind {
	case glsl.KArray:
		w.i32(int32(t.ArrayLen))
		w.typ(t.Elem)
	case glsl.KStruct:
		w.str(t.Struct.Name)
		w.u32(uint32(len(t.Struct.Fields)))
		for _, f := range t.Struct.Fields {
			w.str(f.Name)
			w.typ(f.Type)
		}
	}
}

func (w *binWriter) decls(ds []*glsl.VarDecl) {
	w.u32(uint32(len(ds)))
	for _, d := range ds {
		w.str(d.Name)
		w.i32(int32(d.Slot))
		w.typ(d.DeclType)
	}
}

// MarshalBinary serializes the Compiled into a self-contained program
// binary blob.
func (c *Compiled) MarshalBinary() ([]byte, error) {
	if c == nil || c.Prog == nil {
		return nil, fmt.Errorf("shader: MarshalBinary: nil Compiled")
	}
	w := &binWriter{}
	w.buf = append(w.buf, binaryMagic[:]...)
	w.u32(BinaryFormatVersion)
	w.u8(uint8(c.Prog.Stage))

	// Interface-variable stubs, enough to rebuild link tables and drive
	// SetGlobal/ReadGlobalFlat against the serialized register layout.
	w.decls(c.Prog.Uniforms)
	w.decls(c.Prog.Attributes)
	w.decls(c.Prog.Varyings)

	// Bytecode stream.
	w.u32(uint32(len(c.code)))
	for i := range c.code {
		in := &c.code[i]
		w.i32(int32(in.op))
		w.i32(in.dst)
		w.i32(in.a)
		w.i32(in.b)
		w.i32(in.c)
		w.i32(in.n)
		w.i32(in.aux)
		w.f32(in.imm)
	}
	w.i32(c.initEntry)
	w.i32(c.mainEntry)

	w.u32(uint32(len(c.stats)))
	for i := range c.stats {
		w.stats(&c.stats[i])
	}
	w.u32(uint32(len(c.poss)))
	for _, p := range c.poss {
		w.i32(int32(p.Line))
		w.i32(int32(p.Col))
	}
	w.u32(uint32(len(c.builtins)))
	for i := range c.builtins {
		b := &c.builtins[i]
		w.i32(int32(b.id))
		w.i32(b.dst)
		w.i32(b.args[0])
		w.i32(b.args[1])
		w.i32(b.args[2])
		for _, s := range b.scalar {
			if s {
				w.u8(1)
			} else {
				w.u8(0)
			}
		}
		w.i32(b.nargs)
		w.i32(b.nc)
		w.i32(b.an)
		w.i32(b.dim)
	}

	w.i32(c.nregs)
	w.i32(c.globalBase)
	w.i32(c.globalEnd)
	w.u32(uint32(len(c.globalOff)))
	for _, o := range c.globalOff {
		w.i32(o)
	}
	for _, o := range c.builtinOff {
		w.i32(o)
	}
	w.u32(uint32(len(c.mutatedRanges)))
	for _, r := range c.mutatedRanges {
		w.i32(r[0])
		w.i32(r[1])
	}
	// Only each function's entry PC is live at runtime (opCall dispatch);
	// frames and AST links are compile-time state.
	w.u32(uint32(len(c.funcs)))
	for _, fi := range c.funcs {
		w.i32(fi.entry)
	}
	w.i32(c.nloops)
	w.i32(c.maxDepth)
	return w.buf, nil
}

// ---- reader ----

type binReader struct {
	buf []byte
	off int
	err error
}

func (r *binReader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("shader: program binary: "+format, args...)
	}
}

func (r *binReader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail("truncated at byte %d", r.off)
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *binReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail("truncated at byte %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *binReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail("truncated at byte %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *binReader) i32() int32   { return int32(r.u32()) }
func (r *binReader) f32() float32 { return math.Float32frombits(r.u32()) }

func (r *binReader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if int(n) < 0 || r.off+int(n) > len(r.buf) {
		r.fail("string length %d overruns buffer at byte %d", n, r.off)
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// count reads a length prefix and bounds it by the minimum per-element
// encoded size, so corrupt counts fail fast instead of allocating wild.
func (r *binReader) count(minElemBytes int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if minElemBytes > 0 && int(n) > (len(r.buf)-r.off)/minElemBytes {
		r.fail("element count %d overruns buffer at byte %d", n, r.off)
		return 0
	}
	return int(n)
}

func (r *binReader) stats() Stats {
	var s Stats
	s.Add = r.u64()
	s.Mul = r.u64()
	s.Div = r.u64()
	s.Cmp = r.u64()
	s.Logic = r.u64()
	s.Mov = r.u64()
	s.Select = r.u64()
	s.SFU = r.u64()
	s.Tex = r.u64()
	s.Branch = r.u64()
	s.Call = r.u64()
	s.Invocations = r.u64()
	return s
}

// maxTypeDepth bounds recursive type decoding; real GLSL ES types nest a
// handful of levels at most.
const maxTypeDepth = 32

func (r *binReader) typ(depth int) *glsl.Type {
	if depth > maxTypeDepth {
		r.fail("type nesting exceeds %d levels", maxTypeDepth)
		return glsl.TypeInvalid
	}
	kind := glsl.BasicKind(r.u8())
	if r.err != nil {
		return glsl.TypeInvalid
	}
	switch kind {
	case glsl.KArray:
		n := int(r.i32())
		elem := r.typ(depth + 1)
		if r.err != nil {
			return glsl.TypeInvalid
		}
		if n <= 0 || n > 1<<20 {
			r.fail("array length %d out of range", n)
			return glsl.TypeInvalid
		}
		return glsl.ArrayOf(elem, n)
	case glsl.KStruct:
		name := r.str()
		nf := r.count(5)
		info := &glsl.StructInfo{Name: name}
		for i := 0; i < nf; i++ {
			fname := r.str()
			ft := r.typ(depth + 1)
			info.Fields = append(info.Fields, glsl.StructField{Name: fname, Type: ft})
		}
		return &glsl.Type{Kind: glsl.KStruct, Struct: info}
	default:
		t := &glsl.Type{Kind: kind}
		if !validBasicKind(kind) {
			r.fail("unknown type kind %d", kind)
			return glsl.TypeInvalid
		}
		return t
	}
}

func validBasicKind(k glsl.BasicKind) bool {
	switch k {
	case glsl.KBool, glsl.KInt, glsl.KFloat,
		glsl.KVec2, glsl.KVec3, glsl.KVec4,
		glsl.KBVec2, glsl.KBVec3, glsl.KBVec4,
		glsl.KIVec2, glsl.KIVec3, glsl.KIVec4,
		glsl.KMat2, glsl.KMat3, glsl.KMat4,
		glsl.KSampler2D, glsl.KSamplerCube, glsl.KVoid:
		return true
	}
	return false
}

func (r *binReader) decls(qual glsl.Qualifier) []*glsl.VarDecl {
	n := r.count(9)
	var ds []*glsl.VarDecl
	for i := 0; i < n; i++ {
		name := r.str()
		slot := int(r.i32())
		t := r.typ(0)
		if r.err != nil {
			return nil
		}
		if slot < 0 || slot > 1<<20 {
			r.fail("variable %q has slot %d out of range", name, slot)
			return nil
		}
		ds = append(ds, &glsl.VarDecl{Name: name, DeclType: t, Qual: qual, Slot: slot})
	}
	return ds
}

// UnmarshalCompiled decodes a program binary produced by MarshalBinary.
// The result executes on the VM only (Prog carries interface stubs, not the
// AST); corrupt or truncated blobs return an error, version skew returns
// ErrBinaryVersion.
func UnmarshalCompiled(data []byte) (*Compiled, error) {
	r := &binReader{buf: data}
	if len(data) < 8 || data[0] != binaryMagic[0] || data[1] != binaryMagic[1] ||
		data[2] != binaryMagic[2] || data[3] != binaryMagic[3] {
		return nil, fmt.Errorf("shader: program binary: bad magic")
	}
	r.off = 4
	if v := r.u32(); v != BinaryFormatVersion {
		return nil, ErrBinaryVersion
	}
	stage := glsl.ShaderStage(r.u8())
	if stage != glsl.StageVertex && stage != glsl.StageFragment {
		return nil, fmt.Errorf("shader: program binary: bad stage %d", stage)
	}
	prog := &glsl.Program{Stage: stage}
	prog.Uniforms = r.decls(glsl.QualUniform)
	prog.Attributes = r.decls(glsl.QualAttribute)
	prog.Varyings = r.decls(glsl.QualVarying)

	c := &Compiled{Prog: prog}
	ncode := r.count(32)
	c.code = make([]instr, ncode)
	for i := 0; i < ncode; i++ {
		c.code[i] = instr{
			op:  opcode(r.i32()),
			dst: r.i32(),
			a:   r.i32(),
			b:   r.i32(),
			c:   r.i32(),
			n:   r.i32(),
			aux: r.i32(),
			imm: r.f32(),
		}
	}
	c.initEntry = r.i32()
	c.mainEntry = r.i32()

	nstats := r.count(96)
	c.stats = make([]Stats, nstats)
	for i := 0; i < nstats; i++ {
		c.stats[i] = r.stats()
	}
	nposs := r.count(8)
	c.poss = make([]glsl.Pos, nposs)
	for i := 0; i < nposs; i++ {
		c.poss[i] = glsl.Pos{Line: int(r.i32()), Col: int(r.i32())}
	}
	nb := r.count(39)
	c.builtins = make([]builtinDesc, nb)
	for i := 0; i < nb; i++ {
		b := &c.builtins[i]
		b.id = glsl.BuiltinID(r.i32())
		b.dst = r.i32()
		b.args[0] = r.i32()
		b.args[1] = r.i32()
		b.args[2] = r.i32()
		for j := range b.scalar {
			b.scalar[j] = r.u8() != 0
		}
		b.nargs = r.i32()
		b.nc = r.i32()
		b.an = r.i32()
		b.dim = r.i32()
	}

	c.nregs = r.i32()
	c.globalBase = r.i32()
	c.globalEnd = r.i32()
	noff := r.count(4)
	c.globalOff = make([]int32, noff)
	for i := 0; i < noff; i++ {
		c.globalOff[i] = r.i32()
	}
	for i := range c.builtinOff {
		c.builtinOff[i] = r.i32()
	}
	nmut := r.count(8)
	c.mutatedRanges = make([][2]int32, nmut)
	for i := 0; i < nmut; i++ {
		c.mutatedRanges[i] = [2]int32{r.i32(), r.i32()}
	}
	nfn := r.count(4)
	c.funcs = make([]*funcInfo, nfn)
	for i := 0; i < nfn; i++ {
		c.funcs[i] = &funcInfo{entry: r.i32()}
	}
	c.nloops = r.i32()
	c.maxDepth = r.i32()
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("shader: program binary: %d trailing bytes", len(data)-r.off)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// validate sanity-checks cross-references a hostile blob could break, so a
// corrupt cache entry fails closed instead of crashing a VM mid-draw.
func (c *Compiled) validate() error {
	ncode := int32(len(c.code))
	if c.nregs < 0 || c.nregs > 1<<24 {
		return fmt.Errorf("shader: program binary: register file size %d out of range", c.nregs)
	}
	if c.initEntry < 0 || c.initEntry > ncode || c.mainEntry < 0 || c.mainEntry > ncode {
		return fmt.Errorf("shader: program binary: entry point out of range")
	}
	if c.globalBase < 0 || c.globalEnd < c.globalBase || c.globalEnd > c.nregs {
		return fmt.Errorf("shader: program binary: global window [%d,%d) outside register file", c.globalBase, c.globalEnd)
	}
	for _, o := range c.globalOff {
		if o < 0 || o > c.nregs {
			return fmt.Errorf("shader: program binary: global offset %d outside register file", o)
		}
	}
	for _, r := range c.mutatedRanges {
		// Entries are {offset, length} pairs (see buildMutatedRanges).
		if r[0] < 0 || r[1] < 0 || r[0]+r[1] > c.nregs {
			return fmt.Errorf("shader: program binary: mutated range at %d length %d outside register file", r[0], r[1])
		}
	}
	for _, fi := range c.funcs {
		if fi.entry < 0 || fi.entry > ncode {
			return fmt.Errorf("shader: program binary: function entry %d out of range", fi.entry)
		}
	}
	for i := range c.code {
		in := &c.code[i]
		switch in.op {
		case opStats:
			if int(in.aux) >= len(c.stats) || in.aux < 0 {
				return fmt.Errorf("shader: program binary: opStats references stats entry %d of %d", in.aux, len(c.stats))
			}
		case opCall:
			if int(in.aux) >= len(c.funcs) || in.aux < 0 {
				return fmt.Errorf("shader: program binary: opCall references function %d of %d", in.aux, len(c.funcs))
			}
		case opBuiltin:
			if int(in.aux) >= len(c.builtins) || in.aux < 0 {
				return fmt.Errorf("shader: program binary: opBuiltin references descriptor %d of %d", in.aux, len(c.builtins))
			}
		case opJmp, opJz, opJnz:
			if in.aux < 0 || in.aux > ncode {
				return fmt.Errorf("shader: program binary: jump target %d out of range", in.aux)
			}
		}
	}
	return nil
}
