package shader

// Differential tests: every shader is executed by both the AST
// interpreter (reference) and the bytecode VM (default), and the results
// must agree bit-for-bit — outputs, every global, the discard flag AND
// the full Stats struct, since the vc4 timing model derives every modeled
// paper metric from those counters.

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"glescompute/internal/glsl"
)

// diffSampler is a deterministic pure-function sampler shared by both
// executors.
type diffSampler struct{}

func (diffSampler) Sample2D(unit int, s, t float32) [4]float32 {
	h := math.Float32bits(s)*2654435761 ^ math.Float32bits(t)*40503 ^ uint32(unit)*97
	return [4]float32{
		float32(h&0xff) / 255,
		float32((h>>8)&0xff) / 255,
		float32((h>>16)&0xff) / 255,
		float32((h>>24)&0xff) / 255,
	}
}

func (diffSampler) SampleCube(unit int, x, y, z float32) [4]float32 {
	h := math.Float32bits(x)*31 ^ math.Float32bits(y)*17 ^ math.Float32bits(z)*7 ^ uint32(unit)
	return [4]float32{float32(h&0xff) / 255, float32((h>>8)&0xff) / 255, 0.25, 1}
}

// lcg is a tiny deterministic generator for input values.
type lcg uint32

func (g *lcg) next() uint32 {
	*g = *g*1664525 + 1013904223
	return uint32(*g)
}

func (g *lcg) float(kind glsl.BasicKind) float32 {
	n := g.next()
	switch kind {
	case glsl.KBool:
		return float32(n % 2)
	case glsl.KInt:
		return float32(int32(n%64) - 16)
	default:
		return (float32(n%4096) - 1024) / 128 // -8..24 range, exact quarters
	}
}

// fillValue builds a deterministic value of type t.
func fillValue(t *glsl.Type, g *lcg) Value {
	v := Zero(t)
	var fill func(v *Value)
	fill = func(v *Value) {
		if len(v.Agg) > 0 {
			for i := range v.Agg {
				fill(&v.Agg[i])
			}
			return
		}
		if v.T.IsSampler() {
			v.F[0] = float32(g.next() % 4)
			return
		}
		kind := v.T.ComponentType().Kind
		for i := 0; i < v.T.ComponentCount(); i++ {
			v.F[i] = g.float(kind)
		}
	}
	fill(&v)
	return v
}

// runDifferential executes prog through both engines with identical
// deterministic inputs for several invocations, failing on any
// divergence.
func runDifferential(t *testing.T, prog *glsl.Program, invocations int) {
	t.Helper()
	comp, err := Compile(prog)
	if err != nil {
		t.Fatalf("bytecode compile failed: %v", err)
	}
	ex := NewExec(prog, diffSampler{}, DefaultSFU)
	vm := NewVM(comp, diffSampler{}, DefaultSFU)
	ex.MaxLoopIter = 1 << 16
	vm.MaxLoopIter = 1 << 16
	var both [2]Executor
	both[0], both[1] = ex, vm

	// Uniforms and stage inputs, identical on both sides.
	gU, gV := lcg(12345), lcg(12345)
	gens := [2]*lcg{&gU, &gV}
	for _, gl := range prog.Globals {
		switch gl.Qual {
		case glsl.QualUniform, glsl.QualAttribute:
			for k, e := range both {
				e.SetGlobal(gl, fillValue(gl.DeclType, gens[k]))
			}
		}
	}
	for k, e := range both {
		if err := e.InitGlobals(); err != nil {
			t.Fatalf("InitGlobals (engine %d): %v", k, err)
		}
	}
	if s1, s2 := *ex.StatsRef(), *vm.StatsRef(); s1 != s2 {
		t.Fatalf("InitGlobals stats diverge:\ninterp: %+v\nvm:     %+v", s1, s2)
	}

	varyBuf := make([]float32, 64)
	for inv := 0; inv < invocations; inv++ {
		seed := lcg(777 + 31*uint32(inv))
		if prog.Stage == glsl.StageFragment {
			fc := [4]float32{float32(inv%7) + 0.5, float32(inv/7) + 0.5, 0.5, 1}
			for _, e := range both {
				e.SetFragCoord(fc)
				e.SetFrontFacing(inv%2 == 0)
				e.SetPointCoord(0.25, 0.75)
				e.ResetFragOutputs()
			}
			for _, vr := range prog.Varyings {
				g := seed
				n := vr.DeclType.FlatSize()
				for i := 0; i < n; i++ {
					varyBuf[i] = g.float(glsl.KFloat)
				}
				seed = g
				for _, e := range both {
					e.SetGlobalFlat(vr, varyBuf[:n])
				}
			}
		} else {
			g1, g2 := seed, seed
			ag := [2]*lcg{&g1, &g2}
			for _, a := range prog.Attributes {
				for k, e := range both {
					e.SetGlobal(a, fillValue(a.DeclType, ag[k]))
				}
			}
		}

		d1, err1 := ex.Run()
		d2, err2 := vm.Run()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("invocation %d: error divergence: interp=%v vm=%v", inv, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if d1 != d2 {
			t.Fatalf("invocation %d: discard divergence: interp=%v vm=%v", inv, d1, d2)
		}
		if prog.Stage == glsl.StageFragment {
			o1, o2 := ex.FragOutput(), vm.FragOutput()
			if !bitsEqual4(o1, o2) {
				t.Fatalf("invocation %d: gl_FragColor diverges:\ninterp: %v\nvm:     %v", inv, o1, o2)
			}
		} else {
			p1, p2 := ex.Position(), vm.Position()
			if !bitsEqual4(p1, p2) {
				t.Fatalf("invocation %d: gl_Position diverges:\ninterp: %v\nvm:     %v", inv, p1, p2)
			}
			if math.Float32bits(ex.PointSize()) != math.Float32bits(vm.PointSize()) {
				t.Fatalf("invocation %d: gl_PointSize diverges: %v vs %v", inv, ex.PointSize(), vm.PointSize())
			}
		}
		// All globals (catches varying outputs and mutated globals).
		for _, gl := range prog.Globals {
			n := gl.DeclType.FlatSize()
			b1 := make([]float32, n)
			b2 := make([]float32, n)
			ex.ReadGlobalFlat(gl, b1)
			vm.ReadGlobalFlat(gl, b2)
			for i := range b1 {
				if math.Float32bits(b1[i]) != math.Float32bits(b2[i]) {
					t.Fatalf("invocation %d: global %q[%d] diverges: %v vs %v",
						inv, gl.Name, i, b1[i], b2[i])
				}
			}
		}
		if s1, s2 := *ex.StatsRef(), *vm.StatsRef(); s1 != s2 {
			t.Fatalf("invocation %d: stats diverge:\ninterp: %+v\nvm:     %+v", inv, s1, s2)
		}
	}
}

func bitsEqual4(a, b [4]float32) bool {
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

func compileSrc(t *testing.T, src string, stage glsl.ShaderStage) *glsl.Program {
	t.Helper()
	prog, errs := glsl.CompileSource(src, stage, glsl.CheckOptions{})
	if errs.Err() != nil {
		t.Fatalf("GLSL compile failed:\n%v", errs)
	}
	return prog
}

// TestVMDifferentialCorpus runs every corpus shader through both engines.
func TestVMDifferentialCorpus(t *testing.T) {
	dir := filepath.Join("..", "glsl", "testdata")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		stage := glsl.StageFragment
		if strings.HasSuffix(name, ".vert") {
			stage = glsl.StageVertex
		}
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			runDifferential(t, compileSrc(t, string(src), stage), 16)
		})
	}
}

// TestVMDifferentialConstructs covers language constructs not exercised by
// the corpus: aliasing writes, out/inout parameters, dynamic indexing,
// struct values, discard, operator corner cases.
func TestVMDifferentialConstructs(t *testing.T) {
	frag := func(body string) string {
		return "precision highp float;\nuniform float u_a;\nuniform float u_b;\nuniform vec4 u_v;\n" + body
	}
	cases := map[string]string{
		"swizzle-alias": frag(`
void main() {
	vec4 v = u_v;
	v.xy = v.yx;
	v.zw = v.xy + v.wz;
	gl_FragColor = v;
}`),
		"compound-swizzle": frag(`
void main() {
	vec4 v = u_v;
	v.yz *= 2.0;
	v.x += v.w;
	v.w -= u_a;
	gl_FragColor = v;
}`),
		"inc-dec": frag(`
void main() {
	float a = u_a;
	float b = a++ + a-- + (++a) + (--a);
	vec3 v = vec3(u_v);
	v.x++;
	int i = int(u_b);
	i--;
	gl_FragColor = vec4(a, b, v.x, float(i));
}`),
		"ternary-logic": frag(`
void main() {
	bool p = u_a > 0.0;
	bool q = u_b > 1.0;
	float x = (p && q) ? u_a : (p || q) ? u_b : u_a + u_b;
	bool r = p != q;
	gl_FragColor = vec4(x, float(p ^^ q), float(r), float(!p));
}`),
		"short-circuit-effects": frag(`
float g;
bool bump() { g += 1.0; return g > 2.0; }
void main() {
	g = u_a;
	bool x = (u_a > 0.0) && bump();
	bool y = (u_b > 0.0) || bump();
	gl_FragColor = vec4(g, float(x), float(y), 1.0);
}`),
		"out-params": frag(`
void split(float x, out float ipart, inout float acc, out vec2 pair) {
	ipart = floor(x);
	acc += x - ipart;
	pair = vec2(ipart, acc);
}
void main() {
	float ip; float acc = u_b; vec2 pr;
	split(u_a * 3.7, ip, acc, pr);
	split(acc, ip, acc, pr);
	gl_FragColor = vec4(ip, acc, pr);
}`),
		"nested-call-args": frag(`
float dbl(float x) { return x * 2.0; }
void main() {
	float r = dbl(dbl(dbl(u_a) + dbl(u_b)));
	gl_FragColor = vec4(r, dbl(u_a + 1.0), 0.0, 1.0);
}`),
		"array-dynamic": frag(`
void main() {
	float arr[5];
	for (int i = 0; i < 5; i++) { arr[i] = float(i) * u_a; }
	int j = int(u_b);
	arr[j] += 10.0;
	float s = arr[0] + arr[1] + arr[2] + arr[3] + arr[4];
	gl_FragColor = vec4(s, arr[j], arr[-1 + int(u_a)], arr[j * 7]);
}`),
		"matrix-ops": frag(`
void main() {
	mat3 m = mat3(u_v.x, u_v.y, u_v.z, u_v.w, u_a, u_b, 1.0, 2.0, 3.0);
	mat3 mm = m * m;
	vec3 mv = m * vec3(1.0, u_a, u_b);
	vec3 vm = vec3(u_b, 1.0, u_a) * m;
	mat3 ms = m * 2.0;
	mat3 sm = 0.5 * m;
	mat3 cw = matrixCompMult(ms, sm);
	int c = int(u_a);
	vec3 col = m[c];
	m[1] = vec3(7.0, 8.0, 9.0);
	m[c][1] = u_b;
	gl_FragColor = vec4(mm[0][0] + mv.x + vm.y, ms[2][2] + sm[0][1], cw[1][1] + col.x, m[1][0] + m[c][1]);
}`),
		"struct-values": frag(`
struct P { vec2 pos; float w; };
struct Pair { P a; P b; };
P flip(P p) { P q; q.pos = p.pos.yx; q.w = -p.w; return q; }
void main() {
	P p = P(u_v.xy, u_a);
	Pair pr = Pair(p, flip(p));
	P copy = pr.b;
	copy.w += 1.0;
	bool same = copy == pr.b;
	pr.a = copy;
	gl_FragColor = vec4(pr.a.pos, pr.a.w + pr.b.w, float(same));
}`),
		"discard-helper": frag(`
void maybeDrop(float x) { if (x > 2.0) { discard; } }
void main() {
	maybeDrop(u_a);
	if (u_b > 3.0) { discard; }
	gl_FragColor = vec4(u_a, u_b, 0.0, 1.0);
}`),
		"discard-out-writeback": frag(`
void h(out float o, inout float p) { o = 1.0; p += 2.0; if (u_a < 100.0) { discard; } }
void main() {
	float x = 0.0;
	float y = 3.0;
	h(x, y);
	gl_FragColor = vec4(x, y, 0.0, 1.0);
}`),
		"discard-nested-unwind": frag(`
void h(out float o) { o = 1.0; if (u_a < 100.0) { discard; } }
void outer(out float q) { float w = 0.0; h(w); q = w + 5.0; }
void main() {
	float z = 9.0;
	outer(z);
	gl_FragColor = vec4(z);
}`),
		"loops-break-continue": frag(`
void main() {
	float s = 0.0;
	for (int i = 0; i < 10; i++) {
		if (i == 3) { continue; }
		if (float(i) > u_a + 5.0) { break; }
		s += float(i);
	}
	int k = 0;
	while (k < 8) { k += 2; if (k == 6) { break; } }
	int d = 0;
	do { d++; } while (d < int(u_b));
	gl_FragColor = vec4(s, float(k), float(d), 1.0);
}`),
		"int-arith": frag(`
void main() {
	int a = int(u_a * 10.0);
	int b = int(u_b);
	int q = a / b;
	int z = a / 0;
	ivec3 v = ivec3(a, b, q) * 2;
	ivec3 w = v / ivec3(2, 3, 4);
	gl_FragColor = vec4(float(q), float(z), float(v.y), float(w.z));
}`),
		"vector-ctors": frag(`
void main() {
	vec4 a = vec4(u_a);
	vec4 b = vec4(u_v.xy, u_b, 1.0);
	vec3 c = vec3(u_v);
	ivec2 d = ivec2(u_v.zw);
	bvec3 e = bvec3(u_a, 0.0, u_b);
	vec2 f = vec2(d);
	gl_FragColor = vec4(a.x + b.y, c.z + f.x, float(d.y), float(e.x) + float(e.z));
}`),
		"builtins-wide": frag(`
void main() {
	vec3 x = u_v.xyz;
	vec3 a = abs(x) + sign(x) + floor(x) + ceil(x) + fract(x);
	vec3 b = min(x, 0.5) + max(x, vec3(0.1)) + clamp(x, 0.0, 1.0);
	vec3 c = mix(x, vec3(1.0), 0.25) + step(0.5, x) + smoothstep(0.0, 1.0, x);
	float d = length(x) + distance(x, vec3(1.0)) + dot(x, x);
	vec3 e = cross(x, vec3(1.0, 0.0, 0.0)) + normalize(x + vec3(3.0));
	vec3 f = faceforward(x, vec3(1.0), vec3(0.0, 1.0, 0.0)) + reflect(x, normalize(vec3(1.0)));
	vec3 g = refract(normalize(x + vec3(3.0)), vec3(0.0, 1.0, 0.0), 0.9);
	float h = mod(u_a, 0.7) + pow(abs(u_a) + 1.0, 2.0) + exp(u_b * 0.1) + log(abs(u_b) + 2.0);
	float i = exp2(u_a * 0.5) + log2(abs(u_a) + 4.0) + sqrt(abs(u_b)) + inversesqrt(abs(u_b) + 1.0);
	float j = sin(u_a) + cos(u_b) + tan(u_a * 0.3) + atan(u_a, u_b + 10.0) + atan(u_b * 0.2);
	float k = asin(clamp(u_a * 0.1, -1.0, 1.0)) + acos(clamp(u_b * 0.1, -1.0, 1.0));
	float l = radians(u_a) + degrees(u_b);
	gl_FragColor = vec4(a.x + b.y + c.z, d + e.x + f.y, g.z + h + i, j + k + l);
}`),
		"relational-vec": frag(`
void main() {
	vec3 x = u_v.xyz;
	vec3 y = vec3(u_a);
	bvec3 lt = lessThan(x, y);
	bvec3 le = lessThanEqual(x, y);
	bvec3 gt = greaterThan(x, y);
	bvec3 ge = greaterThanEqual(x, y);
	bvec3 eq = equal(x, y);
	bvec3 ne = notEqual(x, y);
	gl_FragColor = vec4(float(any(lt)) + float(all(le)), float(not(gt).x), float(ge.y) + float(eq.z), float(ne.x));
}`),
		"comma-sequence": frag(`
void main() {
	float a = u_a;
	float b = (a += 1.0, a * 2.0);
	gl_FragColor = vec4(a, b, (1.0, 2.0, 3.0), 1.0);
}`),
		"global-mutation": frag(`
float counter = 5.0;
float plain = 2.5;
void main() {
	counter += u_a;
	gl_FragColor = vec4(counter, plain, 0.0, 1.0);
}`),
		"fragdata": frag(`
void main() {
	gl_FragData[0] = vec4(u_a, u_b, u_v.x, 1.0);
}`),
		"swizzle-dynamic-index": frag(`
void main() {
	vec4 v = u_v;
	int i = int(u_a);
	float x = v.zyx[i];
	float y = v[i];
	gl_FragColor = vec4(x, y, v.wzyx[2], 1.0);
}`),
		"builtin-constants": frag(`
void main() {
	gl_FragColor = vec4(float(gl_MaxDrawBuffers), float(gl_MaxTextureImageUnits), 0.0, 1.0);
}`),
		"const-globals": frag(`
const float CF = 2.5;
const vec3 CV = vec3(1.0, 2.0, 3.0);
const int CI = 7;
void main() {
	gl_FragColor = vec4(CF, CV.y, float(CI), CV.z);
}`),
		"deep-aggregates": frag(`
struct Node { vec2 uv; float w[2]; };
void main() {
	Node nodes[3];
	for (int i = 0; i < 3; i++) {
		nodes[i].uv = vec2(float(i), u_a);
		nodes[i].w[0] = u_b * float(i);
		nodes[i].w[1] = u_a - float(i);
	}
	int j = int(u_b);
	float s = nodes[j].w[1] + nodes[1].uv.y + nodes[j].uv.x;
	nodes[j].w[int(u_a)] = 42.0;
	gl_FragColor = vec4(s, nodes[j].w[0], nodes[j].w[1], 1.0);
}`),
		"texture-sampling": frag(`
uniform sampler2D u_t0;
uniform samplerCube u_c0;
void main() {
	vec4 a = texture2D(u_t0, u_v.xy);
	vec4 b = texture2D(u_t0, u_v.zw, 0.5);
	vec4 c = texture2DProj(u_t0, vec3(u_v.xy, 2.0));
	vec4 d = texture2DProj(u_t0, u_v + vec4(0.0, 0.0, 0.0, 2.0));
	vec4 e = textureCube(u_c0, u_v.xyz);
	gl_FragColor = a + b * 0.5 + c * 0.25 + d * 0.125 + e * 0.0625;
}`),
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			runDifferential(t, compileSrc(t, src, glsl.StageFragment), 16)
		})
	}
}

// TestVMDifferentialPaperKernels runs the exact fragment shaders the
// compute runtime generates for the paper's kernels (sum, sgemm,
// identity) through both engines.
func TestVMDifferentialPaperKernels(t *testing.T) {
	decoder := `
float gc_decode_i32(vec4 t) {
	vec4 b = floor(t * 255.0 + vec4(0.5));
	if (b.a < 128.0) {
		return b.r + b.g * 256.0 + b.b * 65536.0 + b.a * 16777216.0;
	}
	vec4 nb = vec4(255.0) - b;
	return -(nb.r + nb.g * 256.0 + nb.b * 65536.0 + nb.a * 16777216.0 + 1.0);
}
float gc_decode_f32(vec4 t) {
	vec4 b = floor(t * 255.0 + vec4(0.5));
	if (b.a == 0.0) { return 0.0; }
	float sgn = b.b < 128.0 ? 1.0 : -1.0;
	float m2 = b.b < 128.0 ? b.b : b.b - 128.0;
	float mant = (b.r + b.g * 256.0 + m2 * 65536.0) / 8388608.0;
	return sgn * (1.0 + mant) * exp2(b.a - 127.0);
}
vec4 gc_encode_out(float v) {
	float neg = v < 0.0 ? 1.0 : 0.0;
	float w = v < 0.0 ? -(v + 1.0) : v;
	float b0 = mod(w, 256.0);
	float r1 = floor((w - b0) / 256.0);
	float b1 = mod(r1, 256.0);
	float r2 = floor((r1 - b1) / 256.0);
	float b2 = mod(r2, 256.0);
	float b3 = floor((r2 - b2) / 256.0);
	vec4 bb = vec4(b0, b1, b2, b3);
	if (neg == 1.0) { bb = vec4(255.0) - bb; }
	return (bb + vec4(0.25)) / 255.0;
}
uniform sampler2D gc_a_tex;
uniform vec2 gc_a_dims;
float gc_a(float idx) {
	float row = floor((idx + 0.5) / gc_a_dims.x);
	float col = idx - row * gc_a_dims.x;
	vec2 st = vec2((col + 0.5) / gc_a_dims.x, (row + 0.5) / gc_a_dims.y);
	return gc_decode_i32(texture2D(gc_a_tex, st));
}
float gc_a_at(float col, float row) {
	vec2 st = vec2((col + 0.5) / gc_a_dims.x, (row + 0.5) / gc_a_dims.y);
	return gc_decode_i32(texture2D(gc_a_tex, st));
}
uniform sampler2D gc_b_tex;
uniform vec2 gc_b_dims;
float gc_b(float idx) {
	float row = floor((idx + 0.5) / gc_b_dims.x);
	float col = idx - row * gc_b_dims.x;
	vec2 st = vec2((col + 0.5) / gc_b_dims.x, (row + 0.5) / gc_b_dims.y);
	return gc_decode_f32(texture2D(gc_b_tex, st));
}
float gc_b_at(float col, float row) {
	vec2 st = vec2((col + 0.5) / gc_b_dims.x, (row + 0.5) / gc_b_dims.y);
	return gc_decode_f32(texture2D(gc_b_tex, st));
}
uniform vec2 gc_out_dims;
uniform float gc_out_n;
uniform float u_n;
varying vec2 v_uv;
`
	kernels := map[string]string{
		"sum": `
float gc_kernel(float idx) {
	return gc_a(idx) + gc_b(idx);
}
void main() {
	float gc_idx = floor(gl_FragCoord.y) * gc_out_dims.x + floor(gl_FragCoord.x);
	gl_FragColor = gc_encode_out(gc_kernel(gc_idx));
}`,
		"sgemm": `
float gc_kernel(float idx) {
	float row = floor((idx + 0.5) / u_n);
	float col = idx - row * u_n;
	float acc = 0.0;
	for (float k = 0.0; k < 2048.0; k += 1.0) {
		if (k >= u_n) { break; }
		acc += gc_a_at(k, row) * gc_b_at(col, k);
	}
	return acc;
}
void main() {
	float gc_idx = floor(gl_FragCoord.y) * gc_out_dims.x + floor(gl_FragCoord.x);
	gl_FragColor = gc_encode_out(gc_kernel(gc_idx));
}`,
		"identity": `
float gc_kernel(float idx) { return gc_a(idx); }
void main() {
	float gc_idx = floor(gl_FragCoord.y) * gc_out_dims.x + floor(gl_FragCoord.x);
	gl_FragColor = gc_encode_out(gc_kernel(gc_idx));
}`,
	}
	for name, src := range kernels {
		t.Run(name, func(t *testing.T) {
			runDifferential(t, compileSrc(t, "precision highp float;\n"+decoder+src, glsl.StageFragment), 24)
		})
	}
}

// TestVMLoopGuard verifies both engines abort runaway loops with an error.
func TestVMLoopGuard(t *testing.T) {
	src := `precision highp float;
void main() {
	float s = 0.0;
	for (int i = 0; i >= 0; i++) { s += 1.0; }
	gl_FragColor = vec4(s);
}`
	prog := compileSrc(t, src, glsl.StageFragment)
	comp, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExec(prog, nil, ExactSFU)
	ex.MaxLoopIter = 100
	if err := ex.InitGlobals(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(); err == nil {
		t.Fatal("interpreter did not catch runaway loop")
	}
	vm := NewVM(comp, nil, ExactSFU)
	vm.MaxLoopIter = 100
	if err := vm.InitGlobals(); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Run(); err == nil {
		t.Fatal("VM did not catch runaway loop")
	}
}

// TestVMZeroAllocRun verifies the VM's per-invocation path does not
// allocate (the whole point of the bytecode engine).
func TestVMZeroAllocRun(t *testing.T) {
	src := `precision highp float;
uniform float u_a;
void main() {
	float acc = 0.0;
	for (float k = 0.0; k < 16.0; k += 1.0) { acc += mod(k * u_a, 7.0); }
	gl_FragColor = vec4(acc, exp2(u_a), log2(abs(u_a) + 2.0), 1.0);
}`
	prog := compileSrc(t, src, glsl.StageFragment)
	comp, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(comp, nil, DefaultSFU)
	vm.SetGlobal(prog.LookupUniform("u_a"), FloatVal(1.75))
	if err := vm.InitGlobals(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := vm.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("VM.Run allocates %v times per invocation, want 0", allocs)
	}
}
