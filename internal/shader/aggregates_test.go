package shader

import (
	"testing"

	"glescompute/internal/glsl"
)

func TestExecArrayFunctionParam(t *testing.T) {
	got := runFragment(t, `
precision mediump float;
float sum4(float a[4]) {
	float s = 0.0;
	for (int i = 0; i < 4; ++i) { s += a[i]; }
	return s;
}
void main() {
	float xs[4];
	xs[0] = 1.0; xs[1] = 2.0; xs[2] = 3.0; xs[3] = 4.0;
	gl_FragColor = vec4(sum4(xs));
}`, nil)
	checkColor(t, got, [4]float32{10, 10, 10, 10}, 0)
}

func TestExecStructCopySemantics(t *testing.T) {
	// Assignment copies the struct; mutating the copy must not affect the
	// original.
	got := runFragment(t, `
precision mediump float;
struct S { float a; vec2 b; };
void main() {
	S x = S(1.0, vec2(2.0, 3.0));
	S y = x;
	y.a = 100.0;
	y.b.x = 200.0;
	gl_FragColor = vec4(x.a, x.b.x, y.a, y.b.x);
}`, nil)
	checkColor(t, got, [4]float32{1, 2, 100, 200}, 0)
}

func TestExecArrayCopySemantics(t *testing.T) {
	got := runFragment(t, `
precision mediump float;
void main() {
	float a[2];
	a[0] = 1.0; a[1] = 2.0;
	float b[2];
	b = a;
	b[0] = 50.0;
	gl_FragColor = vec4(a[0], a[1], b[0], b[1]);
}`, nil)
	checkColor(t, got, [4]float32{1, 2, 50, 2}, 0)
}

func TestExecStructComparison(t *testing.T) {
	got := runFragment(t, `
precision mediump float;
struct S { float a; vec2 b; };
void main() {
	S x = S(1.0, vec2(2.0, 3.0));
	S y = S(1.0, vec2(2.0, 3.0));
	S z = S(1.0, vec2(2.0, 9.0));
	gl_FragColor = vec4(x == y ? 1.0 : 0.0, x == z ? 1.0 : 0.0, x != z ? 1.0 : 0.0, 1.0);
}`, nil)
	checkColor(t, got, [4]float32{1, 0, 1, 1}, 0)
}

func TestExecMatrixColumnSwizzleWrite(t *testing.T) {
	got := runFragment(t, `
precision mediump float;
void main() {
	mat3 m = mat3(0.0);
	m[1].xy = vec2(3.0, 4.0);
	m[2][2] = 9.0;
	gl_FragColor = vec4(m[1][0], m[1][1], m[2][2], m[0][0]);
}`, nil)
	checkColor(t, got, [4]float32{3, 4, 9, 0}, 0)
}

func TestExecStructArrayMix(t *testing.T) {
	got := runFragment(t, `
precision mediump float;
struct P { float w; };
void main() {
	P ps[3];
	ps[0] = P(10.0);
	ps[1] = P(20.0);
	ps[2] = P(30.0);
	float s = 0.0;
	for (int i = 0; i < 3; ++i) { s += ps[i].w; }
	gl_FragColor = vec4(s);
}`, nil)
	checkColor(t, got, [4]float32{60, 60, 60, 60}, 0)
}

func TestExecUniformStructAccess(t *testing.T) {
	prog, errs := glsl.CompileSource(`
precision mediump float;
struct Light { vec3 color; float power; };
uniform Light u_l;
void main() { gl_FragColor = vec4(u_l.color * u_l.power, 1.0); }
`, glsl.StageFragment, glsl.CheckOptions{})
	if errs.Err() != nil {
		t.Fatal(errs)
	}
	ex := NewExec(prog, nil, ExactSFU)
	u := prog.LookupUniform("u_l")
	val := Zero(u.DeclType)
	val.Agg[0] = Vec3Val(0.5, 0.25, 0.125)
	val.Agg[1] = FloatVal(2)
	ex.SetGlobal(u, val)
	if err := ex.InitGlobals(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	got := ex.Builtins[glsl.BVSlotFragColor].Vec4()
	checkColor(t, got, [4]float32{1, 0.5, 0.25, 1}, 1e-6)
}

func TestExecInoutAggregates(t *testing.T) {
	got := runFragment(t, `
precision mediump float;
struct S { float v; };
void bump(inout S s) { s.v += 1.0; }
void main() {
	S s = S(5.0);
	bump(s);
	bump(s);
	gl_FragColor = vec4(s.v);
}`, nil)
	checkColor(t, got, [4]float32{7, 7, 7, 7}, 0)
}

func TestExecConstArrayIndexingThroughLoop(t *testing.T) {
	got := runFragment(t, `
precision mediump float;
uniform float u_sel;
void main() {
	vec4 v = vec4(10.0, 20.0, 30.0, 40.0);
	float acc = 0.0;
	for (int i = 0; i < 4; ++i) {
		if (float(i) == u_sel) { acc = v[i]; }
	}
	gl_FragColor = vec4(acc);
}`, func(ex *Exec) {
		ex.SetGlobal(ex.Prog.LookupUniform("u_sel"), FloatVal(2))
	})
	checkColor(t, got, [4]float32{30, 30, 30, 30}, 0)
}
