// Package codec implements the paper's Section IV: numeric transformations
// that move C-language data types through the only channel OpenGL ES 2.0
// provides — RGBA8 textures in, RGBA8 framebuffers out.
//
// The host side (this file) packs Go values into texture bytes and decodes
// framebuffer bytes back; for float32 this includes the byte re-arrangement
// of the paper's Fig. 2 (exponent packed into one byte, sign joined to the
// mantissa bytes). The GPU side (glsl.go) generates the GLSL ES decode and
// encode functions executed inside kernels.
//
// Known deviations from the paper's printed formulas are documented in
// DESIGN.md §6 (the derivations contain typos; the implemented forms are
// the self-consistent ones, pinned by tests).
package codec

import (
	"fmt"
	"math"
)

// ElemType enumerates the supported element types (paper §IV-A..E).
type ElemType int

// Element types.
const (
	Uint8 ElemType = iota
	Int8
	Uint32
	Int32
	Float32
)

func (t ElemType) String() string {
	switch t {
	case Uint8:
		return "uint8"
	case Int8:
		return "int8"
	case Uint32:
		return "uint32"
	case Int32:
		return "int32"
	case Float32:
		return "float32"
	}
	return "unknown"
}

// Delta is δ from the paper's eq. (3): the gap between the 1/255
// quantization of texture values and 1/256 byte steps,
// δ = 1/256 − 1/255 = −1/65280.
const Delta = 1.0/256.0 - 1.0/255.0

// ---- Fig. 2 float byte re-arrangement ----

// FloatToGPUBits re-arranges IEEE 754 float32 bits into the paper's GPU
// byte layout (Fig. 2): byte 3 = full 8-bit exponent, byte 2 = sign bit +
// mantissa[22:16], bytes 1..0 = mantissa[15:0].
func FloatToGPUBits(f float32) uint32 {
	bits := math.Float32bits(f)
	sign := bits >> 31
	exp := (bits >> 23) & 0xFF
	mant := bits & 0x7FFFFF
	return exp<<24 | sign<<23 | mant
}

// GPUBitsToFloat inverts FloatToGPUBits.
func GPUBitsToFloat(g uint32) float32 {
	exp := g >> 24
	sign := (g >> 23) & 1
	mant := g & 0x7FFFFF
	return math.Float32frombits(sign<<31 | exp<<23 | mant)
}

// ---- Host-side packing (CPU memory → texture bytes) ----

// PackFloat32 packs floats into RGBA texels with the Fig. 2 layout
// (R=mantissa low byte … A=exponent byte). dst needs 4 bytes per element.
func PackFloat32(dst []byte, src []float32) error {
	if len(dst) < len(src)*4 {
		return fmt.Errorf("codec: dst too small: %d < %d", len(dst), len(src)*4)
	}
	for i, f := range src {
		g := FloatToGPUBits(f)
		dst[i*4+0] = byte(g)
		dst[i*4+1] = byte(g >> 8)
		dst[i*4+2] = byte(g >> 16)
		dst[i*4+3] = byte(g >> 24)
	}
	return nil
}

// UnpackFloat32 decodes framebuffer bytes produced by the GPU float
// encoder back into floats.
func UnpackFloat32(dst []float32, src []byte) error {
	if len(src) < len(dst)*4 {
		return fmt.Errorf("codec: src too small: %d < %d", len(src), len(dst)*4)
	}
	for i := range dst {
		g := uint32(src[i*4]) | uint32(src[i*4+1])<<8 |
			uint32(src[i*4+2])<<16 | uint32(src[i*4+3])<<24
		dst[i] = GPUBitsToFloat(g)
	}
	return nil
}

// PackUint32 packs unsigned integers little-endian into RGBA texels
// (paper §IV-C: byte i has significance 256^i; R is least significant).
func PackUint32(dst []byte, src []uint32) error {
	if len(dst) < len(src)*4 {
		return fmt.Errorf("codec: dst too small: %d < %d", len(dst), len(src)*4)
	}
	for i, v := range src {
		dst[i*4+0] = byte(v)
		dst[i*4+1] = byte(v >> 8)
		dst[i*4+2] = byte(v >> 16)
		dst[i*4+3] = byte(v >> 24)
	}
	return nil
}

// UnpackUint32 inverts PackUint32 (eq. 7: bytes recovered as remainders of
// powers of 256).
func UnpackUint32(dst []uint32, src []byte) error {
	if len(src) < len(dst)*4 {
		return fmt.Errorf("codec: src too small: %d < %d", len(src), len(dst)*4)
	}
	for i := range dst {
		dst[i] = uint32(src[i*4]) | uint32(src[i*4+1])<<8 |
			uint32(src[i*4+2])<<16 | uint32(src[i*4+3])<<24
	}
	return nil
}

// PackInt32 packs signed integers: the unmodified two's-complement memory
// representation (§IV-D stresses interoperability — no custom format).
func PackInt32(dst []byte, src []int32) error {
	if len(dst) < len(src)*4 {
		return fmt.Errorf("codec: dst too small: %d < %d", len(dst), len(src)*4)
	}
	for i, v := range src {
		u := uint32(v)
		dst[i*4+0] = byte(u)
		dst[i*4+1] = byte(u >> 8)
		dst[i*4+2] = byte(u >> 16)
		dst[i*4+3] = byte(u >> 24)
	}
	return nil
}

// UnpackInt32 inverts PackInt32.
func UnpackInt32(dst []int32, src []byte) error {
	if len(src) < len(dst)*4 {
		return fmt.Errorf("codec: src too small: %d < %d", len(src), len(dst)*4)
	}
	for i := range dst {
		dst[i] = int32(uint32(src[i*4]) | uint32(src[i*4+1])<<8 |
			uint32(src[i*4+2])<<16 | uint32(src[i*4+3])<<24)
	}
	return nil
}

// PackUint8 stores bytes one per texel in the R channel (G/B unused,
// A=255 for debuggability).
func PackUint8(dst []byte, src []uint8) error {
	if len(dst) < len(src)*4 {
		return fmt.Errorf("codec: dst too small: %d < %d", len(dst), len(src)*4)
	}
	for i, v := range src {
		dst[i*4+0] = v
		dst[i*4+1] = 0
		dst[i*4+2] = 0
		dst[i*4+3] = 255
	}
	return nil
}

// UnpackUint8 inverts PackUint8.
func UnpackUint8(dst []uint8, src []byte) error {
	if len(src) < len(dst)*4 {
		return fmt.Errorf("codec: src too small: %d < %d", len(src), len(dst)*4)
	}
	for i := range dst {
		dst[i] = src[i*4]
	}
	return nil
}

// PackInt8 stores signed bytes in two's complement (§IV-B).
func PackInt8(dst []byte, src []int8) error {
	if len(dst) < len(src)*4 {
		return fmt.Errorf("codec: dst too small: %d < %d", len(dst), len(src)*4)
	}
	for i, v := range src {
		dst[i*4+0] = byte(v)
		dst[i*4+1] = 0
		dst[i*4+2] = 0
		dst[i*4+3] = 255
	}
	return nil
}

// UnpackInt8 inverts PackInt8.
func UnpackInt8(dst []int8, src []byte) error {
	if len(src) < len(dst)*4 {
		return fmt.Errorf("codec: src too small: %d < %d", len(src), len(dst)*4)
	}
	for i := range dst {
		dst[i] = int8(src[i*4])
	}
	return nil
}

// ---- CPU reference of the GPU-side transformation (paper §V: "the same
// transformations on the CPU are precise") ----

// CPUDecodeFloat mirrors the GLSL decode path in exact float64 arithmetic:
// reconstructing a float from its four texture bytes. Used to demonstrate
// that the precision loss measured on the (simulated) GPU comes from the
// GPU platform, not from the math.
func CPUDecodeFloat(b0, b1, b2, b3 byte) float64 {
	if b3 == 0 {
		return 0
	}
	sign := 1.0
	m2 := float64(b2)
	if b2 >= 128 {
		sign = -1
		m2 -= 128
	}
	mant := (float64(b0) + float64(b1)*256 + m2*65536) / (1 << 23)
	exp := float64(b3) - 127
	return sign * (1 + mant) * math.Pow(2, exp)
}

// CPUEncodeFloat mirrors the GLSL encode path in exact float64 arithmetic.
func CPUEncodeFloat(f float64) (b0, b1, b2, b3 byte) {
	if f == 0 {
		return 0, 0, 0, 0
	}
	sign := 0.0
	af := f
	if f < 0 {
		sign = 1
		af = -f
	}
	e := math.Floor(math.Log2(af))
	m := af * math.Pow(2, -e)
	if m < 1 {
		m *= 2
		e--
	} else if m >= 2 {
		m /= 2
		e++
	}
	mant := math.Floor((m-1)*(1<<23) + 0.5)
	if mant >= 1<<23 {
		mant = 0
		e++
	}
	b0 = byte(math.Mod(mant, 256))
	b1 = byte(math.Mod(math.Floor(mant/256), 256))
	b2 = byte(math.Floor(mant/65536) + sign*128)
	b3 = byte(e + 127)
	return
}

// MantissaBitsAgreement returns how many of the most significant mantissa
// bits of got are accurate with respect to want — the accuracy metric of
// the paper's §V ("accurate within the 15 most significant bits of the
// mantissa"). It is computed from the ULP distance between the values,
// which, unlike literal leading-bit comparison, is robust across mantissa
// carry boundaries (1.9999 vs 2.0001 is a tiny error, not a total
// exponent mismatch). Identical values return 23.
func MantissaBitsAgreement(want, got float32) int {
	ulps := ulpDistance(want, got)
	if ulps == 0 {
		return 23
	}
	// An error of 2^k ULPs leaves the top 22-k mantissa bits trustworthy.
	bits := 22 - intLog2(ulps)
	if bits < 0 {
		return 0
	}
	return bits
}

// ulpDistance counts representable float32 values between a and b.
func ulpDistance(a, b float32) uint64 {
	oa := orderedBits(math.Float32bits(a))
	ob := orderedBits(math.Float32bits(b))
	if oa > ob {
		return uint64(oa - ob)
	}
	return uint64(ob - oa)
}

// orderedBits maps float32 bit patterns to a monotonically ordered integer
// line (the standard sign-magnitude flip).
func orderedBits(bits uint32) int64 {
	if bits&0x80000000 != 0 {
		return int64(0x80000000) - int64(bits)
	}
	return int64(bits)
}

func intLog2(v uint64) int {
	n := -1
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}
