package codec

import (
	"fmt"
	"math"
)

// Format describes how logical elements are laid out in RGBA8 texels: the
// element type plus the lane width (values per texel). It subsumes the old
// ElemType.TexelsPerElement stub — which hardcoded 1 — with the inverse
// notion: packed formats store SEVERAL elements per texel, so the texel
// count for n elements is ceil(n/lanes).
//
// Scalar formats are the paper's §IV codecs unchanged (one value per
// texel). The packed formats are this repo's extension (PHWC4-style, after
// the mobile-GPU inference literature in PAPERS.md):
//
//   - Int8x4: four int8 lanes, one per RGBA channel, stored excess-128
//     (byte = value + 128). Excess-128 instead of §IV-B two's complement
//     makes the 4-wide GLSL decode a single vec4 subtract — no per-lane
//     sign select. Documented as a deviation in DESIGN.md §6f.
//   - Float16x2: two IEEE fp16 lanes per texel (lane 0 in R=lo,G=hi;
//     lane 1 in B=lo,A=hi), preserving ±0 and fp16 denormals. It is a
//     storage/transfer format: kernels read it through a scalar accessor,
//     but kernel outputs cannot use it (outputs are 1- or 4-lane).
type Format int

// Formats. The zero value FmtAuto means "derive the scalar format from the
// element type" so existing code that only names an ElemType keeps working.
const (
	FmtAuto Format = iota
	FmtUint8
	FmtInt8
	FmtUint32
	FmtInt32
	FmtFloat32
	FmtInt8x4
	FmtFloat16x2
)

// FormatOf returns the scalar (1 lane per texel) format for an element type.
func FormatOf(t ElemType) Format {
	switch t {
	case Uint8:
		return FmtUint8
	case Int8:
		return FmtInt8
	case Uint32:
		return FmtUint32
	case Int32:
		return FmtInt32
	case Float32:
		return FmtFloat32
	}
	return FmtFloat32
}

// Resolve replaces FmtAuto with the scalar format of t.
func (f Format) Resolve(t ElemType) Format {
	if f == FmtAuto {
		return FormatOf(t)
	}
	return f
}

// Elem returns the logical element type stored by the format.
func (f Format) Elem() ElemType {
	switch f {
	case FmtUint8:
		return Uint8
	case FmtInt8, FmtInt8x4:
		return Int8
	case FmtUint32:
		return Uint32
	case FmtInt32:
		return Int32
	}
	return Float32
}

// Lanes returns how many logical values one RGBA texel carries.
func (f Format) Lanes() int {
	switch f {
	case FmtInt8x4:
		return 4
	case FmtFloat16x2:
		return 2
	}
	return 1
}

// Packed reports whether the format stores more than one value per texel.
func (f Format) Packed() bool { return f.Lanes() > 1 }

// TexelsFor returns the texel count needed for n elements: ceil(n/lanes).
func (f Format) TexelsFor(n int) int {
	l := f.Lanes()
	return (n + l - 1) / l
}

func (f Format) String() string {
	switch f {
	case FmtAuto:
		return "auto"
	case FmtInt8x4:
		return "int8x4"
	case FmtFloat16x2:
		return "float16x2"
	}
	return f.Elem().String()
}

// ---- Int8x4 host packing ----

// CPUEncodeInt8x4 maps one int8 lane to its excess-128 byte.
func CPUEncodeInt8x4(v int8) byte { return byte(int(v) + 128) }

// CPUDecodeInt8x4 inverts CPUEncodeInt8x4.
func CPUDecodeInt8x4(b byte) int8 { return int8(int(b) - 128) }

// PackInt8x4 packs four int8 values per RGBA texel in excess-128. dst needs
// 4·ceil(len(src)/4) bytes; tail lanes of the last texel store value 0
// (byte 128) so packed buffers are deterministic beyond n.
func PackInt8x4(dst []byte, src []int8) error {
	texels := FmtInt8x4.TexelsFor(len(src))
	if len(dst) < texels*4 {
		return fmt.Errorf("codec: dst too small: %d < %d", len(dst), texels*4)
	}
	for i, v := range src {
		dst[i] = CPUEncodeInt8x4(v)
	}
	for i := len(src); i < texels*4; i++ {
		dst[i] = 128
	}
	return nil
}

// UnpackInt8x4 inverts PackInt8x4 for the first len(dst) lanes.
func UnpackInt8x4(dst []int8, src []byte) error {
	if len(src) < len(dst) {
		return fmt.Errorf("codec: src too small: %d < %d", len(src), len(dst))
	}
	for i := range dst {
		dst[i] = CPUDecodeInt8x4(src[i])
	}
	return nil
}

// ---- Float16x2 host packing ----

// float32ToHalfBitsKeepDenorm converts fp32 to fp16 bits with
// round-to-nearest-even, PRESERVING fp16 denormals (unlike
// Float32ToHalfBits, which models flush-to-zero hardware). The packed
// storage format keeps them so tiny values survive a round-trip.
func float32ToHalfBitsKeepDenorm(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xFF) - 127
	mant := bits & 0x7FFFFF

	switch {
	case exp == 128: // Inf or NaN
		if mant != 0 {
			return sign | 0x7E00
		}
		return sign | 0x7C00
	case exp > 15: // overflow → Inf
		return sign | 0x7C00
	case exp >= -14: // normal half
		break
	default:
		// Subnormal half: value = d·2⁻²⁴ with d ∈ [0,1023]. The real
		// d is (2²³+mant)·2^(exp+1)/2²³; round it to nearest-even.
		// fp32 values below 2⁻²⁵ (including fp32 denormals) round to ±0.
		shift := uint(-exp - 1) // ≥ 14 here
		if shift >= 32 {
			return sign
		}
		m := mant | 0x800000
		d := m >> shift
		rem := m & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && d&1 == 1) {
			d++
		}
		if d >= 0x400 { // rounded up into the smallest normal
			return sign | 1<<10
		}
		return sign | uint16(d)
	}
	halfExp := uint16(exp+15) << 10
	halfMant := uint16(mant >> 13)
	rem := mant & 0x1FFF
	if rem > 0x1000 || (rem == 0x1000 && halfMant&1 == 1) {
		halfMant++
		if halfMant == 0x400 {
			halfMant = 0
			halfExp += 1 << 10
			if halfExp >= 0x7C00 {
				return sign | 0x7C00
			}
		}
	}
	return sign | halfExp | halfMant
}

// CPUEncodeFloat16x2 maps one float lane to its two storage bytes (lo, hi).
func CPUEncodeFloat16x2(f float32) (lo, hi byte) {
	h := float32ToHalfBitsKeepDenorm(f)
	return byte(h), byte(h >> 8)
}

// CPUDecodeFloat16x2 inverts CPUEncodeFloat16x2.
func CPUDecodeFloat16x2(lo, hi byte) float32 {
	return HalfBitsToFloat32(uint16(lo) | uint16(hi)<<8)
}

// PackFloat16x2 packs two fp16 values per RGBA texel: lane 0 in R(lo),G(hi),
// lane 1 in B(lo),A(hi). dst needs 4·ceil(len(src)/2) bytes; a missing tail
// lane stores +0.
func PackFloat16x2(dst []byte, src []float32) error {
	texels := FmtFloat16x2.TexelsFor(len(src))
	if len(dst) < texels*4 {
		return fmt.Errorf("codec: dst too small: %d < %d", len(dst), texels*4)
	}
	for i, f := range src {
		lo, hi := CPUEncodeFloat16x2(f)
		dst[i*2+0] = lo
		dst[i*2+1] = hi
	}
	for i := len(src) * 2; i < texels*4; i++ {
		dst[i] = 0
	}
	return nil
}

// UnpackFloat16x2 inverts PackFloat16x2 for the first len(dst) lanes.
func UnpackFloat16x2(dst []float32, src []byte) error {
	if len(src) < len(dst)*2 {
		return fmt.Errorf("codec: src too small: %d < %d", len(src), len(dst)*2)
	}
	for i := range dst {
		dst[i] = CPUDecodeFloat16x2(src[i*2], src[i*2+1])
	}
	return nil
}

// ---- Packed GLSL codecs ----

// GLSLDecoderInt8x4 returns `vec4 <name>(vec4 t)` decoding all four int8
// lanes of a texel at once: excess-128 makes it a byte reconstruction plus
// one vec4 subtract (compare the per-lane sign select of the scalar §IV-B
// decoder — this is the codec-amortization the A1 experiment motivates).
func GLSLDecoderInt8x4(name string) string {
	return fmt.Sprintf("vec4 %s(vec4 t) {\n"+
		"\treturn floor(t * 255.0 + vec4(0.5)) - vec4(128.0);\n"+
		"}\n", name)
}

// GLSLEncoderInt8x4 returns `vec4 <name>(vec4 v)` encoding four int8 lanes
// into one texel (clamp to [-128,127], excess-128, framebuffer bias).
func GLSLEncoderInt8x4(name string, style EncodeStyle) string {
	bias := style.glslBias()
	return fmt.Sprintf("vec4 %s(vec4 v) {\n"+
		"\tvec4 b = clamp(floor(v + vec4(0.5)), vec4(-128.0), vec4(127.0)) + vec4(128.0);\n"+
		"\treturn (b + vec4(%s)) / 255.0;\n"+
		"}\n", name, bias)
}

// GLSLDecoderFloat16x2 returns `vec2 <name>(vec4 t)` decoding both fp16
// lanes of a texel. Denormals (exponent 0) decode as mant·2⁻²⁴; the
// Inf/NaN exponent (31) saturates to ±2¹⁶ — GLSL ES 1.00 has no portable
// Inf literal, and the format is storage-side only, so saturation is the
// documented behaviour for specials.
func GLSLDecoderFloat16x2(name string) string {
	return fmt.Sprintf(`float %s_lane(float lo, float hi) {
	float s = step(128.0, hi);
	float h = hi - s * 128.0;
	float e = floor(h / 4.0);
	float m = (h - e * 4.0) * 256.0 + lo;
	float sgn = 1.0 - 2.0 * s;
	if (e == 0.0) { return sgn * m * exp2(-24.0); }
	if (e == 31.0) { return sgn * 65536.0; }
	return sgn * (1.0 + m / 1024.0) * exp2(e - 15.0);
}
vec2 %s(vec4 t) {
	vec4 b = floor(t * 255.0 + vec4(0.5));
	return vec2(%s_lane(b.r, b.g), %s_lane(b.b, b.a));
}
`, name, name, name, name)
}
