package codec

import "math"

// IEEE 754 half-precision conversion. The paper (§II item 5/6) notes that
// some ES 2.0 vendors expose half-float texture/framebuffer extensions
// (OES_texture_half_float) and argues they are "neither enough nor
// portable". These helpers model what data fidelity such an extension
// would deliver, so the evaluation can compare it against the paper's
// RGBA8 codec (experiment A4 in EXPERIMENTS.md).

// Float32ToHalfBits converts an fp32 value to fp16 bits with
// round-to-nearest-even, flushing fp16 denormals to zero (the behaviour of
// the era's mobile GPUs).
func Float32ToHalfBits(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xFF) - 127
	mant := bits & 0x7FFFFF

	switch {
	case exp == 128: // Inf or NaN
		if mant != 0 {
			return sign | 0x7E00 // NaN
		}
		return sign | 0x7C00 // Inf
	case exp > 15: // overflow → Inf
		return sign | 0x7C00
	case exp < -14: // underflow → zero (denormals flushed)
		return sign
	}
	// Normalized half: 5-bit exponent (bias 15), 10-bit mantissa with
	// round-to-nearest-even on the dropped 13 bits.
	halfExp := uint16(exp+15) << 10
	halfMant := uint16(mant >> 13)
	rem := mant & 0x1FFF
	if rem > 0x1000 || (rem == 0x1000 && halfMant&1 == 1) {
		halfMant++
		if halfMant == 0x400 { // mantissa carry into exponent
			halfMant = 0
			halfExp += 1 << 10
			if halfExp >= 0x7C00 {
				return sign | 0x7C00
			}
		}
	}
	return sign | halfExp | halfMant
}

// HalfBitsToFloat32 converts fp16 bits back to fp32.
func HalfBitsToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1F)
	mant := uint32(h & 0x3FF)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// fp16 denormal: value = mant * 2^-24.
		return math.Float32frombits(sign) + float32(mant)*float32(math.Pow(2, -24))*signOf(sign)
	case 31:
		if mant != 0 {
			return float32(math.NaN())
		}
		return math.Float32frombits(sign | 0x7F800000)
	}
	return math.Float32frombits(sign | (exp+112)<<23 | mant<<13)
}

func signOf(signBits uint32) float32 {
	if signBits != 0 {
		return -1
	}
	return 1
}

// QuantizeFloat16 pushes an fp32 value through fp16 and back: the fidelity
// a half-float texture extension would deliver.
func QuantizeFloat16(f float32) float32 {
	return HalfBitsToFloat32(Float32ToHalfBits(f))
}
