package codec

import (
	"math"
	"testing"

	"glescompute/internal/glsl"
	"glescompute/internal/shader"
)

// specialsShader builds the special-value-preserving round trip shader.
func specialsShader() string {
	return "precision highp float;\n" +
		"uniform vec4 u_texel;\n" +
		GLSLDecoderSpecials("gc_decode") +
		GLSLEncoderSpecials("gc_encode", EncodeRobust) +
		"void main() {\n\tfloat v = gc_decode(u_texel);\n\tgl_FragColor = gc_encode(v);\n}\n"
}

func runSpecials(t *testing.T, texel [4]byte) [4]byte {
	t.Helper()
	return runCodecShader(t, specialsShader(), texel, shader.DefaultSFU, "round")
}

func TestSpecialsPreserveInfinities(t *testing.T) {
	// Paper §IV-E: "These transformations can optionally preserve special
	// values such as infinities and not-numbers (NaNs)".
	for _, v := range []float32{float32(math.Inf(1)), float32(math.Inf(-1))} {
		var texel [4]byte
		if err := PackFloat32(texel[:], []float32{v}); err != nil {
			t.Fatal(err)
		}
		out := runSpecials(t, texel)
		var got [1]float32
		if err := UnpackFloat32(got[:], out[:]); err != nil {
			t.Fatal(err)
		}
		if !math.IsInf(float64(got[0]), int(sign64(float64(v)))) {
			t.Errorf("%g round-tripped to %g", v, got[0])
		}
	}
}

func TestSpecialsPreserveNaN(t *testing.T) {
	nan := float32(math.NaN())
	var texel [4]byte
	if err := PackFloat32(texel[:], []float32{nan}); err != nil {
		t.Fatal(err)
	}
	out := runSpecials(t, texel)
	var got [1]float32
	if err := UnpackFloat32(got[:], out[:]); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(got[0])) {
		t.Errorf("NaN round-tripped to %g (bits %08x)", got[0], math.Float32bits(got[0]))
	}
}

func TestSpecialsFiniteValuesUnaffected(t *testing.T) {
	// The specials-preserving codec must behave like the standard codec on
	// finite values.
	for _, v := range []float32{0, 1, -1, 3.25, -1000.5, 1e-6} {
		var texel [4]byte
		if err := PackFloat32(texel[:], []float32{v}); err != nil {
			t.Fatal(err)
		}
		out := runSpecials(t, texel)
		var got [1]float32
		if err := UnpackFloat32(got[:], out[:]); err != nil {
			t.Fatal(err)
		}
		if MantissaBitsAgreement(v, got[0]) < 14 && v != got[0] {
			t.Errorf("finite %g degraded to %g", v, got[0])
		}
	}
}

func TestSpecialsEncoderClampsFiniteExponents(t *testing.T) {
	// Finite values must never produce the reserved exponent byte 255,
	// even at the top of the float range.
	prog, errs := glsl.CompileSource(
		"precision highp float;\nuniform float u_v;\n"+
			GLSLEncoderSpecials("gc_encode", EncodeRobust)+
			"void main() { gl_FragColor = gc_encode(u_v); }",
		glsl.StageFragment, glsl.CheckOptions{})
	if errs.Err() != nil {
		t.Fatal(errs)
	}
	ex := shader.NewExec(prog, nil, shader.ExactSFU)
	ex.SetGlobal(prog.LookupUniform("u_v"), shader.FloatVal(math.MaxFloat32))
	if err := ex.InitGlobals(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	a := ex.Builtins[glsl.BVSlotFragColor].F[3]
	if b := int(a*255 + 0.5); b == 255 {
		t.Errorf("MaxFloat32 encoded with the reserved exponent byte 255")
	}
}

func sign64(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}
