package codec

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestFormatLanesAndTexels(t *testing.T) {
	cases := []struct {
		f     Format
		lanes int
		elem  ElemType
	}{
		{FmtUint8, 1, Uint8},
		{FmtInt8, 1, Int8},
		{FmtUint32, 1, Uint32},
		{FmtInt32, 1, Int32},
		{FmtFloat32, 1, Float32},
		{FmtInt8x4, 4, Int8},
		{FmtFloat16x2, 2, Float32},
	}
	for _, c := range cases {
		if got := c.f.Lanes(); got != c.lanes {
			t.Errorf("%v lanes = %d, want %d", c.f, got, c.lanes)
		}
		if got := c.f.Elem(); got != c.elem {
			t.Errorf("%v elem = %v, want %v", c.f, got, c.elem)
		}
		if (c.lanes > 1) != c.f.Packed() {
			t.Errorf("%v packed = %v", c.f, c.f.Packed())
		}
	}
	// Texel count = ceil(n/lanes): the relation that replaces the old
	// TexelsPerElement()==1 stub.
	for n := 0; n <= 9; n++ {
		if got, want := FmtInt8x4.TexelsFor(n), (n+3)/4; got != want {
			t.Errorf("int8x4 TexelsFor(%d) = %d, want %d", n, got, want)
		}
		if got, want := FmtFloat16x2.TexelsFor(n), (n+1)/2; got != want {
			t.Errorf("float16x2 TexelsFor(%d) = %d, want %d", n, got, want)
		}
		if got := FmtInt32.TexelsFor(n); got != n {
			t.Errorf("int32 TexelsFor(%d) = %d", n, got)
		}
	}
	for _, tt := range []ElemType{Uint8, Int8, Uint32, Int32, Float32} {
		if FormatOf(tt).Elem() != tt || FormatOf(tt).Lanes() != 1 {
			t.Errorf("FormatOf(%v) = %v", tt, FormatOf(tt))
		}
		if FmtAuto.Resolve(tt) != FormatOf(tt) {
			t.Errorf("Resolve(%v) mismatch", tt)
		}
	}
	if FmtInt8x4.Resolve(Float32) != FmtInt8x4 {
		t.Error("Resolve must not override an explicit format")
	}
}

// TestInt8x4RoundTripProperty: random int8 slices of every tail residue
// survive Pack→Unpack bit-exactly, and the CPU byte codec matches the
// packed bytes lane for lane.
func TestInt8x4RoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		// Cover lane boundaries and tails: n%4 ∈ {0,1,2,3} all appear.
		n := 1 + rng.Intn(70)
		if trial < 8 {
			n = trial + 1 // pin tiny sizes incl. n < lanes
		}
		src := make([]int8, n)
		for i := range src {
			src[i] = int8(rng.Intn(256) - 128)
		}
		// Always include the extremes somewhere.
		src[0] = -128
		if n > 1 {
			src[1] = 127
		}
		texels := FmtInt8x4.TexelsFor(n)
		raw := make([]byte, texels*4)
		if err := PackInt8x4(raw, src); err != nil {
			t.Fatalf("pack n=%d: %v", n, err)
		}
		for i, v := range src {
			if raw[i] != CPUEncodeInt8x4(v) {
				t.Fatalf("n=%d lane %d: byte %d != CPU encode %d", n, i, raw[i], CPUEncodeInt8x4(v))
			}
			if CPUDecodeInt8x4(raw[i]) != v {
				t.Fatalf("n=%d lane %d: CPU decode mismatch", n, i)
			}
		}
		// Tail lanes of the last texel must encode value 0 (byte 128).
		for i := n; i < texels*4; i++ {
			if raw[i] != 128 {
				t.Fatalf("n=%d tail byte %d = %d, want 128", n, i, raw[i])
			}
		}
		got := make([]int8, n)
		if err := UnpackInt8x4(got, raw); err != nil {
			t.Fatalf("unpack n=%d: %v", n, err)
		}
		for i := range src {
			if got[i] != src[i] {
				t.Fatalf("n=%d round trip lane %d: %d != %d", n, i, got[i], src[i])
			}
		}
	}
}

// TestFloat16x2RoundTripProperty: pack→unpack equals fp16 quantization for
// random values, is idempotent, and is exact for fp16-representable values
// including ±0 and fp16 denormals.
func TestFloat16x2RoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(33) // tails n%2 ∈ {0,1}
		src := make([]float32, n)
		for i := range src {
			src[i] = float32(rng.NormFloat64()) * float32(math.Pow(2, float64(rng.Intn(24)-12)))
		}
		texels := FmtFloat16x2.TexelsFor(n)
		raw := make([]byte, texels*4)
		if err := PackFloat16x2(raw, src); err != nil {
			t.Fatalf("pack n=%d: %v", n, err)
		}
		got := make([]float32, n)
		if err := UnpackFloat16x2(got, raw); err != nil {
			t.Fatalf("unpack n=%d: %v", n, err)
		}
		for i := range src {
			if CPUDecodeFloat16x2(CPUEncodeFloat16x2(src[i])) != got[i] {
				t.Fatalf("CPU mirror disagrees with Pack/Unpack at lane %d", i)
			}
			// Idempotence: a second trip through the format is exact.
			if again := CPUDecodeFloat16x2(CPUEncodeFloat16x2(got[i])); again != got[i] {
				t.Fatalf("round trip not idempotent: %g -> %g", got[i], again)
			}
			// Within fp16 normal range the error is bounded by half an
			// fp16 ULP (11 significant bits, comfortably inside the
			// paper's 15-mantissa-bit budget for the f32 codec).
			af := math.Abs(float64(src[i]))
			if af >= math.Pow(2, -14) && af < 65504 {
				ulp := math.Pow(2, math.Floor(math.Log2(af))-10)
				if math.Abs(float64(got[i]-src[i])) > ulp/2+1e-30 {
					t.Fatalf("lane %d: %g -> %g exceeds half ULP %g", i, src[i], got[i], ulp)
				}
			}
		}
	}

	// Float specials: ±0 keeps its sign, fp16 denormals round-trip exactly.
	pz := CPUDecodeFloat16x2(CPUEncodeFloat16x2(0))
	nz := CPUDecodeFloat16x2(CPUEncodeFloat16x2(float32(math.Copysign(0, -1))))
	if math.Signbit(float64(pz)) || !math.Signbit(float64(nz)) || pz != 0 || nz != 0 {
		t.Errorf("±0 not preserved: +0 -> %g (signbit %v), -0 -> %g (signbit %v)",
			pz, math.Signbit(float64(pz)), nz, math.Signbit(float64(nz)))
	}
	for d := uint16(1); d < 0x400; d += 37 {
		for _, s := range []uint16{0, 0x8000} {
			v := HalfBitsToFloat32(s | d) // fp16 denormal: d·2⁻²⁴
			if got := CPUDecodeFloat16x2(CPUEncodeFloat16x2(v)); got != v {
				t.Fatalf("denormal bits %#x: %g -> %g", s|d, v, got)
			}
		}
	}
	// Smallest denormal and the normal/denormal boundary.
	for _, v := range []float32{
		HalfBitsToFloat32(0x0001),          // 2⁻²⁴
		HalfBitsToFloat32(0x03FF),          // largest denormal
		HalfBitsToFloat32(0x0400),          // smallest normal 2⁻¹⁴
		float32(math.Pow(2, -25)),          // below: rounds to even → 0
		float32(math.Pow(2, -24) * 1.4999), // rounds down to 2⁻²⁴... area
	} {
		got := CPUDecodeFloat16x2(CPUEncodeFloat16x2(v))
		if again := CPUDecodeFloat16x2(CPUEncodeFloat16x2(got)); again != got {
			t.Fatalf("boundary value %g not stable: %g -> %g", v, got, again)
		}
	}
	if got := CPUDecodeFloat16x2(CPUEncodeFloat16x2(float32(math.Pow(2, -25)))); got != 0 {
		t.Errorf("2^-25 should round to zero, got %g", got)
	}
	if got := CPUDecodeFloat16x2(CPUEncodeFloat16x2(1e9)); !math.IsInf(float64(got), 1) {
		t.Errorf("overflow should saturate to +Inf, got %g", got)
	}
}

// TestPackedGLSLSourcesWellFormed pins the generated packed codec GLSL.
func TestPackedGLSLSourcesWellFormed(t *testing.T) {
	dec := GLSLDecoderInt8x4("dec4")
	if want := "vec4 dec4(vec4 t)"; !contains(dec, want) {
		t.Errorf("int8x4 decoder missing %q:\n%s", want, dec)
	}
	enc := GLSLEncoderInt8x4("enc4", EncodeRobust)
	if want := "vec4 enc4(vec4 v)"; !contains(enc, want) {
		t.Errorf("int8x4 encoder missing %q:\n%s", want, enc)
	}
	if !contains(enc, "0.25") {
		t.Error("int8x4 encoder missing robust bias")
	}
	decF := GLSLDecoderFloat16x2("decf")
	for _, want := range []string{"vec2 decf(vec4 t)", "decf_lane", "exp2(-24.0)"} {
		if !contains(decF, want) {
			t.Errorf("float16x2 decoder missing %q:\n%s", want, decF)
		}
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
