package codec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHalfKnownValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits uint16
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-2, 0xC000},
		{0.5, 0x3800},
		{65504, 0x7BFF}, // max finite half
		{float32(math.Inf(1)), 0x7C00},
		{float32(math.Inf(-1)), 0xFC00},
	}
	for _, c := range cases {
		if got := Float32ToHalfBits(c.f); got != c.bits {
			t.Errorf("half(%g) = 0x%04x, want 0x%04x", c.f, got, c.bits)
		}
		if !math.IsInf(float64(c.f), 0) {
			if back := HalfBitsToFloat32(c.bits); back != c.f {
				t.Errorf("unhalf(0x%04x) = %g, want %g", c.bits, back, c.f)
			}
		}
	}
	if !math.IsNaN(float64(HalfBitsToFloat32(0x7E00))) {
		t.Error("half NaN must decode to NaN")
	}
}

func TestHalfOverflowToInf(t *testing.T) {
	if bits := Float32ToHalfBits(100000); bits != 0x7C00 {
		t.Errorf("100000 must overflow to +Inf, got 0x%04x", bits)
	}
	if bits := Float32ToHalfBits(-100000); bits != 0xFC00 {
		t.Errorf("-100000 must overflow to -Inf, got 0x%04x", bits)
	}
}

func TestHalfUnderflowFlushes(t *testing.T) {
	if v := QuantizeFloat16(1e-8); v != 0 {
		t.Errorf("1e-8 must flush to zero through fp16, got %g", v)
	}
}

func TestHalfRoundTripIsIdempotent(t *testing.T) {
	f := func(raw float32) bool {
		if math.IsNaN(float64(raw)) {
			return true
		}
		once := QuantizeFloat16(raw)
		twice := QuantizeFloat16(once)
		return math.Float32bits(once) == math.Float32bits(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestHalfPrecisionIs10Bits(t *testing.T) {
	// fp16 keeps 10 explicit mantissa bits: values within the normal half
	// range must agree with the original in ≥10 mantissa bits and (for
	// random values) not much more — this is the quantitative basis of the
	// paper's claim that half-float extensions are "not enough" compared
	// to its 15-bit RGBA8 float codec.
	worst := 23
	for i := 0; i < 2000; i++ {
		raw := math.Float32frombits(uint32(0x3C000000 + i*0x1234)) // spread over [~0.008, ~few]
		if math.IsNaN(float64(raw)) || raw == 0 {
			continue
		}
		q := QuantizeFloat16(raw)
		if q == 0 || math.IsInf(float64(q), 0) {
			continue
		}
		bits := MantissaBitsAgreement(raw, q)
		if bits < worst {
			worst = bits
		}
	}
	if worst < 10 || worst > 11 {
		t.Errorf("fp16 worst-case agreement = %d bits, want 10-11", worst)
	}
}
