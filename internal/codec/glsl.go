package codec

import (
	"fmt"
	"strings"
)

// EncodeStyle selects how GPU encoders bias the byte values they write to
// gl_FragColor so the framebuffer conversion recovers the exact byte.
type EncodeStyle int

// Encode styles.
const (
	// EncodeRobust writes (b + 0.25)/255: exact under both the GL
	// round-to-nearest rule and the paper's floor rule (eq. 2), with a
	// ±0.25 safety margin against fp32 rounding.
	EncodeRobust EncodeStyle = iota
	// EncodePaperDelta writes b/255 − δ, the paper's literal M⁻¹ from
	// eq. (5) with δ = −1/65280.
	EncodePaperDelta
)

// glslBias returns the bias expression appended to byte values.
func (s EncodeStyle) glslBias() string {
	switch s {
	case EncodePaperDelta:
		// b/255 − δ = (b + 255·(1/65280))/255 = (b + 0.00390625)/255.
		return "0.00390625"
	default:
		return "0.25"
	}
}

// GLSLDecoderSpecials returns a float decoder that additionally preserves
// IEEE special values — the optional behaviour the paper describes in
// §IV-E: "These transformations can optionally preserve special values
// such as infinities and not-numbers (NaNs) … by checking the exponent
// value and using the corresponding constant." An all-ones exponent byte
// decodes to ±Inf (synthesized portably as 1.0/0.0; GLSL ES has no
// infinity literal) or, with a non-zero mantissa, to NaN (0.0/0.0).
func GLSLDecoderSpecials(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "float %s(vec4 t) {\n", name)
	b.WriteString("\tvec4 b = floor(t * 255.0 + vec4(0.5));\n")
	b.WriteString("\tif (b.a == 0.0) { return 0.0; }\n")
	b.WriteString("\tfloat sgn = b.b < 128.0 ? 1.0 : -1.0;\n")
	b.WriteString("\tfloat m2 = b.b < 128.0 ? b.b : b.b - 128.0;\n")
	b.WriteString("\tfloat mant = (b.r + b.g * 256.0 + m2 * 65536.0) / 8388608.0;\n")
	b.WriteString("\tif (b.a == 255.0) {\n")
	b.WriteString("\t\tif (mant > 0.0) { return 0.0 / 0.0; }\n")
	b.WriteString("\t\treturn sgn * (1.0 / 0.0);\n")
	b.WriteString("\t}\n")
	b.WriteString("\treturn sgn * (1.0 + mant) * exp2(b.a - 127.0);\n")
	b.WriteString("}\n")
	return b.String()
}

// GLSLEncoderSpecials returns a float encoder that preserves IEEE special
// values (§IV-E): infinities store exponent byte 255 with a zero mantissa,
// NaN stores exponent 255 with a non-zero mantissa. Finite values follow
// the standard encoding.
func GLSLEncoderSpecials(name string, style EncodeStyle) string {
	bias := style.glslBias()
	var b strings.Builder
	fmt.Fprintf(&b, "vec4 %s(float v) {\n", name)
	b.WriteString("\tif (v != v) {\n") // NaN is the only value unequal to itself
	fmt.Fprintf(&b, "\t\treturn (vec4(1.0, 0.0, 0.0, 255.0) + vec4(%s)) / 255.0;\n", bias)
	b.WriteString("\t}\n")
	b.WriteString("\tif (v == 1.0 / 0.0) {\n")
	fmt.Fprintf(&b, "\t\treturn (vec4(0.0, 0.0, 0.0, 255.0) + vec4(%s)) / 255.0;\n", bias)
	b.WriteString("\t}\n")
	b.WriteString("\tif (v == -1.0 / 0.0) {\n")
	fmt.Fprintf(&b, "\t\treturn (vec4(0.0, 0.0, 128.0, 255.0) + vec4(%s)) / 255.0;\n", bias)
	b.WriteString("\t}\n")
	b.WriteString("\tif (v == 0.0) { return vec4(0.0); }\n")
	b.WriteString("\tfloat sgn = v < 0.0 ? 1.0 : 0.0;\n")
	b.WriteString("\tfloat af = abs(v);\n")
	b.WriteString("\tfloat e = floor(log2(af));\n")
	b.WriteString("\tfloat m = af * exp2(-e);\n")
	b.WriteString("\tif (m < 1.0) { m = m * 2.0; e = e - 1.0; }\n")
	b.WriteString("\tif (m >= 2.0) { m = m * 0.5; e = e + 1.0; }\n")
	b.WriteString("\tfloat mant = floor((m - 1.0) * 8388608.0 + 0.5);\n")
	b.WriteString("\tif (mant >= 8388608.0) { mant = 0.0; e = e + 1.0; }\n")
	b.WriteString("\tfloat b0 = mod(mant, 256.0);\n")
	b.WriteString("\tfloat r1 = floor((mant - b0) / 256.0);\n")
	b.WriteString("\tfloat b1 = mod(r1, 256.0);\n")
	b.WriteString("\tfloat b2 = floor((r1 - b1) / 256.0) + sgn * 128.0;\n")
	b.WriteString("\tfloat b3 = clamp(e + 127.0, 1.0, 254.0);\n")
	fmt.Fprintf(&b, "\treturn (vec4(b0, b1, b2, b3) + vec4(%s)) / 255.0;\n", bias)
	b.WriteString("}\n")
	return b.String()
}

// GLSLDecoder returns the GLSL ES function `float <name>(vec4 texel)` that
// reconstructs a value of type t from a sampled RGBA texel (paper §IV:
// M, M2, eq. 6 and the float reconstruction).
func GLSLDecoder(t ElemType, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "float %s(vec4 t) {\n", name)
	switch t {
	case Uint8:
		// M: [0,1] → [0,255]. Robust byte reconstruction (DESIGN.md §6
		// documents the relation to the paper's ⌊f+δ⌋·255 form).
		b.WriteString("\treturn floor(t.r * 255.0 + 0.5);\n")
	case Int8:
		// M2 (§IV-B): two's complement adjustment.
		b.WriteString("\tfloat b = floor(t.r * 255.0 + 0.5);\n")
		b.WriteString("\treturn b < 128.0 ? b : b - 256.0;\n")
	case Uint32:
		// Eq. (6): Σ b_i·256^i. Exact up to 2^24 (fp32 mantissa), the
		// paper's §IV-C precision statement.
		b.WriteString("\tvec4 b = floor(t * 255.0 + vec4(0.5));\n")
		b.WriteString("\treturn b.r + b.g * 256.0 + b.b * 65536.0 + b.a * 16777216.0;\n")
	case Int32:
		// §IV-D, restructured to stay inside fp32: small negative values
		// reconstruct exactly via two's-complement negation instead of
		// subtracting 256^3·… (which overflows the 24-bit mantissa).
		b.WriteString("\tvec4 b = floor(t * 255.0 + vec4(0.5));\n")
		b.WriteString("\tif (b.a < 128.0) {\n")
		b.WriteString("\t\treturn b.r + b.g * 256.0 + b.b * 65536.0 + b.a * 16777216.0;\n")
		b.WriteString("\t}\n")
		b.WriteString("\tvec4 nb = vec4(255.0) - b;\n")
		b.WriteString("\treturn -(nb.r + nb.g * 256.0 + nb.b * 65536.0 + nb.a * 16777216.0 + 1.0);\n")
	case Float32:
		// §IV-E with the Fig. 2 byte layout: A = exponent byte,
		// B = sign|mantissa[22:16], G/R = mantissa[15:0]. exp2 runs on the
		// SFU — the source of the paper's ~15-bit accuracy.
		b.WriteString("\tvec4 b = floor(t * 255.0 + vec4(0.5));\n")
		b.WriteString("\tif (b.a == 0.0) { return 0.0; }\n")
		b.WriteString("\tfloat sgn = b.b < 128.0 ? 1.0 : -1.0;\n")
		b.WriteString("\tfloat m2 = b.b < 128.0 ? b.b : b.b - 128.0;\n")
		b.WriteString("\tfloat mant = (b.r + b.g * 256.0 + m2 * 65536.0) / 8388608.0;\n")
		b.WriteString("\treturn sgn * (1.0 + mant) * exp2(b.a - 127.0);\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// GLSLEncoder returns the GLSL ES function `vec4 <name>(float v)` that
// packs a value of type t into the vec4 written to gl_FragColor, such that
// the framebuffer byte conversion stores the intended bytes (challenge #6).
func GLSLEncoder(t ElemType, name string, style EncodeStyle) string {
	bias := style.glslBias()
	var b strings.Builder
	fmt.Fprintf(&b, "vec4 %s(float v) {\n", name)
	switch t {
	case Uint8:
		fmt.Fprintf(&b, "\tfloat b0 = clamp(floor(v + 0.5), 0.0, 255.0);\n")
		fmt.Fprintf(&b, "\treturn vec4(b0 + %s, %s, %s, 255.0 + %s) / 255.0;\n", bias, bias, bias, bias)
	case Int8:
		b.WriteString("\tfloat c = clamp(floor(v + 0.5), -128.0, 127.0);\n")
		b.WriteString("\tfloat b0 = c >= 0.0 ? c : c + 256.0;\n")
		fmt.Fprintf(&b, "\treturn vec4(b0 + %s, %s, %s, 255.0 + %s) / 255.0;\n", bias, bias, bias, bias)
	case Uint32:
		// Eq. (7)/(8): remainders of powers of 256. v must be integral
		// (≤ 2^24 for exactness); mod/floor on exact integers are exact.
		b.WriteString("\tfloat b0 = mod(v, 256.0);\n")
		b.WriteString("\tfloat r1 = floor((v - b0) / 256.0);\n")
		b.WriteString("\tfloat b1 = mod(r1, 256.0);\n")
		b.WriteString("\tfloat r2 = floor((r1 - b1) / 256.0);\n")
		b.WriteString("\tfloat b2 = mod(r2, 256.0);\n")
		b.WriteString("\tfloat b3 = floor((r2 - b2) / 256.0);\n")
		fmt.Fprintf(&b, "\treturn (vec4(b0, b1, b2, b3) + vec4(%s)) / 255.0;\n", bias)
	case Int32:
		// Negative path encodes w = −(v+1) and complements the bytes,
		// staying within fp32 (see decoder note).
		b.WriteString("\tfloat neg = v < 0.0 ? 1.0 : 0.0;\n")
		b.WriteString("\tfloat w = v < 0.0 ? -(v + 1.0) : v;\n")
		b.WriteString("\tfloat b0 = mod(w, 256.0);\n")
		b.WriteString("\tfloat r1 = floor((w - b0) / 256.0);\n")
		b.WriteString("\tfloat b1 = mod(r1, 256.0);\n")
		b.WriteString("\tfloat r2 = floor((r1 - b1) / 256.0);\n")
		b.WriteString("\tfloat b2 = mod(r2, 256.0);\n")
		b.WriteString("\tfloat b3 = floor((r2 - b2) / 256.0);\n")
		b.WriteString("\tvec4 bb = vec4(b0, b1, b2, b3);\n")
		b.WriteString("\tif (neg == 1.0) { bb = vec4(255.0) - bb; }\n")
		fmt.Fprintf(&b, "\treturn (bb + vec4(%s)) / 255.0;\n", bias)
	case Float32:
		// §IV-E reverse transformation with the robustness guard: log2 is
		// an SFU approximation, so the computed exponent can be off by one
		// near powers of two; the guard renormalizes the mantissa.
		b.WriteString("\tif (v == 0.0) { return vec4(0.0); }\n")
		b.WriteString("\tfloat sgn = v < 0.0 ? 1.0 : 0.0;\n")
		b.WriteString("\tfloat af = abs(v);\n")
		b.WriteString("\tfloat e = floor(log2(af));\n")
		b.WriteString("\tfloat m = af * exp2(-e);\n")
		b.WriteString("\tif (m < 1.0) { m = m * 2.0; e = e - 1.0; }\n")
		b.WriteString("\tif (m >= 2.0) { m = m * 0.5; e = e + 1.0; }\n")
		b.WriteString("\tfloat mant = floor((m - 1.0) * 8388608.0 + 0.5);\n")
		b.WriteString("\tif (mant >= 8388608.0) { mant = 0.0; e = e + 1.0; }\n")
		b.WriteString("\tfloat b0 = mod(mant, 256.0);\n")
		b.WriteString("\tfloat r1 = floor((mant - b0) / 256.0);\n")
		b.WriteString("\tfloat b1 = mod(r1, 256.0);\n")
		b.WriteString("\tfloat b2 = floor((r1 - b1) / 256.0) + sgn * 128.0;\n")
		b.WriteString("\tfloat b3 = clamp(e + 127.0, 0.0, 255.0);\n")
		fmt.Fprintf(&b, "\treturn (vec4(b0, b1, b2, b3) + vec4(%s)) / 255.0;\n", bias)
	}
	b.WriteString("}\n")
	return b.String()
}
