package codec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"glescompute/internal/glsl"
	"glescompute/internal/shader"
)

func TestFloatGPUBitsRoundTrip(t *testing.T) {
	f := func(bits uint32) bool {
		v := math.Float32frombits(bits)
		back := GPUBitsToFloat(FloatToGPUBits(v))
		// NaNs compare unequal; compare bit patterns instead.
		return math.Float32bits(back) == bits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatByteLayoutFig2(t *testing.T) {
	// Paper Fig. 2: 1.0 = sign 0, exponent 127, mantissa 0.
	// GPU layout: b3 = exponent = 127 = 0x7F, b2 = sign|m22..16 = 0,
	// b1 = b0 = 0.
	var dst [4]byte
	if err := PackFloat32(dst[:], []float32{1.0}); err != nil {
		t.Fatal(err)
	}
	if dst != [4]byte{0x00, 0x00, 0x00, 0x7F} {
		t.Errorf("1.0 packs to % x, want 00 00 00 7f", dst)
	}
	if err := PackFloat32(dst[:], []float32{-2.0}); err != nil {
		t.Fatal(err)
	}
	// -2.0: exponent 128 = 0x80, sign bit set in b2 (0x80).
	if dst != [4]byte{0x00, 0x00, 0x80, 0x80} {
		t.Errorf("-2.0 packs to % x, want 00 00 80 80", dst)
	}
	// 0.15625 = 1.25 * 2^-3: exponent 124=0x7C, mantissa 0x200000
	// (m22..16 = 0x20).
	if err := PackFloat32(dst[:], []float32{0.15625}); err != nil {
		t.Fatal(err)
	}
	if dst != [4]byte{0x00, 0x00, 0x20, 0x7C} {
		t.Errorf("0.15625 packs to % x, want 00 00 20 7c", dst)
	}
}

func TestPackUnpackFloat32(t *testing.T) {
	vals := []float32{0, 1, -1, 3.14159, -2.5e-8, 1e20, 65536.125,
		float32(math.Inf(1)), float32(math.Inf(-1)), math.MaxFloat32, math.SmallestNonzeroFloat32}
	buf := make([]byte, len(vals)*4)
	if err := PackFloat32(buf, vals); err != nil {
		t.Fatal(err)
	}
	out := make([]float32, len(vals))
	if err := UnpackFloat32(out, buf); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Float32bits(out[i]) != math.Float32bits(vals[i]) {
			t.Errorf("value %d: %g -> %g", i, vals[i], out[i])
		}
	}
}

func TestPackUnpackIntegers(t *testing.T) {
	us := []uint32{0, 1, 255, 256, 65535, 1 << 24, math.MaxUint32}
	buf := make([]byte, len(us)*4)
	if err := PackUint32(buf, us); err != nil {
		t.Fatal(err)
	}
	outU := make([]uint32, len(us))
	if err := UnpackUint32(outU, buf); err != nil {
		t.Fatal(err)
	}
	for i := range us {
		if outU[i] != us[i] {
			t.Errorf("uint %d: %d -> %d", i, us[i], outU[i])
		}
	}

	is := []int32{0, 1, -1, 127, -128, math.MaxInt32, math.MinInt32}
	if err := PackInt32(buf, is); err != nil {
		t.Fatal(err)
	}
	outI := make([]int32, len(is))
	if err := UnpackInt32(outI, buf); err != nil {
		t.Fatal(err)
	}
	for i := range is {
		if outI[i] != is[i] {
			t.Errorf("int %d: %d -> %d", i, is[i], outI[i])
		}
	}
}

func TestPackUnpackBytes(t *testing.T) {
	u8 := []uint8{0, 1, 127, 128, 255}
	buf := make([]byte, len(u8)*4)
	if err := PackUint8(buf, u8); err != nil {
		t.Fatal(err)
	}
	outU := make([]uint8, len(u8))
	if err := UnpackUint8(outU, buf); err != nil {
		t.Fatal(err)
	}
	for i := range u8 {
		if outU[i] != u8[i] {
			t.Errorf("u8 %d: %d -> %d", i, u8[i], outU[i])
		}
	}
	i8 := []int8{0, 1, -1, 127, -128}
	if err := PackInt8(buf, i8); err != nil {
		t.Fatal(err)
	}
	outI := make([]int8, len(i8))
	if err := UnpackInt8(outI, buf); err != nil {
		t.Fatal(err)
	}
	for i := range i8 {
		if outI[i] != i8[i] {
			t.Errorf("i8 %d: %d -> %d", i, i8[i], outI[i])
		}
	}
}

func TestPackSizeErrors(t *testing.T) {
	if err := PackFloat32(make([]byte, 3), []float32{1}); err == nil {
		t.Error("short dst must error")
	}
	if err := UnpackFloat32(make([]float32, 1), make([]byte, 3)); err == nil {
		t.Error("short src must error")
	}
	if err := PackUint32(make([]byte, 3), []uint32{1}); err == nil {
		t.Error("short dst must error")
	}
}

func TestCPUEncodeDecodeFloatExact(t *testing.T) {
	// Paper §V: "the same transformations on the CPU are precise" — the
	// float64 reference of the GLSL math round-trips float32 exactly.
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
		if v != 0 && math.Abs(float64(v)) < 1.1754944e-38 {
			return true // denormals flush to zero by design
		}
		b0, b1, b2, b3 := CPUEncodeFloat(float64(v))
		back := CPUDecodeFloat(b0, b1, b2, b3)
		return float32(back) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestMantissaBitsAgreement(t *testing.T) {
	if got := MantissaBitsAgreement(1.0, 1.0); got != 23 {
		t.Errorf("identical values: %d bits, want 23", got)
	}
	// Flip the lowest mantissa bit: 22 bits agree.
	v := math.Float32frombits(math.Float32bits(1.5) ^ 1)
	if got := MantissaBitsAgreement(1.5, v); got != 22 {
		t.Errorf("lowest bit flipped: %d bits, want 22", got)
	}
	// Flip bit 8 (15 high bits agree).
	v = math.Float32frombits(math.Float32bits(1.5) ^ (1 << 7))
	if got := MantissaBitsAgreement(1.5, v); got != 15 {
		t.Errorf("bit 7 flipped: %d bits, want 15", got)
	}
	if got := MantissaBitsAgreement(1.0, 2.0); got != 0 {
		t.Errorf("different exponents: %d bits, want 0", got)
	}
}

// ---- GPU-side round trips through the GLSL executor ----

// codecFragmentSource builds a fragment shader that decodes a value from a
// uniform-supplied texel, optionally transforms it, and re-encodes it.
func codecFragmentSource(t ElemType, style EncodeStyle, transform string) string {
	if transform == "" {
		transform = "v"
	}
	return "precision highp float;\n" +
		"uniform vec4 u_texel;\n" +
		GLSLDecoder(t, "gc_decode") +
		GLSLEncoder(t, "gc_encode", style) +
		"void main() {\n" +
		"\tfloat v = gc_decode(u_texel);\n" +
		"\tgl_FragColor = gc_encode(" + transform + ");\n" +
		"}\n"
}

// runCodecShader executes the codec shader once for the given input texel
// bytes and returns the framebuffer bytes after conversion.
func runCodecShader(t *testing.T, src string, texel [4]byte, sfu shader.SFUConfig, conv string) [4]byte {
	t.Helper()
	prog, errs := glsl.CompileSource(src, glsl.StageFragment, glsl.CheckOptions{})
	if errs.Err() != nil {
		t.Fatalf("codec shader compile failed:\n%v\nsource:\n%s", errs, src)
	}
	ex := shader.NewExec(prog, nil, sfu)
	// Texel as the shader would see it: eq. (1) f = c/255.
	ex.SetGlobal(prog.LookupUniform("u_texel"), shader.Vec4Val(
		float32(texel[0])/255, float32(texel[1])/255,
		float32(texel[2])/255, float32(texel[3])/255))
	if err := ex.InitGlobals(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	out := ex.Builtins[glsl.BVSlotFragColor].Vec4()
	var res [4]byte
	for i, f := range out {
		// Framebuffer conversion.
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		switch conv {
		case "floor": // paper eq. (2)
			res[i] = byte(minI(int(f*255), 255))
		default: // GL round to nearest
			res[i] = byte(minI(int(f*255+0.5), 255))
		}
	}
	return res
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestGPUCodecRoundTripUint8(t *testing.T) {
	src := codecFragmentSource(Uint8, EncodeRobust, "")
	for v := 0; v < 256; v++ {
		var texel [4]byte
		if err := PackUint8(texel[:], []uint8{uint8(v)}); err != nil {
			t.Fatal(err)
		}
		out := runCodecShader(t, src, texel, shader.DefaultSFU, "round")
		var got [1]uint8
		if err := UnpackUint8(got[:], out[:]); err != nil {
			t.Fatal(err)
		}
		if got[0] != uint8(v) {
			t.Fatalf("u8 %d round-tripped to %d", v, got[0])
		}
	}
}

func TestGPUCodecRoundTripInt8(t *testing.T) {
	src := codecFragmentSource(Int8, EncodeRobust, "")
	for v := -128; v < 128; v++ {
		var texel [4]byte
		if err := PackInt8(texel[:], []int8{int8(v)}); err != nil {
			t.Fatal(err)
		}
		out := runCodecShader(t, src, texel, shader.DefaultSFU, "round")
		var got [1]int8
		if err := UnpackInt8(got[:], out[:]); err != nil {
			t.Fatal(err)
		}
		if got[0] != int8(v) {
			t.Fatalf("i8 %d round-tripped to %d", v, got[0])
		}
	}
}

func TestGPUCodecRoundTripUint32Within24Bits(t *testing.T) {
	src := codecFragmentSource(Uint32, EncodeRobust, "")
	rng := rand.New(rand.NewSource(42))
	vals := []uint32{0, 1, 255, 256, 65535, 65536, 1<<24 - 1, 1 << 24}
	for i := 0; i < 200; i++ {
		vals = append(vals, uint32(rng.Intn(1<<24)))
	}
	for _, v := range vals {
		var texel [4]byte
		if err := PackUint32(texel[:], []uint32{v}); err != nil {
			t.Fatal(err)
		}
		out := runCodecShader(t, src, texel, shader.DefaultSFU, "round")
		var got [1]uint32
		if err := UnpackUint32(got[:], out[:]); err != nil {
			t.Fatal(err)
		}
		if got[0] != v {
			t.Fatalf("u32 %d round-tripped to %d", v, got[0])
		}
	}
}

func TestGPUCodecRoundTripInt32Within24Bits(t *testing.T) {
	src := codecFragmentSource(Int32, EncodeRobust, "")
	rng := rand.New(rand.NewSource(43))
	vals := []int32{0, 1, -1, 127, -128, 255, -255, 65536, -65536,
		1<<24 - 1, -(1<<24 - 1)}
	for i := 0; i < 200; i++ {
		vals = append(vals, int32(rng.Intn(1<<25)-(1<<24)))
	}
	for _, v := range vals {
		var texel [4]byte
		if err := PackInt32(texel[:], []int32{v}); err != nil {
			t.Fatal(err)
		}
		out := runCodecShader(t, src, texel, shader.DefaultSFU, "round")
		var got [1]int32
		if err := UnpackInt32(got[:], out[:]); err != nil {
			t.Fatal(err)
		}
		if got[0] != v {
			t.Fatalf("i32 %d round-tripped to %d", v, got[0])
		}
	}
}

func TestGPUCodecUint24Boundary(t *testing.T) {
	// Experiment P2: exactness holds to 2^24 and degrades past it.
	src := codecFragmentSource(Uint32, EncodeRobust, "")
	exact := func(v uint32) bool {
		var texel [4]byte
		if err := PackUint32(texel[:], []uint32{v}); err != nil {
			t.Fatal(err)
		}
		out := runCodecShader(t, src, texel, shader.DefaultSFU, "round")
		var got [1]uint32
		if err := UnpackUint32(got[:], out[:]); err != nil {
			t.Fatal(err)
		}
		return got[0] == v
	}
	for _, v := range []uint32{1<<24 - 3, 1<<24 - 2, 1<<24 - 1, 1 << 24} {
		if !exact(v) {
			t.Errorf("value %d (≤2^24) must round-trip exactly", v)
		}
	}
	// 2^24+1 is not representable in fp32: cannot round-trip.
	if exact(1<<24 + 1) {
		t.Error("2^24+1 should NOT round-trip (fp32 mantissa limit, paper §IV-C)")
	}
}

func TestGPUCodecFloatPrecisionPaperP1(t *testing.T) {
	// Experiment P1: with the VideoCore-modeled SFU the float round trip
	// is accurate in the ~15 most significant mantissa bits; with an exact
	// SFU it is bit-exact.
	src := codecFragmentSource(Float32, EncodeRobust, "")
	rng := rand.New(rand.NewSource(7))
	minBitsSFU := 23
	for i := 0; i < 300; i++ {
		v := float32((rng.Float64()*2 - 1) * math.Pow(10, float64(rng.Intn(12)-6)))
		if v == 0 {
			continue
		}
		var texel [4]byte
		if err := PackFloat32(texel[:], []float32{v}); err != nil {
			t.Fatal(err)
		}

		// Exact SFU: bit-exact round trip.
		outExact := runCodecShader(t, src, texel, shader.ExactSFU, "round")
		var gotExact [1]float32
		if err := UnpackFloat32(gotExact[:], outExact[:]); err != nil {
			t.Fatal(err)
		}
		if gotExact[0] != v {
			t.Fatalf("exact-SFU round trip failed: %g -> %g", v, gotExact[0])
		}

		// Modeled SFU: measure agreement.
		outHW := runCodecShader(t, src, texel, shader.DefaultSFU, "round")
		var gotHW [1]float32
		if err := UnpackFloat32(gotHW[:], outHW[:]); err != nil {
			t.Fatal(err)
		}
		bits := MantissaBitsAgreement(v, gotHW[0])
		if bits < minBitsSFU {
			minBitsSFU = bits
		}
	}
	if minBitsSFU < 13 || minBitsSFU > 20 {
		t.Errorf("modeled-SFU worst-case mantissa agreement = %d bits; expected ~15 (13..20)", minBitsSFU)
	}
	t.Logf("worst-case mantissa agreement with modeled SFU: %d bits (paper reports 15)", minBitsSFU)
}

func TestGPUCodecBothConversionModes(t *testing.T) {
	// Ablation A3: both encoder styles must survive both framebuffer
	// conversion rules for integer data.
	for _, style := range []EncodeStyle{EncodeRobust, EncodePaperDelta} {
		src := codecFragmentSource(Uint32, style, "")
		for _, conv := range []string{"round", "floor"} {
			for _, v := range []uint32{0, 1, 255, 77777, 1<<24 - 1} {
				var texel [4]byte
				if err := PackUint32(texel[:], []uint32{v}); err != nil {
					t.Fatal(err)
				}
				out := runCodecShader(t, src, texel, shader.DefaultSFU, conv)
				var got [1]uint32
				if err := UnpackUint32(got[:], out[:]); err != nil {
					t.Fatal(err)
				}
				if got[0] != v {
					t.Errorf("style=%d conv=%s: %d -> %d", style, conv, v, got[0])
				}
			}
		}
	}
}

func TestGPUCodecComputeThenEncode(t *testing.T) {
	// End-to-end "kernel": decode, double, re-encode (integer path stays
	// exact; this is what the paper's sum kernel does per element).
	src := codecFragmentSource(Int32, EncodeRobust, "v * 2.0")
	for _, v := range []int32{0, 21, -1000, 4194303} {
		var texel [4]byte
		if err := PackInt32(texel[:], []int32{v}); err != nil {
			t.Fatal(err)
		}
		out := runCodecShader(t, src, texel, shader.DefaultSFU, "round")
		var got [1]int32
		if err := UnpackInt32(got[:], out[:]); err != nil {
			t.Fatal(err)
		}
		if got[0] != v*2 {
			t.Fatalf("2*%d = %d, got %d", v, v*2, got[0])
		}
	}
}

func TestDeltaValue(t *testing.T) {
	// Eq. (3) as derived: 1/255 + δ = 1/256 → δ = −1/65280.
	want := -1.0 / 65280.0
	if math.Abs(Delta-want) > 1e-18 {
		t.Errorf("Delta = %g, want %g", Delta, want)
	}
}
