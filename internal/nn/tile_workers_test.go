package nn

import (
	"testing"

	"glescompute/internal/core"
)

// TestLeNetTiledWorkersBitIdentical runs the fused int8 LeNet — the
// heaviest real workload in the repo, whose mega-kernels are exactly what
// the specialized VM dispatch and tiled rasterizer exist for — once per
// rasterizer worker count, and requires every layer tap and the final
// output bit-identical to the sequential (workers=1) build. The model's
// fragment passes cover conv/pool/dense/rescale codecs, fusion epilogues
// and the vec4 int8 packing, so a tile-boundary bug anywhere in that
// pipeline fails here even if the synthetic corpus scenes miss it.
func TestLeNetTiledWorkersBitIdentical(t *testing.T) {
	m := DemoLeNetInt8(7)
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	const batch = 2
	input := DemoInputInt8(8, batch)

	var ref []interface{}
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := core.Config{}
		cfg.Exec.RasterWorkers = workers
		dev, err := core.Open(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		net, err := m.Build(dev, batch, true)
		if err != nil {
			dev.Close()
			t.Fatalf("workers=%d: %v", workers, err)
		}
		res, err := net.Run(input)
		net.Close()
		dev.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if workers == 1 {
			ref = res.Taps
			continue
		}
		for li, info := range m.Layers() {
			if !Int8Equal(res.Taps[li].([]int8), ref[li].([]int8)) {
				t.Errorf("workers=%d layer %s (%s): differs from sequential build",
					workers, info.Name, info.Kind)
			}
		}
	}
}
