package nn

import (
	"math"
	"math/rand"

	"glescompute/internal/codec"
)

// Deterministic demo models shared by the nn tests, the N1 experiment and
// examples/nn-infer: a LeNet-scale MNIST-style classifier in both numeric
// configurations. Weights are seeded pseudo-random (the repo validates
// inference mechanics and performance, not trained accuracy — as the
// paper validates kernels, not applications).

// DemoShape is the LeNet-scale input: a 28×28 single-channel image.
var DemoShape = Shape{H: 28, W: 28, C: 1}

// DemoClasses is the classifier's output width.
const DemoClasses = 10

// DemoLeNetFloat32 builds the float32 LeNet-scale model:
//
//	conv 5×5×1→6 · relu · pool 2×2 · conv 5×5×6→16 · relu · pool 2×2 ·
//	dense 256→120 · relu · dense 120→84 · relu · dense 84→10 · softmax
//
// Weights are uniform in ±1/√fanin (logits land in a softmax-friendly
// range), biases in ±0.1.
func DemoLeNetFloat32(seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	w := func(n, fan int) []float32 {
		s := float32(1 / math.Sqrt(float64(fan)))
		out := make([]float32, n)
		for i := range out {
			out[i] = (rng.Float32()*2 - 1) * s
		}
		return out
	}
	b := func(n int) []float32 {
		out := make([]float32, n)
		for i := range out {
			out[i] = (rng.Float32()*2 - 1) * 0.1
		}
		return out
	}
	return NewModel(codec.Float32, DemoShape).
		Conv2D("conv1", 5, 5, 6, 1, w(25*6, 25), b(6)).
		ReLU("relu1").
		MaxPool("pool1", 2, 2, 2).
		Conv2D("conv2", 5, 5, 16, 1, w(150*16, 150), b(16)).
		ReLU("relu2").
		MaxPool("pool2", 2, 2, 2).
		Dense("fc1", 120, w(256*120, 256), b(120)).
		ReLU("relu3").
		Dense("fc2", 84, w(120*84, 120), b(84)).
		ReLU("relu4").
		Dense("fc3", DemoClasses, w(84*DemoClasses, 84), b(DemoClasses)).
		Softmax("softmax")
}

// DemoLeNetInt32 builds the integer LeNet-scale model: same topology (no
// softmax — integer classifiers argmax raw logits) with Rescale
// requantization layers keeping every accumulator inside the GPU's exact
// ±2^24 window, so the whole network is bit-identical to the CPU
// reference. Weights are uniform in [-2, 2], biases in [-8, 8]; inputs
// must be in [0, 15] (see DemoInputInt32).
func DemoLeNetInt32(seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	w := func(n int) []int32 {
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(rng.Intn(5) - 2)
		}
		return out
	}
	b := func(n int) []int32 {
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(rng.Intn(17) - 8)
		}
		return out
	}
	// Worst-case accumulator bounds (input ≤ 15, |w| ≤ 2, |bias| ≤ 8):
	//   conv1 ≤ 25·15·2+8 = 758      conv2 ≤ 150·758·2+8 ≈ 2.3e5
	//   ≫6 → 3553                    fc1 ≤ 256·3553·2+8 ≈ 1.8e6
	//   ≫6 → 28425                   fc2 ≤ 120·28425·2+8 ≈ 6.8e6
	//   ≫7 → 53300                   fc3 ≤ 84·53300·2+8 ≈ 9.0e6 < 2^24 ✓
	return NewModel(codec.Int32, DemoShape).
		Conv2D("conv1", 5, 5, 6, 1, w(25*6), b(6)).
		ReLU("relu1").
		MaxPool("pool1", 2, 2, 2).
		Conv2D("conv2", 5, 5, 16, 1, w(150*16), b(16)).
		ReLU("relu2").
		MaxPool("pool2", 2, 2, 2).
		Rescale("requant1", 6).
		Dense("fc1", 120, w(256*120), b(120)).
		ReLU("relu3").
		Rescale("requant2", 6).
		Dense("fc2", 84, w(120*84), b(84)).
		ReLU("relu4").
		Rescale("requant3", 7).
		Dense("fc3", DemoClasses, w(84*DemoClasses), b(DemoClasses))
}

// DemoLeNetInt8 builds the quantized LeNet-scale model: the int32
// topology with int8 weights and a Rescale requantization folded after
// every matmul, keeping each layer's output inside int8. Weights are
// uniform in [-2, 2], biases in [-8, 8]; inputs must be in [0, 15]
// (DemoInputInt8).
//
// Post-shift worst-case bounds (input ≤ 15, |w| ≤ 2, |bias| ≤ 8):
//
//	conv1 ≤ 25·15·2+8 = 758      ≫4 → 47
//	conv2 ≤ 150·47·2+8 = 14108   ≫7 → 110
//	fc1   ≤ 256·110·2+8 = 56328  ≫9 → 110
//	fc2   ≤ 120·110·2+8 = 26408  ≫8 → 103
//	fc3   ≤ 84·103·2+8 = 17312   ≫8 → 67
//
// Every post-shift value fits int8 and every accumulator stays far
// inside the exact ±2^24 window, so GPU inference is bit-identical to
// the CPU reference in both the scalar and the vec4-packed lowering.
func DemoLeNetInt8(seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	w := func(n int) []int8 {
		out := make([]int8, n)
		for i := range out {
			out[i] = int8(rng.Intn(5) - 2)
		}
		return out
	}
	b := func(n int) []int8 {
		out := make([]int8, n)
		for i := range out {
			out[i] = int8(rng.Intn(17) - 8)
		}
		return out
	}
	return NewModel(codec.Int8, DemoShape).
		Conv2D("conv1", 5, 5, 6, 1, w(25*6), b(6)).
		Rescale("requant1", 4).
		ReLU("relu1").
		MaxPool("pool1", 2, 2, 2).
		Conv2D("conv2", 5, 5, 16, 1, w(150*16), b(16)).
		Rescale("requant2", 7).
		ReLU("relu2").
		MaxPool("pool2", 2, 2, 2).
		Dense("fc1", 120, w(256*120), b(120)).
		Rescale("requant3", 9).
		ReLU("relu3").
		Dense("fc2", 84, w(120*84), b(84)).
		Rescale("requant4", 8).
		ReLU("relu4").
		Dense("fc3", DemoClasses, w(84*DemoClasses), b(DemoClasses)).
		Rescale("requant5", 8)
}

// DemoInputFloat32 generates batch seeded pseudo-images in [0, 1).
func DemoInputFloat32(seed int64, batch int) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, batch*DemoShape.N())
	for i := range out {
		out[i] = rng.Float32()
	}
	return out
}

// DemoInputInt32 generates batch seeded pseudo-images in [0, 15] (the
// 4-bit intensity range the integer model's accumulator budget assumes).
func DemoInputInt32(seed int64, batch int) []int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int32, batch*DemoShape.N())
	for i := range out {
		out[i] = int32(rng.Intn(16))
	}
	return out
}

// DemoInputInt8 generates batch seeded pseudo-images in [0, 15] for the
// quantized model (same intensity range and budget as DemoInputInt32).
func DemoInputInt8(seed int64, batch int) []int8 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int8, batch*DemoShape.N())
	for i := range out {
		out[i] = int8(rng.Intn(16))
	}
	return out
}
