package nn

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"glescompute/internal/codec"
	"glescompute/internal/core"
	"glescompute/internal/obs"
	"glescompute/internal/sched"
)

// Service serves a Model's inference over a sched.Queue device pool.
// Requests ride the queue as Direct jobs: each submission runs the whole
// device-resident network on whichever pooled device the scheduler picks,
// against that device's lazily-built Network (weights uploaded once per
// device and batch size, then resident).
//
// Two submission granularities mirror the serving trade-off the mobile
// inference engines make: Infer runs one image per launch (lowest
// latency), InferBatch coalesces several images into one batch-B network
// execution, amortizing each pass's fixed launch costs across the batch —
// model-level request batching, the CNNdroid regime. Outputs are
// bit-identical either way (see TestBatchedMatchesSolo).
// Requests inherit the queue's fault tolerance: configure SetRetry and the
// service resubmits faulted inferences to a healthy device (inference is
// idempotent — a pure function of the input image — so retried requests
// return bit-identical outputs). Per-request attempt counts surface in the
// completed job's Stats().Attempts. When the scheduler replaces a dead
// device, the fresh *core.Device keys a new cache slot, so weights are
// re-uploaded and pipelines rebuilt on first use — exactly the cold-start
// path a new pool device takes.
type Service struct {
	model *Model
	q     *sched.Queue
	nets  sync.Map // netKey -> *Network
	key   string   // coalescing group key (the service's identity)

	mu        sync.Mutex
	retry     sched.RetryPolicy
	deadline  time.Duration
	maxBucket int // continuous-batching bucket cap; 0 = off
}

type netKey struct {
	dev   *core.Device
	batch int
}

// NewService wraps a queue in an inference service for the model.
func NewService(m *Model, q *sched.Queue) (*Service, error) {
	if err := m.Err(); err != nil {
		return nil, err
	}
	s := &Service{model: m, q: q}
	// The service's own identity keys coalescing, so two services over the
	// same queue — even of one model — never share a launch.
	s.key = fmt.Sprintf("nn:%p", s)
	return s, nil
}

// SetRetry opts every subsequent request into the queue's automatic retry
// with the given policy. Safe to call concurrently with submissions;
// in-flight requests keep the policy they were submitted with.
func (s *Service) SetRetry(p sched.RetryPolicy) {
	s.mu.Lock()
	s.retry = p
	s.mu.Unlock()
}

// SetDeadline bounds every subsequent request's total time in the
// service; 0 removes the bound.
func (s *Service) SetDeadline(d time.Duration) {
	s.mu.Lock()
	s.deadline = d
	s.mu.Unlock()
}

// SetContinuousBatching opts every subsequent request into queue-level
// request coalescing: same-service requests arriving within the queue's
// batching window (sched.Config.BatchWindow) are executed as one batched
// network pass. Coalesced images are packed into power-of-two batch
// buckets (1, 2, 4, … up to maxBucket), padding the tail bucket with
// zero images, so the persistent per-bucket networks netFor caches are
// reused — the pipeline is planned once per bucket size ever seen, never
// per request. Outputs are bit-identical to solo inference: each image's
// result depends only on its own rows of the batched tensors, a property
// the N1 experiment's batched-vs-solo differential asserts.
//
// maxBucket is rounded down to a power of two (minimum 1); 0 disables
// coalescing (requests run as Direct jobs, the pre-existing behaviour).
// A single request larger than the cap still runs at its exact count,
// as it always has.
func (s *Service) SetContinuousBatching(maxBucket int) {
	cap := 0
	if maxBucket > 0 {
		cap = 1
		for cap*2 <= maxBucket {
			cap *= 2
		}
	}
	s.mu.Lock()
	s.maxBucket = cap
	s.mu.Unlock()
}

// netFor returns the device's network for the batch size, building it on
// first use. Only the device's worker goroutine calls this for a given
// device, so each network is built and used single-threaded.
func (s *Service) netFor(dev *core.Device, batch int) (*Network, error) {
	key := netKey{dev: dev, batch: batch}
	if v, ok := s.nets.Load(key); ok {
		return v.(*Network), nil
	}
	net, err := s.model.Build(dev, batch, false)
	if err != nil {
		return nil, err
	}
	s.nets.Store(key, net)
	return net, nil
}

// InferBatch submits count images (count·In().N() elements, the model's
// element type) as one device launch. The job's output holds the
// count·classes final-layer elements in request order.
func (s *Service) InferBatch(ctx context.Context, images interface{}, count int) (*sched.Job, error) {
	if count <= 0 {
		return nil, fmt.Errorf("nn: InferBatch: non-positive count %d", count)
	}
	switch images.(type) {
	case []float32:
		if s.model.elem != codec.Float32 {
			return nil, fmt.Errorf("nn: InferBatch: []float32 input for %s model", s.model.elem)
		}
	case []int32:
		if s.model.elem != codec.Int32 {
			return nil, fmt.Errorf("nn: InferBatch: []int32 input for %s model", s.model.elem)
		}
	case []int8:
		if s.model.elem != codec.Int8 {
			return nil, fmt.Errorf("nn: InferBatch: []int8 input for %s model", s.model.elem)
		}
	default:
		return nil, fmt.Errorf("nn: InferBatch: unsupported input type %T", images)
	}
	if got, want := hostLen(images), count*s.model.in.N(); got != want {
		return nil, fmt.Errorf("nn: InferBatch: %d elements for %d images, want %d", got, count, want)
	}
	s.mu.Lock()
	retry, deadline, bucketCap := s.retry, s.deadline, s.maxBucket
	s.mu.Unlock()
	if bucketCap > 0 {
		return s.submitCoalesced(ctx, images, count, retry, deadline, bucketCap)
	}
	// lastStats carries the most recent attempt's pipeline statistics from
	// the Direct closure to the Trace hook. Both run sequentially on the
	// executing device's goroutine, so no locking is needed.
	var lastStats *core.PipelineStats
	return s.q.Submit(ctx, sched.JobSpec{
		Retry:    retry,
		Deadline: deadline,
		Direct: func(dev *core.Device) (interface{}, core.RunStats, error) {
			lastStats = nil
			net, err := s.netFor(dev, count)
			if err != nil {
				return nil, core.RunStats{}, err
			}
			res, err := net.Run(images)
			if err != nil {
				return nil, core.RunStats{}, err
			}
			lastStats = &res.Stats
			return res.Output, core.RunStats{Draw: res.Stats.Draw}, nil
		},
		Trace: func(sp *obs.Span) {
			if lastStats != nil {
				attachPassSpans(sp, *lastStats)
			}
		},
	})
}

// inferRequest is one coalescible submission's payload: the caller's
// images and how many of them there are.
type inferRequest struct {
	images interface{}
	count  int
}

// submitCoalesced rides the request through the queue's group-coalescing
// path: the job carries the service's group key, so every same-service
// request the dispatcher has buffered inside the batching window lands in
// one GroupSpec.Run invocation, which executes them as one (or a few)
// batched network passes. The job's output is this request's own slice of
// the batched result — count·classes elements, exactly what the Direct
// path would have produced.
func (s *Service) submitCoalesced(ctx context.Context, images interface{}, count int, retry sched.RetryPolicy, deadline time.Duration, bucketCap int) (*sched.Job, error) {
	// lastStats mirrors the Direct path's pattern; the scheduler runs only
	// the first group member's Run and Trace, both on the device goroutine.
	var lastStats *core.PipelineStats
	return s.q.Submit(ctx, sched.JobSpec{
		Retry:    retry,
		Deadline: deadline,
		Group: &sched.GroupSpec{
			Key:     s.key,
			Label:   "nn-infer",
			Payload: &inferRequest{images: images, count: count},
			Run: func(dev *core.Device, payloads []interface{}) ([]interface{}, core.RunStats, error) {
				lastStats = nil
				outs, st, rs, err := s.runCoalesced(dev, payloads, bucketCap)
				lastStats = st
				return outs, rs, err
			},
		},
		Trace: func(sp *obs.Span) {
			if lastStats != nil {
				attachPassSpans(sp, *lastStats)
			}
		},
	})
}

// runCoalesced executes a window's worth of coalesced requests on one
// device. Consecutive requests are greedily packed into chunks of at most
// bucketCap images (a single larger request keeps its exact count, as it
// would have solo); each chunk runs as one batched pass at the next
// power-of-two bucket size, with the tail slots zero-padded. Padding is
// harmless: every image's output depends only on its own rows of the
// batched tensors, so the real images' results are bit-identical to solo
// runs and the padded rows are simply never sliced out. Returns one
// output per request (in payload order), the last chunk's pipeline stats
// for tracing, and the summed draw counts.
func (s *Service) runCoalesced(dev *core.Device, payloads []interface{}, bucketCap int) ([]interface{}, *core.PipelineStats, core.RunStats, error) {
	reqs := make([]*inferRequest, len(payloads))
	for i, p := range payloads {
		reqs[i] = p.(*inferRequest)
	}
	outs := make([]interface{}, len(reqs))
	var rs core.RunStats
	var last *core.PipelineStats
	for start := 0; start < len(reqs); {
		end, images := start, 0
		for end < len(reqs) {
			n := reqs[end].count
			if end > start && images+n > bucketCap {
				break
			}
			images += n
			end++
			if images >= bucketCap {
				break
			}
		}
		batch := images
		if images < bucketCap {
			batch = nextPow2(images)
		}
		net, err := s.netFor(dev, batch)
		if err != nil {
			return nil, last, rs, err
		}
		res, err := net.Run(s.packInput(reqs[start:end], batch))
		if err != nil {
			return nil, last, rs, err
		}
		rs.Draw.Add(&res.Stats.Draw)
		last = &res.Stats
		perImage := hostLen(res.Output) / batch
		off := 0
		for i := start; i < end; i++ {
			n := reqs[i].count * perImage
			outs[i] = hostSlice(res.Output, off, n)
			off += n
		}
		start = end
	}
	return outs, last, rs, nil
}

// packInput lays the chunk's images consecutively into one batch-sized
// host slice of the model's element type; slots beyond the real images
// stay zero. A lone exact-sized request passes through uncopied.
func (s *Service) packInput(reqs []*inferRequest, batch int) interface{} {
	if len(reqs) == 1 && reqs[0].count == batch {
		return reqs[0].images
	}
	inN := s.model.in.N()
	switch s.model.elem {
	case codec.Int32:
		buf := make([]int32, batch*inN)
		off := 0
		for _, r := range reqs {
			off += copy(buf[off:], r.images.([]int32))
		}
		return buf
	case codec.Int8:
		buf := make([]int8, batch*inN)
		off := 0
		for _, r := range reqs {
			off += copy(buf[off:], r.images.([]int8))
		}
		return buf
	default:
		buf := make([]float32, batch*inN)
		off := 0
		for _, r := range reqs {
			off += copy(buf[off:], r.images.([]float32))
		}
		return buf
	}
}

// hostSlice carves [off, off+n) out of a typed host slice, capping
// capacity so callers cannot scribble into a neighbour's output.
func hostSlice(v interface{}, off, n int) interface{} {
	switch s := v.(type) {
	case []float32:
		return s[off : off+n : off+n]
	case []int32:
		return s[off : off+n : off+n]
	case []int8:
		return s[off : off+n : off+n]
	}
	return nil
}

// nextPow2 returns the smallest power of two ≥ n.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

// attachPassSpans records one child span per executed pipeline pass under
// the launch span, laid out sequentially on the modeled timeline — the
// per-layer breakdown the scheduler cannot see inside a Direct closure. A
// fused pass ("conv1+relu1+pool1") is one child, as it was one draw; its
// modeled time sits on its first member's StageTimes entry (the others
// are zero by the charging rule, so the children still sum to Time).
func attachPassSpans(sp *obs.Span, st core.PipelineStats) {
	off := sp.Start()
	head := 0
	for _, pass := range st.ExecStages {
		members := strings.Count(pass, "+") + 1
		if head >= len(st.StageTimes) {
			break
		}
		d := st.StageTimes[head].Total()
		sp.ChildSpan("pass:"+pass, off, d)
		off = off.Add(d)
		head += members
	}
}

// Infer submits a single-image inference.
func (s *Service) Infer(ctx context.Context, image interface{}) (*sched.Job, error) {
	return s.InferBatch(ctx, image, 1)
}

// Close releases the cached per-device networks. Call it after the queue
// has been closed (or drained): networks are freed off their device
// goroutines, which is only safe once no jobs are running — on an
// already-closed device it degenerates to a host-side cleanup.
func (s *Service) Close() error {
	s.nets.Range(func(k, v interface{}) bool {
		v.(*Network).Close()
		s.nets.Delete(k)
		return true
	})
	return nil
}
