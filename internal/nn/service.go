package nn

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"glescompute/internal/codec"
	"glescompute/internal/core"
	"glescompute/internal/obs"
	"glescompute/internal/sched"
)

// Service serves a Model's inference over a sched.Queue device pool.
// Requests ride the queue as Direct jobs: each submission runs the whole
// device-resident network on whichever pooled device the scheduler picks,
// against that device's lazily-built Network (weights uploaded once per
// device and batch size, then resident).
//
// Two submission granularities mirror the serving trade-off the mobile
// inference engines make: Infer runs one image per launch (lowest
// latency), InferBatch coalesces several images into one batch-B network
// execution, amortizing each pass's fixed launch costs across the batch —
// model-level request batching, the CNNdroid regime. Outputs are
// bit-identical either way (see TestBatchedMatchesSolo).
// Requests inherit the queue's fault tolerance: configure SetRetry and the
// service resubmits faulted inferences to a healthy device (inference is
// idempotent — a pure function of the input image — so retried requests
// return bit-identical outputs). Per-request attempt counts surface in the
// completed job's Stats().Attempts. When the scheduler replaces a dead
// device, the fresh *core.Device keys a new cache slot, so weights are
// re-uploaded and pipelines rebuilt on first use — exactly the cold-start
// path a new pool device takes.
type Service struct {
	model *Model
	q     *sched.Queue
	nets  sync.Map // netKey -> *Network

	mu       sync.Mutex
	retry    sched.RetryPolicy
	deadline time.Duration
}

type netKey struct {
	dev   *core.Device
	batch int
}

// NewService wraps a queue in an inference service for the model.
func NewService(m *Model, q *sched.Queue) (*Service, error) {
	if err := m.Err(); err != nil {
		return nil, err
	}
	return &Service{model: m, q: q}, nil
}

// SetRetry opts every subsequent request into the queue's automatic retry
// with the given policy. Safe to call concurrently with submissions;
// in-flight requests keep the policy they were submitted with.
func (s *Service) SetRetry(p sched.RetryPolicy) {
	s.mu.Lock()
	s.retry = p
	s.mu.Unlock()
}

// SetDeadline bounds every subsequent request's total time in the
// service; 0 removes the bound.
func (s *Service) SetDeadline(d time.Duration) {
	s.mu.Lock()
	s.deadline = d
	s.mu.Unlock()
}

// netFor returns the device's network for the batch size, building it on
// first use. Only the device's worker goroutine calls this for a given
// device, so each network is built and used single-threaded.
func (s *Service) netFor(dev *core.Device, batch int) (*Network, error) {
	key := netKey{dev: dev, batch: batch}
	if v, ok := s.nets.Load(key); ok {
		return v.(*Network), nil
	}
	net, err := s.model.Build(dev, batch, false)
	if err != nil {
		return nil, err
	}
	s.nets.Store(key, net)
	return net, nil
}

// InferBatch submits count images (count·In().N() elements, the model's
// element type) as one device launch. The job's output holds the
// count·classes final-layer elements in request order.
func (s *Service) InferBatch(ctx context.Context, images interface{}, count int) (*sched.Job, error) {
	if count <= 0 {
		return nil, fmt.Errorf("nn: InferBatch: non-positive count %d", count)
	}
	switch images.(type) {
	case []float32:
		if s.model.elem != codec.Float32 {
			return nil, fmt.Errorf("nn: InferBatch: []float32 input for %s model", s.model.elem)
		}
	case []int32:
		if s.model.elem != codec.Int32 {
			return nil, fmt.Errorf("nn: InferBatch: []int32 input for %s model", s.model.elem)
		}
	default:
		return nil, fmt.Errorf("nn: InferBatch: unsupported input type %T", images)
	}
	if got, want := hostLen(images), count*s.model.in.N(); got != want {
		return nil, fmt.Errorf("nn: InferBatch: %d elements for %d images, want %d", got, count, want)
	}
	s.mu.Lock()
	retry, deadline := s.retry, s.deadline
	s.mu.Unlock()
	// lastStats carries the most recent attempt's pipeline statistics from
	// the Direct closure to the Trace hook. Both run sequentially on the
	// executing device's goroutine, so no locking is needed.
	var lastStats *core.PipelineStats
	return s.q.Submit(ctx, sched.JobSpec{
		Retry:    retry,
		Deadline: deadline,
		Direct: func(dev *core.Device) (interface{}, core.RunStats, error) {
			lastStats = nil
			net, err := s.netFor(dev, count)
			if err != nil {
				return nil, core.RunStats{}, err
			}
			res, err := net.Run(images)
			if err != nil {
				return nil, core.RunStats{}, err
			}
			lastStats = &res.Stats
			return res.Output, core.RunStats{Draw: res.Stats.Draw}, nil
		},
		Trace: func(sp *obs.Span) {
			if lastStats != nil {
				attachPassSpans(sp, *lastStats)
			}
		},
	})
}

// attachPassSpans records one child span per executed pipeline pass under
// the launch span, laid out sequentially on the modeled timeline — the
// per-layer breakdown the scheduler cannot see inside a Direct closure. A
// fused pass ("conv1+relu1+pool1") is one child, as it was one draw; its
// modeled time sits on its first member's StageTimes entry (the others
// are zero by the charging rule, so the children still sum to Time).
func attachPassSpans(sp *obs.Span, st core.PipelineStats) {
	off := sp.Start()
	head := 0
	for _, pass := range st.ExecStages {
		members := strings.Count(pass, "+") + 1
		if head >= len(st.StageTimes) {
			break
		}
		d := st.StageTimes[head].Total()
		sp.ChildSpan("pass:"+pass, off, d)
		off = off.Add(d)
		head += members
	}
}

// Infer submits a single-image inference.
func (s *Service) Infer(ctx context.Context, image interface{}) (*sched.Job, error) {
	return s.InferBatch(ctx, image, 1)
}

// Close releases the cached per-device networks. Call it after the queue
// has been closed (or drained): networks are freed off their device
// goroutines, which is only safe once no jobs are running — on an
// already-closed device it degenerates to a host-side cleanup.
func (s *Service) Close() error {
	s.nets.Range(func(k, v interface{}) bool {
		v.(*Network).Close()
		s.nets.Delete(k)
		return true
	})
	return nil
}
