package nn

import (
	"fmt"

	"glescompute/internal/codec"
	"glescompute/internal/core"
)

// exactWindow is fp32's exact integer window: every linear index computed
// in-shader must stay below it, so every tensor flowing through a network
// (including the im2col patch matrix) is capped at 2^24 elements.
const exactWindow = 1 << 24

// Network is a Model compiled onto one device: a single device-resident
// core.Pipeline running every layer back to back on the GPU, with the
// weights resident in device buffers (uploaded once at Build). Run moves
// one input tensor up and the marked outputs back — between layers, zero
// host bytes (PipelineStats proves it).
//
// A Network is bound to its device and batch size; it is not safe for
// concurrent use (drive it from the device's goroutine, as sched workers
// do).
type Network struct {
	dev   *core.Device
	model *Model
	batch int

	p          *core.Pipeline
	imgBuf     *core.Buffer
	weightBufs []*core.Buffer
	outBufs    []*core.Buffer
	tapAll     bool
	stageOf    []int // pipeline stage index -> layer index
	closed     bool

	// Int8 lowering state. lanes is 1 for every float32/int32 network;
	// the 4-wide int8 lowering pads all channel dimensions to multiples
	// of 4 (C4 layout), so it tracks the padded shapes for input padding
	// and readback stripping. tapBuf maps layer index -> outBufs index
	// (folded matmul+Rescale pairs share one buffer).
	lanes  int
	padIn  Shape
	padOut []Shape
	tapBuf []int
}

// Result is one Network.Run execution.
type Result struct {
	// Output is the final layer's host data ([]float32 or []int32,
	// batch·outN elements).
	Output interface{}
	// Taps holds every layer's output in order when the network was built
	// with tapAll (nil otherwise); the last entry aliases Output.
	Taps []interface{}
	// Stats is the whole-chain pipeline execution report.
	Stats core.PipelineStats
	// LayerTimes aggregates Stats.StageTimes per layer (a conv layer owns
	// its im2col and GEMM passes, softmax its four scans).
	LayerTimes []core.Timeline
}

// Build compiles the model for the device at a fixed batch size. With
// tapAll every layer's output is marked as a pipeline output (the
// validation mode N1 uses); otherwise only the final layer is read back.
// Int8 models default to the device's ExecConfig lane width (4-wide
// vec4 packing unless ExecConfig.Vec4Lanes or core.EnvDisableVec4 forces
// 1); float32/int32 models are always scalar.
func (m *Model) Build(dev *core.Device, batch int, tapAll bool) (*Network, error) {
	lanes := 1
	if m.elem == codec.Int8 {
		lanes = dev.Exec().Lanes()
	}
	return m.BuildLanes(dev, batch, tapAll, lanes)
}

// BuildLanes is Build with an explicit lane width: 1 for the scalar
// lowering (any element type), 4 for the packed int8x4 lowering (int8
// models only). The two int8 lowerings are bit-identical after padding
// is stripped — the N1 experiment's differential asserts it.
func (m *Model) BuildLanes(dev *core.Device, batch int, tapAll bool, lanes int) (*Network, error) {
	if m.err != nil {
		return nil, m.err
	}
	if len(m.layers) == 0 {
		return nil, fmt.Errorf("nn: Build: model has no layers")
	}
	if batch <= 0 {
		return nil, fmt.Errorf("nn: Build: non-positive batch %d", batch)
	}
	if lanes != 1 && lanes != 4 {
		return nil, fmt.Errorf("nn: Build: lane width %d not supported (1 or 4)", lanes)
	}
	if lanes == 4 && m.elem != codec.Int8 {
		return nil, fmt.Errorf("nn: Build: 4-wide lowering requires an int8 model, got %s", m.elem)
	}
	if m.elem == codec.Int8 {
		return m.buildInt8(dev, batch, tapAll, lanes)
	}
	return m.buildStd(dev, batch, tapAll)
}

// buildStd is the scalar float32/int32 lowering.
func (m *Model) buildStd(dev *core.Device, batch int, tapAll bool) (*Network, error) {
	net := &Network{dev: dev, model: m, batch: batch, p: dev.NewPipeline(), tapAll: tapAll, lanes: 1}
	ok := false
	defer func() {
		if !ok {
			net.Close()
		}
	}()

	checkN := func(what string, n int) error {
		if n >= exactWindow {
			return fmt.Errorf("nn: Build: %s has %d elements, beyond the exact fp32 index window (2^24)", what, n)
		}
		return nil
	}
	if err := checkN("input tensor", batch*m.in.N()); err != nil {
		return nil, err
	}

	// weightInput uploads a host weight slice into a device-resident
	// buffer and declares it as a pipeline input.
	weightInput := func(layer, param string, w interface{}) (core.Ref, error) {
		n := hostLen(w)
		if err := checkN(layer+" "+param, n); err != nil {
			return -1, err
		}
		b, err := net.dev.NewBuffer(m.elem, n)
		if err != nil {
			return -1, err
		}
		net.weightBufs = append(net.weightBufs, b)
		if err := b.WriteRange(0, w); err != nil {
			return -1, err
		}
		return net.p.Input(m.elem, n), nil
	}

	cur := net.p.Input(m.elem, batch*m.in.N())
	curShape := m.in
	var layerRefs []core.Ref
	for li, l := range m.layers {
		// stage records stage->layer ownership and labels the stage with
		// the layer name, so fused passes report as "conv1+relu1" and
		// PipelineStats attribution maps back to layers.
		stage := func(label string, r core.Ref) core.Ref {
			net.stageOf = append(net.stageOf, li)
			net.p.Label(label)
			return r
		}
		f := func(v int) float32 { return float32(v) }
		var out core.Ref
		switch l.kind {
		case KindConv:
			cs := l.conv
			rows := batch * cs.OutH() * cs.OutW()
			if err := checkN(l.name+" im2col matrix", rows*cs.K()); err != nil {
				return nil, err
			}
			im2colK, err := kernelFor(dev, "nn-im2col", m.elem, []string{"x"},
				[]string{"u_kk", "u_ohw", "u_ow", "u_kwic", "u_ic", "u_stride", "u_inh", "u_inw"}, im2colSource, false, true)
			if err != nil {
				return nil, err
			}
			gemmK, err := kernelFor(dev, "nn-gemm", m.elem, []string{"x", "w", "bias"},
				[]string{"u_cols", "u_k"}, gemmSource, false, true)
			if err != nil {
				return nil, err
			}
			wRef, err := weightInput(l.name, "weights", l.w)
			if err != nil {
				return nil, err
			}
			bRef, err := weightInput(l.name, "bias", l.bias)
			if err != nil {
				return nil, err
			}
			patches := stage(l.name+"/im2col", net.p.StageN(im2colK, rows*cs.K(), map[string]float32{
				"u_kk": f(cs.K()), "u_ohw": f(cs.OutH() * cs.OutW()), "u_ow": f(cs.OutW()),
				"u_kwic": f(cs.KW * cs.InC), "u_ic": f(cs.InC), "u_stride": f(cs.Stride),
				"u_inh": f(cs.InH), "u_inw": f(cs.InW),
			}, cur))
			out = stage(l.name, net.p.StageN(gemmK, rows*cs.OutC, map[string]float32{
				"u_cols": f(cs.OutC), "u_k": f(cs.K()),
			}, patches, wRef, bRef))
		case KindDW:
			ds := l.dw
			dwK, err := kernelFor(dev, "nn-dwconv", m.elem, []string{"x", "w", "bias"},
				[]string{"u_on", "u_owc", "u_c", "u_taps", "u_kw", "u_stride", "u_inh", "u_inw"}, dwSource, false, true)
			if err != nil {
				return nil, err
			}
			wRef, err := weightInput(l.name, "weights", l.w)
			if err != nil {
				return nil, err
			}
			bRef, err := weightInput(l.name, "bias", l.bias)
			if err != nil {
				return nil, err
			}
			out = stage(l.name, net.p.StageN(dwK, batch*l.outShape.N(), map[string]float32{
				"u_on": f(l.outShape.N()), "u_owc": f(l.outShape.W * ds.C), "u_c": f(ds.C),
				"u_taps": f(ds.KH * ds.KW), "u_kw": f(ds.KW), "u_stride": f(ds.Stride),
				"u_inh": f(ds.InH), "u_inw": f(ds.InW),
			}, cur, wRef, bRef))
		case KindPool:
			poolK, err := kernelFor(dev, "nn-maxpool", m.elem, []string{"x"},
				[]string{"u_on", "u_owc", "u_c", "u_taps", "u_pw", "u_stride", "u_inh", "u_inw"}, poolSource, false, true)
			if err != nil {
				return nil, err
			}
			out = stage(l.name, net.p.StageN(poolK, batch*l.outShape.N(), map[string]float32{
				"u_on": f(l.outShape.N()), "u_owc": f(l.outShape.W * curShape.C), "u_c": f(curShape.C),
				"u_taps": f(l.ph * l.pw), "u_pw": f(l.pw), "u_stride": f(l.stride),
				"u_inh": f(curShape.H), "u_inw": f(curShape.W),
			}, cur))
			if l.stride >= l.ph && l.stride >= l.pw {
				// Non-overlapping windows (stride clears the window in
				// both axes) read each producer element at most once:
				// fusing the producing GEMM into the pooling pass deletes
				// its draw and codec round trip with zero recompute
				// amplification.
				net.p.InlineInput(0)
			}
		case KindReLU:
			reluK, err := kernelFor(dev, "nn-relu", m.elem, []string{"x"}, nil, reluSource, true, false)
			if err != nil {
				return nil, err
			}
			out = stage(l.name, net.p.Stage(reluK, nil, cur))
		case KindDense:
			gemmK, err := kernelFor(dev, "nn-gemm", m.elem, []string{"x", "w", "bias"},
				[]string{"u_cols", "u_k"}, gemmSource, false, true)
			if err != nil {
				return nil, err
			}
			wRef, err := weightInput(l.name, "weights", l.w)
			if err != nil {
				return nil, err
			}
			bRef, err := weightInput(l.name, "bias", l.bias)
			if err != nil {
				return nil, err
			}
			out = stage(l.name, net.p.StageN(gemmK, batch*l.out, map[string]float32{
				"u_cols": f(l.out), "u_k": f(l.in),
			}, cur, wRef, bRef))
		case KindSoftmax:
			n := curShape.N()
			// lse opts into body inlining (FusableEpilogue) so the
			// normalize pass can absorb it for small rows.
			lseK, err := kernelFor(dev, "nn-logsumexp", m.elem, []string{"x"}, []string{"u_n"}, lseSource, false, true)
			if err != nil {
				return nil, err
			}
			normK, err := kernelFor(dev, "nn-smnorm", m.elem, []string{"x", "l"}, []string{"u_n"}, smNormSource, false, false)
			if err != nil {
				return nil, err
			}
			uni := map[string]float32{"u_n": f(n)}
			lse := stage(l.name+"/lse", net.p.StageN(lseK, batch, uni, cur))
			out = stage(l.name, net.p.StageN(normK, batch*n, uni, cur, lse))
			if n <= 64 {
				// Each normalize fragment recomputes its row's
				// log-sum-exp: n extra row scans of length n per row
				// beats a whole extra launch while n² stays trivial.
				net.p.InlineInput(1)
			}
		case KindRescale:
			src, name := rescaleFloatSource, "nn-rescale"
			if m.elem == codec.Int32 {
				src, name = rescaleIntSource, "nn-rescale-int"
			}
			rescaleK, err := kernelFor(dev, name, m.elem, []string{"x"}, []string{"u_scale"}, src, true, false)
			if err != nil {
				return nil, err
			}
			out = stage(l.name, net.p.Stage(rescaleK, map[string]float32{"u_scale": f(1 << l.shift)}, cur))
		default:
			return nil, fmt.Errorf("nn: Build: unknown layer kind %q", l.kind)
		}
		if err := checkN(l.name+" output", batch*l.outShape.N()); err != nil {
			return nil, err
		}
		layerRefs = append(layerRefs, out)
		cur = out
		curShape = l.outShape
	}

	// Mark outputs and allocate their receiving buffers.
	marked := layerRefs[len(layerRefs)-1:]
	if tapAll {
		marked = layerRefs
		net.tapBuf = make([]int, len(m.layers))
		for i := range net.tapBuf {
			net.tapBuf[i] = i
		}
	}
	for i, r := range marked {
		net.p.Output(r)
		li := len(m.layers) - 1
		if tapAll {
			li = i
		}
		b, err := dev.NewBuffer(m.elem, batch*m.layers[li].outShape.N())
		if err != nil {
			return nil, err
		}
		net.outBufs = append(net.outBufs, b)
	}
	if err := net.p.Err(); err != nil {
		return nil, err
	}
	imgBuf, err := dev.NewBuffer(m.elem, batch*m.in.N())
	if err != nil {
		return nil, err
	}
	net.imgBuf = imgBuf
	ok = true
	return net, nil
}

// SetFusion enables or disables the pipeline's automatic kernel fusion
// for this network; call it between Build and the first Run. The default
// follows core's fusion default (on unless core.EnvDisableFusion is set).
// With fusion on, element-wise layers (ReLU, Rescale) merge into the pass
// of the layer producing their input, non-overlapping pools absorb their
// producing GEMM chain, and the softmax normalize absorbs its row scan —
// a LeNet-scale float network drops from 15 builder stages to 8 fragment
// passes — with int32 outputs bit-identical either way.
func (n *Network) SetFusion(on bool) { n.p.SetFusion(on) }

// FusionEnabled reports whether the network's pipeline may fuse stages.
func (n *Network) FusionEnabled() bool { return n.p.FusionEnabled() }

// PlannedPasses reports the pipeline's planned fragment passes
// post-fusion (labels like "conv1+relu1"); it freezes the plan exactly
// as the first Run would.
func (n *Network) PlannedPasses() ([]string, error) { return n.p.PlannedPasses() }

// Batch returns the batch size the network was built for.
func (n *Network) Batch() int { return n.batch }

// Lanes returns the lowering's lane width: 1 (scalar) or 4 (int8x4).
func (n *Network) Lanes() int { return n.lanes }

// Model returns the model the network was built from.
func (n *Network) Model() *Model { return n.model }

// Run uploads input (batch·In().N() elements of the model element type),
// executes the whole network on the device, and reads back the marked
// outputs.
func (n *Network) Run(input interface{}) (*Result, error) {
	if n.closed {
		return nil, fmt.Errorf("nn: Run: %w", core.ErrClosed)
	}
	if got, want := hostLen(input), n.batch*n.model.in.N(); got != want {
		return nil, fmt.Errorf("nn: Run: input has %d elements, want %d", got, want)
	}
	up := input
	if n.lanes == 4 {
		// The 4-wide lowering runs on the C4-padded layout: widen the
		// input host-side (pad channels with zeros) before upload.
		up = padTensorInt8(input.([]int8), n.batch, n.model.in, n.padIn)
	}
	if err := n.imgBuf.WriteRange(0, up); err != nil {
		return nil, err
	}
	ins := append([]*core.Buffer{n.imgBuf}, n.weightBufs...)
	stats, err := n.p.Run(n.outBufs, ins, nil)
	if err != nil {
		return nil, err
	}
	res := &Result{Stats: stats, LayerTimes: make([]core.Timeline, len(n.model.layers))}
	for si, li := range n.stageOf {
		if si < len(stats.StageTimes) {
			res.LayerTimes[li] = res.LayerTimes[li].Add(stats.StageTimes[si])
		}
	}
	// Read each marked buffer once, stripping C4 padding on the 4-wide
	// path; layers folded into one pass (int8 matmul+Rescale) alias the
	// same host data.
	read := make([]interface{}, len(n.outBufs))
	readFor := func(bi, li int) (interface{}, error) {
		if read[bi] != nil {
			return read[bi], nil
		}
		out, err := n.outBufs[bi].ReadRange(0, n.outBufs[bi].Len())
		if err != nil {
			return nil, err
		}
		if n.lanes == 4 {
			out = stripPadInt8(out.([]int8), n.batch, n.model.layers[li].outShape, n.padOut[li])
		}
		read[bi] = out
		return out, nil
	}
	if n.tapAll {
		res.Taps = make([]interface{}, len(n.model.layers))
		for li := range n.model.layers {
			out, err := readFor(n.tapBuf[li], li)
			if err != nil {
				return nil, err
			}
			res.Taps[li] = out
		}
		res.Output = res.Taps[len(res.Taps)-1]
	} else {
		out, err := readFor(0, len(n.model.layers)-1)
		if err != nil {
			return nil, err
		}
		res.Output = out
	}
	return res, nil
}

// Close releases the network's pipeline and device buffers (weights,
// input, outputs). The kernels stay in the device's compile-once cache.
// Idempotent.
func (n *Network) Close() error {
	if n.closed {
		return nil
	}
	n.closed = true
	if n.p != nil {
		n.p.Close()
	}
	if n.imgBuf != nil {
		n.imgBuf.Free()
	}
	for _, b := range n.weightBufs {
		b.Free()
	}
	for _, b := range n.outBufs {
		b.Free()
	}
	return nil
}
