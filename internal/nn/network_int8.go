package nn

import (
	"fmt"

	"glescompute/internal/codec"
	"glescompute/internal/core"
)

// network_int8.go is the quantized lowering: activations and weights
// live in int8 tensors and every matmul requantizes on the way out
// (clamp(floor(acc/2^shift), -128, 127), folded from the following
// Rescale layer — int8FoldCheck guarantees it exists).
//
// Two variants share this builder:
//
//   - lanes=1: FmtInt8 buffers (one value per texel), the same linear
//     lowering as the float/int32 path with requant folded in;
//   - lanes=4: FmtInt8x4 buffers (four values per texel) with every
//     channel dimension padded to a multiple of 4 — the PHWC4-style C4
//     layout. The padding buys the alignment invariant the 4-wide
//     kernels assume: four consecutive logical indices always share a
//     texel, so receptive-field gathers, GEMM row walks and weight
//     fetches all decode four values per texture access. Padded weight
//     entries are zero, so padded channels carry exact zeros through
//     conv (0·x = 0), requant (floor(0) = 0), relu and pool — after
//     stripping, the two lowerings are bit-identical.
//
// Host-side padding/stripping happens once per Run at the input and
// readback boundaries; between layers everything stays padded on the
// device.

// ceil4 rounds up to a multiple of 4 (the C4 channel padding).
func ceil4(n int) int { return (n + 3) &^ 3 }

// padShape widens a shape's channel dimension to the C4 layout.
func padShape(s Shape) Shape { return Shape{H: s.H, W: s.W, C: ceil4(s.C)} }

// padTensorInt8 re-lays a logical HWC tensor into the padded layout,
// zero-filling the padded channels.
func padTensorInt8(x []int8, batch int, logical, padded Shape) []int8 {
	if logical == padded {
		return x
	}
	out := make([]int8, batch*padded.N())
	pix := batch * logical.H * logical.W
	for p := 0; p < pix; p++ {
		copy(out[p*padded.C:p*padded.C+logical.C], x[p*logical.C:(p+1)*logical.C])
	}
	return out
}

// stripPadInt8 is the inverse: drop the padded channels.
func stripPadInt8(x []int8, batch int, logical, padded Shape) []int8 {
	if logical == padded {
		return x
	}
	out := make([]int8, batch*logical.N())
	pix := batch * logical.H * logical.W
	for p := 0; p < pix; p++ {
		copy(out[p*logical.C:(p+1)*logical.C], x[p*padded.C:p*padded.C+logical.C])
	}
	return out
}

// padBiasInt8 widens a bias vector with zeros.
func padBiasInt8(b []int8, c4 int) []int8 {
	if len(b) == c4 {
		return b
	}
	out := make([]int8, c4)
	copy(out, b)
	return out
}

// padConvWeightsKInt8 re-lays conv weights [kReal][outC] into
// [kPad][outC4], zero-filling the padded tail rows and output columns.
// The row index keeps the logical (ky, kx, ic) order — the K dimension
// is padded as a whole rather than per-channel, so narrow inputs don't
// inflate the GEMM's inner loop (see im2col4Source).
func padConvWeightsKInt8(w []int8, kReal, kPad, outC, outC4 int) []int8 {
	if kReal == kPad && outC == outC4 {
		return w
	}
	out := make([]int8, kPad*outC4)
	for k := 0; k < kReal; k++ {
		copy(out[k*outC4:k*outC4+outC], w[k*outC:(k+1)*outC])
	}
	return out
}

// padDWWeightsInt8 re-lays depthwise weights [taps][C] into [taps][C4].
func padDWWeightsInt8(w []int8, taps, c, c4 int) []int8 {
	if c == c4 {
		return w
	}
	out := make([]int8, taps*c4)
	for t := 0; t < taps; t++ {
		copy(out[t*c4:t*c4+c], w[t*c:(t+1)*c])
	}
	return out
}

// padDenseWeightsInt8 re-lays dense weights [in][out] (in = the
// flattened logical input shape) into [inPadded][out4], where the input
// index follows the padded HWC layout of the producing layer.
func padDenseWeightsInt8(w []int8, logical, padded Shape, outN, out4 int) []int8 {
	if logical == padded && outN == out4 {
		return w
	}
	out := make([]int8, padded.N()*out4)
	pix := logical.H * logical.W
	for p := 0; p < pix; p++ {
		for c := 0; c < logical.C; c++ {
			src := (p*logical.C + c) * outN
			dst := (p*padded.C + c) * out4
			for o := 0; o < outN; o++ {
				out[dst+o] = w[src+o]
			}
		}
	}
	return out
}

// buildInt8 compiles an int8 model. See the file comment for the
// lanes=1 / lanes=4 split.
func (m *Model) buildInt8(dev *core.Device, batch int, tapAll bool, lanes int) (*Network, error) {
	if err := m.int8FoldCheck(); err != nil {
		return nil, err
	}
	packed := lanes == 4
	fmtAct := codec.FmtInt8
	if packed {
		fmtAct = codec.FmtInt8x4
	}
	pad := func(s Shape) Shape {
		if packed {
			return padShape(s)
		}
		return s
	}
	net := &Network{dev: dev, model: m, batch: batch, p: dev.NewPipeline(), tapAll: tapAll, lanes: lanes}
	net.padIn = pad(m.in)
	net.padOut = make([]Shape, len(m.layers))
	for li, l := range m.layers {
		net.padOut[li] = pad(l.outShape)
	}
	ok := false
	defer func() {
		if !ok {
			net.Close()
		}
	}()

	checkN := func(what string, n int) error {
		if n >= exactWindow {
			return fmt.Errorf("nn: Build: %s has %d elements, beyond the exact fp32 index window (2^24)", what, n)
		}
		return nil
	}
	// Worst-case int8 matmul accumulator: K·128·128 + 128 must stay
	// inside the exact window for the requant to be bit-exact.
	checkAcc := func(layer string, k int) error {
		if k*16384+128 >= exactWindow {
			return fmt.Errorf("nn: Build: %s inner dimension %d can overflow the exact fp32 accumulator window with int8 operands", layer, k)
		}
		return nil
	}
	if err := checkN("input tensor", batch*net.padIn.N()); err != nil {
		return nil, err
	}

	kern := func(name, scalarSrc, packedSrc string, inputs, uniforms []string, ew, epilogue bool) (*core.Kernel, error) {
		src := scalarSrc
		if packed {
			name, src = name+"4", packedSrc
		}
		return kernelFmt(dev, name, fmtAct, inputs, uniforms, src, ew, epilogue, lanes)
	}
	weightInput := func(layer, param string, w []int8) (core.Ref, error) {
		if err := checkN(layer+" "+param, len(w)); err != nil {
			return -1, err
		}
		b, err := dev.NewBufferFmt(fmtAct, len(w))
		if err != nil {
			return -1, err
		}
		net.weightBufs = append(net.weightBufs, b)
		if err := b.WriteRange(0, w); err != nil {
			return -1, err
		}
		return net.p.InputFmt(fmtAct, len(w)), nil
	}

	cur := net.p.InputFmt(fmtAct, batch*net.padIn.N())
	curPad := net.padIn
	layerRefs := make([]core.Ref, len(m.layers))
	for li := 0; li < len(m.layers); li++ {
		l := m.layers[li]
		stage := func(label string, r core.Ref) core.Ref {
			net.stageOf = append(net.stageOf, li)
			net.p.Label(label)
			return r
		}
		f := func(v int) float32 { return float32(v) }
		outPad := net.padOut[li]
		var out core.Ref
		switch l.kind {
		case KindConv:
			cs := l.conv
			outC := net.padOut[li+1].C // == pad(outShape).C; via the folded Rescale
			kReal := cs.KH * cs.KW * cs.InC
			k := kReal // patch-matrix inner dimension
			if packed {
				k = ceil4(kReal)
			}
			rows := batch * cs.OutH() * cs.OutW()
			scale := f(1 << m.layers[li+1].shift)
			if err := checkN(l.name+" im2col matrix", rows*k); err != nil {
				return nil, err
			}
			if err := checkAcc(l.name, k); err != nil {
				return nil, err
			}
			// The two im2col lowerings have different interfaces: the packed
			// gather pads K (not channels) and needs both the logical and the
			// C4 channel strides of the input it walks.
			var im2colK *core.Kernel
			var imVals map[string]float32
			var err error
			if packed {
				im2colK, err = kernelFmt(dev, "nn-im2col-i84", fmtAct, []string{"x"},
					[]string{"u_kk", "u_ohw", "u_ow", "u_ic", "u_ic4", "u_kw", "u_stride", "u_inh", "u_inw"},
					im2col4Source, false, true, lanes)
				imVals = map[string]float32{
					"u_kk": f(k), "u_ohw": f(cs.OutH() * cs.OutW()), "u_ow": f(cs.OutW()),
					"u_ic": f(cs.InC), "u_ic4": f(curPad.C), "u_kw": f(cs.KW),
					"u_stride": f(cs.Stride), "u_inh": f(cs.InH), "u_inw": f(cs.InW),
				}
			} else {
				im2colK, err = kernelFmt(dev, "nn-im2col-i8", fmtAct, []string{"x"},
					[]string{"u_kk", "u_ohw", "u_ow", "u_kwic", "u_ic", "u_stride", "u_inh", "u_inw"},
					im2colSource, false, true, lanes)
				imVals = map[string]float32{
					"u_kk": f(k), "u_ohw": f(cs.OutH() * cs.OutW()), "u_ow": f(cs.OutW()),
					"u_kwic": f(cs.KW * cs.InC), "u_ic": f(cs.InC), "u_stride": f(cs.Stride),
					"u_inh": f(cs.InH), "u_inw": f(cs.InW),
				}
			}
			if err != nil {
				return nil, err
			}
			gemmK, err := kern("nn-gemm-rq", gemmRequantSource, gemm4RequantSource, []string{"x", "w", "bias"},
				[]string{"u_cols", "u_k", "u_scale"}, false, true)
			if err != nil {
				return nil, err
			}
			wRef, err := weightInput(l.name, "weights",
				padConvWeightsKInt8(l.w.([]int8), kReal, k, cs.OutC, outC))
			if err != nil {
				return nil, err
			}
			bRef, err := weightInput(l.name, "bias", padBiasInt8(l.bias.([]int8), outC))
			if err != nil {
				return nil, err
			}
			patches := stage(l.name+"/im2col", net.p.StageN(im2colK, rows*k, imVals, cur))
			out = stage(l.name, net.p.StageN(gemmK, rows*outC, map[string]float32{
				"u_cols": f(outC), "u_k": f(k), "u_scale": scale,
			}, patches, wRef, bRef))
		case KindDense:
			k := curPad.N()
			outC := net.padOut[li+1].C
			scale := f(1 << m.layers[li+1].shift)
			if err := checkAcc(l.name, k); err != nil {
				return nil, err
			}
			if k > maxInner {
				return nil, fmt.Errorf("nn: Build: %s padded input size %d exceeds kernel loop bound %d", l.name, k, maxInner)
			}
			gemmK, err := kern("nn-gemm-rq", gemmRequantSource, gemm4RequantSource, []string{"x", "w", "bias"},
				[]string{"u_cols", "u_k", "u_scale"}, false, true)
			if err != nil {
				return nil, err
			}
			// curShape is the logical shape feeding this layer; its padded
			// counterpart defines the weight row indexing.
			logIn := m.in
			if li > 0 {
				logIn = m.layers[li-1].outShape
			}
			wRef, err := weightInput(l.name, "weights",
				padDenseWeightsInt8(l.w.([]int8), logIn, curPad, l.out, outC))
			if err != nil {
				return nil, err
			}
			bRef, err := weightInput(l.name, "bias", padBiasInt8(l.bias.([]int8), outC))
			if err != nil {
				return nil, err
			}
			out = stage(l.name, net.p.StageN(gemmK, batch*outC, map[string]float32{
				"u_cols": f(outC), "u_k": f(k), "u_scale": scale,
			}, cur, wRef, bRef))
		case KindDW:
			ds := l.dw
			c := curPad.C
			if err := checkAcc(l.name, ds.KH*ds.KW); err != nil {
				return nil, err
			}
			// The requant scale is baked into the source (uniform budget —
			// see dwRequantSourceTmpl).
			dwSrc := dwRequantSrc(m.layers[li+1].shift, packed)
			dwK, err := kern("nn-dwconv-rq", dwSrc, dwSrc, []string{"x", "w", "bias"},
				[]string{"u_on", "u_owc", "u_c", "u_taps", "u_kw", "u_stride", "u_inh", "u_inw"}, false, true)
			if err != nil {
				return nil, err
			}
			wRef, err := weightInput(l.name, "weights",
				padDWWeightsInt8(l.w.([]int8), ds.KH*ds.KW, ds.C, c))
			if err != nil {
				return nil, err
			}
			bRef, err := weightInput(l.name, "bias", padBiasInt8(l.bias.([]int8), c))
			if err != nil {
				return nil, err
			}
			on := l.outShape.H * l.outShape.W * c
			out = stage(l.name, net.p.StageN(dwK, batch*on, map[string]float32{
				"u_on": f(on), "u_owc": f(l.outShape.W * c), "u_c": f(c),
				"u_taps": f(ds.KH * ds.KW), "u_kw": f(ds.KW), "u_stride": f(ds.Stride),
				"u_inh": f(ds.InH), "u_inw": f(ds.InW),
			}, cur, wRef, bRef))
		case KindPool:
			c := curPad.C
			poolK, err := kern("nn-maxpool-i8", poolSource, pool4Source, []string{"x"},
				[]string{"u_on", "u_owc", "u_c", "u_taps", "u_pw", "u_stride", "u_inh", "u_inw"}, false, true)
			if err != nil {
				return nil, err
			}
			on := outPad.H * outPad.W * c
			out = stage(l.name, net.p.StageN(poolK, batch*on, map[string]float32{
				"u_on": f(on), "u_owc": f(outPad.W * c), "u_c": f(c),
				"u_taps": f(l.ph * l.pw), "u_pw": f(l.pw), "u_stride": f(l.stride),
				"u_inh": f(curPad.H), "u_inw": f(curPad.W),
			}, cur))
			if l.stride >= l.ph && l.stride >= l.pw {
				// Non-overlapping windows: same inline-fusion opportunity as
				// the float path (channel groups never overlap either).
				net.p.InlineInput(0)
			}
		case KindReLU:
			reluK, err := kern("nn-relu-i8", reluSource, relu4Source, []string{"x"}, nil, true, false)
			if err != nil {
				return nil, err
			}
			out = stage(l.name, net.p.Stage(reluK, nil, cur))
		default:
			return nil, fmt.Errorf("nn: Build: layer kind %q unsupported for int8", l.kind)
		}
		if err := checkN(l.name+" output", batch*outPad.N()); err != nil {
			return nil, err
		}
		layerRefs[li] = out
		if matmulKind(l.kind) {
			// The following Rescale is folded into the pass just built:
			// it owns the same slot and gets no stage of its own.
			layerRefs[li+1] = out
			li++
		}
		cur = out
		curPad = net.padOut[li]
	}

	// Mark outputs: one buffer per distinct slot (folded matmul+Rescale
	// pairs share), holding the padded tensor; Run strips on readback.
	mark := func(li int) error {
		net.p.Output(layerRefs[li])
		b, err := dev.NewBufferFmt(fmtAct, batch*net.padOut[li].N())
		if err != nil {
			return err
		}
		net.outBufs = append(net.outBufs, b)
		return nil
	}
	if tapAll {
		net.tapBuf = make([]int, len(m.layers))
		for li := range m.layers {
			if li > 0 && layerRefs[li] == layerRefs[li-1] {
				net.tapBuf[li] = net.tapBuf[li-1]
				continue
			}
			if err := mark(li); err != nil {
				return nil, err
			}
			net.tapBuf[li] = len(net.outBufs) - 1
		}
	} else if err := mark(len(m.layers) - 1); err != nil {
		return nil, err
	}
	if err := net.p.Err(); err != nil {
		return nil, err
	}
	imgBuf, err := dev.NewBufferFmt(fmtAct, batch*net.padIn.N())
	if err != nil {
		return nil, err
	}
	net.imgBuf = imgBuf
	ok = true
	return net, nil
}
