package nn

import (
	"math"
	"testing"

	"glescompute/internal/core"
	"glescompute/internal/sched"
)

// TestServiceSoloAndBatched drives inference through the queue's device
// pool both one-image-per-launch and batch-coalesced, asserting every
// output bit-identical to the direct single-device network.
func TestServiceSoloAndBatched(t *testing.T) {
	const requests, B = 8, 4
	m := DemoLeNetFloat32(20160316)
	xs := DemoInputFloat32(99, requests)
	per := DemoShape.N()

	// Ground truth: the plain single-device network.
	dev := openTest(t)
	net, err := m.Build(dev, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float32, 0, requests*DemoClasses)
	for r := 0; r < requests; r++ {
		res, err := net.Run(xs[r*per : (r+1)*per])
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res.Output.([]float32)...)
	}
	net.Close()
	dev.Close()

	for _, batch := range []int{1, B} {
		q, err := sched.OpenQueue(sched.Config{Devices: 2, Device: core.Config{Workers: 1}})
		if err != nil {
			t.Fatal(err)
		}
		svc, err := NewService(m, q)
		if err != nil {
			t.Fatal(err)
		}
		var jobs []*sched.Job
		for off := 0; off < requests; off += batch {
			j, err := svc.InferBatch(nil, xs[off*per:(off+batch)*per], batch)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
		for ji, j := range jobs {
			res, err := j.Wait(nil)
			if err != nil {
				t.Fatalf("batch=%d job %d: %v", batch, ji, err)
			}
			got := res.Output.([]float32)
			if len(got) != batch*DemoClasses {
				t.Fatalf("batch=%d job %d: %d outputs, want %d", batch, ji, len(got), batch*DemoClasses)
			}
			if res.Stats.Time.Execute <= 0 {
				t.Errorf("batch=%d job %d: no modeled execute time attributed", batch, ji)
			}
			for k, v := range got {
				w := want[(ji*batch)*DemoClasses+k]
				if math.Float32bits(v) != math.Float32bits(w) {
					t.Fatalf("batch=%d job %d out %d: %g != %g (must be bit-identical)", batch, ji, k, v, w)
				}
			}
		}
		st := q.Stats()
		if st.Completed != uint64(len(jobs)) {
			t.Fatalf("batch=%d: %d completed, want %d", batch, st.Completed, len(jobs))
		}
		if st.ModeledMakespan() <= 0 {
			t.Errorf("batch=%d: zero modeled makespan", batch)
		}
		q.Close()
		svc.Close()
	}
}

// TestServiceInputValidation pins submit-time validation.
func TestServiceInputValidation(t *testing.T) {
	q, err := sched.OpenQueue(sched.Config{Devices: 1, Device: core.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	svc, err := NewService(DemoLeNetFloat32(1), q)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Infer(nil, make([]float32, 3)); err == nil {
		t.Error("short input accepted")
	}
	if _, err := svc.Infer(nil, make([]int32, DemoShape.N())); err == nil {
		t.Error("int input accepted by float model")
	}
	if _, err := svc.InferBatch(nil, make([]float32, DemoShape.N()), 0); err == nil {
		t.Error("zero count accepted")
	}
}
