package nn

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"glescompute/internal/core"
	"glescompute/internal/fault"
	"glescompute/internal/obs"
	"glescompute/internal/sched"
)

// TestServiceSoloAndBatched drives inference through the queue's device
// pool both one-image-per-launch and batch-coalesced, asserting every
// output bit-identical to the direct single-device network.
func TestServiceSoloAndBatched(t *testing.T) {
	const requests, B = 8, 4
	m := DemoLeNetFloat32(20160316)
	xs := DemoInputFloat32(99, requests)
	per := DemoShape.N()

	// Ground truth: the plain single-device network.
	dev := openTest(t)
	net, err := m.Build(dev, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float32, 0, requests*DemoClasses)
	for r := 0; r < requests; r++ {
		res, err := net.Run(xs[r*per : (r+1)*per])
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res.Output.([]float32)...)
	}
	net.Close()
	dev.Close()

	for _, batch := range []int{1, B} {
		q, err := sched.OpenQueue(sched.Config{Devices: 2, Device: core.Config{Workers: 1}})
		if err != nil {
			t.Fatal(err)
		}
		svc, err := NewService(m, q)
		if err != nil {
			t.Fatal(err)
		}
		var jobs []*sched.Job
		for off := 0; off < requests; off += batch {
			j, err := svc.InferBatch(nil, xs[off*per:(off+batch)*per], batch)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
		for ji, j := range jobs {
			res, err := j.Wait(nil)
			if err != nil {
				t.Fatalf("batch=%d job %d: %v", batch, ji, err)
			}
			got := res.Output.([]float32)
			if len(got) != batch*DemoClasses {
				t.Fatalf("batch=%d job %d: %d outputs, want %d", batch, ji, len(got), batch*DemoClasses)
			}
			if res.Stats.Time.Execute <= 0 {
				t.Errorf("batch=%d job %d: no modeled execute time attributed", batch, ji)
			}
			for k, v := range got {
				w := want[(ji*batch)*DemoClasses+k]
				if math.Float32bits(v) != math.Float32bits(w) {
					t.Fatalf("batch=%d job %d out %d: %g != %g (must be bit-identical)", batch, ji, k, v, w)
				}
			}
		}
		st := q.Stats()
		if st.Completed != uint64(len(jobs)) {
			t.Fatalf("batch=%d: %d completed, want %d", batch, st.Completed, len(jobs))
		}
		if st.ModeledMakespan() <= 0 {
			t.Errorf("batch=%d: zero modeled makespan", batch)
		}
		q.Close()
		svc.Close()
	}
}

// TestServicePassSpans: a traced inference launch carries one child span
// per executed pipeline pass, so the per-layer breakdown the scheduler
// cannot see inside a Direct closure still reaches the trace. Fused
// chains appear as single "pass:a+b" children.
func TestServicePassSpans(t *testing.T) {
	m := DemoLeNetFloat32(20160316)
	tr := obs.NewTracer(20160316)
	q, err := sched.OpenQueue(sched.Config{Devices: 1, Device: core.Config{Workers: 1}, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(m, q)
	if err != nil {
		t.Fatal(err)
	}
	j, err := svc.Infer(nil, DemoInputFloat32(99, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(nil); err != nil {
		t.Fatal(err)
	}
	q.Close()
	svc.Close()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	passes, fused := 0, 0
	for _, e := range doc.TraceEvents {
		name, _ := e["name"].(string)
		if strings.HasPrefix(name, "pass:") {
			passes++
			if strings.Contains(name, "+") {
				fused++
			}
		}
	}
	if passes == 0 {
		t.Fatal("no pass:<stage> child spans in the trace")
	}
	// The demo LeNet fuses element-wise successors into their producers,
	// so at least one child must carry a fused "a+b" label.
	if fused == 0 {
		t.Fatal("no fused pass:a+b child span — fusion structure lost in the trace")
	}
	if got := countTraceEvents(doc.TraceEvents, "launch:direct"); got != 1 {
		t.Fatalf("launch:direct spans = %d, want 1", got)
	}
}

func countTraceEvents(events []map[string]interface{}, prefix string) int {
	n := 0
	for _, e := range events {
		if name, _ := e["name"].(string); strings.HasPrefix(name, prefix) {
			n++
		}
	}
	return n
}

// TestServiceInputValidation pins submit-time validation.
func TestServiceInputValidation(t *testing.T) {
	q, err := sched.OpenQueue(sched.Config{Devices: 1, Device: core.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	svc, err := NewService(DemoLeNetFloat32(1), q)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Infer(nil, make([]float32, 3)); err == nil {
		t.Error("short input accepted")
	}
	if _, err := svc.Infer(nil, make([]int32, DemoShape.N())); err == nil {
		t.Error("int input accepted by float model")
	}
	if _, err := svc.InferBatch(nil, make([]float32, DemoShape.N()), 0); err == nil {
		t.Error("zero count accepted")
	}
}

// TestServiceRetryThroughFaults injects context losses under the serving
// pool and checks the service inherits the queue's fault tolerance: every
// request completes bit-identical to the fault-free run, attempt counts
// surface per request, and the pool recovers to full health.
func TestServiceRetryThroughFaults(t *testing.T) {
	const requests = 12
	m := DemoLeNetFloat32(20160316)
	xs := DemoInputFloat32(7, requests)
	per := DemoShape.N()

	dev := openTest(t)
	net, err := m.Build(dev, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float32, 0, requests*DemoClasses)
	for r := 0; r < requests; r++ {
		res, err := net.Run(xs[r*per : (r+1)*per])
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res.Output.([]float32)...)
	}
	net.Close()
	dev.Close()

	// A fused network run is only a handful of draws, so the horizon is
	// tight enough for the terminal loss to fire a couple of requests in.
	plan := fault.NewPlan(20160316, fault.Options{
		OpHorizon:            12,
		FaultyIncarnations:   1,
		StallsPerIncarnation: 1,
		OOMsPerIncarnation:   1,
		StallFor:             time.Microsecond,
	})
	cfg := sched.Config{Devices: 2, Device: core.Config{Workers: 1}}
	cfg.OpenDevice = func(slot int, dcfg core.Config) (*core.Device, error) {
		d, err := core.Open(dcfg)
		if err != nil {
			return nil, err
		}
		d.GL().SetFaultInjector(plan.Injector(slot))
		return d, nil
	}
	q, err := sched.OpenQueue(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(m, q)
	if err != nil {
		t.Fatal(err)
	}
	svc.SetRetry(sched.RetryPolicy{Max: 6, Backoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond})

	var jobs []*sched.Job
	for r := 0; r < requests; r++ {
		j, err := svc.Infer(nil, xs[r*per:(r+1)*per])
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	var maxAttempts int
	for ji, j := range jobs {
		res, err := j.Wait(nil)
		if err != nil {
			t.Fatalf("request %d: %v", ji, err)
		}
		if res.Stats.Attempts < 1 {
			t.Fatalf("request %d: Attempts = %d, want >= 1", ji, res.Stats.Attempts)
		}
		if res.Stats.Attempts > maxAttempts {
			maxAttempts = res.Stats.Attempts
		}
		got := res.Output.([]float32)
		for k, v := range got {
			w := want[ji*DemoClasses+k]
			if math.Float32bits(v) != math.Float32bits(w) {
				t.Fatalf("request %d out %d: %g != %g (must be bit-identical)", ji, k, v, w)
			}
		}
	}
	if fs := plan.Stats(); fs.ContextLost+fs.CorruptReadbacks == 0 {
		t.Fatalf("no terminal fault fired: %+v", fs)
	}
	if maxAttempts < 2 {
		t.Fatalf("maxAttempts = %d; no request was actually retried", maxAttempts)
	}
	st := q.Stats()
	if st.HealthyDevices != 2 || st.Failed != 0 {
		t.Fatalf("pool did not recover cleanly: %d healthy, %d failed\n%s",
			st.HealthyDevices, st.Failed, st.Report())
	}
	q.Close()
	svc.Close()
}

// TestServiceContinuousBatching is the continuous-batching differential:
// int8 requests of mixed sizes submitted inside one batching window must
// coalesce into a shared launch — power-of-two buckets, zero-padded
// tails, an oversized request at its exact count — and every request's
// output must be bit-identical to a solo batch-1 run of its images.
func TestServiceContinuousBatching(t *testing.T) {
	m := DemoLeNetInt8(20160316)
	counts := []int{1, 2, 1, 1, 3, 1, 6} // chunks under cap 4: [1,2,1] [1,3] [1] [6 exact]
	total := 0
	for _, c := range counts {
		total += c
	}
	xs := DemoInputInt8(5, total)
	per := DemoShape.N()

	// Ground truth: every image through a plain batch-1 network.
	dev := openTest(t)
	net, err := m.Build(dev, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int8, 0, total*DemoClasses)
	for r := 0; r < total; r++ {
		res, err := net.Run(xs[r*per : (r+1)*per])
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res.Output.([]int8)...)
	}
	net.Close()
	dev.Close()

	q, err := sched.OpenQueue(sched.Config{Devices: 1, Device: core.Config{Workers: 1},
		MaxBatch: 16, BatchWindow: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	svc, err := NewService(m, q)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	svc.SetContinuousBatching(4)

	if _, err := svc.Infer(nil, make([]float32, per)); err == nil {
		t.Fatal("float32 input accepted by int8 model")
	}

	var jobs []*sched.Job
	off := 0
	for _, c := range counts {
		j, err := svc.InferBatch(nil, xs[off*per:(off+c)*per], c)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
		off += c
	}
	off = 0
	coalesced := false
	for ji, j := range jobs {
		res, err := j.Wait(nil)
		if err != nil {
			t.Fatalf("request %d: %v", ji, err)
		}
		got := res.Output.([]int8)
		if len(got) != counts[ji]*DemoClasses {
			t.Fatalf("request %d: %d outputs, want %d", ji, len(got), counts[ji]*DemoClasses)
		}
		for k, v := range got {
			if w := want[off*DemoClasses+k]; v != w {
				t.Fatalf("request %d out %d: %d != %d (must be bit-identical)", ji, k, v, w)
			}
		}
		if res.Stats.Batched {
			coalesced = true
		}
		off += counts[ji]
	}
	if !coalesced {
		t.Fatal("no request was coalesced — continuous batching never engaged")
	}
	if st := q.Stats(); st.Batches == 0 || st.BatchedJobs < 2 {
		t.Fatalf("queue saw no coalesced launch: %+v", st)
	}
}
