package nn

import (
	"math/rand"
	"testing"

	"glescompute/internal/codec"
	"glescompute/internal/core"
)

// nn_int8_test.go pins the int8 path's acceptance contract: the 4-wide
// vec4 lowering, the scalar lowering and the CPU reference are all
// bit-identical, layer by layer, including channel counts that force C4
// padding; and the vec4 lowering's modeled time beats the scalar one.

func randI8(rng *rand.Rand, n, lo, hi int) []int8 {
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(lo + rng.Intn(hi-lo+1))
	}
	return out
}

// runInt8Lanes builds the model at both lane widths with all layers
// tapped, runs both on one input, and checks every tap against the CPU
// reference — bit-identical in both lowerings.
func runInt8Lanes(t *testing.T, m *Model, batch int, input []int8) {
	t.Helper()
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	dev := openTest(t)
	defer dev.Close()
	want, _, err := m.Reference(input, batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{1, 4} {
		net, err := m.BuildLanes(dev, batch, true, lanes)
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		res, err := net.Run(input)
		if err != nil {
			net.Close()
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		for li, info := range m.Layers() {
			if !Int8Equal(res.Taps[li], want[li]) {
				t.Fatalf("lanes=%d layer %s (%s): GPU differs from reference", lanes, info.Name, info.Kind)
			}
		}
		net.Close()
	}
}

// TestInt8SingleLayersDifferential exercises each int8 layer kind in a
// tiny model with channel counts that do NOT divide 4, so the packed
// lowering's padding and stripping are both on the hot path.
func TestInt8SingleLayersDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		name  string
		in    Shape
		build func(m *Model)
	}{
		{"conv-pad", Shape{7, 9, 3}, func(m *Model) {
			m.Conv2D("conv", 3, 3, 5, 1, randI8(rng, 3*3*3*5, -2, 2), randI8(rng, 5, -8, 8)).
				Rescale("rq", 2)
		}},
		{"conv-stride2", Shape{9, 9, 2}, func(m *Model) {
			m.Conv2D("conv", 3, 3, 4, 2, randI8(rng, 3*3*2*4, -2, 2), randI8(rng, 4, -8, 8)).
				Rescale("rq", 2)
		}},
		{"dwconv-pad", Shape{8, 6, 3}, func(m *Model) {
			m.DepthwiseConv("dw", 3, 3, 1, randI8(rng, 9*3, -2, 2), randI8(rng, 3, -8, 8)).
				Rescale("rq", 1)
		}},
		{"pool-pad", Shape{6, 6, 3}, func(m *Model) {
			m.MaxPool("pool", 2, 2, 2)
		}},
		{"pool-overlap", Shape{7, 7, 5}, func(m *Model) {
			m.MaxPool("pool", 3, 3, 2)
		}},
		{"relu", Shape{5, 5, 6}, func(m *Model) {
			m.ReLU("relu")
		}},
		{"dense-pad", Shape{5, 5, 3}, func(m *Model) {
			m.Dense("fc", 7, randI8(rng, 75*7, -2, 2), randI8(rng, 7, -8, 8)).
				Rescale("rq", 4)
		}},
		{"conv-relu-dense", Shape{8, 8, 3}, func(m *Model) {
			m.Conv2D("conv", 3, 3, 5, 1, randI8(rng, 27*5, -2, 2), randI8(rng, 5, -8, 8)).
				Rescale("rq1", 3).
				ReLU("relu").
				MaxPool("pool", 2, 2, 2).
				Dense("fc", 9, randI8(rng, 3*3*5*9, -2, 2), randI8(rng, 9, -8, 8)).
				Rescale("rq2", 5)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewModel(codec.Int8, tc.in)
			tc.build(m)
			const batch = 3
			runInt8Lanes(t, m, batch, randI8(rng, batch*tc.in.N(), -8, 7))
		})
	}
}

// TestInt8LeNetDifferential is the whole-network differential on the
// demo model — the configuration the N1 experiment reports.
func TestInt8LeNetDifferential(t *testing.T) {
	m := DemoLeNetInt8(7)
	runInt8Lanes(t, m, 2, DemoInputInt8(8, 2))
}

// TestInt8FoldValidation pins the folding contract's error paths.
func TestInt8FoldValidation(t *testing.T) {
	dev := openTest(t)
	defer dev.Close()
	rng := rand.New(rand.NewSource(3))

	// Matmul without a following Rescale.
	m := NewModel(codec.Int8, Shape{4, 4, 2}).
		Conv2D("conv", 3, 3, 4, 1, randI8(rng, 9*2*4, -2, 2), randI8(rng, 4, -8, 8))
	if _, err := m.Build(dev, 1, false); err == nil {
		t.Error("conv without Rescale built, want error")
	}

	// Rescale not after a matmul.
	m = NewModel(codec.Int8, Shape{4, 4, 2}).
		ReLU("relu").
		Rescale("rq", 2)
	if _, err := m.Build(dev, 1, false); err == nil {
		t.Error("free-standing Rescale built, want error")
	}

	// 4-wide lowering rejected for non-int8 models.
	mf := DemoLeNetFloat32(1)
	if _, err := mf.BuildLanes(dev, 1, false, 4); err == nil {
		t.Error("4-wide float32 build succeeded, want error")
	}
}

// TestInt8EnvDisableVec4 checks the scalar-path env escape hatch that CI
// smokes: with GLESCOMPUTE_NO_VEC4 set, Build falls back to lanes=1.
func TestInt8EnvDisableVec4(t *testing.T) {
	dev := openTest(t)
	defer dev.Close()
	m := DemoLeNetInt8(7)
	t.Setenv(core.EnvDisableVec4, "1")
	net, err := m.Build(dev, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if net.Lanes() != 1 {
		t.Fatalf("Lanes() = %d with %s set, want 1", net.Lanes(), core.EnvDisableVec4)
	}
}

// TestInt8Vec4ModeledSpeedup asserts the tentpole's performance claim at
// the library level: the vec4 lowering's modeled whole-network time is
// at least 2x faster than the scalar int8 lowering (the N1 experiment
// gates the same ratio in CI).
func TestInt8Vec4ModeledSpeedup(t *testing.T) {
	dev := openTest(t)
	defer dev.Close()
	m := DemoLeNetInt8(7)
	input := DemoInputInt8(8, 4)
	times := map[int]float64{}
	for _, lanes := range []int{1, 4} {
		net, err := m.BuildLanes(dev, 4, false, lanes)
		if err != nil {
			t.Fatal(err)
		}
		res, err := net.Run(input)
		if err != nil {
			net.Close()
			t.Fatal(err)
		}
		times[lanes] = res.Stats.Time.Total().Seconds()
		net.Close()
	}
	speedup := times[1] / times[4]
	t.Logf("modeled net time: scalar %.1fµs, vec4 %.1fµs, speedup %.2fx",
		times[1]*1e6, times[4]*1e6, speedup)
	if speedup < 2 {
		t.Fatalf("vec4 modeled speedup %.2fx, want >= 2x", speedup)
	}
}
