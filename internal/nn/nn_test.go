package nn

import (
	"math"
	"math/rand"
	"testing"

	"glescompute/internal/codec"
	"glescompute/internal/core"
)

func openTest(t *testing.T) *core.Device {
	t.Helper()
	dev, err := core.Open(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// runNet builds the model at the given batch with all layers tapped and
// runs it once.
func runNet(t *testing.T, dev *core.Device, m *Model, batch int, input interface{}) *Result {
	t.Helper()
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	net, err := m.Build(dev, batch, true)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	res, err := net.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkInt32Exact asserts GPU output bit-identical to the reference.
func checkInt32Exact(t *testing.T, layer string, got, want interface{}) {
	t.Helper()
	g, w := got.([]int32), want.([]int32)
	if len(g) != len(w) {
		t.Fatalf("%s: %d outputs, want %d", layer, len(g), len(w))
	}
	for i := range w {
		if g[i] != w[i] {
			t.Fatalf("%s: element %d: got %d, want %d (int path must be bit-identical)", layer, i, g[i], w[i])
		}
	}
}

func checkFloatClose(t *testing.T, layer string, got, want interface{}, tol float64) {
	t.Helper()
	g, w := got.([]float32), want.([]float32)
	if len(g) != len(w) {
		t.Fatalf("%s: %d outputs, want %d", layer, len(g), len(w))
	}
	if worst := MaxHybridErr(got, want); worst > tol {
		t.Fatalf("%s: worst error %.3g exceeds tolerance %.3g", layer, worst, tol)
	}
}

func randF(rng *rand.Rand, n int, scale float32) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = (rng.Float32()*2 - 1) * scale
	}
	return out
}

func randI(rng *rand.Rand, n, lo, hi int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(lo + rng.Intn(hi-lo+1))
	}
	return out
}

// singleLayerModels builds one tiny model per layer kind (odd sizes,
// stride 2 variants included) for both element types.
func TestSingleLayersDifferential(t *testing.T) {
	dev := openTest(t)
	defer dev.Close()
	rng := rand.New(rand.NewSource(1))

	cases := []struct {
		name  string
		in    Shape
		build func(m *Model, elem codec.ElemType)
	}{
		{"conv-3x3", Shape{7, 9, 3}, func(m *Model, e codec.ElemType) {
			k := 3 * 3 * 3 * 5
			if e == codec.Float32 {
				m.Conv2D("conv", 3, 3, 5, 1, randF(rng, k, 0.5), randF(rng, 5, 0.5))
			} else {
				m.Conv2D("conv", 3, 3, 5, 1, randI(rng, k, -3, 3), randI(rng, 5, -9, 9))
			}
		}},
		{"conv-stride2", Shape{9, 9, 2}, func(m *Model, e codec.ElemType) {
			k := 3 * 3 * 2 * 4
			if e == codec.Float32 {
				m.Conv2D("conv", 3, 3, 4, 2, randF(rng, k, 0.5), randF(rng, 4, 0.5))
			} else {
				m.Conv2D("conv", 3, 3, 4, 2, randI(rng, k, -3, 3), randI(rng, 4, -9, 9))
			}
		}},
		{"dwconv", Shape{8, 6, 4}, func(m *Model, e codec.ElemType) {
			if e == codec.Float32 {
				m.DepthwiseConv("dw", 3, 3, 1, randF(rng, 9*4, 0.5), randF(rng, 4, 0.5))
			} else {
				m.DepthwiseConv("dw", 3, 3, 1, randI(rng, 9*4, -3, 3), randI(rng, 4, -9, 9))
			}
		}},
		{"dwconv-stride2", Shape{9, 7, 3}, func(m *Model, e codec.ElemType) {
			if e == codec.Float32 {
				m.DepthwiseConv("dw", 3, 3, 2, randF(rng, 9*3, 0.5), randF(rng, 3, 0.5))
			} else {
				m.DepthwiseConv("dw", 3, 3, 2, randI(rng, 9*3, -3, 3), randI(rng, 3, -9, 9))
			}
		}},
		{"maxpool-2x2", Shape{6, 8, 3}, func(m *Model, e codec.ElemType) {
			m.MaxPool("pool", 2, 2, 2)
		}},
		{"maxpool-3x3s1", Shape{7, 7, 2}, func(m *Model, e codec.ElemType) {
			m.MaxPool("pool", 3, 3, 1)
		}},
		{"relu", Shape{5, 5, 4}, func(m *Model, e codec.ElemType) {
			m.ReLU("relu")
		}},
		{"dense", Shape{3, 4, 5}, func(m *Model, e codec.ElemType) {
			if e == codec.Float32 {
				m.Dense("fc", 11, randF(rng, 60*11, 0.3), randF(rng, 11, 0.3))
			} else {
				m.Dense("fc", 11, randI(rng, 60*11, -3, 3), randI(rng, 11, -9, 9))
			}
		}},
		{"rescale", Shape{4, 4, 3}, func(m *Model, e codec.ElemType) {
			m.Rescale("requant", 3)
		}},
	}

	for _, tc := range cases {
		for _, batch := range []int{1, 3} {
			// Integer configuration: bit-identical.
			mi := NewModel(codec.Int32, tc.in)
			tc.build(mi, codec.Int32)
			xi := randI(rng, batch*tc.in.N(), -40, 40)
			wantI, _, err := mi.Reference(xi, batch)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			resI := runNet(t, dev, mi, batch, xi)
			checkInt32Exact(t, tc.name+"/int32", resI.Output, wantI[len(wantI)-1])

			// Float configuration: codec-tolerance-bounded.
			mf := NewModel(codec.Float32, tc.in)
			tc.build(mf, codec.Float32)
			xf := randF(rng, batch*tc.in.N(), 2)
			wantF, _, err := mf.Reference(xf, batch)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			resF := runNet(t, dev, mf, batch, xf)
			checkFloatClose(t, tc.name+"/float32", resF.Output, wantF[len(wantF)-1], 1.0/(1<<8))
		}
	}
}

func TestSoftmaxDifferential(t *testing.T) {
	dev := openTest(t)
	defer dev.Close()
	rng := rand.New(rand.NewSource(2))
	m := NewModel(codec.Float32, Shape{1, 1, 13}).Softmax("softmax")
	x := randF(rng, 3*13, 6)
	want, _, err := m.Reference(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	res := runNet(t, dev, m, 3, x)
	g, w := res.Output.([]float32), want[0].([]float32)
	for i := range w {
		if d := math.Abs(float64(g[i]) - float64(w[i])); d > 2e-3 {
			t.Fatalf("softmax: element %d: |%g - %g| = %.3g > 2e-3", i, g[i], w[i], d)
		}
	}
}

// TestLeNetFloatPerLayer validates every layer of the float LeNet-scale
// network against refcpu within the codec tolerance budget, and asserts
// the whole chain ran device-resident.
func TestLeNetFloatPerLayer(t *testing.T) {
	dev := openTest(t)
	defer dev.Close()
	m := DemoLeNetFloat32(20160316)
	x := DemoInputFloat32(7, 1)
	want, _, err := m.Reference(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := runNet(t, dev, m, 1, x)
	if res.Stats.HostUploadBytes != 0 || res.Stats.HostReadbackBytes != 0 {
		t.Fatalf("network moved %d/%d host bytes between layers, want 0",
			res.Stats.HostUploadBytes, res.Stats.HostReadbackBytes)
	}
	layers := m.Layers()
	if len(res.Taps) != len(layers) {
		t.Fatalf("%d taps, want %d", len(res.Taps), len(layers))
	}
	for i, l := range layers {
		tol := 1.0 / (1 << 8)
		if l.Kind == KindSoftmax {
			// Probabilities: exp amplifies logit error by |logit|; bound
			// absolutely instead.
			g, w := res.Taps[i].([]float32), want[i].([]float32)
			for j := range w {
				if d := math.Abs(float64(g[j]) - float64(w[j])); d > 2e-3 {
					t.Fatalf("%s: element %d: |%g - %g| = %.3g > 2e-3", l.Name, j, g[j], w[j], d)
				}
			}
			continue
		}
		checkFloatClose(t, l.Name, res.Taps[i], want[i], tol)
	}
}

// TestLeNetIntBitIdentical validates every layer of the integer network
// bit-for-bit: the requantized int path through the GPU is exact.
func TestLeNetIntBitIdentical(t *testing.T) {
	dev := openTest(t)
	defer dev.Close()
	m := DemoLeNetInt32(20160316)
	for _, batch := range []int{1, 2} {
		x := DemoInputInt32(11, batch)
		want, _, err := m.Reference(x, batch)
		if err != nil {
			t.Fatal(err)
		}
		res := runNet(t, dev, m, batch, x)
		for i, l := range m.Layers() {
			checkInt32Exact(t, l.Name, res.Taps[i], want[i])
		}
	}
}

// TestBatchedMatchesSolo pins the batching guarantee the N1 serve sweep
// relies on: a batch-B network produces, for every image, exactly the bits
// a batch-1 network produces — float32 included, because the per-element
// arithmetic is independent of where the batch layout places it.
func TestBatchedMatchesSolo(t *testing.T) {
	dev := openTest(t)
	defer dev.Close()
	const B = 3
	m := DemoLeNetFloat32(20160316)
	xs := DemoInputFloat32(23, B)
	per := DemoShape.N()

	netB, err := m.Build(dev, B, false)
	if err != nil {
		t.Fatal(err)
	}
	defer netB.Close()
	resB, err := netB.Run(xs)
	if err != nil {
		t.Fatal(err)
	}
	batched := resB.Output.([]float32)

	net1, err := m.Build(dev, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	defer net1.Close()
	for b := 0; b < B; b++ {
		res1, err := net1.Run(xs[b*per : (b+1)*per])
		if err != nil {
			t.Fatal(err)
		}
		solo := res1.Output.([]float32)
		for j := range solo {
			if math.Float32bits(solo[j]) != math.Float32bits(batched[b*DemoClasses+j]) {
				t.Fatalf("image %d class %d: batched %g != solo %g (must be bit-identical)",
					b, j, batched[b*DemoClasses+j], solo[j])
			}
		}
	}
}

// TestLayerTimesCoverChain pins the per-layer time attribution: one entry
// per layer, summing to the whole-chain modeled time. With fusion on
// (the default), a layer fused into its producer's pass (the ReLUs)
// reports zero — its cost is charged to the fused chain's head.
func TestLayerTimesCoverChain(t *testing.T) {
	dev := openTest(t)
	defer dev.Close()
	m := DemoLeNetFloat32(20160316)
	net, err := m.Build(dev, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	res, err := net.Run(DemoInputFloat32(7, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LayerTimes) != len(m.Layers()) {
		t.Fatalf("%d layer times, want %d", len(res.LayerTimes), len(m.Layers()))
	}
	var sum core.Timeline
	for i, lt := range res.LayerTimes {
		kind := m.Layers()[i].Kind
		if kind != KindReLU && kind != KindPool && lt.Execute <= 0 {
			t.Errorf("layer %d (%s): non-positive modeled execute time", i, m.Layers()[i].Name)
		}
		sum = sum.Add(lt)
	}
	if sum != res.Stats.Time {
		t.Fatalf("layer times sum to %+v, chain is %+v", sum, res.Stats.Time)
	}
	// relu1..relu4, pool1, pool2 and the softmax lse scan all merge into
	// neighbouring passes.
	if res.Stats.FusedStages != 7 {
		t.Errorf("FusedStages = %d, want 7", res.Stats.FusedStages)
	}

	// Unfused reference path: every layer keeps its own pass and time.
	net2, err := m.Build(dev, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	defer net2.Close()
	net2.SetFusion(false)
	res2, err := net2.Run(DemoInputFloat32(7, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i, lt := range res2.LayerTimes {
		if lt.Execute <= 0 {
			t.Errorf("unfused layer %d (%s): non-positive modeled execute time", i, m.Layers()[i].Name)
		}
	}
}

// TestLeNetFusedPassCounts pins the acceptance bar of the fusion planner:
// the float LeNet executes in ≤ 11 fragment passes (actually 8 from 15
// builder stages: ReLUs fuse into their GEMM producers as epilogues,
// non-overlapping pools absorb the fused GEMM chain by inlining, and the
// softmax normalize absorbs the log-sum-exp scan), the integer LeNet in
// ≤ 9 (Rescales fold in too), and the fused passes carry the
// layer-joined labels.
func TestLeNetFusedPassCounts(t *testing.T) {
	dev := openTest(t)
	defer dev.Close()

	mf := DemoLeNetFloat32(20160316)
	netF, err := mf.Build(dev, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	defer netF.Close()
	passesF, err := netF.PlannedPasses()
	if err != nil {
		t.Fatal(err)
	}
	if len(passesF) > 11 {
		t.Errorf("float LeNet planned %d passes %v, want <= 11", len(passesF), passesF)
	}
	found := false
	for _, l := range passesF {
		if l == "conv1+relu1+pool1" {
			found = true
		}
	}
	if !found {
		t.Errorf("planned passes %v missing fused label conv1+relu1+pool1", passesF)
	}

	mi := DemoLeNetInt32(20160316)
	netI, err := mi.Build(dev, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	defer netI.Close()
	passesI, err := netI.PlannedPasses()
	if err != nil {
		t.Fatal(err)
	}
	if len(passesI) > 9 {
		t.Errorf("int LeNet planned %d passes %v, want <= 9", len(passesI), passesI)
	}

	// Tapping every layer forces materialization: no cross-layer fusion
	// in tap mode (only the intra-layer softmax lse scan, which is not a
	// tapped layer output, still fuses: 15 stages → 14 passes).
	netT, err := mf.Build(dev, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	defer netT.Close()
	passesT, err := netT.PlannedPasses()
	if err != nil {
		t.Fatal(err)
	}
	if len(passesT) != 14 {
		t.Errorf("tapped float LeNet planned %d passes, want 14 (every layer output materialized)", len(passesT))
	}
}

// TestLeNetIntFusedBitIdentical pins the fusion correctness obligation on
// the real workload: the fused integer network's output is bit-identical
// to the unfused path and to the refcpu reference.
func TestLeNetIntFusedBitIdentical(t *testing.T) {
	dev := openTest(t)
	defer dev.Close()
	m := DemoLeNetInt32(20160316)
	x := DemoInputInt32(11, 2)
	want, _, err := m.Reference(x, 2)
	if err != nil {
		t.Fatal(err)
	}

	run := func(fuse bool) []int32 {
		net, err := m.Build(dev, 2, false)
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		net.SetFusion(fuse)
		res, err := net.Run(x)
		if err != nil {
			t.Fatal(err)
		}
		return res.Output.([]int32)
	}
	fused, unfused := run(true), run(false)
	checkInt32Exact(t, "fused vs refcpu", fused, want[len(want)-1])
	checkInt32Exact(t, "fused vs unfused", fused, unfused)
}

// TestModelBuilderErrors pins the deferred-error discipline.
func TestModelBuilderErrors(t *testing.T) {
	dev := openTest(t)
	defer dev.Close()
	cases := []struct {
		name string
		m    *Model
	}{
		{"softmax-on-int", NewModel(codec.Int32, Shape{1, 1, 4}).Softmax("s")},
		{"bad-weight-len", NewModel(codec.Float32, Shape{4, 4, 1}).Conv2D("c", 3, 3, 2, 1, make([]float32, 5), make([]float32, 2))},
		{"wrong-weight-type", NewModel(codec.Float32, Shape{4, 4, 1}).Conv2D("c", 3, 3, 2, 1, make([]int32, 18), make([]int32, 2))},
		{"taps-too-big", NewModel(codec.Float32, Shape{20, 20, 1}).MaxPool("p", 9, 9, 1)},
		{"oversize-window", NewModel(codec.Float32, Shape{4, 4, 1}).MaxPool("p", 5, 5, 1)},
		{"empty", NewModel(codec.Float32, Shape{4, 4, 1})},
	}
	for _, tc := range cases {
		if _, err := tc.m.Build(dev, 1, false); err == nil {
			t.Errorf("%s: Build succeeded, want error", tc.name)
		}
	}
	m := NewModel(codec.Float32, Shape{2, 2, 1}).ReLU("r")
	net, err := m.Build(dev, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(make([]float32, 3)); err == nil {
		t.Error("Run with wrong input length succeeded, want error")
	}
	net.Close()
	if _, err := net.Run(make([]float32, 4)); err == nil {
		t.Error("Run on closed network succeeded, want error")
	}
}
