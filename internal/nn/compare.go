package nn

import "math"

// Float validation thresholds for codec-bounded comparisons against the
// refcpu baselines (see EXPERIMENTS.md §N1 for the derivation from the
// paper's ~15-mantissa-bit codec precision, P1).
const (
	// FloatTol bounds MaxHybridErr for conv/dense/pool/relu layer outputs.
	FloatTol = 1.0 / (1 << 8)
	// SoftmaxAbsTol bounds the absolute error of softmax probabilities
	// (exp amplifies logit error by the logit magnitude, so the relative
	// form is the wrong yardstick there).
	SoftmaxAbsTol = 2e-3
)

// MaxHybridErr returns the worst per-element error |got-want| divided by
// max(|want|, 1% of the layer's dynamic range): relative in the bulk,
// absolute near zero, so elements produced by cancellation don't dominate
// the metric. Both arguments must be []float32 of equal length.
func MaxHybridErr(got, want interface{}) float64 {
	g, w := got.([]float32), want.([]float32)
	scale := 0.0
	for _, v := range w {
		if a := math.Abs(float64(v)); a > scale {
			scale = a
		}
	}
	scale = math.Max(scale*1e-2, 1e-6)
	worst := 0.0
	for i := range w {
		err := math.Abs(float64(g[i]) - float64(w[i]))
		if rel := err / math.Max(math.Abs(float64(w[i])), scale); rel > worst {
			worst = rel
		}
	}
	return worst
}

// MaxAbsErr returns the worst per-element absolute error.
func MaxAbsErr(got, want interface{}) float64 {
	g, w := got.([]float32), want.([]float32)
	worst := 0.0
	for i := range w {
		if d := math.Abs(float64(g[i]) - float64(w[i])); d > worst {
			worst = d
		}
	}
	return worst
}

// Int8Equal reports whether two []int8 slices are bit-identical.
func Int8Equal(got, want interface{}) bool {
	g, w := got.([]int8), want.([]int8)
	if len(g) != len(w) {
		return false
	}
	for i := range w {
		if g[i] != w[i] {
			return false
		}
	}
	return true
}

// Int32Equal reports whether two []int32 slices are bit-identical.
func Int32Equal(got, want interface{}) bool {
	g, w := got.([]int32), want.([]int32)
	if len(g) != len(w) {
		return false
	}
	for i := range w {
		if g[i] != w[i] {
			return false
		}
	}
	return true
}
