package nn

import (
	"fmt"

	"glescompute/internal/codec"
	"glescompute/internal/core"
)

// Kernel loop bounds. GLSL ES 1.00 for-loops need literal bounds
// (Appendix A), so inner loops run to a compile-time ceiling and break at
// the live size carried in a uniform — the sgemm idiom. The model builder
// rejects layers that would exceed them.
const (
	maxInner = 4096 // im2col / dense inner dimension, softmax row length
	maxTaps  = 64   // depthwise / pooling window taps
)

// All nn kernels address tensors linearly through the gc_<in>(idx)
// accessors, so they are independent of the 2D texture layout the
// pipeline's pooled intermediates happen to use. Index decompositions use
// the repo-wide floor((i + 0.5) / d) guard (see internal/layout). Every
// index computed in-shader must stay inside fp32's exact integer window
// (±2^24); Build enforces it per stage.

// im2colSource gathers every receptive field of the input tensor into one
// row of the patch matrix: output element (r, t) — r indexing
// (batch, oy, ox) patches, t indexing (ky, kx, ic) taps — is input element
// (b, oy·stride+ky, ox·stride+kx, ic). The patch matrix is row-packed
// [rows][K] so the GEMM stage can walk a row with consecutive linear
// fetches.
const im2colSource = `
float gc_kernel(float idx) {
	float r = floor((idx + 0.5) / u_kk);
	float t = idx - r * u_kk;
	float b = floor((r + 0.5) / u_ohw);
	float p = r - b * u_ohw;
	float oy = floor((p + 0.5) / u_ow);
	float ox = p - oy * u_ow;
	float ky = floor((t + 0.5) / u_kwic);
	float q = t - ky * u_kwic;
	float kx = floor((q + 0.5) / u_ic);
	float ic = q - kx * u_ic;
	float y = oy * u_stride + ky;
	float x = ox * u_stride + kx;
	return gc_x(((b * u_inh + y) * u_inw + x) * u_ic + ic);
}
`

// gemmSource is the shared GEMM+bias kernel: out[r][c] = bias[c] +
// Σ_k x[r][k]·w[k][cols]. Conv2D runs it over the im2col patch matrix;
// Dense runs it with one row per batch image.
const gemmSource = `
float gc_kernel(float idx) {
	float r = floor((idx + 0.5) / u_cols);
	float c = idx - r * u_cols;
	float acc = gc_bias(c);
	for (float k = 0.0; k < 4096.0; k += 1.0) {
		if (k >= u_k) { break; }
		acc += gc_x(r * u_k + k) * gc_w(k * u_cols + c);
	}
	return acc;
}
`

// dwSource is the depthwise convolution: each channel convolved with its
// own filter, taps visited in (ky, kx) order.
const dwSource = `
float gc_kernel(float idx) {
	float b = floor((idx + 0.5) / u_on);
	float p = idx - b * u_on;
	float oy = floor((p + 0.5) / u_owc);
	float q = p - oy * u_owc;
	float ox = floor((q + 0.5) / u_c);
	float c = q - ox * u_c;
	float acc = gc_bias(c);
	for (float t = 0.0; t < 64.0; t += 1.0) {
		if (t >= u_taps) { break; }
		float ky = floor((t + 0.5) / u_kw);
		float kx = t - ky * u_kw;
		float y = oy * u_stride + ky;
		float x = ox * u_stride + kx;
		acc += gc_x(((b * u_inh + y) * u_inw + x) * u_c + c) * gc_w(t * u_c + c);
	}
	return acc;
}
`

// poolSource is max-pooling; the accumulator starts at tap (0,0) so no
// sentinel minimum is needed (taps never leave the window: valid pooling).
const poolSource = `
float gc_kernel(float idx) {
	float b = floor((idx + 0.5) / u_on);
	float p = idx - b * u_on;
	float oy = floor((p + 0.5) / u_owc);
	float q = p - oy * u_owc;
	float ox = floor((q + 0.5) / u_c);
	float c = q - ox * u_c;
	float acc = gc_x(((b * u_inh + oy * u_stride) * u_inw + ox * u_stride) * u_c + c);
	for (float t = 1.0; t < 64.0; t += 1.0) {
		if (t >= u_taps) { break; }
		float ky = floor((t + 0.5) / u_pw);
		float kx = t - ky * u_pw;
		float y = oy * u_stride + ky;
		float x = ox * u_stride + kx;
		acc = max(acc, gc_x(((b * u_inh + y) * u_inw + x) * u_c + c));
	}
	return acc;
}
`

const reluSource = `
float gc_kernel(float idx) {
	return max(gc_x(idx), 0.0);
}
`

// relu and rescale are declared ElementWise: they read their input only
// at the fragment's own index, so the pipeline's fusion planner folds
// them into the producing pass (GEMM, depthwise, pooling — all declared
// FusableEpilogue) instead of paying a full launch plus an RGBA8
// encode→texture→decode round trip for a single max() or floor(). Int32
// semantics are unaffected (max and the exact power-of-two floor-divide
// are bit-identical with or without the intermediate codec round trip);
// float32 results get closer to the real-arithmetic value.

// rescaleIntSource is the exact fixed-point requantization: x is an
// integer-valued float ≤ 2^24 and u_scale a power of two, so the division
// and floor are both exact — bit-identical to x >> shift on the CPU.
const rescaleIntSource = `
float gc_kernel(float idx) {
	return floor(gc_x(idx) / u_scale);
}
`

const rescaleFloatSource = `
float gc_kernel(float idx) {
	return gc_x(idx) / u_scale;
}
`

// Softmax lowers to two passes, each a per-row scan so it works for any
// batch size (core.Pipeline's Reduce folds whole slots, not rows). Pass 1
// computes the per-row log-sum-exp L(b) = m + log(Σ exp(x - m)) with the
// row max m folded into the same kernel (two sequential bounded loops);
// pass 2 normalizes each element as exp(x - L). This is the classic
// stable softmax rewritten as exp(x - m)/Σ = exp(x - m - log Σ), which
// halves the pass count of the old max/exp/sum/div lowering and deletes
// two whole-row codec round trips — the exp values never materialize.
const lseSource = `
float gc_kernel(float idx) {
	float m = gc_x(idx * u_n);
	for (float k = 1.0; k < 4096.0; k += 1.0) {
		if (k >= u_n) { break; }
		m = max(m, gc_x(idx * u_n + k));
	}
	float s = 0.0;
	for (float k = 0.0; k < 4096.0; k += 1.0) {
		if (k >= u_n) { break; }
		s += exp(gc_x(idx * u_n + k) - m);
	}
	return m + log(s);
}
`

const smNormSource = `
float gc_kernel(float idx) {
	float b = floor((idx + 0.5) / u_n);
	return exp(gc_x(idx) - gc_l(b));
}
`

// ---- int8 path ----
//
// The int8 configuration stores activations and weights as int8 and
// requantizes after every matmul: each Conv2D/Dense/DepthwiseConv layer
// must be immediately followed by Rescale, and Build folds the pair into
// one kernel (the pre-requant accumulator exceeds int8, so it can never
// materialize in an int8 tensor). Requantization is
// clamp(floor(acc / 2^shift), -128, 127) — identical on the GPU (exact
// float arithmetic below 2^24) and the CPU reference (arithmetic shift).
//
// The scalar (lanes=1) variants below run on FmtInt8 buffers through the
// same linear-accessor idiom as the float/int32 kernels. The 4-wide
// (lanes=4) variants run on FmtInt8x4 buffers, one output TEXEL per
// fragment; they rely on the packed lowering's alignment invariant —
// every channel dimension padded to a multiple of 4 (C4 layout), so a
// group of 4 consecutive logical indices always shares its texel and
// aligned input fetches decode 4 values in one texture access.

// gemmRequantSource is the scalar GEMM with the following Rescale folded
// in. x rows are walked linearly like gemmSource; the clamp matches the
// int8 encoder's range so GPU and CPU agree even when a budget is blown.
const gemmRequantSource = `
float gc_kernel(float idx) {
	float r = floor((idx + 0.5) / u_cols);
	float c = idx - r * u_cols;
	float acc = gc_bias(c);
	for (float k = 0.0; k < 4096.0; k += 1.0) {
		if (k >= u_k) { break; }
		acc += gc_x(r * u_k + k) * gc_w(k * u_cols + c);
	}
	return clamp(floor(acc / u_scale), -128.0, 127.0);
}
`

// dwRequantSourceTmpl is the scalar depthwise convolution with folded
// Rescale. The requant scale is baked into the source as a literal
// (%[1]s) instead of riding a uniform: with three samplers, three dims
// vectors and the two output slots, the nine-uniform depthwise interface
// would need a seventeenth fragment-uniform vector — one past the GLES
// 2.0 minimum of 16 the simulated device enforces. The kernel cache keys
// on source, so per-shift variants never collide.
const dwRequantSourceTmpl = `
float gc_kernel(float idx) {
	float b = floor((idx + 0.5) / u_on);
	float p = idx - b * u_on;
	float oy = floor((p + 0.5) / u_owc);
	float q = p - oy * u_owc;
	float ox = floor((q + 0.5) / u_c);
	float c = q - ox * u_c;
	float acc = gc_bias(c);
	for (float t = 0.0; t < 64.0; t += 1.0) {
		if (t >= u_taps) { break; }
		float ky = floor((t + 0.5) / u_kw);
		float kx = t - ky * u_kw;
		float y = oy * u_stride + ky;
		float x = ox * u_stride + kx;
		acc += gc_x(((b * u_inh + y) * u_inw + x) * u_c + c) * gc_w(t * u_c + c);
	}
	return clamp(floor(acc / %[1]s), -128.0, 127.0);
}
`

// im2col4Source is the 4-wide patch gather. The patch matrix's inner
// dimension is the LOGICAL receptive field padded to a multiple of 4
// (K = ceil4(kh·kw·inC)) — K is deliberately not inherited from the C4
// activation layout, because for narrow inputs (inC=1 pads to 4) that
// would multiply the GEMM's inner loop by up to 4x in zero work. Each
// output texel holds 4 consecutive k's of one patch row; the k's may
// cross tap boundaries, so every lane runs its own (tap, ic)
// decomposition and a scalar lane-select fetch from the C4-padded input
// (stride u_ic4, logical channels u_ic). Padded tail k's (k ≥ kh·kw·inC)
// gather clamped garbage — harmless, because the GEMM's weight matrix is
// zero-padded along the same dimension, so those lanes always multiply
// by zero.
const im2col4Source = `
float gc_col(float k, float rowbase, float y0, float x0) {
	float tap = floor((k + 0.5) / u_ic);
	float ic = k - tap * u_ic;
	float ky = floor((tap + 0.5) / u_kw);
	float kx = tap - ky * u_kw;
	return gc_x(((rowbase + y0 + ky) * u_inw + x0 + kx) * u_ic4 + ic);
}
vec4 gc_kernel(float tidx) {
	float idx = tidx * 4.0;
	float r = floor((idx + 0.5) / u_kk);
	float k0 = idx - r * u_kk;
	float b = floor((r + 0.5) / u_ohw);
	float p = r - b * u_ohw;
	float oy = floor((p + 0.5) / u_ow);
	float ox = p - oy * u_ow;
	float rowbase = b * u_inh;
	float y0 = oy * u_stride;
	float x0 = ox * u_stride;
	return vec4(gc_col(k0, rowbase, y0, x0), gc_col(k0 + 1.0, rowbase, y0, x0),
		gc_col(k0 + 2.0, rowbase, y0, x0), gc_col(k0 + 3.0, rowbase, y0, x0));
}
`

// gemm4RequantSource is the 4-wide GEMM with folded Rescale: one fragment
// computes output (r, c..c+3). Each inner iteration consumes FOUR k's
// through one aligned x texel and four aligned w texels — 16 MACs per 5
// texture fetches, against 32 fetches for the same work on the scalar
// path. The literal bound 1024 covers u_k ≤ maxInner at 4 k's per trip.
const gemm4RequantSource = `
vec4 gc_kernel(float tidx) {
	float idx = tidx * 4.0;
	float r = floor((idx + 0.5) / u_cols);
	float c = idx - r * u_cols;
	vec4 acc = gc_bias4(c / 4.0);
	float xbase = r * u_k / 4.0;
	float wrow = u_cols / 4.0;
	float ctex = c / 4.0;
	for (float k = 0.0; k < 1024.0; k += 1.0) {
		if (k * 4.0 >= u_k) { break; }
		vec4 xv = gc_x4(xbase + k);
		float wbase = k * 4.0 * wrow + ctex;
		acc += xv.r * gc_w4(wbase);
		acc += xv.g * gc_w4(wbase + wrow);
		acc += xv.b * gc_w4(wbase + wrow * 2.0);
		acc += xv.a * gc_w4(wbase + wrow * 3.0);
	}
	return clamp(floor(acc / u_scale), vec4(-128.0), vec4(127.0));
}
`

// dw4RequantSourceTmpl is the 4-wide depthwise convolution with folded
// Rescale: four channels of one output pixel per fragment, each tap one
// aligned activation texel and one aligned weight texel. The scale is a
// baked literal for the same uniform-budget reason as the scalar variant.
const dw4RequantSourceTmpl = `
vec4 gc_kernel(float tidx) {
	float idx = tidx * 4.0;
	float b = floor((idx + 0.5) / u_on);
	float p = idx - b * u_on;
	float oy = floor((p + 0.5) / u_owc);
	float q = p - oy * u_owc;
	float ox = floor((q + 0.5) / u_c);
	float c = q - ox * u_c;
	vec4 acc = gc_bias4(c / 4.0);
	for (float t = 0.0; t < 64.0; t += 1.0) {
		if (t >= u_taps) { break; }
		float ky = floor((t + 0.5) / u_kw);
		float kx = t - ky * u_kw;
		float y = oy * u_stride + ky;
		float x = ox * u_stride + kx;
		acc += gc_x4((((b * u_inh + y) * u_inw + x) * u_c + c) / 4.0) * gc_w4((t * u_c + c) / 4.0);
	}
	return clamp(floor(acc / %[1]s), vec4(-128.0), vec4(127.0));
}
`

// dwRequantSrc renders the depthwise+requant source for one shift,
// scalar or 4-wide.
func dwRequantSrc(shift uint, packed bool) string {
	scale := fmt.Sprintf("%.1f", float64(uint64(1)<<shift))
	if packed {
		return fmt.Sprintf(dw4RequantSourceTmpl, scale)
	}
	return fmt.Sprintf(dwRequantSourceTmpl, scale)
}

// pool4Source is 4-wide max-pooling over the C4 layout.
const pool4Source = `
vec4 gc_kernel(float tidx) {
	float idx = tidx * 4.0;
	float b = floor((idx + 0.5) / u_on);
	float p = idx - b * u_on;
	float oy = floor((p + 0.5) / u_owc);
	float q = p - oy * u_owc;
	float ox = floor((q + 0.5) / u_c);
	float c = q - ox * u_c;
	vec4 acc = gc_x4((((b * u_inh + oy * u_stride) * u_inw + ox * u_stride) * u_c + c) / 4.0);
	for (float t = 1.0; t < 64.0; t += 1.0) {
		if (t >= u_taps) { break; }
		float ky = floor((t + 0.5) / u_pw);
		float kx = t - ky * u_pw;
		float y = oy * u_stride + ky;
		float x = ox * u_stride + kx;
		acc = max(acc, gc_x4((((b * u_inh + y) * u_inw + x) * u_c + c) / 4.0));
	}
	return acc;
}
`

const relu4Source = `
vec4 gc_kernel(float tidx) {
	return max(gc_x4(tidx), vec4(0.0));
}
`

// kernelFor compiles (through the device's compile-once cache) one nn
// kernel for the given element type. ew and epilogue are the fusion
// declarations forwarded to core.KernelSpec (see DESIGN.md §6d): ew marks
// strict element-wise kernels (fusable as chain members), epilogue marks
// kernels whose body may host fused element-wise epilogues.
func kernelFor(dev *core.Device, name string, elem codec.ElemType, inputs []string, uniforms []string, src string, ew, epilogue bool) (*core.Kernel, error) {
	return kernelFmt(dev, name, codec.FormatOf(elem), inputs, uniforms, src, ew, epilogue, 1)
}

// kernelFmt is kernelFor with an explicit texel format and lane width —
// the int8 path's entry point (FmtInt8 for the scalar lowering, FmtInt8x4
// for the 4-wide one; all of an nn kernel's tensors share one format).
func kernelFmt(dev *core.Device, name string, f codec.Format, inputs []string, uniforms []string, src string, ew, epilogue bool, lanes int) (*core.Kernel, error) {
	params := make([]core.Param, len(inputs))
	for i, in := range inputs {
		params[i] = core.Param{Name: in, Fmt: f}
	}
	return dev.BuildKernelCached(core.KernelSpec{
		Name:            name,
		Inputs:          params,
		Outputs:         []core.OutputSpec{{Name: "out", Fmt: f}},
		Uniforms:        uniforms,
		Source:          src,
		ElementWise:     ew,
		FusableEpilogue: epilogue,
		Lanes:           lanes,
	})
}
