package nn

import (
	"glescompute/internal/codec"
	"glescompute/internal/core"
)

// Kernel loop bounds. GLSL ES 1.00 for-loops need literal bounds
// (Appendix A), so inner loops run to a compile-time ceiling and break at
// the live size carried in a uniform — the sgemm idiom. The model builder
// rejects layers that would exceed them.
const (
	maxInner = 4096 // im2col / dense inner dimension, softmax row length
	maxTaps  = 64   // depthwise / pooling window taps
)

// All nn kernels address tensors linearly through the gc_<in>(idx)
// accessors, so they are independent of the 2D texture layout the
// pipeline's pooled intermediates happen to use. Index decompositions use
// the repo-wide floor((i + 0.5) / d) guard (see internal/layout). Every
// index computed in-shader must stay inside fp32's exact integer window
// (±2^24); Build enforces it per stage.

// im2colSource gathers every receptive field of the input tensor into one
// row of the patch matrix: output element (r, t) — r indexing
// (batch, oy, ox) patches, t indexing (ky, kx, ic) taps — is input element
// (b, oy·stride+ky, ox·stride+kx, ic). The patch matrix is row-packed
// [rows][K] so the GEMM stage can walk a row with consecutive linear
// fetches.
const im2colSource = `
float gc_kernel(float idx) {
	float r = floor((idx + 0.5) / u_kk);
	float t = idx - r * u_kk;
	float b = floor((r + 0.5) / u_ohw);
	float p = r - b * u_ohw;
	float oy = floor((p + 0.5) / u_ow);
	float ox = p - oy * u_ow;
	float ky = floor((t + 0.5) / u_kwic);
	float q = t - ky * u_kwic;
	float kx = floor((q + 0.5) / u_ic);
	float ic = q - kx * u_ic;
	float y = oy * u_stride + ky;
	float x = ox * u_stride + kx;
	return gc_x(((b * u_inh + y) * u_inw + x) * u_ic + ic);
}
`

// gemmSource is the shared GEMM+bias kernel: out[r][c] = bias[c] +
// Σ_k x[r][k]·w[k][cols]. Conv2D runs it over the im2col patch matrix;
// Dense runs it with one row per batch image.
const gemmSource = `
float gc_kernel(float idx) {
	float r = floor((idx + 0.5) / u_cols);
	float c = idx - r * u_cols;
	float acc = gc_bias(c);
	for (float k = 0.0; k < 4096.0; k += 1.0) {
		if (k >= u_k) { break; }
		acc += gc_x(r * u_k + k) * gc_w(k * u_cols + c);
	}
	return acc;
}
`

// dwSource is the depthwise convolution: each channel convolved with its
// own filter, taps visited in (ky, kx) order.
const dwSource = `
float gc_kernel(float idx) {
	float b = floor((idx + 0.5) / u_on);
	float p = idx - b * u_on;
	float oy = floor((p + 0.5) / u_owc);
	float q = p - oy * u_owc;
	float ox = floor((q + 0.5) / u_c);
	float c = q - ox * u_c;
	float acc = gc_bias(c);
	for (float t = 0.0; t < 64.0; t += 1.0) {
		if (t >= u_taps) { break; }
		float ky = floor((t + 0.5) / u_kw);
		float kx = t - ky * u_kw;
		float y = oy * u_stride + ky;
		float x = ox * u_stride + kx;
		acc += gc_x(((b * u_inh + y) * u_inw + x) * u_c + c) * gc_w(t * u_c + c);
	}
	return acc;
}
`

// poolSource is max-pooling; the accumulator starts at tap (0,0) so no
// sentinel minimum is needed (taps never leave the window: valid pooling).
const poolSource = `
float gc_kernel(float idx) {
	float b = floor((idx + 0.5) / u_on);
	float p = idx - b * u_on;
	float oy = floor((p + 0.5) / u_owc);
	float q = p - oy * u_owc;
	float ox = floor((q + 0.5) / u_c);
	float c = q - ox * u_c;
	float acc = gc_x(((b * u_inh + oy * u_stride) * u_inw + ox * u_stride) * u_c + c);
	for (float t = 1.0; t < 64.0; t += 1.0) {
		if (t >= u_taps) { break; }
		float ky = floor((t + 0.5) / u_pw);
		float kx = t - ky * u_pw;
		float y = oy * u_stride + ky;
		float x = ox * u_stride + kx;
		acc = max(acc, gc_x(((b * u_inh + y) * u_inw + x) * u_c + c));
	}
	return acc;
}
`

const reluSource = `
float gc_kernel(float idx) {
	return max(gc_x(idx), 0.0);
}
`

// relu and rescale are declared ElementWise: they read their input only
// at the fragment's own index, so the pipeline's fusion planner folds
// them into the producing pass (GEMM, depthwise, pooling — all declared
// FusableEpilogue) instead of paying a full launch plus an RGBA8
// encode→texture→decode round trip for a single max() or floor(). Int32
// semantics are unaffected (max and the exact power-of-two floor-divide
// are bit-identical with or without the intermediate codec round trip);
// float32 results get closer to the real-arithmetic value.

// rescaleIntSource is the exact fixed-point requantization: x is an
// integer-valued float ≤ 2^24 and u_scale a power of two, so the division
// and floor are both exact — bit-identical to x >> shift on the CPU.
const rescaleIntSource = `
float gc_kernel(float idx) {
	return floor(gc_x(idx) / u_scale);
}
`

const rescaleFloatSource = `
float gc_kernel(float idx) {
	return gc_x(idx) / u_scale;
}
`

// Softmax lowers to two passes, each a per-row scan so it works for any
// batch size (core.Pipeline's Reduce folds whole slots, not rows). Pass 1
// computes the per-row log-sum-exp L(b) = m + log(Σ exp(x - m)) with the
// row max m folded into the same kernel (two sequential bounded loops);
// pass 2 normalizes each element as exp(x - L). This is the classic
// stable softmax rewritten as exp(x - m)/Σ = exp(x - m - log Σ), which
// halves the pass count of the old max/exp/sum/div lowering and deletes
// two whole-row codec round trips — the exp values never materialize.
const lseSource = `
float gc_kernel(float idx) {
	float m = gc_x(idx * u_n);
	for (float k = 1.0; k < 4096.0; k += 1.0) {
		if (k >= u_n) { break; }
		m = max(m, gc_x(idx * u_n + k));
	}
	float s = 0.0;
	for (float k = 0.0; k < 4096.0; k += 1.0) {
		if (k >= u_n) { break; }
		s += exp(gc_x(idx * u_n + k) - m);
	}
	return m + log(s);
}
`

const smNormSource = `
float gc_kernel(float idx) {
	float b = floor((idx + 0.5) / u_n);
	return exp(gc_x(idx) - gc_l(b));
}
`

// kernelFor compiles (through the device's compile-once cache) one nn
// kernel for the given element type. ew and epilogue are the fusion
// declarations forwarded to core.KernelSpec (see DESIGN.md §6d): ew marks
// strict element-wise kernels (fusable as chain members), epilogue marks
// kernels whose body may host fused element-wise epilogues.
func kernelFor(dev *core.Device, name string, elem codec.ElemType, inputs []string, uniforms []string, src string, ew, epilogue bool) (*core.Kernel, error) {
	params := make([]core.Param, len(inputs))
	for i, in := range inputs {
		params[i] = core.Param{Name: in, Type: elem}
	}
	return dev.BuildKernelCached(core.KernelSpec{
		Name:            name,
		Inputs:          params,
		Outputs:         []core.OutputSpec{{Name: "out", Type: elem}},
		Uniforms:        uniforms,
		Source:          src,
		ElementWise:     ew,
		FusableEpilogue: epilogue,
	})
}
