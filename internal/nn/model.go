// Package nn is a neural-network inference library for ES 2.0 class GPUs:
// convolution, pooling and dense layers expressed as fragment-shader
// kernels on the core.Pipeline/sched.Queue stack — the workload class the
// mobile-GPU inference literature targets (CNNdroid; Lee et al., On-Device
// Neural Net Inference with Mobile GPUs) brought onto the paper's ES 2.0
// compute runtime.
//
// A Model is a device-independent description: layer topology plus host
// weights, in float32 or int32. Build compiles it into a Network — one
// device-resident core.Pipeline whose stages chain entirely on the GPU
// (weights are uploaded once into device buffers; between layers not a
// single byte crosses the host boundary). Conv2D lowers to the classic
// im2col + GEMM pair: a gather pass row-packs every receptive field into a
// patch matrix, and a shared GEMM+bias kernel (also used by Dense)
// multiplies it with the weight matrix.
//
// Tensors are row-major [batch][height][width][channel]; convolutions are
// "valid" (no padding). The int32 configuration is bit-exact end to end —
// products and partial sums must stay inside the GPU's exact ±2^24 integer
// window (paper §IV-C), which the Rescale layer (fixed-point
// requantization, floor(x/2^shift)) maintains between layers exactly the
// way quantized mobile inference engines do. The float32 configuration is
// tolerance-bounded by the codec's ~15-mantissa-bit precision (paper §V,
// experiment P1) at every layer boundary.
package nn

import (
	"fmt"

	"glescompute/internal/armtime"
	"glescompute/internal/codec"
	"glescompute/internal/refcpu"
)

// Shape is a per-image activation shape: height × width × channels.
type Shape struct {
	H, W, C int
}

// N returns the element count of one image.
func (s Shape) N() int { return s.H * s.W * s.C }

// String renders the shape as HxWxC.
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.H, s.W, s.C) }

// Layer kinds.
const (
	KindConv    = "conv2d"
	KindDW      = "dwconv"
	KindPool    = "maxpool"
	KindReLU    = "relu"
	KindDense   = "dense"
	KindSoftmax = "softmax"
	KindRescale = "rescale"
)

// layerSpec is one layer of a Model.
type layerSpec struct {
	kind string
	name string

	conv           refcpu.ConvShape // KindConv
	dw             refcpu.DWShape   // KindDW
	ph, pw, stride int              // KindPool
	in, out        int              // KindDense
	shift          uint             // KindRescale

	w, bias interface{} // host weights ([]float32 or []int32)

	outShape Shape
}

// Model is a device-independent network description: topology and host
// weights. Build methods append layers; errors are deferred to Build /
// Reference (builder style, like core.Pipeline).
type Model struct {
	elem   codec.ElemType
	in     Shape
	layers []layerSpec
	err    error
}

// NewModel starts a model over elem (Float32, Int32 or Int8) activations
// with the given input image shape. Int8 is the quantized configuration:
// weights and activations are []int8, and every Conv2D/Dense/
// DepthwiseConv layer must be immediately followed by a Rescale
// requantization (Build folds the pair into one kernel — the pre-requant
// accumulator exceeds int8 and can never materialize in an int8 tensor).
func NewModel(elem codec.ElemType, in Shape) *Model {
	m := &Model{elem: elem, in: in}
	if elem != codec.Float32 && elem != codec.Int32 && elem != codec.Int8 {
		m.fail("element type %s not supported (use Float32, Int32 or Int8)", elem)
	}
	if in.H <= 0 || in.W <= 0 || in.C <= 0 {
		m.fail("non-positive input shape %v", in)
	}
	return m
}

// Elem returns the model's activation element type.
func (m *Model) Elem() codec.ElemType { return m.elem }

// In returns the input image shape.
func (m *Model) In() Shape { return m.in }

// Err returns the first builder error, if any.
func (m *Model) Err() error { return m.err }

func (m *Model) fail(format string, args ...interface{}) {
	if m.err == nil {
		m.err = fmt.Errorf("nn: "+format, args...)
	}
}

// cur returns the current activation shape.
func (m *Model) cur() Shape {
	if len(m.layers) == 0 {
		return m.in
	}
	return m.layers[len(m.layers)-1].outShape
}

// checkWeights validates a host weight slice against the model element
// type and an expected length.
func (m *Model) checkWeights(layer, param string, w interface{}, want int) {
	if m.err != nil {
		return
	}
	var n int
	switch s := w.(type) {
	case []float32:
		if m.elem != codec.Float32 {
			m.fail("%s: %s is []float32, model is %s", layer, param, m.elem)
			return
		}
		n = len(s)
	case []int32:
		if m.elem != codec.Int32 {
			m.fail("%s: %s is []int32, model is %s", layer, param, m.elem)
			return
		}
		n = len(s)
	case []int8:
		if m.elem != codec.Int8 {
			m.fail("%s: %s is []int8, model is %s", layer, param, m.elem)
			return
		}
		n = len(s)
	default:
		m.fail("%s: %s has unsupported type %T", layer, param, w)
		return
	}
	if n != want {
		m.fail("%s: %s has %d elements, want %d", layer, param, n, want)
	}
}

// Conv2D appends a valid 2D convolution with kh×kw taps, outC output
// channels and the given stride. w is laid out [kh·kw·inC][outC]
// (w[((ky*kw+kx)*inC+ic)*outC+oc]); bias has outC elements.
func (m *Model) Conv2D(name string, kh, kw, outC, stride int, w, bias interface{}) *Model {
	if m.err != nil {
		return m
	}
	in := m.cur()
	cs := refcpu.ConvShape{InH: in.H, InW: in.W, InC: in.C, KH: kh, KW: kw, OutC: outC, Stride: stride}
	if kh <= 0 || kw <= 0 || outC <= 0 || stride <= 0 {
		m.fail("%s: non-positive conv parameter", name)
		return m
	}
	if kh > in.H || kw > in.W {
		m.fail("%s: %dx%d taps do not fit %v input (valid padding)", name, kh, kw, in)
		return m
	}
	if cs.K() > maxInner {
		m.fail("%s: im2col inner dimension %d exceeds kernel loop bound %d", name, cs.K(), maxInner)
		return m
	}
	m.checkWeights(name, "weights", w, cs.K()*outC)
	m.checkWeights(name, "bias", bias, outC)
	m.layers = append(m.layers, layerSpec{
		kind: KindConv, name: name, conv: cs, w: w, bias: bias,
		outShape: Shape{H: cs.OutH(), W: cs.OutW(), C: outC},
	})
	return m
}

// DepthwiseConv appends a valid depthwise convolution (channel multiplier
// 1): each input channel convolved with its own kh×kw filter. w is laid
// out [kh·kw][C] (w[(ky*kw+kx)*C+c]); bias has C elements.
func (m *Model) DepthwiseConv(name string, kh, kw, stride int, w, bias interface{}) *Model {
	if m.err != nil {
		return m
	}
	in := m.cur()
	ds := refcpu.DWShape{InH: in.H, InW: in.W, C: in.C, KH: kh, KW: kw, Stride: stride}
	if kh <= 0 || kw <= 0 || stride <= 0 {
		m.fail("%s: non-positive depthwise parameter", name)
		return m
	}
	if kh > in.H || kw > in.W {
		m.fail("%s: %dx%d taps do not fit %v input (valid padding)", name, kh, kw, in)
		return m
	}
	if kh*kw > maxTaps {
		m.fail("%s: %d taps exceed kernel loop bound %d", name, kh*kw, maxTaps)
		return m
	}
	m.checkWeights(name, "weights", w, kh*kw*in.C)
	m.checkWeights(name, "bias", bias, in.C)
	m.layers = append(m.layers, layerSpec{
		kind: KindDW, name: name, dw: ds, w: w, bias: bias,
		outShape: Shape{H: ds.OutH(), W: ds.OutW(), C: in.C},
	})
	return m
}

// MaxPool appends a ph×pw max-pooling layer with the given stride (valid:
// windows never cross the edge).
func (m *Model) MaxPool(name string, ph, pw, stride int) *Model {
	if m.err != nil {
		return m
	}
	in := m.cur()
	if ph <= 0 || pw <= 0 || stride <= 0 {
		m.fail("%s: non-positive pool parameter", name)
		return m
	}
	if ph > in.H || pw > in.W {
		m.fail("%s: %dx%d window does not fit %v input", name, ph, pw, in)
		return m
	}
	if ph*pw > maxTaps {
		m.fail("%s: %d taps exceed kernel loop bound %d", name, ph*pw, maxTaps)
		return m
	}
	m.layers = append(m.layers, layerSpec{
		kind: KindPool, name: name, ph: ph, pw: pw, stride: stride,
		outShape: Shape{H: (in.H-ph)/stride + 1, W: (in.W-pw)/stride + 1, C: in.C},
	})
	return m
}

// ReLU appends an elementwise max(x, 0) layer.
func (m *Model) ReLU(name string) *Model {
	if m.err != nil {
		return m
	}
	m.layers = append(m.layers, layerSpec{kind: KindReLU, name: name, outShape: m.cur()})
	return m
}

// Dense appends a fully connected layer from the flattened current shape
// to outN units. w is laid out [in][outN] (w[i*outN+o]); bias has outN
// elements.
func (m *Model) Dense(name string, outN int, w, bias interface{}) *Model {
	if m.err != nil {
		return m
	}
	in := m.cur().N()
	if outN <= 0 {
		m.fail("%s: non-positive output size", name)
		return m
	}
	if in > maxInner {
		m.fail("%s: input size %d exceeds kernel loop bound %d", name, in, maxInner)
		return m
	}
	m.checkWeights(name, "weights", w, in*outN)
	m.checkWeights(name, "bias", bias, outN)
	m.layers = append(m.layers, layerSpec{
		kind: KindDense, name: name, in: in, out: outN,
		w: w, bias: bias, outShape: Shape{H: 1, W: 1, C: outN},
	})
	return m
}

// Softmax appends a numerically-stable softmax over the flattened current
// shape (float models only).
func (m *Model) Softmax(name string) *Model {
	if m.err != nil {
		return m
	}
	if m.elem != codec.Float32 {
		m.fail("%s: softmax requires a float32 model", name)
		return m
	}
	if n := m.cur().N(); n > maxInner {
		m.fail("%s: row size %d exceeds kernel loop bound %d", name, n, maxInner)
		return m
	}
	m.layers = append(m.layers, layerSpec{kind: KindSoftmax, name: name, outShape: m.cur()})
	return m
}

// Rescale appends a fixed-point requantization layer, out = floor(x /
// 2^shift) — on int32 models the exact arithmetic (= x >> shift) that
// keeps accumulators inside the GPU's 24-bit window; on float32 models a
// plain division by 2^shift.
func (m *Model) Rescale(name string, shift uint) *Model {
	if m.err != nil {
		return m
	}
	if shift > 23 {
		m.fail("%s: shift %d out of range", name, shift)
		return m
	}
	m.layers = append(m.layers, layerSpec{kind: KindRescale, name: name, shift: shift, outShape: m.cur()})
	return m
}

// LayerInfo describes one layer of a built model for reporting.
type LayerInfo struct {
	Name string
	Kind string
	Out  Shape
}

// Layers lists the model's layers in order.
func (m *Model) Layers() []LayerInfo {
	out := make([]LayerInfo, len(m.layers))
	for i, l := range m.layers {
		out[i] = LayerInfo{Name: l.name, Kind: l.kind, Out: l.outShape}
	}
	return out
}

// Reference runs the model on the internal/refcpu scalar baselines: the
// per-layer outputs (host slices, one per layer in order) and the
// per-layer ARM1176 operation counts. input holds batch·In().N() elements
// of the model's element type.
func (m *Model) Reference(input interface{}, batch int) ([]interface{}, []armtime.OpCounts, error) {
	if m.err != nil {
		return nil, nil, m.err
	}
	if batch <= 0 {
		return nil, nil, fmt.Errorf("nn: Reference: non-positive batch %d", batch)
	}
	if got, want := hostLen(input), batch*m.in.N(); got != want {
		return nil, nil, fmt.Errorf("nn: Reference: input has %d elements, want %d", got, want)
	}
	if m.elem == codec.Int8 {
		return m.referenceInt8(input.([]int8), batch)
	}
	outs := make([]interface{}, 0, len(m.layers))
	counts := make([]armtime.OpCounts, 0, len(m.layers))
	cur := input
	curShape := m.in
	for _, l := range m.layers {
		var next interface{}
		var c armtime.OpCounts
		switch m.elem {
		case codec.Float32:
			x := cur.([]float32)
			switch l.kind {
			case KindConv:
				next, c = refcpu.Conv2DFloat32(x, l.w.([]float32), l.bias.([]float32), batch, l.conv)
			case KindDW:
				next, c = refcpu.DepthwiseConvFloat32(x, l.w.([]float32), l.bias.([]float32), batch, l.dw)
			case KindPool:
				next, c = refcpu.MaxPoolFloat32(x, batch, curShape.H, curShape.W, curShape.C, l.ph, l.pw, l.stride)
			case KindReLU:
				next, c = refcpu.ReLUFloat32(x)
			case KindDense:
				next, c = refcpu.DenseFloat32(x, l.w.([]float32), l.bias.([]float32), batch, l.in, l.out)
			case KindSoftmax:
				next, c = refcpu.SoftmaxFloat32(x, batch, curShape.N())
			case KindRescale:
				scale := float32(int32(1) << l.shift)
				y := make([]float32, len(x))
				for i, v := range x {
					y[i] = v / scale
				}
				next, c = y, armtime.OpCounts{FpDiv: uint64(len(x)), Load: uint64(len(x)), Store: uint64(len(x))}
			}
		case codec.Int32:
			x := cur.([]int32)
			switch l.kind {
			case KindConv:
				next, c = refcpu.Conv2DInt32(x, l.w.([]int32), l.bias.([]int32), batch, l.conv)
			case KindDW:
				next, c = refcpu.DepthwiseConvInt32(x, l.w.([]int32), l.bias.([]int32), batch, l.dw)
			case KindPool:
				next, c = refcpu.MaxPoolInt32(x, batch, curShape.H, curShape.W, curShape.C, l.ph, l.pw, l.stride)
			case KindReLU:
				next, c = refcpu.ReLUInt32(x)
			case KindDense:
				next, c = refcpu.DenseInt32(x, l.w.([]int32), l.bias.([]int32), batch, l.in, l.out)
			case KindRescale:
				next, c = refcpu.RescaleInt32(x, l.shift)
			}
		}
		if next == nil {
			return nil, nil, fmt.Errorf("nn: Reference: layer %q (%s) unsupported for %s", l.name, l.kind, m.elem)
		}
		outs = append(outs, next)
		counts = append(counts, c)
		cur = next
		curShape = l.outShape
	}
	return outs, counts, nil
}

// hostLen returns the length of a []float32 / []int32 / []int8 host
// slice, -1 otherwise.
func hostLen(src interface{}) int {
	switch s := src.(type) {
	case []float32:
		return len(s)
	case []int32:
		return len(s)
	case []int8:
		return len(s)
	}
	return -1
}

// matmulKind reports whether a layer kind accumulates a matmul (and so
// needs a folded Rescale in the int8 configuration).
func matmulKind(kind string) bool {
	return kind == KindConv || kind == KindDense || kind == KindDW
}

// int8FoldCheck validates the int8 folding invariant: every matmul layer
// is immediately followed by Rescale, and Rescale appears nowhere else.
func (m *Model) int8FoldCheck() error {
	for i, l := range m.layers {
		if matmulKind(l.kind) {
			if i+1 >= len(m.layers) || m.layers[i+1].kind != KindRescale {
				return fmt.Errorf("nn: int8 layer %q (%s) must be immediately followed by Rescale (the requant folds into its kernel)", l.name, l.kind)
			}
		}
		if l.kind == KindRescale && (i == 0 || !matmulKind(m.layers[i-1].kind)) {
			return fmt.Errorf("nn: int8 Rescale %q must immediately follow a conv/dense/dwconv layer", l.name)
		}
		if l.kind == KindSoftmax {
			return fmt.Errorf("nn: int8 layer %q: softmax unsupported (argmax raw logits instead)", l.name)
		}
	}
	return nil
}

// clampInt8 saturates an int32 to the int8 range — the CPU mirror of the
// kernels' clamp(floor(acc/2^s), -128, 127).
func clampInt8(v int32) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}

func widenInt8(x []int8) []int32 {
	out := make([]int32, len(x))
	for i, v := range x {
		out[i] = int32(v)
	}
	return out
}

func narrowInt32(x []int32) []int8 {
	out := make([]int8, len(x))
	for i, v := range x {
		out[i] = clampInt8(v)
	}
	return out
}

// referenceInt8 is Reference's int8 arm: the int32 refcpu primitives run
// the widened arithmetic, and each matmul+Rescale pair collapses to one
// requantized []int8 tensor — both layers of the pair report the SAME
// slice, mirroring the folded GPU lowering where the pre-requant
// accumulator never materializes.
func (m *Model) referenceInt8(input []int8, batch int) ([]interface{}, []armtime.OpCounts, error) {
	if err := m.int8FoldCheck(); err != nil {
		return nil, nil, err
	}
	outs := make([]interface{}, len(m.layers))
	counts := make([]armtime.OpCounts, len(m.layers))
	cur := widenInt8(input)
	curShape := m.in
	for li := 0; li < len(m.layers); li++ {
		l := m.layers[li]
		var acc []int32
		var c armtime.OpCounts
		switch l.kind {
		case KindConv:
			acc, c = refcpu.Conv2DInt32(cur, widenInt8(l.w.([]int8)), widenInt8(l.bias.([]int8)), batch, l.conv)
		case KindDW:
			acc, c = refcpu.DepthwiseConvInt32(cur, widenInt8(l.w.([]int8)), widenInt8(l.bias.([]int8)), batch, l.dw)
		case KindDense:
			acc, c = refcpu.DenseInt32(cur, widenInt8(l.w.([]int8)), widenInt8(l.bias.([]int8)), batch, l.in, l.out)
		case KindPool:
			acc, c = refcpu.MaxPoolInt32(cur, batch, curShape.H, curShape.W, curShape.C, l.ph, l.pw, l.stride)
		case KindReLU:
			acc, c = refcpu.ReLUInt32(cur)
		default:
			return nil, nil, fmt.Errorf("nn: Reference: layer %q (%s) unsupported for %s", l.name, l.kind, m.elem)
		}
		if matmulKind(l.kind) {
			// Fold the following Rescale: requantize and clamp, charge the
			// shift to the rescale layer, and report the folded tensor for
			// both layers.
			rl := m.layers[li+1]
			shifted, rc := refcpu.RescaleInt32(acc, rl.shift)
			narrowed := narrowInt32(shifted)
			outs[li], counts[li] = narrowed, c
			outs[li+1], counts[li+1] = narrowed, rc
			cur = widenInt8(narrowed)
			curShape = rl.outShape
			li++
			continue
		}
		outs[li], counts[li] = narrowInt32(acc), c
		cur = acc
		curShape = l.outShape
	}
	return outs, counts, nil
}
