package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"glescompute/internal/codec"
)

const scaleSource = `
float gc_kernel(float idx) {
	return gc_x(idx) * u_scale + 1.0;
}
`

const shiftAddSource = `
float gc_kernel(float idx) {
	return gc_x(idx) + gc_x(idx + 1.0);
}
`

func buildPipeKernels(t *testing.T, d *Device) (scale, shift *Kernel) {
	t.Helper()
	var err error
	scale, err = d.BuildKernel(KernelSpec{
		Name:     "scale",
		Inputs:   []Param{{Name: "x", Type: codec.Float32}},
		Uniforms: []string{"u_scale"},
		Source:   scaleSource,
	})
	if err != nil {
		t.Fatal(err)
	}
	shift, err = d.BuildKernel(KernelSpec{
		Name:   "shiftadd",
		Inputs: []Param{{Name: "x", Type: codec.Float32}},
		Source: shiftAddSource,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scale, shift
}

func randFloats(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = rng.Float32()*8 - 4
	}
	return xs
}

// bitsEqual compares float slices bitwise (NaN-safe, -0 != +0).
func bitsEqual(t *testing.T, label string, want, got []float32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
			t.Fatalf("%s: element %d: %g (0x%08x) != %g (0x%08x)",
				label, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

// TestPipelineMatchesNaiveSequentialRun is the differential acceptance
// test: a 3-stage chain through the pipeline must be bit-identical to
// running the same kernels sequentially with naive Run and explicit
// intermediate buffers — and must do it with zero host transfers.
func TestPipelineMatchesNaiveSequentialRun(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 777 // non-power-of-two, multi-row grid
	scale, shift := buildPipeKernels(t, d)
	xs := randFloats(n, 42)
	uni := map[string]float32{"u_scale": 3.0}

	// Naive path: every intermediate is an explicit buffer.
	in, err := d.NewBuffer(codec.Float32, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.WriteFloat32(xs); err != nil {
		t.Fatal(err)
	}
	t1, _ := d.NewBuffer(codec.Float32, n)
	t2, _ := d.NewBuffer(codec.Float32, n)
	naiveOut, _ := d.NewBuffer(codec.Float32, n)
	if _, err := scale.Run1(t1, []*Buffer{in}, uni); err != nil {
		t.Fatal(err)
	}
	if _, err := shift.Run1(t2, []*Buffer{t1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := scale.Run1(naiveOut, []*Buffer{t2}, uni); err != nil {
		t.Fatal(err)
	}
	want, err := naiveOut.ReadFloat32()
	if err != nil {
		t.Fatal(err)
	}

	// Pipeline path: intermediates stay pooled and device-resident.
	p := d.NewPipeline()
	defer p.Close()
	x := p.Input(codec.Float32, n)
	s1 := p.Stage(scale, nil, x)
	s2 := p.Stage(shift, nil, s1)
	s3 := p.Stage(scale, nil, s2)
	p.Output(s3)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	pipeOut, _ := d.NewBuffer(codec.Float32, n)
	stats, err := p.Run([]*Buffer{pipeOut}, []*Buffer{in}, uni)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pipeOut.ReadFloat32()
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "pipeline vs naive", want, got)

	if stats.HostUploadBytes != 0 || stats.HostReadbackBytes != 0 {
		t.Errorf("pipeline moved host data between stages: up=%d down=%d, want 0/0",
			stats.HostUploadBytes, stats.HostReadbackBytes)
	}
	if stats.Passes != 3 {
		t.Errorf("Passes = %d, want 3", stats.Passes)
	}
	if stats.Draw.DrawCalls != 3 {
		t.Errorf("DrawCalls = %d, want 3", stats.Draw.DrawCalls)
	}
	if stats.Time.Execute <= 0 {
		t.Errorf("modeled Execute time = %v, want > 0", stats.Time.Execute)
	}
	if stats.Time.Upload != 0 || stats.Time.Readback != 0 {
		t.Errorf("modeled transfer time = %v/%v, want 0/0", stats.Time.Upload, stats.Time.Readback)
	}
}

// TestPipelinePoolPingPong checks intermediate recycling: a long
// same-sized chain needs at most two pooled buffers (ping-pong), and
// repeated runs allocate nothing new.
func TestPipelinePoolPingPong(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 256
	_, shift := buildPipeKernels(t, d)

	p := d.NewPipeline()
	defer p.Close()
	x := p.Input(codec.Float32, n)
	cur := x
	for i := 0; i < 6; i++ {
		cur = p.Stage(shift, nil, cur)
	}
	p.Output(cur)

	in, _ := d.NewBuffer(codec.Float32, n)
	out, _ := d.NewBuffer(codec.Float32, n)
	if err := in.WriteFloat32(randFloats(n, 7)); err != nil {
		t.Fatal(err)
	}
	stats, err := p.Run([]*Buffer{out}, []*Buffer{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 5 intermediates flow through the chain (the 6th render lands in the
	// user's out buffer), but release-after-last-read means two textures
	// ping-pong.
	if stats.PoolAllocs > 2 {
		t.Errorf("first run allocated %d intermediates, want <= 2 (ping-pong)", stats.PoolAllocs)
	}
	stats2, err := p.Run([]*Buffer{out}, []*Buffer{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.PoolAllocs != 0 {
		t.Errorf("second run allocated %d buffers, want 0 (pool recycled)", stats2.PoolAllocs)
	}
	if stats2.PoolReuses == 0 {
		t.Error("second run reused no pooled buffers")
	}
}

// TestPipelineReduceMatchesHandRolledLoop checks Reduce against the
// hand-rolled ping-pong loop the reduction example used to carry,
// bitwise, and against the CPU for exactly-representable data.
func TestPipelineReduceMatchesHandRolledLoop(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	for _, n := range []int{1 << 12, 1000, 5, 2} { // powers of two and odd tails
		xs := randFloats(n, int64(n))

		p := d.NewPipeline()
		x := p.Input(codec.Float32, n)
		p.Output(p.Reduce(x, ReduceAdd))
		if err := p.Err(); err != nil {
			t.Fatal(err)
		}

		in, _ := d.NewBuffer(codec.Float32, n)
		if err := in.WriteFloat32(xs); err != nil {
			t.Fatal(err)
		}
		out, _ := d.NewBuffer(codec.Float32, 1)
		stats, err := p.Run([]*Buffer{out}, []*Buffer{in}, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := out.ReadFloat32()
		if err != nil {
			t.Fatal(err)
		}
		if stats.HostUploadBytes != 0 || stats.HostReadbackBytes != 0 {
			t.Errorf("n=%d: reduce moved host data between passes", n)
		}

		// Hand-rolled loop with the same fold kernel and pass sizes.
		k, err := d.BuildReduceKernel(codec.Float32, ReduceAdd)
		if err != nil {
			t.Fatal(err)
		}
		cur := in
		for sz := n; sz > 1; sz = (sz + 1) / 2 {
			next, err := d.NewBuffer(codec.Float32, (sz+1)/2)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := k.Run1(next, []*Buffer{cur}, map[string]float32{ReduceLenUniform: float32(sz)}); err != nil {
				t.Fatal(err)
			}
			if cur != in {
				cur.Free()
			}
			cur = next
		}
		want, err := cur.ReadFloat32()
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "reduce vs hand-rolled", want, got[:1])
		p.Close()
	}
}

// TestPipelineReduceMinOddTail uses int32 min over an odd-sized array:
// exact codec round-trip, and the odd-tail guard must keep the zero
// padding beyond the array from poisoning the fold.
func TestPipelineReduceMinOddTail(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 1237
	rng := rand.New(rand.NewSource(3))
	xs := make([]int32, n)
	cpuMin := int32(math.MaxInt32)
	for i := range xs {
		xs[i] = rng.Int31n(1<<20) + 5 // all >= 5: any zero leak would win the min
		if xs[i] < cpuMin {
			cpuMin = xs[i]
		}
	}
	p := d.NewPipeline()
	defer p.Close()
	x := p.Input(codec.Int32, n)
	p.Output(p.Reduce(x, ReduceMin))
	in, _ := d.NewBuffer(codec.Int32, n)
	if err := in.WriteInt32(xs); err != nil {
		t.Fatal(err)
	}
	out, _ := d.NewBuffer(codec.Int32, 1)
	if _, err := p.Run([]*Buffer{out}, []*Buffer{in}, nil); err != nil {
		t.Fatal(err)
	}
	got, err := out.ReadInt32()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != cpuMin {
		t.Errorf("GPU min = %d, want %d", got[0], cpuMin)
	}
}

// TestPipelineHazardCopyResolution runs a pipeline whose marked output
// buffer is also its input buffer: the stage would sample the texture it
// renders into, so the runtime must detour through a pooled stand-in and
// copy — and still produce the naive-path result.
func TestPipelineHazardCopyResolution(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 123
	scale, _ := buildPipeKernels(t, d)
	xs := randFloats(n, 11)
	uni := map[string]float32{"u_scale": 2.0}

	// Naive reference with distinct buffers.
	in, _ := d.NewBuffer(codec.Float32, n)
	ref, _ := d.NewBuffer(codec.Float32, n)
	if err := in.WriteFloat32(xs); err != nil {
		t.Fatal(err)
	}
	if _, err := scale.Run1(ref, []*Buffer{in}, uni); err != nil {
		t.Fatal(err)
	}
	want, _ := ref.ReadFloat32()

	// In-place via pipeline: out buffer == in buffer.
	p := d.NewPipeline()
	defer p.Close()
	x := p.Input(codec.Float32, n)
	p.Output(p.Stage(scale, nil, x))
	if err := in.WriteFloat32(xs); err != nil {
		t.Fatal(err)
	}
	stats, err := p.Run([]*Buffer{in}, []*Buffer{in}, uni)
	if err != nil {
		t.Fatal(err)
	}
	if stats.HazardCopies != 1 {
		t.Errorf("HazardCopies = %d, want 1", stats.HazardCopies)
	}
	got, err := in.ReadFloat32()
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "in-place pipeline vs naive", want, got)

	// The same request on the raw kernel path is rejected (the pipeline
	// is the sanctioned way to do this).
	if _, err := scale.Run1(in, []*Buffer{in}, uni); err == nil {
		t.Error("raw Run with aliasing buffers succeeded, want INVALID_OPERATION error")
	}
}

// TestPipelineMultiOutputStage chains a two-output kernel (one pass per
// output, challenge #8) inside a pipeline.
func TestPipelineMultiOutputStage(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 64
	k, err := d.BuildKernel(KernelSpec{
		Name:   "sumdiff",
		Inputs: []Param{{Name: "a", Type: codec.Float32}, {Name: "b", Type: codec.Float32}},
		Outputs: []OutputSpec{
			{Name: "s", Type: codec.Float32},
			{Name: "dd", Type: codec.Float32},
		},
		Source: `
float gc_kernel_s(float idx) { return gc_a(idx) + gc_b(idx); }
float gc_kernel_dd(float idx) { return gc_a(idx) - gc_b(idx); }
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, shift := buildPipeKernels(t, d)

	p := d.NewPipeline()
	defer p.Close()
	a := p.Input(codec.Float32, n)
	b := p.Input(codec.Float32, n)
	outs := p.StageMulti(k, []int{n, n}, nil, a, b)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	p.Output(p.Stage(shift, nil, outs[0])) // chain off the sum
	p.Output(outs[1])                      // expose the diff directly

	as := randFloats(n, 1)
	bs := randFloats(n, 2)
	ba, _ := d.NewBuffer(codec.Float32, n)
	bb, _ := d.NewBuffer(codec.Float32, n)
	if err := ba.WriteFloat32(as); err != nil {
		t.Fatal(err)
	}
	if err := bb.WriteFloat32(bs); err != nil {
		t.Fatal(err)
	}
	o1, _ := d.NewBuffer(codec.Float32, n)
	o2, _ := d.NewBuffer(codec.Float32, n)
	if _, err := p.Run([]*Buffer{o1, o2}, []*Buffer{ba, bb}, nil); err != nil {
		t.Fatal(err)
	}

	// Naive reference.
	rs, _ := d.NewBuffer(codec.Float32, n)
	rd, _ := d.NewBuffer(codec.Float32, n)
	rout, _ := d.NewBuffer(codec.Float32, n)
	if _, err := k.Run([]*Buffer{rs, rd}, []*Buffer{ba, bb}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := shift.Run1(rout, []*Buffer{rs}, nil); err != nil {
		t.Fatal(err)
	}
	want1, _ := rout.ReadFloat32()
	want2, _ := rd.ReadFloat32()
	got1, _ := o1.ReadFloat32()
	got2, _ := o2.ReadFloat32()
	bitsEqual(t, "multi-output chained", want1, got1)
	bitsEqual(t, "multi-output direct", want2, got2)
}

// TestPipelineBuilderErrors exercises deferred builder error reporting
// and Run-time validation.
func TestPipelineBuilderErrors(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	scale, _ := buildPipeKernels(t, d)

	p := d.NewPipeline()
	x := p.Input(codec.Float32, 16)
	p.Stage(scale, nil, Ref(99)) // invalid ref
	p.Output(x)                  // inputs cannot be outputs (also after err: ignored)
	if p.Err() == nil {
		t.Fatal("builder accepted an invalid ref")
	}
	if _, err := p.Run(nil, nil, nil); err == nil || !strings.Contains(err.Error(), "pipeline") {
		t.Errorf("Run after builder error = %v, want deferred builder error", err)
	}

	p2 := d.NewPipeline()
	in2 := p2.Input(codec.Float32, 16)
	p2.Output(p2.Stage(scale, nil, in2))
	if err := p2.Err(); err != nil {
		t.Fatal(err)
	}
	bi, _ := d.NewBuffer(codec.Float32, 16)
	bo, _ := d.NewBuffer(codec.Float32, 16)
	if _, err := p2.Run([]*Buffer{bo}, []*Buffer{bi}, nil); err == nil {
		t.Error("Run without required uniform u_scale succeeded")
	}
	short, _ := d.NewBuffer(codec.Float32, 8)
	if _, err := p2.Run([]*Buffer{bo}, []*Buffer{short}, map[string]float32{"u_scale": 1}); err == nil {
		t.Error("Run with wrong-length input succeeded")
	}
	if _, err := p2.Run([]*Buffer{bo}, nil, map[string]float32{"u_scale": 1}); err == nil {
		t.Error("Run with missing input succeeded")
	}

	// Stage uniforms must override Run-level uniforms.
	p3 := d.NewPipeline()
	in3 := p3.Input(codec.Float32, 4)
	p3.Output(p3.Stage(scale, map[string]float32{"u_scale": 10}, in3))
	b3, _ := d.NewBuffer(codec.Float32, 4)
	if err := b3.WriteFloat32([]float32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	o3, _ := d.NewBuffer(codec.Float32, 4)
	if _, err := p3.Run([]*Buffer{o3}, []*Buffer{b3}, map[string]float32{"u_scale": 0}); err != nil {
		t.Fatal(err)
	}
	got, _ := o3.ReadFloat32()
	if got[0] < 10 { // 1*10+1 = 11 under the stage uniform; 1 under the run uniform
		t.Errorf("stage uniform did not override run uniform: got %g, want ~11", got[0])
	}
}

// TestPipelineDuplicateRefStageInput wires one Ref into both params of a
// stage: its pooled buffer must be released exactly once, so the two
// branches reading the stage's result afterwards get distinct textures.
// (Regression: double-release handed the same texture to two live slots.)
func TestPipelineDuplicateRefStageInput(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 64
	scale, _ := buildPipeKernels(t, d)
	mul, err := d.BuildKernel(KernelSpec{
		Name:   "mul",
		Inputs: []Param{{Name: "a", Type: codec.Float32}, {Name: "b", Type: codec.Float32}},
		Source: `float gc_kernel(float idx) { return gc_a(idx) * gc_b(idx); }`,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum2, err := d.BuildKernel(KernelSpec{
		Name:   "sum2",
		Inputs: []Param{{Name: "a", Type: codec.Float32}, {Name: "b", Type: codec.Float32}},
		Source: `float gc_kernel(float idx) { return gc_a(idx) + gc_b(idx); }`,
	})
	if err != nil {
		t.Fatal(err)
	}
	xs := randFloats(n, 21)
	uni := map[string]float32{"u_scale": 1}

	// Naive reference.
	in, _ := d.NewBuffer(codec.Float32, n)
	if err := in.WriteFloat32(xs); err != nil {
		t.Fatal(err)
	}
	ra, _ := d.NewBuffer(codec.Float32, n)
	rb, _ := d.NewBuffer(codec.Float32, n)
	rc, _ := d.NewBuffer(codec.Float32, n)
	rd, _ := d.NewBuffer(codec.Float32, n)
	re, _ := d.NewBuffer(codec.Float32, n)
	if _, err := scale.Run1(ra, []*Buffer{in}, uni); err != nil {
		t.Fatal(err)
	}
	if _, err := mul.Run1(rb, []*Buffer{ra, ra}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := scale.Run1(rc, []*Buffer{rb}, map[string]float32{"u_scale": 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := scale.Run1(rd, []*Buffer{rb}, map[string]float32{"u_scale": 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := sum2.Run1(re, []*Buffer{rc, rd}, nil); err != nil {
		t.Fatal(err)
	}
	want, _ := re.ReadFloat32()

	// Pipeline: b = (x*1+1)^2 feeds two branches that must not share a
	// texture after b's buffer is retired.
	p := d.NewPipeline()
	defer p.Close()
	x := p.Input(codec.Float32, n)
	a := p.Stage(scale, map[string]float32{"u_scale": 1}, x)
	b := p.Stage(mul, nil, a, a) // same Ref twice
	c := p.Stage(scale, map[string]float32{"u_scale": 1}, b)
	e := p.Stage(scale, map[string]float32{"u_scale": 2}, b)
	p.Output(p.Stage(sum2, nil, c, e))
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out, _ := d.NewBuffer(codec.Float32, n)
	if _, err := p.Run([]*Buffer{out}, []*Buffer{in}, nil); err != nil {
		t.Fatal(err)
	}
	got, _ := out.ReadFloat32()
	bitsEqual(t, "duplicate-ref stage", want, got)
}

// TestPipelineOutputAliasesLaterReadInput writes a marked output into the
// pipeline's own input buffer while a LATER stage still reads that
// input: the copy into the user buffer must be deferred until the last
// reader ran. (Regression: the hazard check only looked at the writing
// stage's own inputs.)
func TestPipelineOutputAliasesLaterReadInput(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 48
	scale, _ := buildPipeKernels(t, d)
	xs := randFloats(n, 31)

	// Naive reference with distinct buffers: y = (x+1)+1, z = x*2+1.
	in, _ := d.NewBuffer(codec.Float32, n)
	if err := in.WriteFloat32(xs); err != nil {
		t.Fatal(err)
	}
	ra, _ := d.NewBuffer(codec.Float32, n)
	ry, _ := d.NewBuffer(codec.Float32, n)
	rz, _ := d.NewBuffer(codec.Float32, n)
	one := map[string]float32{"u_scale": 1}
	two := map[string]float32{"u_scale": 2}
	if _, err := scale.Run1(ra, []*Buffer{in}, one); err != nil {
		t.Fatal(err)
	}
	if _, err := scale.Run1(ry, []*Buffer{ra}, one); err != nil {
		t.Fatal(err)
	}
	if _, err := scale.Run1(rz, []*Buffer{in}, two); err != nil {
		t.Fatal(err)
	}
	wantY, _ := ry.ReadFloat32()
	wantZ, _ := rz.ReadFloat32()

	p := d.NewPipeline()
	defer p.Close()
	x := p.Input(codec.Float32, n)
	a := p.Stage(scale, one, x)
	y := p.Stage(scale, one, a)
	z := p.Stage(scale, two, x) // reads x AFTER y was produced
	p.Output(y)
	p.Output(z)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if err := in.WriteFloat32(xs); err != nil {
		t.Fatal(err)
	}
	zOut, _ := d.NewBuffer(codec.Float32, n)
	stats, err := p.Run([]*Buffer{in, zOut}, []*Buffer{in}, nil) // y lands in the input buffer
	if err != nil {
		t.Fatal(err)
	}
	if stats.HazardCopies != 1 {
		t.Errorf("HazardCopies = %d, want 1", stats.HazardCopies)
	}
	gotY, _ := in.ReadFloat32()
	gotZ, _ := zOut.ReadFloat32()
	bitsEqual(t, "aliased output y", wantY, gotY)
	bitsEqual(t, "later-read z", wantZ, gotZ)
}

// TestPipelineNoCheckoutLeaks pins the pool bookkeeping: unused stage
// outputs and error returns must hand checked-out buffers back, so
// repeated runs never grow the pool.
func TestPipelineNoCheckoutLeaks(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 32
	k, err := d.BuildKernel(KernelSpec{
		Name:   "sumdiff",
		Inputs: []Param{{Name: "a", Type: codec.Float32}, {Name: "b", Type: codec.Float32}},
		Outputs: []OutputSpec{
			{Name: "s", Type: codec.Float32},
			{Name: "dd", Type: codec.Float32},
		},
		Source: `
float gc_kernel_s(float idx) { return gc_a(idx) + gc_b(idx); }
float gc_kernel_dd(float idx) { return gc_a(idx) - gc_b(idx); }
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	scale, _ := buildPipeKernels(t, d)

	// Only the sum branch is consumed; the diff output has no readers
	// and is not marked — it must be recycled, not leaked.
	p := d.NewPipeline()
	defer p.Close()
	a := p.Input(codec.Float32, n)
	b := p.Input(codec.Float32, n)
	outs := p.StageMulti(k, []int{n, n}, nil, a, b)
	p.Output(p.Stage(scale, map[string]float32{"u_scale": 1}, outs[0]))
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	ba, _ := d.NewBuffer(codec.Float32, n)
	bb, _ := d.NewBuffer(codec.Float32, n)
	bo, _ := d.NewBuffer(codec.Float32, n)
	if err := ba.WriteFloat32(randFloats(n, 1)); err != nil {
		t.Fatal(err)
	}
	if err := bb.WriteFloat32(randFloats(n, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run([]*Buffer{bo}, []*Buffer{ba, bb}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		stats, err := p.Run([]*Buffer{bo}, []*Buffer{ba, bb}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if stats.PoolAllocs != 0 {
			t.Fatalf("run %d allocated %d buffers; unused outputs leak from the pool", i+2, stats.PoolAllocs)
		}
	}

	// Error mid-run (missing uniform for the second stage) must release
	// the first stage's checked-out intermediates.
	p2 := d.NewPipeline()
	defer p2.Close()
	a2 := p2.Input(codec.Float32, n)
	p2.Output(p2.Stage(scale, nil, p2.Stage(scale, map[string]float32{"u_scale": 1}, a2)))
	if _, err := p2.Run([]*Buffer{bo}, []*Buffer{ba}, nil); err == nil {
		t.Fatal("run without the second stage's uniform succeeded")
	}
	before := len(p2.pool.all)
	if _, err := p2.Run([]*Buffer{bo}, []*Buffer{ba}, nil); err == nil {
		t.Fatal("second failing run succeeded")
	}
	if after := len(p2.pool.all); after != before {
		t.Errorf("failing runs grew the pool from %d to %d buffers", before, after)
	}
}

// TestOutputOutputAliasingRejected pins the remaining aliasing gap: two
// outputs sharing one buffer (multi-output kernel or two Output slots)
// must be rejected, not silently resolved in favour of the last write.
func TestOutputOutputAliasingRejected(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 16
	k, err := d.BuildKernel(KernelSpec{
		Name:   "sumdiff",
		Inputs: []Param{{Name: "a", Type: codec.Float32}, {Name: "b", Type: codec.Float32}},
		Outputs: []OutputSpec{
			{Name: "s", Type: codec.Float32},
			{Name: "dd", Type: codec.Float32},
		},
		Source: `
float gc_kernel_s(float idx) { return gc_a(idx) + gc_b(idx); }
float gc_kernel_dd(float idx) { return gc_a(idx) - gc_b(idx); }
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	ba, _ := d.NewBuffer(codec.Float32, n)
	bb, _ := d.NewBuffer(codec.Float32, n)
	bo, _ := d.NewBuffer(codec.Float32, n)
	if _, err := k.Run([]*Buffer{bo, bo}, []*Buffer{ba, bb}, nil); err == nil {
		t.Error("Run with two outputs sharing a buffer succeeded, want error")
	}

	p := d.NewPipeline()
	defer p.Close()
	a := p.Input(codec.Float32, n)
	b := p.Input(codec.Float32, n)
	outs := p.StageMulti(k, []int{n, n}, nil, a, b)
	p.Output(outs[0])
	p.Output(outs[1])
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run([]*Buffer{bo, bo}, []*Buffer{ba, bb}, nil); err == nil {
		t.Error("pipeline Run with two outputs sharing a buffer succeeded, want error")
	}
}

// TestPipelineReduceSingleElement pins the n=1 edge: Reduce degenerates
// to an identity pass whose result can be marked as an Output.
func TestPipelineReduceSingleElement(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	p := d.NewPipeline()
	defer p.Close()
	p.Output(p.Reduce(p.Input(codec.Float32, 1), ReduceAdd))
	if err := p.Err(); err != nil {
		t.Fatalf("Reduce over 1 element rejected: %v", err)
	}
	in, _ := d.NewBuffer(codec.Float32, 1)
	out, _ := d.NewBuffer(codec.Float32, 1)
	if err := in.WriteFloat32([]float32{42.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run([]*Buffer{out}, []*Buffer{in}, nil); err != nil {
		t.Fatal(err)
	}
	got, err := out.ReadFloat32()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42.5 {
		t.Errorf("1-element reduce = %g, want 42.5 (identity)", got[0])
	}
}

// TestReduceKernelCachedPerDevice checks the fold kernel compiles once
// per device and op/elem, shared by every pipeline.
func TestReduceKernelCachedPerDevice(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	k1, err := d.BuildReduceKernel(codec.Float32, ReduceAdd)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := d.BuildReduceKernel(codec.Float32, ReduceAdd)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("identical reduce kernels were compiled twice")
	}
	k3, _ := d.BuildReduceKernel(codec.Float32, ReduceMin)
	k4, _ := d.BuildReduceKernel(codec.Int32, ReduceAdd)
	if k3 == k1 || k4 == k1 {
		t.Error("distinct op/elem reduce kernels shared a cache entry")
	}

	tr0 := d.GL().Transfers().CompileCount
	p1 := d.NewPipeline()
	p1.Output(p1.Reduce(p1.Input(codec.Float32, 64), ReduceAdd))
	p2 := d.NewPipeline()
	p2.Output(p2.Reduce(p2.Input(codec.Float32, 64), ReduceAdd))
	if err := p1.Err(); err != nil {
		t.Fatal(err)
	}
	if err := p2.Err(); err != nil {
		t.Fatal(err)
	}
	if tr1 := d.GL().Transfers().CompileCount; tr1 != tr0 {
		t.Errorf("building two reduce pipelines compiled %d new shaders, want 0 (device cache)", tr1-tr0)
	}
	p1.Close()
	p2.Close()
}

// TestPipelineStageTimes pins the per-stage timing hook: one Timeline per
// builder stage, summing (with the inter-stage accounting exact) to the
// whole-chain modeled time.
func TestPipelineStageTimes(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 256
	scale, shift := buildPipeKernels(t, d)

	p := d.NewPipeline()
	defer p.Close()
	in := p.Input(codec.Float32, n)
	s1 := p.Stage(scale, map[string]float32{"u_scale": 2.0}, in)
	s2 := p.Stage(shift, nil, s1)
	p.Output(p.Stage(scale, map[string]float32{"u_scale": 0.5}, s2))
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}

	bin, _ := d.NewBuffer(codec.Float32, n)
	bout, _ := d.NewBuffer(codec.Float32, n)
	if err := bin.WriteFloat32(randFloats(n, 7)); err != nil {
		t.Fatal(err)
	}
	stats, err := p.Run([]*Buffer{bout}, []*Buffer{bin}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.StageTimes) != 3 {
		t.Fatalf("StageTimes has %d entries, want 3", len(stats.StageTimes))
	}
	var sum Timeline
	for i, st := range stats.StageTimes {
		if st.Execute <= 0 {
			t.Errorf("stage %d: non-positive modeled execute time %v", i, st.Execute)
		}
		sum = sum.Add(st)
	}
	if sum != stats.Time {
		t.Fatalf("stage times sum to %+v, whole chain is %+v", sum, stats.Time)
	}
}
