package core

import (
	"errors"
	"testing"

	"glescompute/internal/codec"
	"glescompute/internal/gles"
)

var lcSumSpec = KernelSpec{
	Name:   "sum",
	Inputs: []Param{{Name: "a", Type: codec.Float32}, {Name: "b", Type: codec.Float32}},
	Source: `float gc_kernel(float idx) { return gc_a(idx) + gc_b(idx); }`,
}

// TestKernelCloseReleasesObjects pins that Kernel.Close deletes the
// program and both shaders of every pass, and that a closed kernel
// refuses to run.
func TestKernelCloseReleasesObjects(t *testing.T) {
	dev, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	before := dev.LiveObjects()
	k, err := dev.BuildKernel(KernelSpec{
		Name:    "multi",
		Inputs:  []Param{{Name: "x", Type: codec.Float32}},
		Outputs: []OutputSpec{{Name: "p", Type: codec.Float32}, {Name: "q", Type: codec.Float32}},
		Source: `float gc_kernel_p(float idx) { return gc_x(idx) + 1.0; }
float gc_kernel_q(float idx) { return gc_x(idx) * 2.0; }`,
	})
	if err != nil {
		t.Fatal(err)
	}
	mid := dev.LiveObjects()
	if mid.Programs != before.Programs+2 || mid.Shaders != before.Shaders+4 {
		t.Fatalf("after build: %+v (before %+v), want +2 programs +4 shaders", mid, before)
	}
	if err := k.Close(); err != nil {
		t.Fatal(err)
	}
	after := dev.LiveObjects()
	if after != before {
		t.Fatalf("after close: %+v, want %+v", after, before)
	}
	out, _ := dev.NewBuffer(codec.Float32, 4)
	defer out.Free()
	if _, err := k.Run([]*Buffer{out, out}, []*Buffer{out}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run on closed kernel: err = %v, want ErrClosed", err)
	}
	if err := k.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestKernelConcurrentCloseVsRun pins the one cross-goroutine concession
// the lifecycle makes: Close may race an in-flight Run (a service
// shutting down while a request executes). The two serialize — the Run
// either completes normally or observes ErrClosed; no draw ever touches
// deleted programs. Run with -race in CI.
func TestKernelConcurrentCloseVsRun(t *testing.T) {
	dev, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	k, err := dev.BuildKernel(lcSumSpec)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := dev.NewBuffer(codec.Float32, 64)
	b, _ := dev.NewBuffer(codec.Float32, 64)
	out, _ := dev.NewBuffer(codec.Float32, 64)
	if err := a.WriteFloat32(make([]float32, 64)); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFloat32(make([]float32, 64)); err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		for {
			if _, err := k.Run1(out, []*Buffer{a, b}, nil); err != nil {
				done <- err
				return
			}
		}
	}()
	<-started
	for i := 0; i < 3; i++ { // concurrent double-Close is also legal
		if err := k.Close(); err != nil {
			t.Errorf("Close %d: %v", i, err)
		}
	}
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("racing Run ended with %v, want ErrClosed", err)
	}
	if _, err := k.Run1(out, []*Buffer{a, b}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after concurrent Close: %v, want ErrClosed", err)
	}
}

// TestPipelineConcurrentCloseVsRun is the pipeline variant: Close must
// never free the pool under an executing chain.
func TestPipelineConcurrentCloseVsRun(t *testing.T) {
	dev, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	k, err := dev.BuildKernel(lcSumSpec)
	if err != nil {
		t.Fatal(err)
	}
	p := dev.NewPipeline()
	x := p.Input(codec.Float32, 64)
	y := p.Input(codec.Float32, 64)
	s := p.Stage(k, nil, x, y)
	p.Output(p.Stage(k, nil, s, s))
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	a, _ := dev.NewBuffer(codec.Float32, 64)
	b, _ := dev.NewBuffer(codec.Float32, 64)
	out, _ := dev.NewBuffer(codec.Float32, 64)
	if err := a.WriteFloat32(make([]float32, 64)); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFloat32(make([]float32, 64)); err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		for {
			if _, err := p.Run([]*Buffer{out}, []*Buffer{a, b}, nil); err != nil {
				done <- err
				return
			}
		}
	}()
	<-started
	for i := 0; i < 3; i++ {
		if err := p.Close(); err != nil {
			t.Errorf("Close %d: %v", i, err)
		}
	}
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("racing Run ended with %v, want ErrClosed", err)
	}
	if _, err := p.Run([]*Buffer{out}, []*Buffer{a, b}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after concurrent Close: %v, want ErrClosed", err)
	}
}

// TestBuildKernelFailureLeaksNothing pins that a spec whose later output
// fails to compile releases the programs and shaders already built for
// earlier outputs — a long-running service retrying a bad kernel must
// not accumulate simulator objects.
func TestBuildKernelFailureLeaksNothing(t *testing.T) {
	dev, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	before := dev.LiveObjects()
	_, err = dev.BuildKernel(KernelSpec{
		Name:    "half-bad",
		Inputs:  []Param{{Name: "x", Type: codec.Float32}},
		Outputs: []OutputSpec{{Name: "p", Type: codec.Float32}, {Name: "q", Type: codec.Float32}},
		Source: `float gc_kernel_p(float idx) { return gc_x(idx); }
float gc_kernel_q(float idx) { return this does not parse; }`,
	})
	if err == nil {
		t.Fatal("broken second output compiled")
	}
	if after := dev.LiveObjects(); after != before {
		t.Fatalf("failed BuildKernel leaked objects: %+v -> %+v", before, after)
	}
}

// TestDeviceCloseErrClosed pins the clean error path for every operation
// on a closed device — the race a queue shutdown must tolerate.
func TestDeviceCloseErrClosed(t *testing.T) {
	dev, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := dev.NewBuffer(codec.Float32, 16)
	if err != nil {
		t.Fatal(err)
	}
	buf2, _ := dev.NewBuffer(codec.Float32, 16)
	k, err := dev.BuildKernel(lcSumSpec)
	if err != nil {
		t.Fatal(err)
	}
	p := dev.NewPipeline()
	p.Output(p.Stage(k, nil, p.Input(codec.Float32, 16), p.Input(codec.Float32, 16)))
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	wantClosed := func(label string, err error) {
		t.Helper()
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("%s on closed device: err = %v, want ErrClosed", label, err)
		}
	}
	_, err = dev.NewBuffer(codec.Float32, 4)
	wantClosed("NewBuffer", err)
	_, err = dev.NewMatrixBuffer(codec.Float32, 4)
	wantClosed("NewMatrixBuffer", err)
	_, err = dev.NewBufferWithGrid(codec.Float32, 4, buf.Grid())
	wantClosed("NewBufferWithGrid", err)
	_, err = dev.BuildKernel(lcSumSpec)
	wantClosed("BuildKernel", err)
	_, err = dev.BuildKernelCached(lcSumSpec)
	wantClosed("BuildKernelCached", err)
	_, err = dev.BuildReduceKernel(codec.Float32, ReduceAdd)
	wantClosed("BuildReduceKernel", err)
	_, err = k.Run1(buf, []*Buffer{buf2, buf2}, nil)
	wantClosed("Kernel.Run", err)
	wantClosed("WriteFloat32", buf.WriteFloat32(make([]float32, 16)))
	_, err = buf.ReadFloat32()
	wantClosed("ReadFloat32", err)
	wantClosed("WriteRange", buf.WriteRange(0, make([]float32, 16)))
	_, err = buf.ReadRange(0, 4)
	wantClosed("ReadRange", err)
	wantClosed("Copy", dev.Copy(buf, buf2))
	_, err = p.Run([]*Buffer{buf}, []*Buffer{buf, buf2}, nil)
	wantClosed("Pipeline.Run", err)
	// Free after device close must be a harmless no-op.
	buf.Free()
	buf2.Free()
	p.Close()
}

// TestDeviceCloseLeakHook checks the leak census: silent when everything
// was released, reporting the exact counts when objects leak.
func TestDeviceCloseLeakHook(t *testing.T) {
	// Clean shutdown: no callback.
	dev, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := dev.NewBuffer(codec.Float32, 8)
	if err := b.WriteFloat32(make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadFloat32(); err != nil { // forces the FBO into being
		t.Fatal(err)
	}
	k, _ := dev.BuildKernel(lcSumSpec)
	k.Close()
	b.Free()
	called := false
	dev.SetLeakHook(func(o gles.ObjectCounts) { called = true })
	dev.Close()
	if called {
		t.Fatal("leak hook fired on a clean shutdown")
	}

	// Leaky shutdown: the census names what was left behind.
	dev2, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	leaked, _ := dev2.NewBuffer(codec.Float32, 8)
	_ = leaked
	if _, err := dev2.BuildKernel(lcSumSpec); err != nil {
		t.Fatal(err)
	}
	var got gles.ObjectCounts
	dev2.SetLeakHook(func(o gles.ObjectCounts) { got = o })
	dev2.Close()
	if got.Textures != 1 || got.Programs != 1 || got.Shaders != 2 {
		t.Fatalf("leak census = %+v, want 1 texture, 1 program, 2 shaders", got)
	}
}

// TestBuildKernelCached pins compile-once semantics: content-identical
// specs share one kernel and no new GL objects.
func TestBuildKernelCached(t *testing.T) {
	dev, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	k1, err := dev.BuildKernelCached(lcSumSpec)
	if err != nil {
		t.Fatal(err)
	}
	objs := dev.LiveObjects()
	k2, err := dev.BuildKernelCached(lcSumSpec)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("content-identical specs compiled twice")
	}
	if dev.LiveObjects() != objs {
		t.Fatalf("cache hit created objects: %+v -> %+v", objs, dev.LiveObjects())
	}
	other := lcSumSpec
	other.Source = `float gc_kernel(float idx) { return gc_a(idx) - gc_b(idx); }`
	k3, err := dev.BuildKernelCached(other)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Fatal("different sources shared a cached kernel")
	}
	// A closed cached kernel is lazily recompiled rather than returned.
	k3.Close()
	k4, err := dev.BuildKernelCached(other)
	if err != nil {
		t.Fatal(err)
	}
	if k4 == k3 {
		t.Fatal("cache returned a closed kernel")
	}
}

// TestPipelineClose pins ErrClosed on a closed pipeline.
func TestPipelineClose(t *testing.T) {
	dev, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	k, err := dev.BuildKernel(lcSumSpec)
	if err != nil {
		t.Fatal(err)
	}
	p := dev.NewPipeline()
	p.Output(p.Stage(k, nil, p.Input(codec.Float32, 8), p.Input(codec.Float32, 8)))
	a, _ := dev.NewBuffer(codec.Float32, 8)
	b, _ := dev.NewBuffer(codec.Float32, 8)
	o, _ := dev.NewBuffer(codec.Float32, 8)
	defer a.Free()
	defer b.Free()
	defer o.Free()
	if err := a.WriteFloat32(make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFloat32(make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run([]*Buffer{o}, []*Buffer{a, b}, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run([]*Buffer{o}, []*Buffer{a, b}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run on closed pipeline: err = %v, want ErrClosed", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
