package core

import (
	"fmt"
	"sync"

	"glescompute/internal/codec"
	"glescompute/internal/gles"
	"glescompute/internal/layout"
)

// Ref names a data slot inside a pipeline: a declared external input or
// the output of a stage. Refs are only meaningful on the pipeline that
// issued them.
type Ref int

// pipeSlot is one logical array flowing through the pipeline.
type pipeSlot struct {
	elem codec.ElemType
	fmt  codec.Format
	n    int

	inputIdx  int  // >=0: filled from ins[inputIdx] at Run
	outputIdx int  // >=0: rendered into outs[outputIdx] at Run
	lastUse   int  // index of the last exec stage reading this slot (-1: never read)
	fusedAway bool // eliminated by fusion: never materialized as a texture
}

// pipeStage is one kernel invocation inside the pipeline.
type pipeStage struct {
	kernel   *Kernel
	ins      []Ref
	outs     []Ref
	uniforms map[string]float32 // fixed at build; override Run uniforms
	label    string             // stage name for fusion/stats reporting
	inline   []int              // input indices hinted for inline-producer fusion
}

// Pipeline chains kernels entirely on the device: each stage's output
// texture feeds the next stage's sampler directly, with no ReadPixels or
// codec round-trip between passes (the multi-pass regime of the paper's
// challenge #7, made safe and automatic). Intermediates come from an
// internal pool of recycled ping-pong buffers; the output-aliases-input
// hazard — rendering into a texture a stage is sampling, undefined in GL
// — is resolved automatically, by construction for pooled intermediates
// (a buffer is never handed out while still bound as a live input) and
// with a device-side copy when the render target is a user-owned buffer.
//
// Build a pipeline with Input/Stage/Reduce/Output, then execute it with
// Run as many times as needed. Builder errors are deferred: they surface
// on the first Run (or via Err), so construction code needs no per-call
// error handling.
type Pipeline struct {
	dev     *Device
	slots   []pipeSlot
	stages  []pipeStage
	inputs  []Ref
	outputs []Ref
	pool    *BufferPool

	fusion bool  // merge eligible stage chains into single passes
	plan   *plan // execution schedule, frozen by the first Run

	err    error // first builder error, surfaced at Run
	mu     sync.Mutex
	closed bool
}

// NewPipeline creates an empty pipeline on the device. Automatic kernel
// fusion follows the device's ExecConfig.Fusion toggle (by default: on
// unless the EnvDisableFusion environment variable is set); SetFusion
// overrides either default per pipeline.
func (d *Device) NewPipeline() *Pipeline {
	return &Pipeline{dev: d, pool: NewBufferPool(d), fusion: d.exec.FusionEnabled()}
}

// Err returns the first builder error, if any.
func (p *Pipeline) Err() error { return p.err }

// SetFusion enables or disables the automatic kernel-fusion planner for
// this pipeline. It must be called before the first Run (the plan is
// frozen there); calling it later records a builder error.
func (p *Pipeline) SetFusion(on bool) {
	if p.plan != nil {
		p.fail("SetFusion after the pipeline compiled (call it before the first Run)")
		return
	}
	p.fusion = on
}

// FusionEnabled reports whether the planner may fuse this pipeline's
// stages.
func (p *Pipeline) FusionEnabled() bool { return p.fusion }

// Label names the most recently added stage for fusion and stats
// reporting ("conv1", "softmax/lse"); unlabeled stages report their
// kernel's spec name. Fused passes join their member labels with "+".
func (p *Pipeline) Label(name string) {
	if p.err != nil || len(p.stages) == 0 {
		return
	}
	p.stages[len(p.stages)-1].label = name
}

// InlineInput hints the planner that input i of the most recently added
// stage may be fused by RECOMPUTATION: instead of materializing the
// producing stage's output texture, every gc_<input>(j) fetch evaluates
// the producer's kernel at j inline. Unlike element-wise fusion this
// imposes no length or access-pattern restriction on the consumer — the
// caller asserts the trade is profitable, i.e. the consumer fetches each
// producer element at most about once (a stride-2 2×2 max-pool over a
// GEMM, a tiny per-row statistic), because an amplifying access pattern
// recomputes the producer per fetch. All other safety rules still apply
// (sole consumer, not a pipeline output, producer's body declared
// inlinable via FusableEpilogue/ElementWise, no raster-state reads);
// results are bit-identical for int32 either way, and the hint is
// ignored whenever a rule fails.
func (p *Pipeline) InlineInput(i int) {
	if p.err != nil || len(p.stages) == 0 {
		return
	}
	st := &p.stages[len(p.stages)-1]
	if i < 0 || i >= len(st.ins) {
		p.fail("InlineInput: stage %q has no input %d", st.label, i)
		return
	}
	st.inline = append(st.inline, i)
}

// PlannedPasses compiles the execution plan (freezing the builder) and
// returns one label per planned pass group, post-fusion — "conv1+relu1"
// for a fused chain. Multi-output kernels contribute one entry covering
// all their passes.
func (p *Pipeline) PlannedPasses() ([]string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return nil, p.err
	}
	if err := p.dev.checkOpen("Pipeline.PlannedPasses"); err != nil {
		return nil, err
	}
	if p.closed {
		return nil, fmt.Errorf("core: pipeline: PlannedPasses: %w", ErrClosed)
	}
	if err := p.compile(); err != nil {
		return nil, err
	}
	labels := make([]string, len(p.plan.exec))
	for i := range p.plan.exec {
		labels[i] = p.plan.exec[i].label
	}
	return labels, nil
}

// Close releases the pipeline's pooled intermediate buffers and marks the
// pipeline closed: further Runs return ErrClosed. The kernels wired into
// stages are not closed (the pipeline does not own them). Idempotent, and
// safe against a concurrent Run (they serialize, so the pool is never
// freed under a pass).
func (p *Pipeline) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	p.pool.FreeAll()
	return nil
}

func (p *Pipeline) fail(format string, args ...interface{}) Ref {
	if p.err == nil {
		p.err = fmt.Errorf("core: pipeline: "+format, args...)
	}
	return Ref(-1)
}

func (p *Pipeline) addSlot(f codec.Format, n int) Ref {
	p.slots = append(p.slots, pipeSlot{elem: f.Elem(), fmt: f, n: n, inputIdx: -1, outputIdx: -1, lastUse: -1})
	return Ref(len(p.slots) - 1)
}

func (p *Pipeline) validRef(r Ref) bool { return r >= 0 && int(r) < len(p.slots) }

// Input declares an external input slot of n elements in the scalar
// format of elem; the matching buffer is supplied positionally to Run.
func (p *Pipeline) Input(elem codec.ElemType, n int) Ref {
	return p.InputFmt(codec.FormatOf(elem), n)
}

// InputFmt declares an external input slot with an explicit texel format
// (packed inputs of 4-wide chains).
func (p *Pipeline) InputFmt(f codec.Format, n int) Ref {
	if p.plan != nil {
		return p.fail("Input added after the pipeline compiled (build fully before the first Run)")
	}
	if n <= 0 {
		return p.fail("Input: non-positive length %d", n)
	}
	if f == codec.FmtAuto {
		return p.fail("InputFmt: format must be explicit")
	}
	r := p.addSlot(f, n)
	p.slots[r].inputIdx = len(p.inputs)
	p.inputs = append(p.inputs, r)
	return r
}

// Stage appends a kernel whose output has the same length as its first
// input. uniforms fixed here override Run-level uniforms.
func (p *Pipeline) Stage(k *Kernel, uniforms map[string]float32, ins ...Ref) Ref {
	if p.err != nil {
		return Ref(-1)
	}
	if len(ins) == 0 {
		return p.fail("Stage %q: no inputs; use StageN to set the output length", k.spec.Name)
	}
	if !p.validRef(ins[0]) {
		return p.fail("Stage %q: invalid input ref", k.spec.Name)
	}
	return p.StageN(k, p.slots[ins[0]].n, uniforms, ins...)
}

// StageN appends a kernel producing outN elements. The kernel must have a
// single output; use StageMulti for multi-output kernels.
func (p *Pipeline) StageN(k *Kernel, outN int, uniforms map[string]float32, ins ...Ref) Ref {
	outs := p.StageMulti(k, []int{outN}, uniforms, ins...)
	if len(outs) != 1 {
		return p.fail("StageN %q: kernel has %d outputs, want 1 (use StageMulti)", k.spec.Name, len(k.passes))
	}
	return outs[0]
}

// StageMulti appends a kernel with one declared length per kernel output
// and returns a Ref per output.
func (p *Pipeline) StageMulti(k *Kernel, outNs []int, uniforms map[string]float32, ins ...Ref) []Ref {
	if p.err != nil {
		return nil
	}
	if p.plan != nil {
		p.fail("stage %q added after the pipeline compiled (build fully before the first Run)", k.spec.Name)
		return nil
	}
	if len(outNs) != len(k.passes) {
		p.fail("StageMulti %q: kernel has %d outputs, got %d lengths", k.spec.Name, len(k.passes), len(outNs))
		return nil
	}
	if len(ins) != len(k.spec.Inputs) {
		p.fail("stage %q: kernel has %d inputs, got %d refs", k.spec.Name, len(k.spec.Inputs), len(ins))
		return nil
	}
	si := len(p.stages)
	for i, r := range ins {
		if !p.validRef(r) {
			p.fail("stage %q: input %d is not a ref of this pipeline", k.spec.Name, i)
			return nil
		}
		if p.slots[r].fmt != k.spec.Inputs[i].Fmt {
			p.fail("stage %q: input %q expects %s, ref holds %s",
				k.spec.Name, k.spec.Inputs[i].Name, k.spec.Inputs[i].Fmt, p.slots[r].fmt)
			return nil
		}
		p.slots[r].lastUse = si
	}
	st := pipeStage{kernel: k, ins: append([]Ref(nil), ins...), uniforms: uniforms, label: k.spec.Name}
	for i, out := range k.spec.Outputs {
		if outNs[i] <= 0 {
			p.fail("stage %q: non-positive output length %d", k.spec.Name, outNs[i])
			return nil
		}
		st.outs = append(st.outs, p.addSlot(out.Fmt, outNs[i]))
	}
	p.stages = append(p.stages, st)
	return st.outs
}

// ReduceOp is a commutative fold for Reduce. Expr is a GLSL ES 1.00
// expression over the partial `a` and the incoming element `b`.
type ReduceOp struct {
	Name string
	Expr string
}

// Built-in reduction operators.
var (
	ReduceAdd = ReduceOp{Name: "add", Expr: "a + b"}
	ReduceMin = ReduceOp{Name: "min", Expr: "min(a, b)"}
	ReduceMax = ReduceOp{Name: "max", Expr: "max(a, b)"}
)

// ReduceLenUniform is the uniform carrying the live input length into
// each fold pass of a reduce kernel, so odd tails fold correctly (the
// orphan element passes through unchanged). Callers driving
// BuildReduceKernel by hand must supply it per pass.
const ReduceLenUniform = "gc_reduce_n"

// Reduce folds the slot down to a single element with ceil(log2 n)
// pairwise passes, entirely on the device — the tree the examples used to
// hand-roll with explicit buffer juggling. Returns a 1-element Ref.
func (p *Pipeline) Reduce(in Ref, op ReduceOp) Ref {
	if p.err != nil {
		return Ref(-1)
	}
	if !p.validRef(in) {
		return p.fail("Reduce: invalid input ref")
	}
	elem := p.slots[in].elem
	k, err := p.dev.BuildReduceKernel(elem, op)
	if err != nil {
		p.err = err
		return Ref(-1)
	}
	if p.slots[in].n == 1 {
		// Already a single element: one pass-through fold pass (the
		// odd-tail guard makes it the identity) so the result is a stage
		// output Ref that can be marked with Output like any other.
		return p.StageN(k, 1, map[string]float32{ReduceLenUniform: 1}, in)
	}
	cur := in
	for n := p.slots[in].n; n > 1; n = (n + 1) / 2 {
		cur = p.StageN(k, (n+1)/2, map[string]float32{ReduceLenUniform: float32(n)}, cur)
		if p.err != nil {
			return Ref(-1)
		}
	}
	return cur
}

// BuildReduceKernel compiles (once per device and op/elem — compiled
// kernels are cached) the pairwise fold pass Pipeline.Reduce chains:
// input "x", one output of the same element type, and the
// ReduceLenUniform guard. Exposed so benchmarks can run the identical
// kernel outside a pipeline (e.g. to price the host round-trip path the
// pipeline eliminates).
func (d *Device) BuildReduceKernel(elem codec.ElemType, op ReduceOp) (*Kernel, error) {
	if op.Expr == "" {
		return nil, fmt.Errorf("core: BuildReduceKernel: empty op expression")
	}
	key := op.Name + "|" + op.Expr + "|" + elem.String()
	if k, ok := d.reduceKernels[key]; ok {
		return k, nil
	}
	src := fmt.Sprintf(`
float gc_kernel(float idx) {
	float a = gc_x(2.0 * idx);
	float bi = 2.0 * idx + 1.0;
	if (bi < %s) {
		float b = gc_x(bi);
		a = (%s);
	}
	return a;
}
`, ReduceLenUniform, op.Expr)
	k, err := d.BuildKernel(KernelSpec{
		Name:     "reduce-" + op.Name,
		Inputs:   []Param{{Name: "x", Type: elem}},
		Outputs:  []OutputSpec{{Name: "out", Type: elem}},
		Uniforms: []string{ReduceLenUniform},
		Source:   src,
	})
	if err != nil {
		return nil, err
	}
	if d.reduceKernels == nil {
		d.reduceKernels = map[string]*Kernel{}
	}
	d.reduceKernels[key] = k
	return k, nil
}

// Output marks a slot as an external output; the receiving buffer is
// supplied positionally to Run. A slot can be marked at most once, and
// external inputs cannot be outputs (copy through a kernel instead).
func (p *Pipeline) Output(r Ref) {
	if p.err != nil {
		return
	}
	if p.plan != nil {
		p.fail("Output marked after the pipeline compiled (build fully before the first Run)")
		return
	}
	if !p.validRef(r) {
		p.fail("Output: invalid ref")
		return
	}
	if p.slots[r].inputIdx >= 0 {
		p.fail("Output: ref is a pipeline input")
		return
	}
	if p.slots[r].outputIdx >= 0 {
		p.fail("Output: ref already marked")
		return
	}
	p.slots[r].outputIdx = len(p.outputs)
	p.outputs = append(p.outputs, r)
}

// PipelineStats reports one pipeline execution: the aggregated draw work,
// the modeled wall-clock of the whole chain under the vc4 timing model,
// and the host-traffic counters that prove the chain stayed
// device-resident (both byte counts are zero when it did).
type PipelineStats struct {
	Passes int            // fragment passes executed across all stages
	Draw   gles.DrawStats // aggregated draw statistics
	Time   Timeline       // modeled wall time of the chain (vc4 model)

	HostUploadBytes   uint64 // host→device bytes moved during Run
	HostReadbackBytes uint64 // device→host bytes moved during Run

	HazardCopies int // output-aliases-input resolutions via copy
	PoolAllocs   int // intermediates freshly allocated this run
	PoolReuses   int // intermediates served from the recycled pool

	// StageTimes is the modeled wall-time of each stage, one entry per
	// builder stage in order (hazard-copy passes are charged to the stage
	// that flushed them). Multi-stage workloads — a neural network pricing
	// its layers, say — aggregate these into per-phase breakdowns without
	// re-running the chain stage by stage. A stage fused into a
	// predecessor's pass reports a zero Timeline; the whole fused pass is
	// charged to the chain's first member, so the entries still sum to
	// Time.
	StageTimes []Timeline

	// FusedStages counts builder stages the fusion planner merged into a
	// predecessor's fragment pass (each one is a draw plus an RGBA8
	// encode→texture→decode round trip that never happened).
	FusedStages int
	// ExecStages labels the executed pass groups in order, a fused chain
	// reporting its members joined with "+" ("conv1+relu1").
	ExecStages []string
	// FusionFallbacks counts fused groups whose generated shader failed
	// to build and ran unfused instead (0 in healthy pipelines).
	FusionFallbacks int
}

// Run executes the pipeline. ins feed the declared Input slots in order;
// outs receive the marked Output slots in order. uniforms supplies
// kernel uniforms not fixed at build time (stage uniforms win). The
// first Run freezes the builder and compiles the execution plan —
// fusing eligible stage chains into single fragment passes — which every
// later Run reuses.
func (p *Pipeline) Run(outs []*Buffer, ins []*Buffer, uniforms map[string]float32) (PipelineStats, error) {
	var stats PipelineStats
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return stats, p.err
	}
	if err := p.dev.checkOpen("Pipeline.Run"); err != nil {
		return stats, err
	}
	if p.closed {
		return stats, fmt.Errorf("core: pipeline: Run: %w", ErrClosed)
	}
	if len(p.stages) == 0 {
		return stats, fmt.Errorf("core: pipeline: no stages")
	}
	if err := p.compile(); err != nil {
		return stats, err
	}
	if len(ins) != len(p.inputs) {
		return stats, fmt.Errorf("core: pipeline: %d inputs declared, got %d buffers", len(p.inputs), len(ins))
	}
	if len(outs) != len(p.outputs) {
		return stats, fmt.Errorf("core: pipeline: %d outputs marked, got %d buffers", len(p.outputs), len(outs))
	}
	bind := make([]*Buffer, len(p.slots))
	for i, r := range p.inputs {
		b := ins[i]
		s := &p.slots[r]
		if b.fmt != s.fmt {
			return stats, fmt.Errorf("core: pipeline: input %d holds %s, declared %s", i, b.fmt, s.fmt)
		}
		if b.n != s.n {
			return stats, fmt.Errorf("core: pipeline: input %d has %d elements, declared %d", i, b.n, s.n)
		}
		bind[r] = b
	}
	for i, r := range p.outputs {
		b := outs[i]
		s := &p.slots[r]
		if b.fmt != s.fmt {
			return stats, fmt.Errorf("core: pipeline: output %d holds %s, produced %s", i, b.fmt, s.fmt)
		}
		if b.n != s.n {
			return stats, fmt.Errorf("core: pipeline: output %d has %d elements, produced %d", i, b.n, s.n)
		}
		for j := 0; j < i; j++ {
			if outs[j].tex == b.tex {
				return stats, fmt.Errorf("core: pipeline: outputs %d and %d share a buffer (the later write would overwrite the earlier)", j, i)
			}
		}
	}

	tr0 := p.dev.ctx.Transfers()
	t0 := p.dev.Timeline()
	allocs0, reuses0 := p.pool.allocs, p.pool.reuses

	// Every pooled checkout is tracked so that error returns (and any
	// accounting slip) hand the buffers back instead of leaking them
	// from the pool one Run at a time.
	checkedOut := map[*Buffer]bool{}
	defer func() {
		for b := range checkedOut {
			p.pool.Release(b)
		}
	}()
	acquire := func(f codec.Format, n int, grid layout.Grid) (*Buffer, error) {
		b, err := p.pool.AcquireFmt(f, n, grid)
		if err == nil {
			checkedOut[b] = true
		}
		return b, err
	}
	release := func(b *Buffer) {
		delete(checkedOut, b)
		p.pool.Release(b)
	}

	// A hazard copy pending until the aliased data's last reader has run:
	// slot's result sits in the pooled src until stage readyAfter
	// completes, then is copied into the user-owned dst.
	type pendingCopy struct {
		slot       Ref
		dst, src   *Buffer
		readyAfter int
	}
	var pending []pendingCopy

	stats.StageTimes = make([]Timeline, len(p.stages))
	stats.FusedStages = p.plan.fusedStages
	stats.FusionFallbacks = p.plan.fallbacks
	stats.ExecStages = make([]string, len(p.plan.exec))
	for ei := range p.plan.exec {
		es := &p.plan.exec[ei]
		stats.ExecStages[ei] = es.label
		stageT0 := p.dev.Timeline()
		stageIns := make([]*Buffer, len(es.ins))
		for i, r := range es.ins {
			if p.slots[r].fusedAway {
				return stats, fmt.Errorf("core: pipeline: internal: fused-away slot %d bound as an input of %q", r, es.label)
			}
			stageIns[i] = bind[r]
		}

		// Resolve render targets. A user-owned target is unsafe while
		// any live slot still awaiting readers shares its texture: that
		// covers both the GL hazard (this pass samples it) and the data
		// hazard (a later pass samples it). Render into a pooled
		// stand-in and defer the copy until the last such reader ran.
		stageOuts := make([]*Buffer, len(es.outs))
		for i, r := range es.outs {
			s := &p.slots[r]
			var target *Buffer
			if s.outputIdx >= 0 {
				target = outs[s.outputIdx]
				readyAfter := -1
				for r2 := range p.slots {
					s2 := &p.slots[r2]
					if Ref(r2) != r && bind[r2] != nil && s2.lastUse >= ei &&
						bind[r2].tex == target.tex && s2.lastUse > readyAfter {
						readyAfter = s2.lastUse
					}
				}
				if readyAfter >= ei {
					tmp, err := acquire(s.fmt, s.n, target.grid)
					if err != nil {
						return stats, err
					}
					pending = append(pending, pendingCopy{slot: r, dst: target, src: tmp, readyAfter: readyAfter})
					stats.HazardCopies++
					target = tmp
				}
			} else {
				grid, err := layout.ForLengthLanes(s.n, s.fmt.Lanes(), p.dev.cfg.MaxGridWidth)
				if err != nil {
					return stats, err
				}
				target, err = acquire(s.fmt, s.n, grid)
				if err != nil {
					return stats, err
				}
			}
			stageOuts[i] = target
		}

		var merged map[string]float32
		if es.uniBinds != nil {
			var err error
			if merged, err = p.resolveFusedUniforms(es, uniforms); err != nil {
				return stats, err
			}
		} else {
			merged = uniforms
			if st := &p.stages[es.members[0]]; len(st.uniforms) > 0 {
				merged = make(map[string]float32, len(uniforms)+len(st.uniforms))
				for k, v := range uniforms {
					merged[k] = v
				}
				for k, v := range st.uniforms {
					merged[k] = v
				}
			}
		}

		rs, err := es.kernel.Run(stageOuts, stageIns, merged)
		if err != nil {
			return stats, fmt.Errorf("stage %d (%s): %w", ei, es.label, err)
		}
		stats.Draw.Add(&rs.Draw)
		stats.Passes += len(es.kernel.passes)

		for i, r := range es.outs {
			s := &p.slots[r]
			if s.outputIdx < 0 && s.lastUse < 0 {
				// Produced but never read and not exposed: back to the
				// pool immediately.
				release(stageOuts[i])
				continue
			}
			bind[r] = stageOuts[i]
		}

		// Retire intermediates whose last reader has now run: their
		// textures go back to the pool for the next pass (ping-pong).
		// Deduplicate — a Ref wired into two params of one pass must
		// release its buffer exactly once.
		for _, r := range es.ins {
			s := &p.slots[r]
			if s.lastUse == ei && s.inputIdx < 0 && s.outputIdx < 0 && bind[r] != nil {
				release(bind[r])
				bind[r] = nil
			}
		}

		// Flush hazard copies whose aliased readers have all run.
		kept := pending[:0]
		for _, pc := range pending {
			if pc.readyAfter > ei {
				kept = append(kept, pc)
				continue
			}
			if err := p.dev.Copy(pc.dst, pc.src); err != nil {
				return stats, err
			}
			d := p.dev.ctx.LastDraw()
			stats.Draw.Add(&d)
			stats.Passes++
			bind[pc.slot] = pc.dst
			release(pc.src)
		}
		pending = kept
		// The whole pass — fused members included — is charged to the
		// chain's first builder stage; fused-away members keep a zero
		// Timeline so the per-stage entries still sum to Time.
		stats.StageTimes[es.members[0]] = stats.StageTimes[es.members[0]].Add(p.dev.Timeline().Sub(stageT0))
	}

	tr1 := p.dev.ctx.Transfers()
	stats.HostUploadBytes = tr1.TexUploadBytes - tr0.TexUploadBytes
	stats.HostReadbackBytes = tr1.ReadPixelsBytes - tr0.ReadPixelsBytes
	stats.Time = p.dev.Timeline().Sub(t0)
	stats.PoolAllocs = p.pool.allocs - allocs0
	stats.PoolReuses = p.pool.reuses - reuses0
	return stats, nil
}
