package core

import (
	"fmt"

	"glescompute/internal/codec"
)

// BuildRepackKernel builds the explicit lane-width conversion pass that
// bridges scalar and packed layouts. The fusion planner refuses to fuse
// across a lane-width boundary (the value crossing the edge changes
// shape from float to vec4); pipelines that mix widths insert a repack
// stage instead, paying one draw + one codec round trip at the seam —
// exactly the cost fusion elsewhere deletes, now made visible and
// chargeable to the layout decision that caused it.
//
// Supported conversions keep the element type and change only the
// packing: Int8 <-> Int8x4, and Float16x2 -> Float32 (half-float
// storage is upload-side only, so the reverse direction has no output
// encoder and is rejected, as is any width-preserving "conversion").
//
// The returned kernel deliberately declares neither ElementWise nor
// FusableEpilogue: a repack must materialize both sides of the seam,
// so the planner never folds it into a neighbouring chain.
func (d *Device) BuildRepackKernel(from, to codec.Format) (*Kernel, error) {
	if from.Elem() != to.Elem() {
		return nil, fmt.Errorf("core: repack %s -> %s: element types differ", from, to)
	}
	if from.Lanes() == to.Lanes() {
		return nil, fmt.Errorf("core: repack %s -> %s: same lane width, nothing to repack", from, to)
	}
	var src string
	switch {
	case to == codec.FmtInt8x4:
		// Pack: one fragment per output texel gathers four consecutive
		// scalars. Tail reads past the source length hit clamped texels;
		// the generated main() masks those lanes to zero regardless.
		src = `vec4 gc_kernel(float tidx) {
	float base = tidx * 4.0;
	return vec4(gc_src(base), gc_src(base + 1.0), gc_src(base + 2.0), gc_src(base + 3.0));
}`
	case to.Lanes() == 1:
		// Unpack: the packed input's scalar lane-select accessor does the
		// (texel, lane) mapping; the kernel is the identity on top of it.
		src = `float gc_kernel(float idx) { return gc_src(idx); }`
	default:
		return nil, fmt.Errorf("core: repack %s -> %s: unsupported conversion", from, to)
	}
	return d.BuildKernelCached(KernelSpec{
		Name:    fmt.Sprintf("repack_%s_to_%s", from, to),
		Source:  src,
		Inputs:  []Param{{Name: "src", Fmt: from}},
		Outputs: []OutputSpec{{Name: "out", Fmt: to}},
		Lanes:   to.Lanes(),
	})
}
