package core

// Persistent compile cache (DESIGN.md §6j). Shader compilation dominates
// cold-start on the modeled device: every program costs 2×4 ms front-end
// plus 2 ms link under the vc4 timing model, and a service pool opening
// four devices recompiles the same kernels four times. The cache keys the
// *generated program text* — which deterministically encodes the
// KernelSpec (via generateFragmentShader) and the codegen revision — and
// stores the gles program binary (serialized bytecode, see
// internal/shader/serialize.go). A hit restores through
// Context.ProgramBinary at BinaryLoadPerProgram (200 µs) instead of
// compiling, and restored programs execute the identical bytecode, so
// results and per-draw shader statistics are bit-for-bit unchanged.
//
// Two tiers: an in-memory map shared by every device holding the same
// *CompileCache (a pool warms from its first device's compiles), and an
// optional on-disk directory (a restarted process warms from a previous
// run). Disk entries are checksummed; corruption, truncation or a format
// version bump fail closed into a normal source compile and the bad entry
// is dropped.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"glescompute/internal/shader"
)

// EnvCompileCache names the environment variable holding the persistent
// compile-cache directory. Devices whose Config.CompileCache is nil share
// one process-wide cache per directory named here; unset means no cache.
const EnvCompileCache = "GLESCOMPUTE_COMPILE_CACHE"

// codegenFingerprint versions everything between the KernelSpec and the
// stored binary that the program text does not itself capture: the shader
// serialization format and the codegen/specializer revision. Bump the
// suffix when compilation output changes for identical source; stale disk
// entries then miss on key and age out.
var codegenFingerprint = "gc-codegen-1/bin-" + strconv.Itoa(shader.BinaryFormatVersion)

// CompileCacheStats counts cache traffic since creation.
type CompileCacheStats struct {
	MemHits  uint64 // served from the in-memory tier
	DiskHits uint64 // served from disk (and promoted to memory)
	Misses   uint64 // not found; caller compiled from source
	Stores   uint64 // entries written after a source compile
	Rejects  uint64 // entries dropped: checksum/restore failure
}

// Hits returns the total entries served from either tier.
func (s CompileCacheStats) Hits() uint64 { return s.MemHits + s.DiskHits }

// CompileCache is a two-tier (memory + optional disk) program-binary
// cache. Safe for concurrent use by multiple devices. The zero value is
// not usable; construct with NewCompileCache.
type CompileCache struct {
	mu    sync.Mutex
	mem   map[string][]byte
	dir   string // "" = memory-only
	stats CompileCacheStats
}

// NewCompileCache creates a cache. dir is the persistence directory
// (created if missing); an empty dir makes a memory-only cache, which
// still de-duplicates compiles across every device sharing the object.
func NewCompileCache(dir string) (*CompileCache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("core: compile cache: %w", err)
		}
	}
	return &CompileCache{mem: map[string][]byte{}, dir: dir}, nil
}

// Stats returns a snapshot of the traffic counters.
func (c *CompileCache) Stats() CompileCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Dir returns the persistence directory ("" for memory-only).
func (c *CompileCache) Dir() string { return c.dir }

// programKey derives the content key for a VS/FS pair. The fragment text
// is the output of generateFragmentShader, so it subsumes
// KernelSpec.CacheKey (name, formats, lanes, fusion flags all change the
// text); codegenFingerprint folds in the serialization format version.
func programKey(vsSrc, fsSrc string) string {
	h := sha256.New()
	h.Write([]byte(codegenFingerprint))
	h.Write([]byte{0})
	h.Write([]byte(vsSrc))
	h.Write([]byte{0})
	h.Write([]byte(fsSrc))
	return hex.EncodeToString(h.Sum(nil))
}

// entryPath maps a key to its disk file.
func (c *CompileCache) entryPath(key string) string {
	return filepath.Join(c.dir, key+".gcpb")
}

// diskMagic heads every cache file, followed by the 32-byte SHA-256 of
// the payload, then the payload (the gles program-binary container).
var diskMagic = []byte("GCC1")

// get returns the cached blob for key, or nil. Disk hits are verified
// against their checksum and promoted to the memory tier; undecodable
// files are deleted and counted as rejects.
func (c *CompileCache) get(key string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if blob, ok := c.mem[key]; ok {
		c.stats.MemHits++
		return blob
	}
	if c.dir == "" {
		c.stats.Misses++
		return nil
	}
	raw, err := os.ReadFile(c.entryPath(key))
	if err != nil {
		c.stats.Misses++
		return nil
	}
	if len(raw) < len(diskMagic)+sha256.Size || string(raw[:len(diskMagic)]) != string(diskMagic) {
		c.rejectLocked(key)
		return nil
	}
	sum := raw[len(diskMagic) : len(diskMagic)+sha256.Size]
	blob := raw[len(diskMagic)+sha256.Size:]
	if got := sha256.Sum256(blob); string(got[:]) != string(sum) {
		c.rejectLocked(key)
		return nil
	}
	c.mem[key] = blob
	c.stats.DiskHits++
	return blob
}

// put stores a freshly compiled program's binary in both tiers. The disk
// write is atomic (temp file + rename) so a crash never leaves a torn
// entry; write errors are ignored — the cache is an accelerator, never a
// correctness dependency.
func (c *CompileCache) put(key string, blob []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mem[key] = blob
	c.stats.Stores++
	if c.dir == "" {
		return
	}
	sum := sha256.Sum256(blob)
	raw := make([]byte, 0, len(diskMagic)+sha256.Size+len(blob))
	raw = append(raw, diskMagic...)
	raw = append(raw, sum[:]...)
	raw = append(raw, blob...)
	tmp, err := os.CreateTemp(c.dir, ".gcpb-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.entryPath(key)); err != nil {
		os.Remove(name)
	}
}

// drop evicts key from both tiers — called when a restore from the blob
// failed (corruption that decoded structurally, a version mismatch), so
// the next build recompiles and overwrites.
func (c *CompileCache) drop(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rejectLocked(key)
}

func (c *CompileCache) rejectLocked(key string) {
	delete(c.mem, key)
	if c.dir != "" {
		os.Remove(c.entryPath(key))
	}
	c.stats.Rejects++
}

// envCaches shares one CompileCache per EnvCompileCache directory across
// the process, so devices opened independently (pools, tests, examples)
// still warm each other's memory tier.
var (
	envCacheMu sync.Mutex
	envCaches  = map[string]*CompileCache{}
)

// envCompileCache resolves the environment-configured cache, or nil.
func envCompileCache() *CompileCache {
	dir := os.Getenv(EnvCompileCache)
	if dir == "" {
		return nil
	}
	envCacheMu.Lock()
	defer envCacheMu.Unlock()
	if cc, ok := envCaches[dir]; ok {
		return cc
	}
	cc, err := NewCompileCache(dir)
	if err != nil {
		cc = nil // unusable dir: disable rather than fail device open
	}
	envCaches[dir] = cc
	return cc
}
