package core

import (
	"math/rand"
	"testing"

	"glescompute/internal/codec"
)

// TestWriteReadRangeFloat32 exercises row-aligned sub-range writes and
// arbitrary-span reads against full-buffer transfers.
func TestWriteReadRangeFloat32(t *testing.T) {
	dev, err := Open(Config{MaxGridWidth: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	const n = 16*4 + 7 // 5 rows, partial tail
	b, err := dev.NewBuffer(codec.Float32, n)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Free()
	rng := rand.New(rand.NewSource(11))
	full := make([]float32, n)
	for i := range full {
		full[i] = rng.Float32()*100 - 50
	}
	if err := b.WriteFloat32(full); err != nil {
		t.Fatal(err)
	}

	// Overwrite rows 1..2 (elements 16..48) through WriteRange.
	patch := make([]float32, 32)
	for i := range patch {
		patch[i] = float32(i) + 0.25
		full[16+i] = patch[i]
	}
	if err := b.WriteRange(16, patch); err != nil {
		t.Fatal(err)
	}
	// Overwrite the tail (row-aligned range ending at b.n).
	tail := []float32{1, 2, 3, 4, 5, 6, 7}
	copy(full[64:], tail)
	if err := b.WriteRange(64, tail); err != nil {
		t.Fatal(err)
	}

	got, err := b.ReadFloat32()
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if got[i] != full[i] {
			t.Fatalf("after ranged writes, element %d = %g, want %g", i, got[i], full[i])
		}
	}

	// Arbitrary-span reads, including mid-row offsets.
	for _, span := range [][2]int{{0, n}, {0, 1}, {5, 20}, {16, 32}, {63, 8}, {n - 1, 1}} {
		off, count := span[0], span[1]
		out, err := b.ReadRange(off, count)
		if err != nil {
			t.Fatalf("ReadRange(%d,%d): %v", off, count, err)
		}
		vals := out.([]float32)
		for i := 0; i < count; i++ {
			if vals[i] != full[off+i] {
				t.Fatalf("ReadRange(%d,%d)[%d] = %g, want %g", off, count, i, vals[i], full[off+i])
			}
		}
	}
}

// TestRangeAllTypes round-trips every element type through ranged I/O.
func TestRangeAllTypes(t *testing.T) {
	dev, err := Open(Config{MaxGridWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	const n = 24 // 3 full rows of 8
	check := func(label string, src interface{}, elem codec.ElemType) {
		t.Helper()
		b, err := dev.NewBuffer(elem, n)
		if err != nil {
			t.Fatal(err)
		}
		defer b.Free()
		if err := b.WriteRange(0, src); err != nil {
			t.Fatalf("%s: WriteRange: %v", label, err)
		}
		got, err := b.ReadRange(8, 8) // middle row
		if err != nil {
			t.Fatalf("%s: ReadRange: %v", label, err)
		}
		switch s := src.(type) {
		case []int32:
			for i, v := range got.([]int32) {
				if v != s[8+i] {
					t.Fatalf("%s: element %d = %d, want %d", label, i, v, s[8+i])
				}
			}
		case []uint32:
			for i, v := range got.([]uint32) {
				if v != s[8+i] {
					t.Fatalf("%s: element %d = %d, want %d", label, i, v, s[8+i])
				}
			}
		case []int8:
			for i, v := range got.([]int8) {
				if v != s[8+i] {
					t.Fatalf("%s: element %d = %d, want %d", label, i, v, s[8+i])
				}
			}
		case []uint8:
			for i, v := range got.([]uint8) {
				if v != s[8+i] {
					t.Fatalf("%s: element %d = %d, want %d", label, i, v, s[8+i])
				}
			}
		}
	}
	i32 := make([]int32, n)
	u32 := make([]uint32, n)
	i8 := make([]int8, n)
	u8 := make([]uint8, n)
	for i := 0; i < n; i++ {
		i32[i] = int32(i*1000 - 12000)
		u32[i] = uint32(i * 99991)
		i8[i] = int8(i*9 - 100)
		u8[i] = uint8(i * 10)
	}
	check("int32", i32, codec.Int32)
	check("uint32", u32, codec.Uint32)
	check("int8", i8, codec.Int8)
	check("uint8", u8, codec.Uint8)
}

// TestRangeErrors pins the rectangle constraints and bounds checks.
func TestRangeErrors(t *testing.T) {
	dev, err := Open(Config{MaxGridWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	b, err := dev.NewBuffer(codec.Float32, 30) // 4 rows of 8, partial tail
	if err != nil {
		t.Fatal(err)
	}
	defer b.Free()
	if err := b.WriteRange(3, make([]float32, 8)); err == nil {
		t.Fatal("mid-row write offset accepted")
	}
	if err := b.WriteRange(0, make([]float32, 5)); err == nil {
		t.Fatal("partial-row write not reaching the tail accepted")
	}
	if err := b.WriteRange(24, make([]float32, 6)); err != nil {
		t.Fatalf("row-aligned tail write rejected: %v", err)
	}
	if err := b.WriteRange(8, make([]float32, 30)); err == nil {
		t.Fatal("out-of-bounds write accepted")
	}
	if err := b.WriteRange(0, make([]int32, 8)); err == nil {
		t.Fatal("type-mismatched write accepted")
	}
	if _, err := b.ReadRange(28, 4); err == nil {
		t.Fatal("out-of-bounds read accepted")
	}
	if _, err := b.ReadRange(-1, 2); err == nil {
		t.Fatal("negative offset read accepted")
	}
	if _, err := b.ReadRange(0, 0); err == nil {
		t.Fatal("empty read accepted")
	}
}

// TestRangeBoundaryOffsets pins data correctness at the row-boundary
// cases the batching layout leans on: first row, interior whole rows, the
// row-aligned partial tail, and reads whose spans start or end mid-row.
func TestRangeBoundaryOffsets(t *testing.T) {
	dev, err := Open(Config{MaxGridWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	const n, w = 30, 8 // 4 rows: 8+8+8+6 (partial tail)
	b, err := dev.NewBuffer(codec.Int32, n)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Free()

	base := make([]int32, n)
	for i := range base {
		base[i] = int32(100 + i)
	}
	if err := b.WriteRange(0, base); err != nil {
		t.Fatal(err)
	}

	// Interior whole-row write leaves the neighbours untouched.
	mid := []int32{-1, -2, -3, -4, -5, -6, -7, -8}
	if err := b.WriteRange(8, mid); err != nil {
		t.Fatal(err)
	}
	// Row-aligned write into the partial tail row.
	tail := []int32{-24, -25, -26, -27, -28, -29}
	if err := b.WriteRange(24, tail); err != nil {
		t.Fatal(err)
	}
	want := append([]int32(nil), base...)
	copy(want[8:], mid)
	copy(want[24:], tail)

	got, err := b.ReadInt32()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: got %d, want %d", i, got[i], want[i])
		}
	}

	// Reads at every boundary flavour: full buffer, single element at the
	// very end, span starting mid-row, span crossing the tail boundary,
	// and a whole interior row.
	cases := []struct{ off, count int }{
		{0, n}, {n - 1, 1}, {3, 7}, {20, 10}, {8, 8}, {0, 1}, {23, 2},
	}
	for _, tc := range cases {
		out, err := b.ReadRange(tc.off, tc.count)
		if err != nil {
			t.Fatalf("ReadRange(%d, %d): %v", tc.off, tc.count, err)
		}
		vals := out.([]int32)
		if len(vals) != tc.count {
			t.Fatalf("ReadRange(%d, %d): %d elements", tc.off, tc.count, len(vals))
		}
		for i, v := range vals {
			if v != want[tc.off+i] {
				t.Fatalf("ReadRange(%d, %d): element %d = %d, want %d", tc.off, tc.count, i, v, want[tc.off+i])
			}
		}
	}

	// Zero-length write: accepted as a no-op wherever it lands.
	if err := b.WriteRange(5, []int32{}); err != nil {
		t.Fatalf("zero-length write rejected: %v", err)
	}
	// A write ending exactly at the tail element is legal even though it
	// covers no whole row.
	if err := b.WriteRange(24, []int32{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatalf("tail-exact write rejected: %v", err)
	}
	// One-row buffer: offset 0 + full length is the only legal write.
	one, err := dev.NewBuffer(codec.Int32, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer one.Free()
	if err := one.WriteRange(0, []int32{9, 8, 7, 6, 5}); err != nil {
		t.Fatalf("single-row full write rejected: %v", err)
	}
	outAny, err := one.ReadRange(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out := outAny.([]int32); out[0] != 7 || out[1] != 6 {
		t.Fatalf("single-row ReadRange = %v, want [7 6]", out)
	}
}
