package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"glescompute/internal/codec"
)

// ccTestSource exercises loops, builtins and a uniform so the cached
// binary carries non-trivial structure.
const ccTestSource = `
float gc_kernel(float idx) {
	float s = u_bias;
	for (float k = 0.0; k < 8.0; k += 1.0) {
		s += floor(gc_a(idx) * 0.25 + k) * 0.5;
	}
	return s + exp(gc_a(idx) * 0.01);
}
`

var ccTestSpec = KernelSpec{
	Name:     "cc_probe",
	Inputs:   []Param{{Name: "a", Type: codec.Float32}},
	Uniforms: []string{"u_bias"},
	Source:   ccTestSource,
}

// runCCKernel builds ccTestSpec on the device, runs it over a fixed
// input, and returns the output plus the compile-phase modeled time of
// the build+run (the device timeline is reset first).
func runCCKernel(t *testing.T, d *Device) ([]float32, Timeline) {
	t.Helper()
	d.ResetTimeline()
	k, err := d.BuildKernel(ccTestSpec)
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	const n = 64
	in := make([]float32, n)
	for i := range in {
		in[i] = float32(i)*0.75 - 20
	}
	ba, err := d.NewBuffer(codec.Float32, n)
	if err != nil {
		t.Fatal(err)
	}
	defer ba.Free()
	bo, err := d.NewBuffer(codec.Float32, n)
	if err != nil {
		t.Fatal(err)
	}
	defer bo.Free()
	if err := ba.WriteFloat32(in); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run1(bo, []*Buffer{ba}, map[string]float32{"u_bias": 1.5}); err != nil {
		t.Fatal(err)
	}
	out, err := bo.ReadFloat32()
	if err != nil {
		t.Fatal(err)
	}
	return out, d.Timeline()
}

// TestCompileCacheSharedAcrossDevices: the second device of a pool
// sharing one cache restores binaries instead of compiling, its modeled
// compile phase shrinks by the compile/binary-load price ratio, and its
// results stay bit-identical.
func TestCompileCacheSharedAcrossDevices(t *testing.T) {
	cc, err := NewCompileCache("")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workers: 2, CompileCache: cc}

	d1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d1.Close()
	want, cold := runCCKernel(t, d1)
	if s := cc.Stats(); s.Stores == 0 || s.Hits() != 0 {
		t.Fatalf("cold build should only store: %+v", s)
	}

	d2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, warm := runCCKernel(t, d2)
	if s := cc.Stats(); s.MemHits == 0 {
		t.Fatalf("warm build missed the memory tier: %+v", s)
	}
	tr := d2.GL().Transfers()
	if tr.BinaryLoadCount == 0 {
		t.Fatal("warm device loaded no program binaries")
	}
	if tr.CompileCount != 0 || tr.LinkCount != 0 {
		t.Fatalf("warm device still compiled from source: %+v", tr)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: cached %v, compiled %v", i, got[i], want[i])
		}
	}
	if cold.Compile <= 0 || warm.Compile <= 0 {
		t.Fatalf("compile phases not modeled: cold %v warm %v", cold.Compile, warm.Compile)
	}
	if ratio := float64(cold.Compile) / float64(warm.Compile); ratio < 10 {
		t.Errorf("modeled compile speedup %.1fx, want >= 10x (cold %v, warm %v)", ratio, cold.Compile, warm.Compile)
	}
}

// TestCompileCacheDiskPersistence: a fresh cache object over the same
// directory (a restarted process) serves from disk.
func TestCompileCacheDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	cc1, err := NewCompileCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := Open(Config{Workers: 2, CompileCache: cc1})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := runCCKernel(t, d1)
	d1.Close()
	entries, err := filepath.Glob(filepath.Join(dir, "*.gcpb"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries on disk (err %v)", err)
	}

	cc2, err := NewCompileCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Open(Config{Workers: 2, CompileCache: cc2})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, _ := runCCKernel(t, d2)
	if s := cc2.Stats(); s.DiskHits == 0 {
		t.Fatalf("restart missed the disk tier: %+v", s)
	}
	if tr := d2.GL().Transfers(); tr.CompileCount != 0 {
		t.Fatalf("restart still compiled from source: %+v", tr)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: disk-cached %v, compiled %v", i, got[i], want[i])
		}
	}
}

// TestCompileCacheCorruptionFallsBack: flipped payload bytes fail the
// disk checksum, and a well-checksummed-but-garbage payload fails the
// program-binary restore; both fall back to a working source compile.
func TestCompileCacheCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	cc1, _ := NewCompileCache(dir)
	d1, err := Open(Config{Workers: 2, CompileCache: cc1})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := runCCKernel(t, d1)
	d1.Close()

	entries, _ := filepath.Glob(filepath.Join(dir, "*.gcpb"))
	if len(entries) == 0 {
		t.Fatal("no cache entries on disk")
	}
	for _, path := range entries {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-1] ^= 0x5a // payload corruption behind the checksum
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cc2, _ := NewCompileCache(dir)
	d2, err := Open(Config{Workers: 2, CompileCache: cc2})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := runCCKernel(t, d2)
	d2.Close()
	if s := cc2.Stats(); s.Rejects == 0 {
		t.Fatalf("corrupted entries not rejected: %+v", s)
	}
	if tr := cc2.Stats(); tr.Hits() != 0 {
		t.Fatalf("corrupted entries served: %+v", tr)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d after corruption fallback: %v, want %v", i, got[i], want[i])
		}
	}

	// A payload that checksums correctly but is not a valid program binary
	// must survive the deeper restore failure the same way.
	cc3, _ := NewCompileCache(dir)
	for _, path := range entries {
		key := strings.TrimSuffix(filepath.Base(path), ".gcpb")
		cc3.put(key, []byte("not a program binary"))
	}
	cc4, _ := NewCompileCache(dir)
	d3, err := Open(Config{Workers: 2, CompileCache: cc4})
	if err != nil {
		t.Fatal(err)
	}
	got3, _ := runCCKernel(t, d3)
	d3.Close()
	if s := cc4.Stats(); s.Rejects == 0 {
		t.Fatalf("invalid binaries not dropped after restore failure: %+v", s)
	}
	for i := range want {
		if got3[i] != want[i] {
			t.Fatalf("element %d after restore-failure fallback: %v, want %v", i, got3[i], want[i])
		}
	}
}

// TestCompileCacheEnvDefault: GLESCOMPUTE_COMPILE_CACHE wires a default
// cache into devices with no explicit Config.CompileCache; interpreter
// devices never cache (binaries carry bytecode the interpreter cannot
// run).
func TestCompileCacheEnvDefault(t *testing.T) {
	dir := t.TempDir()
	t.Setenv(EnvCompileCache, dir)
	d, err := Open(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.CompileCache() == nil {
		t.Fatal("env-configured cache not resolved")
	}
	if d.CompileCache().Dir() != dir {
		t.Fatalf("cache dir %q, want %q", d.CompileCache().Dir(), dir)
	}
	runCCKernel(t, d)
	if entries, _ := filepath.Glob(filepath.Join(dir, "*.gcpb")); len(entries) == 0 {
		t.Fatal("env-configured cache wrote nothing")
	}

	di, err := Open(Config{Workers: 2, UseInterpreter: true})
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	if di.CompileCache() != nil {
		t.Fatal("interpreter device must not cache binaries")
	}
}
