package core

// The unified execution-config surface. The knobs that steer how kernels
// execute — fusion planning, vec4 lane packing, rasterizer parallelism,
// the reference interpreter — historically accreted as scattered env vars
// (GLESCOMPUTE_NO_FUSION, GLESCOMPUTE_NO_VEC4) and loose Config fields.
// ExecConfig consolidates them: explicit field values always win; the
// zero value of every field preserves the legacy env-var behaviour, so
// existing deployments keep working unchanged.

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
)

// Toggle is a tri-state switch for ExecConfig fields whose default comes
// from a legacy environment variable: the zero value defers to the env
// var, Enabled and Disabled override it in either direction.
type Toggle int8

// Toggle states.
const (
	// DefaultToggle defers to the feature's legacy environment variable
	// (or its built-in default when the variable is unset).
	DefaultToggle Toggle = 0
	// Enabled forces the feature on regardless of environment.
	Enabled Toggle = 1
	// Disabled forces the feature off regardless of environment.
	Disabled Toggle = -1
)

func (t Toggle) String() string {
	switch t {
	case Enabled:
		return "on"
	case Disabled:
		return "off"
	default:
		return "default"
	}
}

// EnvRasterWorkers is the environment variable that sets the default
// fragment-rasterizer worker count for devices whose ExecConfig does not
// pin one explicitly. CI sets it to make wall-clock numbers reproducible
// across runners; ExecConfig.RasterWorkers overrides it per device.
const EnvRasterWorkers = "GLESCOMPUTE_RASTER_WORKERS"

// ExecConfig is the unified execution configuration of a device: every
// knob that changes how work is executed (never what it computes — all
// settings are bit-exact-neutral by construction, enforced by the
// differential test suite). It is embedded in Config as Config.Exec; the
// queue embeds it again as sched.Config.Exec for pool-wide defaults.
//
// Precedence, per field: an explicit non-zero value wins; the zero value
// falls back to the legacy environment variable; an unset variable yields
// the built-in default. The full knob table lives in README.md
// ("Execution configuration").
type ExecConfig struct {
	// Fusion controls the pipeline fusion planner. DefaultToggle means
	// "on unless GLESCOMPUTE_NO_FUSION is set" (the legacy behaviour);
	// Pipeline.SetFusion still overrides per pipeline.
	Fusion Toggle
	// Vec4Lanes selects the default texel lane width for consumers that
	// pick one by default (nn.Model.Build): 1 forces the scalar lowering,
	// 4 forces int8x4 packing, 0 means "4 unless GLESCOMPUTE_NO_VEC4 is
	// set". Explicit BuildLanes calls are never affected.
	Vec4Lanes int
	// RasterWorkers bounds the tile-rasterizer goroutine pool per draw:
	// 1 forces the sequential rasterizer, 0 means "GLESCOMPUTE_RASTER_WORKERS
	// if set, else GOMAXPROCS". Output is bit-identical at every worker
	// count (tiles are disjoint framebuffer regions; see DESIGN.md §6h).
	RasterWorkers int
	// UseInterpreter runs shaders on the reference AST interpreter
	// instead of the default bytecode VM (same results, slower; the
	// differential test harness uses it).
	UseInterpreter bool
}

// FusionEnabled resolves the Fusion toggle against the environment.
func (e ExecConfig) FusionEnabled() bool {
	switch e.Fusion {
	case Enabled:
		return true
	case Disabled:
		return false
	}
	return !fusionEnvDisabled()
}

// Lanes resolves the default lane width against the environment: 1 or 4.
func (e ExecConfig) Lanes() int {
	switch e.Vec4Lanes {
	case 1, 4:
		return e.Vec4Lanes
	}
	if Vec4EnvDisabled() {
		return 1
	}
	return 4
}

// Workers resolves the rasterizer worker count against the environment:
// always ≥ 1.
func (e ExecConfig) Workers() int {
	if e.RasterWorkers > 0 {
		return e.RasterWorkers
	}
	if env := os.Getenv(EnvRasterWorkers); env != "" {
		if n, err := strconv.Atoi(env); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// WorkersPinned reports whether some explicit setting (field or env var)
// pins the worker count — the queue splits GOMAXPROCS across the pool
// only when nothing pins it.
func (e ExecConfig) WorkersPinned() bool {
	if e.RasterWorkers > 0 {
		return true
	}
	if env := os.Getenv(EnvRasterWorkers); env != "" {
		if n, err := strconv.Atoi(env); err == nil && n > 0 {
			return true
		}
	}
	return false
}

// validate rejects field values outside the documented domain.
func (e ExecConfig) validate() error {
	switch e.Fusion {
	case DefaultToggle, Enabled, Disabled:
	default:
		return fmt.Errorf("core: ExecConfig.Fusion %d: use DefaultToggle, Enabled or Disabled", e.Fusion)
	}
	switch e.Vec4Lanes {
	case 0, 1, 4:
	default:
		return fmt.Errorf("core: ExecConfig.Vec4Lanes %d: supported widths are 0 (auto), 1 and 4", e.Vec4Lanes)
	}
	if e.RasterWorkers < 0 {
		return fmt.Errorf("core: ExecConfig.RasterWorkers %d: must be >= 0", e.RasterWorkers)
	}
	return nil
}

// mergeLegacy folds the deprecated top-level Config knobs (Workers,
// UseInterpreter) into an ExecConfig: explicit Exec fields win, legacy
// fields fill the gaps.
func (c Config) mergeLegacy() ExecConfig {
	e := c.Exec
	if e.RasterWorkers == 0 && c.Workers > 0 {
		e.RasterWorkers = c.Workers
	}
	if c.UseInterpreter {
		e.UseInterpreter = true
	}
	return e
}

// MergeExec fills the zero fields of dst from def and returns the merge —
// how pool-wide defaults (sched.Config.Exec) compose with per-device
// overrides: a field set in dst always wins.
func MergeExec(dst, def ExecConfig) ExecConfig {
	if dst.Fusion == DefaultToggle {
		dst.Fusion = def.Fusion
	}
	if dst.Vec4Lanes == 0 {
		dst.Vec4Lanes = def.Vec4Lanes
	}
	if dst.RasterWorkers == 0 {
		dst.RasterWorkers = def.RasterWorkers
	}
	if def.UseInterpreter {
		dst.UseInterpreter = true
	}
	return dst
}

// Exec returns the device's resolved execution configuration: the merge
// of Config.Exec over the deprecated legacy fields. Environment fallbacks
// (fusion, vec4 lanes) stay dynamic — they are consulted where the
// feature is engaged, so tests may toggle the env vars after Open.
func (d *Device) Exec() ExecConfig { return d.exec }
