package core

import (
	"runtime"
	"strings"
	"testing"
)

// exec_test.go pins the ExecConfig resolution contract: explicit field >
// environment variable > built-in default, per field; the deprecated
// legacy Config knobs keep working and lose to explicit Exec fields; and
// out-of-domain values are rejected at Open, not silently coerced.

func TestExecFusionPrecedence(t *testing.T) {
	// Explicit toggles win in both directions regardless of the env var.
	t.Setenv(EnvDisableFusion, "1")
	if (ExecConfig{Fusion: Enabled}).FusionEnabled() != true {
		t.Error("Enabled lost to the env var")
	}
	if (ExecConfig{}).FusionEnabled() != false {
		t.Error("DefaultToggle ignored the env var")
	}
	t.Setenv(EnvDisableFusion, "")
	if (ExecConfig{Fusion: Disabled}).FusionEnabled() != false {
		t.Error("Disabled needs no env var")
	}
	if (ExecConfig{}).FusionEnabled() != true {
		t.Error("built-in default is fusion on")
	}
}

func TestExecLanesPrecedence(t *testing.T) {
	t.Setenv(EnvDisableVec4, "1")
	if got := (ExecConfig{Vec4Lanes: 4}).Lanes(); got != 4 {
		t.Errorf("Lanes() = %d with explicit 4, want 4 (env var must lose)", got)
	}
	if got := (ExecConfig{}).Lanes(); got != 1 {
		t.Errorf("Lanes() = %d with env set, want 1", got)
	}
	t.Setenv(EnvDisableVec4, "")
	if got := (ExecConfig{Vec4Lanes: 1}).Lanes(); got != 1 {
		t.Errorf("Lanes() = %d with explicit 1, want 1", got)
	}
	if got := (ExecConfig{}).Lanes(); got != 4 {
		t.Errorf("Lanes() = %d, want the built-in default 4", got)
	}
}

func TestExecWorkersPrecedence(t *testing.T) {
	t.Setenv(EnvRasterWorkers, "3")
	if got := (ExecConfig{RasterWorkers: 7}).Workers(); got != 7 {
		t.Errorf("Workers() = %d with explicit 7, want 7 (env var must lose)", got)
	}
	if got := (ExecConfig{}).Workers(); got != 3 {
		t.Errorf("Workers() = %d with env=3, want 3", got)
	}
	if !(ExecConfig{}).WorkersPinned() {
		t.Error("WorkersPinned() = false with env set")
	}
	// A malformed or non-positive env value is ignored, not an error:
	// the variable is operational tuning, never a correctness input.
	t.Setenv(EnvRasterWorkers, "banana")
	if got := (ExecConfig{}).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers() = %d with garbage env, want GOMAXPROCS", got)
	}
	t.Setenv(EnvRasterWorkers, "0")
	if (ExecConfig{}).WorkersPinned() {
		t.Error("WorkersPinned() = true for env=0")
	}
	t.Setenv(EnvRasterWorkers, "")
	if got := (ExecConfig{}).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers() = %d with nothing set, want GOMAXPROCS", got)
	}
	if (ExecConfig{}).WorkersPinned() {
		t.Error("WorkersPinned() = true with nothing set")
	}
}

func TestExecMergeLegacy(t *testing.T) {
	// Legacy fields fill gaps.
	e := Config{Workers: 5, UseInterpreter: true}.mergeLegacy()
	if e.RasterWorkers != 5 || !e.UseInterpreter {
		t.Errorf("mergeLegacy = %+v, want legacy fields folded in", e)
	}
	// Explicit Exec wins over legacy Workers.
	c := Config{Workers: 5}
	c.Exec.RasterWorkers = 2
	if e := c.mergeLegacy(); e.RasterWorkers != 2 {
		t.Errorf("mergeLegacy RasterWorkers = %d, want explicit 2", e.RasterWorkers)
	}
	// Either interpreter flag forces the interpreter — a legacy caller
	// and an Exec caller must both be able to force it on.
	c = Config{}
	c.Exec.UseInterpreter = true
	if e := c.mergeLegacy(); !e.UseInterpreter {
		t.Error("Exec.UseInterpreter lost in merge")
	}
}

func TestExecMergePoolDefaults(t *testing.T) {
	def := ExecConfig{Fusion: Disabled, Vec4Lanes: 1, RasterWorkers: 3, UseInterpreter: true}
	// Zero dst inherits everything.
	if got := MergeExec(ExecConfig{}, def); got != def {
		t.Errorf("MergeExec(zero, def) = %+v, want %+v", got, def)
	}
	// Set dst fields always win.
	dst := ExecConfig{Fusion: Enabled, Vec4Lanes: 4, RasterWorkers: 8}
	got := MergeExec(dst, def)
	if got.Fusion != Enabled || got.Vec4Lanes != 4 || got.RasterWorkers != 8 {
		t.Errorf("MergeExec overrode explicit dst fields: %+v", got)
	}
	if !got.UseInterpreter {
		t.Error("pool-wide UseInterpreter must propagate")
	}
}

func TestExecValidateAtOpen(t *testing.T) {
	cases := []struct {
		name string
		exec ExecConfig
		want string
	}{
		{"bad-toggle", ExecConfig{Fusion: 3}, "Fusion"},
		{"bad-lanes", ExecConfig{Vec4Lanes: 2}, "Vec4Lanes"},
		{"negative-workers", ExecConfig{RasterWorkers: -1}, "RasterWorkers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Open(Config{Exec: tc.exec})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Open(%+v) error = %v, want mention of %s", tc.exec, err, tc.want)
			}
		})
	}
}

func TestDeviceExecResolved(t *testing.T) {
	cfg := Config{Workers: 2, UseInterpreter: true}
	cfg.Exec.Fusion = Disabled
	dev, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	e := dev.Exec()
	if e.RasterWorkers != 2 || !e.UseInterpreter || e.Fusion != Disabled {
		t.Errorf("Device.Exec() = %+v, want legacy knobs merged with explicit Exec", e)
	}
}
