package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"glescompute/internal/codec"
	"glescompute/internal/gles"
	"glescompute/internal/layout"
)

// Buffer is a typed device array backed by an RGBA8 texture (challenge #3:
// arrays live in 2D textures). Reading back binds the texture to an FBO
// and uses ReadPixels — the only readback path ES 2.0 offers
// (challenge #7).
type Buffer struct {
	dev  *Device
	fmt  codec.Format // texel layout: element type + lane width
	elem codec.ElemType
	n    int
	grid layout.Grid

	tex uint32
	fbo uint32 // lazily created for readback / render target use
}

// NewBuffer allocates a device buffer of n elements of type t in the
// scalar (one value per texel) format.
func (d *Device) NewBuffer(t codec.ElemType, n int) (*Buffer, error) {
	return d.NewBufferFmt(codec.FormatOf(t), n)
}

// NewBufferFmt allocates a device buffer of n logical elements in an
// explicit texel format; packed formats store Lanes values per texel, so
// the texture covers ceil(n/lanes) texels (the tail lanes of the last
// texel are padding).
func (d *Device) NewBufferFmt(f codec.Format, n int) (*Buffer, error) {
	if err := d.checkOpen("NewBuffer"); err != nil {
		return nil, err
	}
	if f == codec.FmtAuto {
		return nil, fmt.Errorf("core: NewBufferFmt: format must be explicit")
	}
	g, err := layout.ForLengthLanes(n, f.Lanes(), d.cfg.MaxGridWidth)
	if err != nil {
		return nil, err
	}
	return d.newBufferWithGrid(f, n, g)
}

// NewBufferWithGrid allocates a buffer of n logical elements over an
// explicit texture layout — the hook the scheduler's request batching
// uses to allocate one shared texture laid out by layout.PackRows. n may
// be smaller than the grid's texel count (trailing texels are padding).
func (d *Device) NewBufferWithGrid(t codec.ElemType, n int, g layout.Grid) (*Buffer, error) {
	if err := d.checkOpen("NewBufferWithGrid"); err != nil {
		return nil, err
	}
	if g.Width <= 0 || g.Height <= 0 || g.Width > d.cfg.MaxGridWidth ||
		g.Height > d.ctx.Caps().MaxTextureSize {
		return nil, fmt.Errorf("core: NewBufferWithGrid: grid %dx%d out of range", g.Width, g.Height)
	}
	if n <= 0 || n > g.Texels()*g.LaneCount() {
		return nil, fmt.Errorf("core: NewBufferWithGrid: %d elements do not fit %dx%d texels", n, g.Width, g.Height)
	}
	return d.newBufferWithGrid(codec.FormatOf(t), n, g)
}

// NewMatrixBuffer allocates a buffer holding an n×n row-major matrix with
// an exact n×n texel layout, so kernels can address (row, col) directly.
func (d *Device) NewMatrixBuffer(t codec.ElemType, n int) (*Buffer, error) {
	if err := d.checkOpen("NewMatrixBuffer"); err != nil {
		return nil, err
	}
	if n > d.cfg.MaxGridWidth {
		return nil, fmt.Errorf("core: matrix dimension %d exceeds max texture size %d", n, d.cfg.MaxGridWidth)
	}
	g, err := layout.Square(n)
	if err != nil {
		return nil, err
	}
	return d.newBufferWithGrid(codec.FormatOf(t), n*n, g)
}

func (d *Device) newBufferWithGrid(f codec.Format, n int, g layout.Grid) (*Buffer, error) {
	ctx := d.ctx
	prev := uint32(ctx.GetIntegerv(gles.TEXTURE_BINDING_2D)[0])
	tex := ctx.CreateTexture()
	ctx.BindTexture(gles.TEXTURE_2D, tex)
	// Allocate storage; NEAREST + CLAMP_TO_EDGE keeps NPOT textures
	// complete and addressing exact (challenge #4 and the ES 2.0 NPOT
	// completeness rules).
	ctx.TexImage2D(gles.TEXTURE_2D, 0, gles.RGBA, g.Width, g.Height, 0, gles.RGBA, gles.UNSIGNED_BYTE, nil)
	ctx.TexParameteri(gles.TEXTURE_2D, gles.TEXTURE_MIN_FILTER, gles.NEAREST)
	ctx.TexParameteri(gles.TEXTURE_2D, gles.TEXTURE_MAG_FILTER, gles.NEAREST)
	ctx.TexParameteri(gles.TEXTURE_2D, gles.TEXTURE_WRAP_S, gles.CLAMP_TO_EDGE)
	ctx.TexParameteri(gles.TEXTURE_2D, gles.TEXTURE_WRAP_T, gles.CLAMP_TO_EDGE)
	ctx.BindTexture(gles.TEXTURE_2D, prev)
	if err := d.checkGL("NewBuffer"); err != nil {
		return nil, err
	}
	return &Buffer{dev: d, fmt: f, elem: f.Elem(), n: n, grid: g, tex: tex}, nil
}

// Elem returns the logical element type.
func (b *Buffer) Elem() codec.ElemType { return b.elem }

// Format returns the texel format.
func (b *Buffer) Format() codec.Format { return b.fmt }

// Len returns the element count.
func (b *Buffer) Len() int { return b.n }

// Grid returns the 2D texture layout.
func (b *Buffer) Grid() layout.Grid { return b.grid }

// Free releases the buffer's GL objects. Freeing after the device has
// closed is a no-op (the context's objects are already unreachable).
func (b *Buffer) Free() {
	if b.dev.closed {
		b.fbo, b.tex = 0, 0
		return
	}
	if b.fbo != 0 {
		b.dev.ctx.DeleteFramebuffer(b.fbo)
		b.fbo = 0
	}
	if b.tex != 0 {
		b.dev.ctx.DeleteTexture(b.tex)
		b.tex = 0
	}
}

// ensureFBO lazily creates the framebuffer object with this buffer's
// texture as color attachment. The caller's framebuffer binding is left
// untouched; callers bind the returned FBO themselves when they need it.
func (b *Buffer) ensureFBO() (uint32, error) {
	if b.fbo != 0 {
		return b.fbo, nil
	}
	ctx := b.dev.ctx
	prev := uint32(ctx.GetIntegerv(gles.FRAMEBUFFER_BINDING)[0])
	fbo := ctx.CreateFramebuffer()
	ctx.BindFramebuffer(gles.FRAMEBUFFER, fbo)
	ctx.FramebufferTexture2D(gles.FRAMEBUFFER, gles.COLOR_ATTACHMENT0, gles.TEXTURE_2D, b.tex, 0)
	st := ctx.CheckFramebufferStatus(gles.FRAMEBUFFER)
	ctx.BindFramebuffer(gles.FRAMEBUFFER, prev)
	if st != gles.FRAMEBUFFER_COMPLETE {
		return 0, fmt.Errorf("core: buffer FBO incomplete: 0x%04x", st)
	}
	if err := b.dev.checkGL("ensureFBO"); err != nil {
		return 0, err
	}
	b.fbo = fbo
	return fbo, nil
}

// upload packs the prepared texel bytes (4 per texel) into the texture,
// restoring the application's 2D texture binding afterwards.
func (b *Buffer) upload(texels []byte) error {
	if err := b.dev.checkOpen("upload"); err != nil {
		return err
	}
	ctx := b.dev.ctx
	full := make([]byte, b.grid.Texels()*4)
	copy(full, texels)
	prev := uint32(ctx.GetIntegerv(gles.TEXTURE_BINDING_2D)[0])
	ctx.BindTexture(gles.TEXTURE_2D, b.tex)
	ctx.TexImage2D(gles.TEXTURE_2D, 0, gles.RGBA, b.grid.Width, b.grid.Height, 0, gles.RGBA, gles.UNSIGNED_BYTE, full)
	ctx.BindTexture(gles.TEXTURE_2D, prev)
	return b.dev.checkGL("upload")
}

// readTexels reads the whole texture back through an FBO + ReadPixels,
// restoring the application's framebuffer binding afterwards.
func (b *Buffer) readTexels() ([]byte, error) {
	if err := b.dev.checkOpen("read"); err != nil {
		return nil, err
	}
	fbo, err := b.ensureFBO()
	if err != nil {
		return nil, err
	}
	ctx := b.dev.ctx
	prev := uint32(ctx.GetIntegerv(gles.FRAMEBUFFER_BINDING)[0])
	ctx.BindFramebuffer(gles.FRAMEBUFFER, fbo)
	out := make([]byte, b.grid.Texels()*4)
	ctx.ReadPixels(0, 0, b.grid.Width, b.grid.Height, gles.RGBA, gles.UNSIGNED_BYTE, out)
	ctx.BindFramebuffer(gles.FRAMEBUFFER, prev)
	if err := b.dev.checkGL("readTexels"); err != nil {
		return nil, err
	}
	return out, nil
}

func (b *Buffer) checkLen(op string, n int) error {
	if n != b.n {
		return fmt.Errorf("core: %s: length %d does not match buffer length %d", op, n, b.n)
	}
	return nil
}

func (b *Buffer) checkElem(op string, t codec.ElemType) error {
	if b.elem != t {
		return fmt.Errorf("core: %s: buffer holds %s, not %s", op, b.elem, t)
	}
	return nil
}

// WriteFloat32 uploads float data. Scalar buffers pack per the paper's
// Fig. 2 byte re-arrangement; Float16x2 buffers quantize two fp16 lanes
// into each texel (half the upload bytes).
func (b *Buffer) WriteFloat32(src []float32) error {
	if err := b.checkElem("WriteFloat32", codec.Float32); err != nil {
		return err
	}
	if err := b.checkLen("WriteFloat32", len(src)); err != nil {
		return err
	}
	buf := make([]byte, b.fmt.TexelsFor(len(src))*4)
	if b.fmt == codec.FmtFloat16x2 {
		if err := codec.PackFloat16x2(buf, src); err != nil {
			return err
		}
	} else if err := codec.PackFloat32(buf, src); err != nil {
		return err
	}
	return b.upload(buf)
}

// ReadFloat32 reads the buffer back into float data.
func (b *Buffer) ReadFloat32() ([]float32, error) {
	if err := b.checkElem("ReadFloat32", codec.Float32); err != nil {
		return nil, err
	}
	texels, err := b.readTexels()
	if err != nil {
		return nil, err
	}
	out := make([]float32, b.n)
	if b.fmt == codec.FmtFloat16x2 {
		if err := codec.UnpackFloat16x2(out, texels); err != nil {
			return nil, err
		}
		return out, nil
	}
	if err := codec.UnpackFloat32(out, texels[:b.n*4]); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteInt32 uploads two's-complement int32 data (paper §IV-D).
func (b *Buffer) WriteInt32(src []int32) error {
	if err := b.checkElem("WriteInt32", codec.Int32); err != nil {
		return err
	}
	if err := b.checkLen("WriteInt32", len(src)); err != nil {
		return err
	}
	buf := make([]byte, len(src)*4)
	if err := codec.PackInt32(buf, src); err != nil {
		return err
	}
	return b.upload(buf)
}

// ReadInt32 reads the buffer back into int32 data.
func (b *Buffer) ReadInt32() ([]int32, error) {
	if err := b.checkElem("ReadInt32", codec.Int32); err != nil {
		return nil, err
	}
	texels, err := b.readTexels()
	if err != nil {
		return nil, err
	}
	out := make([]int32, b.n)
	if err := codec.UnpackInt32(out, texels[:b.n*4]); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteUint32 uploads uint32 data (paper §IV-C).
func (b *Buffer) WriteUint32(src []uint32) error {
	if err := b.checkElem("WriteUint32", codec.Uint32); err != nil {
		return err
	}
	if err := b.checkLen("WriteUint32", len(src)); err != nil {
		return err
	}
	buf := make([]byte, len(src)*4)
	if err := codec.PackUint32(buf, src); err != nil {
		return err
	}
	return b.upload(buf)
}

// ReadUint32 reads the buffer back into uint32 data.
func (b *Buffer) ReadUint32() ([]uint32, error) {
	if err := b.checkElem("ReadUint32", codec.Uint32); err != nil {
		return nil, err
	}
	texels, err := b.readTexels()
	if err != nil {
		return nil, err
	}
	out := make([]uint32, b.n)
	if err := codec.UnpackUint32(out, texels[:b.n*4]); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteUint8 uploads byte data (paper §IV-A).
func (b *Buffer) WriteUint8(src []uint8) error {
	if err := b.checkElem("WriteUint8", codec.Uint8); err != nil {
		return err
	}
	if err := b.checkLen("WriteUint8", len(src)); err != nil {
		return err
	}
	buf := make([]byte, len(src)*4)
	if err := codec.PackUint8(buf, src); err != nil {
		return err
	}
	return b.upload(buf)
}

// ReadUint8 reads the buffer back into byte data.
func (b *Buffer) ReadUint8() ([]uint8, error) {
	if err := b.checkElem("ReadUint8", codec.Uint8); err != nil {
		return nil, err
	}
	texels, err := b.readTexels()
	if err != nil {
		return nil, err
	}
	out := make([]uint8, b.n)
	if err := codec.UnpackUint8(out, texels[:b.n*4]); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteInt8 uploads signed byte data: §IV-B two's complement one value
// per texel for scalar buffers, excess-128 four lanes per texel for
// Int8x4 buffers (a quarter of the texels and upload bytes).
func (b *Buffer) WriteInt8(src []int8) error {
	if err := b.checkElem("WriteInt8", codec.Int8); err != nil {
		return err
	}
	if err := b.checkLen("WriteInt8", len(src)); err != nil {
		return err
	}
	buf := make([]byte, b.fmt.TexelsFor(len(src))*4)
	if b.fmt == codec.FmtInt8x4 {
		if err := codec.PackInt8x4(buf, src); err != nil {
			return err
		}
	} else if err := codec.PackInt8(buf, src); err != nil {
		return err
	}
	return b.upload(buf)
}

// ReadInt8 reads the buffer back into signed byte data.
func (b *Buffer) ReadInt8() ([]int8, error) {
	if err := b.checkElem("ReadInt8", codec.Int8); err != nil {
		return nil, err
	}
	texels, err := b.readTexels()
	if err != nil {
		return nil, err
	}
	out := make([]int8, b.n)
	if b.fmt == codec.FmtInt8x4 {
		if err := codec.UnpackInt8x4(out, texels); err != nil {
			return nil, err
		}
		return out, nil
	}
	if err := codec.UnpackInt8(out, texels[:b.n*4]); err != nil {
		return nil, err
	}
	return out, nil
}

// f32bytes encodes float32 values little-endian.
func f32bytes(vals []float32) []byte {
	out := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
	}
	return out
}
