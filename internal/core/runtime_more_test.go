package core

import (
	"testing"

	"glescompute/internal/codec"
)

func TestKernelUsesUVVarying(t *testing.T) {
	// v_uv is interpolated by the pass-through vertex shader (challenge #1)
	// across the output grid; at texel centres it equals the normalized
	// output coordinate.
	d := openTest(t)
	defer d.Close()
	const n = 64 // 64-wide, 1-high grid
	out, _ := d.NewBuffer(codec.Float32, n)
	k, err := d.BuildKernel(KernelSpec{
		Name:    "uv",
		Outputs: []OutputSpec{{Name: "out", Type: codec.Float32}},
		Source:  "float gc_kernel(float idx) { return v_uv.x; }",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run1(out, nil, nil); err != nil {
		t.Fatal(err)
	}
	got, err := out.ReadFloat32()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := (float32(i) + 0.5) / n
		if codec.MantissaBitsAgreement(want, got[i]) < 13 {
			t.Fatalf("v_uv.x at %d: got %g, want %g", i, got[i], want)
		}
	}
}

func TestUint8KernelArithmetic(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 256
	in := make([]uint8, n)
	for i := range in {
		in[i] = uint8(i)
	}
	bi, _ := d.NewBuffer(codec.Uint8, n)
	bo, _ := d.NewBuffer(codec.Uint8, n)
	if err := bi.WriteUint8(in); err != nil {
		t.Fatal(err)
	}
	k, err := d.BuildKernel(KernelSpec{
		Name:    "invert",
		Inputs:  []Param{{Name: "x", Type: codec.Uint8}},
		Outputs: []OutputSpec{{Name: "out", Type: codec.Uint8}},
		Source:  "float gc_kernel(float idx) { return 255.0 - gc_x(idx); }",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run1(bo, []*Buffer{bi}, nil); err != nil {
		t.Fatal(err)
	}
	got, _ := bo.ReadUint8()
	for i := range got {
		if got[i] != 255-in[i] {
			t.Fatalf("invert[%d] = %d, want %d", i, got[i], 255-in[i])
		}
	}
}

func TestInt8KernelRoundTrip(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	vals := []int8{-128, -1, 0, 1, 127}
	bi, _ := d.NewBuffer(codec.Int8, len(vals))
	bo, _ := d.NewBuffer(codec.Int8, len(vals))
	if err := bi.WriteInt8(vals); err != nil {
		t.Fatal(err)
	}
	k, err := d.BuildKernel(KernelSpec{
		Name:    "clamp-negate",
		Inputs:  []Param{{Name: "x", Type: codec.Int8}},
		Outputs: []OutputSpec{{Name: "out", Type: codec.Int8}},
		Source:  "float gc_kernel(float idx) { return -gc_x(idx); }",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run1(bo, []*Buffer{bi}, nil); err != nil {
		t.Fatal(err)
	}
	got, _ := bo.ReadInt8()
	want := []int8{127, 1, 0, -1, -127} // -(-128) clamps to 127
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("negate[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMatrixBufferTooLarge(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	if _, err := d.NewMatrixBuffer(codec.Float32, 1<<16); err == nil {
		t.Fatal("oversized matrix must be rejected")
	}
}

func TestBufferFreeAndReuse(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	b, err := d.NewBuffer(codec.Float32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFloat32(make([]float32, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadFloat32(); err != nil {
		t.Fatal(err)
	}
	b.Free()
	// New allocations keep working after a Free.
	b2, err := d.NewBuffer(codec.Float32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.WriteFloat32(make([]float32, 16)); err != nil {
		t.Fatal(err)
	}
}

func TestOutputCountMismatch(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	k, err := d.BuildKernel(KernelSpec{
		Name: "two",
		Outputs: []OutputSpec{
			{Name: "a", Type: codec.Float32},
			{Name: "b", Type: codec.Float32},
		},
		Source: `
float gc_kernel_a(float idx) { return 1.0; }
float gc_kernel_b(float idx) { return 2.0; }
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := d.NewBuffer(codec.Float32, 4)
	if _, err := k.Run([]*Buffer{out}, nil, nil); err == nil {
		t.Fatal("output count mismatch must error")
	}
}

func TestOutputTypeMismatch(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	k, err := d.BuildKernel(KernelSpec{
		Name:    "f",
		Outputs: []OutputSpec{{Name: "out", Type: codec.Float32}},
		Source:  "float gc_kernel(float idx) { return 0.0; }",
	})
	if err != nil {
		t.Fatal(err)
	}
	wrong, _ := d.NewBuffer(codec.Int32, 4)
	if _, err := k.Run1(wrong, nil, nil); err == nil {
		t.Fatal("output type mismatch must error")
	}
}

func TestFloorConversionDevice(t *testing.T) {
	// Ablation A3 at the device level: a device configured with the
	// paper's eq. (2) floor conversion still round-trips all codecs.
	d, err := Open(Config{FloorConversion: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	vals := []int32{0, -77, 12345, 1<<24 - 1}
	bi, _ := d.NewBuffer(codec.Int32, len(vals))
	bo, _ := d.NewBuffer(codec.Int32, len(vals))
	if err := bi.WriteInt32(vals); err != nil {
		t.Fatal(err)
	}
	k, err := d.BuildKernel(KernelSpec{
		Name:    "id",
		Inputs:  []Param{{Name: "x", Type: codec.Int32}},
		Outputs: []OutputSpec{{Name: "out", Type: codec.Int32}},
		Source:  "float gc_kernel(float idx) { return gc_x(idx); }",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run1(bo, []*Buffer{bi}, nil); err != nil {
		t.Fatal(err)
	}
	got, _ := bo.ReadInt32()
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("floor-mode round trip failed at %d: %d != %d", i, got[i], vals[i])
		}
	}
}

func TestKernelNameDefaults(t *testing.T) {
	spec := KernelSpec{Source: "float gc_kernel(float idx) { return 0.0; }"}
	norm := spec.normalized()
	if norm.Name != "kernel" {
		t.Errorf("default name = %q", norm.Name)
	}
	if len(norm.Outputs) != 1 || norm.Outputs[0].Name != "out" || norm.Outputs[0].Type != codec.Float32 {
		t.Errorf("default outputs = %+v", norm.Outputs)
	}
}
