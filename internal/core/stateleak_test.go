package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"glescompute/internal/codec"
	"glescompute/internal/gles"
)

// rawGLScene owns a hand-rolled GL rendering setup on the device's
// context, the way a graphics application sharing the context with the
// compute runtime would: its own program, attribute arrays, texture
// binding and viewport, configured once and redrawn without re-setup.
type rawGLScene struct {
	ctx    *gles.Context
	prog   uint32
	posLoc int
	w, h   int
}

const rawVS = `
attribute vec2 a_position;
void main() { gl_Position = vec4(a_position, 0.0, 1.0); }
`

const rawFS = `
precision mediump float;
uniform vec4 u_color;
void main() { gl_FragColor = u_color; }
`

func newRawGLScene(t *testing.T, d *Device) *rawGLScene {
	t.Helper()
	ctx := d.GL()
	vs := ctx.CreateShader(gles.VERTEX_SHADER)
	ctx.ShaderSource(vs, rawVS)
	ctx.CompileShader(vs)
	fs := ctx.CreateShader(gles.FRAGMENT_SHADER)
	ctx.ShaderSource(fs, rawFS)
	ctx.CompileShader(fs)
	prog := ctx.CreateProgram()
	ctx.AttachShader(prog, vs)
	ctx.AttachShader(prog, fs)
	ctx.LinkProgram(prog)
	if ctx.GetProgramiv(prog, gles.LINK_STATUS) != 1 {
		t.Fatalf("raw scene link failed: %s", ctx.GetProgramInfoLog(prog))
	}
	s := &rawGLScene{ctx: ctx, prog: prog, w: 4, h: 4}
	s.posLoc = ctx.GetAttribLocation(prog, "a_position")

	// One-time setup, exactly once — the point of the test is that kernel
	// runs must not force the app to redo any of this.
	verts := []float32{-1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, 1}
	raw := make([]byte, len(verts)*4)
	for i, v := range verts {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(v))
	}
	ctx.BindFramebuffer(gles.FRAMEBUFFER, 0)
	ctx.Viewport(0, 0, s.w, s.h)
	ctx.UseProgram(prog)
	ctx.Uniform4f(ctx.GetUniformLocation(prog, "u_color"), 1, 0.5, 0.25, 1)
	ctx.EnableVertexAttribArray(s.posLoc)
	ctx.VertexAttribPointerClient(s.posLoc, 2, gles.FLOAT, false, 8, raw)
	return s
}

// draw redraws with NO state re-setup and returns the default
// framebuffer contents.
func (s *rawGLScene) draw(t *testing.T) []byte {
	t.Helper()
	s.ctx.DrawArrays(gles.TRIANGLES, 0, 6)
	if e := s.ctx.GetError(); e != gles.NO_ERROR {
		t.Fatalf("raw draw errored: 0x%04x: %s", e, s.ctx.LastErrorDetail())
	}
	out := make([]byte, s.w*s.h*4)
	s.ctx.ReadPixels(0, 0, s.w, s.h, gles.RGBA, gles.UNSIGNED_BYTE, out)
	if e := s.ctx.GetError(); e != gles.NO_ERROR {
		t.Fatalf("raw readback errored: 0x%04x: %s", e, s.ctx.LastErrorDetail())
	}
	return out
}

// TestKernelRunDoesNotLeakGLState interleaves raw dev.GL() rendering with
// kernel runs, copies, buffer creation, uploads and readbacks; the raw
// scene must render identically before and after, without re-setup. This
// is the regression test for Run/Copy clobbering program/FBO/active-
// texture bindings and leaving vertex attrib arrays enabled.
func TestKernelRunDoesNotLeakGLState(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	scene := newRawGLScene(t, d)
	want := scene.draw(t)

	// A full round of compute activity on the shared context.
	const n = 300
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = float32(i) * 0.5
	}
	ba, err := d.NewBuffer(codec.Float32, n)
	if err != nil {
		t.Fatal(err)
	}
	bb, _ := d.NewBuffer(codec.Float32, n)
	bo, _ := d.NewBuffer(codec.Float32, n)
	if err := ba.WriteFloat32(xs); err != nil {
		t.Fatal(err)
	}
	if err := bb.WriteFloat32(xs); err != nil {
		t.Fatal(err)
	}
	k := buildSum(t, d, codec.Float32)
	if _, err := k.Run1(bo, []*Buffer{ba, bb}, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Copy(bb, bo); err != nil {
		t.Fatal(err)
	}
	if _, err := bo.ReadFloat32(); err != nil {
		t.Fatal(err)
	}

	got := scene.draw(t)
	if !bytes.Equal(want, got) {
		t.Errorf("raw GL scene changed after kernel runs:\n before %v\n after  %v", want, got)
	}

	// The bindings themselves must be back where the app left them.
	ctx := d.GL()
	if fb := ctx.GetIntegerv(gles.FRAMEBUFFER_BINDING)[0]; fb != 0 {
		t.Errorf("FRAMEBUFFER_BINDING leaked: %d, want 0", fb)
	}
	if prog := ctx.GetIntegerv(gles.CURRENT_PROGRAM)[0]; prog != int(scene.prog) {
		t.Errorf("CURRENT_PROGRAM leaked: %d, want %d", prog, scene.prog)
	}
	if at := ctx.GetIntegerv(gles.ACTIVE_TEXTURE)[0]; at != gles.TEXTURE0 {
		t.Errorf("ACTIVE_TEXTURE leaked: 0x%04x, want TEXTURE0", at)
	}
	if vp := ctx.GetIntegerv(gles.VIEWPORT); vp[2] != 4 || vp[3] != 4 {
		t.Errorf("viewport leaked: %v, want 4x4", vp)
	}
	// Attribute arrays the kernel used must not stay enabled beyond what
	// the app enabled (the app uses exactly one array).
	enabled := 0
	for i := 0; i < d.Caps().MaxVertexAttribs; i++ {
		if s, ok := ctx.GetVertexAttrib(i); ok && s.Enabled {
			enabled++
		}
	}
	if enabled != 1 {
		t.Errorf("%d vertex attrib arrays enabled after kernel runs, want 1", enabled)
	}
}

// TestRunRejectsOutputAliasingInput pins the single-kernel hazard: an
// output buffer that is also bound as an input must be rejected instead
// of producing garbage.
func TestRunRejectsOutputAliasingInput(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 64
	ba, err := d.NewBuffer(codec.Float32, n)
	if err != nil {
		t.Fatal(err)
	}
	bb, _ := d.NewBuffer(codec.Float32, n)
	k := buildSum(t, d, codec.Float32)

	_, err = k.Run1(ba, []*Buffer{ba, bb}, nil)
	if err == nil {
		t.Fatal("Run with output aliasing input 'a' succeeded, want error")
	}
	if !strings.Contains(err.Error(), "INVALID_OPERATION") {
		t.Errorf("alias error %q does not mention INVALID_OPERATION", err)
	}
	if _, err := k.Run1(bb, []*Buffer{ba, bb}, nil); err == nil {
		t.Fatal("Run with output aliasing input 'b' succeeded, want error")
	}

	// Copy has the same hazard.
	if err := d.Copy(ba, ba); err == nil {
		t.Fatal("Copy(dst == src) succeeded, want error")
	}

	// Distinct buffers still work.
	bo, _ := d.NewBuffer(codec.Float32, n)
	if _, err := k.Run1(bo, []*Buffer{ba, bb}, nil); err != nil {
		t.Fatalf("non-aliased Run failed: %v", err)
	}
}
