package core

import (
	"fmt"
	"strings"
	"testing"

	"glescompute/internal/codec"
)

// vec4_test.go exercises the packed int8x4 path end to end: 4-wide
// kernels with scalar tails, packed buffer IO, explicit repack passes,
// and the fusion planner's lane-width rules. The scalar path is the
// oracle throughout — vec4 must be bit-identical to it.

const double4Source = `
vec4 gc_kernel(float tidx) {
	return clamp(gc_x4(tidx) * 2.0, vec4(-128.0), vec4(127.0));
}
`

const relu4Source = `
vec4 gc_kernel(float tidx) {
	return max(gc_x4(tidx), vec4(0.0));
}
`

const doubleScalarSource = `
float gc_kernel(float idx) {
	return clamp(gc_x(idx) * 2.0, -128.0, 127.0);
}
`

const reluScalarSource = `
float gc_kernel(float idx) {
	return max(gc_x(idx), 0.0);
}
`

func buildInt8Kernel(t *testing.T, d *Device, name, src string, packed bool) *Kernel {
	t.Helper()
	f := codec.FmtInt8
	if packed {
		f = codec.FmtInt8x4
	}
	k, err := d.BuildKernel(KernelSpec{
		Name:        name,
		Inputs:      []Param{{Name: "x", Fmt: f}},
		Outputs:     []OutputSpec{{Name: "out", Fmt: f}},
		Source:      src,
		ElementWise: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func int8Ramp(n int) []int8 {
	xs := make([]int8, n)
	for i := range xs {
		xs[i] = int8(i*7%199 - 99)
	}
	return xs
}

func cpuDouble(v int8) int8 {
	x := int(v) * 2
	if x > 127 {
		x = 127
	}
	if x < -128 {
		x = -128
	}
	return int8(x)
}

// TestVec4KernelMatchesScalarWithTails runs the same element-wise int8
// kernel through the 4-wide and scalar paths for every tail residue
// (n%4 ∈ {0,1,2,3}) and demands bit-identical results — the acceptance
// bar the nn differentials build on.
func TestVec4KernelMatchesScalarWithTails(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	k4 := buildInt8Kernel(t, d, "double4", double4Source, true)
	k1 := buildInt8Kernel(t, d, "double1", doubleScalarSource, false)
	if k4.spec.Lanes != 4 || k1.spec.Lanes != 1 {
		t.Fatalf("derived lanes: packed %d scalar %d, want 4/1", k4.spec.Lanes, k1.spec.Lanes)
	}
	for _, n := range []int{16, 17, 18, 19, 1, 4} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			xs := int8Ramp(n)
			run := func(k *Kernel, f codec.Format) []int8 {
				in, err := d.NewBufferFmt(f, n)
				if err != nil {
					t.Fatal(err)
				}
				out, err := d.NewBufferFmt(f, n)
				if err != nil {
					t.Fatal(err)
				}
				if err := in.WriteInt8(xs); err != nil {
					t.Fatal(err)
				}
				if _, err := k.Run1(out, []*Buffer{in}, nil); err != nil {
					t.Fatal(err)
				}
				got, err := out.ReadInt8()
				if err != nil {
					t.Fatal(err)
				}
				return got
			}
			got4 := run(k4, codec.FmtInt8x4)
			got1 := run(k1, codec.FmtInt8)
			for i := range xs {
				want := cpuDouble(xs[i])
				if got1[i] != want {
					t.Fatalf("scalar path element %d: got %d, want %d", i, got1[i], want)
				}
				if got4[i] != got1[i] {
					t.Fatalf("vec4 path element %d: got %d, scalar path %d", i, got4[i], got1[i])
				}
			}
		})
	}
}

// TestPackedBufferRoundTrips checks the packed upload/readback paths in
// isolation (no kernel): int8 through FmtInt8x4 and float32 through
// FmtFloat16x2 storage.
func TestPackedBufferRoundTrips(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	for _, n := range []int{1, 3, 8, 257} {
		b, err := d.NewBufferFmt(codec.FmtInt8x4, n)
		if err != nil {
			t.Fatal(err)
		}
		xs := int8Ramp(n)
		if err := b.WriteInt8(xs); err != nil {
			t.Fatal(err)
		}
		got, err := b.ReadInt8()
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if got[i] != xs[i] {
				t.Fatalf("int8x4 n=%d element %d: got %d, want %d", n, i, got[i], xs[i])
			}
		}
	}
	for _, n := range []int{1, 2, 7, 130} {
		b, err := d.NewBufferFmt(codec.FmtFloat16x2, n)
		if err != nil {
			t.Fatal(err)
		}
		// Exactly representable in fp16: small integers and halves.
		xs := make([]float32, n)
		for i := range xs {
			xs[i] = float32(i%100-50) + 0.5
		}
		if err := b.WriteFloat32(xs); err != nil {
			t.Fatal(err)
		}
		got, err := b.ReadFloat32()
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, fmt.Sprintf("float16x2 n=%d", n), xs, got)
	}
}

// TestFloat16x2KernelInput feeds a half-float packed buffer into a
// scalar float32 kernel, exercising the GLSL fp16 decoder and the lane
// select on an odd length.
func TestFloat16x2KernelInput(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	k, err := d.BuildKernel(KernelSpec{
		Name:    "f16add1",
		Inputs:  []Param{{Name: "x", Fmt: codec.FmtFloat16x2}},
		Outputs: []OutputSpec{{Name: "out", Type: codec.Float32}},
		Source:  "float gc_kernel(float idx) { return gc_x(idx) + 1.0; }",
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 51
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = float32(i%200 - 100) // integers: exact in fp16 and the float codec
	}
	in, err := d.NewBufferFmt(codec.FmtFloat16x2, n)
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.NewBuffer(codec.Float32, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.WriteFloat32(xs); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run1(out, []*Buffer{in}, nil); err != nil {
		t.Fatal(err)
	}
	got, err := out.ReadFloat32()
	if err != nil {
		t.Fatal(err)
	}
	// The fp16 decode is exact for these values; the float32 OUTPUT codec
	// is the lossy step (~15 accurate mantissa bits, paper §V), so hold
	// the same bar as TestSumFloat32EndToEnd.
	for i := range xs {
		if bits := codec.MantissaBitsAgreement(xs[i]+1, got[i]); bits < 13 {
			t.Fatalf("element %d: got %g, want %g (%d mantissa bits agree)", i, got[i], xs[i]+1, bits)
		}
	}
}

// TestRepackKernel converts a scalar int8 buffer to int8x4 and back,
// checking both directions are lossless and that invalid conversions
// are rejected.
func TestRepackKernel(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 19 // tail texel in the packed form
	xs := int8Ramp(n)

	pack, err := d.BuildRepackKernel(codec.FmtInt8, codec.FmtInt8x4)
	if err != nil {
		t.Fatal(err)
	}
	unpack, err := d.BuildRepackKernel(codec.FmtInt8x4, codec.FmtInt8)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := d.NewBuffer(codec.Int8, n)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := d.NewBufferFmt(codec.FmtInt8x4, n)
	if err != nil {
		t.Fatal(err)
	}
	back, err := d.NewBuffer(codec.Int8, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := scalar.WriteInt8(xs); err != nil {
		t.Fatal(err)
	}
	if _, err := pack.Run1(packed, []*Buffer{scalar}, nil); err != nil {
		t.Fatal(err)
	}
	got, err := packed.ReadInt8()
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("pack element %d: got %d, want %d", i, got[i], xs[i])
		}
	}
	if _, err := unpack.Run1(back, []*Buffer{packed}, nil); err != nil {
		t.Fatal(err)
	}
	got, err = back.ReadInt8()
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("unpack element %d: got %d, want %d", i, got[i], xs[i])
		}
	}

	if _, err := d.BuildRepackKernel(codec.FmtInt8, codec.FmtInt8); err == nil {
		t.Error("same-width repack built, want error")
	}
	if _, err := d.BuildRepackKernel(codec.FmtFloat32, codec.FmtInt8x4); err == nil {
		t.Error("cross-type repack built, want error")
	}
	if _, err := d.BuildRepackKernel(codec.FmtFloat32, codec.FmtFloat16x2); err == nil {
		t.Error("repack into half-float storage built, want error (no f16 encoder)")
	}
}

// TestFusionVec4Chain verifies that two 4-wide element-wise stages fuse
// into one pass and that the fused result stays bit-identical to the
// unfused plan.
func TestFusionVec4Chain(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	k1 := buildInt8Kernel(t, d, "double4", double4Source, true)
	k2 := buildInt8Kernel(t, d, "relu4", relu4Source, true)
	const n = 258 // tail texel
	xs := int8Ramp(n)

	run := func(fuse bool) ([]int8, []string) {
		p := d.NewPipeline()
		defer p.Close()
		p.SetFusion(fuse)
		x := p.InputFmt(codec.FmtInt8x4, n)
		s1 := p.Stage(k1, nil, x)
		s2 := p.Stage(k2, nil, s1)
		p.Output(s2)
		if err := p.Err(); err != nil {
			t.Fatal(err)
		}
		passes, err := p.PlannedPasses()
		if err != nil {
			t.Fatal(err)
		}
		in, err := d.NewBufferFmt(codec.FmtInt8x4, n)
		if err != nil {
			t.Fatal(err)
		}
		out, err := d.NewBufferFmt(codec.FmtInt8x4, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := in.WriteInt8(xs); err != nil {
			t.Fatal(err)
		}
		stats, err := p.Run([]*Buffer{out}, []*Buffer{in}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if stats.FusionFallbacks != 0 {
			t.Fatalf("FusionFallbacks = %d, want 0", stats.FusionFallbacks)
		}
		got, err := out.ReadInt8()
		if err != nil {
			t.Fatal(err)
		}
		return got, passes
	}

	fused, fusedPasses := run(true)
	plain, plainPasses := run(false)
	if len(fusedPasses) != 1 || !strings.Contains(fusedPasses[0], "+") {
		t.Fatalf("fused plan = %v, want one merged pass", fusedPasses)
	}
	if len(plainPasses) != 2 {
		t.Fatalf("unfused plan = %v, want two passes", plainPasses)
	}
	for i := range xs {
		want := cpuDouble(xs[i])
		if want < 0 {
			want = 0
		}
		if plain[i] != want {
			t.Fatalf("unfused element %d: got %d, want %d", i, plain[i], want)
		}
		if fused[i] != plain[i] {
			t.Fatalf("fused element %d: got %d, unfused %d", i, fused[i], plain[i])
		}
	}
}

// TestFusionRefusesLaneBoundary builds a mixed-width pipeline
// (scalar double → pack repack → 4-wide relu) and checks the planner
// keeps all three passes: the repack stage is the explicit seam and
// must never be folded into either neighbour.
func TestFusionRefusesLaneBoundary(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	k1 := buildInt8Kernel(t, d, "double1", doubleScalarSource, false)
	pack, err := d.BuildRepackKernel(codec.FmtInt8, codec.FmtInt8x4)
	if err != nil {
		t.Fatal(err)
	}
	k2 := buildInt8Kernel(t, d, "relu4", relu4Source, true)
	const n = 37
	xs := int8Ramp(n)

	p := d.NewPipeline()
	defer p.Close()
	x := p.Input(codec.Int8, n)
	s1 := p.Stage(k1, nil, x)
	s2 := p.Stage(pack, nil, s1)
	s3 := p.Stage(k2, nil, s2)
	p.Output(s3)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	passes, err := p.PlannedPasses()
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) != 3 {
		t.Fatalf("planned passes = %v, want 3 (no fusion across the lane seam)", passes)
	}
	in, err := d.NewBuffer(codec.Int8, n)
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.NewBufferFmt(codec.FmtInt8x4, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.WriteInt8(xs); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run([]*Buffer{out}, []*Buffer{in}, nil); err != nil {
		t.Fatal(err)
	}
	got, err := out.ReadInt8()
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		want := cpuDouble(xs[i])
		if want < 0 {
			want = 0
		}
		if got[i] != want {
			t.Fatalf("element %d: got %d, want %d", i, got[i], want)
		}
	}
}
