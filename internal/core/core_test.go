package core

import (
	"math"
	"math/rand"
	"testing"

	"glescompute/internal/codec"
	"glescompute/internal/refcpu"
)

func openTest(t *testing.T) *Device {
	t.Helper()
	d, err := Open(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

const sumSource = `
float gc_kernel(float idx) {
	return gc_a(idx) + gc_b(idx);
}
`

func buildSum(t *testing.T, d *Device, et codec.ElemType) *Kernel {
	t.Helper()
	k, err := d.BuildKernel(KernelSpec{
		Name: "sum",
		Inputs: []Param{
			{Name: "a", Type: et},
			{Name: "b", Type: et},
		},
		Outputs: []OutputSpec{{Name: "out", Type: et}},
		Source:  sumSource,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestSumInt32EndToEnd(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 1000
	rng := rand.New(rand.NewSource(1))
	a := make([]int32, n)
	b := make([]int32, n)
	for i := range a {
		a[i] = int32(rng.Intn(1<<22) - 1<<21)
		b[i] = int32(rng.Intn(1<<22) - 1<<21)
	}
	ba, err := d.NewBuffer(codec.Int32, n)
	if err != nil {
		t.Fatal(err)
	}
	bb, _ := d.NewBuffer(codec.Int32, n)
	bo, _ := d.NewBuffer(codec.Int32, n)
	if err := ba.WriteInt32(a); err != nil {
		t.Fatal(err)
	}
	if err := bb.WriteInt32(b); err != nil {
		t.Fatal(err)
	}
	k := buildSum(t, d, codec.Int32)
	if _, err := k.Run1(bo, []*Buffer{ba, bb}, nil); err != nil {
		t.Fatal(err)
	}
	got, err := bo.ReadInt32()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := refcpu.SumInt32(a, b)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: got %d, want %d (a=%d b=%d)", i, got[i], want[i], a[i], b[i])
		}
	}
}

func TestSumFloat32EndToEnd(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 500
	rng := rand.New(rand.NewSource(2))
	// Positive uniforms, like the paper's random benchmark inputs; with
	// sign-mixed inputs, cancellation in a+b amplifies the codec's relative
	// error arbitrarily (standard fp behaviour, demonstrated separately in
	// TestFloatSumCancellationAmplifiesError).
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i] = rng.Float32() * 100
		b[i] = rng.Float32() * 100
	}
	ba, _ := d.NewBuffer(codec.Float32, n)
	bb, _ := d.NewBuffer(codec.Float32, n)
	bo, _ := d.NewBuffer(codec.Float32, n)
	if err := ba.WriteFloat32(a); err != nil {
		t.Fatal(err)
	}
	if err := bb.WriteFloat32(b); err != nil {
		t.Fatal(err)
	}
	k := buildSum(t, d, codec.Float32)
	if _, err := k.Run1(bo, []*Buffer{ba, bb}, nil); err != nil {
		t.Fatal(err)
	}
	got, err := bo.ReadFloat32()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := refcpu.SumFloat32(a, b)
	minBits := 23
	for i := range want {
		bits := codec.MantissaBitsAgreement(want[i], got[i])
		if bits < minBits {
			minBits = bits
		}
	}
	// Paper §V: float results accurate within ~15 most significant
	// mantissa bits on the GPU.
	if minBits < 13 {
		t.Fatalf("float sum accuracy %d bits, want ≥13 (paper reports 15)", minBits)
	}
	t.Logf("float sum worst-case mantissa agreement: %d bits", minBits)
}

func TestFloatSumCancellationAmplifiesError(t *testing.T) {
	// Near-cancelling additions push the *relative* error of the result far
	// beyond the codec's per-value accuracy — inherent to fp arithmetic on
	// approximately-decoded inputs, not a codec bug. Pin the behaviour.
	d := openTest(t)
	defer d.Close()
	a := []float32{100.0625}
	b := []float32{-100.0}
	ba, _ := d.NewBuffer(codec.Float32, 1)
	bb, _ := d.NewBuffer(codec.Float32, 1)
	bo, _ := d.NewBuffer(codec.Float32, 1)
	if err := ba.WriteFloat32(a); err != nil {
		t.Fatal(err)
	}
	if err := bb.WriteFloat32(b); err != nil {
		t.Fatal(err)
	}
	k := buildSum(t, d, codec.Float32)
	if _, err := k.Run1(bo, []*Buffer{ba, bb}, nil); err != nil {
		t.Fatal(err)
	}
	got, _ := bo.ReadFloat32()
	// The absolute error stays bounded by the decode error of the large
	// inputs (~100·2^-15), even though the relative error vs 0.0625 is big.
	if absErr := math.Abs(float64(got[0] - 0.0625)); absErr > 100.0/(1<<14) {
		t.Fatalf("absolute error %g exceeds decode-error bound", absErr)
	}
}

func TestSgemmInt32EndToEnd(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 16
	rng := rand.New(rand.NewSource(3))
	a := make([]int32, n*n)
	b := make([]int32, n*n)
	for i := range a {
		a[i] = int32(rng.Intn(64) - 32)
		b[i] = int32(rng.Intn(64) - 32)
	}
	ba, err := d.NewMatrixBuffer(codec.Int32, n)
	if err != nil {
		t.Fatal(err)
	}
	bb, _ := d.NewMatrixBuffer(codec.Int32, n)
	bo, _ := d.NewMatrixBuffer(codec.Int32, n)
	if err := ba.WriteInt32(a); err != nil {
		t.Fatal(err)
	}
	if err := bb.WriteInt32(b); err != nil {
		t.Fatal(err)
	}
	k, err := d.BuildKernel(KernelSpec{
		Name: "sgemm",
		Inputs: []Param{
			{Name: "a", Type: codec.Int32},
			{Name: "b", Type: codec.Int32},
		},
		Outputs:  []OutputSpec{{Name: "out", Type: codec.Int32}},
		Uniforms: []string{"u_n"},
		Source: `
float gc_kernel(float idx) {
	float row = floor((idx + 0.5) / u_n);
	float col = idx - row * u_n;
	float acc = 0.0;
	for (float k = 0.0; k < 4096.0; k += 1.0) {
		if (k >= u_n) { break; }
		acc += gc_a_at(k, row) * gc_b_at(col, k);
	}
	return acc;
}
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run1(bo, []*Buffer{ba, bb}, map[string]float32{"u_n": n}); err != nil {
		t.Fatal(err)
	}
	got, err := bo.ReadInt32()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := refcpu.SgemmInt32(a, b, n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

func TestKernelWithUniform(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 64
	a := make([]float32, n)
	for i := range a {
		a[i] = float32(i)
	}
	ba, _ := d.NewBuffer(codec.Float32, n)
	bo, _ := d.NewBuffer(codec.Float32, n)
	if err := ba.WriteFloat32(a); err != nil {
		t.Fatal(err)
	}
	k, err := d.BuildKernel(KernelSpec{
		Name:     "scale",
		Inputs:   []Param{{Name: "x", Type: codec.Float32}},
		Uniforms: []string{"u_alpha"},
		Source:   "float gc_kernel(float idx) { return u_alpha * gc_x(idx); }",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run1(bo, []*Buffer{ba}, map[string]float32{"u_alpha": 3}); err != nil {
		t.Fatal(err)
	}
	got, _ := bo.ReadFloat32()
	for i := range got {
		if codec.MantissaBitsAgreement(float32(i)*3, got[i]) < 13 {
			t.Fatalf("element %d: got %g, want %g", i, got[i], float32(i)*3)
		}
	}
}

func TestMissingUniformError(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	ba, _ := d.NewBuffer(codec.Float32, 4)
	bo, _ := d.NewBuffer(codec.Float32, 4)
	k, err := d.BuildKernel(KernelSpec{
		Name:     "s",
		Inputs:   []Param{{Name: "x", Type: codec.Float32}},
		Uniforms: []string{"u_alpha"},
		Source:   "float gc_kernel(float idx) { return u_alpha * gc_x(idx); }",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run1(bo, []*Buffer{ba}, nil); err == nil {
		t.Fatal("missing uniform must error")
	}
}

func TestMultiOutputKernel(t *testing.T) {
	// Challenge #8: one logical kernel with two outputs compiles into two
	// passes, each re-running the body (as the paper describes).
	d := openTest(t)
	defer d.Close()
	const n = 100
	a := make([]float32, n)
	for i := range a {
		a[i] = float32(i) + 1
	}
	ba, _ := d.NewBuffer(codec.Float32, n)
	if err := ba.WriteFloat32(a); err != nil {
		t.Fatal(err)
	}
	bDouble, _ := d.NewBuffer(codec.Float32, n)
	bSquare, _ := d.NewBuffer(codec.Float32, n)
	k, err := d.BuildKernel(KernelSpec{
		Name:   "multi",
		Inputs: []Param{{Name: "x", Type: codec.Float32}},
		Outputs: []OutputSpec{
			{Name: "double", Type: codec.Float32},
			{Name: "square", Type: codec.Float32},
		},
		Source: `
float gc_kernel_double(float idx) { return 2.0 * gc_x(idx); }
float gc_kernel_square(float idx) { float v = gc_x(idx); return v * v; }
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := k.Run([]*Buffer{bDouble, bSquare}, []*Buffer{ba}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Draw.DrawCalls != 2 {
		t.Errorf("multi-output kernel should issue 2 draws, got %d", stats.Draw.DrawCalls)
	}
	gd, _ := bDouble.ReadFloat32()
	gs, _ := bSquare.ReadFloat32()
	for i := 0; i < n; i++ {
		v := float32(i) + 1
		if codec.MantissaBitsAgreement(2*v, gd[i]) < 13 {
			t.Fatalf("double[%d] = %g, want %g", i, gd[i], 2*v)
		}
		if codec.MantissaBitsAgreement(v*v, gs[i]) < 13 {
			t.Fatalf("square[%d] = %g, want %g", i, gs[i], v*v)
		}
	}
}

func TestCopyPassThrough(t *testing.T) {
	// Challenge #7 "first way": byte-exact copy through a pass-through
	// fragment shader.
	d := openTest(t)
	defer d.Close()
	const n = 333
	rng := rand.New(rand.NewSource(5))
	a := make([]float32, n)
	for i := range a {
		a[i] = rng.Float32() * 1000
	}
	src, _ := d.NewBuffer(codec.Float32, n)
	dst, _ := d.NewBuffer(codec.Float32, n)
	if err := src.WriteFloat32(a); err != nil {
		t.Fatal(err)
	}
	if err := d.Copy(dst, src); err != nil {
		t.Fatal(err)
	}
	got, err := dst.ReadFloat32()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Float32bits(got[i]) != math.Float32bits(a[i]) {
			t.Fatalf("copy not byte-exact at %d: %g vs %g", i, got[i], a[i])
		}
	}
}

func TestBufferRoundTripsAllTypes(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 257 // force a multi-row NPOT-height grid

	t.Run("uint8", func(t *testing.T) {
		b, _ := d.NewBuffer(codec.Uint8, n)
		in := make([]uint8, n)
		for i := range in {
			in[i] = uint8(i * 7)
		}
		if err := b.WriteUint8(in); err != nil {
			t.Fatal(err)
		}
		out, err := b.ReadUint8()
		if err != nil {
			t.Fatal(err)
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("u8[%d]: %d != %d", i, out[i], in[i])
			}
		}
	})
	t.Run("int8", func(t *testing.T) {
		b, _ := d.NewBuffer(codec.Int8, n)
		in := make([]int8, n)
		for i := range in {
			in[i] = int8(i*5 - 128)
		}
		if err := b.WriteInt8(in); err != nil {
			t.Fatal(err)
		}
		out, _ := b.ReadInt8()
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("i8[%d]: %d != %d", i, out[i], in[i])
			}
		}
	})
	t.Run("uint32", func(t *testing.T) {
		b, _ := d.NewBuffer(codec.Uint32, n)
		in := make([]uint32, n)
		for i := range in {
			in[i] = uint32(i * 123457)
		}
		if err := b.WriteUint32(in); err != nil {
			t.Fatal(err)
		}
		out, _ := b.ReadUint32()
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("u32[%d]: %d != %d", i, out[i], in[i])
			}
		}
	})
	t.Run("float32", func(t *testing.T) {
		b, _ := d.NewBuffer(codec.Float32, n)
		in := make([]float32, n)
		for i := range in {
			in[i] = float32(i)*0.37 - 40
		}
		if err := b.WriteFloat32(in); err != nil {
			t.Fatal(err)
		}
		out, _ := b.ReadFloat32()
		for i := range in {
			// Upload+readback without a kernel is byte-exact.
			if math.Float32bits(out[i]) != math.Float32bits(in[i]) {
				t.Fatalf("f32[%d]: %g != %g", i, out[i], in[i])
			}
		}
	})
}

func TestTypeMismatchErrors(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	b, _ := d.NewBuffer(codec.Float32, 8)
	if err := b.WriteInt32(make([]int32, 8)); err == nil {
		t.Error("writing int32 to float buffer must error")
	}
	if _, err := b.ReadInt32(); err == nil {
		t.Error("reading int32 from float buffer must error")
	}
	if err := b.WriteFloat32(make([]float32, 4)); err == nil {
		t.Error("length mismatch must error")
	}
	k := buildSum(t, d, codec.Float32)
	bi, _ := d.NewBuffer(codec.Int32, 8)
	bo, _ := d.NewBuffer(codec.Float32, 8)
	if _, err := k.Run1(bo, []*Buffer{b, bi}, nil); err == nil {
		t.Error("input type mismatch must error")
	}
	if _, err := k.Run1(bo, []*Buffer{b}, nil); err == nil {
		t.Error("input count mismatch must error")
	}
}

func TestKernelCompileErrorSurfaces(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	_, err := d.BuildKernel(KernelSpec{
		Name:   "bad",
		Source: "float gc_kernel(float idx) { return undefined_symbol; }",
	})
	if err == nil {
		t.Fatal("compile error must surface")
	}
}

func TestTimelineAccounting(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	d.ResetTimeline()
	const n = 4096
	a := make([]float32, n)
	ba, _ := d.NewBuffer(codec.Float32, n)
	bb, _ := d.NewBuffer(codec.Float32, n)
	bo, _ := d.NewBuffer(codec.Float32, n)
	if err := ba.WriteFloat32(a); err != nil {
		t.Fatal(err)
	}
	if err := bb.WriteFloat32(a); err != nil {
		t.Fatal(err)
	}
	k := buildSum(t, d, codec.Float32)
	if _, err := k.Run1(bo, []*Buffer{ba, bb}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := bo.ReadFloat32(); err != nil {
		t.Fatal(err)
	}
	tl := d.Timeline()
	if tl.Compile <= 0 {
		t.Error("compile time missing from timeline")
	}
	if tl.Upload <= 0 {
		t.Error("upload time missing")
	}
	if tl.Execute <= 0 {
		t.Error("execute time missing")
	}
	if tl.Readback <= 0 {
		t.Error("readback time missing")
	}
	if tl.Total() != tl.Compile+tl.Upload+tl.Execute+tl.Readback {
		t.Error("Total() mismatch")
	}
}

func TestChainedKernels(t *testing.T) {
	// Kernel chaining with "careful kernel ordering" (challenge #7): the
	// output of pass 1 feeds pass 2 without any CPU round trip.
	d := openTest(t)
	defer d.Close()
	const n = 128
	a := make([]float32, n)
	for i := range a {
		a[i] = float32(i)
	}
	b0, _ := d.NewBuffer(codec.Float32, n)
	b1, _ := d.NewBuffer(codec.Float32, n)
	b2, _ := d.NewBuffer(codec.Float32, n)
	if err := b0.WriteFloat32(a); err != nil {
		t.Fatal(err)
	}
	inc, err := d.BuildKernel(KernelSpec{
		Name:   "inc",
		Inputs: []Param{{Name: "x", Type: codec.Float32}},
		Source: "float gc_kernel(float idx) { return gc_x(idx) + 1.0; }",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Run1(b1, []*Buffer{b0}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Run1(b2, []*Buffer{b1}, nil); err != nil {
		t.Fatal(err)
	}
	got, _ := b2.ReadFloat32()
	for i := range got {
		want := float32(i) + 2
		if codec.MantissaBitsAgreement(want, got[i]) < 13 {
			t.Fatalf("chained element %d: got %g, want %g", i, got[i], want)
		}
	}
}

func TestPrecisionInfo(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	flt, intp := d.PrecisionInfo()
	if flt.Precision != 23 {
		t.Errorf("float precision %d, want 23", flt.Precision)
	}
	if intp.RangeMax != 24 {
		t.Errorf("int range %d, want 24", intp.RangeMax)
	}
}
