package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"glescompute/internal/codec"
)

// corpusEntry is one kernel of the concurrent differential corpus: run it
// on a device, return the raw output bits.
type corpusEntry struct {
	name string
	run  func(dev *Device) ([]uint32, error)
}

// concurrencyCorpus covers every element type, 2D matrix addressing and a
// multi-pass pipeline — the code paths that would surface hidden shared
// state between supposedly independent devices.
func concurrencyCorpus() []corpusEntry {
	rng := rand.New(rand.NewSource(20260730))
	const n = 512
	af := make([]float32, n)
	bf := make([]float32, n)
	ai := make([]int32, n)
	bi := make([]int32, n)
	au := make([]uint32, n)
	ab := make([]uint8, n)
	for i := 0; i < n; i++ {
		af[i] = rng.Float32()*64 - 32
		bf[i] = rng.Float32()*64 - 32
		ai[i] = int32(rng.Intn(1<<21) - 1<<20)
		bi[i] = int32(rng.Intn(1<<21) - 1<<20)
		au[i] = uint32(rng.Intn(1 << 23))
		ab[i] = uint8(rng.Intn(256))
	}
	const mn = 16
	am := make([]float32, mn*mn)
	bm := make([]float32, mn*mn)
	for i := range am {
		am[i] = rng.Float32()
		bm[i] = rng.Float32()
	}

	f32bits := func(v []float32) []uint32 {
		out := make([]uint32, len(v))
		for i, x := range v {
			out[i] = math.Float32bits(x)
		}
		return out
	}
	i32bits := func(v []int32) []uint32 {
		out := make([]uint32, len(v))
		for i, x := range v {
			out[i] = uint32(x)
		}
		return out
	}

	elementwise := func(spec KernelSpec, writeA, writeB func(a, b *Buffer) error, elem codec.ElemType, read func(o *Buffer) ([]uint32, error)) func(*Device) ([]uint32, error) {
		return func(dev *Device) ([]uint32, error) {
			ba, err := dev.NewBuffer(elem, n)
			if err != nil {
				return nil, err
			}
			bb, err := dev.NewBuffer(elem, n)
			if err != nil {
				return nil, err
			}
			bo, err := dev.NewBuffer(elem, n)
			if err != nil {
				return nil, err
			}
			k, err := dev.BuildKernel(spec)
			if err != nil {
				return nil, err
			}
			if err := writeA(ba, bb); err != nil {
				return nil, err
			}
			if err := writeB(ba, bb); err != nil {
				return nil, err
			}
			if _, err := k.Run1(bo, []*Buffer{ba, bb}, nil); err != nil {
				return nil, err
			}
			return read(bo)
		}
	}

	sumF := KernelSpec{
		Name:   "sum",
		Inputs: []Param{{Name: "a", Type: codec.Float32}, {Name: "b", Type: codec.Float32}},
		Source: `float gc_kernel(float idx) { return gc_a(idx) + gc_b(idx); }`,
	}
	sumI := KernelSpec{
		Name:    "sumi",
		Inputs:  []Param{{Name: "a", Type: codec.Int32}, {Name: "b", Type: codec.Int32}},
		Outputs: []OutputSpec{{Name: "out", Type: codec.Int32}},
		Source:  `float gc_kernel(float idx) { return gc_a(idx) + gc_b(idx); }`,
	}

	return []corpusEntry{
		{"sum-f32", elementwise(sumF,
			func(a, b *Buffer) error { return a.WriteFloat32(af) },
			func(a, b *Buffer) error { return b.WriteFloat32(bf) },
			codec.Float32,
			func(o *Buffer) ([]uint32, error) {
				v, err := o.ReadFloat32()
				if err != nil {
					return nil, err
				}
				return f32bits(v), nil
			})},
		{"sum-i32", elementwise(sumI,
			func(a, b *Buffer) error { return a.WriteInt32(ai) },
			func(a, b *Buffer) error { return b.WriteInt32(bi) },
			codec.Int32,
			func(o *Buffer) ([]uint32, error) {
				v, err := o.ReadInt32()
				if err != nil {
					return nil, err
				}
				return i32bits(v), nil
			})},
		{"saxpy-u32-u8", func(dev *Device) ([]uint32, error) {
			bu, err := dev.NewBuffer(codec.Uint32, n)
			if err != nil {
				return nil, err
			}
			bb, err := dev.NewBuffer(codec.Uint8, n)
			if err != nil {
				return nil, err
			}
			bo, err := dev.NewBuffer(codec.Uint32, n)
			if err != nil {
				return nil, err
			}
			k, err := dev.BuildKernel(KernelSpec{
				Name:    "saxpy",
				Inputs:  []Param{{Name: "x", Type: codec.Uint32}, {Name: "y", Type: codec.Uint8}},
				Outputs: []OutputSpec{{Name: "out", Type: codec.Uint32}},
				Source:  `float gc_kernel(float idx) { return gc_x(idx) + 3.0 * gc_y(idx); }`,
			})
			if err != nil {
				return nil, err
			}
			if err := bu.WriteUint32(au); err != nil {
				return nil, err
			}
			if err := bb.WriteUint8(ab); err != nil {
				return nil, err
			}
			if _, err := k.Run1(bo, []*Buffer{bu, bb}, nil); err != nil {
				return nil, err
			}
			v, err := bo.ReadUint32()
			if err != nil {
				return nil, err
			}
			return v, nil
		}},
		{"sgemm-f32", func(dev *Device) ([]uint32, error) {
			ba, err := dev.NewMatrixBuffer(codec.Float32, mn)
			if err != nil {
				return nil, err
			}
			bb, err := dev.NewMatrixBuffer(codec.Float32, mn)
			if err != nil {
				return nil, err
			}
			bo, err := dev.NewMatrixBuffer(codec.Float32, mn)
			if err != nil {
				return nil, err
			}
			k, err := dev.BuildKernel(KernelSpec{
				Name:     "sgemm",
				Inputs:   []Param{{Name: "a", Type: codec.Float32}, {Name: "b", Type: codec.Float32}},
				Uniforms: []string{"u_n"},
				Source: `float gc_kernel(float idx) {
	float row = floor((idx + 0.5) / u_n);
	float col = idx - row * u_n;
	float acc = 0.0;
	for (float k = 0.0; k < 64.0; k += 1.0) {
		if (k >= u_n) { break; }
		acc += gc_a_at(k, row) * gc_b_at(col, k);
	}
	return acc;
}`,
			})
			if err != nil {
				return nil, err
			}
			if err := ba.WriteFloat32(am); err != nil {
				return nil, err
			}
			if err := bb.WriteFloat32(bm); err != nil {
				return nil, err
			}
			if _, err := k.Run1(bo, []*Buffer{ba, bb}, map[string]float32{"u_n": mn}); err != nil {
				return nil, err
			}
			v, err := bo.ReadFloat32()
			if err != nil {
				return nil, err
			}
			return f32bits(v), nil
		}},
		{"reduce-pipeline", func(dev *Device) ([]uint32, error) {
			p := dev.NewPipeline()
			defer p.Close()
			p.Output(p.Reduce(p.Input(codec.Float32, n), ReduceAdd))
			if err := p.Err(); err != nil {
				return nil, err
			}
			in, err := dev.NewBuffer(codec.Float32, n)
			if err != nil {
				return nil, err
			}
			out, err := dev.NewBuffer(codec.Float32, 1)
			if err != nil {
				return nil, err
			}
			if err := in.WriteFloat32(af); err != nil {
				return nil, err
			}
			if _, err := p.Run([]*Buffer{out}, []*Buffer{in}, nil); err != nil {
				return nil, err
			}
			v, err := out.ReadFloat32()
			if err != nil {
				return nil, err
			}
			return f32bits(v), nil
		}},
	}
}

// TestConcurrentIndependentDevices runs the differential corpus on many
// independent devices at once and demands bit-identical outputs from all
// of them. Before the scheduler, nothing proved two core.Devices share no
// hidden package-level state; under -race this also proves memory safety
// of the one-device-per-goroutine regime the queue relies on.
func TestConcurrentIndependentDevices(t *testing.T) {
	corpus := concurrencyCorpus()

	// Reference bits, computed on one device up front.
	ref := make(map[string][]uint32)
	refDev, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range corpus {
		bits, err := e.run(refDev)
		if err != nil {
			t.Fatalf("reference %s: %v", e.name, err)
		}
		ref[e.name] = bits
	}
	refDev.Close()

	const goroutines = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*len(corpus))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dev, err := Open(Config{Workers: 1})
			if err != nil {
				errs <- err
				return
			}
			defer dev.Close()
			// Interleave entries differently per goroutine so devices are
			// always running different kernels simultaneously.
			for i := 0; i < len(corpus); i++ {
				e := corpus[(i+g)%len(corpus)]
				bits, err := e.run(dev)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d, %s: %w", g, e.name, err)
					return
				}
				want := ref[e.name]
				if len(bits) != len(want) {
					errs <- fmt.Errorf("goroutine %d, %s: %d outputs, want %d", g, e.name, len(bits), len(want))
					return
				}
				for k := range want {
					if bits[k] != want[k] {
						errs <- fmt.Errorf("goroutine %d, %s: output %d = %08x, want %08x (devices share state?)",
							g, e.name, k, bits[k], want[k])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentTiledDevices is the parallel-rasterizer variant of the
// test above: every device runs its fragment stage on a 4-worker tile
// pool, so each draw spawns goroutines of its own while many devices draw
// at once. Under -race this proves the per-worker executor/rasterizer
// instances share nothing — across tiles within a draw, and across
// devices. Outputs must still match the sequential reference bit for bit.
func TestConcurrentTiledDevices(t *testing.T) {
	corpus := concurrencyCorpus()

	ref := make(map[string][]uint32)
	refCfg := Config{}
	refCfg.Exec.RasterWorkers = 1
	refDev, err := Open(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range corpus {
		bits, err := e.run(refDev)
		if err != nil {
			t.Fatalf("reference %s: %v", e.name, err)
		}
		ref[e.name] = bits
	}
	refDev.Close()

	const goroutines = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*len(corpus))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cfg := Config{}
			cfg.Exec.RasterWorkers = 4
			// Tiny tiles force many tiles per draw even on the small
			// textures these kernels render to.
			cfg.TileSize = 4
			dev, err := Open(cfg)
			if err != nil {
				errs <- err
				return
			}
			defer dev.Close()
			for i := 0; i < len(corpus); i++ {
				e := corpus[(i+g)%len(corpus)]
				bits, err := e.run(dev)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d, %s: %w", g, e.name, err)
					return
				}
				want := ref[e.name]
				for k := range want {
					if bits[k] != want[k] {
						errs <- fmt.Errorf("goroutine %d, %s: output %d = %08x, want %08x (tiled draw diverged)",
							g, e.name, k, bits[k], want[k])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
