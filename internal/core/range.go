package core

import (
	"fmt"

	"glescompute/internal/codec"
	"glescompute/internal/gles"
)

// This file implements job-sized sub-range transfers: writing and reading
// a span of elements without touching the rest of the buffer. The
// scheduler's request batching depends on them — many small jobs are laid
// out as adjacent rows of one shared texture (layout.PackRows), uploaded
// in one call, and sliced back out per job. GL moves rectangles, so write
// ranges must cover whole texel rows; reads accept any span (the covering
// rows are read and the span sliced out host-side).

// packAny encodes a typed host slice into texel bytes for a buffer of
// format f, returning the element count. Packed formats produce
// ceil(n/lanes) texels.
func packAny(f codec.Format, src interface{}) (int, []byte, error) {
	t := f.Elem()
	mismatch := func(got string) (int, []byte, error) {
		return 0, nil, fmt.Errorf("buffer holds %s, source is %s", f, got)
	}
	switch s := src.(type) {
	case []float32:
		if t != codec.Float32 {
			return mismatch("[]float32")
		}
		buf := make([]byte, f.TexelsFor(len(s))*4)
		if f == codec.FmtFloat16x2 {
			return len(s), buf, codec.PackFloat16x2(buf, s)
		}
		return len(s), buf, codec.PackFloat32(buf, s)
	case []int32:
		if t != codec.Int32 {
			return mismatch("[]int32")
		}
		buf := make([]byte, len(s)*4)
		return len(s), buf, codec.PackInt32(buf, s)
	case []uint32:
		if t != codec.Uint32 {
			return mismatch("[]uint32")
		}
		buf := make([]byte, len(s)*4)
		return len(s), buf, codec.PackUint32(buf, s)
	case []int8:
		if t != codec.Int8 {
			return mismatch("[]int8")
		}
		buf := make([]byte, f.TexelsFor(len(s))*4)
		if f == codec.FmtInt8x4 {
			return len(s), buf, codec.PackInt8x4(buf, s)
		}
		return len(s), buf, codec.PackInt8(buf, s)
	case []uint8:
		if t != codec.Uint8 {
			return mismatch("[]uint8")
		}
		buf := make([]byte, len(s)*4)
		return len(s), buf, codec.PackUint8(buf, s)
	default:
		return 0, nil, fmt.Errorf("unsupported host slice type %T", src)
	}
}

// unpackAny decodes n elements of format f from texel bytes into a freshly
// allocated typed slice. For packed formats, texels must start at the byte
// of the first requested LANE (lanes are byte-addressable: 1 byte/lane for
// Int8x4, 2 for Float16x2), which lets ReadRange serve unaligned spans.
func unpackAny(f codec.Format, texels []byte, n int) (interface{}, error) {
	switch f {
	case codec.FmtFloat32:
		out := make([]float32, n)
		return out, codec.UnpackFloat32(out, texels[:n*4])
	case codec.FmtFloat16x2:
		out := make([]float32, n)
		return out, codec.UnpackFloat16x2(out, texels)
	case codec.FmtInt32:
		out := make([]int32, n)
		return out, codec.UnpackInt32(out, texels[:n*4])
	case codec.FmtUint32:
		out := make([]uint32, n)
		return out, codec.UnpackUint32(out, texels[:n*4])
	case codec.FmtInt8:
		out := make([]int8, n)
		return out, codec.UnpackInt8(out, texels[:n*4])
	case codec.FmtInt8x4:
		out := make([]int8, n)
		return out, codec.UnpackInt8x4(out, texels)
	default:
		out := make([]uint8, n)
		return out, codec.UnpackUint8(out, texels[:n*4])
	}
}

// HostLen returns the length of a supported host slice ([]float32,
// []int32, []uint32, []int8, []uint8), or -1 for any other type.
func HostLen(src interface{}) int {
	switch s := src.(type) {
	case []float32:
		return len(s)
	case []int32:
		return len(s)
	case []uint32:
		return len(s)
	case []int8:
		return len(s)
	case []uint8:
		return len(s)
	}
	return -1
}

// WriteRange uploads src into elements [off, off+len(src)) through one
// TexSubImage2D call. src must be a slice matching the buffer's element
// type. The range must start on a texel-row boundary and either cover
// whole rows or end at the buffer's tail — GL uploads rectangles, and the
// runtime will not read-modify-write to fake finer granularity.
func (b *Buffer) WriteRange(off int, src interface{}) error {
	if err := b.dev.checkOpen("WriteRange"); err != nil {
		return err
	}
	count, texels, err := packAny(b.fmt, src)
	if err != nil {
		return fmt.Errorf("core: WriteRange: %w", err)
	}
	if count == 0 {
		return nil
	}
	w := b.grid.Width
	lanes := b.fmt.Lanes()
	if off < 0 || off+count > b.n {
		return fmt.Errorf("core: WriteRange: [%d,%d) outside buffer of %d elements", off, off+count, b.n)
	}
	if off%lanes != 0 {
		return fmt.Errorf("core: WriteRange: offset %d not on a texel boundary (%d lanes/texel)", off, lanes)
	}
	if count%lanes != 0 && off+count != b.n {
		return fmt.Errorf("core: WriteRange: %d elements from %d end mid-texel (%d lanes/texel) before the buffer tail", count, off, lanes)
	}
	texOff := off / lanes
	texCount := b.fmt.TexelsFor(count)
	if texOff%w != 0 {
		return fmt.Errorf("core: WriteRange: offset %d not on a row boundary (width %d)", off, w)
	}
	if texCount%w != 0 && off+count != b.n {
		return fmt.Errorf("core: WriteRange: %d elements from %d neither cover whole rows (width %d) nor reach the buffer tail", count, off, w)
	}
	rows := (texCount + w - 1) / w
	padded := texels
	if len(padded) < rows*w*4 {
		padded = make([]byte, rows*w*4)
		copy(padded, texels)
	}
	ctx := b.dev.ctx
	prev := uint32(ctx.GetIntegerv(gles.TEXTURE_BINDING_2D)[0])
	ctx.BindTexture(gles.TEXTURE_2D, b.tex)
	ctx.TexSubImage2D(gles.TEXTURE_2D, 0, 0, texOff/w, w, rows, gles.RGBA, gles.UNSIGNED_BYTE, padded)
	ctx.BindTexture(gles.TEXTURE_2D, prev)
	return b.dev.checkGL("WriteRange")
}

// ReadRange reads elements [off, off+count) back into a freshly allocated
// slice of the buffer's element type, reading only the covering texel rows
// (one ReadPixels call). Any span is accepted.
func (b *Buffer) ReadRange(off, count int) (interface{}, error) {
	if err := b.dev.checkOpen("ReadRange"); err != nil {
		return nil, err
	}
	if off < 0 || count <= 0 || off+count > b.n {
		return nil, fmt.Errorf("core: ReadRange: [%d,%d) outside buffer of %d elements", off, off+count, b.n)
	}
	fbo, err := b.ensureFBO()
	if err != nil {
		return nil, err
	}
	w := b.grid.Width
	lanes := b.fmt.Lanes()
	texOff := off / lanes
	texEnd := (off + count - 1) / lanes
	startRow := texOff / w
	rows := texEnd/w - startRow + 1
	ctx := b.dev.ctx
	prev := uint32(ctx.GetIntegerv(gles.FRAMEBUFFER_BINDING)[0])
	ctx.BindFramebuffer(gles.FRAMEBUFFER, fbo)
	texels := make([]byte, rows*w*4)
	ctx.ReadPixels(0, startRow, w, rows, gles.RGBA, gles.UNSIGNED_BYTE, texels)
	ctx.BindFramebuffer(gles.FRAMEBUFFER, prev)
	if err := b.dev.checkGL("ReadRange"); err != nil {
		return nil, err
	}
	// Byte offset of the first requested lane: whole texels, then lanes
	// within the first texel (4 bytes/texel ÷ lanes bytes/lane).
	skip := (texOff-startRow*w)*4 + (off-texOff*lanes)*(4/lanes)
	out, err := unpackAny(b.fmt, texels[skip:], count)
	if err != nil {
		return nil, fmt.Errorf("core: ReadRange: %w", err)
	}
	return out, nil
}
