package core

import (
	"fmt"
	"strings"

	"glescompute/internal/codec"
)

// generateFragmentShader assembles the complete fragment shader for one
// output pass: decoder functions for every input type in use, addressing
// helpers per input (challenges #3/#4), the user's kernel source, the
// output encoder (challenge #6), and a main() that maps the fragment back
// to its linear output index.
func generateFragmentShader(spec KernelSpec, out OutputSpec) string {
	var b strings.Builder
	b.WriteString("precision highp float;\n\n")

	// One decoder per distinct input element type.
	seen := map[codec.ElemType]bool{}
	for _, in := range spec.Inputs {
		if !seen[in.Type] {
			seen[in.Type] = true
			b.WriteString(codec.GLSLDecoder(in.Type, decoderName(in.Type)))
			b.WriteString("\n")
		}
	}

	// Per-input sampler, dims and accessors.
	for _, in := range spec.Inputs {
		fmt.Fprintf(&b, "uniform sampler2D gc_%s_tex;\n", in.Name)
		fmt.Fprintf(&b, "uniform vec2 gc_%s_dims;\n", in.Name)
		// Linear fetch: index -> texel centre -> decode. The +0.5 inside
		// the floor guards against fp32 division rounding at row
		// boundaries (see internal/layout).
		fmt.Fprintf(&b, "float gc_%s(float idx) {\n", in.Name)
		fmt.Fprintf(&b, "\tfloat row = floor((idx + 0.5) / gc_%s_dims.x);\n", in.Name)
		fmt.Fprintf(&b, "\tfloat col = idx - row * gc_%s_dims.x;\n", in.Name)
		fmt.Fprintf(&b, "\tvec2 st = vec2((col + 0.5) / gc_%s_dims.x, (row + 0.5) / gc_%s_dims.y);\n", in.Name, in.Name)
		fmt.Fprintf(&b, "\treturn %s(texture2D(gc_%s_tex, st));\n", decoderName(in.Type), in.Name)
		b.WriteString("}\n")
		// 2D fetch for matrix kernels.
		fmt.Fprintf(&b, "float gc_%s_at(float col, float row) {\n", in.Name)
		fmt.Fprintf(&b, "\tvec2 st = vec2((col + 0.5) / gc_%s_dims.x, (row + 0.5) / gc_%s_dims.y);\n", in.Name, in.Name)
		fmt.Fprintf(&b, "\treturn %s(texture2D(gc_%s_tex, st));\n", decoderName(in.Type), in.Name)
		b.WriteString("}\n\n")
	}

	// Output bookkeeping and user uniforms.
	b.WriteString("uniform vec2 gc_out_dims;\n")
	b.WriteString("uniform float gc_out_n;\n")
	for _, u := range spec.Uniforms {
		fmt.Fprintf(&b, "uniform float %s;\n", u)
	}
	b.WriteString("varying vec2 v_uv;\n\n")

	// Output encoder.
	b.WriteString(codec.GLSLEncoder(out.Type, "gc_encode_out", codec.EncodeRobust))
	b.WriteString("\n")

	// User kernel source.
	b.WriteString(spec.Source)
	b.WriteString("\n")

	// Entry point: recover the linear output index from gl_FragCoord
	// (exact: fragment centres sit at half-integer window coordinates)
	// and dispatch to the per-output kernel function.
	fn := kernelFunctionName(spec, out)
	b.WriteString("void main() {\n")
	b.WriteString("\tfloat gc_idx = floor(gl_FragCoord.y) * gc_out_dims.x + floor(gl_FragCoord.x);\n")
	fmt.Fprintf(&b, "\tgl_FragColor = gc_encode_out(%s(gc_idx));\n", fn)
	b.WriteString("}\n")
	return b.String()
}

// kernelFunctionName returns the function main() calls for this output:
// gc_kernel for the default single output, gc_kernel_<name> otherwise.
func kernelFunctionName(spec KernelSpec, out OutputSpec) string {
	if len(spec.Outputs) == 1 && out.Name == "out" &&
		strings.Contains(spec.Source, "gc_kernel(") &&
		!strings.Contains(spec.Source, "gc_kernel_out(") {
		return "gc_kernel"
	}
	return "gc_kernel_" + out.Name
}

func decoderName(t codec.ElemType) string {
	switch t {
	case codec.Uint8:
		return "gc_decode_u8"
	case codec.Int8:
		return "gc_decode_i8"
	case codec.Uint32:
		return "gc_decode_u32"
	case codec.Int32:
		return "gc_decode_i32"
	default:
		return "gc_decode_f32"
	}
}
