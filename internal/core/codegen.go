package core

import (
	"fmt"
	"strings"

	"glescompute/internal/codec"
)

// generateFragmentShader assembles the complete fragment shader for one
// output pass: decoder functions for every input format in use, addressing
// helpers per input (challenges #3/#4), the user's kernel source, the
// output encoder (challenge #6), and a main() that maps the fragment back
// to its linear output index.
//
// Scalar passes (Lanes == 1) compute one element per fragment. 4-wide
// passes (Lanes == 4, Int8x4 output) compute one output TEXEL per
// fragment: the kernel function receives the texel index and returns all
// four lanes as a vec4, amortizing the codec over four elements — the A1
// bottleneck this layout exists to cut.
func generateFragmentShader(spec KernelSpec, out OutputSpec) string {
	var b strings.Builder
	b.WriteString("precision highp float;\n\n")

	// One decoder per distinct input format.
	seen := map[codec.Format]bool{}
	for _, in := range spec.Inputs {
		if seen[in.Fmt] {
			continue
		}
		seen[in.Fmt] = true
		switch in.Fmt {
		case codec.FmtInt8x4:
			b.WriteString(codec.GLSLDecoderInt8x4(decoderName(in.Fmt)))
		case codec.FmtFloat16x2:
			b.WriteString(codec.GLSLDecoderFloat16x2(decoderName(in.Fmt)))
		default:
			b.WriteString(codec.GLSLDecoder(in.Type, decoderName(in.Fmt)))
		}
		b.WriteString("\n")
	}

	// Per-input sampler, dims and accessors.
	for _, in := range spec.Inputs {
		fmt.Fprintf(&b, "uniform sampler2D gc_%s_tex;\n", in.Name)
		fmt.Fprintf(&b, "uniform vec2 gc_%s_dims;\n", in.Name)
		switch in.Fmt {
		case codec.FmtInt8x4:
			// Whole-texel fetch: texel index -> texel centre -> 4 lanes.
			fmt.Fprintf(&b, "vec4 gc_%s4(float tidx) {\n", in.Name)
			fmt.Fprintf(&b, "\tfloat row = floor((tidx + 0.5) / gc_%s_dims.x);\n", in.Name)
			fmt.Fprintf(&b, "\tfloat col = tidx - row * gc_%s_dims.x;\n", in.Name)
			fmt.Fprintf(&b, "\tvec2 st = vec2((col + 0.5) / gc_%s_dims.x, (row + 0.5) / gc_%s_dims.y);\n", in.Name, in.Name)
			fmt.Fprintf(&b, "\treturn %s(texture2D(gc_%s_tex, st));\n", decoderName(in.Fmt), in.Name)
			b.WriteString("}\n")
			// Scalar view: logical index -> (texel, lane), lane selected
			// with a comparison chain (GLSL ES 1.00 has no dynamic vector
			// indexing) — the in-shader counterpart of layout.TexelFor.
			fmt.Fprintf(&b, "float gc_%s(float idx) {\n", in.Name)
			b.WriteString("\tfloat t = floor((idx + 0.5) / 4.0);\n")
			b.WriteString("\tfloat l = idx - t * 4.0;\n")
			fmt.Fprintf(&b, "\tvec4 v = gc_%s4(t);\n", in.Name)
			b.WriteString("\treturn l < 0.5 ? v.r : (l < 1.5 ? v.g : (l < 2.5 ? v.b : v.a));\n")
			b.WriteString("}\n\n")
		case codec.FmtFloat16x2:
			fmt.Fprintf(&b, "float gc_%s(float idx) {\n", in.Name)
			b.WriteString("\tfloat t = floor((idx + 0.5) / 2.0);\n")
			b.WriteString("\tfloat l = idx - t * 2.0;\n")
			fmt.Fprintf(&b, "\tfloat row = floor((t + 0.5) / gc_%s_dims.x);\n", in.Name)
			fmt.Fprintf(&b, "\tfloat col = t - row * gc_%s_dims.x;\n", in.Name)
			fmt.Fprintf(&b, "\tvec2 st = vec2((col + 0.5) / gc_%s_dims.x, (row + 0.5) / gc_%s_dims.y);\n", in.Name, in.Name)
			fmt.Fprintf(&b, "\tvec2 v = %s(texture2D(gc_%s_tex, st));\n", decoderName(in.Fmt), in.Name)
			b.WriteString("\treturn l < 0.5 ? v.x : v.y;\n")
			b.WriteString("}\n\n")
		default:
			// Linear fetch: index -> texel centre -> decode. The +0.5 inside
			// the floor guards against fp32 division rounding at row
			// boundaries (see internal/layout).
			fmt.Fprintf(&b, "float gc_%s(float idx) {\n", in.Name)
			fmt.Fprintf(&b, "\tfloat row = floor((idx + 0.5) / gc_%s_dims.x);\n", in.Name)
			fmt.Fprintf(&b, "\tfloat col = idx - row * gc_%s_dims.x;\n", in.Name)
			fmt.Fprintf(&b, "\tvec2 st = vec2((col + 0.5) / gc_%s_dims.x, (row + 0.5) / gc_%s_dims.y);\n", in.Name, in.Name)
			fmt.Fprintf(&b, "\treturn %s(texture2D(gc_%s_tex, st));\n", decoderName(in.Fmt), in.Name)
			b.WriteString("}\n")
			// 2D fetch for matrix kernels.
			fmt.Fprintf(&b, "float gc_%s_at(float col, float row) {\n", in.Name)
			fmt.Fprintf(&b, "\tvec2 st = vec2((col + 0.5) / gc_%s_dims.x, (row + 0.5) / gc_%s_dims.y);\n", in.Name, in.Name)
			fmt.Fprintf(&b, "\treturn %s(texture2D(gc_%s_tex, st));\n", decoderName(in.Fmt), in.Name)
			b.WriteString("}\n\n")
		}
	}

	// Output bookkeeping and user uniforms.
	b.WriteString("uniform vec2 gc_out_dims;\n")
	b.WriteString("uniform float gc_out_n;\n")
	for _, u := range spec.Uniforms {
		fmt.Fprintf(&b, "uniform float %s;\n", u)
	}
	b.WriteString("varying vec2 v_uv;\n\n")

	// Output encoder.
	if spec.Lanes == 4 {
		b.WriteString(codec.GLSLEncoderInt8x4("gc_encode_out", codec.EncodeRobust))
	} else {
		b.WriteString(codec.GLSLEncoder(out.Type, "gc_encode_out", codec.EncodeRobust))
	}
	b.WriteString("\n")

	// User kernel source.
	b.WriteString(spec.Source)
	b.WriteString("\n")

	// Entry point: recover the linear output index from gl_FragCoord
	// (exact: fragment centres sit at half-integer window coordinates)
	// and dispatch to the per-output kernel function.
	fn := kernelFunctionName(spec, out)
	b.WriteString("void main() {\n")
	if spec.Lanes == 4 {
		// One fragment per output texel; scalar tail handling: when the
		// last texel carries fewer than 4 live elements (n%4 ≠ 0), the
		// dead lanes are masked to zero so the stored bytes stay
		// deterministic. The branch keeps full texels on a 4-op path.
		b.WriteString("\tfloat gc_tidx = floor(gl_FragCoord.y) * gc_out_dims.x + floor(gl_FragCoord.x);\n")
		fmt.Fprintf(&b, "\tvec4 gc_v = %s(gc_tidx);\n", fn)
		b.WriteString("\tfloat gc_base = gc_tidx * 4.0;\n")
		b.WriteString("\tif (gc_base + 3.5 > gc_out_n) {\n")
		b.WriteString("\t\tgc_v *= step(gc_base + vec4(0.5, 1.5, 2.5, 3.5), vec4(gc_out_n));\n")
		b.WriteString("\t}\n")
		b.WriteString("\tgl_FragColor = gc_encode_out(gc_v);\n")
	} else {
		b.WriteString("\tfloat gc_idx = floor(gl_FragCoord.y) * gc_out_dims.x + floor(gl_FragCoord.x);\n")
		fmt.Fprintf(&b, "\tgl_FragColor = gc_encode_out(%s(gc_idx));\n", fn)
	}
	b.WriteString("}\n")
	return b.String()
}

// kernelFunctionName returns the function main() calls for this output:
// gc_kernel for the default single output, gc_kernel_<name> otherwise.
func kernelFunctionName(spec KernelSpec, out OutputSpec) string {
	if len(spec.Outputs) == 1 && out.Name == "out" &&
		strings.Contains(spec.Source, "gc_kernel(") &&
		!strings.Contains(spec.Source, "gc_kernel_out(") {
		return "gc_kernel"
	}
	return "gc_kernel_" + out.Name
}

func decoderName(f codec.Format) string {
	switch f {
	case codec.FmtUint8:
		return "gc_decode_u8"
	case codec.FmtInt8:
		return "gc_decode_i8"
	case codec.FmtUint32:
		return "gc_decode_u32"
	case codec.FmtInt32:
		return "gc_decode_i32"
	case codec.FmtInt8x4:
		return "gc_decode4_i8x4"
	case codec.FmtFloat16x2:
		return "gc_decode2_f16x2"
	default:
		return "gc_decode_f32"
	}
}
