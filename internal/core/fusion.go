package core

import (
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"sync"
)

// fusion.go is the pipeline's automatic kernel-fusion planner (DESIGN.md
// §6d). When a pipeline compiles its stage graph, chains of fusable
// stages are merged into one generated fragment shader: the producer's
// gc_kernel is inlined in place of the consumer's gc_<input>(idx) fetch,
// so the intermediate array is never rendered, never packed into an RGBA8
// texture, and never unpacked again. Every fused edge deletes one draw's
// fixed costs AND one encode→texture→decode round trip — the "extra
// burden of packing and unpacking" the paper measures (A1: ~99% of kernel
// cycles on element-wise stages are codec work).
//
// Two join modes share one composition mechanism (see compile):
//
//   - element-wise: consumer B declares ElementWise and B's output
//     length equals producer A's, so A's function runs exactly once per
//     fragment (ReLU/Rescale epilogues after GEMM);
//   - inline-producer: B hinted the input with Pipeline.InlineInput,
//     trading caller-asserted recomputation for the deleted pass — every
//     fetch of the fused slot evaluates A's kernel at the fetched index,
//     with no length or access-pattern restriction (a non-overlapping
//     max-pool absorbing the GEMM that feeds it).
//
// Safety rules (all must hold to fuse consumer stage B into the group
// ending at producer stage A):
//
//  1. B has a single output and a single pass, and qualifies under one
//     of the two join modes above.
//  2. A's group can host: its base kernel declares FusableEpilogue or
//     ElementWise, and has a single output.
//  3. The slot A produces is read by exactly one stage (B) and is not
//     marked as a pipeline Output — both would force materialization.
//  4. B does not touch the fused slot's texture machinery
//     (gc_<in>_at / gc_<in>_dims), and A — which stops being the final
//     member — does not read raster state (v_uv, gl_FragCoord,
//     gc_out_dims) whose value depends on which pass it executes in.
//  5. Any member reading gc_out_n must have the chain's final output
//     length, or the uniform's value would change under fusion.
//
// Numerically, fusion is conservative by construction: int32 chains stay
// bit-identical to the unfused path (integer-valued floats below 2^24
// round-trip the codec exactly, so skipping the round trip changes
// nothing), and float32 chains get strictly closer to the infinite-
// precision result (each skipped round trip removes a ~15-mantissa-bit
// quantization) — "better" still means re-tolerancing differential tests
// that assumed the quantized value.

// EnvDisableFusion is the environment variable that, when set non-empty,
// disables automatic kernel fusion in every subsequently created
// Pipeline. CI uses it to exercise the unfused reference path so it
// cannot rot; SetFusion overrides it per pipeline.
const EnvDisableFusion = "GLESCOMPUTE_NO_FUSION"

// fusionEnvDisabled reports whether EnvDisableFusion suppresses fusion.
func fusionEnvDisabled() bool { return os.Getenv(EnvDisableFusion) != "" }

// EnvDisableVec4 is the environment variable that, when set non-empty,
// steers consumers that pick a lane width by default (nn.Model.Build)
// to the scalar lanes=1 lowering — the vec4 analogue of
// EnvDisableFusion, so CI can smoke the scalar path. Core itself never
// reads it when a caller asks for 4-wide kernels explicitly.
const EnvDisableVec4 = "GLESCOMPUTE_NO_VEC4"

// Vec4EnvDisabled reports whether EnvDisableVec4 suppresses the default
// 4-wide path.
func Vec4EnvDisabled() bool { return os.Getenv(EnvDisableVec4) != "" }

// uniBind maps one uniform of the fused program back to the member stage
// whose source it came from: at Run, the value is resolved exactly as the
// member's standalone pass would have resolved its original name (stage
// uniforms first, then run-level uniforms).
type uniBind struct {
	member  int    // builder stage index
	orig    string // uniform name in the member's spec
	renamed string // uniform name in the fused program
}

// execStage is one planned fragment pass (or multi-output pass group) of
// a compiled pipeline: a singleton builder stage, or a fused chain of
// them sharing one generated kernel.
type execStage struct {
	kernel   *Kernel
	ins      []Ref
	outs     []Ref
	members  []int     // builder stage indices, chain order
	label    string    // "conv1+relu1"
	uniBinds []uniBind // nil for singleton stages
}

// identRe caches word-boundary matchers for identifier renaming. GLSL
// identifiers are \w+, so \b<name>\b matches exactly the standalone
// occurrences (gc_x does not match inside gc_x_at: '_' is a word
// character, so there is no boundary after the x).
var (
	identReMu sync.Mutex
	identRe   = map[string]*regexp.Regexp{}
)

func identPattern(name string) *regexp.Regexp {
	identReMu.Lock()
	defer identReMu.Unlock()
	if re, ok := identRe[name]; ok {
		return re
	}
	re := regexp.MustCompile(`\b` + regexp.QuoteMeta(name) + `\b`)
	identRe[name] = re
	return re
}

// renameIdent replaces standalone occurrences of identifier from with to.
func renameIdent(src, from, to string) string {
	return identPattern(from).ReplaceAllString(src, to)
}

// mentionsIdent reports whether src uses the identifier.
func mentionsIdent(src, name string) bool {
	return identPattern(name).MatchString(src)
}

// readsRasterState reports whether a kernel source depends on values that
// change when the code runs in a different pass than its own: the varying,
// the fragment coordinate, or the output grid dimensions. Such a stage
// can only ever be the FINAL member of a fused chain (where the pass IS
// its own). gc_out_n is handled separately (group.outNRefs): it stays
// valid as long as the member's length equals the chain's final length.
func readsRasterState(src string) bool {
	return mentionsIdent(src, "v_uv") ||
		mentionsIdent(src, "gl_FragCoord") ||
		mentionsIdent(src, "gc_out_dims")
}

// fuseMember is one builder stage being composed into a fused kernel.
type fuseMember struct {
	spec       KernelSpec // normalized, single output
	stage      int        // builder stage index
	label      string
	ins        []Ref
	chainInput int                // input index fed by the previous member; -1 for the base
	uniforms   map[string]float32 // the stage's build-time fixed uniforms
}

// glslFloatLiteral renders a float32 as a GLSL ES 1.00 float literal
// (the grammar requires a decimal point or exponent), or "" when the
// value has no literal form (NaN/Inf).
func glslFloatLiteral(v float32) string {
	f := float64(v)
	if f != f || f > 3.5e38 || f < -3.5e38 {
		return ""
	}
	s := strconv.FormatFloat(f, 'g', -1, 32)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// composeFusedSpec assembles the fused kernel specification for a chain
// of members: each member's source is emitted with its kernel function,
// accessors and uniforms renamed into a private namespace, the chain
// input's accessor rebound to the previous member's kernel function, and
// a trailing gc_kernel dispatching to the last member. External inputs
// are deduplicated by slot, so a weight array read by two members binds
// one texture unit.
func composeFusedSpec(members []fuseMember) (KernelSpec, []uniBind, []Ref, error) {
	var (
		spec     KernelSpec
		binds    []uniBind
		extSlots []Ref
		src      strings.Builder
		slotPar  = map[Ref]string{}
		allEW    = true
	)
	lanes := members[0].spec.Lanes
	for j, m := range members {
		if len(m.spec.Outputs) != 1 {
			return spec, nil, nil, fmt.Errorf("core: fuse: member %q has %d outputs", m.label, len(m.spec.Outputs))
		}
		if m.spec.Lanes != lanes {
			return spec, nil, nil, fmt.Errorf("core: fuse: member %q is %d-wide in a %d-wide chain", m.label, m.spec.Lanes, lanes)
		}
		if !m.spec.ElementWise {
			allEW = false
		}
		body := m.spec.Source
		fn := kernelFunctionName(m.spec, m.spec.Outputs[0])
		body = renameIdent(body, fn, fmt.Sprintf("gc_fk%d", j))
		for i, in := range m.spec.Inputs {
			if i == m.chainInput {
				if mentionsIdent(body, "gc_"+in.Name+"_at") || mentionsIdent(body, "gc_"+in.Name+"_dims") {
					return spec, nil, nil, fmt.Errorf("core: fuse: member %q reads texture machinery of fused input %q", m.label, in.Name)
				}
				if lanes == 4 {
					// 4-wide chains compose through the whole-texel
					// accessor: gc_<in>4(tidx) becomes the previous
					// member's vec4 kernel function. The scalar
					// lane-select accessor has no fused counterpart —
					// serving it would recompute the producer's full
					// vec4 per lane — so its use blocks the fusion.
					body = renameIdent(body, "gc_"+in.Name+"4", fmt.Sprintf("gc_fk%d", j-1))
					if mentionsIdent(body, "gc_"+in.Name) {
						return spec, nil, nil, fmt.Errorf("core: fuse: member %q reads fused 4-wide input %q through the scalar accessor", m.label, in.Name)
					}
				} else {
					body = renameIdent(body, "gc_"+in.Name, fmt.Sprintf("gc_fk%d", j-1))
				}
				continue
			}
			slot := m.ins[i]
			pname, ok := slotPar[slot]
			if !ok {
				pname = fmt.Sprintf("fin%d", len(spec.Inputs))
				slotPar[slot] = pname
				spec.Inputs = append(spec.Inputs, Param{Name: pname, Type: in.Type, Fmt: in.Fmt})
				extSlots = append(extSlots, slot)
			}
			body = renameIdent(body, "gc_"+in.Name+"_at", "gc_"+pname+"_at")
			body = renameIdent(body, "gc_"+in.Name+"_dims", "gc_"+pname+"_dims")
			body = renameIdent(body, "gc_"+in.Name+"4", "gc_"+pname+"4")
			body = renameIdent(body, "gc_"+in.Name, "gc_"+pname)
		}
		for _, u := range m.spec.Uniforms {
			// Stage-fixed uniforms fold into literals: their value can
			// never change at Run (stage uniforms override run-level
			// ones), and every folded uniform is one less vector against
			// the device's tight fragment-uniform budget — a fused
			// GEMM+ReLU+pool chain would otherwise blow the ES 2.0
			// 16-vector minimum its members individually fit in.
			if v, ok := m.uniforms[u]; ok {
				if lit := glslFloatLiteral(v); lit != "" {
					body = renameIdent(body, u, "("+lit+")")
					continue
				}
			}
			renamed := fmt.Sprintf("fu%d_%s", j, u)
			body = renameIdent(body, u, renamed)
			spec.Uniforms = append(spec.Uniforms, renamed)
			binds = append(binds, uniBind{member: m.stage, orig: u, renamed: renamed})
		}
		fmt.Fprintf(&src, "// ---- fused member %d: %s ----\n%s\n", j, m.label, body)
	}
	if lanes == 4 {
		fmt.Fprintf(&src, "vec4 gc_kernel(float tidx) { return gc_fk%d(tidx); }\n", len(members)-1)
	} else {
		fmt.Fprintf(&src, "float gc_kernel(float idx) { return gc_fk%d(idx); }\n", len(members)-1)
	}

	labels := make([]string, len(members))
	for j, m := range members {
		labels[j] = m.label
	}
	base := members[0].spec
	last := members[len(members)-1].spec.Outputs[0]
	spec.Name = strings.Join(labels, "+")
	spec.Outputs = []OutputSpec{{Name: "out", Type: last.Type, Fmt: last.Fmt}}
	spec.Lanes = lanes
	spec.Source = src.String()
	spec.ElementWise = allEW
	spec.FusableEpilogue = base.FusableEpilogue || base.ElementWise
	return spec, binds, extSlots, nil
}

// plan is a compiled pipeline execution schedule.
type plan struct {
	exec        []execStage
	fusedStages int // builder stages merged into a predecessor's pass
	fallbacks   int // fused groups whose generated shader failed to build
}

// compile freezes the pipeline's stage graph into an execution plan,
// fusing eligible chains when fusion is enabled. Called once, on the
// first Run; the plan is reused by every subsequent Run. A fused group
// whose generated shader fails to compile falls back to running its
// members unfused (counted in PipelineStats.FusionFallbacks) — fusion is
// an optimization, never a new failure mode.
func (p *Pipeline) compile() error {
	if p.plan != nil {
		return nil
	}

	// Producer stage and consumer count per slot.
	producer := make([]int, len(p.slots))
	consumers := make([]int, len(p.slots))
	for i := range producer {
		producer[i] = -1
	}
	for si, st := range p.stages {
		for _, r := range st.outs {
			producer[r] = si
		}
		for _, r := range st.ins {
			consumers[r]++
		}
	}

	// Group formation: walk stages in order; each stage either starts its
	// own group or appends to the group whose tail produces one of its
	// inputs (the chain input). Two join modes share the machinery:
	//
	//   element-wise — the consumer declares ElementWise and its output
	//   length matches the producer's, so the producer's function is
	//   evaluated exactly once per fragment;
	//
	//   inline-producer — the consumer hinted the input with InlineInput,
	//   trading (bounded, caller-asserted) recomputation for the deleted
	//   pass: every fetch of the fused slot evaluates the producer's
	//   kernel at the fetched index, with no length or access-pattern
	//   restriction. Members of such a group must not read gc_out_n
	//   (lengths differ across members there).
	type group struct {
		members    []int // builder stage indices
		chainParam []int // per member: which input is the chain (-1 base)
		tail       int   // last member's builder index
		outSlot    Ref   // the group's external output slot
		// outNRefs holds the output length of every member whose source
		// mentions gc_out_n: in the fused pass that uniform carries the
		// FINAL member's length, so such a member is only correct while
		// its own length equals the chain's final length.
		outNRefs []int
	}
	var groups []*group
	groupOf := make([]*group, len(p.stages))
	hostable := func(g *group) bool {
		base := p.stages[g.members[0]].kernel.spec
		return (base.FusableEpilogue || base.ElementWise) && len(p.stages[g.members[0]].outs) == 1
	}
	for si := range p.stages {
		st := &p.stages[si]
		var joined *group
		fusableShape := p.fusion && len(st.outs) == 1 && len(st.kernel.passes) == 1
		inlineHint := func(i int) bool {
			for _, h := range st.inline {
				if h == i {
					return true
				}
			}
			return false
		}
		if fusableShape {
			for i, r := range st.ins {
				if producer[r] < 0 || consumers[r] != 1 || p.slots[r].outputIdx >= 0 {
					continue
				}
				g := groupOf[producer[r]]
				if g.outSlot != r || !hostable(g) {
					continue
				}
				tailSrc := p.stages[g.tail].kernel.spec.Source
				outN := p.slots[st.outs[0]].n
				ewJoin := st.kernel.spec.ElementWise && p.slots[r].n == outN
				if !ewJoin && !inlineHint(i) {
					continue
				}
				// Lane widths must agree across a fused edge: a scalar
				// consumer expects `float f(idx)` where a 4-wide producer
				// defines `vec4 f(tidx)` (and vice versa) — the value
				// crossing the edge changes shape. Cross-width chains
				// materialize the slot; Device.BuildRepackKernel converts
				// it in an explicit (never-fused) pass.
				if st.kernel.spec.Lanes != p.stages[g.tail].kernel.spec.Lanes {
					continue
				}
				// Every member that reads gc_out_n must have the chain's
				// (new) final length, or its value changes under fusion.
				outNOK := true
				for _, n := range g.outNRefs {
					if n != outN {
						outNOK = false
					}
				}
				if !outNOK {
					continue
				}
				// The current tail stops being the chain's final member:
				// it must not read per-pass raster state, and the
				// consumer must not touch the fused slot's texture
				// machinery (re-checked by composeFusedSpec).
				if readsRasterState(tailSrc) {
					continue
				}
				inName := st.kernel.spec.Inputs[i].Name
				csrc := st.kernel.spec.Source
				if mentionsIdent(csrc, "gc_"+inName+"_at") || mentionsIdent(csrc, "gc_"+inName+"_dims") {
					continue
				}
				g.members = append(g.members, si)
				g.chainParam = append(g.chainParam, i)
				g.tail = si
				g.outSlot = st.outs[0]
				if mentionsIdent(csrc, "gc_out_n") {
					g.outNRefs = append(g.outNRefs, outN)
				}
				joined = g
				break
			}
		}
		if joined == nil {
			joined = &group{members: []int{si}, chainParam: []int{-1}, tail: si}
			if len(st.outs) == 1 {
				joined.outSlot = st.outs[0]
				if mentionsIdent(st.kernel.spec.Source, "gc_out_n") {
					joined.outNRefs = append(joined.outNRefs, p.slots[st.outs[0]].n)
				}
			} else {
				joined.outSlot = Ref(-1)
			}
			groups = append(groups, joined)
		}
		groupOf[si] = joined
	}

	// Lower groups to exec stages. Groups execute in tail order; since a
	// slot consumed outside its group is always produced by that group's
	// tail, and builder order is topological, tail order is topological
	// too. Group tails are strictly increasing in the builder order by
	// construction (a group's tail only ever advances to the stage being
	// appended), so emitting in builder-tail order is a stable sort.
	pl := &plan{}
	emit := func(si int) {
		st := &p.stages[si]
		pl.exec = append(pl.exec, execStage{
			kernel:  st.kernel,
			ins:     st.ins,
			outs:    st.outs,
			members: []int{si},
			label:   st.label,
		})
	}
	ordered := make([]*group, len(groups))
	copy(ordered, groups)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j-1].tail > ordered[j].tail; j-- {
			ordered[j-1], ordered[j] = ordered[j], ordered[j-1]
		}
	}
	for _, g := range ordered {
		if len(g.members) == 1 {
			emit(g.members[0])
			continue
		}
		members := make([]fuseMember, len(g.members))
		for j, si := range g.members {
			st := &p.stages[si]
			members[j] = fuseMember{
				spec:       st.kernel.spec,
				stage:      si,
				label:      st.label,
				ins:        st.ins,
				chainInput: g.chainParam[j],
				uniforms:   st.uniforms,
			}
		}
		spec, binds, extSlots, err := composeFusedSpec(members)
		var k *Kernel
		if err == nil {
			k, err = p.dev.BuildKernelCached(spec)
		}
		if err != nil {
			// Fall back to the unfused members; fusion must never turn a
			// valid pipeline into a broken one.
			pl.fallbacks++
			for _, si := range g.members {
				emit(si)
			}
			continue
		}
		tail := &p.stages[g.tail]
		pl.exec = append(pl.exec, execStage{
			kernel:   k,
			ins:      extSlots,
			outs:     tail.outs,
			members:  append([]int(nil), g.members...),
			label:    spec.Name,
			uniBinds: binds,
		})
		pl.fusedStages += len(g.members) - 1
		// Slots eliminated by the fusion never materialize: mark them so
		// Run's binding loop can assert it never touches one.
		for _, si := range g.members[:len(g.members)-1] {
			for _, r := range p.stages[si].outs {
				p.slots[r].fusedAway = true
			}
		}
	}

	// Re-derive last-use positions in exec-plan space (the builder filled
	// them in stage space; fusion reorders and deletes reads).
	for i := range p.slots {
		p.slots[i].lastUse = -1
	}
	for ei := range pl.exec {
		for _, r := range pl.exec[ei].ins {
			p.slots[r].lastUse = ei
		}
	}
	p.plan = pl
	return nil
}

// resolveFusedUniforms builds the uniform map a fused pass binds: every
// renamed uniform takes the value its member's standalone pass would have
// used — the member's build-time stage uniforms first, then the run-level
// map.
func (p *Pipeline) resolveFusedUniforms(es *execStage, runUniforms map[string]float32) (map[string]float32, error) {
	merged := make(map[string]float32, len(es.uniBinds))
	for _, b := range es.uniBinds {
		if v, ok := p.stages[b.member].uniforms[b.orig]; ok {
			merged[b.renamed] = v
			continue
		}
		if v, ok := runUniforms[b.orig]; ok {
			merged[b.renamed] = v
			continue
		}
		return nil, fmt.Errorf("core: pipeline: fused stage %q: uniform %q not supplied", es.label, b.orig)
	}
	return merged, nil
}
