package core

import (
	"fmt"
	"strings"
	"sync"

	"glescompute/internal/codec"
	"glescompute/internal/gles"
)

// Param describes one kernel input buffer. Fmt selects the texel format;
// the zero value (codec.FmtAuto) means the scalar format of Type, so specs
// that only name an element type are unchanged. A packed input additionally
// provides a whole-texel accessor to the kernel source (see KernelSpec).
type Param struct {
	Name string
	Type codec.ElemType
	Fmt  codec.Format
}

// OutputSpec describes one kernel output. A kernel with multiple outputs
// is compiled into one fragment-shader pass per output (challenge #8: a
// fragment shader has a single color output in ES 2.0). Fmt follows the
// same FmtAuto convention as Param; output formats are restricted to 1- or
// 4-lane (codec.FmtFloat16x2 is storage-side only).
type OutputSpec struct {
	Name string
	Type codec.ElemType
	Fmt  codec.Format
}

// KernelSpec declares a compute kernel. Source is GLSL ES 1.00 code that
// must define, for every output O, a function
//
//	float gc_kernel_<O>(float idx)
//
// (or a single `float gc_kernel(float idx)` when there is exactly one
// output named "out"). Inside the source, each input buffer I provides:
//
//	float gc_<I>(float idx)          — linear-indexed element fetch
//	float gc_<I>_at(float col, float row) — 2D element fetch
//	uniform vec2 gc_<I>_dims         — its texture dimensions
//
// plus `uniform float gc_out_n` (output element count), the varying
// `v_uv` (normalized position over the output grid) and any uniforms
// declared in Uniforms.
//
// Packed 4-lane inputs (Fmt codec.FmtInt8x4) additionally provide
//
//	vec4 gc_<I>4(float tidx)         — whole-texel fetch (4 lanes, texel index)
//
// and the scalar gc_<I>(idx) accessor selects the lane of texel idx/4.
// Float16x2 inputs provide the scalar accessor only.
//
// A kernel with Lanes == 4 (equivalently, a 4-lane output format) computes
// four consecutive elements per fragment: its kernel function takes the
// OUTPUT TEXEL index and returns all four lanes,
//
//	vec4 gc_kernel(float tidx)
//
// with logical base index tidx*4. Generated main() masks lanes at or past
// gc_out_n to zero, so tails (n%4 ≠ 0) store deterministic bytes.
type KernelSpec struct {
	Name     string
	Inputs   []Param
	Outputs  []OutputSpec
	Uniforms []string // names of user float uniforms
	Source   string

	// Lanes declares the output lane width (values computed per fragment).
	// 0 derives it from the output format: scalar outputs → 1, Int8x4 → 4.
	// A non-zero Lanes must agree with every output's format; it is part of
	// CacheKey, so 1- and 4-wide variants of one source never collide.
	Lanes int

	// ElementWise declares fusion safety (DESIGN.md §6d): the kernel has a
	// single output whose element i depends only on its inputs at linear
	// index i — every gc_<in>() call passes the kernel's own idx unchanged
	// — and whose length always equals every input's length. Pipeline's
	// fusion planner may merge such a stage into the fragment pass of the
	// stage producing its input, skipping the intermediate texture and its
	// encode/decode round trip. Declaring this on a kernel that reads
	// neighbours (gather), folds (reduce), or uses gc_<in>_at/_dims breaks
	// the fused/unfused equivalence guarantee.
	ElementWise bool

	// FusableEpilogue declares that this kernel's body may be inlined into
	// a consumer's fragment pass as the head of a fused chain: the kernel
	// is a pure function of its output index (true for every gc_kernel, it
	// only opts in to the planner considering it) with a single output.
	// GEMM, convolution and pooling kernels set it so element-wise
	// epilogues (ReLU, requantization, bias/scale) fuse into their pass.
	FusableEpilogue bool
}

// normalized returns the spec with defaults applied: outputs default to a
// single float32 "out", FmtAuto resolves to the scalar format of the
// declared element type (and an explicit format overrides the type), and
// Lanes derives from the first output's format.
func (s KernelSpec) normalized() KernelSpec {
	if len(s.Outputs) == 0 {
		s.Outputs = []OutputSpec{{Name: "out", Type: codec.Float32}}
	}
	if s.Name == "" {
		s.Name = "kernel"
	}
	ins := make([]Param, len(s.Inputs))
	for i, in := range s.Inputs {
		in.Fmt = in.Fmt.Resolve(in.Type)
		in.Type = in.Fmt.Elem()
		ins[i] = in
	}
	s.Inputs = ins
	outs := make([]OutputSpec, len(s.Outputs))
	for i, out := range s.Outputs {
		out.Fmt = out.Fmt.Resolve(out.Type)
		out.Type = out.Fmt.Elem()
		outs[i] = out
	}
	s.Outputs = outs
	if s.Lanes == 0 {
		s.Lanes = s.Outputs[0].Fmt.Lanes()
	}
	return s
}

// validate rejects lane-width declarations the codegen cannot honour.
// Called on a normalized spec.
func (s KernelSpec) validate() error {
	if s.Lanes != 1 && s.Lanes != 4 {
		return fmt.Errorf("core: kernel %q: output lane width %d unsupported (1 or 4)", s.Name, s.Lanes)
	}
	for _, out := range s.Outputs {
		if out.Fmt == codec.FmtFloat16x2 {
			return fmt.Errorf("core: kernel %q: output %q: float16x2 is a storage format, not a render target", s.Name, out.Name)
		}
		if out.Fmt.Lanes() != s.Lanes {
			return fmt.Errorf("core: kernel %q: output %q format %s is %d-lane but kernel declares Lanes=%d",
				s.Name, out.Name, out.Fmt, out.Fmt.Lanes(), s.Lanes)
		}
	}
	return nil
}

// CacheKey returns a canonical content key for the spec: two specs with
// the same key compile to identical programs. BuildKernelCached uses it
// for the per-device compile-once cache; the scheduler additionally keys
// request batches on it, so this sits on the per-submission hot path and
// avoids fmt.
func (s KernelSpec) CacheKey() string {
	s = s.normalized()
	var b strings.Builder
	b.Grow(len(s.Name) + len(s.Source) + 16*(len(s.Inputs)+len(s.Outputs)+len(s.Uniforms)) + 4)
	b.WriteString(s.Name)
	b.WriteByte(0)
	b.WriteString(s.Source)
	b.WriteByte(0)
	for _, in := range s.Inputs {
		b.WriteString("i:")
		b.WriteString(in.Name)
		b.WriteByte(':')
		b.WriteByte(byte('0' + int(in.Type)))
		b.WriteByte(byte('a' + int(in.Fmt)))
		b.WriteByte(0)
	}
	for _, out := range s.Outputs {
		b.WriteString("o:")
		b.WriteString(out.Name)
		b.WriteByte(':')
		b.WriteByte(byte('0' + int(out.Type)))
		b.WriteByte(byte('a' + int(out.Fmt)))
		b.WriteByte(0)
	}
	// The lane width changes the generated main() and accessors even when
	// formats alone would not (defensive: today they always do).
	b.WriteString("l:")
	b.WriteByte(byte('0' + s.Lanes))
	for _, u := range s.Uniforms {
		b.WriteString("u:")
		b.WriteString(u)
		b.WriteByte(0)
	}
	// Fusion metadata is part of the content key: the planner reads these
	// flags back off cached kernels, so a fused-safe and a fused-unsafe
	// spec that happen to share source must not collide in the cache.
	b.WriteString("f:")
	b.WriteByte(flagByte(s.ElementWise))
	b.WriteByte(flagByte(s.FusableEpilogue))
	return b.String()
}

func flagByte(v bool) byte {
	if v {
		return '1'
	}
	return '0'
}

// kernelPass is one compiled shader pass producing one output.
type kernelPass struct {
	out     OutputSpec
	prog    uint32
	vs, fs  uint32 // shader objects, deleted by Close
	posLoc  int
	uvLoc   int
	samLocs []int // sampler uniform per input
	dimLocs []int // dims uniform per input
	outDims int
	outN    int
	userLoc map[string]int
}

// Kernel is a compiled compute kernel (one GL program per output pass).
//
// A Kernel is driven from its device's goroutine like every other device
// object, with one concession to service shutdown: Close may race a Run
// from another goroutine — the two serialize on an internal mutex, so the
// loser of the race sees either a completed Run or ErrClosed, never a
// draw against deleted programs.
type Kernel struct {
	dev    *Device
	spec   KernelSpec
	passes []kernelPass

	mu     sync.Mutex // serializes Close against Run
	closed bool
}

// isClosed reports the closed flag under the lifecycle lock.
func (k *Kernel) isClosed() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.closed
}

// BuildKernel compiles a kernel specification into executable passes.
func (d *Device) BuildKernel(spec KernelSpec) (*Kernel, error) {
	if err := d.checkOpen("BuildKernel"); err != nil {
		return nil, err
	}
	spec = spec.normalized()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	k := &Kernel{dev: d, spec: spec}
	for _, out := range spec.Outputs {
		fsSrc := generateFragmentShader(spec, out)
		prog, vs, fs, err := d.buildProgram(passVertexShader, fsSrc)
		if err != nil {
			k.Close() // release the passes already built for earlier outputs
			return nil, fmt.Errorf("core: kernel %q output %q: %w", spec.Name, out.Name, err)
		}
		ctx := d.ctx
		pass := kernelPass{
			out:     out,
			prog:    prog,
			vs:      vs,
			fs:      fs,
			posLoc:  ctx.GetAttribLocation(prog, "a_position"),
			uvLoc:   ctx.GetAttribLocation(prog, "a_texcoord"),
			outDims: ctx.GetUniformLocation(prog, "gc_out_dims"),
			outN:    ctx.GetUniformLocation(prog, "gc_out_n"),
			userLoc: map[string]int{},
		}
		for _, in := range spec.Inputs {
			pass.samLocs = append(pass.samLocs, ctx.GetUniformLocation(prog, "gc_"+in.Name+"_tex"))
			pass.dimLocs = append(pass.dimLocs, ctx.GetUniformLocation(prog, "gc_"+in.Name+"_dims"))
		}
		for _, u := range spec.Uniforms {
			pass.userLoc[u] = ctx.GetUniformLocation(prog, u)
		}
		k.passes = append(k.passes, pass)
	}
	return k, nil
}

// BuildKernelCached compiles the spec at most once per device: repeated
// calls with content-identical specs (see KernelSpec.CacheKey) return the
// same *Kernel. Cached kernels are owned by the device and closed by
// Device.Close; callers should not Close them individually (doing so is
// safe — the cache lazily recompiles).
func (d *Device) BuildKernelCached(spec KernelSpec) (*Kernel, error) {
	if err := d.checkOpen("BuildKernelCached"); err != nil {
		return nil, err
	}
	key := spec.CacheKey()
	if k, ok := d.kernelCache[key]; ok && !k.isClosed() {
		return k, nil
	}
	k, err := d.BuildKernel(spec)
	if err != nil {
		return nil, err
	}
	if d.kernelCache == nil {
		d.kernelCache = map[string]*Kernel{}
	}
	d.kernelCache[key] = k
	return k, nil
}

// Close deletes the kernel's GL programs and shaders. A closed kernel's
// Run returns ErrClosed. Closing after the owning device has closed is a
// no-op (the context's objects are already gone); Close is idempotent and
// may race a concurrent Run (they serialize; see the Kernel doc).
func (k *Kernel) Close() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return nil
	}
	k.closed = true
	if k.dev.closed {
		return nil
	}
	for i := range k.passes {
		p := &k.passes[i]
		k.dev.ctx.DeleteProgram(p.prog)
		k.dev.ctx.DeleteShader(p.vs)
		k.dev.ctx.DeleteShader(p.fs)
	}
	return nil
}

// passVertexShader is the pass-through vertex shader of challenge #1: the
// mobile API forces the vertex stage to be programmed even though compute
// needs no transformation — it only forwards the varying.
const passVertexShader = `
attribute vec2 a_position;
attribute vec2 a_texcoord;
varying vec2 v_uv;
void main() {
	v_uv = a_texcoord;
	gl_Position = vec4(a_position, 0.0, 1.0);
}
`

// buildProgram compiles and links a VS/FS pair into a GL program; the
// shader object ids are returned so owners can delete them on Close.
//
// When the device has a compile cache, the program binary path is tried
// first: a hit restores pre-compiled bytecode (priced at 200 µs under the
// vc4 model) instead of compiling and linking from source (~10 ms). A
// restored program has no shader objects — vs and fs come back 0, which
// DeleteShader ignores. A blob that fails to restore (corruption that
// passed the disk checksum, a format version skew) is dropped from the
// cache and the build falls back to a normal source compile.
func (d *Device) buildProgram(vsSrc, fsSrc string) (prog, vs, fs uint32, err error) {
	ctx := d.ctx
	var cacheKey string
	if d.ccache != nil {
		cacheKey = programKey(vsSrc, fsSrc)
		if blob := d.ccache.get(cacheKey); blob != nil {
			prog = ctx.CreateProgram()
			ctx.ProgramBinary(prog, blob)
			if ctx.GetProgramiv(prog, gles.LINK_STATUS) == 1 {
				return prog, 0, 0, nil
			}
			d.ccache.drop(cacheKey)
			ctx.DeleteProgram(prog)
			for ctx.GetError() != gles.NO_ERROR {
				// drain the restore failure so it cannot surface against a
				// later, innocent call
			}
		}
	}
	vs = ctx.CreateShader(gles.VERTEX_SHADER)
	ctx.ShaderSource(vs, vsSrc)
	ctx.CompileShader(vs)
	if ctx.GetShaderiv(vs, gles.COMPILE_STATUS) != 1 {
		err = fmt.Errorf("vertex shader: %s", ctx.GetShaderInfoLog(vs))
		ctx.DeleteShader(vs)
		return 0, 0, 0, err
	}
	fs = ctx.CreateShader(gles.FRAGMENT_SHADER)
	ctx.ShaderSource(fs, fsSrc)
	ctx.CompileShader(fs)
	if ctx.GetShaderiv(fs, gles.COMPILE_STATUS) != 1 {
		err = fmt.Errorf("fragment shader: %s\n--- generated source ---\n%s", ctx.GetShaderInfoLog(fs), fsSrc)
		ctx.DeleteShader(vs)
		ctx.DeleteShader(fs)
		return 0, 0, 0, err
	}
	prog = ctx.CreateProgram()
	ctx.AttachShader(prog, vs)
	ctx.AttachShader(prog, fs)
	ctx.LinkProgram(prog)
	if ctx.GetProgramiv(prog, gles.LINK_STATUS) != 1 {
		err = fmt.Errorf("link: %s", ctx.GetProgramInfoLog(prog))
		ctx.DeleteProgram(prog)
		ctx.DeleteShader(vs)
		ctx.DeleteShader(fs)
		return 0, 0, 0, err
	}
	if cacheKey != "" {
		if blob := ctx.GetProgramBinary(prog); blob != nil {
			d.ccache.put(cacheKey, blob)
		}
	}
	return prog, vs, fs, nil
}

// RunStats reports one kernel execution.
type RunStats struct {
	Draw gles.DrawStats
}

// glStateGuard snapshots the context state a compute pass clobbers —
// framebuffer/program/active-texture bindings, the viewport, the 2D
// texture bindings of the units the pass uses, and the vertex attribute
// arrays carrying the fullscreen quad — so kernel runs can interleave
// with raw dev.GL() rendering without leaking state into the application.
type glStateGuard struct {
	dev      *Device
	fbo      uint32
	prog     uint32
	active   uint32
	viewport [4]int
	units    []uint32 // TEXTURE_BINDING_2D of units 0..len-1
	attribs  map[int]gles.VertexAttribSnapshot
}

// saveGLState captures the state that binding nUnits texture units and
// the given attribute locations would overwrite.
func (d *Device) saveGLState(nUnits int, attribLocs ...int) *glStateGuard {
	ctx := d.ctx
	g := &glStateGuard{
		dev:     d,
		fbo:     uint32(ctx.GetIntegerv(gles.FRAMEBUFFER_BINDING)[0]),
		prog:    uint32(ctx.GetIntegerv(gles.CURRENT_PROGRAM)[0]),
		active:  uint32(ctx.GetIntegerv(gles.ACTIVE_TEXTURE)[0]),
		attribs: map[int]gles.VertexAttribSnapshot{},
	}
	copy(g.viewport[:], ctx.GetIntegerv(gles.VIEWPORT))
	for u := 0; u < nUnits; u++ {
		ctx.ActiveTexture(uint32(gles.TEXTURE0 + u))
		g.units = append(g.units, uint32(ctx.GetIntegerv(gles.TEXTURE_BINDING_2D)[0]))
	}
	for _, loc := range attribLocs {
		if loc < 0 {
			continue
		}
		if s, ok := ctx.GetVertexAttrib(loc); ok {
			g.attribs[loc] = s
		}
	}
	return g
}

// restore reinstates the captured state; call via defer so error paths
// restore too.
func (g *glStateGuard) restore() {
	ctx := g.dev.ctx
	for u, tex := range g.units {
		ctx.ActiveTexture(uint32(gles.TEXTURE0 + u))
		ctx.BindTexture(gles.TEXTURE_2D, tex)
	}
	for loc, s := range g.attribs {
		ctx.RestoreVertexAttrib(loc, s)
	}
	ctx.ActiveTexture(g.active)
	ctx.UseProgram(g.prog)
	ctx.BindFramebuffer(gles.FRAMEBUFFER, g.fbo)
	ctx.Viewport(g.viewport[0], g.viewport[1], g.viewport[2], g.viewport[3])
}

// checkOutputAliasing rejects an output buffer that is also bound as an
// input: rendering into a texture being sampled is undefined GL (the
// hazard Pipeline's pool resolves automatically with a copy or swap).
func checkOutputAliasing(kernel string, out *Buffer, outName string, ins []*Buffer, inputs []Param) error {
	for i, in := range ins {
		if in.tex == out.tex {
			return fmt.Errorf("core: kernel %q: output %q aliases input %q (INVALID_OPERATION: sampling a texture while rendering into it is undefined; use Pipeline or a copy)",
				kernel, outName, inputs[i].Name)
		}
	}
	return nil
}

// Run executes the kernel: one draw pass per output. outs[i] receives
// output i of the spec; ins[i] feeds input i. uniforms supplies the user
// uniforms by name.
func (k *Kernel) Run(outs []*Buffer, ins []*Buffer, uniforms map[string]float32) (RunStats, error) {
	var stats RunStats
	k.mu.Lock()
	defer k.mu.Unlock()
	if err := k.dev.checkOpen("Kernel.Run"); err != nil {
		return stats, err
	}
	if k.closed {
		return stats, fmt.Errorf("core: kernel %q: Run: %w", k.spec.Name, ErrClosed)
	}
	if len(outs) != len(k.passes) {
		return stats, fmt.Errorf("core: kernel %q has %d outputs, got %d buffers", k.spec.Name, len(k.passes), len(outs))
	}
	if len(ins) != len(k.spec.Inputs) {
		return stats, fmt.Errorf("core: kernel %q has %d inputs, got %d buffers", k.spec.Name, len(k.spec.Inputs), len(ins))
	}
	for i, in := range k.spec.Inputs {
		if ins[i].fmt != in.Fmt {
			return stats, fmt.Errorf("core: input %q expects %s, buffer holds %s", in.Name, in.Fmt, ins[i].fmt)
		}
	}
	for pi := range k.passes {
		if err := checkOutputAliasing(k.spec.Name, outs[pi], k.passes[pi].out.Name, ins, k.spec.Inputs); err != nil {
			return stats, err
		}
		for pj := pi + 1; pj < len(k.passes); pj++ {
			if outs[pi].tex == outs[pj].tex {
				return stats, fmt.Errorf("core: kernel %q: outputs %q and %q share a buffer (the later pass would overwrite the earlier)",
					k.spec.Name, k.passes[pi].out.Name, k.passes[pj].out.Name)
			}
		}
	}
	ctx := k.dev.ctx
	attribLocs := make([]int, 0, 2*len(k.passes))
	for pi := range k.passes {
		attribLocs = append(attribLocs, k.passes[pi].posLoc, k.passes[pi].uvLoc)
	}
	guard := k.dev.saveGLState(len(ins), attribLocs...)
	defer guard.restore()
	for pi := range k.passes {
		pass := &k.passes[pi]
		out := outs[pi]
		if out.fmt != pass.out.Fmt {
			return stats, fmt.Errorf("core: output %q expects %s, buffer holds %s", pass.out.Name, pass.out.Fmt, out.fmt)
		}
		fbo, err := out.ensureFBO()
		if err != nil {
			return stats, err
		}
		ctx.BindFramebuffer(gles.FRAMEBUFFER, fbo)
		ctx.Viewport(0, 0, out.grid.Width, out.grid.Height)
		ctx.UseProgram(pass.prog)

		// Bind inputs to texture units 0..n-1.
		for i := range ins {
			ctx.ActiveTexture(uint32(gles.TEXTURE0 + i))
			ctx.BindTexture(gles.TEXTURE_2D, ins[i].tex)
			ctx.Uniform1i(pass.samLocs[i], int32(i))
			ctx.Uniform2f(pass.dimLocs[i], float32(ins[i].grid.Width), float32(ins[i].grid.Height))
		}
		ctx.Uniform2f(pass.outDims, float32(out.grid.Width), float32(out.grid.Height))
		if pass.outN >= 0 {
			ctx.Uniform1f(pass.outN, float32(out.n))
		}
		for name, loc := range pass.userLoc {
			if loc < 0 {
				continue
			}
			v, ok := uniforms[name]
			if !ok {
				return stats, fmt.Errorf("core: kernel %q: uniform %q not supplied", k.spec.Name, name)
			}
			ctx.Uniform1f(loc, v)
		}

		// Fullscreen quad from two triangles (challenge #2).
		ctx.EnableVertexAttribArray(pass.posLoc)
		ctx.VertexAttribPointerClient(pass.posLoc, 2, gles.FLOAT, false, 16, k.dev.quadPos)
		if pass.uvLoc >= 0 {
			ctx.EnableVertexAttribArray(pass.uvLoc)
			ctx.VertexAttribPointerClient(pass.uvLoc, 2, gles.FLOAT, false, 16, k.dev.quadUV)
		}
		ctx.DrawArrays(gles.TRIANGLES, 0, 6)
		if err := k.dev.checkGL("Run draw"); err != nil {
			return stats, err
		}
		d := ctx.LastDraw()
		stats.Draw.Add(&d)
	}
	return stats, nil
}

// Run1 is a convenience for single-output kernels.
func (k *Kernel) Run1(out *Buffer, ins []*Buffer, uniforms map[string]float32) (RunStats, error) {
	return k.Run([]*Buffer{out}, ins, uniforms)
}

// Copy byte-copies src into dst through a pass-through fragment shader —
// the paper's challenge #7 "first way": when the texture to read is not
// already the framebuffer attachment, a trivial copy pass moves it there.
// Both buffers must have identical grids and element types.
func (d *Device) Copy(dst, src *Buffer) error {
	if err := d.checkOpen("Copy"); err != nil {
		return err
	}
	if dst.grid != src.grid {
		return fmt.Errorf("core: Copy: grid mismatch %v vs %v", dst.grid, src.grid)
	}
	if dst.fmt != src.fmt {
		return fmt.Errorf("core: Copy: format mismatch %s vs %s", dst.fmt, src.fmt)
	}
	if dst.tex == src.tex {
		return fmt.Errorf("core: Copy: dst aliases src (INVALID_OPERATION: sampling a texture while rendering into it is undefined)")
	}
	prog, err := d.copyProgram()
	if err != nil {
		return err
	}
	ctx := d.ctx
	fbo, err := dst.ensureFBO()
	if err != nil {
		return err
	}
	pos := ctx.GetAttribLocation(prog, "a_position")
	uv := ctx.GetAttribLocation(prog, "a_texcoord")
	guard := d.saveGLState(1, pos, uv)
	defer guard.restore()
	ctx.BindFramebuffer(gles.FRAMEBUFFER, fbo)
	ctx.Viewport(0, 0, dst.grid.Width, dst.grid.Height)
	ctx.UseProgram(prog)
	ctx.ActiveTexture(gles.TEXTURE0)
	ctx.BindTexture(gles.TEXTURE_2D, src.tex)
	ctx.Uniform1i(ctx.GetUniformLocation(prog, "gc_src"), 0)
	ctx.EnableVertexAttribArray(pos)
	ctx.VertexAttribPointerClient(pos, 2, gles.FLOAT, false, 16, d.quadPos)
	ctx.EnableVertexAttribArray(uv)
	ctx.VertexAttribPointerClient(uv, 2, gles.FLOAT, false, 16, d.quadUV)
	ctx.DrawArrays(gles.TRIANGLES, 0, 6)
	return d.checkGL("Copy")
}

var copyFS = `
precision highp float;
uniform sampler2D gc_src;
varying vec2 v_uv;
void main() { gl_FragColor = texture2D(gc_src, v_uv); }
`

// copyProgram lazily builds the pass-through copy program.
func (d *Device) copyProgram() (uint32, error) {
	if d.copyProg != 0 {
		return d.copyProg, nil
	}
	prog, vs, fs, err := d.buildProgram(passVertexShader, copyFS)
	if err != nil {
		return 0, err
	}
	d.copyProg = prog
	d.copyShader = [2]uint32{vs, fs}
	return prog, nil
}
