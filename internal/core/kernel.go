package core

import (
	"fmt"

	"glescompute/internal/codec"
	"glescompute/internal/gles"
)

// Param describes one kernel input buffer.
type Param struct {
	Name string
	Type codec.ElemType
}

// OutputSpec describes one kernel output. A kernel with multiple outputs
// is compiled into one fragment-shader pass per output (challenge #8: a
// fragment shader has a single color output in ES 2.0).
type OutputSpec struct {
	Name string
	Type codec.ElemType
}

// KernelSpec declares a compute kernel. Source is GLSL ES 1.00 code that
// must define, for every output O, a function
//
//	float gc_kernel_<O>(float idx)
//
// (or a single `float gc_kernel(float idx)` when there is exactly one
// output named "out"). Inside the source, each input buffer I provides:
//
//	float gc_<I>(float idx)          — linear-indexed element fetch
//	float gc_<I>_at(float col, float row) — 2D element fetch
//	uniform vec2 gc_<I>_dims         — its texture dimensions
//
// plus `uniform float gc_out_n` (output element count), the varying
// `v_uv` (normalized position over the output grid) and any uniforms
// declared in Uniforms.
type KernelSpec struct {
	Name     string
	Inputs   []Param
	Outputs  []OutputSpec
	Uniforms []string // names of user float uniforms
	Source   string
}

// normalized returns the spec with defaults applied.
func (s KernelSpec) normalized() KernelSpec {
	if len(s.Outputs) == 0 {
		s.Outputs = []OutputSpec{{Name: "out", Type: codec.Float32}}
	}
	if s.Name == "" {
		s.Name = "kernel"
	}
	return s
}

// kernelPass is one compiled shader pass producing one output.
type kernelPass struct {
	out     OutputSpec
	prog    uint32
	posLoc  int
	uvLoc   int
	samLocs []int // sampler uniform per input
	dimLocs []int // dims uniform per input
	outDims int
	outN    int
	userLoc map[string]int
}

// Kernel is a compiled compute kernel (one GL program per output pass).
type Kernel struct {
	dev    *Device
	spec   KernelSpec
	passes []kernelPass
}

// BuildKernel compiles a kernel specification into executable passes.
func (d *Device) BuildKernel(spec KernelSpec) (*Kernel, error) {
	spec = spec.normalized()
	k := &Kernel{dev: d, spec: spec}
	for _, out := range spec.Outputs {
		fsSrc := generateFragmentShader(spec, out)
		prog, err := d.buildProgram(passVertexShader, fsSrc)
		if err != nil {
			return nil, fmt.Errorf("core: kernel %q output %q: %w", spec.Name, out.Name, err)
		}
		ctx := d.ctx
		pass := kernelPass{
			out:     out,
			prog:    prog,
			posLoc:  ctx.GetAttribLocation(prog, "a_position"),
			uvLoc:   ctx.GetAttribLocation(prog, "a_texcoord"),
			outDims: ctx.GetUniformLocation(prog, "gc_out_dims"),
			outN:    ctx.GetUniformLocation(prog, "gc_out_n"),
			userLoc: map[string]int{},
		}
		for _, in := range spec.Inputs {
			pass.samLocs = append(pass.samLocs, ctx.GetUniformLocation(prog, "gc_"+in.Name+"_tex"))
			pass.dimLocs = append(pass.dimLocs, ctx.GetUniformLocation(prog, "gc_"+in.Name+"_dims"))
		}
		for _, u := range spec.Uniforms {
			pass.userLoc[u] = ctx.GetUniformLocation(prog, u)
		}
		k.passes = append(k.passes, pass)
	}
	return k, nil
}

// passVertexShader is the pass-through vertex shader of challenge #1: the
// mobile API forces the vertex stage to be programmed even though compute
// needs no transformation — it only forwards the varying.
const passVertexShader = `
attribute vec2 a_position;
attribute vec2 a_texcoord;
varying vec2 v_uv;
void main() {
	v_uv = a_texcoord;
	gl_Position = vec4(a_position, 0.0, 1.0);
}
`

// buildProgram compiles and links a VS/FS pair into a GL program.
func (d *Device) buildProgram(vsSrc, fsSrc string) (uint32, error) {
	ctx := d.ctx
	vs := ctx.CreateShader(gles.VERTEX_SHADER)
	ctx.ShaderSource(vs, vsSrc)
	ctx.CompileShader(vs)
	if ctx.GetShaderiv(vs, gles.COMPILE_STATUS) != 1 {
		return 0, fmt.Errorf("vertex shader: %s", ctx.GetShaderInfoLog(vs))
	}
	fs := ctx.CreateShader(gles.FRAGMENT_SHADER)
	ctx.ShaderSource(fs, fsSrc)
	ctx.CompileShader(fs)
	if ctx.GetShaderiv(fs, gles.COMPILE_STATUS) != 1 {
		return 0, fmt.Errorf("fragment shader: %s\n--- generated source ---\n%s", ctx.GetShaderInfoLog(fs), fsSrc)
	}
	prog := ctx.CreateProgram()
	ctx.AttachShader(prog, vs)
	ctx.AttachShader(prog, fs)
	ctx.LinkProgram(prog)
	if ctx.GetProgramiv(prog, gles.LINK_STATUS) != 1 {
		return 0, fmt.Errorf("link: %s", ctx.GetProgramInfoLog(prog))
	}
	return prog, nil
}

// RunStats reports one kernel execution.
type RunStats struct {
	Draw gles.DrawStats
}

// glStateGuard snapshots the context state a compute pass clobbers —
// framebuffer/program/active-texture bindings, the viewport, the 2D
// texture bindings of the units the pass uses, and the vertex attribute
// arrays carrying the fullscreen quad — so kernel runs can interleave
// with raw dev.GL() rendering without leaking state into the application.
type glStateGuard struct {
	dev      *Device
	fbo      uint32
	prog     uint32
	active   uint32
	viewport [4]int
	units    []uint32 // TEXTURE_BINDING_2D of units 0..len-1
	attribs  map[int]gles.VertexAttribSnapshot
}

// saveGLState captures the state that binding nUnits texture units and
// the given attribute locations would overwrite.
func (d *Device) saveGLState(nUnits int, attribLocs ...int) *glStateGuard {
	ctx := d.ctx
	g := &glStateGuard{
		dev:     d,
		fbo:     uint32(ctx.GetIntegerv(gles.FRAMEBUFFER_BINDING)[0]),
		prog:    uint32(ctx.GetIntegerv(gles.CURRENT_PROGRAM)[0]),
		active:  uint32(ctx.GetIntegerv(gles.ACTIVE_TEXTURE)[0]),
		attribs: map[int]gles.VertexAttribSnapshot{},
	}
	copy(g.viewport[:], ctx.GetIntegerv(gles.VIEWPORT))
	for u := 0; u < nUnits; u++ {
		ctx.ActiveTexture(uint32(gles.TEXTURE0 + u))
		g.units = append(g.units, uint32(ctx.GetIntegerv(gles.TEXTURE_BINDING_2D)[0]))
	}
	for _, loc := range attribLocs {
		if loc < 0 {
			continue
		}
		if s, ok := ctx.GetVertexAttrib(loc); ok {
			g.attribs[loc] = s
		}
	}
	return g
}

// restore reinstates the captured state; call via defer so error paths
// restore too.
func (g *glStateGuard) restore() {
	ctx := g.dev.ctx
	for u, tex := range g.units {
		ctx.ActiveTexture(uint32(gles.TEXTURE0 + u))
		ctx.BindTexture(gles.TEXTURE_2D, tex)
	}
	for loc, s := range g.attribs {
		ctx.RestoreVertexAttrib(loc, s)
	}
	ctx.ActiveTexture(g.active)
	ctx.UseProgram(g.prog)
	ctx.BindFramebuffer(gles.FRAMEBUFFER, g.fbo)
	ctx.Viewport(g.viewport[0], g.viewport[1], g.viewport[2], g.viewport[3])
}

// checkOutputAliasing rejects an output buffer that is also bound as an
// input: rendering into a texture being sampled is undefined GL (the
// hazard Pipeline's pool resolves automatically with a copy or swap).
func checkOutputAliasing(kernel string, out *Buffer, outName string, ins []*Buffer, inputs []Param) error {
	for i, in := range ins {
		if in.tex == out.tex {
			return fmt.Errorf("core: kernel %q: output %q aliases input %q (INVALID_OPERATION: sampling a texture while rendering into it is undefined; use Pipeline or a copy)",
				kernel, outName, inputs[i].Name)
		}
	}
	return nil
}

// Run executes the kernel: one draw pass per output. outs[i] receives
// output i of the spec; ins[i] feeds input i. uniforms supplies the user
// uniforms by name.
func (k *Kernel) Run(outs []*Buffer, ins []*Buffer, uniforms map[string]float32) (RunStats, error) {
	var stats RunStats
	if len(outs) != len(k.passes) {
		return stats, fmt.Errorf("core: kernel %q has %d outputs, got %d buffers", k.spec.Name, len(k.passes), len(outs))
	}
	if len(ins) != len(k.spec.Inputs) {
		return stats, fmt.Errorf("core: kernel %q has %d inputs, got %d buffers", k.spec.Name, len(k.spec.Inputs), len(ins))
	}
	for i, in := range k.spec.Inputs {
		if ins[i].elem != in.Type {
			return stats, fmt.Errorf("core: input %q expects %s, buffer holds %s", in.Name, in.Type, ins[i].elem)
		}
	}
	for pi := range k.passes {
		if err := checkOutputAliasing(k.spec.Name, outs[pi], k.passes[pi].out.Name, ins, k.spec.Inputs); err != nil {
			return stats, err
		}
		for pj := pi + 1; pj < len(k.passes); pj++ {
			if outs[pi].tex == outs[pj].tex {
				return stats, fmt.Errorf("core: kernel %q: outputs %q and %q share a buffer (the later pass would overwrite the earlier)",
					k.spec.Name, k.passes[pi].out.Name, k.passes[pj].out.Name)
			}
		}
	}
	ctx := k.dev.ctx
	attribLocs := make([]int, 0, 2*len(k.passes))
	for pi := range k.passes {
		attribLocs = append(attribLocs, k.passes[pi].posLoc, k.passes[pi].uvLoc)
	}
	guard := k.dev.saveGLState(len(ins), attribLocs...)
	defer guard.restore()
	for pi := range k.passes {
		pass := &k.passes[pi]
		out := outs[pi]
		if out.elem != pass.out.Type {
			return stats, fmt.Errorf("core: output %q expects %s, buffer holds %s", pass.out.Name, pass.out.Type, out.elem)
		}
		fbo, err := out.ensureFBO()
		if err != nil {
			return stats, err
		}
		ctx.BindFramebuffer(gles.FRAMEBUFFER, fbo)
		ctx.Viewport(0, 0, out.grid.Width, out.grid.Height)
		ctx.UseProgram(pass.prog)

		// Bind inputs to texture units 0..n-1.
		for i := range ins {
			ctx.ActiveTexture(uint32(gles.TEXTURE0 + i))
			ctx.BindTexture(gles.TEXTURE_2D, ins[i].tex)
			ctx.Uniform1i(pass.samLocs[i], int32(i))
			ctx.Uniform2f(pass.dimLocs[i], float32(ins[i].grid.Width), float32(ins[i].grid.Height))
		}
		ctx.Uniform2f(pass.outDims, float32(out.grid.Width), float32(out.grid.Height))
		if pass.outN >= 0 {
			ctx.Uniform1f(pass.outN, float32(out.n))
		}
		for name, loc := range pass.userLoc {
			if loc < 0 {
				continue
			}
			v, ok := uniforms[name]
			if !ok {
				return stats, fmt.Errorf("core: kernel %q: uniform %q not supplied", k.spec.Name, name)
			}
			ctx.Uniform1f(loc, v)
		}

		// Fullscreen quad from two triangles (challenge #2).
		ctx.EnableVertexAttribArray(pass.posLoc)
		ctx.VertexAttribPointerClient(pass.posLoc, 2, gles.FLOAT, false, 16, k.dev.quadPos)
		if pass.uvLoc >= 0 {
			ctx.EnableVertexAttribArray(pass.uvLoc)
			ctx.VertexAttribPointerClient(pass.uvLoc, 2, gles.FLOAT, false, 16, k.dev.quadUV)
		}
		ctx.DrawArrays(gles.TRIANGLES, 0, 6)
		if err := k.dev.checkGL("Run draw"); err != nil {
			return stats, err
		}
		d := ctx.LastDraw()
		stats.Draw.Add(&d)
	}
	return stats, nil
}

// Run1 is a convenience for single-output kernels.
func (k *Kernel) Run1(out *Buffer, ins []*Buffer, uniforms map[string]float32) (RunStats, error) {
	return k.Run([]*Buffer{out}, ins, uniforms)
}

// Copy byte-copies src into dst through a pass-through fragment shader —
// the paper's challenge #7 "first way": when the texture to read is not
// already the framebuffer attachment, a trivial copy pass moves it there.
// Both buffers must have identical grids and element types.
func (d *Device) Copy(dst, src *Buffer) error {
	if dst.grid != src.grid {
		return fmt.Errorf("core: Copy: grid mismatch %v vs %v", dst.grid, src.grid)
	}
	if dst.elem != src.elem {
		return fmt.Errorf("core: Copy: element type mismatch %s vs %s", dst.elem, src.elem)
	}
	if dst.tex == src.tex {
		return fmt.Errorf("core: Copy: dst aliases src (INVALID_OPERATION: sampling a texture while rendering into it is undefined)")
	}
	prog, err := d.copyProgram()
	if err != nil {
		return err
	}
	ctx := d.ctx
	fbo, err := dst.ensureFBO()
	if err != nil {
		return err
	}
	pos := ctx.GetAttribLocation(prog, "a_position")
	uv := ctx.GetAttribLocation(prog, "a_texcoord")
	guard := d.saveGLState(1, pos, uv)
	defer guard.restore()
	ctx.BindFramebuffer(gles.FRAMEBUFFER, fbo)
	ctx.Viewport(0, 0, dst.grid.Width, dst.grid.Height)
	ctx.UseProgram(prog)
	ctx.ActiveTexture(gles.TEXTURE0)
	ctx.BindTexture(gles.TEXTURE_2D, src.tex)
	ctx.Uniform1i(ctx.GetUniformLocation(prog, "gc_src"), 0)
	ctx.EnableVertexAttribArray(pos)
	ctx.VertexAttribPointerClient(pos, 2, gles.FLOAT, false, 16, d.quadPos)
	ctx.EnableVertexAttribArray(uv)
	ctx.VertexAttribPointerClient(uv, 2, gles.FLOAT, false, 16, d.quadUV)
	ctx.DrawArrays(gles.TRIANGLES, 0, 6)
	return d.checkGL("Copy")
}

var copyFS = `
precision highp float;
uniform sampler2D gc_src;
varying vec2 v_uv;
void main() { gl_FragColor = texture2D(gc_src, v_uv); }
`

// copyProgram lazily builds the pass-through copy program.
func (d *Device) copyProgram() (uint32, error) {
	if d.copyProg != 0 {
		return d.copyProg, nil
	}
	prog, err := d.buildProgram(passVertexShader, copyFS)
	if err != nil {
		return 0, err
	}
	d.copyProg = prog
	return prog, nil
}
