// Package core implements the paper's contribution: a general-purpose
// compute runtime on top of a bare OpenGL ES 2.0 context. It packages the
// eight workarounds of the paper's Section III —
//
//	#1 pass-through vertex shader (no fixed-function fallback)
//	#2 full-screen quad built from two triangles (no quad primitive)
//	#3 linear arrays laid out in 2D textures (no 1D textures)
//	#4 half-texel-centred normalized addressing (no texel coordinates)
//	#5 input numeric transformations (no float textures)       — §IV
//	#6 output numeric transformations (no float framebuffers)  — §IV
//	#7 kernel chaining through FBO render-to-texture + ReadPixels
//	#8 multi-output kernels split into one shader pass per output
//
// — behind a Device/Buffer/Kernel API a CUDA/OpenCL programmer would
// recognize. Multi-pass workloads chain device-resident through Pipeline
// (pipeline.go): output textures feed the next pass's sampler directly,
// with pooled ping-pong intermediates and automatic resolution of the
// render-into-sampled-texture hazard (DESIGN.md §6a).
package core

import (
	"errors"
	"fmt"
	"time"

	"glescompute/internal/gles"
	"glescompute/internal/shader"
	"glescompute/internal/vc4"
)

// ErrClosed is returned (wrapped) by operations on a closed Device, Kernel
// or Pipeline. Long-running services race queue shutdown against in-flight
// work; a clean error lets them treat that race as a normal outcome
// instead of a crash.
var ErrClosed = errors.New("device is closed")

// ErrDeviceLost is wrapped by operations that failed because the GL
// context died — context loss (GL_CONTEXT_LOST), detected readback
// corruption, or a panic on the device goroutine. The device cannot
// recover; schedulers quarantine it and replace it with a fresh one.
var ErrDeviceLost = errors.New("device lost")

// ErrOutOfMemory is wrapped by operations that failed with
// GL_OUT_OF_MEMORY. On low-end mobile GPUs allocation failure is often
// transient (memory pressure from other processes), so schedulers may
// retry the work without replacing the device.
var ErrOutOfMemory = errors.New("GL out of memory")

// Config configures a compute device.
type Config struct {
	// MaxGridWidth bounds texture width used for buffer layout; 0 means
	// the device maximum.
	MaxGridWidth int
	// SFUMantissaBits models the GPU special-function-unit precision;
	// 0 selects the VideoCore IV default (16 bits), negative selects
	// exact IEEE behaviour.
	SFUMantissaBits int
	// FloorConversion selects the paper's eq. (2) floor rule for
	// framebuffer conversion instead of the GL round-to-nearest rule.
	FloorConversion bool
	// Exec is the unified execution configuration: fusion planning, vec4
	// lane defaults, rasterizer parallelism, interpreter fallback.
	// Explicit fields win over the legacy env vars; see ExecConfig.
	Exec ExecConfig
	// StrictAppendixA enforces GLSL ES Appendix A loop restrictions.
	StrictAppendixA bool
	// TileSize overrides the edge length (pixels) of the framebuffer
	// tiles the parallel rasterizer shards draws into; 0 means the
	// built-in default. Output is bit-identical at any size — exposed so
	// tests can force many ragged tiles onto small render targets.
	TileSize int

	// CompileCache shares compiled program binaries across devices (and,
	// with a disk-backed cache, across processes): builds hitting the
	// cache restore through the program-binary path instead of compiling.
	// nil falls back to the process-wide cache named by the
	// GLESCOMPUTE_COMPILE_CACHE environment variable, or no cache when
	// that is unset. Ignored on interpreter devices (binaries carry
	// bytecode only).
	CompileCache *CompileCache

	// Workers bounds fragment-stage parallelism (0 = GOMAXPROCS).
	//
	// Deprecated: set Exec.RasterWorkers. When both are set, Exec wins.
	Workers int
	// UseInterpreter runs shaders on the reference AST interpreter
	// instead of the default bytecode VM.
	//
	// Deprecated: set Exec.UseInterpreter. Either field forces the
	// interpreter.
	UseInterpreter bool
}

// Timeline is the modeled wall-clock breakdown of everything executed
// since the last ResetTimeline, mirroring the paper's measurement
// methodology ("application wall times, including time spent in data
// transfers and kernel compilations").
type Timeline struct {
	Compile  time.Duration
	Upload   time.Duration
	Execute  time.Duration
	Readback time.Duration
}

// Total returns the modeled wall time.
func (t Timeline) Total() time.Duration {
	return t.Compile + t.Upload + t.Execute + t.Readback
}

// Sub returns the componentwise difference t - o: the cost of the work
// executed between two Timeline snapshots. Pipeline uses it to price one
// chain under the timing model.
func (t Timeline) Sub(o Timeline) Timeline {
	return Timeline{
		Compile:  t.Compile - o.Compile,
		Upload:   t.Upload - o.Upload,
		Execute:  t.Execute - o.Execute,
		Readback: t.Readback - o.Readback,
	}
}

// Add returns the componentwise sum t + o. The scheduler uses it to
// accumulate per-launch timeline deltas into per-device busy time.
func (t Timeline) Add(o Timeline) Timeline {
	return Timeline{
		Compile:  t.Compile + o.Compile,
		Upload:   t.Upload + o.Upload,
		Execute:  t.Execute + o.Execute,
		Readback: t.Readback + o.Readback,
	}
}

// Device is a simulated low-end mobile GPU opened for compute.
type Device struct {
	ctx  *gles.Context
	gpu  *vc4.Model
	cfg  Config
	exec ExecConfig // resolved merge of cfg.Exec over the legacy fields

	quadPos []byte // interleaved fullscreen-quad vertices (challenge #2)
	quadUV  []byte

	copyProg   uint32 // lazily built pass-through copy program (challenge #7)
	copyShader [2]uint32

	// reduceKernels caches compiled fold kernels by op+elem so every
	// pipeline on the device shares one program per reduction operator.
	reduceKernels map[string]*Kernel

	// kernelCache holds kernels compiled through BuildKernelCached, keyed
	// by KernelSpec.CacheKey — the scheduler's per-device compile-once
	// cache. Owned (and closed) by the device.
	kernelCache map[string]*Kernel

	// ccache is the resolved persistent compile cache (Config.CompileCache
	// or the environment default); nil when caching is off.
	ccache *CompileCache

	closed   bool
	lost     bool // a CONTEXT_LOST error was observed; the device is dead
	leakHook func(gles.ObjectCounts)
}

// Open creates a compute device over a fresh simulated ES 2.0 context.
func Open(cfg Config) (*Device, error) {
	exec := cfg.mergeLegacy()
	if err := exec.validate(); err != nil {
		return nil, err
	}
	sfu := shader.DefaultSFU
	if cfg.SFUMantissaBits > 0 {
		sfu = shader.SFUConfig{MantissaBits: cfg.SFUMantissaBits}
	} else if cfg.SFUMantissaBits < 0 {
		sfu = shader.ExactSFU
	}
	conv := gles.ConvertRound
	if cfg.FloorConversion {
		conv = gles.ConvertFloor
	}
	ctx := gles.NewContext(gles.Config{
		Width:           4,
		Height:          4,
		SFU:             sfu,
		Conv:            conv,
		Workers:         exec.Workers(),
		TileSize:        cfg.TileSize,
		StrictAppendixA: cfg.StrictAppendixA,
		UseInterpreter:  exec.UseInterpreter,
	})
	d := &Device{ctx: ctx, gpu: vc4.DefaultModel(), cfg: cfg, exec: exec}
	if !exec.UseInterpreter {
		if d.ccache = cfg.CompileCache; d.ccache == nil {
			d.ccache = envCompileCache()
		}
	}
	if d.cfg.MaxGridWidth <= 0 || d.cfg.MaxGridWidth > ctx.Caps().MaxTextureSize {
		d.cfg.MaxGridWidth = ctx.Caps().MaxTextureSize
	}
	d.quadPos, d.quadUV = fullscreenQuad()
	return d, nil
}

// fullscreenQuad builds the two-triangle screen-covering geometry
// (challenge #2) as interleaved float32 client arrays.
func fullscreenQuad() (pos, uv []byte) {
	verts := []float32{
		// x, y, u, v
		-1, -1, 0, 0,
		1, -1, 1, 0,
		1, 1, 1, 1,
		-1, -1, 0, 0,
		1, 1, 1, 1,
		-1, 1, 0, 1,
	}
	raw := f32bytes(verts)
	return raw, raw[8:]
}

// checkOpen returns a wrapped ErrClosed when the device has been closed.
func (d *Device) checkOpen(op string) error {
	if d.closed {
		return fmt.Errorf("core: %s: %w", op, ErrClosed)
	}
	return nil
}

// Close releases every device-owned simulator object (cached kernels,
// reduce kernels, the copy program) and marks the device closed: further
// operations return ErrClosed. Objects still live afterwards — buffers
// never freed, kernels never closed — are user leaks; they are reported
// to the hook installed with SetLeakHook, so long-running queue processes
// can prove they do not accumulate simulator objects. Close is idempotent.
func (d *Device) Close() error {
	if d.closed {
		return nil
	}
	for _, k := range d.reduceKernels {
		k.Close()
	}
	d.reduceKernels = nil
	for _, k := range d.kernelCache {
		k.Close()
	}
	d.kernelCache = nil
	if d.copyProg != 0 {
		d.ctx.DeleteProgram(d.copyProg)
		d.ctx.DeleteShader(d.copyShader[0])
		d.ctx.DeleteShader(d.copyShader[1])
		d.copyProg = 0
	}
	live := d.ctx.ObjectCounts()
	d.closed = true
	if live.Total() > 0 && d.leakHook != nil {
		d.leakHook(live)
	}
	return nil
}

// SetLeakHook installs a callback Close invokes with the census of
// objects still live at shutdown (only when that census is non-empty).
// Pass nil to remove the hook.
func (d *Device) SetLeakHook(fn func(gles.ObjectCounts)) { d.leakHook = fn }

// LiveObjects reports the simulator objects currently live on the
// device's context.
func (d *Device) LiveObjects() gles.ObjectCounts { return d.ctx.ObjectCounts() }

// GL exposes the underlying ES 2.0 context for advanced use and testing.
func (d *Device) GL() *gles.Context { return d.ctx }

// CompileCache returns the device's resolved persistent compile cache,
// or nil when caching is off.
func (d *Device) CompileCache() *CompileCache { return d.ccache }

// GPUModel exposes the timing model.
func (d *Device) GPUModel() *vc4.Model { return d.gpu }

// Caps returns the device limits relevant to compute.
func (d *Device) Caps() gles.Caps { return d.ctx.Caps() }

// MaxGridWidth returns the effective texture-width bound buffer layouts
// use on this device (Config.MaxGridWidth clamped to the context limit).
// The scheduler packs batch textures against this, not the raw caps, so
// batched and solo execution accept exactly the same jobs.
func (d *Device) MaxGridWidth() int { return d.cfg.MaxGridWidth }

// PrecisionInfo reports the shader precision formats, the query the paper
// uses (§IV-E) to establish that GPU floats match IEEE 754 bit counts.
func (d *Device) PrecisionInfo() (flt, intp gles.PrecisionFormat) {
	flt = d.ctx.GetShaderPrecisionFormat(gles.FRAGMENT_SHADER, gles.HIGH_FLOAT)
	intp = d.ctx.GetShaderPrecisionFormat(gles.FRAGMENT_SHADER, gles.HIGH_INT)
	return
}

// ResetTimeline clears the accumulated modeled-time statistics.
func (d *Device) ResetTimeline() {
	d.ctx.ResetStats()
}

// Timeline returns the modeled wall-clock breakdown since the last reset.
func (d *Device) Timeline() Timeline {
	tr := d.ctx.Transfers()
	draws := d.ctx.Draws()
	upload := time.Duration(float64(tr.TexUploadBytes) / d.gpu.UploadBytesPerSec * float64(time.Second))
	upload += time.Duration(tr.TexUploadCalls) * d.gpu.UploadCallOverhead
	readback := time.Duration(float64(tr.ReadPixelsBytes) / d.gpu.ReadbackBytesPerSec * float64(time.Second))
	readback += time.Duration(tr.ReadPixelsCalls) * d.gpu.ReadbackOverhead
	return Timeline{
		Compile:  d.gpu.CompileTime(&tr),
		Upload:   upload,
		Execute:  d.gpu.DrawTime(&draws),
		Readback: readback,
	}
}

// checkGL converts pending GL errors into a Go error. It drains the
// context completely — a multi-step operation can queue errors behind the
// first — so no latent error is left to surface against an innocent later
// call, and classifies the first (oldest) error onto the matching
// sentinel: CONTEXT_LOST → ErrDeviceLost, OUT_OF_MEMORY → ErrOutOfMemory.
func (d *Device) checkGL(op string) error {
	e := d.ctx.GetError()
	if e == gles.NO_ERROR {
		return nil
	}
	detail := d.ctx.LastErrorDetail()
	for d.ctx.GetError() != gles.NO_ERROR {
	}
	switch e {
	case gles.CONTEXT_LOST:
		d.lost = true
		return fmt.Errorf("core: %s: GL error 0x%04x: %s: %w", op, e, detail, ErrDeviceLost)
	case gles.OUT_OF_MEMORY:
		return fmt.Errorf("core: %s: GL error 0x%04x: %s: %w", op, e, detail, ErrOutOfMemory)
	}
	return fmt.Errorf("core: %s: GL error 0x%04x: %s", op, e, detail)
}

// Lost reports whether the device has observed a context-loss error. A
// lost device never works again; close it and open a replacement.
func (d *Device) Lost() bool { return d.lost }
