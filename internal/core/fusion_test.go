package core

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"glescompute/internal/codec"
)

// ewSpec builds a single-input element-wise kernel spec.
func ewSpec(name string, elem codec.ElemType, uniforms []string, body string) KernelSpec {
	return KernelSpec{
		Name:        name,
		Inputs:      []Param{{Name: "x", Type: elem}},
		Outputs:     []OutputSpec{{Name: "out", Type: elem}},
		Uniforms:    uniforms,
		Source:      "float gc_kernel(float idx) {\n\treturn " + body + ";\n}\n",
		ElementWise: true,
	}
}

func mustKernel(t *testing.T, d *Device, spec KernelSpec) *Kernel {
	t.Helper()
	k, err := d.BuildKernelCached(spec)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func int32sEqual(t *testing.T, label string, want, got []int32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: element %d: got %d, want %d (must be bit-identical)", label, i, got[i], want[i])
		}
	}
}

// runChainPipeline builds in→stages→out on fresh pipelines with fusion on
// or off and returns the output ints plus stats.
func runFusionChainInt(t *testing.T, d *Device, fuse bool, xs []int32,
	build func(p *Pipeline, x Ref) Ref) ([]int32, PipelineStats) {
	t.Helper()
	n := len(xs)
	p := d.NewPipeline()
	defer p.Close()
	p.SetFusion(fuse)
	x := p.Input(codec.Int32, n)
	p.Output(build(p, x))
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	in, _ := d.NewBuffer(codec.Int32, n)
	out, _ := d.NewBuffer(codec.Int32, n)
	defer in.Free()
	defer out.Free()
	if err := in.WriteInt32(xs); err != nil {
		t.Fatal(err)
	}
	stats, err := p.Run([]*Buffer{out}, []*Buffer{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.ReadInt32()
	if err != nil {
		t.Fatal(err)
	}
	return got, stats
}

// TestFusionEpilogueChainInt32 fuses two element-wise epilogues (requant,
// relu) into a gather producer: one fragment pass, bit-identical to the
// unfused three-pass chain, with the intermediates never allocated.
func TestFusionEpilogueChainInt32(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 517
	reverse := mustKernel(t, d, KernelSpec{ // gather: not element-wise, but can host epilogues
		Name:            "reverse",
		Inputs:          []Param{{Name: "x", Type: codec.Int32}},
		Outputs:         []OutputSpec{{Name: "out", Type: codec.Int32}},
		Uniforms:        []string{"u_n"},
		Source:          "float gc_kernel(float idx) {\n\treturn gc_x(u_n - 1.0 - idx);\n}\n",
		FusableEpilogue: true,
	})
	requant := mustKernel(t, d, ewSpec("requant", codec.Int32, []string{"u_s"}, "floor(gc_x(idx) / u_s)"))
	relu := mustKernel(t, d, ewSpec("relu", codec.Int32, nil, "max(gc_x(idx), 0.0)"))

	rng := rand.New(rand.NewSource(5))
	xs := make([]int32, n)
	for i := range xs {
		xs[i] = int32(rng.Intn(1<<20) - 1<<19)
	}
	build := func(p *Pipeline, x Ref) Ref {
		a := p.Stage(reverse, map[string]float32{"u_n": n}, x)
		p.Label("rev")
		b := p.Stage(requant, map[string]float32{"u_s": 8}, a)
		p.Label("requant")
		c := p.Stage(relu, nil, b)
		p.Label("relu")
		return c
	}

	want, su := runFusionChainInt(t, d, false, xs, build)
	got, sf := runFusionChainInt(t, d, true, xs, build)
	int32sEqual(t, "fused vs unfused", want, got)

	if su.Passes != 3 || sf.Passes != 1 {
		t.Errorf("passes: unfused %d (want 3), fused %d (want 1)", su.Passes, sf.Passes)
	}
	if sf.FusedStages != 2 {
		t.Errorf("FusedStages = %d, want 2", sf.FusedStages)
	}
	if len(sf.ExecStages) != 1 || sf.ExecStages[0] != "rev+requant+relu" {
		t.Errorf("ExecStages = %v, want [rev+requant+relu]", sf.ExecStages)
	}
	if sf.PoolAllocs != 0 {
		t.Errorf("fused chain allocated %d intermediates, want 0 (all eliminated)", sf.PoolAllocs)
	}
	if sf.FusionFallbacks != 0 {
		t.Errorf("FusionFallbacks = %d, want 0", sf.FusionFallbacks)
	}
	// Per-stage attribution: the fused pass is charged to the chain head,
	// fused-away members report zero, entries sum to the whole-chain time.
	if len(sf.StageTimes) != 3 {
		t.Fatalf("StageTimes has %d entries, want 3 (one per builder stage)", len(sf.StageTimes))
	}
	if sf.StageTimes[0].Execute <= 0 || sf.StageTimes[1].Total() != 0 || sf.StageTimes[2].Total() != 0 {
		t.Errorf("StageTimes = %+v, want all time on the chain head", sf.StageTimes)
	}
	var sum Timeline
	for _, st := range sf.StageTimes {
		sum = sum.Add(st)
	}
	if sum != sf.Time {
		t.Errorf("stage times sum to %+v, chain is %+v", sum, sf.Time)
	}
}

// TestFusionPlannedPasses pins the planner's refusals: gather consumers,
// multi-consumer producers, Output-marked intermediates and reductions
// must never fuse.
func TestFusionPlannedPasses(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 64
	relu := mustKernel(t, d, ewSpec("relu", codec.Float32, nil, "max(gc_x(idx), 0.0)"))
	gather := mustKernel(t, d, KernelSpec{
		Name:   "shiftadd",
		Inputs: []Param{{Name: "x", Type: codec.Float32}},
		Source: "float gc_kernel(float idx) {\n\treturn gc_x(idx) + gc_x(idx + 1.0);\n}\n",
		// Deliberately not ElementWise: it reads a neighbour.
	})

	// Gather consumer after an element-wise producer: must stay 2 passes
	// (only element-wise consumers fuse).
	p := d.NewPipeline()
	defer p.Close()
	x := p.Input(codec.Float32, n)
	p.Output(p.Stage(gather, nil, p.Stage(relu, nil, x)))
	passes, err := p.PlannedPasses()
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) != 2 {
		t.Errorf("relu→gather planned %v, want 2 passes", passes)
	}

	// Multi-consumer producer: both readers materialize it.
	p2 := d.NewPipeline()
	defer p2.Close()
	x2 := p2.Input(codec.Float32, n)
	a := p2.Stage(relu, nil, x2)
	b := p2.Stage(relu, nil, a)
	c := p2.Stage(relu, nil, a) // second consumer of a
	p2.Output(b)
	p2.Output(c)
	passes2, err := p2.PlannedPasses()
	if err != nil {
		t.Fatal(err)
	}
	if len(passes2) != 3 {
		t.Errorf("multi-consumer chain planned %v, want 3 passes", passes2)
	}

	// Output-marked intermediate: must materialize even with one consumer.
	p3 := d.NewPipeline()
	defer p3.Close()
	x3 := p3.Input(codec.Float32, n)
	mid := p3.Stage(relu, nil, x3)
	p3.Output(mid)
	p3.Output(p3.Stage(relu, nil, mid))
	passes3, err := p3.PlannedPasses()
	if err != nil {
		t.Fatal(err)
	}
	if len(passes3) != 2 {
		t.Errorf("tapped chain planned %v, want 2 passes", passes3)
	}

	// Reduce: fold passes read pairs, never fusable.
	p4 := d.NewPipeline()
	defer p4.Close()
	x4 := p4.Input(codec.Float32, 32)
	p4.Output(p4.Reduce(x4, ReduceAdd))
	passes4, err := p4.PlannedPasses()
	if err != nil {
		t.Fatal(err)
	}
	if len(passes4) != 5 {
		t.Errorf("reduce(32) planned %v, want 5 passes", passes4)
	}

	// A producer/consumer output-length mismatch breaks the per-index
	// correspondence: no fusion. (A producer that merely SHRINKS the
	// domain relative to its own input is fine — the fused pass renders
	// the consumer's grid — so the guard is on output lengths.)
	head := mustKernel(t, d, KernelSpec{
		Name:            "head",
		Inputs:          []Param{{Name: "x", Type: codec.Float32}},
		Source:          "float gc_kernel(float idx) {\n\treturn gc_x(idx);\n}\n",
		FusableEpilogue: true,
	})
	p5 := d.NewPipeline()
	defer p5.Close()
	x5 := p5.Input(codec.Float32, n)
	h := p5.Stage(head, nil, x5)            // n elements
	p5.Output(p5.StageN(relu, n/2, nil, h)) // truncating "element-wise" use
	passes5, err := p5.PlannedPasses()
	if err != nil {
		t.Fatal(err)
	}
	if len(passes5) != 2 {
		t.Errorf("length-mismatched chain planned %v, want 2 passes", passes5)
	}
	// While a domain-shrinking producer with matching outputs does fuse:
	p6 := d.NewPipeline()
	defer p6.Close()
	x6 := p6.Input(codec.Float32, n)
	h6 := p6.StageN(head, n/2, nil, x6)
	p6.Output(p6.Stage(relu, nil, h6))
	passes6, err := p6.PlannedPasses()
	if err != nil {
		t.Fatal(err)
	}
	if len(passes6) != 1 {
		t.Errorf("matching-output chain planned %v, want 1 fused pass", passes6)
	}
}

// TestFusionSharedExternalInput dedups a weight slot read by two members
// of one fused chain: the fused pass binds it once and stays
// bit-identical.
func TestFusionSharedExternalInput(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 129
	addw := mustKernel(t, d, KernelSpec{
		Name:        "addw",
		Inputs:      []Param{{Name: "x", Type: codec.Int32}, {Name: "w", Type: codec.Int32}},
		Outputs:     []OutputSpec{{Name: "out", Type: codec.Int32}},
		Source:      "float gc_kernel(float idx) {\n\treturn gc_x(idx) + gc_w(idx);\n}\n",
		ElementWise: true,
	})
	mulw := mustKernel(t, d, KernelSpec{
		Name:        "mulw",
		Inputs:      []Param{{Name: "y", Type: codec.Int32}, {Name: "w", Type: codec.Int32}},
		Outputs:     []OutputSpec{{Name: "out", Type: codec.Int32}},
		Source:      "float gc_kernel(float idx) {\n\treturn gc_y(idx) * gc_w(idx);\n}\n",
		ElementWise: true,
	})
	rng := rand.New(rand.NewSource(9))
	xs := make([]int32, n)
	ws := make([]int32, n)
	for i := range xs {
		xs[i] = int32(rng.Intn(2000) - 1000)
		ws[i] = int32(rng.Intn(64) - 32)
	}
	run := func(fuse bool) ([]int32, PipelineStats) {
		p := d.NewPipeline()
		defer p.Close()
		p.SetFusion(fuse)
		x := p.Input(codec.Int32, n)
		w := p.Input(codec.Int32, n)
		p.Output(p.Stage(mulw, nil, p.Stage(addw, nil, x, w), w))
		if err := p.Err(); err != nil {
			t.Fatal(err)
		}
		bx, _ := d.NewBuffer(codec.Int32, n)
		bw, _ := d.NewBuffer(codec.Int32, n)
		bo, _ := d.NewBuffer(codec.Int32, n)
		defer bx.Free()
		defer bw.Free()
		defer bo.Free()
		if err := bx.WriteInt32(xs); err != nil {
			t.Fatal(err)
		}
		if err := bw.WriteInt32(ws); err != nil {
			t.Fatal(err)
		}
		stats, err := p.Run([]*Buffer{bo}, []*Buffer{bx, bw}, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := bo.ReadInt32()
		return got, stats
	}
	want, _ := run(false)
	got, sf := run(true)
	int32sEqual(t, "shared-input fusion", want, got)
	if sf.Passes != 1 {
		t.Errorf("fused passes = %d, want 1", sf.Passes)
	}
}

// TestFusionHazardCopy fuses a chain whose marked output lands in the
// pipeline's own input buffer: the hazard detour must still fire and the
// result must match the unfused path bit for bit.
func TestFusionHazardCopy(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 97
	relu := mustKernel(t, d, ewSpec("relu", codec.Int32, nil, "max(gc_x(idx), 0.0)"))
	dbl := mustKernel(t, d, ewSpec("dbl", codec.Int32, nil, "gc_x(idx) * 2.0"))
	rng := rand.New(rand.NewSource(13))
	xs := make([]int32, n)
	for i := range xs {
		xs[i] = int32(rng.Intn(4000) - 2000)
	}
	run := func(fuse bool) ([]int32, PipelineStats) {
		p := d.NewPipeline()
		defer p.Close()
		p.SetFusion(fuse)
		x := p.Input(codec.Int32, n)
		p.Output(p.Stage(dbl, nil, p.Stage(relu, nil, x)))
		in, _ := d.NewBuffer(codec.Int32, n)
		defer in.Free()
		if err := in.WriteInt32(xs); err != nil {
			t.Fatal(err)
		}
		stats, err := p.Run([]*Buffer{in}, []*Buffer{in}, nil) // in-place
		if err != nil {
			t.Fatal(err)
		}
		got, _ := in.ReadInt32()
		return got, stats
	}
	want, _ := run(false)
	got, sf := run(true)
	int32sEqual(t, "fused in-place", want, got)
	if sf.HazardCopies != 1 {
		t.Errorf("HazardCopies = %d, want 1", sf.HazardCopies)
	}
	if sf.Passes != 2 { // one fused pass + one hazard copy
		t.Errorf("Passes = %d, want 2", sf.Passes)
	}
}

// TestFusionUniformNamespace fuses two stages sharing a uniform NAME with
// different fixed values: each member must see its own value.
func TestFusionUniformNamespace(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 40
	scale := mustKernel(t, d, ewSpec("iscale", codec.Int32, []string{"u_s"}, "gc_x(idx) * u_s"))
	xs := make([]int32, n)
	for i := range xs {
		xs[i] = int32(i - 20)
	}
	build := func(p *Pipeline, x Ref) Ref {
		a := p.Stage(scale, map[string]float32{"u_s": 3}, x)
		return p.Stage(scale, map[string]float32{"u_s": 5}, a)
	}
	want, _ := runFusionChainInt(t, d, false, xs, build)
	got, sf := runFusionChainInt(t, d, true, xs, build)
	int32sEqual(t, "uniform namespace", want, got)
	if sf.Passes != 1 {
		t.Errorf("Passes = %d, want 1", sf.Passes)
	}
	// Run-level uniform resolution must also reach fused members.
	p := d.NewPipeline()
	defer p.Close()
	x := p.Input(codec.Int32, n)
	p.Output(p.Stage(scale, nil, p.Stage(scale, map[string]float32{"u_s": 3}, x)))
	in, _ := d.NewBuffer(codec.Int32, n)
	out, _ := d.NewBuffer(codec.Int32, n)
	defer in.Free()
	defer out.Free()
	if err := in.WriteInt32(xs); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run([]*Buffer{out}, []*Buffer{in}, nil); err == nil {
		t.Error("fused Run without the second stage's uniform succeeded, want error")
	}
	if _, err := p.Run([]*Buffer{out}, []*Buffer{in}, map[string]float32{"u_s": 7}); err != nil {
		t.Fatal(err)
	}
	got2, _ := out.ReadInt32()
	for i, v := range xs {
		if want := v * 3 * 7; got2[i] != want {
			t.Fatalf("element %d: got %d, want %d (stage uniform 3, run uniform 7)", i, got2[i], want)
		}
	}
}

// TestFusionFallbackOnBadCompose pins the safety valve: when the composed
// shader fails to build (here: both members define the same helper
// function, which the textual composer does not rename), the group runs
// unfused and the pipeline still produces correct results.
func TestFusionFallbackOnBadCompose(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 32
	mk := func(name string, mul float32) *Kernel {
		return mustKernel(t, d, KernelSpec{
			Name:    name,
			Inputs:  []Param{{Name: "x", Type: codec.Int32}},
			Outputs: []OutputSpec{{Name: "out", Type: codec.Int32}},
			Source: "float helper(float v) { return v * " + fmtFloat(mul) + "; }\n" +
				"float gc_kernel(float idx) {\n\treturn helper(gc_x(idx));\n}\n",
			ElementWise: true,
		})
	}
	k2, k3 := mk("mul2", 2), mk("mul3", 3)
	xs := make([]int32, n)
	for i := range xs {
		xs[i] = int32(i)
	}
	build := func(p *Pipeline, x Ref) Ref {
		return p.Stage(k3, nil, p.Stage(k2, nil, x))
	}
	want, _ := runFusionChainInt(t, d, false, xs, build)
	got, sf := runFusionChainInt(t, d, true, xs, build)
	int32sEqual(t, "fallback chain", want, got)
	if sf.FusionFallbacks != 1 {
		t.Errorf("FusionFallbacks = %d, want 1", sf.FusionFallbacks)
	}
	if sf.Passes != 2 {
		t.Errorf("Passes = %d, want 2 (group ran unfused)", sf.Passes)
	}
}

// fmtFloat renders a GLSL ES 1.00 float literal (needs a decimal point).
func fmtFloat(v float32) string {
	return strconv.FormatFloat(float64(v), 'f', 1, 32)
}

// TestFusionMixedTypeChain fuses a chain that changes element type
// mid-stream (int32 ops → convert-to-float → float ops): the conversion
// stage declares its own output type, the fused pass encodes only the
// final float result, and both paths stay within codec tolerance of the
// float64 reference. (int→float boundaries are exact either way — the
// int codec round-trips integral values exactly — while a float→int
// boundary would floor a quantized vs unquantized value and is covered
// by the tolerance regime, not bit-identity.)
func TestFusionMixedTypeChain(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const n = 201
	addc := mustKernel(t, d, ewSpec("iadd", codec.Int32, []string{"u_c"}, "gc_x(idx) + u_c"))
	toF := mustKernel(t, d, KernelSpec{
		Name:        "tofloat",
		Inputs:      []Param{{Name: "x", Type: codec.Int32}},
		Outputs:     []OutputSpec{{Name: "out", Type: codec.Float32}},
		Uniforms:    []string{"u_s"},
		Source:      "float gc_kernel(float idx) {\n\treturn gc_x(idx) / u_s;\n}\n",
		ElementWise: true,
	})
	fscale := mustKernel(t, d, ewSpec("fscale", codec.Float32, []string{"u_m"}, "gc_x(idx) * u_m + 1.0"))

	rng := rand.New(rand.NewSource(77))
	xs := make([]int32, n)
	for i := range xs {
		xs[i] = int32(rng.Intn(4000) - 2000)
	}
	run := func(fuse bool) ([]float32, PipelineStats) {
		p := d.NewPipeline()
		defer p.Close()
		p.SetFusion(fuse)
		x := p.Input(codec.Int32, n)
		a := p.Stage(addc, map[string]float32{"u_c": 17}, x)
		f := p.Stage(toF, map[string]float32{"u_s": 8}, a)
		p.Output(p.Stage(fscale, map[string]float32{"u_m": 1.5}, f))
		if err := p.Err(); err != nil {
			t.Fatal(err)
		}
		in, _ := d.NewBuffer(codec.Int32, n)
		out, _ := d.NewBuffer(codec.Float32, n)
		defer in.Free()
		defer out.Free()
		if err := in.WriteInt32(xs); err != nil {
			t.Fatal(err)
		}
		stats, err := p.Run([]*Buffer{out}, []*Buffer{in}, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := out.ReadFloat32()
		return got, stats
	}
	want, su := run(false)
	got, sf := run(true)
	if sf.Passes != 1 || su.Passes != 3 {
		t.Errorf("passes fused=%d unfused=%d, want 1 and 3", sf.Passes, su.Passes)
	}
	const tol = 1.0 / (1 << 10)
	for i, x := range xs {
		ref := (float64(x)+17)/8*1.5 + 1
		for _, res := range []struct {
			label string
			vals  []float32
		}{{"fused", got}, {"unfused", want}} {
			err := math.Abs(float64(res.vals[i]) - ref)
			if rel := err / math.Max(math.Abs(ref), 1e-3); rel > tol {
				t.Fatalf("%s element %d: %g vs reference %g", res.label, i, res.vals[i], ref)
			}
		}
	}
}

// TestFusionCacheKeyFlags pins that fusion metadata participates in the
// compile-once cache key: identical sources with different flags are
// distinct kernels.
func TestFusionCacheKeyFlags(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	base := ewSpec("same", codec.Float32, nil, "gc_x(idx)")
	plain := base
	plain.ElementWise = false
	epi := base
	epi.ElementWise = false
	epi.FusableEpilogue = true
	if base.CacheKey() == plain.CacheKey() || base.CacheKey() == epi.CacheKey() || plain.CacheKey() == epi.CacheKey() {
		t.Fatal("fusion flags do not separate CacheKeys")
	}
	k1 := mustKernel(t, d, base)
	k2 := mustKernel(t, d, plain)
	if k1 == k2 {
		t.Fatal("flagged and unflagged specs shared a cached kernel")
	}
}

// TestFusionPropertyRandomChains is the differential property test:
// random element-wise chains (2–6 stages, both element types) must be
// bit-identical fused vs unfused for int32, and within codec tolerance
// of the float64 reference for float32 (fusion deletes quantization
// steps, so fused and unfused may legitimately differ — both must stay
// near the true value).
func TestFusionPropertyRandomChains(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	type op struct {
		body string // uses gc_x(idx) and u_c
		c    float32
		fn   func(x, c float64) float64
	}
	rng := rand.New(rand.NewSource(2016))
	intOps := func() op {
		switch rng.Intn(4) {
		case 0:
			c := float32(rng.Intn(100))
			return op{"gc_x(idx) + u_c", c, func(x, c float64) float64 { return x + c }}
		case 1:
			c := float32(1 + rng.Intn(3))
			return op{"gc_x(idx) * u_c", c, func(x, c float64) float64 { return x * c }}
		case 2:
			return op{"max(gc_x(idx), 0.0)", 0, func(x, c float64) float64 { return math.Max(x, 0) }}
		default:
			c := float32(int32(1) << uint(1+rng.Intn(3)))
			return op{"floor(gc_x(idx) / u_c)", c, func(x, c float64) float64 { return math.Floor(x / c) }}
		}
	}
	floatOps := func() op {
		switch rng.Intn(4) {
		case 0:
			c := rng.Float32() * 2
			return op{"gc_x(idx) + u_c", c, func(x, c float64) float64 { return x + c }}
		case 1:
			c := 0.5 + rng.Float32()*1.5
			return op{"gc_x(idx) * u_c", c, func(x, c float64) float64 { return x * c }}
		case 2:
			return op{"max(gc_x(idx), 0.0)", 0, func(x, c float64) float64 { return math.Max(x, 0) }}
		default:
			c := 1 + rng.Float32()
			return op{"gc_x(idx) / u_c", c, func(x, c float64) float64 { return x / c }}
		}
	}

	for trial := 0; trial < 12; trial++ {
		isInt := trial%2 == 0
		elem := codec.Float32
		if isInt {
			elem = codec.Int32
		}
		depth := 2 + rng.Intn(5)
		ops := make([]op, depth)
		for i := range ops {
			if isInt {
				ops[i] = intOps()
			} else {
				ops[i] = floatOps()
			}
		}
		n := 33 + rng.Intn(300)

		build := func(p *Pipeline, x Ref) Ref {
			cur := x
			for i, o := range ops {
				k := mustKernel(t, d, ewSpec("prop-op", elem, []string{"u_c"}, o.body))
				cur = p.Stage(k, map[string]float32{"u_c": o.c}, cur)
				_ = i
			}
			return cur
		}
		runPipe := func(fuse bool, write func(*Buffer) error, read func(*Buffer) (interface{}, error)) (interface{}, PipelineStats) {
			p := d.NewPipeline()
			defer p.Close()
			p.SetFusion(fuse)
			x := p.Input(elem, n)
			p.Output(build(p, x))
			if err := p.Err(); err != nil {
				t.Fatal(err)
			}
			in, _ := d.NewBuffer(elem, n)
			out, _ := d.NewBuffer(elem, n)
			defer in.Free()
			defer out.Free()
			if err := write(in); err != nil {
				t.Fatal(err)
			}
			stats, err := p.Run([]*Buffer{out}, []*Buffer{in}, nil)
			if err != nil {
				t.Fatal(err)
			}
			v, err := read(out)
			if err != nil {
				t.Fatal(err)
			}
			return v, stats
		}

		if isInt {
			xs := make([]int32, n)
			for i := range xs {
				xs[i] = int32(rng.Intn(2000) - 1000)
			}
			w := func(b *Buffer) error { return b.WriteInt32(xs) }
			r := func(b *Buffer) (interface{}, error) { return b.ReadInt32() }
			want, su := runPipe(false, w, r)
			got, sf := runPipe(true, w, r)
			int32sEqual(t, "property int chain", want.([]int32), got.([]int32))
			if sf.Passes != 1 || su.Passes != depth {
				t.Fatalf("trial %d: passes fused=%d unfused=%d, want 1 and %d", trial, sf.Passes, su.Passes, depth)
			}
			// CPU reference: the exact chain in float64 (all values stay
			// integral and inside the 2^24 window).
			for i, x := range xs {
				v := float64(x)
				for _, o := range ops {
					v = o.fn(v, float64(o.c))
				}
				if int32(v) != got.([]int32)[i] {
					t.Fatalf("trial %d: element %d: fused %d != CPU %d", trial, i, got.([]int32)[i], int32(v))
				}
			}
		} else {
			xs := make([]float32, n)
			for i := range xs {
				xs[i] = rng.Float32() * 8
			}
			w := func(b *Buffer) error { return b.WriteFloat32(xs) }
			r := func(b *Buffer) (interface{}, error) { return b.ReadFloat32() }
			want, su := runPipe(false, w, r)
			got, sf := runPipe(true, w, r)
			if sf.Passes != 1 || su.Passes != depth {
				t.Fatalf("trial %d: passes fused=%d unfused=%d, want 1 and %d", trial, sf.Passes, su.Passes, depth)
			}
			// Positive monotone ops: relative tolerance 2^-10 comfortably
			// covers per-stage codec quantization (~2^-15 each).
			const tol = 1.0 / (1 << 10)
			for i, x := range xs {
				v := float64(x)
				for _, o := range ops {
					v = o.fn(v, float64(o.c))
				}
				for _, res := range []struct {
					label string
					vals  []float32
				}{{"fused", got.([]float32)}, {"unfused", want.([]float32)}} {
					err := math.Abs(float64(res.vals[i]) - v)
					if rel := err / math.Max(math.Abs(v), 1e-3); rel > tol {
						t.Fatalf("trial %d: %s element %d: %g vs reference %g (rel %.3g > %.3g)",
							trial, res.label, i, res.vals[i], v, rel, tol)
					}
				}
			}
		}
	}
}
