package core

import (
	"glescompute/internal/codec"
	"glescompute/internal/layout"
)

// poolKey identifies interchangeable buffers: same texel format and same
// texel grid (a buffer's texture storage is its grid; the format decides
// how many logical values each texel carries).
type poolKey struct {
	fmt  codec.Format
	grid layout.Grid
}

// BufferPool recycles device buffers. Pipelines use one for their
// ping-pong intermediates (a slot is released as soon as its last reader
// has run, so the next stage's output reuses the texture a previous
// stage wrote, and repeated pipeline execution is allocation-free); the
// scheduler's device workers use one per device for job and batch
// buffers. Buffers checked out of a pool are by construction never
// simultaneously bound as a stage's input and render target — the swap
// half of the runtime's hazard rule (Pipeline falls back to a copy when
// the target is a user-owned buffer it cannot swap).
//
// A pool is not safe for concurrent use; each owner (pipeline, device
// worker) keeps its own.
type BufferPool struct {
	dev  *Device
	free map[poolKey][]*Buffer
	all  []*Buffer

	// Retention caps; 0 means unlimited. Long-running services cap their
	// pools so request-shape diversity cannot grow memory without bound:
	// a Release over the cap frees the buffer instead of retaining it.
	perKeyLimit int
	totalLimit  int
	freeCount   int

	allocs int // buffers created because no free one matched
	reuses int // acquisitions served from the free lists
}

// NewBufferPool creates an empty pool over the device.
func NewBufferPool(d *Device) *BufferPool {
	return &BufferPool{dev: d, free: map[poolKey][]*Buffer{}}
}

// SetLimit caps retention: at most perKey free buffers per shape and
// total free buffers overall (0 = unlimited). Buffers released beyond a
// cap are freed immediately.
func (p *BufferPool) SetLimit(perKey, total int) {
	p.perKeyLimit, p.totalLimit = perKey, total
}

// Acquire returns a free pooled buffer of the given shape, allocating
// one when the pool has none. n may differ between users of the same
// grid (e.g. reduction tails); the logical length is rewritten on
// checkout.
func (p *BufferPool) Acquire(elem codec.ElemType, n int, grid layout.Grid) (*Buffer, error) {
	return p.AcquireFmt(codec.FormatOf(elem), n, grid)
}

// AcquireFmt is Acquire for an explicit texel format (packed intermediates
// of 4-wide pipelines).
func (p *BufferPool) AcquireFmt(f codec.Format, n int, grid layout.Grid) (*Buffer, error) {
	if err := p.dev.checkOpen("BufferPool.Acquire"); err != nil {
		return nil, err
	}
	key := poolKey{fmt: f, grid: grid}
	if list := p.free[key]; len(list) > 0 {
		b := list[len(list)-1]
		p.free[key] = list[:len(list)-1]
		p.freeCount--
		b.n = n
		p.reuses++
		return b, nil
	}
	b, err := p.dev.newBufferWithGrid(f, n, grid)
	if err != nil {
		return nil, err
	}
	p.allocs++
	p.all = append(p.all, b)
	return b, nil
}

// Release returns a buffer acquired from this pool to its free list, or
// frees it outright when a retention cap is exceeded.
func (p *BufferPool) Release(b *Buffer) {
	key := poolKey{fmt: b.fmt, grid: b.grid}
	if (p.perKeyLimit > 0 && len(p.free[key]) >= p.perKeyLimit) ||
		(p.totalLimit > 0 && p.freeCount >= p.totalLimit) {
		p.dropAndFree(b)
		return
	}
	p.free[key] = append(p.free[key], b)
	p.freeCount++
}

// dropAndFree removes b from the pool's ownership list and frees it.
func (p *BufferPool) dropAndFree(b *Buffer) {
	for i, o := range p.all {
		if o == b {
			p.all[i] = p.all[len(p.all)-1]
			p.all = p.all[:len(p.all)-1]
			break
		}
	}
	b.Free()
}

// FreeAll releases every GL object the pool ever allocated.
func (p *BufferPool) FreeAll() {
	for _, b := range p.all {
		b.Free()
	}
	p.all = nil
	p.free = map[poolKey][]*Buffer{}
	p.freeCount = 0
}
