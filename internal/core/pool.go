package core

import (
	"glescompute/internal/codec"
	"glescompute/internal/layout"
)

// poolKey identifies interchangeable intermediate buffers: same element
// type and same texel grid (a buffer's texture storage is its grid).
type poolKey struct {
	elem codec.ElemType
	grid layout.Grid
}

// bufferPool recycles device buffers for pipeline intermediates. A chain
// of same-sized stages ping-pongs between two pooled buffers (a slot is
// released as soon as its last reader has run, so the next stage's output
// reuses the texture a previous stage wrote); across Run calls the pool
// makes repeated pipeline execution allocation-free. Buffers checked out
// of the pool are by construction never simultaneously bound as a
// stage's input and render target — the swap half of the runtime's
// hazard rule (Pipeline falls back to a copy when the target is a
// user-owned buffer it cannot swap).
type bufferPool struct {
	dev  *Device
	free map[poolKey][]*Buffer
	all  []*Buffer

	allocs int // buffers created because no free one matched
	reuses int // acquisitions served from the free lists
}

func newBufferPool(d *Device) *bufferPool {
	return &bufferPool{dev: d, free: map[poolKey][]*Buffer{}}
}

// acquire returns a free pooled buffer of the given shape, allocating one
// when the pool has none. n may differ between users of the same grid
// (e.g. reduction tails); the logical length is rewritten on checkout.
func (p *bufferPool) acquire(elem codec.ElemType, n int, grid layout.Grid) (*Buffer, error) {
	key := poolKey{elem: elem, grid: grid}
	if list := p.free[key]; len(list) > 0 {
		b := list[len(list)-1]
		p.free[key] = list[:len(list)-1]
		b.n = n
		p.reuses++
		return b, nil
	}
	b, err := p.dev.newBufferWithGrid(elem, n, grid)
	if err != nil {
		return nil, err
	}
	p.allocs++
	p.all = append(p.all, b)
	return b, nil
}

// release returns a buffer acquired from this pool to its free list.
func (p *bufferPool) release(b *Buffer) {
	key := poolKey{elem: b.elem, grid: b.grid}
	p.free[key] = append(p.free[key], b)
}

// freeAll releases every GL object the pool ever allocated.
func (p *bufferPool) freeAll() {
	for _, b := range p.all {
		b.Free()
	}
	p.all = nil
	p.free = map[poolKey][]*Buffer{}
}
