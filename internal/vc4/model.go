// Package vc4 models the execution time of GPGPU workloads on a Broadcom
// VideoCore IV class GPU — the device in the paper's Raspberry Pi testbed.
// The simulator in internal/gles counts the scalar operations a kernel
// executes; this package converts those counts, plus host↔device transfer
// and shader-compilation overheads, into modeled wall-clock time.
//
// The machine model: 12 QPUs, each a 16-way virtual SIMD processor
// (4 physical lanes × 4 clock phases) at 250 MHz, with an add and a
// multiply pipe that can dual-issue. Peak arithmetic throughput is
// 12 × 4 × 2 × 250 MHz = 24 GFLOP/s — the "24 GFlops" the paper quotes.
// Special functions (exp2/log2/rcp/rsqrt) go through the shared SFU;
// texture fetches go through the TMUs; memory moves through the VPM DMA
// engine. Costs below are per scalar lane-operation in QPU cycles and are
// drawn from the public VideoCore IV architecture reference.
package vc4

import (
	"time"

	"glescompute/internal/gles"
	"glescompute/internal/shader"
)

// Model holds the device parameters. The zero value is unusable; use
// DefaultModel.
type Model struct {
	QPUs         int     // parallel QPU processors
	LanesPerQPU  int     // physical SIMD lanes retiring per cycle
	ClockHz      float64 // QPU clock
	DualIssueEff float64 // fraction of ALU ops paired into one instruction

	// Per scalar-op cycle costs (lane-cycles).
	CycAdd    float64
	CycMul    float64
	CycDiv    float64 // SFU rcp + Newton-Raphson refinement + multiply
	CycCmp    float64
	CycLogic  float64
	CycMov    float64
	CycSelect float64
	CycSFU    float64 // exp2/log2/rsqrt issue + latency share
	CycTex    float64 // TMU fetch, partially hidden by threading
	CycBranch float64 // diverging branch penalty across the SIMD group
	CycCall   float64

	// Per-invocation overhead: varying interpolation setup, tile walker,
	// scoreboard — cycles per fragment or vertex.
	CycPerInvocation float64

	// Memory-system parameters.
	UploadBytesPerSec   float64 // texture upload bandwidth (host→GPU)
	ReadbackBytesPerSec float64 // glReadPixels effective bandwidth
	UploadCallOverhead  time.Duration
	ReadbackOverhead    time.Duration // per-call driver/pipeline flush cost

	// Driver costs the paper's wall-clock timings include.
	CompileTimePerShader time.Duration
	LinkTimePerProgram   time.Duration
	// BinaryLoadPerProgram prices restoring a pre-compiled program through
	// glProgramBinaryOES: a blob read plus relocation/table rebuild, no
	// front-end and no code generation. Measured loads on VideoCore-class
	// drivers are a few hundred microseconds against ~10 ms for a two-stage
	// source compile+link.
	BinaryLoadPerProgram time.Duration
	DrawCallOverhead     time.Duration
}

// DefaultModel returns parameters for the Raspberry Pi's VideoCore IV
// (BCM2835 generation, as in the paper's testbed).
func DefaultModel() *Model {
	return &Model{
		QPUs:         12,
		LanesPerQPU:  4,
		ClockHz:      250e6,
		DualIssueEff: 0.40, // compiled GPGPU code pairs ~40% of ALU ops

		// The interpreter counts raw AST operations; these per-op costs
		// fold in what the Broadcom shader compiler does to them. Moves
		// nearly vanish under register coalescing; calls are always fully
		// inlined (the QPU has no call stack); divisions by uniforms and
		// constants become multiplies by hoisted reciprocals; short
		// branches become predicated instructions.
		CycAdd:    1,
		CycMul:    1,
		CycDiv:    2.5,
		CycCmp:    1,
		CycLogic:  1,
		CycMov:    0.1,
		CycSelect: 1,
		CycSFU:    8,   // SFU issue + r4 result move + pipeline bubble
		CycTex:    3.5, // 8-20 cycle latency, largely hidden by co-issue
		CycBranch: 1,
		CycCall:   0,

		CycPerInvocation: 10,

		// The VideoCore owns the SDRAM controller and the 128 KB L2 on the
		// BCM2835; driver texture uploads move through a DMA-assisted path
		// while ReadPixels detiles through the CPU.
		UploadBytesPerSec:   900e6,
		ReadbackBytesPerSec: 400e6,
		UploadCallOverhead:  60 * time.Microsecond,
		ReadbackOverhead:    300 * time.Microsecond,

		CompileTimePerShader: 4 * time.Millisecond,
		LinkTimePerProgram:   2 * time.Millisecond,
		BinaryLoadPerProgram: 200 * time.Microsecond,
		DrawCallOverhead:     120 * time.Microsecond,
	}
}

// laneCycles converts shader statistics into total lane-cycles.
func (m *Model) laneCycles(s *shader.Stats) float64 {
	alu := float64(s.Add)*m.CycAdd +
		float64(s.Mul)*m.CycMul +
		float64(s.Cmp)*m.CycCmp +
		float64(s.Logic)*m.CycLogic +
		float64(s.Mov)*m.CycMov +
		float64(s.Select)*m.CycSelect
	// Dual-issue folds a fraction of ALU ops into shared instructions.
	alu *= 1 - m.DualIssueEff/2
	other := float64(s.Div)*m.CycDiv +
		float64(s.SFU)*m.CycSFU +
		float64(s.Tex)*m.CycTex +
		float64(s.Branch)*m.CycBranch +
		float64(s.Call)*m.CycCall
	inv := float64(s.Invocations) * m.CycPerInvocation
	return alu + other + inv
}

// ShaderTime models the execution time of the counted shader work,
// spread across all QPU lanes.
func (m *Model) ShaderTime(s *shader.Stats) time.Duration {
	lanes := float64(m.QPUs * m.LanesPerQPU)
	seconds := m.laneCycles(s) / (lanes * m.ClockHz)
	return time.Duration(seconds * float64(time.Second))
}

// DrawTime models one draw call: vertex work + fragment work + fixed
// submission overhead.
func (m *Model) DrawTime(d *gles.DrawStats) time.Duration {
	t := m.ShaderTime(&d.VertexStats) + m.ShaderTime(&d.FragmentStats)
	t += time.Duration(d.DrawCalls) * m.DrawCallOverhead
	return t
}

// TransferTime models host↔device traffic (the paper's wall times include
// data transfers).
func (m *Model) TransferTime(tr *gles.TransferStats) time.Duration {
	up := time.Duration(float64(tr.TexUploadBytes) / m.UploadBytesPerSec * float64(time.Second))
	up += time.Duration(tr.TexUploadCalls) * m.UploadCallOverhead
	down := time.Duration(float64(tr.ReadPixelsBytes) / m.ReadbackBytesPerSec * float64(time.Second))
	down += time.Duration(tr.ReadPixelsCalls) * m.ReadbackOverhead
	return up + down
}

// CompileTime models shader compilation and program linking (included in
// the paper's wall times: "including ... kernel compilations").
func (m *Model) CompileTime(tr *gles.TransferStats) time.Duration {
	return time.Duration(tr.CompileCount)*m.CompileTimePerShader +
		time.Duration(tr.LinkCount)*m.LinkTimePerProgram +
		time.Duration(tr.BinaryLoadCount)*m.BinaryLoadPerProgram
}

// WallTime models a complete GPGPU application run from the context's
// accumulated statistics: compile + upload + execute + readback.
func (m *Model) WallTime(draws *gles.DrawStats, tr *gles.TransferStats) time.Duration {
	return m.CompileTime(tr) + m.TransferTime(tr) + m.DrawTime(draws)
}

// PeakGFLOPS reports the theoretical peak of the modeled device in
// GFLOP/s (sanity anchor: the paper quotes 24 for the VideoCore IV).
func (m *Model) PeakGFLOPS() float64 {
	return float64(m.QPUs*m.LanesPerQPU) * 2 * m.ClockHz / 1e9
}
