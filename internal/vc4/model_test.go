package vc4

import (
	"testing"
	"time"

	"glescompute/internal/gles"
	"glescompute/internal/shader"
)

func TestPeakGFLOPSMatchesPaper(t *testing.T) {
	m := DefaultModel()
	// The paper (§I) quotes the VideoCore IV at 24 GFlops.
	if got := m.PeakGFLOPS(); got != 24 {
		t.Errorf("peak = %g GFLOPS, want 24 (paper §I)", got)
	}
}

func TestShaderTimeScalesLinearly(t *testing.T) {
	m := DefaultModel()
	s1 := shader.Stats{Add: 1000, Mul: 1000, Invocations: 100}
	s2 := shader.Stats{Add: 2000, Mul: 2000, Invocations: 200}
	t1 := m.ShaderTime(&s1)
	t2 := m.ShaderTime(&s2)
	if diff := t2 - 2*t1; diff < -time.Nanosecond || diff > time.Nanosecond {
		t.Errorf("time must scale linearly: %v vs %v", t1, t2)
	}
	if t1 <= 0 {
		t.Error("non-empty stats must cost time")
	}
}

func TestShaderTimeOpWeights(t *testing.T) {
	m := DefaultModel()
	sfu := shader.Stats{SFU: 1000}
	add := shader.Stats{Add: 1000}
	if m.ShaderTime(&sfu) <= m.ShaderTime(&add) {
		t.Error("SFU ops must cost more than plain adds")
	}
	div := shader.Stats{Div: 1000}
	if m.ShaderTime(&div) <= m.ShaderTime(&add) {
		t.Error("divisions must cost more than adds")
	}
	mov := shader.Stats{Mov: 1000}
	if m.ShaderTime(&mov) >= m.ShaderTime(&add) {
		t.Error("moves must be cheaper than adds (register coalescing)")
	}
}

func TestTransferAndCompileTime(t *testing.T) {
	m := DefaultModel()
	tr := gles.TransferStats{
		TexUploadBytes:  uint64(m.UploadBytesPerSec), // exactly one second
		TexUploadCalls:  1,
		ReadPixelsBytes: uint64(m.ReadbackBytesPerSec),
		ReadPixelsCalls: 1,
		CompileCount:    2,
		LinkCount:       1,
	}
	tt := m.TransferTime(&tr)
	want := 2*time.Second + m.UploadCallOverhead + m.ReadbackOverhead
	if diff := tt - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("transfer time %v, want ~%v", tt, want)
	}
	ct := m.CompileTime(&tr)
	if ct != 2*m.CompileTimePerShader+m.LinkTimePerProgram {
		t.Errorf("compile time %v", ct)
	}
}

func TestWallTimeComposition(t *testing.T) {
	m := DefaultModel()
	draws := gles.DrawStats{
		DrawCalls:     1,
		FragmentStats: shader.Stats{Add: 1 << 20, Invocations: 1 << 16},
	}
	tr := gles.TransferStats{TexUploadBytes: 1 << 20, TexUploadCalls: 1, CompileCount: 2, LinkCount: 1}
	total := m.WallTime(&draws, &tr)
	sum := m.CompileTime(&tr) + m.TransferTime(&tr) + m.DrawTime(&draws)
	if total != sum {
		t.Errorf("WallTime %v != components %v", total, sum)
	}
}

func TestDualIssueReducesALUTime(t *testing.T) {
	m := DefaultModel()
	m.DualIssueEff = 0
	s := shader.Stats{Add: 10000, Mul: 10000}
	slow := m.ShaderTime(&s)
	m.DualIssueEff = 1
	fast := m.ShaderTime(&s)
	if fast >= slow {
		t.Error("full dual-issue must halve ALU time")
	}
}
