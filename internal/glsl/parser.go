package glsl

import (
	"fmt"
)

// Parser builds a TranslationUnit from tokens. It is a conventional
// recursive-descent parser following the GLSL ES 1.00 grammar, with the
// ES-specific restrictions enforced either here (reserved operators, brace
// initializers) or in the checker (everything type-related).
type Parser struct {
	lx   *Lexer
	tok  Token
	errs ErrorList

	// structNames tracks struct type names per lexical scope so that the
	// parser can distinguish declarations from expressions.
	structNames []map[string]*StructInfo
}

// NewParser returns a parser over preprocessed source text.
func NewParser(src string) *Parser {
	p := &Parser{lx: NewLexer(src)}
	p.structNames = []map[string]*StructInfo{{}}
	p.next()
	return p
}

// Parse parses a whole shader (after preprocessing).
func Parse(src string) (*TranslationUnit, ErrorList) {
	pp, perrs := Preprocess(src)
	p := NewParser(pp.Source)
	tu := p.parseTranslationUnit()
	tu.Version = pp.Version
	errs := append(ErrorList{}, perrs...)
	errs = append(errs, p.lx.Errors()...)
	errs = append(errs, p.errs...)
	return tu, errs
}

func (p *Parser) next() {
	p.tok = p.lx.Next()
	// Reserved words have already been diagnosed by the lexer; skip them so
	// parsing can continue.
	for p.tok.Kind == TokReservedWord {
		p.tok = p.lx.Next()
	}
}

func (p *Parser) errorf(pos Pos, format string, args ...interface{}) {
	if len(p.errs) < 100 {
		p.errs = append(p.errs, &CompileError{Pos: pos, Stage: "parse", Msg: fmt.Sprintf(format, args...)})
	}
}

func (p *Parser) expect(k TokenKind) Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		// Do not consume: the caller's recovery logic decides.
		return Token{Kind: k, Pos: t.Pos}
	}
	p.next()
	return t
}

func (p *Parser) accept(k TokenKind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

// skipTo advances until one of the kinds (or EOF) is current; used for error
// recovery.
func (p *Parser) skipTo(kinds ...TokenKind) {
	for p.tok.Kind != TokEOF {
		for _, k := range kinds {
			if p.tok.Kind == k {
				return
			}
		}
		p.next()
	}
}

func (p *Parser) pushScope() {
	p.structNames = append(p.structNames, map[string]*StructInfo{})
}

func (p *Parser) popScope() {
	p.structNames = p.structNames[:len(p.structNames)-1]
}

func (p *Parser) declareStructName(info *StructInfo) {
	p.structNames[len(p.structNames)-1][info.Name] = info
}

func (p *Parser) lookupStructName(name string) *StructInfo {
	for i := len(p.structNames) - 1; i >= 0; i-- {
		if info, ok := p.structNames[i][name]; ok {
			return info
		}
	}
	return nil
}

// ---- Top level ----

func (p *Parser) parseTranslationUnit() *TranslationUnit {
	tu := &TranslationUnit{}
	for p.tok.Kind != TokEOF {
		start := p.tok
		d := p.parseExternalDecl()
		if d != nil {
			tu.Decls = append(tu.Decls, d...)
		}
		if p.tok.Kind == start.Kind && p.tok.Pos == start.Pos && p.tok.Kind != TokEOF {
			// No progress: skip the offending token to guarantee termination.
			p.next()
		}
	}
	return tu
}

// parseExternalDecl parses one file-scope construct, returning the nodes it
// produced (a declaration list can produce several VarDecls).
func (p *Parser) parseExternalDecl() []Node {
	switch p.tok.Kind {
	case TokSemicolon:
		p.next()
		return nil
	case TokPrecision:
		return p.parsePrecisionDecl()
	case TokInvariant:
		return p.parseInvariantDecl()
	}

	qual, prec, invariant := p.parseQualifiers()

	if p.tok.Kind == TokStruct {
		return p.parseStructDeclaration(qual, prec)
	}

	declType := p.parseTypeSpecifier()
	if declType == nil {
		p.errorf(p.tok.Pos, "expected declaration, found %s", p.tok)
		p.skipTo(TokSemicolon, TokRBrace)
		p.accept(TokSemicolon)
		return nil
	}

	if p.tok.Kind != TokIdent {
		// "float;" — legal but useless; consume.
		p.expect(TokSemicolon)
		return nil
	}
	nameTok := p.tok
	p.next()

	if p.tok.Kind == TokLParen {
		if qual != QualNone {
			p.errorf(nameTok.Pos, "functions may not have a %s qualifier", qual)
		}
		fd := p.parseFunctionRest(nameTok, declType, prec)
		if fd == nil {
			return nil
		}
		return []Node{fd}
	}

	vars := p.parseDeclaratorList(nameTok, declType, qual, prec, invariant)
	nodes := make([]Node, 0, len(vars))
	for _, v := range vars {
		nodes = append(nodes, v)
	}
	return nodes
}

func (p *Parser) parsePrecisionDecl() []Node {
	pos := p.tok.Pos
	p.next()
	prec := p.parsePrecisionQualifier()
	if prec == PrecNone {
		p.errorf(p.tok.Pos, "expected precision qualifier after 'precision'")
	}
	t := p.parseTypeSpecifier()
	if t == nil {
		p.errorf(p.tok.Pos, "expected type in precision declaration")
	} else {
		switch t.Kind {
		case KFloat, KInt, KSampler2D, KSamplerCube:
		default:
			p.errorf(pos, "precision can only be declared for float, int and sampler types, not %s", t)
		}
	}
	p.expect(TokSemicolon)
	return []Node{&PrecisionDecl{Pos: pos, Prec: prec, Of: t}}
}

func (p *Parser) parseInvariantDecl() []Node {
	pos := p.tok.Pos
	p.next()
	// Either "invariant gl_Position;" (re-declaration) or an invariant
	// varying declaration, which parseQualifiers would have handled; here we
	// only deal with the name list form.
	if p.tok.Kind == TokIdent {
		d := &InvariantDecl{Pos: pos}
		d.Names = append(d.Names, p.tok.Text)
		p.next()
		for p.accept(TokComma) {
			t := p.expect(TokIdent)
			d.Names = append(d.Names, t.Text)
		}
		p.expect(TokSemicolon)
		return []Node{d}
	}
	// invariant varying ... : rewind is impossible, so parse inline.
	qual, prec, _ := p.parseQualifiers()
	declType := p.parseTypeSpecifier()
	if declType == nil {
		p.errorf(p.tok.Pos, "expected type after 'invariant'")
		p.skipTo(TokSemicolon)
		p.accept(TokSemicolon)
		return nil
	}
	nameTok := p.expect(TokIdent)
	vars := p.parseDeclaratorList(nameTok, declType, qual, prec, true)
	nodes := make([]Node, 0, len(vars))
	for _, v := range vars {
		nodes = append(nodes, v)
	}
	return nodes
}

// parseQualifiers consumes [invariant] [const|attribute|uniform|varying]
// [precision].
func (p *Parser) parseQualifiers() (Qualifier, Precision, bool) {
	invariant := false
	if p.tok.Kind == TokInvariant {
		invariant = true
		p.next()
	}
	qual := QualNone
	switch p.tok.Kind {
	case TokConst:
		qual = QualConst
		p.next()
	case TokAttribute:
		qual = QualAttribute
		p.next()
	case TokUniform:
		qual = QualUniform
		p.next()
	case TokVarying:
		qual = QualVarying
		p.next()
	}
	prec := p.parsePrecisionQualifier()
	return qual, prec, invariant
}

func (p *Parser) parsePrecisionQualifier() Precision {
	switch p.tok.Kind {
	case TokLowp:
		p.next()
		return PrecLow
	case TokMediump:
		p.next()
		return PrecMedium
	case TokHighp:
		p.next()
		return PrecHigh
	}
	return PrecNone
}

// parseTypeSpecifier parses a type keyword, a struct-name reference, or an
// inline struct definition. Returns nil when the current token does not
// start a type.
func (p *Parser) parseTypeSpecifier() *Type {
	if t := typeFromToken(p.tok.Kind); t != nil {
		p.next()
		return t
	}
	if p.tok.Kind == TokStruct {
		info := p.parseStructBody()
		if info == nil {
			return nil
		}
		return StructType(info)
	}
	if p.tok.Kind == TokIdent {
		if info := p.lookupStructName(p.tok.Text); info != nil {
			p.next()
			return StructType(info)
		}
	}
	return nil
}

// parseStructBody parses 'struct' [name] '{' fields '}' and registers the
// name in the current scope.
func (p *Parser) parseStructBody() *StructInfo {
	p.expect(TokStruct)
	info := &StructInfo{}
	if p.tok.Kind == TokIdent {
		info.Name = p.tok.Text
		p.next()
	}
	p.expect(TokLBrace)
	for p.tok.Kind != TokRBrace && p.tok.Kind != TokEOF {
		prec := p.parsePrecisionQualifier()
		_ = prec
		ft := p.parseTypeSpecifier()
		if ft == nil {
			p.errorf(p.tok.Pos, "expected type in struct field declaration, found %s", p.tok)
			p.skipTo(TokSemicolon, TokRBrace)
			p.accept(TokSemicolon)
			continue
		}
		for {
			nameTok := p.expect(TokIdent)
			fieldType := ft
			if p.accept(TokLBracket) {
				size := p.parseConstIntExpr()
				p.expect(TokRBracket)
				fieldType = ArrayOf(ft, size)
			}
			if info.FieldIndex(nameTok.Text) >= 0 {
				p.errorf(nameTok.Pos, "duplicate struct field %q", nameTok.Text)
			}
			info.Fields = append(info.Fields, StructField{Name: nameTok.Text, Type: fieldType})
			if !p.accept(TokComma) {
				break
			}
		}
		p.expect(TokSemicolon)
	}
	p.expect(TokRBrace)
	if len(info.Fields) == 0 {
		p.errorf(p.tok.Pos, "struct must have at least one field")
	}
	if info.Name != "" {
		p.declareStructName(info)
	}
	return info
}

// parseStructDeclaration handles a file/block-scope struct definition with an
// optional declarator list: struct S { ... } a, b;
func (p *Parser) parseStructDeclaration(qual Qualifier, prec Precision) []Node {
	pos := p.tok.Pos
	info := p.parseStructBody()
	if info == nil {
		return nil
	}
	nodes := []Node{&StructDecl{Pos: pos, Info: info}}
	if p.tok.Kind == TokIdent {
		nameTok := p.tok
		p.next()
		vars := p.parseDeclaratorList(nameTok, StructType(info), qual, prec, false)
		for _, v := range vars {
			nodes = append(nodes, v)
		}
		return nodes
	}
	p.expect(TokSemicolon)
	return nodes
}

// parseDeclaratorList parses "name [N] [= init] (, name2 ...)* ;" where the
// first name token has already been consumed.
func (p *Parser) parseDeclaratorList(first Token, base *Type, qual Qualifier, prec Precision, invariant bool) []*VarDecl {
	var vars []*VarDecl
	nameTok := first
	for {
		t := base
		if p.accept(TokLBracket) {
			size := p.parseConstIntExpr()
			p.expect(TokRBracket)
			t = ArrayOf(base, size)
		}
		v := &VarDecl{
			Pos:       nameTok.Pos,
			Name:      nameTok.Text,
			DeclType:  t,
			Qual:      qual,
			Prec:      prec,
			Invariant: invariant,
		}
		if p.accept(TokAssign) {
			if p.tok.Kind == TokLBrace {
				p.errorf(p.tok.Pos, "GLSL ES 1.00 does not support brace initializers")
				p.skipTo(TokSemicolon)
			} else {
				v.Init = p.parseAssignmentExpr()
			}
		}
		vars = append(vars, v)
		if !p.accept(TokComma) {
			break
		}
		nameTok = p.expect(TokIdent)
		if nameTok.Text == "" {
			break
		}
	}
	p.expect(TokSemicolon)
	return vars
}

// parseConstIntExpr parses a conditional expression and folds it to an int,
// for array sizes. Full folding happens in sema; here we fold literals and
// simple arithmetic to keep the type usable during parsing.
func (p *Parser) parseConstIntExpr() int {
	e := p.parseConditionalExpr()
	if v, ok := foldParseTimeInt(e); ok {
		if v <= 0 {
			p.errorf(e.NodePos(), "array size must be positive, got %d", v)
			return 1
		}
		return int(v)
	}
	p.errorf(e.NodePos(), "array size must be a constant integer expression")
	return 1
}

// foldParseTimeInt folds literal integer arithmetic at parse time.
func foldParseTimeInt(e Expr) (int32, bool) {
	switch x := e.(type) {
	case *IntLit:
		return x.Val, true
	case *UnaryExpr:
		v, ok := foldParseTimeInt(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case TokMinus:
			return -v, true
		case TokPlus:
			return v, true
		}
	case *BinaryExpr:
		a, ok1 := foldParseTimeInt(x.X)
		b, ok2 := foldParseTimeInt(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case TokPlus:
			return a + b, true
		case TokMinus:
			return a - b, true
		case TokStar:
			return a * b, true
		case TokSlash:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		}
	}
	return 0, false
}

// ---- Functions ----

func (p *Parser) parseFunctionRest(nameTok Token, ret *Type, retPrec Precision) *FuncDecl {
	fd := &FuncDecl{Pos: nameTok.Pos, Name: nameTok.Text, Ret: ret, RetPrec: retPrec}
	p.expect(TokLParen)
	if p.tok.Kind != TokRParen {
		// 'void' alone means no parameters.
		if p.tok.Kind == TokVoid {
			save := p.tok
			p.next()
			if p.tok.Kind == TokRParen {
				// no params
			} else {
				p.errorf(save.Pos, "'void' parameter must be alone")
				p.skipTo(TokRParen)
			}
		} else {
			for {
				param := p.parseParam()
				if param != nil {
					fd.Params = append(fd.Params, param)
				}
				if !p.accept(TokComma) {
					break
				}
			}
		}
	}
	p.expect(TokRParen)
	if p.accept(TokSemicolon) {
		return fd // prototype
	}
	if p.tok.Kind != TokLBrace {
		p.errorf(p.tok.Pos, "expected function body or ';', found %s", p.tok)
		p.skipTo(TokLBrace, TokSemicolon)
		if !p.accept(TokSemicolon) && p.tok.Kind != TokLBrace {
			return fd
		}
		if p.tok.Kind != TokLBrace {
			return fd
		}
	}
	fd.Body = p.parseBlock()
	return fd
}

func (p *Parser) parseParam() *VarDecl {
	if p.accept(TokConst) {
		// const-qualified in parameters are accepted and treated as in.
	}
	dir := DirIn
	switch p.tok.Kind {
	case TokIn:
		p.next()
	case TokOut:
		dir = DirOut
		p.next()
	case TokInout:
		dir = DirInOut
		p.next()
	}
	prec := p.parsePrecisionQualifier()
	t := p.parseTypeSpecifier()
	if t == nil {
		p.errorf(p.tok.Pos, "expected parameter type, found %s", p.tok)
		p.skipTo(TokComma, TokRParen)
		return nil
	}
	v := &VarDecl{Pos: p.tok.Pos, DeclType: t, Prec: prec, IsParam: true, Dir: dir}
	if p.tok.Kind == TokIdent {
		v.Name = p.tok.Text
		v.Pos = p.tok.Pos
		p.next()
		if p.accept(TokLBracket) {
			size := p.parseConstIntExpr()
			p.expect(TokRBracket)
			v.DeclType = ArrayOf(t, size)
		}
	}
	return v
}

// ---- Statements ----

func (p *Parser) parseBlock() *BlockStmt {
	b := &BlockStmt{stmtBase: stmtBase{Pos: p.tok.Pos}}
	p.expect(TokLBrace)
	p.pushScope()
	for p.tok.Kind != TokRBrace && p.tok.Kind != TokEOF {
		start := p.tok
		s := p.parseStatement()
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
		if p.tok.Kind == start.Kind && p.tok.Pos == start.Pos && p.tok.Kind != TokRBrace {
			p.next()
		}
	}
	p.popScope()
	p.expect(TokRBrace)
	return b
}

// startsDeclaration reports whether the current token begins a declaration.
func (p *Parser) startsDeclaration() bool {
	switch p.tok.Kind {
	case TokConst, TokStruct, TokLowp, TokMediump, TokHighp, TokPrecision, TokInvariant,
		TokAttribute, TokUniform, TokVarying:
		return true
	}
	if typeFromToken(p.tok.Kind) != nil {
		return true
	}
	if p.tok.Kind == TokIdent && p.lookupStructName(p.tok.Text) != nil {
		return true
	}
	return false
}

func (p *Parser) parseStatement() Stmt {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokSemicolon:
		p.next()
		return &EmptyStmt{stmtBase{Pos: pos}}
	case TokIf:
		return p.parseIf()
	case TokFor:
		return p.parseFor()
	case TokWhile:
		return p.parseWhile()
	case TokDo:
		return p.parseDoWhile()
	case TokReturn:
		p.next()
		r := &ReturnStmt{stmtBase: stmtBase{Pos: pos}}
		if p.tok.Kind != TokSemicolon {
			r.X = p.parseExpression()
		}
		p.expect(TokSemicolon)
		return r
	case TokBreak:
		p.next()
		p.expect(TokSemicolon)
		return &BreakStmt{stmtBase{Pos: pos}}
	case TokContinue:
		p.next()
		p.expect(TokSemicolon)
		return &ContinueStmt{stmtBase{Pos: pos}}
	case TokDiscard:
		p.next()
		p.expect(TokSemicolon)
		return &DiscardStmt{stmtBase{Pos: pos}}
	case TokPrecision:
		// Block-scope precision declaration: parse and drop (it has no
		// semantic effect in this implementation).
		p.parsePrecisionDecl()
		return &EmptyStmt{stmtBase{Pos: pos}}
	}
	if p.startsDeclaration() {
		return p.parseDeclStmt()
	}
	x := p.parseExpression()
	p.expect(TokSemicolon)
	return &ExprStmt{stmtBase: stmtBase{Pos: pos}, X: x}
}

func (p *Parser) parseDeclStmt() Stmt {
	pos := p.tok.Pos
	qual, prec, invariant := p.parseQualifiers()

	if p.tok.Kind == TokStruct {
		structPos := p.tok.Pos
		info := p.parseStructBody()
		ds := &DeclStmt{stmtBase: stmtBase{Pos: pos}}
		if info != nil {
			ds.Struct = &StructDecl{Pos: structPos, Info: info}
			if p.tok.Kind == TokIdent {
				nameTok := p.tok
				p.next()
				ds.Vars = p.parseDeclaratorList(nameTok, StructType(info), qual, prec, invariant)
				return ds
			}
		}
		p.expect(TokSemicolon)
		return ds
	}

	t := p.parseTypeSpecifier()
	if t == nil {
		p.errorf(p.tok.Pos, "expected type in declaration, found %s", p.tok)
		p.skipTo(TokSemicolon, TokRBrace)
		p.accept(TokSemicolon)
		return &EmptyStmt{stmtBase{Pos: pos}}
	}
	nameTok := p.expect(TokIdent)
	vars := p.parseDeclaratorList(nameTok, t, qual, prec, invariant)
	return &DeclStmt{stmtBase: stmtBase{Pos: pos}, Vars: vars}
}

func (p *Parser) parseIf() Stmt {
	pos := p.tok.Pos
	p.expect(TokIf)
	p.expect(TokLParen)
	cond := p.parseExpression()
	p.expect(TokRParen)
	then := p.parseStatement()
	var els Stmt
	if p.accept(TokElse) {
		els = p.parseStatement()
	}
	return &IfStmt{stmtBase: stmtBase{Pos: pos}, Cond: cond, Then: then, Else: els}
}

func (p *Parser) parseFor() Stmt {
	pos := p.tok.Pos
	p.expect(TokFor)
	p.expect(TokLParen)
	p.pushScope()
	f := &ForStmt{stmtBase: stmtBase{Pos: pos}}
	if p.tok.Kind != TokSemicolon {
		if p.startsDeclaration() {
			f.InitStmt = p.parseDeclStmt() // consumes ';'
		} else {
			x := p.parseExpression()
			p.expect(TokSemicolon)
			f.InitStmt = &ExprStmt{stmtBase: stmtBase{Pos: x.NodePos()}, X: x}
		}
	} else {
		p.next()
	}
	if p.tok.Kind != TokSemicolon {
		f.Cond = p.parseExpression()
	}
	p.expect(TokSemicolon)
	if p.tok.Kind != TokRParen {
		f.Post = p.parseExpression()
	}
	p.expect(TokRParen)
	f.Body = p.parseStatement()
	p.popScope()
	return f
}

func (p *Parser) parseWhile() Stmt {
	pos := p.tok.Pos
	p.expect(TokWhile)
	p.expect(TokLParen)
	cond := p.parseExpression()
	p.expect(TokRParen)
	body := p.parseStatement()
	return &WhileStmt{stmtBase: stmtBase{Pos: pos}, Cond: cond, Body: body}
}

func (p *Parser) parseDoWhile() Stmt {
	pos := p.tok.Pos
	p.expect(TokDo)
	body := p.parseStatement()
	p.expect(TokWhile)
	p.expect(TokLParen)
	cond := p.parseExpression()
	p.expect(TokRParen)
	p.expect(TokSemicolon)
	return &DoWhileStmt{stmtBase: stmtBase{Pos: pos}, Body: body, Cond: cond}
}

// ---- Expressions ----

// parseExpression parses a full expression including the comma operator.
func (p *Parser) parseExpression() Expr {
	x := p.parseAssignmentExpr()
	for p.tok.Kind == TokComma {
		pos := p.tok.Pos
		p.next()
		y := p.parseAssignmentExpr()
		x = &SequenceExpr{exprBase: exprBase{Pos: pos}, X: x, Y: y}
	}
	return x
}

func (p *Parser) parseAssignmentExpr() Expr {
	x := p.parseConditionalExpr()
	switch p.tok.Kind {
	case TokAssign, TokPlusAssign, TokMinusAssign, TokStarAssign, TokSlashAssign:
		op := p.tok.Kind
		pos := p.tok.Pos
		p.next()
		y := p.parseAssignmentExpr()
		return &AssignExpr{exprBase: exprBase{Pos: pos}, Op: op, LHS: x, RHS: y}
	case TokPercentAssign:
		p.errorf(p.tok.Pos, "operator '%%=' is reserved in GLSL ES 1.00")
		p.next()
		p.parseAssignmentExpr()
		return x
	}
	return x
}

func (p *Parser) parseConditionalExpr() Expr {
	cond := p.parseBinaryExpr(0)
	if p.tok.Kind == TokQuestion {
		pos := p.tok.Pos
		p.next()
		then := p.parseAssignmentExpr()
		p.expect(TokColon)
		els := p.parseAssignmentExpr()
		return &CondExpr{exprBase: exprBase{Pos: pos}, Cond: cond, Then: then, Else: els}
	}
	return cond
}

// binaryPrec maps operator tokens to precedence levels (higher binds
// tighter). Reserved operators get a precedence so that they parse, then
// error out.
func binaryPrec(k TokenKind) int {
	switch k {
	case TokStar, TokSlash, TokPercent:
		return 7
	case TokPlus, TokMinus:
		return 6
	case TokShl, TokShr:
		return 5
	case TokLess, TokGreater, TokLessEq, TokGreaterEq:
		return 4
	case TokEqEq, TokNotEq:
		return 3
	case TokAmp, TokCaret, TokPipe:
		return 2 // reserved; diagnosed on use
	case TokAndAnd:
		return 1
	case TokXorXor:
		return 1
	case TokOrOr:
		return 0
	}
	return -1
}

func isReservedOperator(k TokenKind) bool {
	switch k {
	case TokPercent, TokShl, TokShr, TokAmp, TokPipe, TokCaret, TokTilde:
		return true
	}
	return false
}

func (p *Parser) parseBinaryExpr(minPrec int) Expr {
	x := p.parseUnaryExpr()
	for {
		prec := binaryPrec(p.tok.Kind)
		if prec < minPrec {
			return x
		}
		op := p.tok.Kind
		pos := p.tok.Pos
		if isReservedOperator(op) {
			p.errorf(pos, "operator %s is reserved in GLSL ES 1.00", op)
		}
		p.next()
		y := p.parseBinaryExpr(prec + 1)
		x = &BinaryExpr{exprBase: exprBase{Pos: pos}, Op: op, X: x, Y: y}
	}
}

func (p *Parser) parseUnaryExpr() Expr {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokPlus, TokMinus, TokBang, TokInc, TokDec:
		op := p.tok.Kind
		p.next()
		x := p.parseUnaryExpr()
		return &UnaryExpr{exprBase: exprBase{Pos: pos}, Op: op, X: x}
	case TokTilde:
		p.errorf(pos, "operator '~' is reserved in GLSL ES 1.00")
		p.next()
		return p.parseUnaryExpr()
	}
	return p.parsePostfixExpr()
}

func (p *Parser) parsePostfixExpr() Expr {
	x := p.parsePrimaryExpr()
	for {
		switch p.tok.Kind {
		case TokLBracket:
			pos := p.tok.Pos
			p.next()
			idx := p.parseExpression()
			p.expect(TokRBracket)
			x = &IndexExpr{exprBase: exprBase{Pos: pos}, X: x, Index: idx}
		case TokDot:
			pos := p.tok.Pos
			p.next()
			name := p.expect(TokIdent)
			x = &FieldExpr{exprBase: exprBase{Pos: pos}, X: x, Name: name.Text, FieldIndex: -1}
		case TokInc, TokDec:
			op := p.tok.Kind
			pos := p.tok.Pos
			p.next()
			x = &UnaryExpr{exprBase: exprBase{Pos: pos}, Op: op, X: x, Postfix: true}
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimaryExpr() Expr {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokIntLit:
		v := p.tok.IntVal
		p.next()
		return &IntLit{exprBase: exprBase{Pos: pos}, Val: v}
	case TokFloatLit:
		v := p.tok.FloatVal
		p.next()
		return &FloatLit{exprBase: exprBase{Pos: pos}, Val: v}
	case TokBoolLit:
		v := p.tok.Text == "true"
		p.next()
		return &BoolLit{exprBase: exprBase{Pos: pos}, Val: v}
	case TokLParen:
		p.next()
		x := p.parseExpression()
		p.expect(TokRParen)
		return x
	case TokIdent:
		name := p.tok.Text
		p.next()
		if p.tok.Kind == TokLParen {
			return p.parseCallRest(pos, name)
		}
		return &Ident{exprBase: exprBase{Pos: pos}, Name: name}
	}
	// Type constructors: vec3(...), float(...), etc.
	if t := typeFromToken(p.tok.Kind); t != nil {
		name := p.tok.Text
		p.next()
		if p.tok.Kind == TokLParen {
			return p.parseCallRest(pos, name)
		}
		p.errorf(pos, "expected '(' after type name %q", name)
		return &Ident{exprBase: exprBase{Pos: pos}, Name: name}
	}
	p.errorf(pos, "expected expression, found %s", p.tok)
	p.next()
	return &IntLit{exprBase: exprBase{Pos: pos}, Val: 0}
}

func (p *Parser) parseCallRest(pos Pos, callee string) Expr {
	call := &CallExpr{exprBase: exprBase{Pos: pos}, Callee: callee}
	p.expect(TokLParen)
	if p.tok.Kind != TokRParen {
		if p.tok.Kind == TokVoid {
			p.next() // f(void)
		} else {
			for {
				call.Args = append(call.Args, p.parseAssignmentExpr())
				if !p.accept(TokComma) {
					break
				}
			}
		}
	}
	p.expect(TokRParen)
	return call
}
