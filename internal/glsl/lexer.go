package glsl

import (
	"fmt"
	"strconv"
	"strings"
)

// CompileError is a diagnostic attached to a source position. The Stage field
// allows GL-style info logs to distinguish preprocessor, lexer, parser and
// type-check errors.
type CompileError struct {
	Pos   Pos
	Stage string
	Msg   string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("%s: %s: %s", e.Pos, e.Stage, e.Msg)
}

// ErrorList accumulates diagnostics in source order.
type ErrorList []*CompileError

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	var b strings.Builder
	for i, e := range l {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

// Err returns the list as an error, or nil when empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

// Lexer turns GLSL ES source text into tokens. It expects preprocessed input
// (see Preprocess); preprocessor directives reaching the lexer are an error.
type Lexer struct {
	src    string
	off    int
	line   int
	col    int
	errs   ErrorList
	peeked *Token
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the diagnostics produced so far.
func (lx *Lexer) Errors() ErrorList { return lx.errs }

func (lx *Lexer) errorf(pos Pos, format string, args ...interface{}) {
	lx.errs = append(lx.errs, &CompileError{Pos: pos, Stage: "lex", Msg: fmt.Sprintf(format, args...)})
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekByteAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peekByteAt(1) == '/':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekByteAt(1) == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peekByte() == '*' && lx.peekByteAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				lx.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// Next returns the next token, consuming it.
func (lx *Lexer) Next() Token {
	if lx.peeked != nil {
		t := *lx.peeked
		lx.peeked = nil
		return t
	}
	return lx.scan()
}

// Peek returns the next token without consuming it.
func (lx *Lexer) Peek() Token {
	if lx.peeked == nil {
		t := lx.scan()
		lx.peeked = &t
	}
	return *lx.peeked
}

func (lx *Lexer) scan() Token {
	lx.skipSpaceAndComments()
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}
	}
	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		return lx.scanIdent(pos)
	case isDigit(c) || (c == '.' && isDigit(lx.peekByteAt(1))):
		return lx.scanNumber(pos)
	}
	lx.advance()
	two := func(next byte, k2, k1 TokenKind) Token {
		if lx.peekByte() == next {
			lx.advance()
			return Token{Kind: k2, Pos: pos}
		}
		return Token{Kind: k1, Pos: pos}
	}
	switch c {
	case '(':
		return Token{Kind: TokLParen, Pos: pos}
	case ')':
		return Token{Kind: TokRParen, Pos: pos}
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}
	case '.':
		return Token{Kind: TokDot, Pos: pos}
	case ',':
		return Token{Kind: TokComma, Pos: pos}
	case ':':
		return Token{Kind: TokColon, Pos: pos}
	case ';':
		return Token{Kind: TokSemicolon, Pos: pos}
	case '?':
		return Token{Kind: TokQuestion, Pos: pos}
	case '+':
		if lx.peekByte() == '+' {
			lx.advance()
			return Token{Kind: TokInc, Pos: pos}
		}
		return two('=', TokPlusAssign, TokPlus)
	case '-':
		if lx.peekByte() == '-' {
			lx.advance()
			return Token{Kind: TokDec, Pos: pos}
		}
		return two('=', TokMinusAssign, TokMinus)
	case '*':
		return two('=', TokStarAssign, TokStar)
	case '/':
		return two('=', TokSlashAssign, TokSlash)
	case '!':
		return two('=', TokNotEq, TokBang)
	case '=':
		return two('=', TokEqEq, TokAssign)
	case '<':
		if lx.peekByte() == '<' {
			lx.advance()
			return Token{Kind: TokShl, Pos: pos}
		}
		return two('=', TokLessEq, TokLess)
	case '>':
		if lx.peekByte() == '>' {
			lx.advance()
			return Token{Kind: TokShr, Pos: pos}
		}
		return two('=', TokGreaterEq, TokGreater)
	case '&':
		return two('&', TokAndAnd, TokAmp)
	case '|':
		return two('|', TokOrOr, TokPipe)
	case '^':
		return two('^', TokXorXor, TokCaret)
	case '~':
		return Token{Kind: TokTilde, Pos: pos}
	case '%':
		return two('=', TokPercentAssign, TokPercent)
	case '#':
		lx.errorf(pos, "preprocessor directive not at start of line (or input not preprocessed)")
		return lx.scan()
	}
	lx.errorf(pos, "illegal character %q", string(rune(c)))
	return lx.scan()
}

func (lx *Lexer) scanIdent(pos Pos) Token {
	start := lx.off
	for lx.off < len(lx.src) && isIdentCont(lx.peekByte()) {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	if k, ok := keywords[text]; ok {
		if k == TokBoolLit {
			return Token{Kind: TokBoolLit, Pos: pos, Text: text}
		}
		return Token{Kind: k, Pos: pos, Text: text}
	}
	if reservedWords[text] {
		lx.errorf(pos, "%q is a reserved word in GLSL ES 1.00", text)
		return Token{Kind: TokReservedWord, Pos: pos, Text: text}
	}
	if strings.HasPrefix(text, "gl_") || strings.Contains(text, "__") {
		// gl_* names are only legal when predeclared; the parser resolves
		// them like ordinary identifiers and sema validates against the
		// builtin tables. Double underscores are reserved; keep lexing but
		// flag them, matching strict driver behaviour.
		if strings.Contains(text, "__") {
			lx.errorf(pos, "identifiers containing consecutive underscores are reserved (%q)", text)
		}
	}
	return Token{Kind: TokIdent, Pos: pos, Text: text}
}

func (lx *Lexer) scanNumber(pos Pos) Token {
	start := lx.off
	isFloat := false

	if lx.peekByte() == '0' && (lx.peekByteAt(1) == 'x' || lx.peekByteAt(1) == 'X') {
		lx.advance()
		lx.advance()
		for lx.off < len(lx.src) && isHexDigit(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		v, err := strconv.ParseUint(text[2:], 16, 32)
		if err != nil {
			lx.errorf(pos, "invalid hexadecimal literal %q", text)
		}
		return Token{Kind: TokIntLit, Pos: pos, Text: text, IntVal: int32(uint32(v))}
	}

	for lx.off < len(lx.src) && isDigit(lx.peekByte()) {
		lx.advance()
	}
	// Octal integer literals (leading 0) exist in GLSL ES; decode below.
	if lx.peekByte() == '.' {
		isFloat = true
		lx.advance()
		for lx.off < len(lx.src) && isDigit(lx.peekByte()) {
			lx.advance()
		}
	}
	if c := lx.peekByte(); c == 'e' || c == 'E' {
		save := lx.off
		lx.advance()
		if c := lx.peekByte(); c == '+' || c == '-' {
			lx.advance()
		}
		if isDigit(lx.peekByte()) {
			isFloat = true
			for lx.off < len(lx.src) && isDigit(lx.peekByte()) {
				lx.advance()
			}
		} else {
			// Not an exponent after all; rewind is safe because 'e' and
			// the sign cannot contain newlines.
			lx.col -= lx.off - save
			lx.off = save
		}
	}
	text := lx.src[start:lx.off]
	if isFloat {
		v, err := strconv.ParseFloat(text, 32)
		if err != nil {
			lx.errorf(pos, "invalid float literal %q", text)
		}
		return Token{Kind: TokFloatLit, Pos: pos, Text: text, FloatVal: float32(v)}
	}
	var v uint64
	var err error
	if len(text) > 1 && text[0] == '0' {
		v, err = strconv.ParseUint(text[1:], 8, 32)
	} else {
		v, err = strconv.ParseUint(text, 10, 32)
	}
	if err != nil {
		lx.errorf(pos, "invalid integer literal %q", text)
	}
	return Token{Kind: TokIntLit, Pos: pos, Text: text, IntVal: int32(uint32(v))}
}

// LexAll tokenizes src completely; useful for tests and tooling.
func LexAll(src string) ([]Token, ErrorList) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == TokEOF {
			break
		}
	}
	return toks, lx.Errors()
}
