package glsl

import (
	"fmt"
)

// CheckOptions configures ES-conformance strictness. The defaults mirror the
// permissive behaviour of the Broadcom VideoCore IV driver the paper's
// experiments ran on: Appendix-A loop restrictions are reported as warnings,
// not errors. Strict mode turns them into errors, matching minimal
// ES 2.0 implementations.
type CheckOptions struct {
	// StrictAppendixA enforces the GLSL ES 1.00 Appendix A restrictions on
	// loops and indexing as hard errors.
	StrictAppendixA bool
}

// Program is a checked shader ready for execution.
type Program struct {
	Stage   ShaderStage
	TU      *TranslationUnit
	Version int

	// Functions maps signature keys to defined functions.
	Functions map[string]*FuncDecl
	// Entry is main().
	Entry *FuncDecl

	// Globals holds every file-scope variable in slot order.
	Globals []*VarDecl
	// Uniforms, Attributes and Varyings are the interface variables in
	// declaration order.
	Uniforms   []*VarDecl
	Attributes []*VarDecl
	Varyings   []*VarDecl

	Warnings ErrorList
}

// GlobalSlots returns the number of global value slots.
func (p *Program) GlobalSlots() int { return len(p.Globals) }

// LookupUniform finds a uniform by name (including struct roots), or nil.
func (p *Program) LookupUniform(name string) *VarDecl {
	for _, u := range p.Uniforms {
		if u.Name == name {
			return u
		}
	}
	return nil
}

// LookupAttribute finds an attribute by name, or nil.
func (p *Program) LookupAttribute(name string) *VarDecl {
	for _, a := range p.Attributes {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// LookupVarying finds a varying by name, or nil.
func (p *Program) LookupVarying(name string) *VarDecl {
	for _, v := range p.Varyings {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// Check type-checks a parsed translation unit for the given stage.
func Check(tu *TranslationUnit, stage ShaderStage, opts CheckOptions) (*Program, ErrorList) {
	c := &checker{
		stage: stage,
		opts:  opts,
		prog: &Program{
			Stage:     stage,
			TU:        tu,
			Version:   tu.Version,
			Functions: map[string]*FuncDecl{},
		},
	}
	if stage == StageVertex {
		c.builtins = vertexBuiltinVars()
	} else {
		c.builtins = fragmentBuiltinVars()
	}
	c.pushScope()
	c.run(tu)
	c.popScope()
	c.prog.Warnings = c.warns
	return c.prog, c.errs
}

// CompileSource preprocesses, parses and checks GLSL ES source in one step.
func CompileSource(src string, stage ShaderStage, opts CheckOptions) (*Program, ErrorList) {
	tu, errs := Parse(src)
	if errs.Err() != nil {
		return nil, errs
	}
	return Check(tu, stage, opts)
}

type checker struct {
	stage    ShaderStage
	opts     CheckOptions
	prog     *Program
	errs     ErrorList
	warns    ErrorList
	builtins map[string]*BuiltinVar

	scopes []map[string]*VarDecl
	// structTypes tracks struct type names per scope for constructor
	// resolution.
	structTypes []map[string]*Type
	// funcsByName collects prototypes and definitions for overload checks.
	funcsByName map[string][]*FuncDecl

	curFunc    *FuncDecl
	localSlots int
	loopDepth  int

	// loopIndexVars tracks Appendix-A loop induction variables currently in
	// scope, used to validate "constant-index-expression" indexing.
	loopIndexVars map[*VarDecl]bool

	// defaultPrec tracks default precision per basic kind.
	floatPrecSet bool
}

func (c *checker) errorf(pos Pos, format string, args ...interface{}) {
	if len(c.errs) < 100 {
		c.errs = append(c.errs, &CompileError{Pos: pos, Stage: "check", Msg: fmt.Sprintf(format, args...)})
	}
}

func (c *checker) warnf(pos Pos, format string, args ...interface{}) {
	if c.opts.StrictAppendixA {
		c.errorf(pos, format, args...)
		return
	}
	if len(c.warns) < 100 {
		c.warns = append(c.warns, &CompileError{Pos: pos, Stage: "warn", Msg: fmt.Sprintf(format, args...)})
	}
}

func (c *checker) pushScope() {
	c.scopes = append(c.scopes, map[string]*VarDecl{})
	c.structTypes = append(c.structTypes, map[string]*Type{})
}

func (c *checker) popScope() {
	c.scopes = c.scopes[:len(c.scopes)-1]
	c.structTypes = c.structTypes[:len(c.structTypes)-1]
}

func (c *checker) declareStructType(info *StructInfo) {
	if info.Name == "" {
		return
	}
	c.structTypes[len(c.structTypes)-1][info.Name] = StructType(info)
}

func (c *checker) declare(v *VarDecl) {
	scope := c.scopes[len(c.scopes)-1]
	if _, exists := scope[v.Name]; exists {
		c.errorf(v.Pos, "redeclaration of %q in the same scope", v.Name)
	}
	scope[v.Name] = v
}

func (c *checker) lookup(name string) *VarDecl {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v
		}
	}
	return nil
}

func (c *checker) run(tu *TranslationUnit) {
	c.funcsByName = map[string][]*FuncDecl{}
	c.loopIndexVars = map[*VarDecl]bool{}

	// Pass 1: register function names (prototypes and definitions) so calls
	// can be resolved regardless of declaration order within the rules of
	// GLSL (which actually require declaration before use; we follow the
	// spec by checking order during the second pass for definitions only).
	for _, d := range tu.Decls {
		if fd, ok := d.(*FuncDecl); ok {
			c.registerFunction(fd)
		}
	}

	// Pass 2: check everything in order.
	for _, d := range tu.Decls {
		switch n := d.(type) {
		case *VarDecl:
			c.checkGlobalVar(n)
		case *FuncDecl:
			if n.Body != nil {
				c.checkFunctionBody(n)
			}
		case *PrecisionDecl:
			if n.Of != nil && n.Of.Kind == KFloat {
				c.floatPrecSet = true
			}
		case *StructDecl:
			c.checkStructInfo(n.Pos, n.Info)
			c.declareStructType(n.Info)
		case *InvariantDecl:
			for _, name := range n.Names {
				if bv := c.builtins[name]; bv == nil {
					if v := c.lookup(name); v == nil || v.Qual != QualVarying {
						c.errorf(n.Pos, "invariant declaration of %q: not an output variable", name)
					}
				}
			}
		}
	}

	// Entry point.
	if main, ok := c.prog.Functions["main()"]; ok {
		if main.Ret.Kind != KVoid {
			c.errorf(main.Pos, "main() must return void")
		}
		c.prog.Entry = main
	} else {
		c.errorf(Pos{Line: 1, Col: 1}, "missing entry point: void main()")
	}

	// Fragment shaders must declare a default float precision (§4.5.3).
	if c.stage == StageFragment && !c.floatPrecSet {
		c.warnf(Pos{Line: 1, Col: 1}, "fragment shader has no default float precision ('precision mediump float;')")
	}

	c.checkNoRecursion()
}

func (c *checker) registerFunction(fd *FuncDecl) {
	if IsBuiltinFunction(fd.Name) {
		c.errorf(fd.Pos, "redefinition of builtin function %q", fd.Name)
	}
	if fd.Name == "main" && (len(fd.Params) > 0 || fd.Ret.Kind != KVoid) {
		c.errorf(fd.Pos, "main() must be declared as 'void main()'")
	}
	key := fd.signatureKey()
	for _, prev := range c.funcsByName[fd.Name] {
		if prev.signatureKey() == key {
			if prev.Body != nil && fd.Body != nil {
				c.errorf(fd.Pos, "redefinition of function %s", key)
			}
			if fd.Body != nil && prev.Body == nil {
				// Definition completes an earlier prototype.
				prev.Body = fd.Body
				prev.Params = fd.Params
				*fd = *prev
			}
			return
		}
		if prev.Ret != nil && fd.Ret != nil && !prev.Ret.Equal(fd.Ret) && prev.signatureKey() == key {
			c.errorf(fd.Pos, "overload of %q differs only by return type", fd.Name)
		}
	}
	c.funcsByName[fd.Name] = append(c.funcsByName[fd.Name], fd)
	if fd.Body != nil {
		c.prog.Functions[key] = fd
	} else {
		// Keep prototypes visible; definition may come later.
		c.prog.Functions[key] = fd
	}
}

func (c *checker) checkStructInfo(pos Pos, info *StructInfo) {
	for _, f := range info.Fields {
		if f.Type.IsSampler() {
			c.errorf(pos, "struct field %q: samplers are not allowed in structs", f.Name)
		}
	}
}

func (c *checker) checkGlobalVar(v *VarDecl) {
	v.Storage = StorageGlobal
	v.Slot = len(c.prog.Globals)
	c.prog.Globals = append(c.prog.Globals, v)
	if c.builtins[v.Name] != nil {
		c.errorf(v.Pos, "cannot redeclare builtin variable %q", v.Name)
	}
	c.declare(v)

	t := v.DeclType
	switch v.Qual {
	case QualAttribute:
		c.prog.Attributes = append(c.prog.Attributes, v)
		if c.stage != StageVertex {
			c.errorf(v.Pos, "attribute %q: attributes are only allowed in vertex shaders", v.Name)
		}
		if !attributeTypeOK(t) {
			c.errorf(v.Pos, "attribute %q: type %s not allowed (float, vec or mat only)", v.Name, t)
		}
		if v.Init != nil {
			c.errorf(v.Pos, "attribute %q cannot have an initializer", v.Name)
		}
	case QualUniform:
		c.prog.Uniforms = append(c.prog.Uniforms, v)
		if !uniformTypeOK(t) {
			c.errorf(v.Pos, "uniform %q: type %s not allowed", v.Name, t)
		}
		if v.Init != nil {
			c.errorf(v.Pos, "uniform %q cannot have an initializer", v.Name)
		}
	case QualVarying:
		c.prog.Varyings = append(c.prog.Varyings, v)
		if !varyingTypeOK(t) {
			c.errorf(v.Pos, "varying %q: type %s not allowed (float, vec, mat or arrays of those)", v.Name, t)
		}
		if v.Init != nil {
			c.errorf(v.Pos, "varying %q cannot have an initializer", v.Name)
		}
	case QualConst:
		if v.Init == nil {
			c.errorf(v.Pos, "const %q must be initialized", v.Name)
		}
	default:
		// Plain global.
		if t.IsSampler() {
			c.errorf(v.Pos, "global %q: samplers must be uniforms", v.Name)
		}
	}

	if t.IsSampler() && v.Qual != QualUniform {
		if v.Qual != QualNone { // already reported for globals above
			c.errorf(v.Pos, "%q: sampler variables must be uniforms", v.Name)
		}
	}

	if v.Init != nil {
		it := c.checkExpr(v.Init)
		if it.Kind != KInvalid && !it.Equal(t) {
			c.errorf(v.Pos, "cannot initialize %s %q with %s (GLSL ES has no implicit conversions)", t, v.Name, it)
		}
		if v.Qual == QualConst {
			cv, ok := FoldConst(v.Init)
			if !ok {
				c.errorf(v.Pos, "initializer of const %q is not a constant expression", v.Name)
			} else {
				v.ConstVal = cv
			}
		}
	}
}

func attributeTypeOK(t *Type) bool {
	switch t.Kind {
	case KFloat, KVec2, KVec3, KVec4, KMat2, KMat3, KMat4:
		return true
	}
	return false
}

func uniformTypeOK(t *Type) bool {
	switch t.Kind {
	case KVoid, KInvalid:
		return false
	case KArray:
		return uniformTypeOK(t.Elem)
	case KStruct:
		for _, f := range t.Struct.Fields {
			if !uniformTypeOK(f.Type) || f.Type.IsSampler() {
				return false
			}
		}
		return true
	}
	return true
}

func varyingTypeOK(t *Type) bool {
	switch t.Kind {
	case KFloat, KVec2, KVec3, KVec4, KMat2, KMat3, KMat4:
		return true
	case KArray:
		return varyingTypeOK(t.Elem)
	}
	return false
}

// ---- Function bodies ----

func (c *checker) checkFunctionBody(fd *FuncDecl) {
	c.curFunc = fd
	c.localSlots = 0
	c.pushScope()
	for _, p := range fd.Params {
		p.Storage = StorageLocal
		p.Slot = c.localSlots
		c.localSlots++
		if p.DeclType.IsSampler() && p.Dir != DirIn {
			c.errorf(p.Pos, "sampler parameters must be 'in'")
		}
		if p.Name != "" {
			c.declare(p)
		}
	}
	c.checkStmt(fd.Body)
	c.popScope()
	fd.LocalSize = c.localSlots
	c.curFunc = nil

	if fd.Ret.Kind != KVoid && !stmtAlwaysReturns(fd.Body) {
		c.warnf(fd.Pos, "function %q may reach end without returning a value", fd.Name)
	}
}

// stmtAlwaysReturns conservatively determines whether control cannot fall
// off the end of s.
func stmtAlwaysReturns(s Stmt) bool {
	switch n := s.(type) {
	case *ReturnStmt:
		return true
	case *DiscardStmt:
		return true
	case *BlockStmt:
		for _, st := range n.Stmts {
			if stmtAlwaysReturns(st) {
				return true
			}
		}
		return false
	case *IfStmt:
		return n.Else != nil && stmtAlwaysReturns(n.Then) && stmtAlwaysReturns(n.Else)
	}
	return false
}

func (c *checker) checkStmt(s Stmt) {
	switch n := s.(type) {
	case *BlockStmt:
		c.pushScope()
		for _, st := range n.Stmts {
			c.checkStmt(st)
		}
		c.popScope()
	case *DeclStmt:
		if n.Struct != nil {
			c.checkStructInfo(n.Struct.Pos, n.Struct.Info)
			c.declareStructType(n.Struct.Info)
		}
		for _, v := range n.Vars {
			c.checkLocalVar(v)
		}
	case *ExprStmt:
		c.checkExpr(n.X)
	case *EmptyStmt:
	case *IfStmt:
		ct := c.checkExpr(n.Cond)
		if ct.Kind != KInvalid && ct.Kind != KBool {
			c.errorf(n.Cond.NodePos(), "if condition must be bool, got %s", ct)
		}
		c.checkStmt(n.Then)
		if n.Else != nil {
			c.checkStmt(n.Else)
		}
	case *ForStmt:
		c.pushScope()
		indexVar := c.analyzeForLoop(n)
		if n.InitStmt != nil {
			c.checkStmt(n.InitStmt)
		}
		if indexVar != nil {
			c.loopIndexVars[indexVar] = true
		}
		if n.Cond != nil {
			ct := c.checkExpr(n.Cond)
			if ct.Kind != KInvalid && ct.Kind != KBool {
				c.errorf(n.Cond.NodePos(), "for condition must be bool, got %s", ct)
			}
		}
		if n.Post != nil {
			c.checkExpr(n.Post)
		}
		c.loopDepth++
		c.checkStmt(n.Body)
		c.loopDepth--
		if indexVar != nil {
			delete(c.loopIndexVars, indexVar)
		}
		c.popScope()
	case *WhileStmt:
		c.warnf(n.Pos, "while loops are outside the GLSL ES 1.00 Appendix A minimum (accepted by this implementation)")
		ct := c.checkExpr(n.Cond)
		if ct.Kind != KInvalid && ct.Kind != KBool {
			c.errorf(n.Cond.NodePos(), "while condition must be bool, got %s", ct)
		}
		c.loopDepth++
		c.checkStmt(n.Body)
		c.loopDepth--
	case *DoWhileStmt:
		c.warnf(n.Pos, "do-while loops are outside the GLSL ES 1.00 Appendix A minimum (accepted by this implementation)")
		c.loopDepth++
		c.checkStmt(n.Body)
		c.loopDepth--
		ct := c.checkExpr(n.Cond)
		if ct.Kind != KInvalid && ct.Kind != KBool {
			c.errorf(n.Cond.NodePos(), "do-while condition must be bool, got %s", ct)
		}
	case *ReturnStmt:
		if c.curFunc == nil {
			c.errorf(n.Pos, "return outside function")
			return
		}
		if n.X == nil {
			if c.curFunc.Ret.Kind != KVoid {
				c.errorf(n.Pos, "missing return value in function returning %s", c.curFunc.Ret)
			}
			return
		}
		rt := c.checkExpr(n.X)
		if c.curFunc.Ret.Kind == KVoid {
			c.errorf(n.Pos, "void function cannot return a value")
		} else if rt.Kind != KInvalid && !rt.Equal(c.curFunc.Ret) {
			c.errorf(n.Pos, "cannot return %s from function returning %s", rt, c.curFunc.Ret)
		}
	case *BreakStmt:
		if c.loopDepth == 0 {
			c.errorf(n.Pos, "break outside loop")
		}
	case *ContinueStmt:
		if c.loopDepth == 0 {
			c.errorf(n.Pos, "continue outside loop")
		}
	case *DiscardStmt:
		if c.stage != StageFragment {
			c.errorf(n.Pos, "discard is only allowed in fragment shaders")
		}
	}
}

func (c *checker) checkLocalVar(v *VarDecl) {
	if c.curFunc == nil {
		c.errorf(v.Pos, "internal: local declaration outside function")
		return
	}
	v.Storage = StorageLocal
	v.Slot = c.localSlots
	c.localSlots++
	switch v.Qual {
	case QualAttribute, QualUniform, QualVarying:
		c.errorf(v.Pos, "%s variables must be declared at file scope", v.Qual)
	case QualConst:
		if v.Init == nil {
			c.errorf(v.Pos, "const %q must be initialized", v.Name)
		}
	}
	if v.DeclType.IsSampler() {
		c.errorf(v.Pos, "local %q: sampler variables must be uniforms", v.Name)
	}
	if v.Init != nil {
		it := c.checkExpr(v.Init)
		if it.Kind != KInvalid && !it.Equal(v.DeclType) {
			c.errorf(v.Pos, "cannot initialize %s %q with %s (GLSL ES has no implicit conversions)", v.DeclType, v.Name, it)
		}
		if v.Qual == QualConst {
			if cv, ok := FoldConst(v.Init); ok {
				v.ConstVal = cv
			} else {
				c.errorf(v.Pos, "initializer of const %q is not a constant expression", v.Name)
			}
		}
	}
	c.declare(v)
}

// analyzeForLoop checks a for statement against the GLSL ES 1.00 Appendix A
// grammar and returns the induction variable when conformant.
func (c *checker) analyzeForLoop(f *ForStmt) *VarDecl {
	ds, ok := f.InitStmt.(*DeclStmt)
	if !ok || len(ds.Vars) != 1 {
		c.warnf(f.Pos, "for loop init is not a single variable declaration (Appendix A)")
		return nil
	}
	v := ds.Vars[0]
	if v.DeclType.Kind != KFloat && v.DeclType.Kind != KInt {
		c.warnf(f.Pos, "for loop induction variable must be float or int (Appendix A)")
		return nil
	}
	if v.Init == nil {
		c.warnf(f.Pos, "for loop induction variable must be initialized with a constant expression (Appendix A)")
		return nil
	}
	if _, constInit := FoldConst(v.Init); !constInit {
		c.warnf(f.Pos, "for loop induction variable initializer is not constant (Appendix A; accepted, as on the VideoCore IV driver)")
	}
	// Condition must compare the induction variable against a constant.
	if cond, ok := f.Cond.(*BinaryExpr); ok {
		switch cond.Op {
		case TokLess, TokGreater, TokLessEq, TokGreaterEq, TokEqEq, TokNotEq:
			if id, ok := cond.X.(*Ident); !ok || id.Name != v.Name {
				c.warnf(f.Pos, "for loop condition must test the induction variable (Appendix A)")
			} else if _, constBound := foldIfParsedConst(cond.Y); !constBound {
				c.warnf(f.Pos, "for loop bound is not a constant expression (Appendix A; accepted, as on the VideoCore IV driver)")
			}
		default:
			c.warnf(f.Pos, "for loop condition must be a comparison (Appendix A)")
		}
	} else if f.Cond != nil {
		c.warnf(f.Pos, "for loop condition must be a comparison (Appendix A)")
	}
	return v
}

// foldIfParsedConst is a lenient constant check used before full checking of
// subexpressions (uniform-bound loops fold to non-const).
func foldIfParsedConst(e Expr) (*ConstValue, bool) {
	return FoldConst(e)
}

// ---- Expressions ----

func (c *checker) checkExpr(e Expr) *Type {
	switch n := e.(type) {
	case *IntLit:
		n.T = TypeInt
	case *FloatLit:
		n.T = TypeFloat
	case *BoolLit:
		n.T = TypeBool
	case *Ident:
		c.checkIdent(n)
	case *BinaryExpr:
		c.checkBinary(n)
	case *UnaryExpr:
		c.checkUnary(n)
	case *CondExpr:
		ct := c.checkExpr(n.Cond)
		if ct.Kind != KInvalid && ct.Kind != KBool {
			c.errorf(n.Pos, "?: condition must be bool, got %s", ct)
		}
		tt := c.checkExpr(n.Then)
		et := c.checkExpr(n.Else)
		if tt.Kind != KInvalid && et.Kind != KInvalid && !tt.Equal(et) {
			c.errorf(n.Pos, "?: branches have mismatched types %s and %s", tt, et)
		}
		n.T = tt
	case *AssignExpr:
		c.checkAssign(n)
	case *SequenceExpr:
		c.checkExpr(n.X)
		n.T = c.checkExpr(n.Y)
	case *CallExpr:
		c.checkCall(n)
	case *FieldExpr:
		c.checkField(n)
	case *IndexExpr:
		c.checkIndex(n)
	default:
		c.errorf(e.NodePos(), "internal: unknown expression node %T", e)
	}
	return e.Type()
}

func (c *checker) checkIdent(n *Ident) {
	if v := c.lookup(n.Name); v != nil {
		n.Ref = v
		n.T = v.DeclType
		return
	}
	if bv, ok := c.builtins[n.Name]; ok {
		n.BRef = bv
		n.T = bv.Type
		return
	}
	if cval, ok := BuiltinConstants[n.Name]; ok {
		// Builtin constants behave like const int globals; materialize a
		// shared VarDecl on first use.
		v := &VarDecl{
			Name:     n.Name,
			DeclType: TypeInt,
			Qual:     QualConst,
			Storage:  StorageGlobal,
			Slot:     len(c.prog.Globals),
			ConstVal: &ConstValue{T: TypeInt, F: []float32{float32(cval)}},
		}
		c.prog.Globals = append(c.prog.Globals, v)
		c.scopes[0][n.Name] = v
		n.Ref = v
		n.T = TypeInt
		return
	}
	c.errorf(n.Pos, "undeclared identifier %q", n.Name)
	n.T = TypeInvalid
}

func (c *checker) checkBinary(n *BinaryExpr) {
	xt := c.checkExpr(n.X)
	yt := c.checkExpr(n.Y)
	n.T = TypeInvalid
	if xt.Kind == KInvalid || yt.Kind == KInvalid {
		return
	}
	switch n.Op {
	case TokPlus, TokMinus, TokStar, TokSlash:
		n.T = c.arithmeticResult(n.Pos, n.Op, xt, yt)
	case TokLess, TokGreater, TokLessEq, TokGreaterEq:
		if !xt.IsScalar() || xt.Kind == KBool || !xt.Equal(yt) {
			c.errorf(n.Pos, "relational operator requires two int or two float scalars, got %s and %s", xt, yt)
			return
		}
		n.T = TypeBool
	case TokEqEq, TokNotEq:
		if !xt.Equal(yt) {
			c.errorf(n.Pos, "cannot compare %s with %s", xt, yt)
			return
		}
		if xt.IsSampler() || containsSampler(xt) {
			c.errorf(n.Pos, "cannot compare sampler-containing values")
			return
		}
		n.T = TypeBool
	case TokAndAnd, TokOrOr, TokXorXor:
		if xt.Kind != KBool || yt.Kind != KBool {
			c.errorf(n.Pos, "logical operator requires bool operands, got %s and %s", xt, yt)
			return
		}
		n.T = TypeBool
	case TokPercent, TokShl, TokShr, TokAmp, TokPipe, TokCaret:
		// Already diagnosed by the parser as reserved; type stays invalid.
	default:
		c.errorf(n.Pos, "internal: unexpected binary operator %s", n.Op)
	}
}

func containsSampler(t *Type) bool {
	switch t.Kind {
	case KSampler2D, KSamplerCube:
		return true
	case KArray:
		return containsSampler(t.Elem)
	case KStruct:
		for _, f := range t.Struct.Fields {
			if containsSampler(f.Type) {
				return true
			}
		}
	}
	return false
}

// arithmeticResult implements §5.9 for + - * /.
func (c *checker) arithmeticResult(pos Pos, op TokenKind, xt, yt *Type) *Type {
	fail := func() *Type {
		c.errorf(pos, "invalid operands to %s: %s and %s (GLSL ES has no implicit conversions)", op, xt, yt)
		return TypeInvalid
	}
	if !xt.IsNumeric() || !yt.IsNumeric() {
		return fail()
	}
	xc, yc := xt.ComponentType(), yt.ComponentType()
	if !xc.Equal(yc) {
		return fail()
	}
	// Matrix multiplication is linear-algebraic; everything else on
	// matrices is component-wise.
	if op == TokStar {
		switch {
		case xt.IsMatrix() && yt.IsMatrix():
			if xt.Kind != yt.Kind {
				return fail()
			}
			return xt
		case xt.IsMatrix() && yt.IsVector():
			if yt.VectorSize() != xt.MatrixDim() {
				return fail()
			}
			return yt
		case xt.IsVector() && yt.IsMatrix():
			if xt.VectorSize() != yt.MatrixDim() {
				return fail()
			}
			return xt
		}
	}
	switch {
	case xt.Equal(yt):
		return xt
	case xt.IsScalar() && (yt.IsVector() || yt.IsMatrix()):
		return yt
	case (xt.IsVector() || xt.IsMatrix()) && yt.IsScalar():
		return xt
	}
	return fail()
}

func (c *checker) checkUnary(n *UnaryExpr) {
	xt := c.checkExpr(n.X)
	n.T = TypeInvalid
	if xt.Kind == KInvalid {
		return
	}
	switch n.Op {
	case TokPlus, TokMinus:
		if !xt.IsNumeric() {
			c.errorf(n.Pos, "unary %s requires a numeric operand, got %s", n.Op, xt)
			return
		}
		n.T = xt
	case TokBang:
		if xt.Kind != KBool {
			c.errorf(n.Pos, "operator ! requires bool, got %s", xt)
			return
		}
		n.T = TypeBool
	case TokInc, TokDec:
		if !xt.IsNumeric() {
			c.errorf(n.Pos, "%s requires a numeric operand, got %s", n.Op, xt)
			return
		}
		if reason := c.lvalueReason(n.X); reason != "" {
			c.errorf(n.Pos, "operand of %s is not assignable: %s", n.Op, reason)
			return
		}
		n.T = xt
	}
}

func (c *checker) checkAssign(n *AssignExpr) {
	lt := c.checkExpr(n.LHS)
	rt := c.checkExpr(n.RHS)
	n.T = lt
	if lt.Kind == KInvalid || rt.Kind == KInvalid {
		return
	}
	if reason := c.lvalueReason(n.LHS); reason != "" {
		c.errorf(n.Pos, "left side of assignment is not assignable: %s", reason)
		return
	}
	switch n.Op {
	case TokAssign:
		if !lt.Equal(rt) {
			c.errorf(n.Pos, "cannot assign %s to %s (GLSL ES has no implicit conversions)", rt, lt)
		}
	case TokPlusAssign, TokMinusAssign, TokStarAssign, TokSlashAssign:
		op := map[TokenKind]TokenKind{
			TokPlusAssign:  TokPlus,
			TokMinusAssign: TokMinus,
			TokStarAssign:  TokStar,
			TokSlashAssign: TokSlash,
		}[n.Op]
		res := c.arithmeticResult(n.Pos, op, lt, rt)
		if res.Kind != KInvalid && !res.Equal(lt) {
			c.errorf(n.Pos, "result of compound assignment (%s) does not match target type %s", res, lt)
		}
	}
}

// lvalueReason returns "" when e is a writable l-value, else a description
// of why not.
func (c *checker) lvalueReason(e Expr) string {
	switch n := e.(type) {
	case *Ident:
		if n.BRef != nil {
			if !n.BRef.Writable {
				return fmt.Sprintf("%s is read-only", n.Name)
			}
			return ""
		}
		if n.Ref == nil {
			return "unresolved identifier"
		}
		switch n.Ref.Qual {
		case QualConst:
			return fmt.Sprintf("%q is const", n.Name)
		case QualAttribute:
			return fmt.Sprintf("attribute %q is read-only", n.Name)
		case QualUniform:
			return fmt.Sprintf("uniform %q is read-only", n.Name)
		case QualVarying:
			if c.stage == StageFragment {
				return fmt.Sprintf("varying %q is read-only in fragment shaders", n.Name)
			}
		}
		if n.Ref.IsParam && n.Ref.Dir == DirIn && false {
			// in-params are writable copies in GLSL.
			return ""
		}
		return ""
	case *FieldExpr:
		if n.Swizzle != nil {
			if swizzleHasDuplicates(n.Swizzle) {
				return "swizzle with repeated components cannot be assigned"
			}
		}
		return c.lvalueReason(n.X)
	case *IndexExpr:
		return c.lvalueReason(n.X)
	case *SequenceExpr:
		return "comma expression is not assignable"
	default:
		return "expression is not an l-value"
	}
}

func (c *checker) checkField(n *FieldExpr) {
	xt := c.checkExpr(n.X)
	n.T = TypeInvalid
	n.FieldIndex = -1
	if xt.Kind == KInvalid {
		return
	}
	if xt.Kind == KStruct {
		idx := xt.Struct.FieldIndex(n.Name)
		if idx < 0 {
			c.errorf(n.Pos, "struct %s has no field %q", xt, n.Name)
			return
		}
		n.FieldIndex = idx
		n.T = xt.Struct.Fields[idx].Type
		return
	}
	if xt.IsVector() {
		idx := swizzleIndices(n.Name, xt.VectorSize())
		if idx == nil {
			c.errorf(n.Pos, "invalid swizzle %q on %s", n.Name, xt)
			return
		}
		n.Swizzle = idx
		n.T = VectorOf(xt.ComponentType(), len(idx))
		return
	}
	c.errorf(n.Pos, "type %s has no fields (field %q)", xt, n.Name)
}

func (c *checker) checkIndex(n *IndexExpr) {
	xt := c.checkExpr(n.X)
	it := c.checkExpr(n.Index)
	n.T = TypeInvalid
	if xt.Kind == KInvalid {
		return
	}
	if it.Kind != KInt && it.Kind != KInvalid {
		c.errorf(n.Pos, "index must be int, got %s", it)
	}
	var bound int
	switch {
	case xt.Kind == KArray:
		n.T = xt.Elem
		bound = xt.ArrayLen
	case xt.IsVector():
		n.T = xt.ComponentType()
		bound = xt.VectorSize()
	case xt.IsMatrix():
		n.T = VectorOf(TypeFloat, xt.MatrixDim())
		bound = xt.MatrixDim()
	default:
		c.errorf(n.Pos, "type %s is not indexable", xt)
		return
	}
	if cv, ok := FoldConst(n.Index); ok {
		idx := int(cv.F[0])
		if idx < 0 || idx >= bound {
			c.errorf(n.Pos, "index %d out of range [0,%d)", idx, bound)
		}
	} else if !c.isConstantIndexExpr(n.Index) {
		c.warnf(n.Pos, "dynamic indexing with a non-constant-index expression (Appendix A)")
	}

	// gl_FragData special case: only element 0 exists (challenge #8).
	if id, ok := n.X.(*Ident); ok && id.BRef != nil && id.Name == "gl_FragData" {
		if cv, ok := FoldConst(n.Index); !ok {
			c.errorf(n.Pos, "gl_FragData index must be a constant expression")
		} else if int(cv.F[0]) != 0 {
			c.errorf(n.Pos, "gl_FragData index must be 0: ES 2.0 supports a single color output (gl_MaxDrawBuffers=1)")
		}
	}
}

// isConstantIndexExpr implements Appendix A "constant-index-expression":
// constants, loop induction variables, and expressions over those.
func (c *checker) isConstantIndexExpr(e Expr) bool {
	switch n := e.(type) {
	case *IntLit, *FloatLit, *BoolLit:
		return true
	case *Ident:
		if n.Ref != nil {
			if n.Ref.Qual == QualConst {
				return true
			}
			return c.loopIndexVars[n.Ref]
		}
		return false
	case *BinaryExpr:
		return c.isConstantIndexExpr(n.X) && c.isConstantIndexExpr(n.Y)
	case *UnaryExpr:
		return c.isConstantIndexExpr(n.X)
	case *CallExpr:
		if n.Kind == CallTypeConstructor {
			for _, a := range n.Args {
				if !c.isConstantIndexExpr(a) {
					return false
				}
			}
			return true
		}
		return false
	}
	return false
}

func (c *checker) checkCall(n *CallExpr) {
	argTypes := make([]*Type, len(n.Args))
	for i, a := range n.Args {
		argTypes[i] = c.checkExpr(a)
	}
	n.T = TypeInvalid

	// Constructor?
	if t := constructorType(n.Callee); t != nil {
		n.Kind = CallTypeConstructor
		n.CtorType = t
		n.T = c.checkConstructor(n, t, argTypes)
		return
	}

	// Struct constructor: callee names a struct type in scope. The parser
	// records struct names; at check time the declarator type is what we
	// get from looking at argument shape. We detect struct constructors by
	// searching declared struct types through globals (checker-level struct
	// scoping mirrors parser scoping through decl order).
	if st := c.lookupStructType(n.Callee); st != nil {
		n.Kind = CallStructConstructor
		n.CtorType = st
		if len(argTypes) != len(st.Struct.Fields) {
			c.errorf(n.Pos, "struct constructor %s expects %d arguments, got %d", n.Callee, len(st.Struct.Fields), len(argTypes))
			return
		}
		for i, f := range st.Struct.Fields {
			if argTypes[i].Kind != KInvalid && !argTypes[i].Equal(f.Type) {
				c.errorf(n.Pos, "struct constructor %s: argument %d has type %s, want %s", n.Callee, i+1, argTypes[i], f.Type)
			}
		}
		n.T = st
		return
	}

	// Builtin?
	if IsBuiltinFunction(n.Callee) {
		sig := LookupBuiltin(c.stage, n.Callee, argTypes)
		if sig == nil {
			for _, at := range argTypes {
				if at.Kind == KInvalid {
					return // error already reported for the argument
				}
			}
			c.errorf(n.Pos, "no overload of %s matches argument types %s", n.Callee, typeListString(argTypes))
			return
		}
		n.Kind = CallBuiltin
		n.Builtin = sig
		n.T = sig.Ret
		if c.stage == StageVertex && (sig.ID == BTexture2D || sig.ID == BTexture2DLod || sig.ID == BTextureCube) {
			// VideoCore IV reports gl_MaxVertexTextureImageUnits == 0:
			// vertex texture fetch is unavailable on the paper's platform.
			c.warnf(n.Pos, "vertex texture fetch used, but gl_MaxVertexTextureImageUnits is 0 on this device")
		}
		return
	}

	// User function.
	key := callKey(n.Callee, argTypes)
	if fd, ok := c.prog.Functions[key]; ok {
		n.Kind = CallUser
		n.Func = fd
		n.T = fd.Ret
		// out/inout arguments must be l-values.
		for i, p := range fd.Params {
			if p.Dir != DirIn {
				if reason := c.lvalueReason(n.Args[i]); reason != "" {
					c.errorf(n.Args[i].NodePos(), "argument %d to %q must be assignable (%s parameter): %s", i+1, n.Callee, p.Dir, reason)
				}
			}
		}
		return
	}
	if overloads := c.funcsByName[n.Callee]; len(overloads) > 0 {
		c.errorf(n.Pos, "no overload of %q matches argument types %s", n.Callee, typeListString(argTypes))
		return
	}
	c.errorf(n.Pos, "call to undeclared function %q", n.Callee)
}

func (c *checker) lookupStructType(name string) *Type {
	// Struct types in scope were declared via StructDecl nodes; search
	// globals' types and declared struct names through all scopes by
	// scanning variables is insufficient, so the checker records them.
	for i := len(c.structTypes) - 1; i >= 0; i-- {
		if t, ok := c.structTypes[i][name]; ok {
			return t
		}
	}
	return nil
}

func typeListString(ts []*Type) string {
	s := "("
	for i, t := range ts {
		if i > 0 {
			s += ", "
		}
		s += t.String()
	}
	return s + ")"
}

func callKey(name string, args []*Type) string {
	key := name + "("
	for i, t := range args {
		if i > 0 {
			key += ","
		}
		key += t.String()
	}
	return key + ")"
}

func constructorType(name string) *Type {
	switch name {
	case "float":
		return TypeFloat
	case "int":
		return TypeInt
	case "bool":
		return TypeBool
	case "vec2":
		return TypeVec2
	case "vec3":
		return TypeVec3
	case "vec4":
		return TypeVec4
	case "ivec2":
		return TypeIVec2
	case "ivec3":
		return TypeIVec3
	case "ivec4":
		return TypeIVec4
	case "bvec2":
		return TypeBVec2
	case "bvec3":
		return TypeBVec3
	case "bvec4":
		return TypeBVec4
	case "mat2":
		return TypeMat2
	case "mat3":
		return TypeMat3
	case "mat4":
		return TypeMat4
	}
	return nil
}

// checkConstructor validates constructor arguments per §5.4.
func (c *checker) checkConstructor(n *CallExpr, t *Type, argTypes []*Type) *Type {
	for _, at := range argTypes {
		if at.Kind == KInvalid {
			return TypeInvalid
		}
		if at.IsSampler() || at.Kind == KStruct || at.Kind == KArray || at.Kind == KVoid {
			c.errorf(n.Pos, "cannot use %s in a constructor", at)
			return TypeInvalid
		}
	}
	if t.IsScalar() {
		if len(argTypes) != 1 {
			c.errorf(n.Pos, "%s constructor takes exactly one argument", t)
			return TypeInvalid
		}
		// Scalar conversions accept any scalar/vector/matrix (first
		// component is used).
		return t
	}
	if t.IsVector() {
		need := t.VectorSize()
		if len(argTypes) == 1 && argTypes[0].IsScalar() {
			return t // splat
		}
		if len(argTypes) == 1 && argTypes[0].IsMatrix() {
			c.errorf(n.Pos, "cannot construct %s from a matrix in GLSL ES 1.00", t)
			return TypeInvalid
		}
		have := 0
		for _, at := range argTypes {
			have += at.ComponentCount()
		}
		if have < need {
			c.errorf(n.Pos, "too few components for %s constructor: have %d, need %d", t, have, need)
			return TypeInvalid
		}
		// Extra components are allowed only when the last argument is not
		// fully unused.
		haveBeforeLast := have - argTypes[len(argTypes)-1].ComponentCount()
		if haveBeforeLast >= need {
			c.errorf(n.Pos, "too many arguments for %s constructor", t)
			return TypeInvalid
		}
		return t
	}
	if t.IsMatrix() {
		dim := t.MatrixDim()
		if len(argTypes) == 1 && argTypes[0].IsScalar() {
			return t // diagonal
		}
		if len(argTypes) == 1 && argTypes[0].IsMatrix() {
			c.errorf(n.Pos, "constructing a matrix from a matrix is not available in GLSL ES 1.00")
			return TypeInvalid
		}
		need := dim * dim
		have := 0
		for _, at := range argTypes {
			if at.IsMatrix() {
				c.errorf(n.Pos, "matrix constructor arguments must be scalars or vectors")
				return TypeInvalid
			}
			have += at.ComponentCount()
		}
		if have != need {
			c.errorf(n.Pos, "%s constructor needs exactly %d components, have %d", t, need, have)
			return TypeInvalid
		}
		return t
	}
	c.errorf(n.Pos, "cannot construct values of type %s", t)
	return TypeInvalid
}

// ---- Recursion check ----

func (c *checker) checkNoRecursion() {
	// Build the call graph over defined functions.
	adj := map[*FuncDecl][]*FuncDecl{}
	for _, fd := range c.prog.Functions {
		if fd.Body == nil {
			continue
		}
		var callees []*FuncDecl
		collectCalls(fd.Body, &callees)
		adj[fd] = callees
	}
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := map[*FuncDecl]int{}
	var visit func(fd *FuncDecl) bool
	visit = func(fd *FuncDecl) bool {
		switch state[fd] {
		case inStack:
			return false
		case done:
			return true
		}
		state[fd] = inStack
		for _, callee := range adj[fd] {
			if !visit(callee) {
				c.errorf(fd.Pos, "recursion detected involving function %q (forbidden by GLSL ES 1.00)", fd.Name)
				state[fd] = done
				return true // report once
			}
		}
		state[fd] = done
		return true
	}
	for fd := range adj {
		visit(fd)
	}
}

func collectCalls(n Node, out *[]*FuncDecl) {
	switch x := n.(type) {
	case *BlockStmt:
		for _, s := range x.Stmts {
			collectCalls(s, out)
		}
	case *DeclStmt:
		for _, v := range x.Vars {
			if v.Init != nil {
				collectCalls(v.Init, out)
			}
		}
	case *ExprStmt:
		collectCalls(x.X, out)
	case *IfStmt:
		collectCalls(x.Cond, out)
		collectCalls(x.Then, out)
		if x.Else != nil {
			collectCalls(x.Else, out)
		}
	case *ForStmt:
		if x.InitStmt != nil {
			collectCalls(x.InitStmt, out)
		}
		if x.Cond != nil {
			collectCalls(x.Cond, out)
		}
		if x.Post != nil {
			collectCalls(x.Post, out)
		}
		collectCalls(x.Body, out)
	case *WhileStmt:
		collectCalls(x.Cond, out)
		collectCalls(x.Body, out)
	case *DoWhileStmt:
		collectCalls(x.Body, out)
		collectCalls(x.Cond, out)
	case *ReturnStmt:
		if x.X != nil {
			collectCalls(x.X, out)
		}
	case *BinaryExpr:
		collectCalls(x.X, out)
		collectCalls(x.Y, out)
	case *UnaryExpr:
		collectCalls(x.X, out)
	case *CondExpr:
		collectCalls(x.Cond, out)
		collectCalls(x.Then, out)
		collectCalls(x.Else, out)
	case *AssignExpr:
		collectCalls(x.LHS, out)
		collectCalls(x.RHS, out)
	case *SequenceExpr:
		collectCalls(x.X, out)
		collectCalls(x.Y, out)
	case *CallExpr:
		if x.Kind == CallUser && x.Func != nil {
			*out = append(*out, x.Func)
		}
		for _, a := range x.Args {
			collectCalls(a, out)
		}
	case *FieldExpr:
		collectCalls(x.X, out)
	case *IndexExpr:
		collectCalls(x.X, out)
		collectCalls(x.Index, out)
	}
}
