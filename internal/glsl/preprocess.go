package glsl

import (
	"fmt"
	"strconv"
	"strings"
)

// PreprocessResult carries the expanded source plus metadata collected from
// directives (#version, #extension, #pragma).
type PreprocessResult struct {
	Source     string
	Version    int // 0 when no #version directive was present
	Extensions map[string]string
	Pragmas    []string
}

// Preprocess implements the subset of the GLSL ES 1.00 preprocessor that
// shaders in the wild (and the ones this library generates) rely on:
//
//	#version, #define (object- and function-like), #undef,
//	#ifdef/#ifndef/#if/#elif/#else/#endif (integer expressions with
//	defined(), ! && || comparisons), #extension, #pragma, #error, #line.
//
// The GL_ES macro is predefined to 1 and __VERSION__ to 100, as required by
// the specification. Line structure is preserved so downstream positions
// refer to the original source.
func Preprocess(src string) (PreprocessResult, ErrorList) {
	p := &preprocessor{
		macros: map[string]macro{
			"GL_ES":       {body: "1"},
			"__VERSION__": {body: "100"},
		},
		result: PreprocessResult{Extensions: map[string]string{}},
	}
	p.run(src)
	return p.result, p.errs
}

type macro struct {
	params   []string
	body     string
	function bool
}

type condState struct {
	active      bool // this branch is being emitted
	taken       bool // some branch of this #if chain was taken
	parentLive  bool
	sawElse     bool
	startedLine int
}

type preprocessor struct {
	macros map[string]macro
	conds  []condState
	errs   ErrorList
	result PreprocessResult
	out    strings.Builder
}

func (p *preprocessor) errorf(line int, format string, args ...interface{}) {
	p.errs = append(p.errs, &CompileError{Pos: Pos{Line: line, Col: 1}, Stage: "preprocess", Msg: fmt.Sprintf(format, args...)})
}

func (p *preprocessor) live() bool {
	for _, c := range p.conds {
		if !c.active {
			return false
		}
	}
	return true
}

func (p *preprocessor) run(src string) {
	lines := strings.Split(src, "\n")
	// Splice lines ending in backslash (line continuation).
	spliced := make([]string, 0, len(lines))
	lineNo := make([]int, 0, len(lines))
	for i := 0; i < len(lines); i++ {
		l := lines[i]
		n := i + 1
		pad := 0
		for strings.HasSuffix(l, "\\") && i+1 < len(lines) {
			l = l[:len(l)-1] + lines[i+1]
			i++
			pad++
		}
		spliced = append(spliced, l)
		lineNo = append(lineNo, n)
		for j := 0; j < pad; j++ {
			spliced = append(spliced, "")
			lineNo = append(lineNo, n)
		}
	}

	for i, line := range spliced {
		n := lineNo[i]
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "#") {
			p.directive(n, strings.TrimSpace(trimmed[1:]))
			p.out.WriteByte('\n')
			continue
		}
		if p.live() {
			p.out.WriteString(p.expand(line, n, nil))
		}
		p.out.WriteByte('\n')
	}
	if len(p.conds) > 0 {
		p.errorf(p.conds[len(p.conds)-1].startedLine, "unterminated conditional directive")
	}
	p.result.Source = p.out.String()
}

func splitDirective(s string) (name, rest string) {
	i := 0
	for i < len(s) && (isIdentCont(s[i])) {
		i++
	}
	return s[:i], strings.TrimSpace(s[i:])
}

func (p *preprocessor) directive(line int, body string) {
	name, rest := splitDirective(body)
	switch name {
	case "":
		// Null directive: legal.
	case "version":
		if p.live() {
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				p.errorf(line, "#version requires a number")
				return
			}
			v, err := strconv.Atoi(fields[0])
			if err != nil {
				p.errorf(line, "#version requires a number, got %q", fields[0])
				return
			}
			p.result.Version = v
			if v != 100 {
				p.errorf(line, "unsupported #version %d (this implementation targets GLSL ES 1.00)", v)
			}
		}
	case "define":
		if p.live() {
			p.define(line, rest)
		}
	case "undef":
		if p.live() {
			nm, _ := splitDirective(rest)
			delete(p.macros, nm)
		}
	case "ifdef", "ifndef":
		nm, _ := splitDirective(rest)
		_, defined := p.macros[nm]
		val := defined
		if name == "ifndef" {
			val = !defined
		}
		p.pushCond(line, val)
	case "if":
		v := false
		if p.live() {
			v = p.evalCondition(line, rest)
		}
		p.pushCond(line, v)
	case "elif":
		if len(p.conds) == 0 {
			p.errorf(line, "#elif without #if")
			return
		}
		c := &p.conds[len(p.conds)-1]
		if c.sawElse {
			p.errorf(line, "#elif after #else")
			return
		}
		if c.taken {
			c.active = false
		} else if c.parentLive {
			c.active = p.evalCondition(line, rest)
			c.taken = c.active
		}
	case "else":
		if len(p.conds) == 0 {
			p.errorf(line, "#else without #if")
			return
		}
		c := &p.conds[len(p.conds)-1]
		if c.sawElse {
			p.errorf(line, "duplicate #else")
			return
		}
		c.sawElse = true
		c.active = c.parentLive && !c.taken
		c.taken = true
	case "endif":
		if len(p.conds) == 0 {
			p.errorf(line, "#endif without #if")
			return
		}
		p.conds = p.conds[:len(p.conds)-1]
	case "extension":
		if p.live() {
			parts := strings.SplitN(rest, ":", 2)
			ext := strings.TrimSpace(parts[0])
			behaviour := "enable"
			if len(parts) == 2 {
				behaviour = strings.TrimSpace(parts[1])
			}
			p.result.Extensions[ext] = behaviour
		}
	case "pragma":
		if p.live() {
			p.result.Pragmas = append(p.result.Pragmas, rest)
		}
	case "error":
		if p.live() {
			p.errorf(line, "#error %s", rest)
		}
	case "line":
		// Accepted and ignored; positions track physical lines.
	default:
		if p.live() {
			p.errorf(line, "unknown preprocessor directive #%s", name)
		}
	}
}

func (p *preprocessor) pushCond(line int, val bool) {
	parentLive := p.live()
	p.conds = append(p.conds, condState{
		active:      parentLive && val,
		taken:       val,
		parentLive:  parentLive,
		sawElse:     false,
		startedLine: line,
	})
}

func (p *preprocessor) define(line int, rest string) {
	nm, after := splitDirective(rest)
	if nm == "" {
		p.errorf(line, "#define requires a name")
		return
	}
	if strings.HasPrefix(nm, "GL_") || strings.Contains(nm, "__") {
		p.errorf(line, "macro names beginning with GL_ or containing __ are reserved (%q)", nm)
		return
	}
	// Function-like only when '(' immediately follows the name.
	idx := strings.Index(rest, nm) + len(nm)
	if idx < len(rest) && rest[idx] == '(' {
		close := strings.Index(rest[idx:], ")")
		if close < 0 {
			p.errorf(line, "unterminated macro parameter list for %q", nm)
			return
		}
		paramStr := rest[idx+1 : idx+close]
		var params []string
		if strings.TrimSpace(paramStr) != "" {
			for _, s := range strings.Split(paramStr, ",") {
				params = append(params, strings.TrimSpace(s))
			}
		}
		p.macros[nm] = macro{params: params, body: strings.TrimSpace(rest[idx+close+1:]), function: true}
		return
	}
	p.macros[nm] = macro{body: after}
}

// expand performs macro expansion on one line of ordinary source text.
// hide lists macros currently being expanded (to prevent recursion).
func (p *preprocessor) expand(line string, lineNum int, hide map[string]bool) string {
	var b strings.Builder
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == '/' && i+1 < len(line) && line[i+1] == '/':
			b.WriteString(line[i:])
			return b.String()
		case isIdentStart(c):
			j := i
			for j < len(line) && isIdentCont(line[j]) {
				j++
			}
			word := line[i:j]
			m, ok := p.macros[word]
			if !ok || (hide != nil && hide[word]) {
				b.WriteString(word)
				i = j
				continue
			}
			if !m.function {
				b.WriteString(p.expand(m.body, lineNum, withHidden(hide, word)))
				i = j
				continue
			}
			// Function-like macro: need an argument list.
			k := j
			for k < len(line) && (line[k] == ' ' || line[k] == '\t') {
				k++
			}
			if k >= len(line) || line[k] != '(' {
				b.WriteString(word)
				i = j
				continue
			}
			args, end, ok2 := scanMacroArgs(line, k)
			if !ok2 {
				p.errorf(lineNum, "unterminated argument list for macro %q", word)
				b.WriteString(line[i:])
				return b.String()
			}
			if len(args) != len(m.params) && !(len(m.params) == 0 && len(args) == 1 && strings.TrimSpace(args[0]) == "") {
				p.errorf(lineNum, "macro %q expects %d arguments, got %d", word, len(m.params), len(args))
				i = end
				continue
			}
			body := m.body
			expanded := substituteParams(body, m.params, args)
			b.WriteString(p.expand(expanded, lineNum, withHidden(hide, word)))
			i = end
		default:
			b.WriteByte(c)
			i++
		}
	}
	return b.String()
}

func withHidden(hide map[string]bool, name string) map[string]bool {
	m := map[string]bool{name: true}
	for k, v := range hide {
		m[k] = v
	}
	return m
}

// scanMacroArgs scans a parenthesized argument list starting at line[open]=='('.
func scanMacroArgs(line string, open int) (args []string, end int, ok bool) {
	depth := 0
	start := open + 1
	for i := open; i < len(line); i++ {
		switch line[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				args = append(args, strings.TrimSpace(line[start:i]))
				return args, i + 1, true
			}
		case ',':
			if depth == 1 {
				args = append(args, strings.TrimSpace(line[start:i]))
				start = i + 1
			}
		}
	}
	return nil, len(line), false
}

// substituteParams replaces whole-word occurrences of params with args.
func substituteParams(body string, params, args []string) string {
	if len(params) == 0 {
		return body
	}
	lookup := map[string]string{}
	for i, pname := range params {
		if i < len(args) {
			lookup[pname] = args[i]
		}
	}
	var b strings.Builder
	i := 0
	for i < len(body) {
		if isIdentStart(body[i]) {
			j := i
			for j < len(body) && isIdentCont(body[j]) {
				j++
			}
			word := body[i:j]
			if rep, ok := lookup[word]; ok {
				b.WriteString(rep)
			} else {
				b.WriteString(word)
			}
			i = j
			continue
		}
		b.WriteByte(body[i])
		i++
	}
	return b.String()
}

// evalCondition evaluates a #if/#elif integer expression. Supported grammar:
// defined(X), defined X, !expr, expr&&expr, expr||expr, comparisons,
// integer literals and (expanded) macros.
func (p *preprocessor) evalCondition(line int, expr string) bool {
	// Resolve defined() before macro expansion, as the standard requires.
	expr = p.resolveDefined(expr)
	expr = p.expand(expr, line, nil)
	ev := &condExprParser{s: expr}
	v := ev.parseOr()
	ev.skipSpace()
	if ev.err || ev.i < len(ev.s) {
		p.errorf(line, "invalid preprocessor condition %q", expr)
		return false
	}
	return v != 0
}

func (p *preprocessor) resolveDefined(s string) string {
	var b strings.Builder
	i := 0
	for i < len(s) {
		if isIdentStart(s[i]) {
			j := i
			for j < len(s) && isIdentCont(s[j]) {
				j++
			}
			if s[i:j] == "defined" {
				k := j
				for k < len(s) && (s[k] == ' ' || s[k] == '\t') {
					k++
				}
				paren := false
				if k < len(s) && s[k] == '(' {
					paren = true
					k++
					for k < len(s) && (s[k] == ' ' || s[k] == '\t') {
						k++
					}
				}
				m := k
				for m < len(s) && isIdentCont(s[m]) {
					m++
				}
				name := s[k:m]
				if paren {
					for m < len(s) && (s[m] == ' ' || s[m] == '\t') {
						m++
					}
					if m < len(s) && s[m] == ')' {
						m++
					}
				}
				if _, ok := p.macros[name]; ok {
					b.WriteString("1")
				} else {
					b.WriteString("0")
				}
				i = m
				continue
			}
			b.WriteString(s[i:j])
			i = j
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

// condExprParser is a tiny precedence-climbing parser for #if expressions.
type condExprParser struct {
	s   string
	i   int
	err bool
}

func (e *condExprParser) skipSpace() {
	for e.i < len(e.s) && (e.s[e.i] == ' ' || e.s[e.i] == '\t') {
		e.i++
	}
}

func (e *condExprParser) parseOr() int64 {
	v := e.parseAnd()
	for {
		e.skipSpace()
		if strings.HasPrefix(e.s[e.i:], "||") {
			e.i += 2
			r := e.parseAnd()
			if v != 0 || r != 0 {
				v = 1
			} else {
				v = 0
			}
			continue
		}
		return v
	}
}

func (e *condExprParser) parseAnd() int64 {
	v := e.parseCmp()
	for {
		e.skipSpace()
		if strings.HasPrefix(e.s[e.i:], "&&") {
			e.i += 2
			r := e.parseCmp()
			if v != 0 && r != 0 {
				v = 1
			} else {
				v = 0
			}
			continue
		}
		return v
	}
}

func (e *condExprParser) parseCmp() int64 {
	v := e.parseAdd()
	for {
		e.skipSpace()
		rest := e.s[e.i:]
		var op string
		for _, cand := range []string{"==", "!=", "<=", ">=", "<", ">"} {
			if strings.HasPrefix(rest, cand) {
				op = cand
				break
			}
		}
		if op == "" {
			return v
		}
		e.i += len(op)
		r := e.parseAdd()
		var b bool
		switch op {
		case "==":
			b = v == r
		case "!=":
			b = v != r
		case "<=":
			b = v <= r
		case ">=":
			b = v >= r
		case "<":
			b = v < r
		case ">":
			b = v > r
		}
		if b {
			v = 1
		} else {
			v = 0
		}
	}
}

func (e *condExprParser) parseAdd() int64 {
	v := e.parseUnary()
	for {
		e.skipSpace()
		if e.i < len(e.s) && (e.s[e.i] == '+' || e.s[e.i] == '-') {
			op := e.s[e.i]
			e.i++
			r := e.parseUnary()
			if op == '+' {
				v += r
			} else {
				v -= r
			}
			continue
		}
		return v
	}
}

func (e *condExprParser) parseUnary() int64 {
	e.skipSpace()
	if e.i < len(e.s) {
		switch e.s[e.i] {
		case '!':
			e.i++
			if e.parseUnary() == 0 {
				return 1
			}
			return 0
		case '-':
			e.i++
			return -e.parseUnary()
		case '+':
			e.i++
			return e.parseUnary()
		case '(':
			e.i++
			v := e.parseOr()
			e.skipSpace()
			if e.i < len(e.s) && e.s[e.i] == ')' {
				e.i++
			} else {
				e.err = true
			}
			return v
		}
	}
	return e.parseNumber()
}

func (e *condExprParser) parseNumber() int64 {
	e.skipSpace()
	start := e.i
	for e.i < len(e.s) && (isDigit(e.s[e.i]) || isHexDigit(e.s[e.i]) || e.s[e.i] == 'x' || e.s[e.i] == 'X') {
		e.i++
	}
	if start == e.i {
		// Unexpanded identifiers evaluate to 0, as in C preprocessors.
		if e.i < len(e.s) && isIdentStart(e.s[e.i]) {
			for e.i < len(e.s) && isIdentCont(e.s[e.i]) {
				e.i++
			}
			return 0
		}
		e.err = true
		return 0
	}
	text := e.s[start:e.i]
	v, err := strconv.ParseInt(text, 0, 64)
	if err != nil {
		e.err = true
		return 0
	}
	return v
}
