package glsl

import (
	"strings"
	"testing"
)

// mustParse parses and fails the test on any diagnostic.
func mustParse(t *testing.T, src string) *TranslationUnit {
	t.Helper()
	tu, errs := Parse(src)
	if errs.Err() != nil {
		t.Fatalf("parse errors:\n%v", errs)
	}
	return tu
}

// parseExpectError asserts that parsing produces an error containing substr.
func parseExpectError(t *testing.T, src, substr string) {
	t.Helper()
	_, errs := Parse(src)
	if errs.Err() == nil {
		t.Fatalf("expected error containing %q, got none", substr)
	}
	if !strings.Contains(errs.Error(), substr) {
		t.Fatalf("expected error containing %q, got:\n%v", substr, errs)
	}
}

const minimalFrag = `
precision mediump float;
void main() { gl_FragColor = vec4(0.0); }
`

func TestParseMinimalFragment(t *testing.T) {
	tu := mustParse(t, minimalFrag)
	var foundMain bool
	for _, d := range tu.Decls {
		if fd, ok := d.(*FuncDecl); ok && fd.Name == "main" {
			foundMain = true
			if fd.Ret.Kind != KVoid {
				t.Error("main should return void")
			}
			if fd.Body == nil {
				t.Error("main should have a body")
			}
		}
	}
	if !foundMain {
		t.Fatal("main not found")
	}
}

func TestParseGlobalDeclarations(t *testing.T) {
	tu := mustParse(t, `
uniform sampler2D u_tex;
uniform vec2 u_dims;
attribute vec4 a_pos;
varying vec2 v_uv;
const float PI = 3.14159;
float scratch;
void main() {}
`)
	var quals []Qualifier
	for _, d := range tu.Decls {
		if v, ok := d.(*VarDecl); ok {
			quals = append(quals, v.Qual)
		}
	}
	want := []Qualifier{QualUniform, QualUniform, QualAttribute, QualVarying, QualConst, QualNone}
	if len(quals) != len(want) {
		t.Fatalf("got %d global vars, want %d", len(quals), len(want))
	}
	for i := range want {
		if quals[i] != want[i] {
			t.Errorf("decl %d: got %v, want %v", i, quals[i], want[i])
		}
	}
}

func TestParseMultiDeclarator(t *testing.T) {
	tu := mustParse(t, "float a = 1.0, b, c = 2.0;\nvoid main(){}")
	count := 0
	for _, d := range tu.Decls {
		if v, ok := d.(*VarDecl); ok && v.Qual == QualNone {
			count++
			if v.Name == "a" && v.Init == nil {
				t.Error("a should have an initializer")
			}
			if v.Name == "b" && v.Init != nil {
				t.Error("b should not have an initializer")
			}
		}
	}
	if count != 3 {
		t.Fatalf("expected 3 declarators, got %d", count)
	}
}

func TestParseArrayDeclaration(t *testing.T) {
	tu := mustParse(t, "uniform float weights[8];\nvoid main(){}")
	for _, d := range tu.Decls {
		if v, ok := d.(*VarDecl); ok {
			if v.DeclType.Kind != KArray || v.DeclType.ArrayLen != 8 {
				t.Fatalf("expected float[8], got %s", v.DeclType)
			}
			return
		}
	}
	t.Fatal("no var decl found")
}

func TestParseArraySizeConstExpr(t *testing.T) {
	tu := mustParse(t, "uniform float w[2*3+1];\nvoid main(){}")
	for _, d := range tu.Decls {
		if v, ok := d.(*VarDecl); ok {
			if v.DeclType.ArrayLen != 7 {
				t.Fatalf("expected size 7, got %d", v.DeclType.ArrayLen)
			}
			return
		}
	}
}

func TestParseNegativeArraySizeRejected(t *testing.T) {
	parseExpectError(t, "uniform float w[-1];\nvoid main(){}", "array size")
}

func TestParseFunctionPrototypeAndDefinition(t *testing.T) {
	tu := mustParse(t, `
float helper(float x);
void main() { float y = helper(1.0); }
float helper(float x) { return x * 2.0; }
`)
	var protos, defs int
	for _, d := range tu.Decls {
		if fd, ok := d.(*FuncDecl); ok && fd.Name == "helper" {
			if fd.Body == nil {
				protos++
			} else {
				defs++
			}
		}
	}
	if protos != 1 || defs != 1 {
		t.Fatalf("protos=%d defs=%d, want 1 and 1", protos, defs)
	}
}

func TestParseParamDirections(t *testing.T) {
	tu := mustParse(t, "void f(in float a, out float b, inout float c) { b = a + c; }\nvoid main(){}")
	for _, d := range tu.Decls {
		if fd, ok := d.(*FuncDecl); ok && fd.Name == "f" {
			if len(fd.Params) != 3 {
				t.Fatalf("expected 3 params, got %d", len(fd.Params))
			}
			if fd.Params[0].Dir != DirIn || fd.Params[1].Dir != DirOut || fd.Params[2].Dir != DirInOut {
				t.Errorf("wrong directions: %v %v %v", fd.Params[0].Dir, fd.Params[1].Dir, fd.Params[2].Dir)
			}
		}
	}
}

func TestParseVoidParamList(t *testing.T) {
	tu := mustParse(t, "float g(void) { return 1.0; }\nvoid main(){}")
	for _, d := range tu.Decls {
		if fd, ok := d.(*FuncDecl); ok && fd.Name == "g" {
			if len(fd.Params) != 0 {
				t.Fatalf("g(void) should have no params, got %d", len(fd.Params))
			}
		}
	}
}

func TestParseStructDeclaration(t *testing.T) {
	tu := mustParse(t, `
struct Light { vec3 pos; float intensity; };
uniform Light u_light;
void main(){}
`)
	var sawStruct, sawVar bool
	for _, d := range tu.Decls {
		switch n := d.(type) {
		case *StructDecl:
			sawStruct = true
			if n.Info.Name != "Light" || len(n.Info.Fields) != 2 {
				t.Errorf("bad struct: %+v", n.Info)
			}
		case *VarDecl:
			sawVar = true
			if n.DeclType.Kind != KStruct {
				t.Errorf("u_light should have struct type, got %s", n.DeclType)
			}
		}
	}
	if !sawStruct || !sawVar {
		t.Fatal("missing struct or var")
	}
}

func TestParseStructWithDeclarator(t *testing.T) {
	tu := mustParse(t, "struct S { float x; } s1;\nvoid main(){}")
	var varCount int
	for _, d := range tu.Decls {
		if v, ok := d.(*VarDecl); ok && v.Name == "s1" {
			varCount++
		}
	}
	if varCount != 1 {
		t.Fatalf("expected s1 declared, got %d vars", varCount)
	}
}

func TestParsePrecisionDeclaration(t *testing.T) {
	tu := mustParse(t, "precision highp float;\nvoid main(){}")
	for _, d := range tu.Decls {
		if p, ok := d.(*PrecisionDecl); ok {
			if p.Prec != PrecHigh || p.Of.Kind != KFloat {
				t.Errorf("bad precision decl: %v %s", p.Prec, p.Of)
			}
			return
		}
	}
	t.Fatal("precision decl not found")
}

func TestParsePrecisionOnlyForAllowedTypes(t *testing.T) {
	parseExpectError(t, "precision highp vec4;\nvoid main(){}", "precision")
}

func TestParseControlFlow(t *testing.T) {
	mustParse(t, `
precision mediump float;
void main() {
	float acc = 0.0;
	for (int i = 0; i < 10; ++i) { acc += 1.0; }
	int j = 0;
	while (j < 3) { j++; }
	do { j--; } while (j > 0);
	if (acc > 5.0) { acc = 5.0; } else acc = 0.0;
	gl_FragColor = vec4(acc);
}
`)
}

func TestParseTernaryAndComma(t *testing.T) {
	tu := mustParse(t, "precision mediump float;\nvoid main(){ float a = true ? 1.0 : 2.0; a = (a, 3.0); }")
	_ = tu
}

func TestParseSwizzleChain(t *testing.T) {
	mustParse(t, "precision mediump float;\nvoid main(){ vec4 v = vec4(1.0); vec2 w = v.xyz.xy; gl_FragColor = w.xxyy; }")
}

func TestParseIndexingAndFields(t *testing.T) {
	mustParse(t, `
precision mediump float;
struct S { vec3 p; };
void main(){
	mat3 m = mat3(1.0);
	vec3 col = m[1];
	float elem = m[1][2];
	S s = S(vec3(0.0));
	float px = s.p.x;
	gl_FragColor = vec4(col.x, elem, px, 1.0);
}
`)
}

func TestParseReservedOperatorsRejected(t *testing.T) {
	parseExpectError(t, "void main(){ int a = 5 % 2; }", "reserved")
	parseExpectError(t, "void main(){ int a = 1 << 2; }", "reserved")
	parseExpectError(t, "void main(){ int a = 1 & 2; }", "reserved")
	parseExpectError(t, "void main(){ int a = ~2; }", "reserved")
	parseExpectError(t, "void main(){ int a = 1; a %= 2; }", "reserved")
}

func TestParseBraceInitializerRejected(t *testing.T) {
	parseExpectError(t, "void main(){ float a[2] = {1.0, 2.0}; }", "brace")
}

func TestParseMissingSemicolonRecovers(t *testing.T) {
	_, errs := Parse("void main(){ float a = 1.0 float b; }")
	if errs.Err() == nil {
		t.Fatal("expected a parse error")
	}
}

func TestParseDeepExpressionPrecedence(t *testing.T) {
	tu := mustParse(t, "precision mediump float;\nfloat r;\nvoid main(){ r = 1.0 + 2.0 * 3.0 - 4.0 / 2.0; }")
	// find assignment r = ...; fold it and verify precedence: 1+6-2 = 5
	for _, d := range tu.Decls {
		fd, ok := d.(*FuncDecl)
		if !ok || fd.Name != "main" {
			continue
		}
		es := fd.Body.Stmts[0].(*ExprStmt)
		asg := es.X.(*AssignExpr)
		cv, okFold := FoldConst(asg.RHS)
		if !okFold {
			t.Fatal("RHS should fold")
		}
		if cv.F[0] != 5.0 {
			t.Errorf("precedence wrong: got %g, want 5", cv.F[0])
		}
	}
}

func TestParseUnaryPrecedence(t *testing.T) {
	tu := mustParse(t, "float r;\nvoid main(){ r = -2.0 * 3.0; }")
	for _, d := range tu.Decls {
		fd, ok := d.(*FuncDecl)
		if !ok || fd.Name != "main" {
			continue
		}
		es := fd.Body.Stmts[0].(*ExprStmt)
		asg := es.X.(*AssignExpr)
		cv, okFold := FoldConst(asg.RHS)
		if !okFold || cv.F[0] != -6.0 {
			t.Errorf("got %v, want -6", cv)
		}
	}
}

func TestParseForLoopHeaderScoping(t *testing.T) {
	mustParse(t, `
void main(){
	for (int i = 0; i < 4; ++i) {}
	for (int i = 0; i < 8; ++i) {}
}
`)
}

func TestParseEmptyShader(t *testing.T) {
	tu, errs := Parse("")
	if errs.Err() != nil {
		t.Fatalf("empty source should parse: %v", errs)
	}
	if len(tu.Decls) != 0 {
		t.Errorf("expected no decls, got %d", len(tu.Decls))
	}
}

func TestParseStraySemicolons(t *testing.T) {
	mustParse(t, ";;\nvoid main(){;;}\n;")
}

func TestParseInvariantDeclaration(t *testing.T) {
	tu := mustParse(t, "invariant gl_Position;\nvoid main(){}")
	found := false
	for _, d := range tu.Decls {
		if inv, ok := d.(*InvariantDecl); ok {
			found = true
			if len(inv.Names) != 1 || inv.Names[0] != "gl_Position" {
				t.Errorf("bad invariant decl: %v", inv.Names)
			}
		}
	}
	if !found {
		t.Fatal("invariant decl not parsed")
	}
}

func TestParseVertexShaderWithAttributes(t *testing.T) {
	mustParse(t, `
attribute vec4 a_position;
attribute vec2 a_texcoord;
varying vec2 v_texcoord;
void main() {
	v_texcoord = a_texcoord;
	gl_Position = a_position;
}
`)
}

func TestParseLocalStructScope(t *testing.T) {
	mustParse(t, `
void main() {
	struct Local { float v; };
	Local l = Local(3.0);
	float x = l.v;
}
`)
}
