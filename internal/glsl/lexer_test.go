package glsl

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, errs := LexAll("void main() { gl_FragColor = vec4(1.0); }")
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []TokenKind{
		TokVoid, TokIdent, TokLParen, TokRParen, TokLBrace,
		TokIdent, TokAssign, TokVec4, TokLParen, TokFloatLit, TokRParen,
		TokSemicolon, TokRBrace, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src      string
		kind     TokenKind
		intVal   int32
		floatVal float32
	}{
		{"0", TokIntLit, 0, 0},
		{"42", TokIntLit, 42, 0},
		{"0x1F", TokIntLit, 31, 0},
		{"017", TokIntLit, 15, 0},
		{"1.5", TokFloatLit, 0, 1.5},
		{".5", TokFloatLit, 0, 0.5},
		{"3.", TokFloatLit, 0, 3},
		{"1e3", TokFloatLit, 0, 1000},
		{"2.5e-2", TokFloatLit, 0, 0.025},
		{"1E+2", TokFloatLit, 0, 100},
	}
	for _, c := range cases {
		toks, errs := LexAll(c.src)
		if errs.Err() != nil {
			t.Errorf("%q: unexpected errors: %v", c.src, errs)
			continue
		}
		if toks[0].Kind != c.kind {
			t.Errorf("%q: got kind %s, want %s", c.src, toks[0].Kind, c.kind)
			continue
		}
		if c.kind == TokIntLit && toks[0].IntVal != c.intVal {
			t.Errorf("%q: got %d, want %d", c.src, toks[0].IntVal, c.intVal)
		}
		if c.kind == TokFloatLit && toks[0].FloatVal != c.floatVal {
			t.Errorf("%q: got %g, want %g", c.src, toks[0].FloatVal, c.floatVal)
		}
	}
}

func TestLexIdentifierFollowedByE(t *testing.T) {
	// "2e" is not a valid exponent; should lex as int 2 then ident "e".
	toks, _ := LexAll("2e")
	if toks[0].Kind != TokIntLit || toks[0].IntVal != 2 {
		t.Fatalf("expected int 2, got %v", toks[0])
	}
	if toks[1].Kind != TokIdent || toks[1].Text != "e" {
		t.Fatalf("expected ident e, got %v", toks[1])
	}
}

func TestLexComments(t *testing.T) {
	toks, errs := LexAll("a // line comment\n/* block\ncomment */ b")
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(toks) != 3 {
		t.Fatalf("expected [a b EOF], got %v", toks)
	}
	if toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("wrong tokens: %v", toks)
	}
	if toks[1].Pos.Line != 3 {
		t.Errorf("b should be on line 3, got %d", toks[1].Pos.Line)
	}
}

func TestLexUnterminatedBlockComment(t *testing.T) {
	_, errs := LexAll("a /* never closed")
	if errs.Err() == nil {
		t.Fatal("expected an error for unterminated comment")
	}
}

func TestLexReservedWordsRejected(t *testing.T) {
	for _, word := range []string{"double", "unsigned", "goto", "switch", "half", "sampler3D"} {
		_, errs := LexAll(word)
		if errs.Err() == nil {
			t.Errorf("reserved word %q must be rejected", word)
		}
	}
}

func TestLexReservedOperators(t *testing.T) {
	// Reserved operators lex fine (parser rejects their use).
	toks, _ := LexAll("a % b & c | d ^ e << f >> g")
	var sawPercent, sawAmp, sawShl bool
	for _, tok := range toks {
		switch tok.Kind {
		case TokPercent:
			sawPercent = true
		case TokAmp:
			sawAmp = true
		case TokShl:
			sawShl = true
		}
	}
	if !sawPercent || !sawAmp || !sawShl {
		t.Fatalf("reserved operators not lexed: %v", kinds(toks))
	}
}

func TestLexDoubleUnderscoreReserved(t *testing.T) {
	_, errs := LexAll("float a__b;")
	if errs.Err() == nil {
		t.Fatal("identifiers with __ must be flagged")
	}
}

func TestLexOperatorPositions(t *testing.T) {
	toks, _ := LexAll("a+=b")
	if toks[1].Kind != TokPlusAssign {
		t.Fatalf("expected +=, got %s", toks[1].Kind)
	}
	toks, _ = LexAll("a++ + ++b")
	want := []TokenKind{TokIdent, TokInc, TokPlus, TokInc, TokIdent, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %s want %s (%v)", i, got[i], want[i], got)
		}
	}
}

func TestLexAllKeywords(t *testing.T) {
	for word, kind := range keywords {
		toks, errs := LexAll(word)
		if errs.Err() != nil {
			t.Errorf("keyword %q: %v", word, errs)
			continue
		}
		if toks[0].Kind != kind {
			t.Errorf("keyword %q: got %s, want %s", word, toks[0].Kind, kind)
		}
	}
}

func TestErrorListFormatting(t *testing.T) {
	_, errs := LexAll("$ @")
	if errs.Err() == nil {
		t.Fatal("expected errors for illegal characters")
	}
	msg := errs.Error()
	if !strings.Contains(msg, "illegal character") {
		t.Errorf("unexpected message: %s", msg)
	}
	var empty ErrorList
	if empty.Err() != nil {
		t.Error("empty list must return nil error")
	}
}
