package glsl

import "math"

// ConstValue is a folded constant: the type plus a flattened component list.
// Integers and booleans are stored in float32 lanes (exact for the ranges
// GLSL ES 1.00 guarantees; this mirrors the float-register execution model
// of the VideoCore IV QPUs the paper targets).
type ConstValue struct {
	T *Type
	F []float32
}

// Float returns the first component as float64, convenient for scalar use.
func (v *ConstValue) Float() float64 { return float64(v.F[0]) }

// Int returns the first component truncated to int32.
func (v *ConstValue) Int() int32 { return int32(v.F[0]) }

// Bool returns the first component as a boolean.
func (v *ConstValue) Bool() bool { return v.F[0] != 0 }

// FoldConst attempts to evaluate e as a GLSL constant expression: literals,
// const-qualified variables with constant initializers, operators,
// constructors, swizzles and side-effect-free builtin calls over constants.
// It must run after (or during) type checking: it relies on resolved
// references and types.
func FoldConst(e Expr) (*ConstValue, bool) {
	switch n := e.(type) {
	case *IntLit:
		return &ConstValue{T: TypeInt, F: []float32{float32(n.Val)}}, true
	case *FloatLit:
		return &ConstValue{T: TypeFloat, F: []float32{n.Val}}, true
	case *BoolLit:
		v := float32(0)
		if n.Val {
			v = 1
		}
		return &ConstValue{T: TypeBool, F: []float32{v}}, true
	case *Ident:
		if n.Ref != nil && n.Ref.Qual == QualConst && n.Ref.ConstVal != nil {
			return n.Ref.ConstVal, true
		}
		return nil, false
	case *UnaryExpr:
		return foldUnary(n)
	case *BinaryExpr:
		return foldBinary(n)
	case *CondExpr:
		c, ok := FoldConst(n.Cond)
		if !ok {
			return nil, false
		}
		if c.Bool() {
			return FoldConst(n.Then)
		}
		return FoldConst(n.Else)
	case *SequenceExpr:
		return FoldConst(n.Y)
	case *FieldExpr:
		if n.Swizzle == nil {
			return nil, false
		}
		x, ok := FoldConst(n.X)
		if !ok {
			return nil, false
		}
		out := make([]float32, len(n.Swizzle))
		for i, s := range n.Swizzle {
			if s >= len(x.F) {
				return nil, false
			}
			out[i] = x.F[s]
		}
		return &ConstValue{T: n.Type(), F: out}, true
	case *IndexExpr:
		x, ok := FoldConst(n.X)
		if !ok {
			return nil, false
		}
		i, ok := FoldConst(n.Index)
		if !ok {
			return nil, false
		}
		t := n.Type()
		idx := int(i.F[0])
		sz := t.FlatSize()
		if idx < 0 || (idx+1)*sz > len(x.F) {
			return nil, false
		}
		return &ConstValue{T: t, F: x.F[idx*sz : (idx+1)*sz]}, true
	case *CallExpr:
		return foldCall(n)
	}
	return nil, false
}

func foldUnary(n *UnaryExpr) (*ConstValue, bool) {
	if n.Op == TokInc || n.Op == TokDec {
		return nil, false // side effects
	}
	x, ok := FoldConst(n.X)
	if !ok {
		return nil, false
	}
	out := make([]float32, len(x.F))
	switch n.Op {
	case TokPlus:
		copy(out, x.F)
	case TokMinus:
		for i, v := range x.F {
			out[i] = -v
		}
	case TokBang:
		if x.F[0] == 0 {
			out[0] = 1
		} else {
			out[0] = 0
		}
	default:
		return nil, false
	}
	t := n.Type()
	if t.Kind == KInvalid {
		t = x.T
	}
	return &ConstValue{T: t, F: out}, true
}

func foldBinary(n *BinaryExpr) (*ConstValue, bool) {
	x, ok := FoldConst(n.X)
	if !ok {
		return nil, false
	}
	y, ok := FoldConst(n.Y)
	if !ok {
		return nil, false
	}
	resT := n.Type()
	if resT.Kind == KInvalid {
		// Pre-sema folding (array sizes): infer from operands.
		resT = x.T
		if len(y.F) > len(x.F) {
			resT = y.T
		}
	}
	isInt := resT.ComponentType().Kind == KInt

	broadcast := func(v *ConstValue, size int) []float32 {
		if len(v.F) == size {
			return v.F
		}
		out := make([]float32, size)
		for i := range out {
			out[i] = v.F[0]
		}
		return out
	}

	switch n.Op {
	case TokPlus, TokMinus, TokSlash:
		size := maxInt(len(x.F), len(y.F))
		xf, yf := broadcast(x, size), broadcast(y, size)
		out := make([]float32, size)
		for i := 0; i < size; i++ {
			switch n.Op {
			case TokPlus:
				out[i] = xf[i] + yf[i]
			case TokMinus:
				out[i] = xf[i] - yf[i]
			case TokSlash:
				if isInt {
					if int32(yf[i]) == 0 {
						return nil, false
					}
					out[i] = float32(int32(xf[i]) / int32(yf[i]))
				} else {
					if yf[i] == 0 {
						return nil, false
					}
					out[i] = xf[i] / yf[i]
				}
			}
		}
		if isInt && n.Op != TokSlash {
			for i := range out {
				out[i] = float32(int32(out[i]))
			}
		}
		return &ConstValue{T: resT, F: out}, true
	case TokStar:
		if x.T.IsMatrix() || y.T.IsMatrix() {
			return foldMatMul(x, y, resT)
		}
		size := maxInt(len(x.F), len(y.F))
		xf, yf := broadcast(x, size), broadcast(y, size)
		out := make([]float32, size)
		for i := 0; i < size; i++ {
			if isInt {
				out[i] = float32(int32(xf[i]) * int32(yf[i]))
			} else {
				out[i] = xf[i] * yf[i]
			}
		}
		return &ConstValue{T: resT, F: out}, true
	case TokLess, TokGreater, TokLessEq, TokGreaterEq:
		a, b := x.F[0], y.F[0]
		var r bool
		switch n.Op {
		case TokLess:
			r = a < b
		case TokGreater:
			r = a > b
		case TokLessEq:
			r = a <= b
		case TokGreaterEq:
			r = a >= b
		}
		return boolConst(r), true
	case TokEqEq, TokNotEq:
		if len(x.F) != len(y.F) {
			return nil, false
		}
		eq := true
		for i := range x.F {
			if x.F[i] != y.F[i] {
				eq = false
				break
			}
		}
		if n.Op == TokNotEq {
			eq = !eq
		}
		return boolConst(eq), true
	case TokAndAnd:
		return boolConst(x.Bool() && y.Bool()), true
	case TokOrOr:
		return boolConst(x.Bool() || y.Bool()), true
	case TokXorXor:
		return boolConst(x.Bool() != y.Bool()), true
	}
	return nil, false
}

func foldMatMul(x, y *ConstValue, resT *Type) (*ConstValue, bool) {
	// Column-major storage throughout.
	switch {
	case x.T.IsMatrix() && y.T.IsMatrix():
		n := x.T.MatrixDim()
		out := make([]float32, n*n)
		for col := 0; col < n; col++ {
			for row := 0; row < n; row++ {
				var s float32
				for k := 0; k < n; k++ {
					s += x.F[k*n+row] * y.F[col*n+k]
				}
				out[col*n+row] = s
			}
		}
		return &ConstValue{T: x.T, F: out}, true
	case x.T.IsMatrix() && y.T.IsVector():
		n := x.T.MatrixDim()
		out := make([]float32, n)
		for row := 0; row < n; row++ {
			var s float32
			for k := 0; k < n; k++ {
				s += x.F[k*n+row] * y.F[k]
			}
			out[row] = s
		}
		return &ConstValue{T: y.T, F: out}, true
	case x.T.IsVector() && y.T.IsMatrix():
		n := y.T.MatrixDim()
		out := make([]float32, n)
		for col := 0; col < n; col++ {
			var s float32
			for k := 0; k < n; k++ {
				s += x.F[k] * y.F[col*n+k]
			}
			out[col] = s
		}
		return &ConstValue{T: x.T, F: out}, true
	case x.T.IsMatrix() && y.T.IsScalar():
		out := make([]float32, len(x.F))
		for i := range out {
			out[i] = x.F[i] * y.F[0]
		}
		return &ConstValue{T: x.T, F: out}, true
	case x.T.IsScalar() && y.T.IsMatrix():
		out := make([]float32, len(y.F))
		for i := range out {
			out[i] = x.F[0] * y.F[i]
		}
		return &ConstValue{T: y.T, F: out}, true
	}
	return nil, false
}

func boolConst(b bool) *ConstValue {
	v := float32(0)
	if b {
		v = 1
	}
	return &ConstValue{T: TypeBool, F: []float32{v}}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func foldCall(n *CallExpr) (*ConstValue, bool) {
	args := make([]*ConstValue, len(n.Args))
	for i, a := range n.Args {
		v, ok := FoldConst(a)
		if !ok {
			return nil, false
		}
		args[i] = v
	}
	switch n.Kind {
	case CallTypeConstructor:
		return foldConstructor(n.CtorType, args)
	case CallBuiltin:
		return foldBuiltin(n.Builtin, n.Type(), args)
	}
	return nil, false
}

func foldConstructor(t *Type, args []*ConstValue) (*ConstValue, bool) {
	if t == nil {
		return nil, false
	}
	if t.IsScalar() {
		v := args[0].F[0]
		switch t.Kind {
		case KInt:
			v = float32(int32(v))
		case KBool:
			if v != 0 {
				v = 1
			} else {
				v = 0
			}
		}
		return &ConstValue{T: t, F: []float32{v}}, true
	}
	if t.IsVector() {
		size := t.VectorSize()
		out := make([]float32, 0, size)
		if len(args) == 1 && args[0].T.IsScalar() {
			for i := 0; i < size; i++ {
				out = append(out, args[0].F[0])
			}
		} else {
			for _, a := range args {
				out = append(out, a.F...)
			}
			if len(out) < size {
				return nil, false
			}
			out = out[:size]
		}
		if t.ComponentType().Kind == KInt {
			for i := range out {
				out[i] = float32(int32(out[i]))
			}
		}
		if t.ComponentType().Kind == KBool {
			for i := range out {
				if out[i] != 0 {
					out[i] = 1
				}
			}
		}
		return &ConstValue{T: t, F: out}, true
	}
	if t.IsMatrix() {
		dim := t.MatrixDim()
		out := make([]float32, dim*dim)
		if len(args) == 1 && args[0].T.IsScalar() {
			for i := 0; i < dim; i++ {
				out[i*dim+i] = args[0].F[0]
			}
		} else {
			flat := make([]float32, 0, dim*dim)
			for _, a := range args {
				flat = append(flat, a.F...)
			}
			if len(flat) != dim*dim {
				return nil, false
			}
			copy(out, flat)
		}
		return &ConstValue{T: t, F: out}, true
	}
	return nil, false
}

// foldBuiltin evaluates pure builtins over constants (used for const
// initializers and array bounds; the executor has its own — SFU-aware —
// implementations for run time).
func foldBuiltin(sig *BuiltinSig, resT *Type, args []*ConstValue) (*ConstValue, bool) {
	if sig == nil {
		return nil, false
	}
	un := func(f func(float64) float64) (*ConstValue, bool) {
		out := make([]float32, len(args[0].F))
		for i, v := range args[0].F {
			out[i] = float32(f(float64(v)))
		}
		return &ConstValue{T: args[0].T, F: out}, true
	}
	bin := func(f func(a, b float64) float64) (*ConstValue, bool) {
		n := maxInt(len(args[0].F), len(args[1].F))
		out := make([]float32, n)
		get := func(v *ConstValue, i int) float64 {
			if len(v.F) == 1 {
				return float64(v.F[0])
			}
			return float64(v.F[i])
		}
		for i := 0; i < n; i++ {
			out[i] = float32(f(get(args[0], i), get(args[1], i)))
		}
		t := args[0].T
		if len(args[1].F) > len(args[0].F) {
			t = args[1].T
		}
		return &ConstValue{T: t, F: out}, true
	}
	switch sig.ID {
	case BRadians:
		return un(func(x float64) float64 { return x * math.Pi / 180 })
	case BDegrees:
		return un(func(x float64) float64 { return x * 180 / math.Pi })
	case BSin:
		return un(math.Sin)
	case BCos:
		return un(math.Cos)
	case BTan:
		return un(math.Tan)
	case BAsin:
		return un(math.Asin)
	case BAcos:
		return un(math.Acos)
	case BAtan:
		return un(math.Atan)
	case BAtan2:
		return bin(math.Atan2)
	case BPow:
		return bin(math.Pow)
	case BExp:
		return un(math.Exp)
	case BLog:
		return un(math.Log)
	case BExp2:
		return un(math.Exp2)
	case BLog2:
		return un(math.Log2)
	case BSqrt:
		return un(math.Sqrt)
	case BInverseSqrt:
		return un(func(x float64) float64 { return 1 / math.Sqrt(x) })
	case BAbs:
		return un(math.Abs)
	case BSign:
		return un(func(x float64) float64 {
			if x > 0 {
				return 1
			}
			if x < 0 {
				return -1
			}
			return 0
		})
	case BFloor:
		return un(math.Floor)
	case BCeil:
		return un(math.Ceil)
	case BFract:
		return un(func(x float64) float64 { return x - math.Floor(x) })
	case BMod:
		return bin(func(a, b float64) float64 { return a - b*math.Floor(a/b) })
	case BMin:
		return bin(math.Min)
	case BMax:
		return bin(math.Max)
	case BClamp:
		if len(args) != 3 {
			return nil, false
		}
		n := len(args[0].F)
		out := make([]float32, n)
		get := func(v *ConstValue, i int) float64 {
			if len(v.F) == 1 {
				return float64(v.F[0])
			}
			return float64(v.F[i])
		}
		for i := 0; i < n; i++ {
			out[i] = float32(math.Min(math.Max(float64(args[0].F[i]), get(args[1], i)), get(args[2], i)))
		}
		return &ConstValue{T: args[0].T, F: out}, true
	case BLength:
		var s float64
		for _, v := range args[0].F {
			s += float64(v) * float64(v)
		}
		return &ConstValue{T: TypeFloat, F: []float32{float32(math.Sqrt(s))}}, true
	case BDot:
		var s float64
		for i := range args[0].F {
			s += float64(args[0].F[i]) * float64(args[1].F[i])
		}
		return &ConstValue{T: TypeFloat, F: []float32{float32(s)}}, true
	}
	return nil, false
}
