package glsl

import (
	"strings"
	"testing"
)

// compileOK compiles source for a stage, requiring success.
func compileOK(t *testing.T, src string, stage ShaderStage) *Program {
	t.Helper()
	prog, errs := CompileSource(src, stage, CheckOptions{})
	if errs.Err() != nil {
		t.Fatalf("unexpected errors:\n%v", errs)
	}
	return prog
}

// compileFail compiles and requires an error containing substr.
func compileFail(t *testing.T, src string, stage ShaderStage, substr string) {
	t.Helper()
	_, errs := CompileSource(src, stage, CheckOptions{})
	if errs.Err() == nil {
		t.Fatalf("expected error containing %q, got success", substr)
	}
	if !strings.Contains(errs.Error(), substr) {
		t.Fatalf("expected error containing %q, got:\n%v", substr, errs)
	}
}

func TestCheckMinimalShaders(t *testing.T) {
	compileOK(t, "void main(){ gl_Position = vec4(0.0); }", StageVertex)
	compileOK(t, "precision mediump float;\nvoid main(){ gl_FragColor = vec4(0.0); }", StageFragment)
}

func TestCheckMissingMain(t *testing.T) {
	compileFail(t, "float f(){ return 1.0; }", StageFragment, "main")
}

func TestCheckNoImplicitConversions(t *testing.T) {
	compileFail(t, "void main(){ float f = 1; }", StageFragment, "implicit")
	compileFail(t, "void main(){ int i = 1.0; }", StageFragment, "implicit")
	compileFail(t, "void main(){ float f = 1.0 + 1; }", StageFragment, "implicit")
	compileOK(t, "void main(){ float f = float(1); int i = int(1.0); }", StageFragment)
}

func TestCheckUndeclaredIdentifier(t *testing.T) {
	compileFail(t, "void main(){ float f = nope; }", StageFragment, "undeclared")
}

func TestCheckRedeclarationSameScope(t *testing.T) {
	compileFail(t, "void main(){ float a; float a; }", StageFragment, "redeclaration")
	// Shadowing in an inner scope is allowed.
	compileOK(t, "void main(){ float a = 1.0; { float a = 2.0; a += 1.0; } a += 1.0; }", StageFragment)
}

func TestCheckStageBuiltins(t *testing.T) {
	// gl_FragColor is fragment-only.
	compileFail(t, "void main(){ gl_FragColor = vec4(0.0); }", StageVertex, "undeclared")
	// gl_Position is vertex-only.
	compileFail(t, "void main(){ gl_Position = vec4(0.0); }", StageFragment, "undeclared")
	// gl_FragCoord is readable in fragment.
	compileOK(t, "precision mediump float;\nvoid main(){ gl_FragColor = vec4(gl_FragCoord.xy, 0.0, 1.0); }", StageFragment)
	// gl_FragCoord is not writable.
	compileFail(t, "void main(){ gl_FragCoord = vec4(0.0); }", StageFragment, "read-only")
}

func TestCheckAttributeRules(t *testing.T) {
	compileOK(t, "attribute vec4 a_pos;\nvoid main(){ gl_Position = a_pos; }", StageVertex)
	compileFail(t, "attribute vec4 a_pos;\nvoid main(){ gl_FragColor = a_pos; }", StageFragment, "vertex")
	compileFail(t, "attribute int a_i;\nvoid main(){ gl_Position = vec4(0.0); }", StageVertex, "not allowed")
	compileFail(t, "attribute vec4 a = vec4(0.0);\nvoid main(){ gl_Position = a; }", StageVertex, "initializer")
	compileFail(t, "attribute vec4 a_pos;\nvoid main(){ a_pos = vec4(0.0); }", StageVertex, "read-only")
}

func TestCheckUniformRules(t *testing.T) {
	compileOK(t, "uniform vec4 u;\nvoid main(){ gl_Position = u; }", StageVertex)
	compileFail(t, "uniform vec4 u;\nvoid main(){ u = vec4(0.0); gl_Position = u; }", StageVertex, "read-only")
	compileFail(t, "uniform float u = 1.0;\nvoid main(){ gl_Position = vec4(u); }", StageVertex, "initializer")
}

func TestCheckVaryingRules(t *testing.T) {
	compileOK(t, "varying vec2 v;\nvoid main(){ v = vec2(0.0); gl_Position = vec4(0.0); }", StageVertex)
	// Read-only in fragment shaders.
	compileFail(t, "precision mediump float;\nvarying vec2 v;\nvoid main(){ v = vec2(0.0); }", StageFragment, "read-only")
	compileOK(t, "precision mediump float;\nvarying vec2 v;\nvoid main(){ gl_FragColor = vec4(v, 0.0, 1.0); }", StageFragment)
	// int varyings are not allowed.
	compileFail(t, "varying ivec2 v;\nvoid main(){ gl_Position = vec4(0.0); }", StageVertex, "not allowed")
}

func TestCheckConstRules(t *testing.T) {
	compileOK(t, "const float PI = 3.14159;\nvoid main(){ gl_Position = vec4(PI); }", StageVertex)
	compileFail(t, "const float PI;\nvoid main(){}", StageVertex, "initialized")
	compileFail(t, "uniform float u;\nconst float c = u;\nvoid main(){}", StageVertex, "constant")
	compileFail(t, "const float PI = 3.0;\nvoid main(){ PI = 4.0; }", StageVertex, "const")
}

func TestCheckSamplerRules(t *testing.T) {
	compileOK(t, "precision mediump float;\nuniform sampler2D t;\nvoid main(){ gl_FragColor = texture2D(t, vec2(0.5)); }", StageFragment)
	compileFail(t, "sampler2D t;\nvoid main(){}", StageFragment, "uniform")
	compileFail(t, "void main(){ sampler2D t; }", StageFragment, "uniform")
	compileFail(t, "varying sampler2D t;\nvoid main(){}", StageFragment, "not allowed")
}

func TestCheckVectorOps(t *testing.T) {
	compileOK(t, `
void main(){
	vec3 a = vec3(1.0);
	vec3 b = vec3(2.0);
	vec3 c = a + b * 2.0;
	float d = dot(a, b);
	vec3 e = cross(a, b);
	gl_Position = vec4(c + e, d);
}
`, StageVertex)
}

func TestCheckMatrixOps(t *testing.T) {
	compileOK(t, `
void main(){
	mat4 m = mat4(1.0);
	vec4 v = vec4(1.0);
	vec4 a = m * v;
	vec4 b = v * m;
	mat4 c = m * m;
	gl_Position = a + b + c[0];
}
`, StageVertex)
	compileFail(t, "void main(){ mat3 m = mat3(1.0); vec4 v = vec4(1.0); vec4 r = m * v; }", StageVertex, "invalid operands")
}

func TestCheckRelationalOps(t *testing.T) {
	compileOK(t, "void main(){ bool b = 1.0 < 2.0; bool c = 1 < 2; gl_Position = vec4(0.0); }", StageVertex)
	compileFail(t, "void main(){ bool b = vec2(0.0) < vec2(1.0); }", StageVertex, "relational")
	compileFail(t, "void main(){ bool b = 1.0 < 2; }", StageVertex, "relational")
}

func TestCheckLogicalOps(t *testing.T) {
	compileOK(t, "void main(){ bool b = true && false || true ^^ false; gl_Position = vec4(0.0); }", StageVertex)
	compileFail(t, "void main(){ bool b = 1.0 && true; }", StageVertex, "bool")
}

func TestCheckConditionTypes(t *testing.T) {
	compileFail(t, "void main(){ if (1.0) {} }", StageVertex, "bool")
	compileFail(t, "void main(){ while (1) {} }", StageVertex, "bool")
	compileFail(t, "void main(){ float x = 1.0 ? 2.0 : 3.0; }", StageVertex, "bool")
	compileFail(t, "void main(){ float x = true ? 2.0 : 3; }", StageVertex, "mismatched")
}

func TestCheckSwizzles(t *testing.T) {
	compileOK(t, `
void main(){
	vec4 v = vec4(1.0, 2.0, 3.0, 4.0);
	vec2 a = v.xy;
	vec3 b = v.rgb;
	vec2 c = v.st;
	float d = v.w;
	vec4 e = v.xxxx;
	v.yz = vec2(9.0);
	gl_Position = vec4(a, b.x + c.x + d + e.x, 1.0);
}
`, StageVertex)
	compileFail(t, "void main(){ vec4 v; vec2 a = v.xr; }", StageVertex, "swizzle")
	compileFail(t, "void main(){ vec2 v; float a = v.z; }", StageVertex, "swizzle")
	compileFail(t, "void main(){ vec4 v; v.xx = vec2(1.0); }", StageVertex, "repeated")
	compileFail(t, "void main(){ float f; float g = f.x; }", StageVertex, "no fields")
}

func TestCheckIndexing(t *testing.T) {
	compileOK(t, `
uniform float w[4];
void main(){
	vec4 v = vec4(1.0);
	float a = v[0] + w[3];
	mat3 m = mat3(1.0);
	vec3 col = m[2];
	gl_Position = vec4(a + col.x);
}
`, StageVertex)
	compileFail(t, "uniform float w[4];\nvoid main(){ float a = w[4]; }", StageVertex, "out of range")
	compileFail(t, "void main(){ vec3 v; float a = v[3]; }", StageVertex, "out of range")
	compileFail(t, "void main(){ vec3 v; float a = v[1.0]; }", StageVertex, "must be int")
	compileFail(t, "void main(){ float f; float a = f[0]; }", StageVertex, "not indexable")
}

func TestCheckFragDataRules(t *testing.T) {
	compileOK(t, "precision mediump float;\nvoid main(){ gl_FragData[0] = vec4(1.0); }", StageFragment)
	compileFail(t, "precision mediump float;\nvoid main(){ gl_FragData[1] = vec4(1.0); }", StageFragment, "gl_MaxDrawBuffers")
	compileFail(t, "precision mediump float;\nuniform int i;\nvoid main(){ gl_FragData[i] = vec4(1.0); }", StageFragment, "constant")
}

func TestCheckFunctionCalls(t *testing.T) {
	compileOK(t, `
float square(float x) { return x * x; }
vec2 square(vec2 x) { return x * x; } // overload
void main(){ gl_Position = vec4(square(2.0), square(vec2(1.0)), 0.0); }
`, StageVertex)
	compileFail(t, "float f(float x){ return x; }\nvoid main(){ float y = f(1); }", StageVertex, "no overload")
	compileFail(t, "void main(){ float y = undefined_fn(1.0); }", StageVertex, "undeclared function")
}

func TestCheckOutParams(t *testing.T) {
	compileOK(t, `
void split(float v, out float a, out float b) { a = v; b = v * 2.0; }
void main(){ float x; float y; split(3.0, x, y); gl_Position = vec4(x, y, 0.0, 1.0); }
`, StageVertex)
	compileFail(t, `
void split(float v, out float a) { a = v; }
void main(){ const float c = 1.0; split(3.0, c); }
`, StageVertex, "assignable")
}

func TestCheckRecursionForbidden(t *testing.T) {
	compileFail(t, `
float f(float x);
float g(float x) { return f(x); }
float f(float x) { return g(x); }
void main(){ gl_Position = vec4(f(1.0)); }
`, StageVertex, "recursion")
	compileFail(t, "float f(float x) { return f(x); }\nvoid main(){ gl_Position = vec4(f(1.0)); }", StageVertex, "recursion")
}

func TestCheckReturnTypes(t *testing.T) {
	compileFail(t, "float f() { return; }\nvoid main(){}", StageVertex, "missing return value")
	compileFail(t, "void f() { return 1.0; }\nvoid main(){}", StageVertex, "void function")
	compileFail(t, "float f() { return 1; }\nvoid main(){}", StageVertex, "cannot return")
}

func TestCheckDiscardOnlyInFragment(t *testing.T) {
	compileOK(t, "precision mediump float;\nvoid main(){ if (gl_FragCoord.x > 10.0) discard; gl_FragColor = vec4(0.0); }", StageFragment)
	compileFail(t, "void main(){ discard; }", StageVertex, "fragment")
}

func TestCheckBreakContinueOutsideLoop(t *testing.T) {
	compileFail(t, "void main(){ break; }", StageVertex, "outside loop")
	compileFail(t, "void main(){ continue; }", StageVertex, "outside loop")
	compileOK(t, "void main(){ for (int i = 0; i < 3; ++i) { if (i == 1) continue; if (i == 2) break; } }", StageVertex)
}

func TestCheckConstructors(t *testing.T) {
	compileOK(t, `
void main(){
	vec4 a = vec4(1.0);               // splat
	vec4 b = vec4(vec2(1.0), 2.0, 3.0); // mixed
	vec3 c = vec3(vec4(1.0));          // truncating
	mat2 m = mat2(1.0, 0.0, 0.0, 1.0);
	mat3 d = mat3(5.0);                // diagonal
	ivec2 iv = ivec2(1, 2);
	bvec2 bv = bvec2(true, false);
	gl_Position = a + b + vec4(c, m[0][0] + d[0][0] + float(iv.x) + (bv.x ? 1.0 : 0.0));
}
`, StageVertex)
	compileFail(t, "void main(){ vec4 v = vec4(1.0, 2.0); }", StageVertex, "too few components")
	compileFail(t, "void main(){ vec2 v = vec2(1.0, 2.0, 3.0); }", StageVertex, "too many")
	compileFail(t, "void main(){ mat2 m = mat2(1.0, 2.0, 3.0); }", StageVertex, "exactly")
	compileFail(t, "void main(){ mat2 m = mat2(mat3(1.0)); }", StageVertex, "not available in GLSL ES")
}

func TestCheckStructUsage(t *testing.T) {
	compileOK(t, `
struct Material { vec3 color; float shininess; };
uniform Material u_mat;
void main(){
	Material m = Material(vec3(1.0), 0.5);
	m.shininess = u_mat.shininess;
	gl_Position = vec4(m.color, m.shininess);
}
`, StageVertex)
	compileFail(t, `
struct S { float x; };
void main(){ S s = S(1.0); float y = s.missing; }
`, StageVertex, "no field")
	compileFail(t, `
struct S { float x; };
void main(){ S s = S(1.0, 2.0); }
`, StageVertex, "expects 1 arguments")
	compileFail(t, "struct S { sampler2D t; };\nvoid main(){}", StageVertex, "samplers are not allowed")
}

func TestCheckBuiltinOverloads(t *testing.T) {
	compileOK(t, `
precision mediump float;
void main(){
	float a = mod(7.0, 3.0);
	vec2 b = mod(vec2(7.0), 3.0);
	vec3 c = clamp(vec3(2.0), 0.0, 1.0);
	float d = mix(0.0, 1.0, 0.5);
	vec4 e = mix(vec4(0.0), vec4(1.0), vec4(0.5));
	bvec2 f = lessThan(vec2(1.0), vec2(2.0));
	bool g = any(f) && all(f);
	gl_FragColor = vec4(a + b.x + c.x + d + e.x, g ? 1.0 : 0.0, 0.0, 1.0);
}
`, StageFragment)
	compileFail(t, "void main(){ float a = sin(1); }", StageVertex, "no overload")
	compileFail(t, "void main(){ float a = dot(vec2(1.0), vec3(1.0)); }", StageVertex, "no overload")
}

func TestCheckTexture2DLodStageRestrictions(t *testing.T) {
	// texture2DLod is vertex-only.
	compileFail(t, "precision mediump float;\nuniform sampler2D s;\nvoid main(){ gl_FragColor = texture2DLod(s, vec2(0.0), 0.0); }", StageFragment, "no overload")
	// bias variant is fragment-only.
	compileFail(t, "uniform sampler2D s;\nvoid main(){ gl_Position = texture2D(s, vec2(0.0), 1.0); }", StageVertex, "no overload")
}

func TestCheckBuiltinConstants(t *testing.T) {
	prog := compileOK(t, "void main(){ int n = gl_MaxVertexAttribs; gl_Position = vec4(float(n)); }", StageVertex)
	if prog == nil {
		t.Fatal("no program")
	}
}

func TestCheckAppendixAWarnings(t *testing.T) {
	// Uniform-bounded loop: warning by default, error in strict mode.
	src := `
uniform float u_n;
void main(){
	float acc = 0.0;
	for (float i = 0.0; i < u_n; i += 1.0) { acc += 1.0; }
	gl_Position = vec4(acc);
}
`
	prog, errs := CompileSource(src, StageVertex, CheckOptions{})
	if errs.Err() != nil {
		t.Fatalf("relaxed mode should accept: %v", errs)
	}
	if len(prog.Warnings) == 0 {
		t.Error("expected an Appendix A warning")
	}
	_, errs = CompileSource(src, StageVertex, CheckOptions{StrictAppendixA: true})
	if errs.Err() == nil {
		t.Error("strict mode should reject uniform loop bounds")
	}
}

func TestCheckGlobalSlotAssignment(t *testing.T) {
	prog := compileOK(t, `
uniform float a;
uniform vec2 b;
varying vec3 v;
void main(){ v = vec3(a, b); gl_Position = vec4(0.0); }
`, StageVertex)
	if len(prog.Uniforms) != 2 {
		t.Fatalf("expected 2 uniforms, got %d", len(prog.Uniforms))
	}
	if len(prog.Varyings) != 1 {
		t.Fatalf("expected 1 varying, got %d", len(prog.Varyings))
	}
	seen := map[int]bool{}
	for _, g := range prog.Globals {
		if seen[g.Slot] {
			t.Errorf("duplicate slot %d", g.Slot)
		}
		seen[g.Slot] = true
	}
	if prog.LookupUniform("a") == nil || prog.LookupUniform("b") == nil {
		t.Error("uniform lookup failed")
	}
	if prog.LookupVarying("v") == nil {
		t.Error("varying lookup failed")
	}
}

func TestCheckVertexShaderPassThrough(t *testing.T) {
	// The paper's challenge #1: a pass-through vertex shader must compile.
	compileOK(t, `
attribute vec2 a_position;
attribute vec2 a_texcoord;
varying vec2 v_texcoord;
void main() {
	v_texcoord = a_texcoord;
	gl_Position = vec4(a_position, 0.0, 1.0);
}
`, StageVertex)
}

func TestCheckRedefinitionOfBuiltin(t *testing.T) {
	compileFail(t, "float sin(float x) { return x; }\nvoid main(){}", StageVertex, "builtin")
}

func TestCheckFunctionRedefinition(t *testing.T) {
	compileFail(t, `
float f(float x) { return x; }
float f(float x) { return x + 1.0; }
void main(){}
`, StageVertex, "redefinition")
}

func TestCheckMainSignature(t *testing.T) {
	compileFail(t, "int main() { return 1; }", StageVertex, "main")
	compileFail(t, "void main(float x) {}", StageVertex, "main")
}

func TestFoldConstBasics(t *testing.T) {
	prog := compileOK(t, `
const float A = 2.0 * 3.0 + 1.0;
const int B = 10 / 3;
const bool C = 1.0 < 2.0 && true;
const vec2 D = vec2(1.0, 2.0) * 3.0;
const float E = D.y;
const float F = clamp(5.0, 0.0, 1.0);
void main(){ gl_Position = vec4(A, float(B), E, F); }
`, StageVertex)
	find := func(name string) *VarDecl {
		for _, g := range prog.Globals {
			if g.Name == name {
				return g
			}
		}
		t.Fatalf("global %s not found", name)
		return nil
	}
	cases := []struct {
		name string
		want float32
	}{
		{"A", 7.0}, {"B", 3}, {"C", 1}, {"E", 6.0}, {"F", 1.0},
	}
	for _, c := range cases {
		v := find(c.name)
		if v.ConstVal == nil {
			t.Errorf("%s: not folded", c.name)
			continue
		}
		if v.ConstVal.F[0] != c.want {
			t.Errorf("%s: got %g, want %g", c.name, v.ConstVal.F[0], c.want)
		}
	}
	d := find("D")
	if d.ConstVal == nil || len(d.ConstVal.F) != 2 || d.ConstVal.F[0] != 3.0 || d.ConstVal.F[1] != 6.0 {
		t.Errorf("D folded wrong: %v", d.ConstVal)
	}
}

func TestFoldMatrixConstant(t *testing.T) {
	prog := compileOK(t, `
const mat2 M = mat2(1.0, 2.0, 3.0, 4.0);
const vec2 V = M * vec2(1.0, 1.0);
void main(){ gl_Position = vec4(V, 0.0, 1.0); }
`, StageVertex)
	for _, g := range prog.Globals {
		if g.Name == "V" {
			if g.ConstVal == nil {
				t.Fatal("V not folded")
			}
			// Column-major: M = [1 3; 2 4], M*(1,1) = (4, 6).
			if g.ConstVal.F[0] != 4.0 || g.ConstVal.F[1] != 6.0 {
				t.Errorf("V = %v, want (4,6)", g.ConstVal.F)
			}
		}
	}
}
