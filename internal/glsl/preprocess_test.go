package glsl

import (
	"strings"
	"testing"
)

func TestPreprocessVersion(t *testing.T) {
	res, errs := Preprocess("#version 100\nvoid main(){}\n")
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if res.Version != 100 {
		t.Errorf("version = %d, want 100", res.Version)
	}
}

func TestPreprocessUnsupportedVersion(t *testing.T) {
	_, errs := Preprocess("#version 300 es\n")
	if errs.Err() == nil {
		t.Fatal("expected an error for #version 300")
	}
}

func TestPreprocessObjectMacro(t *testing.T) {
	res, errs := Preprocess("#define N 4\nfloat a[N];\n")
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if !strings.Contains(res.Source, "float a[4];") {
		t.Errorf("macro not expanded: %q", res.Source)
	}
}

func TestPreprocessFunctionMacro(t *testing.T) {
	res, errs := Preprocess("#define SQ(x) ((x)*(x))\nfloat a = SQ(3.0);\n")
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if !strings.Contains(res.Source, "((3.0)*(3.0))") {
		t.Errorf("function macro not expanded: %q", res.Source)
	}
}

func TestPreprocessNestedMacro(t *testing.T) {
	res, errs := Preprocess("#define A B\n#define B 7\nint x = A;\n")
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if !strings.Contains(res.Source, "int x = 7;") {
		t.Errorf("nested macro not expanded: %q", res.Source)
	}
}

func TestPreprocessRecursiveMacroTerminates(t *testing.T) {
	res, errs := Preprocess("#define A A\nint x = A;\n")
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if !strings.Contains(res.Source, "int x = A;") {
		t.Errorf("self-referential macro should stop expanding: %q", res.Source)
	}
}

func TestPreprocessConditionals(t *testing.T) {
	src := `#define FEATURE 1
#if FEATURE
float enabled;
#else
float disabled;
#endif
`
	res, errs := Preprocess(src)
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if !strings.Contains(res.Source, "enabled") {
		t.Errorf("#if branch missing: %q", res.Source)
	}
	if strings.Contains(res.Source, "disabled") {
		t.Errorf("#else branch leaked: %q", res.Source)
	}
}

func TestPreprocessIfdef(t *testing.T) {
	src := "#ifdef GL_ES\nprecision mediump float;\n#endif\n"
	res, errs := Preprocess(src)
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if !strings.Contains(res.Source, "precision mediump float;") {
		t.Errorf("GL_ES must be predefined: %q", res.Source)
	}
}

func TestPreprocessIfndefElse(t *testing.T) {
	src := "#ifndef NOPE\nint yes;\n#else\nint no;\n#endif\n"
	res, errs := Preprocess(src)
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if !strings.Contains(res.Source, "int yes;") || strings.Contains(res.Source, "int no;") {
		t.Errorf("wrong branch: %q", res.Source)
	}
}

func TestPreprocessElifChain(t *testing.T) {
	src := `#define V 2
#if V == 1
int one;
#elif V == 2
int two;
#elif V == 3
int three;
#else
int other;
#endif
`
	res, errs := Preprocess(src)
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if !strings.Contains(res.Source, "int two;") {
		t.Errorf("#elif branch not taken: %q", res.Source)
	}
	for _, bad := range []string{"int one;", "int three;", "int other;"} {
		if strings.Contains(res.Source, bad) {
			t.Errorf("branch %q leaked", bad)
		}
	}
}

func TestPreprocessNestedConditionals(t *testing.T) {
	src := `#define A 1
#if A
#if 0
int never;
#endif
int kept;
#endif
`
	res, errs := Preprocess(src)
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if strings.Contains(res.Source, "never") || !strings.Contains(res.Source, "kept") {
		t.Errorf("nested conditional wrong: %q", res.Source)
	}
}

func TestPreprocessDefinedOperator(t *testing.T) {
	src := "#define X 1\n#if defined(X) && !defined(Y)\nint good;\n#endif\n"
	res, errs := Preprocess(src)
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if !strings.Contains(res.Source, "int good;") {
		t.Errorf("defined() broken: %q", res.Source)
	}
}

func TestPreprocessUndef(t *testing.T) {
	src := "#define X 1\n#undef X\n#ifdef X\nint bad;\n#endif\n"
	res, errs := Preprocess(src)
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if strings.Contains(res.Source, "int bad;") {
		t.Errorf("#undef did not remove macro: %q", res.Source)
	}
}

func TestPreprocessErrorDirective(t *testing.T) {
	_, errs := Preprocess("#error custom failure\n")
	if errs.Err() == nil || !strings.Contains(errs.Error(), "custom failure") {
		t.Fatalf("expected #error to surface: %v", errs)
	}
}

func TestPreprocessErrorInDeadBranch(t *testing.T) {
	_, errs := Preprocess("#if 0\n#error should not fire\n#endif\n")
	if errs.Err() != nil {
		t.Fatalf("#error in dead branch must not fire: %v", errs)
	}
}

func TestPreprocessUnterminatedIf(t *testing.T) {
	_, errs := Preprocess("#if 1\nint x;\n")
	if errs.Err() == nil {
		t.Fatal("expected an error for unterminated #if")
	}
}

func TestPreprocessExtensionAndPragma(t *testing.T) {
	src := "#extension GL_OES_standard_derivatives : enable\n#pragma optimize(on)\n"
	res, errs := Preprocess(src)
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if res.Extensions["GL_OES_standard_derivatives"] != "enable" {
		t.Errorf("extension not recorded: %v", res.Extensions)
	}
	if len(res.Pragmas) != 1 {
		t.Errorf("pragma not recorded: %v", res.Pragmas)
	}
}

func TestPreprocessLineContinuation(t *testing.T) {
	res, errs := Preprocess("#define LONG 1 + \\\n2\nint x = LONG;\n")
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if !strings.Contains(res.Source, "1 + 2") {
		t.Errorf("line continuation broken: %q", res.Source)
	}
}

func TestPreprocessPreservesLineNumbers(t *testing.T) {
	src := "#define X 1\n\nfloat a;\n"
	res, errs := Preprocess(src)
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	lines := strings.Split(res.Source, "\n")
	if len(lines) < 3 || strings.TrimSpace(lines[2]) != "float a;" {
		t.Errorf("line structure not preserved: %q", res.Source)
	}
}

func TestPreprocessReservedMacroNames(t *testing.T) {
	_, errs := Preprocess("#define GL_FOO 1\n")
	if errs.Err() == nil {
		t.Fatal("GL_ macro names must be rejected")
	}
	_, errs = Preprocess("#define a__b 1\n")
	if errs.Err() == nil {
		t.Fatal("__ macro names must be rejected")
	}
}

func TestPreprocessVersionMacro(t *testing.T) {
	res, errs := Preprocess("#if __VERSION__ == 100\nint v100;\n#endif\n")
	if errs.Err() != nil {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if !strings.Contains(res.Source, "int v100;") {
		t.Errorf("__VERSION__ not predefined: %q", res.Source)
	}
}
