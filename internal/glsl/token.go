// Package glsl implements a front-end (preprocessor, lexer, parser, type
// checker) for the OpenGL ES Shading Language 1.00, the language mandated by
// OpenGL ES 2.0. The subset implemented is the one a low-end mobile driver of
// the VideoCore IV era accepts; ES-specific restrictions (no implicit
// conversions, reserved operators, loop restrictions) are enforced or
// reported, which is essential for the GPGPU techniques of Trompouki &
// Kosmidis (DATE 2016) to be exercised faithfully.
package glsl

import "fmt"

// TokenKind identifies the lexical class of a token.
type TokenKind int

// Token kinds. Keyword kinds follow the GLSL ES 1.00 specification §3.6.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokIntLit
	TokFloatLit
	TokBoolLit

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBracket
	TokRBracket
	TokLBrace
	TokRBrace
	TokDot
	TokComma
	TokColon
	TokSemicolon
	TokQuestion

	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokBang
	TokInc // ++
	TokDec // --

	TokLess
	TokGreater
	TokLessEq
	TokGreaterEq
	TokEqEq
	TokNotEq

	TokAndAnd
	TokOrOr
	TokXorXor // ^^

	TokAssign
	TokPlusAssign
	TokMinusAssign
	TokStarAssign
	TokSlashAssign

	// Operators that exist lexically but are reserved (illegal) in
	// GLSL ES 1.00: %, %=, bitwise ops, shifts.
	TokPercent
	TokPercentAssign
	TokAmp
	TokPipe
	TokCaret
	TokTilde
	TokShl
	TokShr

	// Keywords.
	TokAttribute
	TokConst
	TokUniform
	TokVarying
	TokBreak
	TokContinue
	TokDo
	TokFor
	TokWhile
	TokIf
	TokElse
	TokIn
	TokOut
	TokInout
	TokFloat
	TokInt
	TokVoid
	TokBool
	TokLowp
	TokMediump
	TokHighp
	TokPrecision
	TokInvariant
	TokDiscard
	TokReturn
	TokMat2
	TokMat3
	TokMat4
	TokVec2
	TokVec3
	TokVec4
	TokIvec2
	TokIvec3
	TokIvec4
	TokBvec2
	TokBvec3
	TokBvec4
	TokSampler2D
	TokSamplerCube
	TokStruct

	// Reserved keywords (GLSL ES 1.00 §3.6): using one is an error.
	TokReservedWord
)

var tokenNames = map[TokenKind]string{
	TokEOF:       "end of file",
	TokIdent:     "identifier",
	TokIntLit:    "integer literal",
	TokFloatLit:  "float literal",
	TokBoolLit:   "boolean literal",
	TokLParen:    "'('",
	TokRParen:    "')'",
	TokLBracket:  "'['",
	TokRBracket:  "']'",
	TokLBrace:    "'{'",
	TokRBrace:    "'}'",
	TokDot:       "'.'",
	TokComma:     "','",
	TokColon:     "':'",
	TokSemicolon: "';'",
	TokQuestion:  "'?'",

	TokPlus:      "'+'",
	TokMinus:     "'-'",
	TokStar:      "'*'",
	TokSlash:     "'/'",
	TokBang:      "'!'",
	TokInc:       "'++'",
	TokDec:       "'--'",
	TokLess:      "'<'",
	TokGreater:   "'>'",
	TokLessEq:    "'<='",
	TokGreaterEq: "'>='",
	TokEqEq:      "'=='",
	TokNotEq:     "'!='",
	TokAndAnd:    "'&&'",
	TokOrOr:      "'||'",
	TokXorXor:    "'^^'",

	TokAssign:      "'='",
	TokPlusAssign:  "'+='",
	TokMinusAssign: "'-='",
	TokStarAssign:  "'*='",
	TokSlashAssign: "'/='",

	TokPercent:       "'%'",
	TokPercentAssign: "'%='",
	TokAmp:           "'&'",
	TokPipe:          "'|'",
	TokCaret:         "'^'",
	TokTilde:         "'~'",
	TokShl:           "'<<'",
	TokShr:           "'>>'",

	TokAttribute:   "'attribute'",
	TokConst:       "'const'",
	TokUniform:     "'uniform'",
	TokVarying:     "'varying'",
	TokBreak:       "'break'",
	TokContinue:    "'continue'",
	TokDo:          "'do'",
	TokFor:         "'for'",
	TokWhile:       "'while'",
	TokIf:          "'if'",
	TokElse:        "'else'",
	TokIn:          "'in'",
	TokOut:         "'out'",
	TokInout:       "'inout'",
	TokFloat:       "'float'",
	TokInt:         "'int'",
	TokVoid:        "'void'",
	TokBool:        "'bool'",
	TokLowp:        "'lowp'",
	TokMediump:     "'mediump'",
	TokHighp:       "'highp'",
	TokPrecision:   "'precision'",
	TokInvariant:   "'invariant'",
	TokDiscard:     "'discard'",
	TokReturn:      "'return'",
	TokMat2:        "'mat2'",
	TokMat3:        "'mat3'",
	TokMat4:        "'mat4'",
	TokVec2:        "'vec2'",
	TokVec3:        "'vec3'",
	TokVec4:        "'vec4'",
	TokIvec2:       "'ivec2'",
	TokIvec3:       "'ivec3'",
	TokIvec4:       "'ivec4'",
	TokBvec2:       "'bvec2'",
	TokBvec3:       "'bvec3'",
	TokBvec4:       "'bvec4'",
	TokSampler2D:   "'sampler2D'",
	TokSamplerCube: "'samplerCube'",
	TokStruct:      "'struct'",

	TokReservedWord: "reserved word",
}

func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// keywords maps GLSL ES 1.00 keyword spellings to their token kinds.
var keywords = map[string]TokenKind{
	"attribute":   TokAttribute,
	"const":       TokConst,
	"uniform":     TokUniform,
	"varying":     TokVarying,
	"break":       TokBreak,
	"continue":    TokContinue,
	"do":          TokDo,
	"for":         TokFor,
	"while":       TokWhile,
	"if":          TokIf,
	"else":        TokElse,
	"in":          TokIn,
	"out":         TokOut,
	"inout":       TokInout,
	"float":       TokFloat,
	"int":         TokInt,
	"void":        TokVoid,
	"bool":        TokBool,
	"lowp":        TokLowp,
	"mediump":     TokMediump,
	"highp":       TokHighp,
	"precision":   TokPrecision,
	"invariant":   TokInvariant,
	"discard":     TokDiscard,
	"return":      TokReturn,
	"mat2":        TokMat2,
	"mat3":        TokMat3,
	"mat4":        TokMat4,
	"vec2":        TokVec2,
	"vec3":        TokVec3,
	"vec4":        TokVec4,
	"ivec2":       TokIvec2,
	"ivec3":       TokIvec3,
	"ivec4":       TokIvec4,
	"bvec2":       TokBvec2,
	"bvec3":       TokBvec3,
	"bvec4":       TokBvec4,
	"sampler2D":   TokSampler2D,
	"samplerCube": TokSamplerCube,
	"struct":      TokStruct,
	"true":        TokBoolLit,
	"false":       TokBoolLit,
}

// reservedWords are keywords reserved for future use by GLSL ES 1.00 §3.6;
// using any of them is a compile-time error.
var reservedWords = map[string]bool{
	"asm": true, "class": true, "union": true, "enum": true,
	"typedef": true, "template": true, "this": true, "packed": true,
	"goto": true, "switch": true, "default": true, "inline": true,
	"noinline": true, "volatile": true, "public": true, "static": true,
	"extern": true, "external": true, "interface": true, "flat": true,
	"long": true, "short": true, "double": true, "half": true,
	"fixed": true, "unsigned": true, "superp": true, "input": true,
	"output": true, "hvec2": true, "hvec3": true, "hvec4": true,
	"dvec2": true, "dvec3": true, "dvec4": true, "fvec2": true,
	"fvec3": true, "fvec4": true, "sampler1D": true, "sampler3D": true,
	"sampler1DShadow": true, "sampler2DShadow": true,
	"sampler2DRect": true, "sampler3DRect": true, "sampler2DRectShadow": true,
	"sizeof": true, "cast": true, "namespace": true, "using": true,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string {
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Token is one lexical token with its source position and spelling.
type Token struct {
	Kind TokenKind
	Pos  Pos
	Text string

	// IntVal and FloatVal carry the decoded value for literal tokens.
	IntVal   int32
	FloatVal float32
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokIntLit, TokFloatLit, TokBoolLit:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
