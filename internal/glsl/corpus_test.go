package glsl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestShaderCorpus compiles every shader under testdata/ — realistic
// graphics and GPGPU sources written by hand, not by the code generator.
func TestShaderCorpus(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty shader corpus")
	}
	for _, e := range entries {
		name := e.Name()
		stage := StageFragment
		if strings.HasSuffix(name, ".vert") {
			stage = StageVertex
		}
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", name))
			if err != nil {
				t.Fatal(err)
			}
			prog, errs := CompileSource(string(src), stage, CheckOptions{})
			if errs.Err() != nil {
				t.Fatalf("corpus shader failed to compile:\n%v", errs)
			}
			if prog.Entry == nil {
				t.Fatal("missing entry point")
			}
		})
	}
}

// TestShaderCorpusStageMismatch verifies corpus shaders fail when compiled
// for the wrong stage (attribute/gl_FragColor usage is stage-specific).
func TestShaderCorpusStageMismatch(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "fullscreen.vert"))
	if err != nil {
		t.Fatal(err)
	}
	if _, errs := CompileSource(string(src), StageFragment, CheckOptions{}); errs.Err() == nil {
		t.Error("vertex shader must not compile as a fragment shader")
	}
	src2, err := os.ReadFile(filepath.Join("testdata", "phong.frag"))
	if err != nil {
		t.Fatal(err)
	}
	if _, errs := CompileSource(string(src2), StageVertex, CheckOptions{}); errs.Err() == nil {
		t.Error("fragment shader must not compile as a vertex shader")
	}
}
