package glsl

// This file defines the abstract syntax tree produced by the parser and
// annotated by the type checker. Expression nodes carry their resolved type
// (T) and, where relevant, resolution results (variable references, builtin
// signatures, swizzle index lists) so that the executor in internal/shader
// never needs to redo name or overload resolution.

// Node is implemented by every AST node.
type Node interface {
	NodePos() Pos
}

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	// Type returns the checked type (TypeInvalid before checking).
	Type() *Type
	exprNode()
}

type exprBase struct {
	Pos Pos
	T   *Type
}

func (e *exprBase) NodePos() Pos { return e.Pos }
func (e *exprBase) Type() *Type {
	if e.T == nil {
		return TypeInvalid
	}
	return e.T
}
func (*exprBase) exprNode() {}

// StorageClass says where a variable's value lives at run time.
type StorageClass int

// Storage classes assigned by the type checker.
const (
	StorageLocal   StorageClass = iota // function locals and parameters
	StorageGlobal                      // file-scope variables incl. uniforms/attributes/varyings
	StorageBuiltin                     // gl_* variables
)

// Qualifier is a GLSL storage qualifier for global declarations.
type Qualifier int

// Qualifiers.
const (
	QualNone Qualifier = iota
	QualConst
	QualAttribute
	QualUniform
	QualVarying
)

func (q Qualifier) String() string {
	switch q {
	case QualConst:
		return "const"
	case QualAttribute:
		return "attribute"
	case QualUniform:
		return "uniform"
	case QualVarying:
		return "varying"
	default:
		return ""
	}
}

// ParamDirection is the in/out/inout qualifier of a function parameter.
type ParamDirection int

// Parameter directions.
const (
	DirIn ParamDirection = iota
	DirOut
	DirInOut
)

func (d ParamDirection) String() string {
	switch d {
	case DirOut:
		return "out"
	case DirInOut:
		return "inout"
	default:
		return "in"
	}
}

// VarDecl is a declared variable: global, local, or parameter. The checker
// fills Storage/Slot; the executor uses them for direct indexing.
type VarDecl struct {
	Pos       Pos
	Name      string
	DeclType  *Type
	Qual      Qualifier
	Prec      Precision
	Invariant bool
	Init      Expr // may be nil

	Storage StorageClass
	Slot    int  // index into global or frame storage
	IsParam bool // declared as a function parameter
	Dir     ParamDirection

	// ConstVal holds the folded value for const-qualified variables.
	ConstVal *ConstValue
}

func (d *VarDecl) NodePos() Pos { return d.Pos }

// FuncDecl is a function prototype or definition.
type FuncDecl struct {
	Pos       Pos
	Name      string
	Ret       *Type
	RetPrec   Precision
	Params    []*VarDecl
	Body      *BlockStmt // nil for a prototype
	LocalSize int        // number of local slots, filled by the checker
}

func (d *FuncDecl) NodePos() Pos { return d.Pos }

// signatureKey builds the overload key "name(t1,t2,...)".
func (d *FuncDecl) signatureKey() string {
	key := d.Name + "("
	for i, p := range d.Params {
		if i > 0 {
			key += ","
		}
		key += p.DeclType.String()
	}
	return key + ")"
}

// StructDecl introduces a named struct type at file or block scope.
type StructDecl struct {
	Pos  Pos
	Info *StructInfo
}

func (d *StructDecl) NodePos() Pos { return d.Pos }

// PrecisionDecl is a "precision highp float;" style default declaration.
type PrecisionDecl struct {
	Pos  Pos
	Prec Precision
	Of   *Type
}

func (d *PrecisionDecl) NodePos() Pos { return d.Pos }

// InvariantDecl re-declares an output variable as invariant.
type InvariantDecl struct {
	Pos   Pos
	Names []string
}

func (d *InvariantDecl) NodePos() Pos { return d.Pos }

// TranslationUnit is a whole shader.
type TranslationUnit struct {
	Version int
	Decls   []Node // *VarDecl (possibly grouped), *FuncDecl, *StructDecl, *PrecisionDecl, *InvariantDecl
}

// ---- Expressions ----

// Ident is a name use, resolved by the checker to a variable or builtin.
type Ident struct {
	exprBase
	Name string
	Ref  *VarDecl    // non-nil for user variables
	BRef *BuiltinVar // non-nil for gl_* builtin variables
}

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Val int32
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	exprBase
	Val float32
}

// BoolLit is true/false.
type BoolLit struct {
	exprBase
	Val bool
}

// BinaryExpr is a binary operation. Op is the operator token kind.
type BinaryExpr struct {
	exprBase
	Op   TokenKind
	X, Y Expr
}

// UnaryExpr is prefix +x, -x, !x, ++x, --x; Postfix marks x++ / x--.
type UnaryExpr struct {
	exprBase
	Op      TokenKind
	X       Expr
	Postfix bool
}

// CondExpr is the ?: ternary operator.
type CondExpr struct {
	exprBase
	Cond, Then, Else Expr
}

// AssignExpr is an assignment, possibly compound (+=, -=, *=, /=).
type AssignExpr struct {
	exprBase
	Op  TokenKind // TokAssign or compound
	LHS Expr
	RHS Expr
}

// SequenceExpr is the comma operator.
type SequenceExpr struct {
	exprBase
	X, Y Expr
}

// CallKind says how a call expression resolved.
type CallKind int

// Call kinds.
const (
	CallUnresolved CallKind = iota
	CallUser                // user-defined function
	CallBuiltin             // builtin function (sin, texture2D, ...)
	CallTypeConstructor
	CallStructConstructor
)

// CallExpr is a function call or constructor.
type CallExpr struct {
	exprBase
	Callee string
	Args   []Expr

	Kind     CallKind
	Func     *FuncDecl   // for CallUser
	Builtin  *BuiltinSig // for CallBuiltin
	CtorType *Type       // for constructors
}

// FieldExpr is x.name — a struct field access or a vector swizzle.
type FieldExpr struct {
	exprBase
	X    Expr
	Name string

	// Resolution: exactly one of the following is meaningful.
	Swizzle    []int // component indices for vector swizzles
	FieldIndex int   // struct field index, -1 when swizzle
}

// IndexExpr is x[i] for arrays, vectors and matrices.
type IndexExpr struct {
	exprBase
	X     Expr
	Index Expr
}

// ---- Statements ----

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

type stmtBase struct{ Pos Pos }

func (s *stmtBase) NodePos() Pos { return s.Pos }
func (*stmtBase) stmtNode()      {}

// BlockStmt is { ... } with its own scope.
type BlockStmt struct {
	stmtBase
	Stmts []Stmt
}

// DeclStmt declares one or more local variables (or a local struct type).
type DeclStmt struct {
	stmtBase
	Vars   []*VarDecl
	Struct *StructDecl // non-nil when the statement (also) declares a struct
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	stmtBase
	X Expr
}

// EmptyStmt is a stray ';'.
type EmptyStmt struct {
	stmtBase
}

// IfStmt is if/else.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// ForStmt is a for loop. InitStmt may be a DeclStmt or ExprStmt.
type ForStmt struct {
	stmtBase
	InitStmt Stmt // may be nil
	Cond     Expr // may be nil
	Post     Expr // may be nil
	Body     Stmt
}

// WhileStmt is a while loop.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// DoWhileStmt is do { } while (cond);
type DoWhileStmt struct {
	stmtBase
	Body Stmt
	Cond Expr
}

// ReturnStmt returns from a function; X may be nil.
type ReturnStmt struct {
	stmtBase
	X Expr
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ stmtBase }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ stmtBase }

// DiscardStmt discards the fragment (fragment shaders only).
type DiscardStmt struct{ stmtBase }
