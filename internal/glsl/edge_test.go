package glsl

import (
	"strings"
	"testing"
)

func TestCheckCommaOperator(t *testing.T) {
	prog := compileOK(t, `
const float A = (1.0, 2.0, 3.0);
void main(){ gl_Position = vec4(A); }
`, StageVertex)
	for _, g := range prog.Globals {
		if g.Name == "A" {
			if g.ConstVal == nil || g.ConstVal.F[0] != 3 {
				t.Errorf("comma fold: %v, want 3", g.ConstVal)
			}
		}
	}
}

func TestCheckArrayOfStructs(t *testing.T) {
	compileOK(t, `
struct P { vec2 pos; float w; };
uniform P u_ps[3];
void main(){
	vec2 acc = vec2(0.0);
	for (int i = 0; i < 3; ++i) { acc += u_ps[i].pos * u_ps[i].w; }
	gl_Position = vec4(acc, 0.0, 1.0);
}
`, StageVertex)
}

func TestCheckNestedStructs(t *testing.T) {
	compileOK(t, `
struct Inner { float v; };
struct Outer { Inner i; vec2 p; };
uniform Outer u_o;
void main(){ gl_Position = vec4(u_o.p, u_o.i.v, 1.0); }
`, StageVertex)
}

func TestCheckStructAssignmentAndComparison(t *testing.T) {
	compileOK(t, `
struct S { float a; vec2 b; };
void main(){
	S x = S(1.0, vec2(2.0));
	S y = x;
	bool eq = x == y;
	gl_Position = vec4(eq ? 1.0 : 0.0);
}
`, StageVertex)
}

func TestCheckFunctionArrayParam(t *testing.T) {
	compileOK(t, `
float sum4(float a[4]) {
	float s = 0.0;
	for (int i = 0; i < 4; ++i) { s += a[i]; }
	return s;
}
void main(){
	float xs[4];
	xs[0] = 1.0; xs[1] = 2.0; xs[2] = 3.0; xs[3] = 4.0;
	gl_Position = vec4(sum4(xs));
}
`, StageVertex)
}

func TestCheckChainedAssignments(t *testing.T) {
	compileOK(t, "void main(){ float a; float b; a = b = 2.0; gl_Position = vec4(a + b); }", StageVertex)
}

func TestCheckVectorCompoundAssign(t *testing.T) {
	compileOK(t, `
void main(){
	vec3 v = vec3(1.0);
	v += vec3(1.0);
	v *= 2.0;
	v -= 0.5;  // scalar op on vector
	v /= vec3(2.0);
	gl_Position = vec4(v, 1.0);
}
`, StageVertex)
	compileFail(t, "void main(){ vec3 v; v += vec4(1.0); }", StageVertex, "invalid operands")
}

func TestCheckMatrixCompoundAssign(t *testing.T) {
	compileOK(t, `
void main(){
	mat2 m = mat2(1.0);
	m *= mat2(2.0);      // matrix multiply
	m += mat2(1.0);      // componentwise
	gl_Position = vec4(m[0], m[1]);
}
`, StageVertex)
}

func TestCheckDeeplyNestedExpressions(t *testing.T) {
	var b strings.Builder
	b.WriteString("void main(){ float x = 1.0")
	for i := 0; i < 50; i++ {
		b.WriteString(" + (2.0 * (1.0 - 0.5))")
	}
	b.WriteString("; gl_Position = vec4(x); }")
	compileOK(t, b.String(), StageVertex)
}

func TestCheckVaryingArrays(t *testing.T) {
	compileOK(t, `
varying float v_ws[4];
void main(){
	for (int i = 0; i < 4; ++i) { v_ws[i] = float(i); }
	gl_Position = vec4(0.0);
}
`, StageVertex)
}

func TestCheckPrototypeOnlyCallFails(t *testing.T) {
	// Calling a function that has a prototype but no definition should
	// compile (resolution succeeds) — a link-level concern in real GL; our
	// executor errors at run time. But calling an undefined name fails.
	compileOK(t, `
float helper(float x);
float helper(float x) { return x; }
void main(){ gl_Position = vec4(helper(1.0)); }
`, StageVertex)
}

func TestCheckVoidMisuse(t *testing.T) {
	compileFail(t, "void f() {}\nvoid main(){ float x = f(); }", StageVertex, "implicit")
}

func TestCheckConstIndexIntoConstArrayFold(t *testing.T) {
	prog := compileOK(t, `
const vec4 C = vec4(10.0, 20.0, 30.0, 40.0);
const float X = C[2];
void main(){ gl_Position = vec4(X); }
`, StageVertex)
	for _, g := range prog.Globals {
		if g.Name == "X" {
			if g.ConstVal == nil || g.ConstVal.F[0] != 30 {
				t.Errorf("const index fold: %v, want 30", g.ConstVal)
			}
		}
	}
}

func TestCheckTernaryFold(t *testing.T) {
	prog := compileOK(t, `
const float A = 3.0 > 2.0 ? 7.0 : 9.0;
void main(){ gl_Position = vec4(A); }
`, StageVertex)
	for _, g := range prog.Globals {
		if g.Name == "A" && (g.ConstVal == nil || g.ConstVal.F[0] != 7) {
			t.Errorf("ternary fold: %v", g.ConstVal)
		}
	}
}

func TestCheckHexAndOctalLiterals(t *testing.T) {
	prog := compileOK(t, `
const int H = 0xFF;
const int O = 010;
void main(){ gl_Position = vec4(float(H + O)); }
`, StageVertex)
	find := func(name string) float32 {
		for _, g := range prog.Globals {
			if g.Name == name && g.ConstVal != nil {
				return g.ConstVal.F[0]
			}
		}
		return -1
	}
	if find("H") != 255 || find("O") != 8 {
		t.Errorf("literal decode wrong: H=%g O=%g", find("H"), find("O"))
	}
}

func TestCheckSwizzleOfCallResult(t *testing.T) {
	compileOK(t, `
precision mediump float;
uniform sampler2D s;
void main(){ gl_FragColor = vec4(texture2D(s, vec2(0.5)).rgb, 1.0); }
`, StageFragment)
}

func TestCheckWriteThroughSwizzleOfIndex(t *testing.T) {
	compileOK(t, `
void main(){
	mat3 m = mat3(0.0);
	m[1].xy = vec2(3.0);
	gl_Position = vec4(m[1], 1.0);
}
`, StageVertex)
}

func TestParsePrecisionInsideFunction(t *testing.T) {
	compileOK(t, "void main(){ precision highp float; gl_Position = vec4(0.0); }", StageVertex)
}

func TestCheckLargeConstantArraySize(t *testing.T) {
	compileOK(t, `
uniform float u_big[128];
void main(){ gl_Position = vec4(u_big[127]); }
`, StageVertex)
}

func TestCheckUniformLimitEnforcedAtLink(t *testing.T) {
	// The checker itself doesn't enforce uniform vector limits (the linker
	// does); it must still compile a large-but-declarable shader.
	compileOK(t, `
uniform vec4 u_many[32];
void main(){ gl_Position = u_many[0]; }
`, StageVertex)
}

func TestWarningsExposedOnProgram(t *testing.T) {
	prog := compileOK(t, `
uniform float u_n;
void main(){
	float s = 0.0;
	for (float i = 0.0; i < u_n; i += 1.0) { s += 1.0; }
	gl_Position = vec4(s);
}
`, StageVertex)
	if len(prog.Warnings) == 0 {
		t.Error("Appendix A deviation must produce a warning")
	}
}
