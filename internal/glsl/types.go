package glsl

import (
	"fmt"
	"strings"
)

// BasicKind enumerates the GLSL ES 1.00 type constructors.
type BasicKind int

// Basic kinds. Vectors and matrices are distinct kinds rather than
// parameterized types because GLSL ES 1.00 has exactly this closed set.
const (
	KInvalid BasicKind = iota
	KVoid
	KBool
	KInt
	KFloat
	KVec2
	KVec3
	KVec4
	KIVec2
	KIVec3
	KIVec4
	KBVec2
	KBVec3
	KBVec4
	KMat2
	KMat3
	KMat4
	KSampler2D
	KSamplerCube
	KArray
	KStruct
)

// Precision is a GLSL ES precision qualifier. It does not affect the host
// semantics of this implementation (arithmetic is always fp32) but is
// tracked because GetShaderPrecisionFormat and declaration rules depend
// on it.
type Precision int

// Precision qualifier values; PrecNone means "inherit the default".
const (
	PrecNone Precision = iota
	PrecLow
	PrecMedium
	PrecHigh
)

func (p Precision) String() string {
	switch p {
	case PrecLow:
		return "lowp"
	case PrecMedium:
		return "mediump"
	case PrecHigh:
		return "highp"
	default:
		return ""
	}
}

// StructField is one member of a struct type.
type StructField struct {
	Name string
	Type *Type
}

// StructInfo is the definition payload of a struct type.
type StructInfo struct {
	Name   string
	Fields []StructField
}

// FieldIndex returns the index of the named field, or -1.
func (s *StructInfo) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Type describes a GLSL ES type. Types are compared structurally with Equal;
// the singletons below should be used for the basic kinds so pointer
// comparison also works in the common case.
type Type struct {
	Kind     BasicKind
	Elem     *Type       // array element type
	ArrayLen int         // array length (>0)
	Struct   *StructInfo // struct definition
}

// Singleton types for every non-composite kind.
var (
	TypeInvalid     = &Type{Kind: KInvalid}
	TypeVoid        = &Type{Kind: KVoid}
	TypeBool        = &Type{Kind: KBool}
	TypeInt         = &Type{Kind: KInt}
	TypeFloat       = &Type{Kind: KFloat}
	TypeVec2        = &Type{Kind: KVec2}
	TypeVec3        = &Type{Kind: KVec3}
	TypeVec4        = &Type{Kind: KVec4}
	TypeIVec2       = &Type{Kind: KIVec2}
	TypeIVec3       = &Type{Kind: KIVec3}
	TypeIVec4       = &Type{Kind: KIVec4}
	TypeBVec2       = &Type{Kind: KBVec2}
	TypeBVec3       = &Type{Kind: KBVec3}
	TypeBVec4       = &Type{Kind: KBVec4}
	TypeMat2        = &Type{Kind: KMat2}
	TypeMat3        = &Type{Kind: KMat3}
	TypeMat4        = &Type{Kind: KMat4}
	TypeSampler2D   = &Type{Kind: KSampler2D}
	TypeSamplerCube = &Type{Kind: KSamplerCube}
)

// ArrayOf returns the type "elem[n]".
func ArrayOf(elem *Type, n int) *Type {
	return &Type{Kind: KArray, Elem: elem, ArrayLen: n}
}

// StructType returns a struct type over the given definition.
func StructType(info *StructInfo) *Type {
	return &Type{Kind: KStruct, Struct: info}
}

func (t *Type) String() string {
	switch t.Kind {
	case KInvalid:
		return "<invalid>"
	case KVoid:
		return "void"
	case KBool:
		return "bool"
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KVec2:
		return "vec2"
	case KVec3:
		return "vec3"
	case KVec4:
		return "vec4"
	case KIVec2:
		return "ivec2"
	case KIVec3:
		return "ivec3"
	case KIVec4:
		return "ivec4"
	case KBVec2:
		return "bvec2"
	case KBVec3:
		return "bvec3"
	case KBVec4:
		return "bvec4"
	case KMat2:
		return "mat2"
	case KMat3:
		return "mat3"
	case KMat4:
		return "mat4"
	case KSampler2D:
		return "sampler2D"
	case KSamplerCube:
		return "samplerCube"
	case KArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.ArrayLen)
	case KStruct:
		if t.Struct != nil && t.Struct.Name != "" {
			return t.Struct.Name
		}
		return "struct"
	}
	return "<?>"
}

// Equal reports structural type equality. Struct types are equal only when
// they share the same definition (name equivalence, as in GLSL).
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KArray:
		return t.ArrayLen == o.ArrayLen && t.Elem.Equal(o.Elem)
	case KStruct:
		return t.Struct == o.Struct
	default:
		return true
	}
}

// IsScalar reports whether t is bool, int or float.
func (t *Type) IsScalar() bool {
	switch t.Kind {
	case KBool, KInt, KFloat:
		return true
	}
	return false
}

// IsVector reports whether t is any vecN/ivecN/bvecN.
func (t *Type) IsVector() bool {
	switch t.Kind {
	case KVec2, KVec3, KVec4, KIVec2, KIVec3, KIVec4, KBVec2, KBVec3, KBVec4:
		return true
	}
	return false
}

// IsMatrix reports whether t is mat2/mat3/mat4.
func (t *Type) IsMatrix() bool {
	switch t.Kind {
	case KMat2, KMat3, KMat4:
		return true
	}
	return false
}

// IsSampler reports whether t is an opaque sampler type.
func (t *Type) IsSampler() bool {
	return t.Kind == KSampler2D || t.Kind == KSamplerCube
}

// IsNumeric reports whether t is usable in arithmetic (float/int scalar,
// vector, or matrix; never bool).
func (t *Type) IsNumeric() bool {
	switch t.Kind {
	case KInt, KFloat, KVec2, KVec3, KVec4, KIVec2, KIVec3, KIVec4,
		KMat2, KMat3, KMat4:
		return true
	}
	return false
}

// ComponentType returns the scalar type of t's components (t itself for
// scalars; float for matrices).
func (t *Type) ComponentType() *Type {
	switch t.Kind {
	case KBool, KInt, KFloat:
		return t
	case KVec2, KVec3, KVec4, KMat2, KMat3, KMat4:
		return TypeFloat
	case KIVec2, KIVec3, KIVec4:
		return TypeInt
	case KBVec2, KBVec3, KBVec4:
		return TypeBool
	}
	return TypeInvalid
}

// ComponentCount returns the number of scalar components (matrices count
// rows*cols; arrays/structs return 0 — use flattened sizes in the executor).
func (t *Type) ComponentCount() int {
	switch t.Kind {
	case KBool, KInt, KFloat:
		return 1
	case KVec2, KIVec2, KBVec2:
		return 2
	case KVec3, KIVec3, KBVec3:
		return 3
	case KVec4, KIVec4, KBVec4:
		return 4
	case KMat2:
		return 4
	case KMat3:
		return 9
	case KMat4:
		return 16
	}
	return 0
}

// VectorSize returns N for vecN/ivecN/bvecN, 0 otherwise.
func (t *Type) VectorSize() int {
	if t.IsVector() {
		return t.ComponentCount()
	}
	return 0
}

// MatrixDim returns N for matN, 0 otherwise.
func (t *Type) MatrixDim() int {
	switch t.Kind {
	case KMat2:
		return 2
	case KMat3:
		return 3
	case KMat4:
		return 4
	}
	return 0
}

// VectorOf returns the vector type with the given component type and size,
// e.g. VectorOf(TypeFloat, 3) == vec3. Size 1 returns the scalar itself.
func VectorOf(comp *Type, size int) *Type {
	if size == 1 {
		return comp
	}
	switch comp.Kind {
	case KFloat:
		switch size {
		case 2:
			return TypeVec2
		case 3:
			return TypeVec3
		case 4:
			return TypeVec4
		}
	case KInt:
		switch size {
		case 2:
			return TypeIVec2
		case 3:
			return TypeIVec3
		case 4:
			return TypeIVec4
		}
	case KBool:
		switch size {
		case 2:
			return TypeBVec2
		case 3:
			return TypeBVec3
		case 4:
			return TypeBVec4
		}
	}
	return TypeInvalid
}

// MatrixOf returns matN for n in 2..4.
func MatrixOf(n int) *Type {
	switch n {
	case 2:
		return TypeMat2
	case 3:
		return TypeMat3
	case 4:
		return TypeMat4
	}
	return TypeInvalid
}

// FlatSize returns the total number of scalar slots needed to store a value
// of type t, recursing through arrays and structs. Samplers occupy one slot
// (the texture unit index).
func (t *Type) FlatSize() int {
	switch t.Kind {
	case KArray:
		return t.ArrayLen * t.Elem.FlatSize()
	case KStruct:
		n := 0
		for _, f := range t.Struct.Fields {
			n += f.Type.FlatSize()
		}
		return n
	case KSampler2D, KSamplerCube:
		return 1
	default:
		return t.ComponentCount()
	}
}

// typeFromToken maps a type-keyword token to its singleton type, or nil.
func typeFromToken(k TokenKind) *Type {
	switch k {
	case TokVoid:
		return TypeVoid
	case TokBool:
		return TypeBool
	case TokInt:
		return TypeInt
	case TokFloat:
		return TypeFloat
	case TokVec2:
		return TypeVec2
	case TokVec3:
		return TypeVec3
	case TokVec4:
		return TypeVec4
	case TokIvec2:
		return TypeIVec2
	case TokIvec3:
		return TypeIVec3
	case TokIvec4:
		return TypeIVec4
	case TokBvec2:
		return TypeBVec2
	case TokBvec3:
		return TypeBVec3
	case TokBvec4:
		return TypeBVec4
	case TokMat2:
		return TypeMat2
	case TokMat3:
		return TypeMat3
	case TokMat4:
		return TypeMat4
	case TokSampler2D:
		return TypeSampler2D
	case TokSamplerCube:
		return TypeSamplerCube
	}
	return nil
}

// swizzleSets are the three equivalent component naming families
// (GLSL ES 1.00 §5.5). A single swizzle may not mix families.
var swizzleSets = []string{"xyzw", "rgba", "stpq"}

// swizzleIndices decodes a swizzle like "xzy" into component indices.
// It returns nil when name is not a valid swizzle for a vector of the given
// size.
func swizzleIndices(name string, size int) []int {
	if len(name) == 0 || len(name) > 4 {
		return nil
	}
	for _, set := range swizzleSets {
		idx := make([]int, len(name))
		ok := true
		for i := 0; i < len(name); i++ {
			p := strings.IndexByte(set, name[i])
			if p < 0 || p >= size {
				ok = false
				break
			}
			idx[i] = p
		}
		if ok {
			return idx
		}
	}
	return nil
}

// swizzleHasDuplicates reports whether a swizzle repeats a component, which
// makes it unusable as an l-value.
func swizzleHasDuplicates(idx []int) bool {
	var seen [4]bool
	for _, i := range idx {
		if seen[i] {
			return true
		}
		seen[i] = true
	}
	return false
}
