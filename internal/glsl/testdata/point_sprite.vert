// Animated point sprites: writes gl_PointSize, uses trig builtins, mix
// and smoothstep — the vertex-stage feature set beyond pass-through.
attribute vec3 a_position;
attribute float a_phase;

uniform float u_time;
uniform mat4 u_mvp;

varying vec2 v_uv;

void main() {
	float w = sin(u_time + a_phase * 6.2831853);
	vec3 p = a_position + vec3(0.0, 0.1 * w, 0.0);
	gl_Position = u_mvp * vec4(p, 1.0);
	float fade = smoothstep(-1.0, 1.0, w);
	gl_PointSize = mix(2.0, 8.0, fade);
	v_uv = vec2(fade, a_phase);
}
