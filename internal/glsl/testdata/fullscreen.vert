// Pass-through fullscreen-quad vertex shader: the paper's challenge #1
// (ES 2.0 has no fixed-function pipeline, so even pure compute must
// program the vertex stage).
attribute vec2 a_position;
attribute vec2 a_texcoord;
varying vec2 v_uv;

void main() {
	v_uv = a_texcoord;
	gl_Position = vec4(a_position, 0.0, 1.0);
}
