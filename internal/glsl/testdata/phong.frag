// Classic per-fragment Phong lighting: exercises varyings, uniforms,
// vector builtins (normalize/dot/reflect/pow/max) and swizzles.
precision mediump float;

uniform vec3 u_light_pos;
uniform vec3 u_view_pos;
uniform vec3 u_diffuse;
uniform vec3 u_specular;
uniform float u_shininess;

varying vec3 v_normal;
varying vec3 v_world_pos;

void main() {
	vec3 n = normalize(v_normal);
	vec3 l = normalize(u_light_pos - v_world_pos);
	vec3 v = normalize(u_view_pos - v_world_pos);
	vec3 r = reflect(-l, n);
	float diff = max(dot(n, l), 0.0);
	float spec = pow(max(dot(r, v), 0.0), u_shininess);
	vec3 color = u_diffuse * diff + u_specular * spec + u_diffuse * 0.08;
	gl_FragColor = vec4(clamp(color, 0.0, 1.0), 1.0);
}
