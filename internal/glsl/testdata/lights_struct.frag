// Multi-light accumulation over an array of structs, with a helper
// function using an out parameter — exercises aggregates, user calls and
// parameter write-back.
precision mediump float;

struct Light {
	vec3 pos;
	vec3 color;
	float intensity;
};

uniform Light u_lights[3];
uniform vec3 u_base;

varying vec3 v_normal;
varying vec3 v_world_pos;

void shade(Light light, vec3 n, vec3 p, out vec3 contrib) {
	vec3 l = light.pos - p;
	float d2 = dot(l, l);
	float att = light.intensity / (1.0 + d2);
	float diff = max(dot(n, normalize(l)), 0.0);
	contrib = light.color * (diff * att);
}

void main() {
	vec3 n = normalize(v_normal);
	vec3 acc = u_base;
	for (int i = 0; i < 3; i++) {
		vec3 c;
		shade(u_lights[i], n, v_world_pos, c);
		acc += c;
	}
	gl_FragColor = vec4(clamp(acc, 0.0, 1.0), 1.0);
}
