// One step of a tree reduction (paper challenge #7: kernel chaining):
// each output fragment sums a fixed-width strip of the input texture.
precision highp float;

uniform sampler2D u_in;
uniform vec2 u_in_dims;
uniform float u_stride;
varying vec2 v_uv;

float fetch(float idx) {
	float row = floor((idx + 0.5) / u_in_dims.x);
	float col = idx - row * u_in_dims.x;
	vec2 st = vec2((col + 0.5) / u_in_dims.x, (row + 0.5) / u_in_dims.y);
	return texture2D(u_in, st).r;
}

void main() {
	float base = floor(gl_FragCoord.x) * u_stride;
	float acc = 0.0;
	for (float k = 0.0; k < 64.0; k += 1.0) {
		if (k >= u_stride) { break; }
		acc += fetch(base + k);
	}
	gl_FragColor = vec4(acc, 0.0, 0.0, 1.0);
}
