// Two-bone vertex skinning: mat4 uniform arrays, dynamic array indexing,
// matrix*vector products and attribute-heavy input.
attribute vec3 a_position;
attribute vec3 a_normal;
attribute vec2 a_bones;   // bone indices (as floats)
attribute vec2 a_weights; // blend weights

uniform mat4 u_bones[4];
uniform mat4 u_viewproj;

varying vec3 v_normal;
varying vec3 v_world_pos;

void main() {
	mat4 m0 = u_bones[int(a_bones.x)];
	mat4 m1 = u_bones[int(a_bones.y)];
	vec4 p = vec4(a_position, 1.0);
	vec4 skinned = m0 * p * a_weights.x + m1 * p * a_weights.y;
	vec4 n0 = m0 * vec4(a_normal, 0.0);
	vec4 n1 = m1 * vec4(a_normal, 0.0);
	v_normal = (n0 * a_weights.x + n1 * a_weights.y).xyz;
	v_world_pos = skinned.xyz;
	gl_Position = u_viewproj * skinned;
}
