// Mandelbrot escape-time kernel: data-dependent loop with break, the
// canonical GPGPU stress test for divergent control flow.
precision highp float;

uniform vec2 u_center;
uniform float u_scale;
varying vec2 v_uv;

void main() {
	vec2 c = u_center + (v_uv - 0.5) * u_scale;
	vec2 z = vec2(0.0);
	float escaped = 0.0;
	float iters = 0.0;
	for (int i = 0; i < 64; i++) {
		z = vec2(z.x * z.x - z.y * z.y, 2.0 * z.x * z.y) + c;
		if (dot(z, z) > 4.0) {
			escaped = 1.0;
			break;
		}
		iters += 1.0;
	}
	float t = iters / 64.0;
	gl_FragColor = vec4(t, t * t, escaped, 1.0);
}
