// The paper's §IV-E float codec round trip: decode an fp32 value from an
// RGBA8 texel and re-encode it for the framebuffer. Exercises ternaries,
// exp2/log2 (SFU ops), floor, mod, clamp and heavy scalar arithmetic.
precision highp float;

uniform sampler2D u_data;
varying vec2 v_uv;

float decode_f32(vec4 t) {
	vec4 b = floor(t * 255.0 + vec4(0.5));
	if (b.a == 0.0) { return 0.0; }
	float sgn = b.b < 128.0 ? 1.0 : -1.0;
	float m2 = b.b < 128.0 ? b.b : b.b - 128.0;
	float mant = (b.r + b.g * 256.0 + m2 * 65536.0) / 8388608.0;
	return sgn * (1.0 + mant) * exp2(b.a - 127.0);
}

vec4 encode_f32(float v) {
	if (v == 0.0) { return vec4(0.0); }
	float sgn = v < 0.0 ? 1.0 : 0.0;
	float af = abs(v);
	float e = floor(log2(af));
	float m = af * exp2(-e);
	if (m < 1.0) { m = m * 2.0; e = e - 1.0; }
	if (m >= 2.0) { m = m * 0.5; e = e + 1.0; }
	float mant = floor((m - 1.0) * 8388608.0 + 0.5);
	if (mant >= 8388608.0) { mant = 0.0; e = e + 1.0; }
	float b0 = mod(mant, 256.0);
	float r1 = floor((mant - b0) / 256.0);
	float b1 = mod(r1, 256.0);
	float b2 = floor((r1 - b1) / 256.0) + sgn * 128.0;
	float b3 = clamp(e + 127.0, 0.0, 255.0);
	return (vec4(b0, b1, b2, b3) + vec4(0.25)) / 255.0;
}

void main() {
	float v = decode_f32(texture2D(u_data, v_uv));
	gl_FragColor = encode_f32(v * 2.0 + 1.0);
}
