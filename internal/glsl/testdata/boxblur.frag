// 3x3 box blur: nested loops over texture fetches with an offset table,
// the image-processing shape of the paper's workloads.
precision mediump float;

uniform sampler2D u_tex;
uniform vec2 u_texel; // 1/width, 1/height
varying vec2 v_uv;

void main() {
	vec4 acc = vec4(0.0);
	for (int dy = -1; dy <= 1; dy++) {
		for (int dx = -1; dx <= 1; dx++) {
			vec2 off = vec2(float(dx), float(dy)) * u_texel;
			acc += texture2D(u_tex, v_uv + off);
		}
	}
	gl_FragColor = acc / 9.0;
}
