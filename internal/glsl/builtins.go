package glsl

// ShaderStage distinguishes vertex from fragment shaders. OpenGL ES 2.0
// requires *both* stages to be programmed (the paper's challenge #1: there is
// no fixed-function fallback), so every pipeline carries one of each.
type ShaderStage int

// Shader stages.
const (
	StageVertex ShaderStage = iota
	StageFragment
)

func (s ShaderStage) String() string {
	if s == StageVertex {
		return "vertex"
	}
	return "fragment"
}

// BuiltinVar describes a gl_* special variable. Slot indexes the executor's
// per-invocation builtin register file.
type BuiltinVar struct {
	Name     string
	Type     *Type
	Writable bool
	ReadOK   bool
	Slot     int
}

// Builtin variable slots, shared between sema and the shader executor.
const (
	// Vertex stage.
	BVSlotPosition  = 0 // gl_Position : vec4 (output)
	BVSlotPointSize = 1 // gl_PointSize : float (output)
	// Fragment stage.
	BVSlotFragCoord   = 0 // gl_FragCoord : vec4 (input)
	BVSlotFrontFacing = 1 // gl_FrontFacing : bool (input)
	BVSlotPointCoord  = 2 // gl_PointCoord : vec2 (input)
	BVSlotFragColor   = 3 // gl_FragColor : vec4 (output)
	BVSlotFragData    = 4 // gl_FragData[1] : vec4[] (output)

	// NumBuiltinSlots is the size of the builtin register file.
	NumBuiltinSlots = 5
)

// MaxDrawBuffers is gl_MaxDrawBuffers for this implementation: ES 2.0
// guarantees exactly 1, which is the paper's challenge #8 (single output per
// fragment).
const MaxDrawBuffers = 1

func vertexBuiltinVars() map[string]*BuiltinVar {
	return map[string]*BuiltinVar{
		"gl_Position":  {Name: "gl_Position", Type: TypeVec4, Writable: true, ReadOK: true, Slot: BVSlotPosition},
		"gl_PointSize": {Name: "gl_PointSize", Type: TypeFloat, Writable: true, ReadOK: true, Slot: BVSlotPointSize},
	}
}

func fragmentBuiltinVars() map[string]*BuiltinVar {
	return map[string]*BuiltinVar{
		"gl_FragCoord":   {Name: "gl_FragCoord", Type: TypeVec4, Writable: false, ReadOK: true, Slot: BVSlotFragCoord},
		"gl_FrontFacing": {Name: "gl_FrontFacing", Type: TypeBool, Writable: false, ReadOK: true, Slot: BVSlotFrontFacing},
		"gl_PointCoord":  {Name: "gl_PointCoord", Type: TypeVec2, Writable: false, ReadOK: true, Slot: BVSlotPointCoord},
		"gl_FragColor":   {Name: "gl_FragColor", Type: TypeVec4, Writable: true, ReadOK: true, Slot: BVSlotFragColor},
		"gl_FragData":    {Name: "gl_FragData", Type: ArrayOf(TypeVec4, MaxDrawBuffers), Writable: true, ReadOK: true, Slot: BVSlotFragData},
	}
}

// BuiltinConstants are the gl_Max* implementation constants, set to the
// values the simulated VideoCore-IV-class device reports (ES 2.0 minima).
var BuiltinConstants = map[string]int32{
	"gl_MaxVertexAttribs":             8,
	"gl_MaxVertexUniformVectors":      128,
	"gl_MaxVaryingVectors":            8,
	"gl_MaxVertexTextureImageUnits":   0,
	"gl_MaxCombinedTextureImageUnits": 8,
	"gl_MaxTextureImageUnits":         8,
	"gl_MaxFragmentUniformVectors":    16,
	"gl_MaxDrawBuffers":               MaxDrawBuffers,
}

// BuiltinID identifies a builtin function family; the executor dispatches
// on it.
type BuiltinID int

// Builtin function IDs (GLSL ES 1.00 §8).
const (
	BInvalid BuiltinID = iota
	BRadians
	BDegrees
	BSin
	BCos
	BTan
	BAsin
	BAcos
	BAtan  // atan(y_over_x)
	BAtan2 // atan(y, x)
	BPow
	BExp
	BLog
	BExp2
	BLog2
	BSqrt
	BInverseSqrt
	BAbs
	BSign
	BFloor
	BCeil
	BFract
	BMod
	BMin
	BMax
	BClamp
	BMix
	BStep
	BSmoothstep
	BLength
	BDistance
	BDot
	BCross
	BNormalize
	BFaceforward
	BReflect
	BRefract
	BMatrixCompMult
	BLessThan
	BLessThanEqual
	BGreaterThan
	BGreaterThanEqual
	BEqual
	BNotEqual
	BAny
	BAll
	BNot
	BTexture2D
	BTexture2DBias
	BTexture2DProj3
	BTexture2DProj4
	BTexture2DLod
	BTexture2DProjLod3
	BTexture2DProjLod4
	BTextureCube
	BTextureCubeBias
	BTextureCubeLod
)

// BuiltinSig is one concrete overload of a builtin function.
type BuiltinSig struct {
	ID     BuiltinID
	Name   string
	Ret    *Type
	Params []*Type
	// VertexOnly/FragmentOnly restrict availability per stage.
	VertexOnly   bool
	FragmentOnly bool
}

var builtinFuncs map[string][]*BuiltinSig

var genTypes = []*Type{TypeFloat, TypeVec2, TypeVec3, TypeVec4}
var vecTypes = []*Type{TypeVec2, TypeVec3, TypeVec4}
var ivecTypes = []*Type{TypeIVec2, TypeIVec3, TypeIVec4}
var bvecTypes = []*Type{TypeBVec2, TypeBVec3, TypeBVec4}
var matTypes = []*Type{TypeMat2, TypeMat3, TypeMat4}

func reg(sig *BuiltinSig) {
	builtinFuncs[sig.Name] = append(builtinFuncs[sig.Name], sig)
}

// regGen registers name(genType,...)->genType for all four gen sizes.
// paramPattern: for each parameter, true means "genType", false means
// "float scalar".
func regGen(id BuiltinID, name string, nParams int, scalarParams map[int]bool, retScalar bool) {
	for _, g := range genTypes {
		params := make([]*Type, nParams)
		for i := 0; i < nParams; i++ {
			if scalarParams != nil && scalarParams[i] {
				params[i] = TypeFloat
			} else {
				params[i] = g
			}
		}
		ret := g
		if retScalar {
			ret = TypeFloat
		}
		reg(&BuiltinSig{ID: id, Name: name, Ret: ret, Params: params})
	}
}

func init() {
	builtinFuncs = map[string][]*BuiltinSig{}

	// §8.1 Angle & trigonometry.
	regGen(BRadians, "radians", 1, nil, false)
	regGen(BDegrees, "degrees", 1, nil, false)
	regGen(BSin, "sin", 1, nil, false)
	regGen(BCos, "cos", 1, nil, false)
	regGen(BTan, "tan", 1, nil, false)
	regGen(BAsin, "asin", 1, nil, false)
	regGen(BAcos, "acos", 1, nil, false)
	regGen(BAtan, "atan", 1, nil, false)
	regGen(BAtan2, "atan", 2, nil, false)

	// §8.2 Exponential.
	regGen(BPow, "pow", 2, nil, false)
	regGen(BExp, "exp", 1, nil, false)
	regGen(BLog, "log", 1, nil, false)
	regGen(BExp2, "exp2", 1, nil, false)
	regGen(BLog2, "log2", 1, nil, false)
	regGen(BSqrt, "sqrt", 1, nil, false)
	regGen(BInverseSqrt, "inversesqrt", 1, nil, false)

	// §8.3 Common.
	regGen(BAbs, "abs", 1, nil, false)
	regGen(BSign, "sign", 1, nil, false)
	regGen(BFloor, "floor", 1, nil, false)
	regGen(BCeil, "ceil", 1, nil, false)
	regGen(BFract, "fract", 1, nil, false)
	regGen(BMod, "mod", 2, nil, false)
	regGen(BMod, "mod", 2, map[int]bool{1: true}, false)
	regGen(BMin, "min", 2, nil, false)
	regGen(BMin, "min", 2, map[int]bool{1: true}, false)
	regGen(BMax, "max", 2, nil, false)
	regGen(BMax, "max", 2, map[int]bool{1: true}, false)
	regGen(BClamp, "clamp", 3, nil, false)
	regGen(BClamp, "clamp", 3, map[int]bool{1: true, 2: true}, false)
	regGen(BMix, "mix", 3, nil, false)
	regGen(BMix, "mix", 3, map[int]bool{2: true}, false)
	regGen(BStep, "step", 2, nil, false)
	for _, g := range vecTypes { // step(float, vec)
		reg(&BuiltinSig{ID: BStep, Name: "step", Ret: g, Params: []*Type{TypeFloat, g}})
	}
	regGen(BSmoothstep, "smoothstep", 3, nil, false)
	for _, g := range vecTypes { // smoothstep(float, float, vec)
		reg(&BuiltinSig{ID: BSmoothstep, Name: "smoothstep", Ret: g, Params: []*Type{TypeFloat, TypeFloat, g}})
	}

	// §8.4 Geometric.
	regGen(BLength, "length", 1, nil, true)
	regGen(BDistance, "distance", 2, nil, true)
	regGen(BDot, "dot", 2, nil, true)
	reg(&BuiltinSig{ID: BCross, Name: "cross", Ret: TypeVec3, Params: []*Type{TypeVec3, TypeVec3}})
	regGen(BNormalize, "normalize", 1, nil, false)
	regGen(BFaceforward, "faceforward", 3, nil, false)
	regGen(BReflect, "reflect", 2, nil, false)
	regGen(BRefract, "refract", 3, map[int]bool{2: true}, false)

	// §8.5 Matrix.
	for _, m := range matTypes {
		reg(&BuiltinSig{ID: BMatrixCompMult, Name: "matrixCompMult", Ret: m, Params: []*Type{m, m}})
	}

	// §8.6 Vector relational.
	cmpIDs := []struct {
		id   BuiltinID
		name string
	}{
		{BLessThan, "lessThan"},
		{BLessThanEqual, "lessThanEqual"},
		{BGreaterThan, "greaterThan"},
		{BGreaterThanEqual, "greaterThanEqual"},
	}
	for _, c := range cmpIDs {
		for i, v := range vecTypes {
			reg(&BuiltinSig{ID: c.id, Name: c.name, Ret: bvecTypes[i], Params: []*Type{v, v}})
		}
		for i, v := range ivecTypes {
			reg(&BuiltinSig{ID: c.id, Name: c.name, Ret: bvecTypes[i], Params: []*Type{v, v}})
		}
	}
	for _, c := range []struct {
		id   BuiltinID
		name string
	}{{BEqual, "equal"}, {BNotEqual, "notEqual"}} {
		for i, v := range vecTypes {
			reg(&BuiltinSig{ID: c.id, Name: c.name, Ret: bvecTypes[i], Params: []*Type{v, v}})
		}
		for i, v := range ivecTypes {
			reg(&BuiltinSig{ID: c.id, Name: c.name, Ret: bvecTypes[i], Params: []*Type{v, v}})
		}
		for i, v := range bvecTypes {
			reg(&BuiltinSig{ID: c.id, Name: c.name, Ret: bvecTypes[i], Params: []*Type{v, v}})
		}
	}
	for _, b := range bvecTypes {
		reg(&BuiltinSig{ID: BAny, Name: "any", Ret: TypeBool, Params: []*Type{b}})
		reg(&BuiltinSig{ID: BAll, Name: "all", Ret: TypeBool, Params: []*Type{b}})
		reg(&BuiltinSig{ID: BNot, Name: "not", Ret: b, Params: []*Type{b}})
	}

	// §8.7 Texture lookup.
	reg(&BuiltinSig{ID: BTexture2D, Name: "texture2D", Ret: TypeVec4, Params: []*Type{TypeSampler2D, TypeVec2}})
	reg(&BuiltinSig{ID: BTexture2DBias, Name: "texture2D", Ret: TypeVec4, Params: []*Type{TypeSampler2D, TypeVec2, TypeFloat}, FragmentOnly: true})
	reg(&BuiltinSig{ID: BTexture2DProj3, Name: "texture2DProj", Ret: TypeVec4, Params: []*Type{TypeSampler2D, TypeVec3}})
	reg(&BuiltinSig{ID: BTexture2DProj4, Name: "texture2DProj", Ret: TypeVec4, Params: []*Type{TypeSampler2D, TypeVec4}})
	reg(&BuiltinSig{ID: BTexture2DLod, Name: "texture2DLod", Ret: TypeVec4, Params: []*Type{TypeSampler2D, TypeVec2, TypeFloat}, VertexOnly: true})
	reg(&BuiltinSig{ID: BTexture2DProjLod3, Name: "texture2DProjLod", Ret: TypeVec4, Params: []*Type{TypeSampler2D, TypeVec3, TypeFloat}, VertexOnly: true})
	reg(&BuiltinSig{ID: BTexture2DProjLod4, Name: "texture2DProjLod", Ret: TypeVec4, Params: []*Type{TypeSampler2D, TypeVec4, TypeFloat}, VertexOnly: true})
	reg(&BuiltinSig{ID: BTextureCube, Name: "textureCube", Ret: TypeVec4, Params: []*Type{TypeSamplerCube, TypeVec3}})
	reg(&BuiltinSig{ID: BTextureCubeBias, Name: "textureCube", Ret: TypeVec4, Params: []*Type{TypeSamplerCube, TypeVec3, TypeFloat}, FragmentOnly: true})
	reg(&BuiltinSig{ID: BTextureCubeLod, Name: "textureCubeLod", Ret: TypeVec4, Params: []*Type{TypeSamplerCube, TypeVec3, TypeFloat}, VertexOnly: true})
}

// LookupBuiltin resolves a builtin call by name and argument types for the
// given stage. It returns nil when no overload matches.
func LookupBuiltin(stage ShaderStage, name string, args []*Type) *BuiltinSig {
	for _, sig := range builtinFuncs[name] {
		if sig.VertexOnly && stage != StageVertex {
			continue
		}
		if sig.FragmentOnly && stage != StageFragment {
			continue
		}
		if len(sig.Params) != len(args) {
			continue
		}
		ok := true
		for i, pt := range sig.Params {
			if !pt.Equal(args[i]) {
				ok = false
				break
			}
		}
		if ok {
			return sig
		}
	}
	return nil
}

// IsBuiltinFunction reports whether name names any builtin overload.
func IsBuiltinFunction(name string) bool {
	_, ok := builtinFuncs[name]
	return ok
}
