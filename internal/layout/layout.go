// Package layout implements the 1D↔2D index transformations of the paper's
// challenges #3 and #4: OpenGL ES 2.0 has no 1D textures and only
// normalized texture coordinates, so linear arrays must be laid out in 2D
// textures and addressed through the [0,1]² coordinate space. The package
// provides both the host-side maps and generators for the equivalent
// GLSL ES code.
package layout

import (
	"fmt"
	"strings"
)

// Grid is the 2D layout of an n-element linear array in a W×H texture,
// row-major, element 0 at texel (0,0). With a packed format one texel
// carries Lanes consecutive elements: element i lives in texel i/Lanes,
// lane component i%Lanes. Lanes 0 means 1 (scalar layout), so existing
// Grid literals keep their meaning.
type Grid struct {
	Width  int
	Height int
	N      int
	Lanes  int
}

// LaneCount returns the lane width, treating the zero value as scalar.
func (g Grid) LaneCount() int {
	if g.Lanes <= 1 {
		return 1
	}
	return g.Lanes
}

// TexelFor maps a linear element index to its (texel, lane) pair.
func (g Grid) TexelFor(i int) (texel, lane int) {
	l := g.LaneCount()
	return i / l, i % l
}

// ForLength chooses a texture shape for n elements. Widths are powers of
// two (≤ maxWidth) so row arithmetic in fp32 shaders stays exact; the last
// row may be partially used.
func ForLength(n, maxWidth int) (Grid, error) {
	if n <= 0 {
		return Grid{}, fmt.Errorf("layout: array length must be positive, got %d", n)
	}
	if maxWidth <= 0 {
		return Grid{}, fmt.Errorf("layout: maxWidth must be positive, got %d", maxWidth)
	}
	w := 1
	for w < n && w < maxWidth {
		w <<= 1
	}
	if w > maxWidth {
		w = maxWidth
	}
	h := (n + w - 1) / w
	return Grid{Width: w, Height: h, N: n}, nil
}

// ForLengthLanes chooses a texture shape for n elements stored `lanes` per
// texel: the texture covers ceil(n/lanes) texels and the last texel may
// carry tail lanes past n. lanes ≤ 1 degenerates to ForLength.
func ForLengthLanes(n, lanes, maxWidth int) (Grid, error) {
	if lanes <= 1 {
		return ForLength(n, maxWidth)
	}
	if n <= 0 {
		return Grid{}, fmt.Errorf("layout: array length must be positive, got %d", n)
	}
	texels := (n + lanes - 1) / lanes
	g, err := ForLength(texels, maxWidth)
	if err != nil {
		return Grid{}, err
	}
	g.N = n
	g.Lanes = lanes
	return g, nil
}

// Square returns the layout for an n×n row-major matrix: one texel per
// element, width n (exact, not padded), which keeps (row,col) addressing
// trivial for sgemm-style kernels.
func Square(n int) (Grid, error) {
	if n <= 0 {
		return Grid{}, fmt.Errorf("layout: matrix dimension must be positive, got %d", n)
	}
	return Grid{Width: n, Height: n, N: n * n}, nil
}

// PackRows lays out several linear arrays in one shared texture, each
// array starting on a fresh texel row — the layout the scheduler's request
// batching uses to coalesce many small kernel launches into a single
// fragment pass. The width is the power-of-two ForLength would pick for
// the largest array (so in-shader row arithmetic stays exact for every
// member), and each array occupies ceil(n/W) whole rows; the tail of a
// member's last row is padding. It returns the packed grid and the linear
// element offset of each array (always a multiple of W, so members can be
// written and read as whole-row sub-ranges).
func PackRows(ns []int, maxWidth, maxHeight int) (Grid, []int, error) {
	if len(ns) == 0 {
		return Grid{}, nil, fmt.Errorf("layout: PackRows: no arrays")
	}
	maxN := 0
	for _, n := range ns {
		if n <= 0 {
			return Grid{}, nil, fmt.Errorf("layout: PackRows: array length must be positive, got %d", n)
		}
		if n > maxN {
			maxN = n
		}
	}
	base, err := ForLength(maxN, maxWidth)
	if err != nil {
		return Grid{}, nil, err
	}
	w := base.Width
	offs := make([]int, len(ns))
	row := 0
	for i, n := range ns {
		offs[i] = row * w
		row += (n + w - 1) / w
	}
	if maxHeight > 0 && row > maxHeight {
		return Grid{}, nil, fmt.Errorf("layout: PackRows: %d arrays need %d rows of width %d, max height is %d",
			len(ns), row, w, maxHeight)
	}
	return Grid{Width: w, Height: row, N: offs[len(offs)-1] + ns[len(ns)-1]}, offs, nil
}

// Texels returns the total number of texels in the texture.
func (g Grid) Texels() int { return g.Width * g.Height }

// Coord maps a linear index to texel coordinates.
func (g Grid) Coord(i int) (x, y int) {
	return i % g.Width, i / g.Width
}

// Index maps texel coordinates back to the linear index.
func (g Grid) Index(x, y int) int {
	return y*g.Width + x
}

// TexCoord returns the normalized sampling coordinates of element i: the
// *center* of its texel, the half-texel offset that makes normalized
// addressing exact under NEAREST filtering (challenge #4).
func (g Grid) TexCoord(i int) (s, t float32) {
	x, y := g.Coord(i)
	return (float32(x) + 0.5) / float32(g.Width),
		(float32(y) + 0.5) / float32(g.Height)
}

// GLSLHelpers emits the in-shader counterparts of this grid's maps, with a
// name prefix to keep multiple grids in one shader:
//
//	vec2  <p>_coord(float idx)  — linear index → normalized texcoord
//	float <p>_index()           — current fragment → linear output index
//	vec2  <p>_coord2(float x, float y) — 2D element address → texcoord
//
// The "+0.5" inside the floor guards the row computation against fp32
// division rounding (idx and width are exact integers in fp32 up to 2^24,
// but idx/width is correctly-rounded and can graze the next integer).
func (g Grid) GLSLHelpers(prefix string) string {
	var b strings.Builder
	w := float64(g.Width)
	h := float64(g.Height)
	fmt.Fprintf(&b, "const float %s_W = %.1f;\n", prefix, w)
	fmt.Fprintf(&b, "const float %s_H = %.1f;\n", prefix, h)
	fmt.Fprintf(&b, "vec2 %s_coord(float idx) {\n", prefix)
	fmt.Fprintf(&b, "\tfloat row = floor((idx + 0.5) / %s_W);\n", prefix)
	fmt.Fprintf(&b, "\tfloat col = idx - row * %s_W;\n", prefix)
	fmt.Fprintf(&b, "\treturn vec2((col + 0.5) / %s_W, (row + 0.5) / %s_H);\n", prefix, prefix)
	b.WriteString("}\n")
	fmt.Fprintf(&b, "vec2 %s_coord2(float col, float row) {\n", prefix)
	fmt.Fprintf(&b, "\treturn vec2((col + 0.5) / %s_W, (row + 0.5) / %s_H);\n", prefix, prefix)
	b.WriteString("}\n")
	fmt.Fprintf(&b, "float %s_index() {\n", prefix)
	fmt.Fprintf(&b, "\treturn floor(gl_FragCoord.y) * %s_W + floor(gl_FragCoord.x);\n", prefix)
	b.WriteString("}\n")
	if g.LaneCount() > 1 {
		b.WriteString(g.GLSLLaneHelpers(prefix))
	}
	return b.String()
}

// GLSLLaneHelpers emits the logical-index → (texel, lane) maps of a packed
// grid — the in-shader counterpart of TexelFor:
//
//	float <p>_texel(float idx) — logical index → texel index
//	float <p>_lane(float idx)  — logical index → lane component (0..LANES-1)
//
// GLSL ES 1.00 cannot index a vector dynamically, so consumers select the
// lane with comparison chains (see the generated gc_lane_* selectors in
// internal/core codegen).
func (g Grid) GLSLLaneHelpers(prefix string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "const float %s_LANES = %.1f;\n", prefix, float64(g.LaneCount()))
	fmt.Fprintf(&b, "float %s_texel(float idx) {\n", prefix)
	fmt.Fprintf(&b, "\treturn floor((idx + 0.5) / %s_LANES);\n", prefix)
	b.WriteString("}\n")
	fmt.Fprintf(&b, "float %s_lane(float idx) {\n", prefix)
	fmt.Fprintf(&b, "\treturn idx - %s_texel(idx) * %s_LANES;\n", prefix, prefix)
	b.WriteString("}\n")
	return b.String()
}
