package layout

import (
	"strings"
	"testing"
	"testing/quick"

	"glescompute/internal/glsl"
	"glescompute/internal/shader"
)

func TestForLengthShapes(t *testing.T) {
	cases := []struct {
		n, maxW int
		w, h    int
	}{
		{1, 2048, 1, 1},
		{2, 2048, 2, 1},
		{3, 2048, 4, 1},
		{1024, 2048, 1024, 1},
		{1 << 20, 2048, 2048, 512},
		{5000, 64, 64, 79},
	}
	for _, c := range cases {
		g, err := ForLength(c.n, c.maxW)
		if err != nil {
			t.Fatalf("ForLength(%d,%d): %v", c.n, c.maxW, err)
		}
		if g.Width != c.w || g.Height != c.h {
			t.Errorf("ForLength(%d,%d) = %dx%d, want %dx%d", c.n, c.maxW, g.Width, g.Height, c.w, c.h)
		}
		if g.Texels() < c.n {
			t.Errorf("ForLength(%d,%d): %d texels < %d elements", c.n, c.maxW, g.Texels(), c.n)
		}
	}
	if _, err := ForLength(0, 64); err == nil {
		t.Error("n=0 must error")
	}
	if _, err := ForLength(5, 0); err == nil {
		t.Error("maxW=0 must error")
	}
}

func TestCoordIndexBijection(t *testing.T) {
	f := func(nRaw uint16, iRaw uint32) bool {
		n := int(nRaw)%10000 + 1
		g, err := ForLength(n, 256)
		if err != nil {
			return false
		}
		i := int(iRaw) % n
		x, y := g.Coord(i)
		if x < 0 || x >= g.Width || y < 0 || y >= g.Height {
			return false
		}
		return g.Index(x, y) == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTexCoordCenters(t *testing.T) {
	g, _ := ForLength(8, 4) // 4x2
	s, tt := g.TexCoord(0)
	if s != 0.125 || tt != 0.25 {
		t.Errorf("element 0 at (%g,%g), want (0.125,0.25)", s, tt)
	}
	s, tt = g.TexCoord(5) // (1,1)
	if s != 0.375 || tt != 0.75 {
		t.Errorf("element 5 at (%g,%g), want (0.375,0.75)", s, tt)
	}
}

func TestSquare(t *testing.T) {
	g, err := Square(32)
	if err != nil {
		t.Fatal(err)
	}
	if g.Width != 32 || g.Height != 32 || g.N != 1024 {
		t.Errorf("Square(32) = %+v", g)
	}
	if _, err := Square(0); err == nil {
		t.Error("Square(0) must error")
	}
}

// TestGLSLHelpersMatchHost executes the generated GLSL index math in the
// shader executor and compares against the host-side Grid maps — the
// property that makes challenge #3/#4 addressing exact.
func TestGLSLHelpersMatchHost(t *testing.T) {
	for _, n := range []int{1, 7, 64, 1000, 4096} {
		g, err := ForLength(n, 128)
		if err != nil {
			t.Fatal(err)
		}
		src := "precision highp float;\nuniform float u_idx;\n" +
			g.GLSLHelpers("gc") +
			`void main() {
	vec2 c = gc_coord(u_idx);
	gl_FragColor = vec4(c, 0.0, 1.0);
}`
		prog, errs := glsl.CompileSource(src, glsl.StageFragment, glsl.CheckOptions{})
		if errs.Err() != nil {
			t.Fatalf("n=%d: compile failed:\n%v", n, errs)
		}
		ex := shader.NewExec(prog, nil, shader.ExactSFU)
		u := prog.LookupUniform("u_idx")
		step := n/97 + 1
		for i := 0; i < n; i += step {
			ex.SetGlobal(u, shader.FloatVal(float32(i)))
			if err := ex.InitGlobals(); err != nil {
				t.Fatal(err)
			}
			if _, err := ex.Run(); err != nil {
				t.Fatal(err)
			}
			out := ex.Builtins[glsl.BVSlotFragColor].Vec4()
			wantS, wantT := g.TexCoord(i)
			if out[0] != wantS || out[1] != wantT {
				t.Fatalf("n=%d i=%d: GLSL (%g,%g), host (%g,%g)", n, i, out[0], out[1], wantS, wantT)
			}
		}
	}
}

// TestGLSLIndexFromFragCoord verifies the output-index helper against all
// pixel centers of a small grid.
func TestGLSLIndexFromFragCoord(t *testing.T) {
	g, _ := ForLength(24, 8) // 8x3
	src := "precision highp float;\n" + g.GLSLHelpers("gc") +
		`void main() { gl_FragColor = vec4(gc_index(), 0.0, 0.0, 1.0); }`
	prog, errs := glsl.CompileSource(src, glsl.StageFragment, glsl.CheckOptions{})
	if errs.Err() != nil {
		t.Fatalf("compile failed:\n%v", errs)
	}
	ex := shader.NewExec(prog, nil, shader.ExactSFU)
	if err := ex.InitGlobals(); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < g.Height; y++ {
		for x := 0; x < g.Width; x++ {
			ex.Builtins[glsl.BVSlotFragCoord] = shader.Vec4Val(
				float32(x)+0.5, float32(y)+0.5, 0, 1)
			if _, err := ex.Run(); err != nil {
				t.Fatal(err)
			}
			got := int(ex.Builtins[glsl.BVSlotFragColor].F[0])
			if got != g.Index(x, y) {
				t.Fatalf("pixel (%d,%d): index %d, want %d", x, y, got, g.Index(x, y))
			}
		}
	}
}

func TestGLSLHelpersPrefixed(t *testing.T) {
	g, _ := ForLength(16, 4)
	a := g.GLSLHelpers("in0")
	b := g.GLSLHelpers("in1")
	if !strings.Contains(a, "in0_coord") || !strings.Contains(b, "in1_coord") {
		t.Error("prefix not applied")
	}
	// Both must coexist in one shader.
	src := "precision highp float;\n" + a + b +
		"void main() { gl_FragColor = vec4(in0_coord(0.0), in1_coord(1.0)); }"
	_, errs := glsl.CompileSource(src, glsl.StageFragment, glsl.CheckOptions{})
	if errs.Err() != nil {
		t.Fatalf("prefixed helpers conflict:\n%v", errs)
	}
}

func TestPackRows(t *testing.T) {
	// Mixed lengths: width follows the largest member, every member
	// starts on a fresh row, offsets are row-aligned and non-overlapping.
	ns := []int{5, 130, 1, 64, 33}
	g, offs, err := PackRows(ns, 2048, 2048)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ForLength(130, 2048)
	if g.Width != want.Width {
		t.Fatalf("packed width %d, want the largest member's ForLength width %d", g.Width, want.Width)
	}
	rows := 0
	for i, n := range ns {
		if offs[i] != rows*g.Width {
			t.Fatalf("member %d offset %d, want row-aligned %d", i, offs[i], rows*g.Width)
		}
		if offs[i]%g.Width != 0 {
			t.Fatalf("member %d offset %d not a multiple of width %d", i, offs[i], g.Width)
		}
		rows += (n + g.Width - 1) / g.Width
	}
	if g.Height != rows {
		t.Fatalf("packed height %d, want %d", g.Height, rows)
	}
	if g.N != offs[len(offs)-1]+ns[len(ns)-1] {
		t.Fatalf("packed N %d, want last offset + last length = %d", g.N, offs[len(offs)-1]+ns[len(ns)-1])
	}
	if g.N > g.Texels() {
		t.Fatalf("N %d exceeds texel count %d", g.N, g.Texels())
	}

	// Errors: empty set, non-positive member, height overflow.
	if _, _, err := PackRows(nil, 64, 64); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, _, err := PackRows([]int{4, 0}, 64, 64); err == nil {
		t.Fatal("non-positive member length accepted")
	}
	if _, _, err := PackRows([]int{64, 64, 64}, 64, 2); err == nil {
		t.Fatal("overflowing max height accepted")
	}
}

// TestPackRowsSingleRowMembers pins the degenerate layouts: one member,
// members that exactly fill a row, and members of one element each.
func TestPackRowsSingleRowMembers(t *testing.T) {
	// Lone member: identical to its own ForLength layout.
	g, offs, err := PackRows([]int{12}, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ForLength(12, 64)
	if g.Width != want.Width || g.Height != 1 || offs[0] != 0 || g.N != 12 {
		t.Fatalf("single member packed as %+v offs %v, want width %d height 1", g, offs, want.Width)
	}

	// Members exactly one row wide: no padding rows at all.
	g, offs, err = PackRows([]int{8, 8, 8}, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if g.Width != 8 || g.Height != 3 || g.N != g.Texels() {
		t.Fatalf("exact-row members packed as %+v (offs %v), want 8x3 fully used", g, offs)
	}

	// One-element members: each still gets a private row (the batching
	// invariant: member offsets are row-aligned so sub-range transfers
	// never touch a neighbour).
	g, offs, err = PackRows([]int{1, 1, 1, 1}, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if g.Width != 1 || g.Height != 4 {
		t.Fatalf("one-element members packed as %+v, want 1x4", g)
	}
	for i, off := range offs {
		if off != i {
			t.Fatalf("offset %d = %d, want %d", i, off, i)
		}
	}
}

// TestPackRowsMaxWidthOverflow pins the clamp when the largest member
// exceeds the device's texture-width bound: the width clamps to maxWidth
// and the member wraps onto multiple rows, unless the row budget runs out.
func TestPackRowsMaxWidthOverflow(t *testing.T) {
	g, offs, err := PackRows([]int{100, 3}, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if g.Width != 16 {
		t.Fatalf("width %d, want clamp to maxWidth 16", g.Width)
	}
	if rows := (100 + 15) / 16; offs[1] != rows*16 {
		t.Fatalf("second member offset %d, want %d (after %d wrapped rows)", offs[1], rows*16, rows)
	}
	// Same members, but a height budget the wrap cannot fit.
	if _, _, err := PackRows([]int{100, 3}, 16, 6); err == nil {
		t.Fatal("PackRows accepted members needing 8 rows with max height 6")
	}
	// A member so large no texture holds it.
	if _, _, err := PackRows([]int{1 << 20}, 64, 64); err == nil {
		t.Fatal("PackRows accepted a member beyond maxWidth x maxHeight")
	}
}

func TestForLengthLanes(t *testing.T) {
	// 10 elements at 4 lanes/texel need ceil(10/4)=3 texels.
	g, err := ForLengthLanes(10, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 10 || g.LaneCount() != 4 {
		t.Fatalf("got %+v", g)
	}
	if g.Texels() < 3 {
		t.Fatalf("texels %d < 3", g.Texels())
	}
	if tex, lane := g.TexelFor(9); tex != 2 || lane != 1 {
		t.Fatalf("TexelFor(9) = (%d,%d), want (2,1)", tex, lane)
	}
	// Tail residues: texel count is always ceil(n/lanes).
	for n := 1; n <= 17; n++ {
		g, err := ForLengthLanes(n, 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		want := (n + 3) / 4
		if g.Texels() < want || g.Width*g.Height != g.Texels() {
			t.Fatalf("n=%d texels %d < %d", n, g.Texels(), want)
		}
	}
	// lanes=1 must behave exactly like ForLength (zero-value Lanes).
	a, _ := ForLengthLanes(100, 1, 64)
	b, _ := ForLength(100, 64)
	if a != b {
		t.Fatalf("lanes=1 mismatch: %+v vs %+v", a, b)
	}
}

func TestGLSLLaneHelpers(t *testing.T) {
	g, err := ForLengthLanes(64, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	src := g.GLSLHelpers("p")
	for _, want := range []string{"const float p_LANES = 4.0;", "float p_texel(float idx)", "float p_lane(float idx)"} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in:\n%s", want, src)
		}
	}
	// Scalar grids must not grow lane helpers (pinned shader sources).
	s, _ := ForLength(64, 16)
	if strings.Contains(s.GLSLHelpers("p"), "p_LANES") {
		t.Error("scalar grid emitted lane helpers")
	}
}
