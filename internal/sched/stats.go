package sched

import (
	"fmt"
	"strings"
	"time"

	"glescompute/internal/core"
)

// DeviceHealth is a pooled device slot's position in the health state
// machine: Healthy → (fault) → Quarantined → reopened Healthy, or Dead
// once the replacement budget (Config.MaxReopens) is spent or a
// replacement fails to open.
type DeviceHealth int

// Health states.
const (
	DeviceHealthy DeviceHealth = iota
	DeviceQuarantined
	DeviceDead
)

// String names the health state.
func (h DeviceHealth) String() string {
	switch h {
	case DeviceHealthy:
		return "healthy"
	case DeviceQuarantined:
		return "quarantined"
	case DeviceDead:
		return "dead"
	}
	return "unknown"
}

// DeviceStats is the per-device share of the service's work.
type DeviceStats struct {
	// Device is the pool index.
	Device int
	// Jobs and Launches count completed work; Launches < Jobs when
	// batching coalesced requests. Batches counts multi-job launches and
	// BatchedJobs the jobs they carried.
	Jobs, Launches       uint64
	Batches, BatchedJobs uint64
	// Busy is the accumulated modeled vc4 timeline of this device's
	// launches; BusyWall is the host wall-clock spent executing them.
	Busy     core.Timeline
	BusyWall time.Duration
	// Health is the slot's current health state. Faults counts the times
	// the slot's device died under it (context loss, corruption, panic);
	// Reopens counts successful replacements. Faults with no matching
	// Reopen means the slot went Dead.
	Health  DeviceHealth
	Faults  uint64
	Reopens uint64
}

// QueueStats is a service-level snapshot: totals plus the per-device vc4
// timelines aggregated into pool-wide throughput figures.
type QueueStats struct {
	Submitted, Completed, Failed, Cancelled uint64

	// Launch aggregates across the pool.
	Launches, Batches, BatchedJobs uint64

	// Fault-tolerance aggregates. Retries counts executions re-queued
	// after retryable failures; Panics counts jobs that panicked on a
	// device goroutine (recovered, completed as device-lost failures);
	// Faults and Reopens aggregate the per-device health counters.
	Retries, Panics uint64
	Faults, Reopens uint64
	// HealthyDevices and DeadDevices split the pool by current health
	// (quarantined devices — mid-replacement — count in neither).
	HealthyDevices, DeadDevices int

	// Admission-control tallies (zero unless Config.Admission is set):
	// jobs rejected at Submit because their estimated modeled queue delay
	// exceeded the class budget, total and per class.
	Shed                                   uint64
	ShedBatch, ShedNormal, ShedInteractive uint64

	// CompileCache reports the pool's shared compile cache (hits are
	// program-binary restores that skipped a GLSL→bytecode compile).
	// All-zero when the pool has no shared cache.
	CompileCache core.CompileCacheStats

	// Latency quantiles, estimated from the queue's always-on fixed-bucket
	// histograms (see internal/obs). QueueWaitP* cover Submit → launch
	// start for jobs that reached a device; LatencyP* cover Submit →
	// completion for successful jobs, so failures and cancellations cannot
	// skew the service numbers.
	QueueWaitP50, QueueWaitP95, QueueWaitP99 time.Duration
	LatencyP50, LatencyP95, LatencyP99       time.Duration

	// MaxPendingSeen is the high-water mark of the submission-queue depth —
	// how far behind the pool fell before backpressure caught up.
	MaxPendingSeen int

	// Elapsed is the host wall-clock since the queue opened.
	Elapsed time.Duration

	Devices []DeviceStats
}

// Degraded reports whether the pool has permanently lost capacity.
func (s QueueStats) Degraded() bool { return s.DeadDevices > 0 }

// Stats returns a point-in-time snapshot of the queue's counters.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := QueueStats{
		Submitted:       q.counts.submitted,
		Completed:       q.counts.completed,
		Failed:          q.counts.failed,
		Cancelled:       q.counts.canceled,
		Retries:         q.counts.retries,
		Panics:          q.counts.panics,
		QueueWaitP50:    q.waitHist.QuantileDuration(0.50),
		QueueWaitP95:    q.waitHist.QuantileDuration(0.95),
		QueueWaitP99:    q.waitHist.QuantileDuration(0.99),
		LatencyP50:      q.e2eHist.QuantileDuration(0.50),
		LatencyP95:      q.e2eHist.QuantileDuration(0.95),
		LatencyP99:      q.e2eHist.QuantileDuration(0.99),
		MaxPendingSeen:  int(q.pendingHW.Load()),
		Elapsed:         time.Since(q.opened),
		ShedBatch:       q.counts.shed[0],
		ShedNormal:      q.counts.shed[1],
		ShedInteractive: q.counts.shed[2],
	}
	s.Shed = s.ShedBatch + s.ShedNormal + s.ShedInteractive
	if cc := q.deviceCfg.CompileCache; cc != nil {
		s.CompileCache = cc.Stats()
	}
	for _, w := range q.workers {
		d := w.st
		d.Device = w.id
		s.Devices = append(s.Devices, d)
		s.Launches += d.Launches
		s.Batches += d.Batches
		s.BatchedJobs += d.BatchedJobs
		s.Faults += d.Faults
		s.Reopens += d.Reopens
		switch d.Health {
		case DeviceHealthy:
			s.HealthyDevices++
		case DeviceDead:
			s.DeadDevices++
		}
	}
	return s
}

// Occupancy is the mean number of jobs per GPU launch — 1.0 means no
// coalescing happened, higher proves batching amortized launch overhead.
func (s QueueStats) Occupancy() float64 {
	if s.Launches == 0 {
		return 0
	}
	jobs := uint64(0)
	for _, d := range s.Devices {
		jobs += d.Jobs
	}
	return float64(jobs) / float64(s.Launches)
}

// ModeledMakespan is the modeled wall-clock the pool needed for its work:
// devices run concurrently, so the service finishes when its busiest
// device does.
func (s QueueStats) ModeledMakespan() time.Duration {
	var max time.Duration
	for _, d := range s.Devices {
		if t := d.Busy.Total(); t > max {
			max = t
		}
	}
	return max
}

// ModeledBusy is the summed modeled timeline across the pool (total
// device-time consumed, the cost side of the throughput story).
func (s QueueStats) ModeledBusy() core.Timeline {
	var t core.Timeline
	for _, d := range s.Devices {
		t = t.Add(d.Busy)
	}
	return t
}

// Utilization is a device's busy wall-clock as a fraction of the queue's
// elapsed wall-clock.
func (s QueueStats) Utilization(device int) float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	for _, d := range s.Devices {
		if d.Device == device {
			return float64(d.BusyWall) / float64(s.Elapsed)
		}
	}
	return 0
}

// Report renders the snapshot as a human-readable service summary.
func (s QueueStats) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "queue: %d submitted, %d completed, %d failed, %d cancelled in %v\n",
		s.Submitted, s.Completed, s.Failed, s.Cancelled, s.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "launches: %d (%d batches carrying %d jobs, occupancy %.2f jobs/launch)\n",
		s.Launches, s.Batches, s.BatchedJobs, s.Occupancy())
	if s.Completed > 0 {
		fmt.Fprintf(&b, "latency: e2e p50 %v / p95 %v / p99 %v, queue-wait p50 %v / p99 %v (max pending seen %d)\n",
			s.LatencyP50.Round(time.Microsecond), s.LatencyP95.Round(time.Microsecond),
			s.LatencyP99.Round(time.Microsecond), s.QueueWaitP50.Round(time.Microsecond),
			s.QueueWaitP99.Round(time.Microsecond), s.MaxPendingSeen)
	}
	if s.Shed > 0 {
		fmt.Fprintf(&b, "admission: %d shed (%d batch, %d normal, %d interactive)\n",
			s.Shed, s.ShedBatch, s.ShedNormal, s.ShedInteractive)
	}
	if s.Faults > 0 || s.Retries > 0 || s.Panics > 0 || s.DeadDevices > 0 {
		fmt.Fprintf(&b, "faults: %d device faults, %d reopens, %d retries, %d panics; %d/%d devices healthy (%d dead)\n",
			s.Faults, s.Reopens, s.Retries, s.Panics, s.HealthyDevices, len(s.Devices), s.DeadDevices)
	}
	fmt.Fprintf(&b, "modeled makespan across pool: %v (total device-time %v)\n",
		s.ModeledMakespan().Round(time.Microsecond), s.ModeledBusy().Total().Round(time.Microsecond))
	for _, d := range s.Devices {
		fmt.Fprintf(&b, "  device %d: %5d jobs in %5d launches, modeled busy %10v, wall busy %10v (%.0f%% util)",
			d.Device, d.Jobs, d.Launches, d.Busy.Total().Round(time.Microsecond),
			d.BusyWall.Round(time.Microsecond), 100*s.Utilization(d.Device))
		if d.Faults > 0 || d.Health != DeviceHealthy {
			fmt.Fprintf(&b, " [%s, %d faults, %d reopens]", d.Health, d.Faults, d.Reopens)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ResetStats zeroes the queue's counters, launch tallies and per-device
// timelines, and restarts the Elapsed clock. Services use it to exclude a
// warm-up window — first-launch kernel compiles, one-time weight uploads —
// from steady-state throughput measurement. Jobs in flight keep running;
// their completions are counted against the fresh window.
func (q *Queue) ResetStats() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.counts.submitted, q.counts.completed, q.counts.failed, q.counts.canceled = 0, 0, 0, 0
	q.counts.retries, q.counts.panics = 0, 0
	q.counts.shed = [3]uint64{}
	for _, w := range q.workers {
		w.st = DeviceStats{Health: w.st.Health}
	}
	q.waitHist.Reset()
	q.e2eHist.Reset()
	q.pendingHW.Store(0)
	q.opened = time.Now()
}
