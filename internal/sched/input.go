package sched

// Typed job inputs. JobSpec historically carried inputs as a bare
// []interface{} — every mistake (wrong slice type, wrong count, a stray
// scalar) surfaced only at Submit as a runtime error. Input moves the
// element type into the constructor call, so misuse reads wrong at the
// call site and the zero value is detectably invalid. The []interface{}
// route keeps working as a deprecated shim; both routes normalize into the
// same job, bit for bit (TestTypedInputsMatchLegacy).

import (
	"fmt"

	"glescompute/internal/codec"
	"glescompute/internal/core"
)

// Input is one typed host input to a job, built with Float32s, Int32s,
// Uint32s, Int8s, Bytes or FromBuffer. The zero value is invalid and is
// rejected at Submit.
type Input struct {
	data interface{}
}

// Float32s wraps a []float32 input.
func Float32s(v []float32) Input { return Input{data: v} }

// Int32s wraps a []int32 input.
func Int32s(v []int32) Input { return Input{data: v} }

// Uint32s wraps a []uint32 input.
func Uint32s(v []uint32) Input { return Input{data: v} }

// Int8s wraps an []int8 input.
func Int8s(v []int8) Input { return Input{data: v} }

// Bytes wraps a []uint8 input.
func Bytes(v []uint8) Input { return Input{data: v} }

// FromBuffer snapshots a device buffer's current contents as a job input
// of the buffer's element type. The snapshot is taken here, on the
// caller's goroutine — later writes to the buffer do not affect the job.
func FromBuffer(b *core.Buffer) (Input, error) {
	var (
		data interface{}
		err  error
	)
	switch b.Elem() {
	case codec.Float32:
		data, err = b.ReadFloat32()
	case codec.Int32:
		data, err = b.ReadInt32()
	case codec.Uint32:
		data, err = b.ReadUint32()
	case codec.Int8:
		data, err = b.ReadInt8()
	case codec.Uint8:
		data, err = b.ReadUint8()
	default:
		return Input{}, fmt.Errorf("sched: FromBuffer: unsupported element type %s", b.Elem())
	}
	if err != nil {
		return Input{}, fmt.Errorf("sched: FromBuffer: %w", err)
	}
	return Input{data: data}, nil
}

// normalizeInputs folds the typed In route into the legacy Inputs slice,
// which the rest of the scheduler (validation, batching, launch) consumes
// unchanged — so both routes produce identical jobs.
func normalizeInputs(spec *JobSpec) error {
	if len(spec.In) == 0 {
		return nil
	}
	if len(spec.Inputs) > 0 {
		return fmt.Errorf("sched: JobSpec sets both In and Inputs; use one input route")
	}
	ins := make([]interface{}, len(spec.In))
	for i, in := range spec.In {
		if in.data == nil {
			return fmt.Errorf("sched: In[%d] is a zero Input; use Float32s/Int32s/Uint32s/Int8s/Bytes/FromBuffer", i)
		}
		ins[i] = in.data
	}
	spec.Inputs = ins
	spec.In = nil
	return nil
}
