package sched

import (
	"testing"

	"glescompute/internal/codec"
	"glescompute/internal/core"
)

// benchSum is the tiny int32 request the serving benchmarks stream.
var benchSum = core.KernelSpec{
	Name:    "sum",
	Inputs:  []core.Param{{Name: "a", Type: codec.Int32}, {Name: "b", Type: codec.Int32}},
	Outputs: []core.OutputSpec{{Name: "out", Type: codec.Int32}},
	Source:  `float gc_kernel(float idx) { return gc_a(idx) + gc_b(idx); }`,
}

func benchQueue(b *testing.B, batching bool) {
	q, err := OpenQueue(Config{
		Devices: 1, MaxBatch: 32, DisableBatching: !batching,
		Device: core.Config{Workers: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer q.Close()
	x := make([]int32, 16)
	y := make([]int32, 16)
	for i := range x {
		x[i] = int32(i)
		y[i] = int32(i * 3)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Submit(nil, JobSpec{Kernel: benchSum, Inputs: []interface{}{x, y}, Batchable: true}); err != nil {
			b.Fatal(err)
		}
	}
	q.Drain()
}

// BenchmarkQueueTinyJobsSolo prices the per-request cost without
// coalescing; BenchmarkQueueTinyJobsBatched shows what request batching
// recovers (per-launch overhead amortized across up to 32 jobs).
func BenchmarkQueueTinyJobsSolo(b *testing.B)    { benchQueue(b, false) }
func BenchmarkQueueTinyJobsBatched(b *testing.B) { benchQueue(b, true) }
