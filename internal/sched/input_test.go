package sched

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"glescompute/internal/codec"
	"glescompute/internal/core"
	"glescompute/internal/fault"
)

// TestTypedInputsMatchLegacy is the contract input.go's doc comment
// promises: the typed In route and the legacy []interface{} route
// normalize into the same job, bit for bit — same outputs, same stats
// shape — for every element type.
func TestTypedInputsMatchLegacy(t *testing.T) {
	q, err := OpenQueue(Config{Devices: 1, DisableBatching: true})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	rng := rand.New(rand.NewSource(9))

	const n = 257
	af, bf := randFloats(rng, n), randFloats(rng, n)
	ai := make([]int32, n)
	bi := make([]int32, n)
	for i := 0; i < n; i++ {
		ai[i] = int32(rng.Intn(1<<20) - 1<<19)
		bi[i] = int32(rng.Intn(1<<20) - 1<<19)
	}

	runBoth := func(name string, spec core.KernelSpec, legacy []interface{}, typed []Input) {
		t.Helper()
		jl, err := q.Submit(nil, JobSpec{Kernel: spec, Inputs: legacy})
		if err != nil {
			t.Fatalf("%s legacy submit: %v", name, err)
		}
		rl, err := jl.Wait(nil)
		if err != nil {
			t.Fatalf("%s legacy wait: %v", name, err)
		}
		jt, err := q.Submit(nil, JobSpec{Kernel: spec, In: typed})
		if err != nil {
			t.Fatalf("%s typed submit: %v", name, err)
		}
		rt, err := jt.Wait(nil)
		if err != nil {
			t.Fatalf("%s typed wait: %v", name, err)
		}
		wantBitsEqual(t, name, rl.Output, rt.Output)
		if rl.Stats.BatchSize != rt.Stats.BatchSize || rl.Stats.Batched != rt.Stats.Batched {
			t.Errorf("%s: execution shape differs: legacy %+v, typed %+v", name, rl.Stats, rt.Stats)
		}
	}

	runBoth("float32", sumSpec,
		[]interface{}{af, bf}, []Input{Float32s(af), Float32s(bf)})
	runBoth("int32", sumIntSpec,
		[]interface{}{ai, bi}, []Input{Int32s(ai), Int32s(bi)})
}

// TestLegacyInputsShimRetryBatching drives the deprecated []interface{}
// input route through the stack's two orthogonal mechanisms at once —
// request batching (Batchable, coalesced by the continuous-batching
// window) and automatic retry over injected device faults. The shim must
// be invisible to both: every job completes with bit-identical output,
// batches actually form, and retries actually happen.
func TestLegacyInputsShimRetryBatching(t *testing.T) {
	plan := fault.NewPlan(41, fault.Options{
		OpHorizon:          24,
		FaultyIncarnations: 1,
	})
	q := faultQueue(t, plan, Config{Devices: 2, Device: core.Config{Workers: 1},
		MaxBatch: 8, BatchWindow: time.Millisecond})
	defer q.Close()
	const n = 120
	jobs := make([]*Job, n)
	for i := range jobs {
		spec := intJob(i) // legacy Inputs route, Batchable
		spec.Retry = RetryPolicy{Max: 6, Backoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond}
		j, err := q.Submit(nil, spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	var maxAttempts, batched int
	for i, j := range jobs {
		res, err := j.Wait(nil)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		out, _ := res.Int32()
		wantBitsEqual(t, fmt.Sprintf("job %d", i), wantInt(i), out)
		if res.Stats.Attempts > maxAttempts {
			maxAttempts = res.Stats.Attempts
		}
		if res.Stats.Batched {
			batched++
		}
	}
	st := q.Stats()
	if plan.Stats().Total() == 0 {
		t.Fatal("no faults fired — the retry half exercised nothing")
	}
	if st.Batches == 0 || batched == 0 {
		t.Fatalf("no batches formed (%d batches, %d batched jobs) — the batching half exercised nothing", st.Batches, batched)
	}
	if maxAttempts < 2 {
		t.Fatal("no job was retried — the retry half exercised nothing")
	}
	if st.Failed != 0 {
		t.Fatalf("lost %d jobs\n%s", st.Failed, st.Report())
	}
}

// TestTypedInputFromBuffer checks the device-buffer constructor: the
// snapshot is taken at construction, so mutating the buffer afterwards
// must not change the job.
func TestTypedInputFromBuffer(t *testing.T) {
	dev, err := core.Open(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	const n = 32
	buf, err := dev.NewBuffer(codec.Float32, n)
	if err != nil {
		t.Fatal(err)
	}
	first := make([]float32, n)
	for i := range first {
		first[i] = float32(i) * 0.5
	}
	if err := buf.WriteFloat32(first); err != nil {
		t.Fatal(err)
	}
	// The ground truth for the snapshot: what the buffer reads back as
	// right now (the device float codec is involved either way, so the
	// comparison below is job-vs-job, not job-vs-host-math).
	snapshot, err := buf.ReadFloat32()
	if err != nil {
		t.Fatal(err)
	}
	in, err := FromBuffer(buf)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the buffer after the snapshot.
	second := make([]float32, n)
	if err := buf.WriteFloat32(second); err != nil {
		t.Fatal(err)
	}

	q, err := OpenQueue(Config{Devices: 1, DisableBatching: true})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	run := func(in Input) []float32 {
		j, err := q.Submit(nil, JobSpec{Kernel: scaleSpec, In: []Input{in},
			Uniforms: map[string]float32{"u_s": 2}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := j.Wait(nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.Float32()
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	got := run(in)
	want := run(Float32s(snapshot))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output[%d] = %v, want %v (snapshot must predate the overwrite)", i, got[i], want[i])
		}
	}
	if got[2] == 0 {
		t.Fatal("snapshot read the overwritten buffer")
	}
}

// TestTypedInputValidation pins the misuse errors: both routes at once,
// and the zero Input value.
func TestTypedInputValidation(t *testing.T) {
	q, err := OpenQueue(Config{Devices: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	xs := []float32{1, 2, 3}

	_, err = q.Submit(nil, JobSpec{Kernel: scaleSpec,
		Inputs: []interface{}{xs}, In: []Input{Float32s(xs)},
		Uniforms: map[string]float32{"u_s": 1}})
	if err == nil || !strings.Contains(err.Error(), "both In and Inputs") {
		t.Errorf("both-routes submit error = %v, want rejection", err)
	}

	_, err = q.Submit(nil, JobSpec{Kernel: scaleSpec, In: []Input{{}},
		Uniforms: map[string]float32{"u_s": 1}})
	if err == nil || !strings.Contains(err.Error(), "zero Input") {
		t.Errorf("zero-Input submit error = %v, want rejection", err)
	}
}
