package sched

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"glescompute/internal/codec"
	"glescompute/internal/core"
	"glescompute/internal/layout"
	"glescompute/internal/obs"
)

// workUnit is what the dispatcher hands a device: one job, or a batch of
// same-kernel same-uniform jobs to coalesce into one launch.
type workUnit struct {
	jobs []*Job
}

// worker owns one pooled device. The device is touched only from run()'s
// goroutine — the GL single-thread invariant holds by construction. Job
// and batch buffers recycle through the same core.BufferPool pipelines
// use, capped so a long-running queue seeing many distinct request
// shapes cannot grow its buffer inventory without bound.
type worker struct {
	q    *Queue
	id   int
	dev  *core.Device
	ch   chan *workUnit
	done chan struct{}
	pool *core.BufferPool

	// specs records every KernelSpec compiled on this slot, keyed by
	// CacheKey, so a replacement device can be warmed by recompiling them
	// all before it takes traffic. Touched only on the worker goroutine.
	specs map[string]core.KernelSpec

	// lostDevice is set while executing a unit when the device died under
	// it (context loss, corruption, panic); maybeRecover consumes it.
	lostDevice bool

	// dead mirrors st.Health == DeviceDead for the dispatcher's lock-free
	// routing check.
	dead atomic.Bool

	st DeviceStats // guarded by q.mu
}

func newWorker(q *Queue, id int, dev *core.Device) *worker {
	pool := core.NewBufferPool(dev)
	pool.SetLimit(8, 128)
	return &worker{
		q:     q,
		id:    id,
		dev:   dev,
		ch:    make(chan *workUnit, 2),
		done:  make(chan struct{}),
		pool:  pool,
		specs: map[string]core.KernelSpec{},
	}
}

// run is the device goroutine: execute work units until the dispatcher
// closes the channel, then release the pool and the device.
func (w *worker) run() {
	defer close(w.done)
	for u := range w.ch {
		w.exec(u)
	}
	w.pool.FreeAll()
	w.dev.Close()
}

func (w *worker) exec(u *workUnit) {
	live := u.jobs[:0]
	for _, j := range u.jobs {
		if err := j.ctx.Err(); err != nil {
			w.q.finishJob(j, nil, JobStats{Device: w.id, Attempts: j.attempts}, fmt.Errorf("sched: job cancelled: %w", err))
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}
	if w.dead.Load() {
		// A unit can race the slot's death (assigned before the dispatcher
		// saw the dead flag). Bounce its jobs back through completeJob so
		// retryable ones reach a healthy device.
		for _, j := range live {
			w.q.completeJob(j, nil, JobStats{Device: w.id, Attempts: j.attempts},
				fmt.Errorf("sched: device %d is dead: %w", w.id, core.ErrDeviceLost))
		}
		return
	}
	if live[0].spec.Group != nil {
		// A unit is single-key, so one group job means they all are.
		w.execGroup(live)
		w.maybeRecover()
		return
	}
	if len(live) > 1 && w.execBatch(live) {
		w.maybeRecover()
		return
	}
	for i, j := range live {
		w.execSolo(j)
		if w.lostDevice {
			// The device died under job i; bounce the rest of the unit
			// (unexecuted, so no retry budget consumed) instead of feeding
			// them to a dead context.
			for _, jj := range live[i+1:] {
				w.q.completeJob(jj, nil, JobStats{Device: w.id, Attempts: jj.attempts},
					fmt.Errorf("sched: device %d lost mid-unit: %w", w.id, core.ErrDeviceLost))
			}
			break
		}
	}
	w.maybeRecover()
}

// maybeRecover drives the health state machine after a unit whose device
// died: quarantine the slot, tear the broken device down, and — while the
// replacement budget lasts — open a fresh device on this same goroutine
// (the GL single-thread invariant holds through replacement) and warm it
// by recompiling every kernel the slot had built. Jobs queued behind the
// fault wait out the replacement and then run normally; if the budget is
// spent or the replacement fails, the slot goes Dead and its queued jobs
// bounce to the surviving devices.
func (w *worker) maybeRecover() {
	if !w.lostDevice {
		return
	}
	w.lostDevice = false
	w.q.mu.Lock()
	w.st.Health = DeviceQuarantined
	w.st.Faults++
	reopens := w.st.Reopens
	w.q.mu.Unlock()
	w.q.met.faults.Inc()
	w.q.met.slotHealthy(w.id).Set(0)
	w.q.tracer.Instant(w.id, "quarantine", "replacing device")
	w.pool.FreeAll()
	w.dev.Close()
	if reopens >= uint64(w.q.maxReopens) {
		w.die()
		return
	}
	dev, err := w.q.openDevice(w.id)
	if err != nil {
		w.die()
		return
	}
	for _, spec := range w.specs {
		if _, err := dev.BuildKernelCached(spec); err != nil {
			dev.Close()
			w.die()
			return
		}
	}
	w.dev = dev
	w.pool = core.NewBufferPool(dev)
	w.pool.SetLimit(8, 128)
	w.q.mu.Lock()
	w.st.Health = DeviceHealthy
	w.st.Reopens++
	w.q.mu.Unlock()
	w.q.met.reopens.Inc()
	w.q.met.slotHealthy(w.id).Set(1)
	w.q.tracer.Instant(w.id, "reopen", "replacement device warmed")
}

// die marks the slot permanently dead. Its device is already closed; the
// run loop keeps draining the channel so racing units bounce elsewhere.
func (w *worker) die() {
	w.dead.Store(true)
	w.q.mu.Lock()
	w.st.Health = DeviceDead
	w.q.mu.Unlock()
	w.q.met.slotHealthy(w.id).Set(0)
	w.q.tracer.Instant(w.id, "dead", "replacement budget spent or reopen failed")
}

// note folds one launch into the per-device statistics.
func (w *worker) note(jobs int, batched bool, dt core.Timeline, wall time.Duration) {
	w.q.mu.Lock()
	w.st.Jobs += uint64(jobs)
	w.st.Launches++
	if batched {
		w.st.Batches++
		w.st.BatchedJobs += uint64(jobs)
	}
	w.st.Busy = w.st.Busy.Add(dt)
	w.st.BusyWall += wall
	busyUS := w.st.Busy.Total().Microseconds()
	w.q.mu.Unlock()
	w.q.met.slotBusy(w.id).Set(busyUS)
	w.q.met.slotJobs(w.id).Add(uint64(jobs))
	w.q.met.batchSize.Observe(float64(jobs))
	if batched {
		w.q.met.batches.Inc()
		w.q.met.batchedJobs.Add(uint64(jobs))
	}
	if jobs > 0 {
		w.q.noteServiceTime(dt.Total() / time.Duration(jobs))
	}
	if cc := w.q.deviceCfg.CompileCache; cc != nil {
		ccs := cc.Stats()
		w.q.met.cacheHits.Set(int64(ccs.Hits()))
		w.q.met.cacheMisses.Set(int64(ccs.Misses))
	}
}

// buildKernel compiles (or fetches) a kernel through the device's
// compile-once cache, recording the spec so a replacement device after a
// fault can be rebuilt to the same warm state.
func (w *worker) buildKernel(spec core.KernelSpec) (*core.Kernel, error) {
	k, err := w.dev.BuildKernelCached(spec)
	if err == nil {
		if key := spec.CacheKey(); w.specs[key].Source == "" {
			w.specs[key] = spec
		}
	}
	return k, err
}

// jobBuffer acquires a buffer shaped for one job array: exact matrix
// layout for matrix jobs, the standard linear layout otherwise.
func (w *worker) jobBuffer(elem codec.ElemType, n, matrixN int) (*core.Buffer, error) {
	var grid layout.Grid
	var err error
	if matrixN > 0 {
		if matrixN > w.dev.MaxGridWidth() {
			return nil, fmt.Errorf("sched: matrix dimension %d exceeds max grid width %d", matrixN, w.dev.MaxGridWidth())
		}
		grid, err = layout.Square(matrixN)
	} else {
		grid, err = layout.ForLength(n, w.dev.MaxGridWidth())
	}
	if err != nil {
		return nil, err
	}
	return w.pool.Acquire(elem, n, grid)
}

// execSolo runs one job as its own launch.
func (w *worker) execSolo(j *Job) {
	j.attempts++
	var sp *obs.Span
	var spJobs []*Job
	if w.q.tracer.Enabled() {
		spJobs = []*Job{j}
		sp = w.launchSpan(spJobs, launchName(j))
	}
	start := time.Now()
	t0 := w.dev.Timeline()
	out, rs, err := w.runSoloGuarded(j)
	dt := w.dev.Timeline().Sub(t0)
	wall := time.Since(start)
	w.note(1, false, dt, wall)
	w.noteLost(err)
	w.finishLaunchSpan(sp, spJobs, spJobs, start, dt, err)
	w.q.completeJob(j, out, JobStats{
		Device:    w.id,
		BatchSize: 1,
		Run:       rs,
		Time:      dt,
		QueueWait: start.Sub(j.enq),
		Service:   wall,
		Attempts:  j.attempts,
	}, err)
}

// noteLost flags the device for recovery when an execution error (or the
// device's own lost marker) says the context died under it.
func (w *worker) noteLost(err error) {
	if w.lostDevice {
		return
	}
	if w.dev.Lost() || errors.Is(err, core.ErrDeviceLost) {
		w.lostDevice = true
		detail := "device context lost"
		if err != nil {
			detail = err.Error()
		}
		w.q.tracer.Instant(w.id, "fault", detail)
	}
}

// runSoloGuarded is runSolo behind a panic guard: a panicking job — a
// broken Direct closure, a bug tickled by one request's shape — completes
// as a device-lost failure instead of crashing the process, and the
// device is replaced (the panic may have left GL state mid-operation).
func (w *worker) runSoloGuarded(j *Job) (out interface{}, rs core.RunStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			w.q.notePanic()
			err = fmt.Errorf("sched: job panicked on device %d: %v: %w", w.id, r, core.ErrDeviceLost)
		}
	}()
	return w.runSolo(j)
}

func (w *worker) runSolo(j *Job) (interface{}, core.RunStats, error) {
	var rs core.RunStats
	if j.spec.Direct != nil {
		return j.spec.Direct(w.dev)
	}
	k, err := w.buildKernel(j.spec.Kernel)
	if err != nil {
		return nil, rs, err
	}
	var held []*core.Buffer
	defer func() {
		for _, b := range held {
			w.pool.Release(b)
		}
	}()

	ins := make([]*core.Buffer, len(j.spec.Inputs))
	for i, src := range j.spec.Inputs {
		b, err := w.jobBuffer(j.spec.Kernel.Inputs[i].Type, core.HostLen(src), j.spec.MatrixN)
		if err != nil {
			return nil, rs, err
		}
		held = append(held, b)
		if err := b.WriteRange(0, src); err != nil {
			return nil, rs, err
		}
		ins[i] = b
	}
	outB, err := w.jobBuffer(outElem(j.spec.Kernel), j.spec.OutN, j.spec.MatrixN)
	if err != nil {
		return nil, rs, err
	}
	held = append(held, outB)
	rs, err = k.Run1(outB, ins, j.spec.Uniforms)
	if err != nil {
		return nil, rs, err
	}
	out, err := outB.ReadRange(0, j.spec.OutN)
	return out, rs, err
}

// execGroup runs a unit of coalesced Group jobs as one launch: the first
// member's GroupSpec.Run receives every member's payload and returns one
// output per member. Failures (including panics, recovered as
// device-lost) complete every member with the error.
func (w *worker) execGroup(jobs []*Job) {
	for _, j := range jobs {
		j.attempts++
	}
	sp := w.launchSpan(jobs, launchName(jobs[0]))
	start := time.Now()
	t0 := w.dev.Timeline()
	outs, rs, err := w.runGroupGuarded(jobs)
	if err == nil && len(outs) != len(jobs) {
		err = fmt.Errorf("sched: group %q returned %d outputs for %d members",
			jobs[0].spec.Group.label(), len(outs), len(jobs))
	}
	dt := w.dev.Timeline().Sub(t0)
	wall := time.Since(start)
	w.note(len(jobs), len(jobs) > 1, dt, wall)
	w.noteLost(err)
	// Only the first member's Trace hook runs: the launch (and its pass
	// structure) is shared, so per-member hooks would duplicate children.
	w.finishLaunchSpan(sp, jobs, jobs[:1], start, dt, err)
	for i, j := range jobs {
		st := JobStats{
			Device:    w.id,
			Batched:   len(jobs) > 1,
			BatchSize: len(jobs),
			Run:       rs,
			Time:      dt,
			QueueWait: start.Sub(j.enq),
			Service:   wall,
			Attempts:  j.attempts,
		}
		if err != nil {
			w.q.completeJob(j, nil, st, err)
		} else {
			w.q.completeJob(j, outs[i], st, nil)
		}
	}
}

// runGroupGuarded invokes the group closure behind the same panic guard
// as solo and batch execution.
func (w *worker) runGroupGuarded(jobs []*Job) (outs []interface{}, rs core.RunStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			w.q.notePanic()
			outs = nil
			err = fmt.Errorf("sched: group panicked on device %d: %v: %w", w.id, r, core.ErrDeviceLost)
		}
	}()
	payloads := make([]interface{}, len(jobs))
	for i, j := range jobs {
		payloads[i] = j.spec.Group.Payload
	}
	return jobs[0].spec.Group.Run(w.dev, payloads)
}

// execBatch coalesces the jobs into one launch. It returns false when the
// batch cannot be packed (the caller falls back to solo execution);
// execution errors complete every member with the error and return true.
func (w *worker) execBatch(jobs []*Job) bool {
	spec := jobs[0].spec
	ns := make([]int, len(jobs))
	for i, j := range jobs {
		ns[i] = j.spec.OutN
	}
	// Width is bounded by the device's effective layout bound (which may
	// be tighter than the raw texture caps), so a batch never rejects a
	// job its solo layout would accept.
	grid, offs, err := layout.PackRows(ns, w.dev.MaxGridWidth(), w.dev.Caps().MaxTextureSize)
	if err != nil {
		return false // too large to share one texture: run solo
	}
	for _, j := range jobs {
		j.attempts++
	}
	sp := w.launchSpan(jobs, launchName(jobs[0]))
	start := time.Now()
	t0 := w.dev.Timeline()
	outs, rs, err := w.runBatchGuarded(jobs, spec, grid, offs)
	dt := w.dev.Timeline().Sub(t0)
	wall := time.Since(start)
	w.note(len(jobs), true, dt, wall)
	w.noteLost(err)
	w.finishLaunchSpan(sp, jobs, jobs, start, dt, err)
	for i, j := range jobs {
		st := JobStats{
			Device:    w.id,
			Batched:   true,
			BatchSize: len(jobs),
			Run:       rs,
			Time:      dt,
			QueueWait: start.Sub(j.enq),
			Service:   wall,
			Attempts:  j.attempts,
		}
		if err != nil {
			w.q.completeJob(j, nil, st, err)
		} else {
			w.q.completeJob(j, outs[i], st, nil)
		}
	}
	return true
}

// runBatchGuarded is runBatch behind the same panic guard as solo
// execution; a panic fails the whole batch as device-lost.
func (w *worker) runBatchGuarded(jobs []*Job, spec JobSpec, grid layout.Grid, offs []int) (outs []interface{}, rs core.RunStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			w.q.notePanic()
			outs = nil
			err = fmt.Errorf("sched: batch panicked on device %d: %v: %w", w.id, r, core.ErrDeviceLost)
		}
	}()
	return w.runBatch(jobs, spec, grid, offs)
}

func (w *worker) runBatch(jobs []*Job, spec JobSpec, grid layout.Grid, offs []int) ([]interface{}, core.RunStats, error) {
	var rs core.RunStats
	k, err := w.buildKernel(spec.Kernel)
	if err != nil {
		return nil, rs, err
	}
	var held []*core.Buffer
	defer func() {
		for _, b := range held {
			w.pool.Release(b)
		}
	}()
	packedBuf := func(elem codec.ElemType) (*core.Buffer, error) {
		b, err := w.pool.Acquire(elem, grid.N, grid)
		if err == nil {
			held = append(held, b)
		}
		return b, err
	}

	// Pack each input's member arrays into adjacent rows of one shared
	// texture and upload it in a single call.
	ins := make([]*core.Buffer, len(spec.Kernel.Inputs))
	for p := range spec.Kernel.Inputs {
		elem := spec.Kernel.Inputs[p].Type
		packed := newHostSlice(elem, grid.N)
		for ji, j := range jobs {
			copyHostSlice(packed, offs[ji], j.spec.Inputs[p])
		}
		b, err := packedBuf(elem)
		if err != nil {
			return nil, rs, err
		}
		if err := b.WriteRange(0, packed); err != nil {
			return nil, rs, err
		}
		ins[p] = b
	}

	// One fragment pass computes every member's output.
	outB, err := packedBuf(outElem(spec.Kernel))
	if err != nil {
		return nil, rs, err
	}
	rs, err = k.Run1(outB, ins, spec.Uniforms)
	if err != nil {
		return nil, rs, err
	}

	// One readback; slice each member's rows back out.
	all, err := outB.ReadRange(0, grid.N)
	if err != nil {
		return nil, rs, err
	}
	outs := make([]interface{}, len(jobs))
	for ji := range jobs {
		outs[ji] = sliceHostCopy(all, offs[ji], ns(jobs[ji]))
	}
	return outs, rs, nil
}

func ns(j *Job) int { return j.spec.OutN }

// newHostSlice allocates a typed host slice of n elements.
func newHostSlice(t codec.ElemType, n int) interface{} {
	switch t {
	case codec.Float32:
		return make([]float32, n)
	case codec.Int32:
		return make([]int32, n)
	case codec.Uint32:
		return make([]uint32, n)
	case codec.Int8:
		return make([]int8, n)
	default:
		return make([]uint8, n)
	}
}

// copyHostSlice copies src into dst starting at element off; both must be
// typed slices of the same element type.
func copyHostSlice(dst interface{}, off int, src interface{}) {
	switch d := dst.(type) {
	case []float32:
		copy(d[off:], src.([]float32))
	case []int32:
		copy(d[off:], src.([]int32))
	case []uint32:
		copy(d[off:], src.([]uint32))
	case []int8:
		copy(d[off:], src.([]int8))
	case []uint8:
		copy(d[off:], src.([]uint8))
	}
}

// sliceHostCopy returns a fresh copy of n elements of src at off, so each
// job owns its output independently of the shared batch readback.
func sliceHostCopy(src interface{}, off, n int) interface{} {
	switch s := src.(type) {
	case []float32:
		return append([]float32(nil), s[off:off+n]...)
	case []int32:
		return append([]int32(nil), s[off:off+n]...)
	case []uint32:
		return append([]uint32(nil), s[off:off+n]...)
	case []int8:
		return append([]int8(nil), s[off:off+n]...)
	default:
		return append([]uint8(nil), src.([]uint8)[off:off+n]...)
	}
}
