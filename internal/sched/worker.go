package sched

import (
	"fmt"
	"time"

	"glescompute/internal/codec"
	"glescompute/internal/core"
	"glescompute/internal/layout"
)

// workUnit is what the dispatcher hands a device: one job, or a batch of
// same-kernel same-uniform jobs to coalesce into one launch.
type workUnit struct {
	jobs []*Job
}

// worker owns one pooled device. The device is touched only from run()'s
// goroutine — the GL single-thread invariant holds by construction. Job
// and batch buffers recycle through the same core.BufferPool pipelines
// use, capped so a long-running queue seeing many distinct request
// shapes cannot grow its buffer inventory without bound.
type worker struct {
	q    *Queue
	id   int
	dev  *core.Device
	ch   chan *workUnit
	done chan struct{}
	pool *core.BufferPool

	st DeviceStats // guarded by q.mu
}

func newWorker(q *Queue, id int, dev *core.Device) *worker {
	pool := core.NewBufferPool(dev)
	pool.SetLimit(8, 128)
	return &worker{
		q:    q,
		id:   id,
		dev:  dev,
		ch:   make(chan *workUnit, 2),
		done: make(chan struct{}),
		pool: pool,
	}
}

// run is the device goroutine: execute work units until the dispatcher
// closes the channel, then release the pool and the device.
func (w *worker) run() {
	defer close(w.done)
	for u := range w.ch {
		w.exec(u)
	}
	w.pool.FreeAll()
	w.dev.Close()
}

func (w *worker) exec(u *workUnit) {
	live := u.jobs[:0]
	for _, j := range u.jobs {
		if err := j.ctx.Err(); err != nil {
			w.q.finishJob(j, nil, JobStats{Device: w.id}, fmt.Errorf("sched: job cancelled: %w", err))
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}
	if len(live) > 1 && w.execBatch(live) {
		return
	}
	for _, j := range live {
		w.execSolo(j)
	}
}

// note folds one launch into the per-device statistics.
func (w *worker) note(jobs int, batched bool, dt core.Timeline, wall time.Duration) {
	w.q.mu.Lock()
	w.st.Jobs += uint64(jobs)
	w.st.Launches++
	if batched {
		w.st.Batches++
		w.st.BatchedJobs += uint64(jobs)
	}
	w.st.Busy = w.st.Busy.Add(dt)
	w.st.BusyWall += wall
	w.q.mu.Unlock()
}

// jobBuffer acquires a buffer shaped for one job array: exact matrix
// layout for matrix jobs, the standard linear layout otherwise.
func (w *worker) jobBuffer(elem codec.ElemType, n, matrixN int) (*core.Buffer, error) {
	var grid layout.Grid
	var err error
	if matrixN > 0 {
		if matrixN > w.dev.MaxGridWidth() {
			return nil, fmt.Errorf("sched: matrix dimension %d exceeds max grid width %d", matrixN, w.dev.MaxGridWidth())
		}
		grid, err = layout.Square(matrixN)
	} else {
		grid, err = layout.ForLength(n, w.dev.MaxGridWidth())
	}
	if err != nil {
		return nil, err
	}
	return w.pool.Acquire(elem, n, grid)
}

// execSolo runs one job as its own launch.
func (w *worker) execSolo(j *Job) {
	start := time.Now()
	t0 := w.dev.Timeline()
	out, rs, err := w.runSolo(j)
	dt := w.dev.Timeline().Sub(t0)
	wall := time.Since(start)
	w.note(1, false, dt, wall)
	w.q.finishJob(j, out, JobStats{
		Device:    w.id,
		BatchSize: 1,
		Run:       rs,
		Time:      dt,
		QueueWait: start.Sub(j.enq),
		Service:   wall,
	}, err)
}

func (w *worker) runSolo(j *Job) (interface{}, core.RunStats, error) {
	var rs core.RunStats
	if j.spec.Direct != nil {
		return j.spec.Direct(w.dev)
	}
	k, err := w.dev.BuildKernelCached(j.spec.Kernel)
	if err != nil {
		return nil, rs, err
	}
	var held []*core.Buffer
	defer func() {
		for _, b := range held {
			w.pool.Release(b)
		}
	}()

	ins := make([]*core.Buffer, len(j.spec.Inputs))
	for i, src := range j.spec.Inputs {
		b, err := w.jobBuffer(j.spec.Kernel.Inputs[i].Type, core.HostLen(src), j.spec.MatrixN)
		if err != nil {
			return nil, rs, err
		}
		held = append(held, b)
		if err := b.WriteRange(0, src); err != nil {
			return nil, rs, err
		}
		ins[i] = b
	}
	outB, err := w.jobBuffer(outElem(j.spec.Kernel), j.spec.OutN, j.spec.MatrixN)
	if err != nil {
		return nil, rs, err
	}
	held = append(held, outB)
	rs, err = k.Run1(outB, ins, j.spec.Uniforms)
	if err != nil {
		return nil, rs, err
	}
	out, err := outB.ReadRange(0, j.spec.OutN)
	return out, rs, err
}

// execBatch coalesces the jobs into one launch. It returns false when the
// batch cannot be packed (the caller falls back to solo execution);
// execution errors complete every member with the error and return true.
func (w *worker) execBatch(jobs []*Job) bool {
	spec := jobs[0].spec
	ns := make([]int, len(jobs))
	for i, j := range jobs {
		ns[i] = j.spec.OutN
	}
	// Width is bounded by the device's effective layout bound (which may
	// be tighter than the raw texture caps), so a batch never rejects a
	// job its solo layout would accept.
	grid, offs, err := layout.PackRows(ns, w.dev.MaxGridWidth(), w.dev.Caps().MaxTextureSize)
	if err != nil {
		return false // too large to share one texture: run solo
	}
	start := time.Now()
	t0 := w.dev.Timeline()
	outs, rs, err := w.runBatch(jobs, spec, grid, offs)
	dt := w.dev.Timeline().Sub(t0)
	wall := time.Since(start)
	w.note(len(jobs), true, dt, wall)
	for i, j := range jobs {
		st := JobStats{
			Device:    w.id,
			Batched:   true,
			BatchSize: len(jobs),
			Run:       rs,
			Time:      dt,
			QueueWait: start.Sub(j.enq),
			Service:   wall,
		}
		if err != nil {
			w.q.finishJob(j, nil, st, err)
		} else {
			w.q.finishJob(j, outs[i], st, nil)
		}
	}
	return true
}

func (w *worker) runBatch(jobs []*Job, spec JobSpec, grid layout.Grid, offs []int) ([]interface{}, core.RunStats, error) {
	var rs core.RunStats
	k, err := w.dev.BuildKernelCached(spec.Kernel)
	if err != nil {
		return nil, rs, err
	}
	var held []*core.Buffer
	defer func() {
		for _, b := range held {
			w.pool.Release(b)
		}
	}()
	packedBuf := func(elem codec.ElemType) (*core.Buffer, error) {
		b, err := w.pool.Acquire(elem, grid.N, grid)
		if err == nil {
			held = append(held, b)
		}
		return b, err
	}

	// Pack each input's member arrays into adjacent rows of one shared
	// texture and upload it in a single call.
	ins := make([]*core.Buffer, len(spec.Kernel.Inputs))
	for p := range spec.Kernel.Inputs {
		elem := spec.Kernel.Inputs[p].Type
		packed := newHostSlice(elem, grid.N)
		for ji, j := range jobs {
			copyHostSlice(packed, offs[ji], j.spec.Inputs[p])
		}
		b, err := packedBuf(elem)
		if err != nil {
			return nil, rs, err
		}
		if err := b.WriteRange(0, packed); err != nil {
			return nil, rs, err
		}
		ins[p] = b
	}

	// One fragment pass computes every member's output.
	outB, err := packedBuf(outElem(spec.Kernel))
	if err != nil {
		return nil, rs, err
	}
	rs, err = k.Run1(outB, ins, spec.Uniforms)
	if err != nil {
		return nil, rs, err
	}

	// One readback; slice each member's rows back out.
	all, err := outB.ReadRange(0, grid.N)
	if err != nil {
		return nil, rs, err
	}
	outs := make([]interface{}, len(jobs))
	for ji := range jobs {
		outs[ji] = sliceHostCopy(all, offs[ji], ns(jobs[ji]))
	}
	return outs, rs, nil
}

func ns(j *Job) int { return j.spec.OutN }

// newHostSlice allocates a typed host slice of n elements.
func newHostSlice(t codec.ElemType, n int) interface{} {
	switch t {
	case codec.Float32:
		return make([]float32, n)
	case codec.Int32:
		return make([]int32, n)
	case codec.Uint32:
		return make([]uint32, n)
	case codec.Int8:
		return make([]int8, n)
	default:
		return make([]uint8, n)
	}
}

// copyHostSlice copies src into dst starting at element off; both must be
// typed slices of the same element type.
func copyHostSlice(dst interface{}, off int, src interface{}) {
	switch d := dst.(type) {
	case []float32:
		copy(d[off:], src.([]float32))
	case []int32:
		copy(d[off:], src.([]int32))
	case []uint32:
		copy(d[off:], src.([]uint32))
	case []int8:
		copy(d[off:], src.([]int8))
	case []uint8:
		copy(d[off:], src.([]uint8))
	}
}

// sliceHostCopy returns a fresh copy of n elements of src at off, so each
// job owns its output independently of the shared batch readback.
func sliceHostCopy(src interface{}, off, n int) interface{} {
	switch s := src.(type) {
	case []float32:
		return append([]float32(nil), s[off:off+n]...)
	case []int32:
		return append([]int32(nil), s[off:off+n]...)
	case []uint32:
		return append([]uint32(nil), s[off:off+n]...)
	case []int8:
		return append([]int8(nil), s[off:off+n]...)
	default:
		return append([]uint8(nil), src.([]uint8)[off:off+n]...)
	}
}
