package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"glescompute/internal/core"
	"glescompute/internal/fault"
)

// faultQueue opens a pool whose devices carry injectors from the plan.
func faultQueue(t *testing.T, plan *fault.Plan, cfg Config) *Queue {
	t.Helper()
	cfg.OpenDevice = func(slot int, dcfg core.Config) (*core.Device, error) {
		dev, err := core.Open(dcfg)
		if err != nil {
			return nil, err
		}
		dev.GL().SetFaultInjector(plan.Injector(slot))
		return dev, nil
	}
	q, err := OpenQueue(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func intJob(i int) JobSpec {
	return JobSpec{
		Kernel: sumIntSpec,
		Inputs: []interface{}{
			[]int32{int32(i), int32(i + 1), int32(i + 2), int32(i + 3)},
			[]int32{10, 20, 30, 40},
		},
		Batchable: true,
	}
}

func wantInt(i int) []int32 {
	return []int32{int32(i) + 10, int32(i+1) + 20, int32(i+2) + 30, int32(i+3) + 40}
}

// TestPanicRecovery: a panicking Direct job completes as a device-lost
// failure instead of crashing the pool, the device is replaced, and later
// jobs run normally.
func TestPanicRecovery(t *testing.T) {
	q, err := OpenQueue(Config{Devices: 1, Device: core.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	j, err := q.Submit(nil, JobSpec{Direct: func(dev *core.Device) (interface{}, core.RunStats, error) {
		panic("kaboom")
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(nil); !errors.Is(err, core.ErrDeviceLost) {
		t.Fatalf("panicking job: err = %v, want wrapped core.ErrDeviceLost", err)
	}
	// The pool must still serve.
	j2, err := q.Submit(nil, intJob(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := j2.Wait(nil)
	if err != nil {
		t.Fatalf("job after panic: %v", err)
	}
	out, _ := res.Int32()
	for i, v := range wantInt(1) {
		if out[i] != v {
			t.Fatalf("job after panic: got %v, want %v", out, wantInt(1))
		}
	}
	st := q.Stats()
	if st.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", st.Panics)
	}
	if st.Faults != 1 || st.Reopens != 1 || st.HealthyDevices != 1 {
		t.Fatalf("health after panic: faults %d reopens %d healthy %d, want 1/1/1\n%s",
			st.Faults, st.Reopens, st.HealthyDevices, st.Report())
	}
}

// TestRetryThroughContextLoss: with injected context losses, jobs that opt
// into retry all complete with correct results; the pool replaces its
// devices and returns to full health.
func TestRetryThroughContextLoss(t *testing.T) {
	plan := fault.NewPlan(99, fault.Options{
		OpHorizon:            16,
		FaultyIncarnations:   1,
		StallsPerIncarnation: 1,
		OOMsPerIncarnation:   1,
		StallFor:             time.Microsecond,
	})
	// Small batches so each device performs enough draws for the whole
	// fault schedule (early + terminal events) to fire.
	q := faultQueue(t, plan, Config{Devices: 2, Device: core.Config{Workers: 1}, MaxBatch: 4})
	defer q.Close()
	const n = 200
	jobs := make([]*Job, n)
	for i := range jobs {
		spec := intJob(i)
		spec.Retry = RetryPolicy{Max: 6, Backoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond}
		j, err := q.Submit(nil, spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	var maxAttempts int
	for i, j := range jobs {
		res, err := j.Wait(nil)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		out, _ := res.Int32()
		for k, v := range wantInt(i) {
			if out[k] != v {
				t.Fatalf("job %d: got %v, want %v", i, out, wantInt(i))
			}
		}
		if res.Stats.Attempts > maxAttempts {
			maxAttempts = res.Stats.Attempts
		}
	}
	st := q.Stats()
	fs := plan.Stats()
	if fs.Total() == 0 {
		t.Fatal("no faults fired — the test exercised nothing")
	}
	if fs.ContextLost+fs.CorruptReadbacks > 0 && st.Reopens == 0 {
		t.Fatalf("context losses fired (%d) but no device was reopened\n%s", fs.ContextLost+fs.CorruptReadbacks, st.Report())
	}
	if st.HealthyDevices != 2 || st.DeadDevices != 0 {
		t.Fatalf("pool did not recover: %d healthy, %d dead\n%s", st.HealthyDevices, st.DeadDevices, st.Report())
	}
	if st.Failed != 0 {
		t.Fatalf("lost %d jobs\n%s", st.Failed, st.Report())
	}
	if maxAttempts < 2 {
		t.Fatalf("maxAttempts = %d; no job was actually retried", maxAttempts)
	}
}

// TestRetryBudgetExhaustion: a job whose retries keep landing on faulting
// devices eventually fails with the underlying error.
func TestRetryBudgetExhaustion(t *testing.T) {
	calls := int32(0)
	q, err := OpenQueue(Config{Devices: 1, Device: core.Config{Workers: 1}, MaxReopens: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	spec := JobSpec{Direct: func(dev *core.Device) (interface{}, core.RunStats, error) {
		atomic.AddInt32(&calls, 1)
		return nil, core.RunStats{}, fmt.Errorf("always down: %w", core.ErrOutOfMemory)
	}}
	spec.Retry = RetryPolicy{Max: 3, Backoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond}
	j, err := q.Submit(nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(nil)
	if !errors.Is(err, core.ErrOutOfMemory) {
		t.Fatalf("err = %v, want wrapped core.ErrOutOfMemory", err)
	}
	if got := atomic.LoadInt32(&calls); got != 4 {
		t.Fatalf("executions = %d, want 4 (1 + 3 retries)", got)
	}
	if res.Stats.Attempts != 4 {
		t.Fatalf("Attempts = %d, want 4", res.Stats.Attempts)
	}
	if st := q.Stats(); st.Retries != 3 {
		t.Fatalf("Retries = %d, want 3", st.Retries)
	}
}

// TestDeadline: a job whose deadline expires before it runs completes with
// an error wrapping context.DeadlineExceeded, and is never retried.
func TestDeadline(t *testing.T) {
	q, err := OpenQueue(Config{Devices: 1, Device: core.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	block := make(chan struct{})
	stuck, err := q.Submit(nil, JobSpec{Direct: func(dev *core.Device) (interface{}, core.RunStats, error) {
		<-block
		return []int32{1}, core.RunStats{}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	spec := intJob(0)
	spec.Deadline = 5 * time.Millisecond
	spec.Retry = RetryPolicy{Max: 3}
	j, err := q.Submit(nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	close(block)
	if _, err := stuck.Wait(nil); err != nil {
		t.Fatalf("blocking job: %v", err)
	}
	res, err := j.Wait(nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
	if res.Stats.Attempts != 0 {
		t.Fatalf("Attempts = %d, want 0 (deadline expired before any execution)", res.Stats.Attempts)
	}
	if st := q.Stats(); st.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1\n%s", st.Cancelled, st.Report())
	}
}

// TestGracefulDegradation: with replacement disabled, killing one device
// of a two-device pool leaves a degraded queue that keeps serving on the
// survivor; jobs without retry that were already bound to the dead slot
// fail with ErrDeviceLost.
func TestGracefulDegradation(t *testing.T) {
	plan := fault.NewPlan(5, fault.Options{
		OpHorizon:            4,
		FaultyIncarnations:   1,
		StallsPerIncarnation: -1,
		OOMsPerIncarnation:   -1,
	})
	// Only slot 0 faults: give slot 1 a clean injector by budgeting one
	// faulty incarnation and asking for slot 1's injector first.
	cfg := Config{Devices: 2, Device: core.Config{Workers: 1}, MaxReopens: -1}
	cfg.OpenDevice = func(slot int, dcfg core.Config) (*core.Device, error) {
		dev, err := core.Open(dcfg)
		if err != nil {
			return nil, err
		}
		if slot == 0 {
			dev.GL().SetFaultInjector(plan.Injector(0))
		}
		return dev, nil
	}
	q, err := OpenQueue(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	const n = 100
	var ok, lost int
	for i := 0; i < n; i++ {
		spec := intJob(i)
		spec.Retry = RetryPolicy{Max: 4, Backoff: 100 * time.Microsecond}
		j, err := q.Submit(nil, spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := j.Wait(nil)
		switch {
		case err == nil:
			out, _ := res.Int32()
			for k, v := range wantInt(i) {
				if out[k] != v {
					t.Fatalf("job %d: got %v, want %v", i, out, wantInt(i))
				}
			}
			ok++
		case errors.Is(err, core.ErrDeviceLost):
			lost++
		default:
			t.Fatalf("job %d: unexpected error %v", i, err)
		}
	}
	st := q.Stats()
	if st.DeadDevices != 1 || st.HealthyDevices != 1 {
		t.Fatalf("want exactly one dead + one healthy device, got %d dead / %d healthy\n%s",
			st.DeadDevices, st.HealthyDevices, st.Report())
	}
	if !st.Degraded() {
		t.Fatal("Degraded() = false with a dead device")
	}
	if ok == 0 {
		t.Fatal("no job completed on the surviving device")
	}
	if lost > 0 {
		t.Fatalf("retried jobs still failed: %d lost (retries should have rerouted them)", lost)
	}
}

// TestDrainSubmitRace pins the Drain-vs-Submit semantics under -race:
// concurrent submitters and drainers never trip the race detector, every
// submitted job completes, and Drain returns only with zero jobs in
// flight at that instant.
func TestDrainSubmitRace(t *testing.T) {
	q, err := OpenQueue(Config{Devices: 2, Device: core.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	const (
		submitters = 4
		perG       = 50
	)
	var wg sync.WaitGroup
	var completed int64
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				j, err := q.Submit(nil, intJob(g*perG+i))
				if err != nil {
					// Submissions racing Close fail cleanly with
					// ErrQueueClosed; nothing else is acceptable.
					if !errors.Is(err, ErrQueueClosed) {
						t.Errorf("Submit: %v", err)
					}
					return
				}
				if _, err := j.Wait(nil); err != nil {
					t.Errorf("Wait: %v", err)
					return
				}
				atomic.AddInt64(&completed, 1)
			}
		}(g)
	}
	stop := make(chan struct{})
	drainerDone := make(chan struct{})
	go func() {
		defer close(drainerDone)
		for {
			q.Drain()
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-drainerDone
	q.Drain()
	st := q.Stats()
	if st.Submitted != uint64(atomic.LoadInt64(&completed)) || st.Completed != st.Submitted {
		t.Fatalf("after drain: submitted %d completed %d (client saw %d)", st.Submitted, st.Completed, completed)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	// Post-Close submits must fail with ErrQueueClosed, which wraps the
	// library-wide ErrClosed sentinel.
	_, err = q.Submit(nil, intJob(0))
	if !errors.Is(err, ErrQueueClosed) || !errors.Is(err, core.ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrQueueClosed wrapping core.ErrClosed", err)
	}
}

// TestWaitDetach pins Job.Wait's detach semantics: a Wait abandoned by
// context cancellation consumes nothing — the job still runs, and any
// number of later waiters observe its result, whether the cancellation
// happened before, during, or after completion.
func TestWaitDetach(t *testing.T) {
	q, err := OpenQueue(Config{Devices: 1, Device: core.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	cases := []struct {
		name string
		run  func(t *testing.T, j *Job, release func())
	}{
		{
			// Cancelled before the job can even start.
			name: "cancel-before-completion",
			run: func(t *testing.T, j *Job, release func()) {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				if _, err := j.Wait(ctx); !errors.Is(err, context.Canceled) {
					t.Fatalf("Wait(cancelled) = %v, want context.Canceled", err)
				}
				release()
			},
		},
		{
			// Cancelled while blocked in Wait, mid-execution.
			name: "cancel-during-completion",
			run: func(t *testing.T, j *Job, release func()) {
				ctx, cancel := context.WithCancel(context.Background())
				waitErr := make(chan error, 1)
				go func() {
					_, err := j.Wait(ctx)
					waitErr <- err
				}()
				time.Sleep(5 * time.Millisecond) // let the waiter block
				cancel()
				if err := <-waitErr; !errors.Is(err, context.Canceled) {
					t.Fatalf("Wait(cancelled mid-flight) = %v, want context.Canceled", err)
				}
				release()
			},
		},
		{
			// Cancelled only after the job already completed: Wait must
			// prefer the result; a second waiter sees it too.
			name: "cancel-after-completion",
			run: func(t *testing.T, j *Job, release func()) {
				release()
				<-j.Done()
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				// Both outcomes of the select race are legal for THIS wait;
				// what must hold is that a subsequent waiter still gets the
				// result (checked below for every case).
				_, _ = j.Wait(ctx)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			block := make(chan struct{})
			var once sync.Once
			release := func() { once.Do(func() { close(block) }) }
			defer release()
			j, err := q.Submit(nil, JobSpec{Direct: func(dev *core.Device) (interface{}, core.RunStats, error) {
				<-block
				return []int32{42}, core.RunStats{}, nil
			}})
			if err != nil {
				t.Fatal(err)
			}
			tc.run(t, j, release)
			// The abandoned Wait must not have lost the result: a fresh
			// waiter with a live context gets it.
			res, err := j.Wait(nil)
			if err != nil {
				t.Fatalf("second Wait: %v", err)
			}
			out, err := res.Int32()
			if err != nil || len(out) != 1 || out[0] != 42 {
				t.Fatalf("second Wait result: %v (err %v), want [42]", out, err)
			}
			// And a third waiter still sees it as well.
			if res2, err := j.Wait(context.Background()); err != nil || res2.Output == nil {
				t.Fatalf("third Wait: %v, %v", res2, err)
			}
		})
	}
}
